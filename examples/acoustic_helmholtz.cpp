// Frequency-domain acoustics: complex-symmetric LDL^T (Z arithmetic).
//
// This is the pmlDF workload of the paper: a Helmholtz operator with an
// absorbing PML layer gives a complex *symmetric* (not Hermitian) matrix,
// factorized as L D L^T over std::complex<double> with plain transposes.
// Solves a point-source problem at a few frequencies, reusing the symbolic
// analysis across factorizations (the pattern does not change).
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"

using namespace spx;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const index_t n = static_cast<index_t>(cli.get_int("n", 24));
  cli.check_unknown();

  SolverOptions options;
  options.runtime = RuntimeKind::Parsec;
  Solver<complex_t> solver(options);

  const index_t center = (n / 2 * n + n / 2) * n + n / 2;
  bool analyzed = false;
  for (const double k : {0.3, 0.6, 0.9}) {
    const CscMatrix<complex_t> a = gen::helmholtz3d(n, n, n, k);
    if (!analyzed) {
      // One symbolic analysis serves all frequencies (same pattern).
      solver.analyze(a);
      std::printf("n=%d^3 complex dofs, nnzL=%lld (analysis reused across "
                  "frequencies)\n\n",
                  n,
                  static_cast<long long>(
                      solver.analysis().structure.nnz_factor));
      analyzed = true;
    }
    Timer t;
    solver.factorize(a, Factorization::LDLT);
    std::vector<complex_t> p(a.ncols(), complex_t(0));
    p[center] = complex_t(1.0, 0.0);  // point source
    solver.solve(p);

    // Field amplitude decays away from the source through the lossy
    // medium; check the residual by recomputing A*p.
    std::vector<complex_t> ap(a.ncols());
    a.multiply(p, ap);
    double resid = 0.0;
    for (index_t i = 0; i < a.ncols(); ++i) {
      const complex_t want = i == center ? complex_t(1) : complex_t(0);
      resid = std::max(resid, std::abs(ap[i] - want));
    }
    std::printf("wavenumber %.1f: |p(src)|=%.4f, residual=%.2e, "
                "factor+solve %.3fs\n",
                k, std::abs(p[center]), resid, t.elapsed());
    if (resid > 1e-8) return 1;
  }
  return 0;
}
