// Implicit heat diffusion: one analyze + factorize, many solves.
//
// Backward-Euler time stepping of u_t = alpha * Laplace(u) on a 2D plate
// with a hot spot: every step solves (I + alpha*dt*A) u^{k+1} = u^k with
// the SAME matrix, which is the classic workload sparse direct solvers
// win: the O(n^1.5) factorization is paid once and each step is a cheap
// pair of triangular solves.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/solver.hpp"
#include "mat/triplets.hpp"

using namespace spx;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const index_t nx = static_cast<index_t>(cli.get_int("nx", 120));
  const int steps = static_cast<int>(cli.get_int("steps", 50));
  const double alpha_dt = cli.get_double("alpha-dt", 0.25);
  cli.check_unknown();

  // System matrix I + alpha*dt*A (A = 5-point Laplacian, grid spacing 1).
  const index_t n = nx * nx;
  Triplets<double> t(n, n);
  for (index_t y = 0; y < nx; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t c = y * nx + x;
      t.add(c, c, 1.0 + 4.0 * alpha_dt);
      if (x + 1 < nx) t.add_sym(c + 1, c, -alpha_dt);
      if (y + 1 < nx) t.add_sym(c + nx, c, -alpha_dt);
    }
  }
  const CscMatrix<double> a = t.to_csc();

  SolverOptions options;
  options.runtime = RuntimeKind::Parsec;
  Solver<double> solver(options);
  Timer setup;
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  const double setup_time = setup.elapsed();

  // Initial condition: a hot square in the center.
  std::vector<double> u(n, 0.0);
  for (index_t y = 2 * nx / 5; y < 3 * nx / 5; ++y) {
    for (index_t x = 2 * nx / 5; x < 3 * nx / 5; ++x) {
      u[y * nx + x] = 100.0;
    }
  }
  auto total_heat = [&] {
    double s = 0.0;
    for (const double v : u) s += v;
    return s;
  };

  const double heat0 = total_heat();
  Timer stepping;
  for (int step = 1; step <= steps; ++step) {
    solver.solve(u);  // u <- (I + alpha*dt*A)^{-1} u
    if (step % 10 == 0) {
      double umax = 0.0;
      for (const double v : u) umax = std::max(umax, v);
      std::printf("step %3d: peak temperature %7.3f, total heat %.1f\n",
                  step, umax, total_heat());
    }
  }
  const double step_time = stepping.elapsed() / steps;

  // Sanity: homogeneous Neumann-free interior diffusion conserves heat up
  // to boundary losses; it must never grow.
  std::printf("\nheat: initial %.1f, final %.1f (boundary losses only)\n",
              heat0, total_heat());
  std::printf("factorize once: %.3fs; per-step solve: %.4fs (%.0fx "
              "cheaper)\n",
              setup_time, step_time, setup_time / step_time);
  return total_heat() <= heat0 * (1 + 1e-9) ? 0 : 1;
}
