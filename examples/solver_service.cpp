// Solve service walkthrough: the multi-tenant serving layer over the
// Solver facade (src/service/).
//
// Simulates two tenants of an in-process solver farm:
//   - "circuit" refactorizes one sparsity pattern with fresh values each
//     iteration (transient simulation): step 0 pays the full
//     analyze+factorize, every later step ships ONLY the new values
//     through the numeric-only refactorize fast path, which reuses both
//     the cached analysis and the allocated factors.
//   - "fem" fires a burst of right-hand sides at one factorization: the
//     batching window coalesces them into a single blocked solve_multi.
// Finishes by printing the per-request and service-wide stats as JSON --
// the same surface a monitoring endpoint would export.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "mat/generators.hpp"
#include "service/solve_service.hpp"

using namespace spx;
using service::FactorizeResult;
using service::RequestOptions;
using service::ServiceOptions;
using service::SolveResult;
using service::SolveService;
using service::Ticket;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto nx = static_cast<index_t>(cli.get_int("nx", 40));
  const int steps = static_cast<int>(cli.get_int("steps", 6));
  const int burst = static_cast<int>(cli.get_int("burst", 8));
  cli.check_unknown();

  ServiceOptions options;
  options.num_workers = 2;
  options.batch_window = 0.002;  // 2ms linger to coalesce solve bursts
  SolveService svc(options);

  // --- tenant "circuit": same pattern, new values every time step ------
  const auto base = gen::grid2d_laplacian(nx, nx);
  std::printf("tenant \"circuit\": 1 factorization + %d refactorizations "
              "of one %d-unknown pattern\n", steps - 1, base.ncols());
  const FactorizeResult first = svc.factorize(
      "circuit", std::make_shared<const CscMatrix<real_t>>(base),
      Factorization::LLT);
  if (!first.ok()) {
    std::fprintf(stderr, "factorize failed: %s\n", first.error.c_str());
    return 1;
  }
  std::printf("  step 0: full      analyze %6.2fms  factorize %6.2fms\n",
              first.stats.analyze_s * 1e3, first.stats.factorize_s * 1e3);
  for (int step = 1; step < steps; ++step) {
    // New values, identical sparsity structure (a shifted operator):
    // only the nnz doubles travel, the symbolic work is never redone.
    auto vals = std::vector<real_t>(base.values().begin(),
                                    base.values().end());
    for (auto& v : vals) v += 0.01 * (step + 1) * (v > 2.0 ? 1.0 : 0.0);
    const FactorizeResult fr =
        svc.refactorize("circuit", first.factor, std::move(vals));
    if (!fr.ok()) {
      std::fprintf(stderr, "refactorize failed: %s\n", fr.error.c_str());
      return 1;
    }
    std::printf("  step %d: refactor  analyze %6.2fms  factorize %6.2fms\n",
                step, fr.stats.analyze_s * 1e3, fr.stats.factorize_s * 1e3);
  }

  // --- tenant "fem": a burst of RHS against one factor -----------------
  const auto mesh = std::make_shared<const CscMatrix<real_t>>(
      gen::grid3d_laplacian(8, 8, 8));
  const FactorizeResult fem =
      svc.factorize("fem", mesh, Factorization::LLT);
  if (!fem.ok()) {
    std::fprintf(stderr, "fem factorize failed: %s\n", fem.error.c_str());
    return 1;
  }
  std::printf("\ntenant \"fem\": burst of %d solves against one factor\n",
              burst);
  std::vector<Ticket<SolveResult>> tickets;
  tickets.reserve(static_cast<std::size_t>(burst));
  for (int i = 0; i < burst; ++i) {
    std::vector<real_t> b(static_cast<std::size_t>(mesh->ncols()), 1.0);
    b[static_cast<std::size_t>(i)] += 1.0;  // each RHS slightly different
    tickets.push_back(svc.submit_solve(RequestOptions{.tenant = "fem"},
                                       fem.factor, std::move(b)));
  }
  index_t widest = 0;
  for (auto& t : tickets) {
    const SolveResult sr = t.get();
    if (!sr.ok()) {
      std::fprintf(stderr, "solve failed: %s\n", sr.error.c_str());
      return 1;
    }
    widest = std::max(widest, sr.stats.batched_rhs);
  }
  std::printf("  widest coalesced batch: %d RHS per traversal\n",
              static_cast<int>(widest));

  // --- the stats surface ------------------------------------------------
  std::printf("\nlast fem request as JSON:\n%s\n",
              fem.stats.to_json().dump().c_str());
  std::printf("\nservice totals as JSON:\n%s\n",
              svc.stats().to_json().dump().c_str());
  return 0;
}
