// Structural mechanics: 3D elasticity with LDL^T and iterative refinement.
//
// The audi/Geo1438/Serena matrices of the paper come from this domain.
// Assembles a 3D linear-elasticity surrogate (3 dofs per node), factorizes
// with LDL^T (the kind used for Serena), solves a gravity-load case, and
// refines to near machine precision, reporting per-runtime statistics.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"

using namespace spx;

namespace {

double residual_inf(const CscMatrix<double>& a,
                    const std::vector<double>& x,
                    const std::vector<double>& b) {
  std::vector<double> ax(b.size());
  a.multiply(x, ax);
  double r = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    r = std::max(r, std::abs(ax[i] - b[i]));
    bn = std::max(bn, std::abs(b[i]));
  }
  return r / bn;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const index_t nodes = static_cast<index_t>(cli.get_int("nodes", 16));
  cli.check_unknown();

  const CscMatrix<double> k = gen::elasticity3d(nodes, nodes, nodes);
  std::printf("stiffness matrix: %d dofs (%d^3 nodes x 3), %lld nnz\n\n",
              k.ncols(), nodes, static_cast<long long>(k.nnz()));

  // Gravity load: -z force on every node.
  std::vector<double> f(k.ncols(), 0.0);
  for (index_t node = 0; node < k.ncols() / 3; ++node) {
    f[3 * node + 2] = -9.81;
  }

  for (const RuntimeKind rt : {RuntimeKind::Native, RuntimeKind::Starpu,
                               RuntimeKind::Parsec}) {
    SolverOptions options;
    options.runtime = rt;
    Solver<double> solver(options);
    solver.analyze(k);
    solver.factorize(k, Factorization::LDLT);
    const RunStats& st = solver.last_factorization_stats();

    std::vector<double> u(k.ncols());
    const int iters = solver.solve_refine(k, f, u, 1e-13);

    double max_def = 0.0;
    for (const double v : u) max_def = std::max(max_def, std::abs(v));
    std::printf(
        "%-8s factorize %.3fs (%5.2f GFlop/s, %d tasks), refine iters=%d, "
        "residual=%.2e, peak deflection=%.4f\n",
        to_string(rt), st.makespan, st.gflops,
        static_cast<int>(st.tasks_cpu + st.tasks_gpu), iters,
        residual_inf(k, u, f), max_def);
  }
  return 0;
}
