// Quickstart: solve a sparse SPD system with the task-based solver.
//
//   $ ./quickstart [--n 40] [--runtime parsec|starpu|native|sequential]
//
// Builds a 3D Poisson problem, factorizes it with the selected task
// runtime, solves against a manufactured right-hand side, and reports the
// residual -- the whole public API in ~60 lines.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"

using namespace spx;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const index_t n = static_cast<index_t>(cli.get_int("n", 40));
  const std::string runtime = cli.get("runtime", "parsec");
  cli.check_unknown();

  // 1. Build a sparse matrix (7-point Laplacian on an n^3 grid).
  const CscMatrix<double> a = gen::grid3d_laplacian(n, n, n);
  std::printf("matrix: %d unknowns, %lld nonzeros\n", a.ncols(),
              static_cast<long long>(a.nnz()));

  // 2. Configure the solver.
  SolverOptions options;
  if (runtime == "parsec") {
    options.runtime = RuntimeKind::Parsec;
  } else if (runtime == "starpu") {
    options.runtime = RuntimeKind::Starpu;
  } else if (runtime == "native") {
    options.runtime = RuntimeKind::Native;
  } else {
    options.runtime = RuntimeKind::Sequential;
  }
  Solver<double> solver(options);

  // 3. Analyze (ordering + symbolic factorization) and factorize.
  solver.analyze(a);
  const auto& st = solver.analysis().structure;
  std::printf("analysis: %d panels, %lld update tasks, nnz(L)=%lld "
              "(%.1fx fill)\n",
              st.num_panels(),
              static_cast<long long>(st.num_update_tasks()),
              static_cast<long long>(st.nnz_factor),
              double(st.nnz_factor) / double(a.nnz()));
  solver.factorize(a, Factorization::LLT);
  std::printf("factorize[%s]: %.3fs (%.2f GFlop/s)\n", runtime.c_str(),
              solver.last_factorization_stats().makespan,
              solver.last_factorization_stats().gflops);

  // 4. Solve A x = b for a manufactured solution x* = 1.
  std::vector<double> xstar(a.ncols(), 1.0), b(a.ncols());
  a.multiply(xstar, b);
  std::vector<double> x = b;
  solver.solve(x);

  double err = 0.0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(x[i] - 1.0));
  }
  std::printf("max |x - x*| = %.3e\n", err);
  return err < 1e-8 ? 0 : 1;
}
