// Domain decomposition via Schur complements.
//
// Splits a 2D plate into two halves along a vertical interface, condenses
// each half onto the interface unknowns with a partial factorization,
// solves the small dense interface system, and recovers both interiors --
// the classic substructuring workflow the Schur API supports.  Here the
// whole plate is one matrix and the "subdomain" is simulated by letting
// the interface set be the middle grid column, so the result can be
// validated against a plain direct solve of the same system.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/schur.hpp"
#include "core/solver.hpp"
#include "kernels/dense.hpp"
#include "mat/generators.hpp"

using namespace spx;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const index_t nx = static_cast<index_t>(cli.get_int("nx", 60));
  cli.check_unknown();

  const CscMatrix<double> a = gen::grid2d_laplacian(nx, nx);
  // Interface: the middle grid column (nx unknowns).
  std::vector<index_t> iface;
  for (index_t y = 0; y < nx; ++y) iface.push_back(y * nx + nx / 2);
  std::printf("plate %dx%d: %d unknowns, interface of %zu\n", nx, nx,
              a.ncols(), iface.size());

  Timer t;
  SchurComplement<double> sc;
  sc.compute(a, iface, Factorization::LLT);
  std::printf("partial factorization (interiors condensed): %.3fs\n",
              t.elapsed());

  // Load: unit heat source everywhere.
  std::vector<double> b(a.ncols(), 1.0);

  // Interface system: S x2 = b2 - A21 A11^{-1} b1, dense k x k.
  auto s = sc.schur_matrix();
  auto x2 = sc.condense_rhs(b);
  const index_t k = sc.schur_size();
  kernels::potrf<double>(k, s.data(), k);
  kernels::trsv_lower<double>(k, s.data(), k, false, x2.data());
  kernels::trsv_lower_trans<double>(k, s.data(), k, false, x2.data());
  std::printf("dense interface solve: %d x %d SPD system\n", k, k);

  const std::vector<double> x = sc.expand_solution(b, x2);

  // Validate against the plain direct solver.
  Solver<double> direct;
  std::vector<double> xref = b;
  direct.analyze(a);
  direct.factorize(a, Factorization::LLT);
  direct.solve(xref);
  double err = 0.0, peak = 0.0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(x[i] - xref[i]));
    peak = std::max(peak, x[i]);
  }
  std::printf("peak temperature %.4f; |x_dd - x_direct|_inf = %.2e\n",
              peak, err);
  return err < 1e-8 ? 0 : 1;
}
