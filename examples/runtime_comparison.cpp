// Runtime comparison: the paper's experiment in miniature.
//
// Factorizes one matrix under all four execution modes with real threads
// (numerically identical results), then replays the same schedule on the
// simulated 12-core / 3-GPU Mirage node -- the configuration the paper's
// Figures 2 and 4 evaluate.
#include <cstdio>
#include <optional>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/sim_runner.hpp"
#include "core/solver.hpp"
#include "mat/surrogates.hpp"
#include "perfmodel/perf_model.hpp"
#include "runtime/flop_costs.hpp"
#include "runtime/parsec_scheduler.hpp"
#include "runtime/real_driver.hpp"
#include "runtime/trace.hpp"

using namespace spx;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string name = cli.get("matrix", "Flan");
  const double scale = cli.get_double("scale", 0.25);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const std::string trace_path = cli.get("trace", "");
  // Calibrated model (bench_calibration output): drives dmda/HEFT ranking
  // in the real runs and grounds the simulated CPU side in measured rates.
  const std::string perf_model = cli.get("perf-model", "");
  // Right-hand sides solved per runtime after factorization; >1 exercises
  // the blocked solve_multi path (GEMM-shaped updates instead of GEMVs).
  const auto nrhs = static_cast<index_t>(cli.get_int("nrhs", 1));
  cli.check_unknown();
  SPX_CHECK_ARG(nrhs >= 1, "--nrhs must be >= 1");

  const SurrogateSpec& spec = surrogate_by_name(name);
  SPX_CHECK_ARG(spec.prec == Precision::D,
                "this example uses the real-precision surrogates");
  const CscMatrix<double> a = build_surrogate_d(spec, scale);
  std::printf("%s surrogate at scale %.2f: %d unknowns\n\n", name.c_str(),
              scale, a.ncols());

  std::printf("--- real execution on this host (%d threads) ---\n",
              threads);
  for (const RuntimeKind rt :
       {RuntimeKind::Sequential, RuntimeKind::Native, RuntimeKind::Starpu,
        RuntimeKind::Parsec}) {
    SolverOptions options;
    options.runtime = rt;
    options.num_threads = threads;
    options.perf_model_file = perf_model;
    Solver<double> solver(options);
    solver.analyze(a);
    solver.factorize(a, spec.method);
    const RunStats& st = solver.last_factorization_stats();
    std::vector<double> block(
        static_cast<std::size_t>(a.ncols()) * static_cast<std::size_t>(nrhs),
        1.0);
    Timer tsolve;
    solver.solve_multi(block, nrhs);
    std::printf("  %-10s %7.3fs  %6.2f GFlop/s   solve x%d: %.4fs\n",
                to_string(rt), st.makespan, st.gflops,
                static_cast<int>(nrhs), tsolve.elapsed());
  }

  if (!trace_path.empty()) {
    // Gantt trace of one real parsec run: open the file in
    // chrome://tracing or Perfetto.
    const Analysis tan = analyze(a);
    FactorData<double> f(tan.structure, spec.method);
    f.initialize(permute_symmetric(a, tan.perm));
    TaskTable table(tan.structure, spec.method);
    Machine machine(threads);
    FlopCosts costs(table);
    ParsecScheduler sched(table, machine, costs);
    TraceRecorder trace;
    RealDriverOptions dopts;
    dopts.instr.trace = &trace;
    execute_real(sched, machine, f, dopts);
    trace.write_chrome_json_file(trace_path);
    std::printf("\nwrote %zu task events to %s (open in chrome://tracing)\n",
                trace.num_events(), trace_path.c_str());
  }

  std::printf("\n--- simulated Mirage node (12 cores, + GPUs) ---\n");
  std::optional<perfmodel::PerfModel> measured;
  if (!perf_model.empty()) {
    std::string err;
    measured = perfmodel::PerfModel::load(perf_model, &err);
    if (!measured) std::fprintf(stderr, "perf model skipped: %s\n", err.c_str());
  }
  AnalysisOptions aopts;
  aopts.symbolic.amalgamation.fill_ratio = 0.12;
  const Analysis an = analyze(a, aopts);
  for (const char* sched : {"native", "starpu", "parsec"}) {
    SimRunConfig cfg;
    cfg.scheduler = sched;
    if (measured) cfg.perf_model = &*measured;
    const RunStats cpu = simulate_run(an, spec.method, cfg);
    std::printf("  %-10s cpu12: %6.2f GFlop/s", sched, cpu.gflops);
    if (std::string(sched) != "native") {
      cfg.gpus = 3;
      cfg.streams_per_gpu = std::string(sched) == "parsec" ? 3 : 1;
      const RunStats gpu = simulate_run(an, spec.method, cfg);
      std::printf("   +3 GPUs: %6.2f GFlop/s (%.2f GB over PCIe)",
                  gpu.gflops, (gpu.bytes_h2d + gpu.bytes_d2h) / 1e9);
    }
    std::printf("\n");
  }
  return 0;
}
