// FaultStress: seed-sweep fault injection against the threaded runtime.
//
// For every (seed, action, scheduler) combination this drives a full
// factorize with one injected fault and asserts the liveness contract:
// the run terminates (no deadlock -- enforced by a watchdog), exactly one
// error surfaces when the fault is fatal, and the solver is left
// re-analyzable (the next factorize on the same solver succeeds).
//
// A second row arms the fault mid-refactorize instead: a torn-down
// numeric-only refresh must roll back so the PREVIOUS factor keeps
// serving -- the contract the wire RefactorizeRequest opcode relies on.
//
// Registered in ctest as `FaultStress` running `--smoke` (~a few seconds);
// the full sweep (no flag) is the soak configuration for hunting races.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "mat/generators.hpp"
#include "core/solver.hpp"
#include "runtime/fault_injection.hpp"

namespace {

using namespace spx;

struct Config {
  std::uint64_t seeds = 400;
  int repeat_per_seed = 1;
};

int g_failures = 0;

void check(bool ok, const char* what, std::uint64_t seed, FaultAction a,
           RuntimeKind rt) {
  if (ok) return;
  ++g_failures;
  std::fprintf(stderr, "FAIL seed=%llu action=%s runtime=%s: %s\n",
               static_cast<unsigned long long>(seed), to_string(a),
               to_string(rt), what);
}

void run_one(const CscMatrix<real_t>& a, std::uint64_t seed,
             FaultAction action, RuntimeKind rt, std::uint64_t ntasks) {
  FaultInjector fault(FaultPlan::seeded(action, seed, ntasks, 0.001));
  SolverOptions opts;
  opts.runtime = rt;
  opts.num_threads = 4;
  opts.instr.fault = &fault;
  if (action == FaultAction::StallTransfer) {
    // Transfer stalls need transfers: run with an emulated device and a
    // zero offload floor so staging traffic definitely exists.
    EngineSpec spec;
    spec.bandwidth_gbps = 200.0;
    spec.latency_seconds = 0.0;
    opts.hetero.devices = {spec};
    opts.starpu.gpu_min_flops = 0;
    opts.parsec.gpu_min_flops = 0;
  }
  Solver<real_t> solver(opts);
  solver.analyze(a);
  bool threw = false;
  try {
    solver.factorize(a, Factorization::LLT);
  } catch (const InjectedFault&) {
    threw = true;
  } catch (const NumericalError&) {
    threw = true;  // corrupt-pivot escalation path
  } catch (const std::bad_alloc&) {
    threw = true;
  }
  if (threw) {
    check(!solver.factorized(), "failed factorize left factors behind",
          seed, action, rt);
  } else {
    check(solver.factorized(), "no-throw run did not produce factors",
          seed, action, rt);
  }
  check(solver.analyzed(), "solver lost its analysis", seed, action, rt);
  // Liveness part 2: the same solver must be usable again (the injector
  // ordinal has moved past the victim, so this attempt runs fault-free).
  try {
    solver.factorize(a, Factorization::LLT);
    std::vector<real_t> b(static_cast<std::size_t>(a.ncols()), 1.0);
    solver.solve(b);
  } catch (const std::exception& e) {
    check(false, e.what(), seed, action, rt);
  }
}

/// Mid-refactorize fault row.  The seed factorize runs disarmed, the
/// fault is rearmed just before the numeric-only refresh.  With
/// pivot_threshold == 0 every armed action is deterministic: a fault
/// that fires throws (rollback -> the OLD values keep serving), a fault
/// that does not fire or only stalls completes (the NEW values serve).
void run_one_refactorize(const CscMatrix<real_t>& a, std::uint64_t seed,
                         FaultAction action, RuntimeKind rt,
                         std::uint64_t ntasks) {
  FaultInjector fault;  // disarmed through the seed factorize
  SolverOptions opts;
  opts.runtime = rt;
  opts.num_threads = 4;
  opts.pivot_threshold = 0;  // corrupted pivots throw, never perturb
  opts.instr.fault = &fault;
  Solver<real_t> solver(opts);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);

  const auto n = static_cast<std::size_t>(a.ncols());
  const std::vector<real_t> ones(n, 1.0);
  std::vector<real_t> b_old(n), b_new(n);
  a.multiply(ones, b_old);
  std::vector<real_t> doubled(a.values().begin(), a.values().end());
  for (auto& v : doubled) v *= 2.0;
  const CscMatrix<real_t> a2(
      a.nrows(), a.ncols(),
      std::vector<size_type>(a.colptr().begin(), a.colptr().end()),
      std::vector<index_t>(a.rowind().begin(), a.rowind().end()),
      std::move(doubled));
  a2.multiply(ones, b_new);

  fault.rearm(FaultPlan::seeded(action, seed, ntasks, 0.001));
  bool threw = false;
  try {
    solver.refactorize(a2);
  } catch (const InjectedFault&) {
    threw = true;
  } catch (const NumericalError&) {
    threw = true;  // corrupt-pivot under pivot_threshold == 0
  } catch (const std::bad_alloc&) {
    threw = true;
  }
  check(solver.factorized(), "refactorize failure lost the factors", seed,
        action, rt);
  try {
    std::vector<real_t> x = threw ? b_old : b_new;
    solver.solve(x);
    double err = 0;
    for (const real_t v : x) err = std::max(err, std::abs(v - 1.0));
    check(err < 1e-6,
          threw ? "rollback did not keep the previous factor serving"
                : "clean refactorize served wrong values",
          seed, action, rt);
  } catch (const std::exception& e) {
    check(false, e.what(), seed, action, rt);
  }
  // Liveness part 2: the rolled-back solver still takes a later clean
  // refactorize and serves the refreshed values.
  fault.rearm(FaultPlan{});
  try {
    solver.refactorize(a2);
    std::vector<real_t> x = b_new;
    solver.solve(x);
    double err = 0;
    for (const real_t v : x) err = std::max(err, std::abs(v - 1.0));
    check(err < 1e-6, "post-rollback refactorize serves wrong values",
          seed, action, rt);
  } catch (const std::exception& e) {
    check(false, e.what(), seed, action, rt);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) cfg.seeds = 60;
  }
  const auto a = gen::grid2d_laplacian(24, 24);
  const RuntimeKind runtimes[] = {RuntimeKind::Native, RuntimeKind::Starpu,
                                  RuntimeKind::Parsec};
  const FaultAction actions[] = {FaultAction::Throw, FaultAction::Stall,
                                 FaultAction::CorruptPivot,
                                 FaultAction::AllocFail,
                                 FaultAction::StallTransfer};
  // Rough task-count upper bound for victim placement; seeds that land
  // past the actual task count simply never fire (also a valid run).
  const std::uint64_t ntasks = 200;

  // Watchdog: the whole sweep must terminate.  A deadlocked scheduler
  // would otherwise hang ctest; abort loudly instead.
  std::atomic<bool> done{false};
  std::thread watchdog([&done] {
    for (int i = 0; i < 1200; ++i) {  // 120 s ceiling
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (done.load()) return;
    }
    std::fprintf(stderr, "FAIL: fault sweep deadlocked (watchdog)\n");
    std::_Exit(2);
  });

  std::uint64_t runs = 0;
  for (std::uint64_t seed = 0; seed < cfg.seeds; ++seed) {
    for (const FaultAction action : actions) {
      // Rotate schedulers with the seed so the smoke sweep still touches
      // all of them without tripling its runtime.  Hetero staging (the
      // StallTransfer stream) only exists under starpu/parsec.
      RuntimeKind rt = runtimes[seed % 3];
      if (action == FaultAction::StallTransfer && rt == RuntimeKind::Native) {
        rt = runtimes[1 + seed % 2];
      }
      run_one(a, seed, action, rt, ntasks);
      ++runs;
      // The refactorize rollback row: skip the actions that cannot fire
      // there (no factor allocation happens, no staging is re-planned).
      if (action != FaultAction::AllocFail &&
          action != FaultAction::StallTransfer) {
        run_one_refactorize(a, seed, action, runtimes[seed % 3], ntasks);
        ++runs;
      }
    }
  }
  done.store(true);
  watchdog.join();
  std::printf("fault_stress: %llu runs, %d failures\n",
              static_cast<unsigned long long>(runs), g_failures);
  return g_failures == 0 ? 0 : 1;
}
