// Mixed-precision (float factorization + double refinement) tests.
#include <gtest/gtest.h>

#include "core/mixed.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"

namespace spx {
namespace {

TEST(MixedPrecision, ConvergesToDoubleAccuracy) {
  const auto a = gen::grid3d_laplacian(7, 7, 7);
  MixedPrecisionSolver solver;
  solver.factorize(a, Factorization::LLT);
  Rng rng(500);
  std::vector<real_t> xstar(a.ncols()), b(a.ncols()), x(a.ncols());
  for (auto& v : xstar) v = rng.uniform(-1, 1);
  a.multiply(xstar, b);
  const MixedSolveReport rep = solver.solve(b, x, 1e-12);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.residual, 1e-12);
  EXPECT_GE(rep.iterations, 2);   // float alone cannot reach 1e-12
  EXPECT_LE(rep.iterations, 10);  // but refinement converges fast
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(x[i] - xstar[i]));
  }
  EXPECT_LT(err, 1e-10);
}

TEST(MixedPrecision, SingleSweepMatchesFloatAccuracyOnly) {
  const auto a = gen::grid2d_laplacian(15, 15);
  MixedPrecisionSolver solver;
  solver.factorize(a, Factorization::LLT);
  Rng rng(501);
  std::vector<real_t> xstar(a.ncols()), b(a.ncols()), x(a.ncols());
  for (auto& v : xstar) v = rng.uniform(-1, 1);
  a.multiply(xstar, b);
  const MixedSolveReport rep = solver.solve(b, x, 1e-30, 1);
  EXPECT_FALSE(rep.converged);
  // A single float-precision solve lands around 1e-5..1e-7 relative.
  EXPECT_LT(rep.residual, 1e-3);
  EXPECT_GT(rep.residual, 1e-12);
}

TEST(MixedPrecision, WorksForLdltAndLu) {
  Rng rng(502);
  {
    const auto a = gen::random_sym_indefinite(120, 0.05, rng);
    MixedPrecisionSolver solver;
    solver.factorize(a, Factorization::LDLT);
    std::vector<real_t> b(a.ncols(), 1.0), x(a.ncols());
    EXPECT_TRUE(solver.solve(b, x, 1e-11).converged);
  }
  {
    const auto a = gen::convection_diffusion3d(5, 5, 5, 10.0);
    MixedPrecisionSolver solver;
    solver.factorize(a, Factorization::LU);
    std::vector<real_t> b(a.ncols(), 1.0), x(a.ncols());
    EXPECT_TRUE(solver.solve(b, x, 1e-11).converged);
  }
}

TEST(MixedPrecision, UsesHalfTheFactorMemory) {
  const auto a = gen::grid3d_laplacian(6, 6, 6);
  MixedPrecisionSolver mixed;
  mixed.factorize(a, Factorization::LLT);
  Solver<real_t> full;
  full.analyze(a);
  full.factorize(a, Factorization::LLT);
  // Same structure, half the scalar width (FactorData::bytes covers L).
  const Analysis an = analyze(a);
  const std::size_t expect_float =
      static_cast<std::size_t>(an.structure.factor_entries) * sizeof(float);
  EXPECT_EQ(mixed.factor_bytes(), expect_float);
}

TEST(MixedPrecision, ThrowsWithoutFactorize) {
  MixedPrecisionSolver solver;
  std::vector<real_t> b(4, 1.0), x(4);
  EXPECT_THROW(solver.solve(b, x), InvalidArgument);
}

}  // namespace
}  // namespace spx
