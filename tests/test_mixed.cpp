// Mixed-precision (float factorization + double refinement) tests.
#include <gtest/gtest.h>

#include "core/mixed.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"

namespace spx {
namespace {

TEST(MixedPrecision, ConvergesToDoubleAccuracy) {
  const auto a = gen::grid3d_laplacian(7, 7, 7);
  MixedPrecisionSolver solver;
  solver.factorize(a, Factorization::LLT);
  Rng rng(500);
  std::vector<real_t> xstar(a.ncols()), b(a.ncols()), x(a.ncols());
  for (auto& v : xstar) v = rng.uniform(-1, 1);
  a.multiply(xstar, b);
  const MixedSolveReport rep = solver.solve(b, x, 1e-12);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.residual, 1e-12);
  EXPECT_GE(rep.iterations, 2);   // float alone cannot reach 1e-12
  EXPECT_LE(rep.iterations, 10);  // but refinement converges fast
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(x[i] - xstar[i]));
  }
  EXPECT_LT(err, 1e-10);
}

TEST(MixedPrecision, SingleSweepMatchesFloatAccuracyOnly) {
  const auto a = gen::grid2d_laplacian(15, 15);
  MixedPrecisionSolver solver;
  solver.factorize(a, Factorization::LLT);
  Rng rng(501);
  std::vector<real_t> xstar(a.ncols()), b(a.ncols()), x(a.ncols());
  for (auto& v : xstar) v = rng.uniform(-1, 1);
  a.multiply(xstar, b);
  const MixedSolveReport rep = solver.solve(b, x, 1e-30, 1);
  EXPECT_FALSE(rep.converged);
  // A single float-precision solve lands around 1e-5..1e-7 relative.
  EXPECT_LT(rep.residual, 1e-3);
  EXPECT_GT(rep.residual, 1e-12);
}

TEST(MixedPrecision, WorksForLdltAndLu) {
  Rng rng(502);
  {
    const auto a = gen::random_sym_indefinite(120, 0.05, rng);
    MixedPrecisionSolver solver;
    solver.factorize(a, Factorization::LDLT);
    std::vector<real_t> b(a.ncols(), 1.0), x(a.ncols());
    EXPECT_TRUE(solver.solve(b, x, 1e-11).converged);
  }
  {
    const auto a = gen::convection_diffusion3d(5, 5, 5, 10.0);
    MixedPrecisionSolver solver;
    solver.factorize(a, Factorization::LU);
    std::vector<real_t> b(a.ncols(), 1.0), x(a.ncols());
    EXPECT_TRUE(solver.solve(b, x, 1e-11).converged);
  }
}

TEST(MixedPrecision, UsesHalfTheFactorMemory) {
  const auto a = gen::grid3d_laplacian(6, 6, 6);
  MixedPrecisionSolver mixed;
  mixed.factorize(a, Factorization::LLT);
  Solver<real_t> full;
  full.analyze(a);
  full.factorize(a, Factorization::LLT);
  // Same structure, half the scalar width (FactorData::bytes covers L).
  const Analysis an = analyze(a);
  const std::size_t expect_float =
      static_cast<std::size_t>(an.structure.factor_entries) * sizeof(float);
  EXPECT_EQ(mixed.factor_bytes(), expect_float);
}

TEST(MixedPrecision, ThrowsWithoutFactorize) {
  MixedPrecisionSolver solver;
  std::vector<real_t> b(4, 1.0), x(4);
  EXPECT_THROW(solver.solve(b, x), InvalidArgument);
  const auto a = gen::grid2d_laplacian(6, 6);
  EXPECT_THROW(solver.refactorize(a), InvalidArgument);
}

TEST(MixedPrecision, AdoptedAnalysisSkipsTheSymbolicPhase) {
  const auto a = gen::grid2d_laplacian(12, 12);
  const auto an = std::make_shared<const Analysis>(analyze(a));
  MixedPrecisionSolver solver;
  solver.adopt_analysis(an, pattern_digest(a));
  solver.factorize(a, Factorization::LLT);
  EXPECT_TRUE(solver.factorized());
  EXPECT_EQ(solver.pattern_digest(), pattern_digest(a));
  std::vector<real_t> b(a.ncols(), 1.0), x(a.ncols());
  EXPECT_TRUE(solver.solve(b, x, 1e-11).converged);
}

TEST(MixedPrecision, RefactorizeIngestsNewValues) {
  const auto a = gen::grid2d_laplacian(12, 12);
  MixedPrecisionSolver solver;
  solver.factorize(a, Factorization::LLT);
  // Scale by 2: the same right-hand side must now solve to x/2.
  std::vector<real_t> vals(a.values().begin(), a.values().end());
  for (auto& v : vals) v *= 2.0;
  const CscMatrix<real_t> a2(
      a.nrows(), a.ncols(),
      std::vector<size_type>(a.colptr().begin(), a.colptr().end()),
      std::vector<index_t>(a.rowind().begin(), a.rowind().end()),
      std::move(vals));
  solver.refactorize(a2);
  std::vector<real_t> ones(a.ncols(), 1.0), b(a.ncols()), x(a.ncols());
  a.multiply(ones, b);  // b of the ORIGINAL matrix
  const MixedSolveReport rep = solver.solve(b, x, 1e-12);
  EXPECT_TRUE(rep.converged);
  for (index_t i = 0; i < a.ncols(); ++i) EXPECT_NEAR(x[i], 0.5, 1e-10);
}

TEST(MixedPrecision, SolveMultiRefinesEveryColumn) {
  const auto a = gen::grid2d_laplacian(12, 12);
  MixedPrecisionSolver solver;
  solver.factorize(a, Factorization::LLT);
  const auto n = static_cast<std::size_t>(a.ncols());
  const index_t nrhs = 3;
  Rng rng(503);
  std::vector<real_t> xstar(n * nrhs);
  for (auto& v : xstar) v = rng.uniform(-1, 1);
  std::vector<real_t> block(n * nrhs);
  for (index_t c = 0; c < nrhs; ++c) {
    a.multiply(
        std::span<const real_t>(xstar.data() + std::size_t(c) * n, n),
        std::span<real_t>(block.data() + std::size_t(c) * n, n));
  }
  const MixedSolveReport rep = solver.solve_multi(block, nrhs, 1e-12);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.residual, 1e-12);  // the report carries the WORST column
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_NEAR(block[i], xstar[i], 1e-10);
  }
}

}  // namespace
}  // namespace spx
