// Distributed-memory simulation tests: proportional mapping properties and
// the fan-in/fan-out communication schemes (paper future work, §VI).
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "dist/fanin_sim.hpp"
#include "mat/generators.hpp"
#include "sim/cost_model.hpp"

namespace spx {
namespace {

using dist::ClusterSpec;
using dist::CommMode;
using dist::proportional_mapping;

class DistFixture : public ::testing::Test {
 protected:
  Analysis an = analyze(gen::grid3d_laplacian(12, 12, 12));
  sim::CostModel model{sim::mirage(), an.structure, Factorization::LLT, {}};
};

TEST_F(DistFixture, MappingCoversAllPanelsWithinRange) {
  for (const index_t nodes : {1, 2, 3, 7, 16}) {
    const auto map = proportional_mapping(an.structure, model, nodes);
    ASSERT_EQ(static_cast<index_t>(map.owner.size()),
              an.structure.num_panels());
    for (const index_t o : map.owner) {
      EXPECT_GE(o, 0);
      EXPECT_LT(o, nodes);
    }
    EXPECT_EQ(map.num_nodes, nodes);
  }
}

TEST_F(DistFixture, MappingUsesEveryNode) {
  const auto map = proportional_mapping(an.structure, model, 4);
  std::vector<int> used(4, 0);
  for (const index_t o : map.owner) used[o] = 1;
  for (int n = 0; n < 4; ++n) EXPECT_TRUE(used[n]) << "node " << n;
}

TEST_F(DistFixture, MappingIsReasonablyBalanced) {
  for (const index_t nodes : {2, 4, 8}) {
    const auto map = proportional_mapping(an.structure, model, nodes);
    EXPECT_LT(map.imbalance(), 1.25)
        << nodes << " nodes: max/avg work too skewed";
  }
}

TEST_F(DistFixture, SingleNodeSendsNothing) {
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  const auto st = dist::simulate_distributed(
      an.structure, Factorization::LLT, model, cluster, CommMode::FanIn);
  EXPECT_EQ(st.messages, 0);
  EXPECT_EQ(st.bytes_sent, 0.0);
  EXPECT_GT(st.gflops, 0.0);
}

TEST_F(DistFixture, FanInSendsFarFewerMessages) {
  ClusterSpec cluster;
  cluster.num_nodes = 4;
  const auto fi = dist::simulate_distributed(
      an.structure, Factorization::LLT, model, cluster, CommMode::FanIn);
  const auto fo = dist::simulate_distributed(
      an.structure, Factorization::LLT, model, cluster, CommMode::FanOut);
  EXPECT_GT(fo.messages, 4 * fi.messages);
  EXPECT_LE(fi.bytes_sent, fo.bytes_sent);
  // The fan-in message count is bounded by (node, remote-target) pairs.
  EXPECT_LE(fi.messages,
            static_cast<std::int64_t>(an.structure.num_panels()) * 4);
}

TEST_F(DistFixture, MoreNodesHelpWhenWorkBound) {
  // At this matrix size a single 12-core node is already critical-path
  // bound, so extra nodes cannot pay (they only add communication) --
  // itself a meaningful property.  With 2-core nodes the run is
  // work-bound and distribution must win.
  const Analysis big = analyze(gen::grid3d_laplacian(20, 20, 20));
  sim::CostModel m2(sim::mirage(), big.structure, Factorization::LLT, {});
  ClusterSpec one, four;
  one.num_nodes = 1;
  four.num_nodes = 4;
  one.cores_per_node = four.cores_per_node = 2;
  const double t1 = dist::simulate_distributed(big.structure,
                                               Factorization::LLT, m2,
                                               one, CommMode::FanIn)
                        .makespan;
  const double t4 = dist::simulate_distributed(big.structure,
                                               Factorization::LLT, m2,
                                               four, CommMode::FanIn)
                        .makespan;
  EXPECT_LT(t4, t1 * 0.6);
}

TEST_F(DistFixture, Deterministic) {
  ClusterSpec cluster;
  cluster.num_nodes = 3;
  const auto a = dist::simulate_distributed(
      an.structure, Factorization::LLT, model, cluster, CommMode::FanIn);
  const auto b = dist::simulate_distributed(
      an.structure, Factorization::LLT, model, cluster, CommMode::FanIn);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.messages, b.messages);
}

TEST_F(DistFixture, SlowNetworkHurtsFanOutMore) {
  ClusterSpec fast, slow;
  fast.num_nodes = slow.num_nodes = 4;
  slow.net_bandwidth = 1e8;  // 100 MB/s: saturated network
  slow.net_latency = 5e-5;
  const double fi_slow =
      dist::simulate_distributed(an.structure, Factorization::LLT, model,
                                 slow, CommMode::FanIn)
          .makespan;
  const double fo_slow =
      dist::simulate_distributed(an.structure, Factorization::LLT, model,
                                 slow, CommMode::FanOut)
          .makespan;
  // With an over-subscribed network, aggregation wins clearly.
  EXPECT_LT(fi_slow, fo_slow);
}

TEST_F(DistFixture, LuAndLdltAlsoRun) {
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  for (const Factorization kind :
       {Factorization::LDLT, Factorization::LU}) {
    sim::CostModel m2(sim::mirage(), an.structure, kind, {});
    const auto st = dist::simulate_distributed(an.structure, kind, m2,
                                               cluster, CommMode::FanIn);
    EXPECT_GT(st.gflops, 0.0);
  }
}

}  // namespace
}  // namespace spx
