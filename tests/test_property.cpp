// Property / randomized sweeps across the whole stack:
//   * end-to-end solves on random matrices, many seeds, every kind;
//   * the row-segment maps against the row_position oracle;
//   * implicit dependency inference against a brute-force sequential-
//     consistency oracle on random access streams;
//   * symbolic-structure invariants on randomized patterns;
//   * scheduler completion under randomized popping order.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/sequential.hpp"
#include "kernels/scatter.hpp"
#include "mat/generators.hpp"
#include "runtime/access_deps.hpp"
#include "runtime/flop_costs.hpp"
#include "runtime/parsec_scheduler.hpp"
#include "test_support.hpp"

namespace spx {
namespace {

// ---- end-to-end solves over random matrices ----------------------------

class RandomSolves : public ::testing::TestWithParam<int> {};

TEST_P(RandomSolves, SpdCholesky) {
  Rng rng(1000 + GetParam());
  const index_t n = 40 + static_cast<index_t>(rng.next_below(120));
  const double density = rng.uniform(0.02, 0.15);
  const auto a = gen::random_spd(n, density, rng);
  EXPECT_LT(test::solve_residual<real_t>(
                a, Factorization::LLT,
                [](FactorData<real_t>& f) { factorize_sequential(f); }),
            1e-9);
}

TEST_P(RandomSolves, IndefiniteLdlt) {
  Rng rng(2000 + GetParam());
  const index_t n = 40 + static_cast<index_t>(rng.next_below(120));
  const auto a = gen::random_sym_indefinite(n, rng.uniform(0.02, 0.12), rng);
  EXPECT_LT(test::solve_residual<real_t>(
                a, Factorization::LDLT,
                [](FactorData<real_t>& f) { factorize_sequential(f); }),
            1e-8);
}

TEST_P(RandomSolves, UnsymmetricLu) {
  Rng rng(3000 + GetParam());
  const index_t n = 40 + static_cast<index_t>(rng.next_below(120));
  const auto a = gen::random_unsym(n, rng.uniform(0.02, 0.12), rng);
  EXPECT_LT(test::solve_residual<real_t>(
                a, Factorization::LU,
                [](FactorData<real_t>& f) { factorize_sequential(f); }),
            1e-8);
}

TEST_P(RandomSolves, ComplexSymmetricLdlt) {
  Rng rng(4000 + GetParam());
  const index_t n = 30 + static_cast<index_t>(rng.next_below(80));
  const auto a = gen::random_complex_sym(n, rng.uniform(0.03, 0.12), rng);
  EXPECT_LT(test::solve_residual<complex_t>(
                a, Factorization::LDLT,
                [](FactorData<complex_t>& f) { factorize_sequential(f); }),
            1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSolves, ::testing::Range(0, 8));

// ---- row-segment maps vs the row_position oracle ------------------------

TEST(SegmentProperty, EveryTrailingRowMapsCorrectly) {
  Rng rng(42);
  for (int trial = 0; trial < 6; ++trial) {
    const auto a =
        gen::random_spd(80 + 20 * trial, 0.05 + 0.01 * trial, rng);
    const Analysis an = analyze(a);
    const SymbolicStructure& st = an.structure;
    FactorData<real_t> f(st, Factorization::LLT);
    for (index_t p = 0; p < st.num_panels(); ++p) {
      const Panel& sp = st.panels[p];
      for (const UpdateEdge& e : st.targets[p]) {
        const Panel& dp = st.panels[e.dst];
        for (index_t b = e.first_block; b < e.last_block; ++b) {
          const index_t off = sp.blocks[b].offset;
          const auto segs = kernels::build_row_segments(sp, off, dp);
          // Coverage: segments tile [off, nrows) exactly, in order.
          index_t covered = 0;
          for (const auto& s : segs) {
            EXPECT_EQ(s.src_offset, covered);
            covered += s.len;
          }
          EXPECT_EQ(covered, sp.nrows - off);
          // Mapping: each source row lands where row_position says.
          for (const auto& s : segs) {
            for (index_t r = 0; r < s.len; ++r) {
              // global row of source storage row off + src_offset + r:
              const index_t srow = off + s.src_offset + r;
              index_t grow = -1;
              for (const Block& blk : sp.blocks) {
                if (srow >= blk.offset &&
                    srow < blk.offset + blk.height()) {
                  grow = blk.row_begin + (srow - blk.offset);
                  break;
                }
              }
              ASSERT_GE(grow, 0);
              EXPECT_EQ(s.dst_offset + r, f.row_position(e.dst, grow));
            }
          }
        }
      }
    }
  }
}

// ---- implicit deps vs a brute-force oracle -------------------------------

struct OracleAccess {
  index_t task;
  index_t handle;
  AccessMode mode;
};

// Brute force: task j depends on earlier task i iff they touch a common
// handle and the pair is not (Read, Read) and not two members of the same
// commute group with no interleaving non-commute access.
std::set<std::pair<index_t, index_t>> oracle_edges(
    const std::vector<std::vector<Access>>& tasks) {
  std::set<std::pair<index_t, index_t>> edges;
  const auto writes = [](AccessMode m) { return m != AccessMode::Read; };
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    for (const Access& aj : tasks[j]) {
      for (std::size_t i = 0; i < j; ++i) {
        for (const Access& ai : tasks[i]) {
          if (ai.handle != aj.handle) continue;
          if (!writes(ai.mode) && !writes(aj.mode)) continue;
          if (ai.mode == AccessMode::CommuteRW &&
              aj.mode == AccessMode::CommuteRW) {
            // Same open group?  Only if no non-commute access to the
            // handle strictly between i and j.
            bool interleaved = false;
            for (std::size_t k = i + 1; k < j; ++k) {
              for (const Access& ak : tasks[k]) {
                if (ak.handle == ai.handle &&
                    ak.mode != AccessMode::CommuteRW) {
                  interleaved = true;
                }
              }
            }
            if (!interleaved) continue;  // commute: no edge
          }
          edges.insert({i, j});
        }
      }
    }
  }
  return edges;
}

// Transitive closure of a DAG edge set over `n` nodes.
std::set<std::pair<index_t, index_t>> closure(
    const std::set<std::pair<index_t, index_t>>& edges, index_t n) {
  std::vector<std::set<index_t>> reach(n);
  for (index_t j = 0; j < n; ++j) {
    for (const auto& [a, b] : edges) {
      if (b == j) {
        reach[j].insert(a);
        reach[j].insert(reach[a].begin(), reach[a].end());
      }
    }
  }
  std::set<std::pair<index_t, index_t>> out;
  for (index_t j = 0; j < n; ++j) {
    for (const index_t i : reach[j]) out.insert({i, j});
  }
  return out;
}

TEST(ImplicitDepsProperty, MatchesOracleUpToTransitivity) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const index_t nh = 1 + static_cast<index_t>(rng.next_below(3));
    const index_t nt = 4 + static_cast<index_t>(rng.next_below(8));
    std::vector<std::vector<Access>> tasks(nt);
    for (index_t t = 0; t < nt; ++t) {
      const index_t na = 1 + static_cast<index_t>(rng.next_below(2));
      std::set<index_t> used;
      for (index_t a = 0; a < na; ++a) {
        const index_t h = static_cast<index_t>(rng.next_below(nh));
        if (used.count(h)) continue;
        used.insert(h);
        const AccessMode modes[] = {AccessMode::Read, AccessMode::Write,
                                    AccessMode::ReadWrite,
                                    AccessMode::CommuteRW};
        tasks[t].push_back({h, modes[rng.next_below(4)]});
      }
      if (tasks[t].empty()) tasks[t].push_back({0, AccessMode::Read});
    }
    ImplicitDeps deps(nh, nt);
    for (index_t t = 0; t < nt; ++t) deps.submit(t, tasks[t]);
    std::set<std::pair<index_t, index_t>> got;
    for (index_t i = 0; i < nt; ++i) {
      for (const index_t j : deps.successors()[i]) got.insert({i, j});
    }
    // The engine may elide transitively-implied edges and the oracle may
    // list them; compare transitive closures.
    EXPECT_EQ(closure(got, nt), closure(oracle_edges(tasks), nt))
        << "trial " << trial;
  }
}

// ---- randomized scheduler completion -------------------------------------

TEST(SchedulerProperty, RandomPoppingOrderAlwaysCompletes) {
  const Analysis an = analyze(gen::grid2d_laplacian(13, 13));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(3);
  FlopCosts costs(table);
  ParsecScheduler sched(table, machine, costs);
  Rng rng(88);
  for (int trial = 0; trial < 5; ++trial) {
    sched.reset();
    std::vector<std::pair<Task, int>> inflight;
    index_t completed = 0;
    while (!sched.finished()) {
      // Randomly either pop from a random resource or complete a random
      // in-flight task.
      const bool pop = inflight.empty() || rng.next_below(2) == 0;
      if (pop) {
        const int r = static_cast<int>(rng.next_below(3));
        Task t;
        if (sched.try_pop(r, &t)) {
          inflight.emplace_back(t, r);
          continue;
        }
      }
      if (!inflight.empty()) {
        const std::size_t k = rng.next_below(inflight.size());
        sched.on_complete(inflight[k].first, inflight[k].second);
        inflight.erase(inflight.begin() + static_cast<std::ptrdiff_t>(k));
        ++completed;
      }
    }
    EXPECT_EQ(completed, table.num_tasks()) << "trial " << trial;
  }
}

// ---- symbolic invariants on random patterns -------------------------------

TEST(SymbolicProperty, RandomPatternsValidate) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const index_t n = 30 + static_cast<index_t>(rng.next_below(100));
    const auto a = gen::random_spd(n, rng.uniform(0.02, 0.2), rng);
    AnalysisOptions opts;
    opts.symbolic.amalgamation.fill_ratio = rng.uniform(0.0, 0.3);
    opts.symbolic.max_panel_width =
        static_cast<index_t>(8 + rng.next_below(120));
    const Analysis an = analyze(a, opts);
    an.structure.validate();
    // nnz accounting is consistent.
    EXPECT_GE(an.structure.nnz_factor, a.nnz() / 2);
    EXPECT_LE(an.structure.nnz_factor,
              static_cast<size_type>(n) * (n + 1) / 2);
  }
}

}  // namespace
}  // namespace spx
