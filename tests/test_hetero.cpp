// Heterogeneous device-engine tests: coherence-directory residency
// transitions, the shared LRU model, end-to-end staged execution with
// eviction and dirty write-back, overlap determinism under transfer-stall
// fault injection, and sim/real scheduler parity (the dmda placement the
// real driver makes with emulated engines must equal the simulator's
// under identical calibrated costs).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/analysis.hpp"
#include "core/solve.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"
#include "runtime/data_directory.hpp"
#include "runtime/device_engine.hpp"
#include "runtime/engine_model.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/real_driver.hpp"
#include "runtime/starpu_scheduler.hpp"
#include "sim/cost_model.hpp"
#include "sim/platform.hpp"
#include "sim/sim_driver.hpp"
#include "test_support.hpp"

namespace spx {
namespace {

constexpr double kTol = 1e-9;

// ---------------- DataDirectory residency transitions ------------------

class Residency : public ::testing::Test {
 protected:
  Analysis an = analyze(gen::grid2d_laplacian(6, 6));
  DataDirectory dir{an.structure, Factorization::LLT, 8, 2};
};

TEST_F(Residency, StartsHostValidNothingDirty) {
  for (index_t p = 0; p < an.structure.num_panels(); ++p) {
    EXPECT_TRUE(dir.valid_on(p, DataDirectory::kHost));
    EXPECT_FALSE(dir.valid_on(p, 0));
    EXPECT_FALSE(dir.valid_on(p, 1));
    EXPECT_FALSE(dir.dirty_on(p, DataDirectory::kHost));
    EXPECT_EQ(dir.source_of(p), DataDirectory::kHost);
  }
}

TEST_F(Residency, FetchMakesSharedCopy) {
  EXPECT_GT(dir.bytes_to_fetch(0, 0), 0.0);
  dir.add_copy(0, 0);
  EXPECT_TRUE(dir.valid_on(0, 0));
  EXPECT_TRUE(dir.valid_on(0, DataDirectory::kHost));  // shared, not moved
  EXPECT_DOUBLE_EQ(dir.bytes_to_fetch(0, 0), 0.0);
  EXPECT_FALSE(dir.dirty_on(0, 0));  // a fetch never dirties
}

TEST_F(Residency, DeviceWriteInvalidatesAndDirties) {
  dir.add_copy(0, 0);
  dir.add_copy(0, 1);
  dir.note_write(0, 1);
  EXPECT_FALSE(dir.valid_on(0, DataDirectory::kHost));
  EXPECT_FALSE(dir.valid_on(0, 0));
  EXPECT_TRUE(dir.valid_on(0, 1));
  EXPECT_TRUE(dir.dirty_on(0, 1));
  EXPECT_EQ(dir.source_of(0), 1);
  // The host must now pay a transfer again.
  EXPECT_GT(dir.bytes_to_fetch(0, 0), 0.0);
}

TEST_F(Residency, WritebackCleansAndRestoresHost) {
  dir.add_copy(0, 0);
  dir.note_write(0, 0);
  // D2H write-back: host becomes valid again, device copy is clean but
  // still resident (exactly what EmulatedAcceleratorEngine::stage_d2h
  // records).
  dir.add_copy(0, DataDirectory::kHost);
  dir.mark_clean(0, 0);
  EXPECT_TRUE(dir.valid_on(0, DataDirectory::kHost));
  EXPECT_TRUE(dir.valid_on(0, 0));
  EXPECT_FALSE(dir.dirty_on(0, 0));
  EXPECT_EQ(dir.source_of(0), DataDirectory::kHost);  // host preferred
}

TEST_F(Residency, HostWriteClearsDirtyBits) {
  dir.add_copy(0, 0);
  dir.note_write(0, 0);
  EXPECT_TRUE(dir.dirty_on(0, 0));
  dir.note_write(0, DataDirectory::kHost);  // e.g. a CPU factor task
  EXPECT_TRUE(dir.valid_on(0, DataDirectory::kHost));
  EXPECT_FALSE(dir.valid_on(0, 0));
  EXPECT_FALSE(dir.dirty_on(0, 0));  // stale copy is not written back
}

TEST_F(Residency, EvictionDropsOnlyTheDeviceCopy) {
  dir.add_copy(0, 0);
  dir.drop_copy(0, 0);
  EXPECT_FALSE(dir.valid_on(0, 0));
  EXPECT_TRUE(dir.valid_on(0, DataDirectory::kHost));
}

TEST_F(Residency, ResetRestoresHostOnly) {
  dir.add_copy(0, 0);
  dir.note_write(0, 0);
  dir.reset();
  EXPECT_TRUE(dir.valid_on(0, DataDirectory::kHost));
  EXPECT_FALSE(dir.valid_on(0, 0));
  EXPECT_FALSE(dir.dirty_on(0, 0));
}

// ---------------- DeviceLru (shared sim/real resident-set model) --------

TEST(DeviceLruModel, EvictsLeastRecentUnpinned) {
  DeviceLru lru(100.0);
  lru.insert(1, 40);
  lru.insert(2, 40);
  lru.touch(1);  // 2 is now least recent
  EXPECT_EQ(lru.eviction_victim([](index_t) { return true; }), 2);
  lru.pin(2);
  EXPECT_EQ(lru.eviction_victim([](index_t) { return true; }), 1);
  lru.unpin(2);
  EXPECT_EQ(lru.eviction_victim([](index_t) { return true; }), 2);
  lru.remove(2);
  EXPECT_DOUBLE_EQ(lru.used(), 40.0);
  EXPECT_FALSE(lru.resident(2));
}

TEST(DeviceLruModel, PredicateFiltersVictims) {
  DeviceLru lru(100.0);
  lru.insert(1, 10);
  lru.insert(2, 10);
  EXPECT_EQ(lru.eviction_victim([](index_t p) { return p != 1; }), 2);
  EXPECT_EQ(lru.eviction_victim([](index_t) { return false; }), -1);
}

// ---------------- task_handles (shared handle enumeration) --------------

TEST(TaskHandles, PanelAndUpdateSets) {
  const Analysis an = analyze(gen::grid2d_laplacian(8, 8));
  const SymbolicStructure& st = an.structure;
  EXPECT_EQ(task_handles(st, nullptr, {TaskKind::Panel, 0, -1}),
            (std::vector<index_t>{0}));
  // Find a panel with an update edge and check {src, dst}.
  for (index_t p = 0; p < st.num_panels(); ++p) {
    if (st.targets[p].empty()) continue;
    const index_t dst = st.targets[p][0].dst;
    const auto h = task_handles(st, nullptr, {TaskKind::Update, p, 0});
    ASSERT_EQ(h.size(), 2u);
    EXPECT_EQ(h[0], p);
    EXPECT_EQ(h[1], dst);
    return;
  }
  FAIL() << "no update edges in test structure";
}

// ---------------- env knob parsing --------------------------------------

TEST(HeteroEnv, OverridesBaseOptions) {
  setenv("SPX_HETERO_ENGINES", "2", 1);
  setenv("SPX_HETERO_STREAMS", "3", 1);
  setenv("SPX_HETERO_BW_GBPS", "4.5", 1);
  setenv("SPX_HETERO_LATENCY_US", "50", 1);
  setenv("SPX_HETERO_MEM_MB", "64", 1);
  setenv("SPX_HETERO_OVERLAP", "0", 1);
  const HeteroOptions opts = hetero_from_env();
  unsetenv("SPX_HETERO_ENGINES");
  unsetenv("SPX_HETERO_STREAMS");
  unsetenv("SPX_HETERO_BW_GBPS");
  unsetenv("SPX_HETERO_LATENCY_US");
  unsetenv("SPX_HETERO_MEM_MB");
  unsetenv("SPX_HETERO_OVERLAP");
  ASSERT_EQ(opts.devices.size(), 2u);
  EXPECT_EQ(opts.devices[0].streams, 3);
  EXPECT_DOUBLE_EQ(opts.devices[1].bandwidth_gbps, 4.5);
  EXPECT_DOUBLE_EQ(opts.devices[0].latency_seconds, 50e-6);
  EXPECT_DOUBLE_EQ(opts.devices[1].memory_bytes, 64.0 * 1024 * 1024);
  EXPECT_FALSE(opts.overlap);
  EXPECT_EQ(opts.uniform_streams(), 3);
}

// ---------------- end-to-end staged execution ---------------------------

struct HeteroRun {
  RunStats stats;
  double residual = 0.0;
};

/// A cost model that makes dmda offload even tiny updates: the modeled
/// CPU is absurdly slow and the modeled link free.  Placement inputs
/// only -- the real engines still move real bytes at EngineSpec speed.
sim::PlatformSpec gpu_biased_spec() {
  sim::PlatformSpec spec;
  spec.cpu_peak_gflops = 1e-6;
  spec.pcie_bw = 1e12;
  spec.pcie_latency = 0.0;
  return spec;
}

/// Factorizes grid2d_laplacian(nx, ny) through execute_real with one
/// emulated engine and returns stats + solve residual.
HeteroRun run_hetero(index_t nx, index_t ny, EngineSpec spec, bool overlap,
                     FaultInjector* fault = nullptr,
                     AnalysisOptions aopts = {},
                     sim::PlatformSpec platform = {}) {
  const auto a = gen::grid2d_laplacian(nx, ny);
  HeteroRun out;
  out.residual = test::solve_residual<real_t>(
      a, Factorization::LLT,
      [&](FactorData<real_t>& f) {
        const SymbolicStructure& st = f.structure();
        TaskTable table(st, Factorization::LLT);
        Machine machine(1, 1, 1);
        sim::CostModel model(platform, st, Factorization::LLT, {});
        DataDirectory directory(st, Factorization::LLT, sizeof(real_t), 1);
        StarpuOptions sopts;
        sopts.gpu_min_flops = 0;  // small panels are still offloadable
        StarpuScheduler sched(table, machine, model, sopts, &directory);
        RealDriverOptions dopts;
        dopts.hetero.devices = {spec};
        dopts.hetero.overlap = overlap;
        dopts.hetero.directory = &directory;
        dopts.instr.fault = fault;
        out.stats = execute_real(sched, machine, f, dopts);
      },
      aopts);
  return out;
}

TEST(HeteroExecution, StagesComputesAndWritesBack) {
  EngineSpec spec;
  spec.bandwidth_gbps = 200.0;  // fast link: keep the test quick
  spec.latency_seconds = 0.0;
  const HeteroRun r = run_hetero(16, 16, spec, /*overlap=*/true);
  EXPECT_LT(r.residual, kTol);
  EXPECT_GT(r.stats.bytes_h2d, 0.0);
  EXPECT_GT(r.stats.bytes_d2h, 0.0);
  EXPECT_GT(r.stats.transfers_h2d, 0);
  EXPECT_GT(r.stats.transfers_d2h, 0);
  EXPECT_GT(r.stats.tasks_gpu, 0);
  EXPECT_GT(r.stats.contention.stage_wait.size(), 0u);
}

TEST(HeteroExecution, EvictsUnderMemoryPressure) {
  EngineSpec spec;
  spec.bandwidth_gbps = 200.0;
  spec.latency_seconds = 0.0;
  spec.memory_bytes = 24.0 * 1024;  // a handful of panels at most
  const HeteroRun r = run_hetero(20, 20, spec, /*overlap=*/true);
  EXPECT_LT(r.residual, kTol);
  EXPECT_GT(r.stats.gpu_evictions, 0);
  // Evicted dirty panels must have been written back, re-fetched panels
  // re-transferred: both directions see real traffic.
  EXPECT_GT(r.stats.bytes_h2d, 0.0);
  EXPECT_GT(r.stats.bytes_d2h, 0.0);
}

TEST(HeteroExecution, RunStatsJsonCarriesTransferKeys) {
  EngineSpec spec;
  spec.bandwidth_gbps = 200.0;
  spec.latency_seconds = 0.0;
  const HeteroRun r = run_hetero(12, 12, spec, /*overlap=*/true);
  const std::string j = to_json(r.stats).dump();
  EXPECT_NE(j.find("\"bytes_h2d\""), std::string::npos);
  EXPECT_NE(j.find("\"bytes_d2h\""), std::string::npos);
  EXPECT_NE(j.find("\"transfers_h2d\""), std::string::npos);
  EXPECT_NE(j.find("\"stage_wait_s\""), std::string::npos);
}

// ---------------- overlap determinism under fault injection -------------

/// The serial-chain workload: a tridiagonal matrix under natural ordering
/// has exactly one below-diagonal row per panel, so every panel targets
/// only its successor and the task graph is a strict chain -- one ready
/// task at a time, which pins the dmda enqueue order and makes transfer
/// byte counts run-to-run deterministic.
AnalysisOptions chain_options() {
  AnalysisOptions opts;
  opts.ordering = OrderingMethod::Natural;
  return opts;
}

TEST(HeteroDeterminism, ChainByteCountsStableUnderStallTransfer) {
  EngineSpec spec;
  spec.bandwidth_gbps = 400.0;
  spec.latency_seconds = 0.0;
  const HeteroRun base = run_hetero(48, 1, spec, /*overlap=*/true, nullptr,
                                    chain_options(), gpu_biased_spec());
  EXPECT_LT(base.residual, kTol);
  // The biased model must actually offload: no transfers means the rest
  // of this test would pass vacuously.
  ASSERT_GT(base.stats.bytes_h2d, 0.0);
  ASSERT_GT(base.stats.tasks_gpu, 0);

  const HeteroRun repeat = run_hetero(48, 1, spec, /*overlap=*/true,
                                      nullptr, chain_options(),
                                      gpu_biased_spec());
  EXPECT_DOUBLE_EQ(repeat.stats.bytes_h2d, base.stats.bytes_h2d);
  EXPECT_DOUBLE_EQ(repeat.stats.bytes_d2h, base.stats.bytes_d2h);
  EXPECT_EQ(repeat.stats.transfers_h2d, base.stats.transfers_h2d);
  EXPECT_EQ(repeat.stats.transfers_d2h, base.stats.transfers_d2h);

  // Stalling the nth staging transfer delays it but must change neither
  // correctness nor what moves.
  for (const std::uint64_t victim : {0ull, 3ull}) {
    FaultInjector fault(
        FaultPlan{FaultAction::StallTransfer, victim, 0.005});
    const HeteroRun stalled =
        run_hetero(48, 1, spec, /*overlap=*/true, &fault, chain_options(),
                   gpu_biased_spec());
    EXPECT_LT(stalled.residual, kTol) << "victim " << victim;
    EXPECT_DOUBLE_EQ(stalled.stats.bytes_h2d, base.stats.bytes_h2d);
    EXPECT_DOUBLE_EQ(stalled.stats.bytes_d2h, base.stats.bytes_d2h);
    EXPECT_GT(fault.transfers_started(), victim);
    EXPECT_GE(fault.fired_count(), 1) << "victim " << victim;
  }
}

// ---------------- scheduler parity: real dmda == simulated dmda ---------

TEST(SchedulerParity, RealDmdaMatchesSimulatorOnChain) {
  const auto a = gen::grid2d_laplacian(64, 1);
  const Analysis an = analyze(a, chain_options());
  const SymbolicStructure& st = an.structure;
  ASSERT_GE(st.num_panels(), 3);
  // The parity argument needs the serial chain: verify every panel
  // targets exactly its successor.
  for (index_t p = 0; p + 1 < st.num_panels(); ++p) {
    ASSERT_EQ(st.targets[p].size(), 1u) << "panel " << p;
    ASSERT_EQ(st.targets[p][0].dst, p + 1) << "panel " << p;
  }

  TaskTable table(st, Factorization::LLT);
  Machine machine(1, 1, 1);
  sim::CostModel model(gpu_biased_spec(), st, Factorization::LLT, {});
  StarpuOptions sopts;
  sopts.gpu_min_flops = 0;

  // Simulated run.
  DataDirectory sim_dir(st, Factorization::LLT, sizeof(real_t), 1);
  StarpuScheduler sim_sched(table, machine, model, sopts, &sim_dir);
  sim::SimOptions so;
  so.prefetch = false;
  so.directory = &sim_dir;
  sim::simulate(sim_sched, machine, table, model,
                st.total_flops(Factorization::LLT), so);
  const std::vector<int> sim_placed = sim_sched.dmda_assignment();

  // Real run with one emulated engine; overlap off so neither side
  // prefetches, and an effectively free link so wall-clock noise cannot
  // reorder the (already serial) chain.
  const CscMatrix<real_t> ap = permute_symmetric(a, an.perm);
  FactorData<real_t> f(st, Factorization::LLT);
  f.initialize(ap);
  DataDirectory real_dir(st, Factorization::LLT, sizeof(real_t), 1);
  StarpuScheduler real_sched(table, machine, model, sopts, &real_dir);
  RealDriverOptions dopts;
  EngineSpec spec;
  spec.bandwidth_gbps = 1000.0;
  spec.latency_seconds = 0.0;
  dopts.hetero.devices = {spec};
  dopts.hetero.overlap = false;
  dopts.hetero.directory = &real_dir;
  execute_real(real_sched, machine, f, dopts);
  const std::vector<int> real_placed = real_sched.dmda_assignment();

  ASSERT_EQ(real_placed.size(), sim_placed.size());
  bool any_gpu = false;
  for (std::size_t id = 0; id < sim_placed.size(); ++id) {
    EXPECT_NE(sim_placed[id], -1) << "task " << id << " never placed (sim)";
    EXPECT_EQ(real_placed[id], sim_placed[id]) << "task " << id;
    any_gpu |= sim_placed[id] == 1;  // resource 1 = the GPU stream
  }
  EXPECT_TRUE(any_gpu) << "parity comparison is vacuous without offload";
}

// ---------------- multi-engine run through the Solver facade ------------

TEST(HeteroSolver, TwoEnginesThroughSolverOptions) {
  SolverOptions opts;
  opts.runtime = RuntimeKind::Starpu;
  opts.num_threads = 3;
  EngineSpec spec;
  spec.bandwidth_gbps = 200.0;
  spec.latency_seconds = 0.0;
  opts.hetero.devices = {spec, spec};
  opts.starpu.gpu_min_flops = 0;
  Solver<real_t> solver(opts);
  const auto a = gen::grid2d_laplacian(18, 18);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  const RunStats& stats = solver.last_factorization_stats();
  EXPECT_GT(stats.bytes_h2d, 0.0);
  EXPECT_GT(stats.tasks_gpu, 0);

  Rng rng(7);
  std::vector<real_t> x(a.ncols()), b(a.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.multiply(x, b);
  std::vector<real_t> got = b;
  solver.solve(got);
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(got[i] - x[i]));
  }
  EXPECT_LT(err, kTol);
}

TEST(HeteroSolver, RejectsMixingWithLegacyGpuStreams) {
  SolverOptions opts;
  opts.runtime = RuntimeKind::Starpu;
  opts.num_gpu_streams = 1;
  opts.hetero.devices = {EngineSpec{}};
  Solver<real_t> solver(opts);
  const auto a = gen::grid2d_laplacian(6, 6);
  solver.analyze(a);
  EXPECT_THROW(solver.factorize(a, Factorization::LLT), InvalidArgument);
}

}  // namespace
}  // namespace spx
