// Edge cases and API-contract tests across the stack: degenerate sizes,
// analysis reuse across values/kinds, dense inputs, I/O corner formats,
// and machine-shape validation.
#include <gtest/gtest.h>

#include <sstream>

#include "core/sequential.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"
#include "mat/mm_io.hpp"
#include "mat/triplets.hpp"
#include "runtime/machine.hpp"

namespace spx {
namespace {

TEST(EdgeCases, OneByOneMatrix) {
  Triplets<real_t> t(1, 1);
  t.add(0, 0, 4.0);
  const auto a = t.to_csc();
  Solver<real_t> solver;
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  std::vector<real_t> b{8.0};
  solver.solve(b);
  EXPECT_DOUBLE_EQ(b[0], 2.0);
}

TEST(EdgeCases, DiagonalMatrix) {
  const index_t n = 17;
  Triplets<real_t> t(n, n);
  for (index_t i = 0; i < n; ++i) t.add(i, i, real_t(i + 1));
  const auto a = t.to_csc();
  for (const Factorization kind :
       {Factorization::LLT, Factorization::LDLT, Factorization::LU}) {
    Solver<real_t> solver;
    solver.analyze(a);
    solver.factorize(a, kind);
    std::vector<real_t> b(n, 1.0);
    solver.solve(b);
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(b[i], 1.0 / (i + 1), 1e-14);
    }
  }
}

TEST(EdgeCases, FullyDenseSmallMatrix) {
  Rng rng(700);
  const auto a = gen::random_spd(25, 1.0, rng);  // completely dense
  const Analysis an = analyze(a);
  an.structure.validate();
  // One supernode covering everything (after amalgamation) is legal.
  EXPECT_GE(an.structure.num_panels(), 1);
  FactorData<real_t> f(an.structure, Factorization::LLT);
  f.initialize(permute_symmetric(a, an.perm));
  factorize_sequential(f);
}

TEST(EdgeCases, AnalysisReusedAcrossValuesAndKinds) {
  // The PASTIX workflow: one analyze, many numerical factorizations
  // (static pivoting makes the structure value-independent).
  const auto a1 = gen::grid2d_laplacian(10, 10);
  auto vals = std::vector<real_t>(a1.values().begin(), a1.values().end());
  for (auto& v : vals) v *= 3.0;  // same pattern, new values
  const CscMatrix<real_t> a2(
      a1.nrows(), a1.ncols(),
      std::vector<size_type>(a1.colptr().begin(), a1.colptr().end()),
      std::vector<index_t>(a1.rowind().begin(), a1.rowind().end()),
      std::move(vals));

  Solver<real_t> solver;
  solver.analyze(a1);
  const auto* structure_before = &solver.analysis().structure;
  solver.factorize(a1, Factorization::LLT);
  std::vector<real_t> b(a1.ncols(), 1.0), x1 = b;
  solver.solve(x1);
  solver.factorize(a2, Factorization::LDLT);  // reuse, different kind
  EXPECT_EQ(&solver.analysis().structure, structure_before);
  std::vector<real_t> x2 = b;
  solver.solve(x2);
  for (index_t i = 0; i < a1.ncols(); ++i) {
    EXPECT_NEAR(x2[i], x1[i] / 3.0, 1e-10);  // (3A)^{-1} b = x/3
  }
}

TEST(EdgeCases, FactorDataResetAllowsRefill) {
  const auto a = gen::grid2d_laplacian(8, 8);
  const Analysis an = analyze(a);
  const auto ap = permute_symmetric(a, an.perm);
  FactorData<real_t> f(an.structure, Factorization::LLT);
  f.initialize(ap);
  factorize_sequential(f);
  const real_t first_run = f.panel_l(0)[0];
  f.reset();
  f.initialize(ap);
  factorize_sequential(f);
  EXPECT_EQ(f.panel_l(0)[0], first_run);
}

TEST(EdgeCases, MoreThreadsThanWork) {
  SolverOptions opts;
  opts.runtime = RuntimeKind::Parsec;
  opts.num_threads = 16;  // far more workers than panels
  Solver<real_t> solver(opts);
  Triplets<real_t> t(3, 3);
  t.add(0, 0, 2.0);
  t.add(1, 1, 2.0);
  t.add(2, 2, 2.0);
  t.add_sym(1, 0, -1.0);
  const auto a = t.to_csc();
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  std::vector<real_t> b{1.0, 1.0, 1.0};
  EXPECT_NO_THROW(solver.solve(b));
}

TEST(EdgeCases, MmIoSkewSymmetric) {
  const char* text =
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 2 -1.0\n";
  std::stringstream ss(text);
  const auto a = read_matrix_market<real_t>(ss);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -5.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 1.0);
}

TEST(EdgeCases, MmIoPatternField) {
  const char* text =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 1\n";
  std::stringstream ss(text);
  const auto a = read_matrix_market<real_t>(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_EQ(a.nnz(), 2);
}

TEST(EdgeCases, EmptyTriplets) {
  Triplets<real_t> t(4, 4);
  const auto a = t.to_csc();
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_EQ(a.ncols(), 4);
}

TEST(EdgeCases, MachineShapeValidation) {
  EXPECT_THROW(Machine(0, 0), InvalidArgument);
  EXPECT_THROW(Machine(-1, 1), InvalidArgument);
  EXPECT_THROW(Machine(2, 1, 0), InvalidArgument);
  const Machine m(2, 2, 3);
  EXPECT_EQ(m.num_resources(), 2 + 2 * 3);
  EXPECT_EQ(m.resource(2).kind, ResourceKind::GpuStream);
  EXPECT_EQ(m.resource(2).gpu, 0);
  EXPECT_EQ(m.resource(7).gpu, 1);
  EXPECT_EQ(m.resource(7).stream, 2);
}

TEST(EdgeCases, SolverGpuStreamWorkersOnDiagonalHeavyMatrix) {
  // Emulated GPU-stream workers must not deadlock when there is nothing
  // eligible for them (all updates tiny).
  SolverOptions opts;
  opts.runtime = RuntimeKind::Parsec;
  opts.num_threads = 2;
  opts.num_gpu_streams = 2;
  opts.parsec.gpu_min_flops = 1e18;  // nothing ever qualifies
  Solver<real_t> solver(opts);
  const auto a = gen::grid2d_laplacian(9, 9);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  std::vector<real_t> b(a.ncols(), 1.0);
  EXPECT_NO_THROW(solver.solve(b));
}

TEST(EdgeCases, PathGraphChainStructure) {
  // A tridiagonal matrix: no fill under natural order; every panel has at
  // most one off-diagonal block.
  const index_t n = 50;
  Triplets<real_t> t(n, n);
  for (index_t i = 0; i < n; ++i) t.add(i, i, 2.0);
  for (index_t i = 0; i + 1 < n; ++i) t.add_sym(i + 1, i, -1.0);
  AnalysisOptions opts;
  opts.ordering = OrderingMethod::Natural;
  opts.symbolic.amalgamation.fill_ratio = 0.0;
  opts.symbolic.amalgamation.min_width = 0;
  const Analysis an = analyze(t.to_csc(), opts);
  an.structure.validate();
  EXPECT_EQ(an.structure.nnz_factor, 2 * n - 1);
}

// ---------- strict lifecycle ------------------------------------------

TEST(SolverLifecycle, FactorizeBeforeAnalyzeThrows) {
  Solver<real_t> solver;
  const auto a = gen::grid2d_laplacian(6, 6);
  EXPECT_THROW(solver.factorize(a, Factorization::LLT), InvalidArgument);
  try {
    solver.factorize(a, Factorization::LLT);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("analyze"), std::string::npos)
        << "error message should tell the caller to run analyze()";
  }
}

TEST(SolverLifecycle, SolveBeforeFactorizeThrows) {
  Solver<real_t> solver;
  const auto a = gen::grid2d_laplacian(6, 6);
  solver.analyze(a);  // analyzed but never factorized
  std::vector<real_t> b(static_cast<std::size_t>(a.ncols()), 1.0);
  EXPECT_THROW(solver.solve(b), InvalidArgument);
  EXPECT_THROW(solver.solve_multi(b, 1), InvalidArgument);
  std::vector<real_t> x(b.size());
  EXPECT_THROW(solver.solve_refine(a, b, x), InvalidArgument);
}

TEST(SolverLifecycle, FactorizeRejectsPatternMismatch) {
  Solver<real_t> solver;
  const auto analyzed = gen::grid2d_laplacian(6, 6);
  solver.analyze(analyzed);
  // Same dimensions, different sparsity pattern: must throw, not compute
  // garbage against the wrong symbolic structure.
  Triplets<real_t> t(analyzed.nrows(), analyzed.ncols());
  for (index_t i = 0; i < analyzed.nrows(); ++i) t.add(i, i, 4.0);
  const auto diagonal = t.to_csc();
  EXPECT_THROW(solver.factorize(diagonal, Factorization::LLT),
               InvalidArgument);
  // A different size fails too.
  const auto smaller = gen::grid2d_laplacian(5, 5);
  EXPECT_THROW(solver.factorize(smaller, Factorization::LLT),
               InvalidArgument);
  // The analysis itself is still intact and usable.
  solver.factorize(analyzed, Factorization::LLT);
  std::vector<real_t> b(static_cast<std::size_t>(analyzed.ncols()), 1.0);
  EXPECT_NO_THROW(solver.solve(b));
}

TEST(SolverLifecycle, ReanalyzeInvalidatesStaleFactors) {
  Solver<real_t> solver;
  const auto a = gen::grid2d_laplacian(6, 6);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  EXPECT_TRUE(solver.factorized());
  const auto b2 = gen::grid2d_laplacian(7, 7);
  solver.analyze(b2);  // new pattern: factors of `a` are stale
  EXPECT_FALSE(solver.factorized());
  std::vector<real_t> b(static_cast<std::size_t>(b2.ncols()), 1.0);
  EXPECT_THROW(solver.solve(b), InvalidArgument);
  solver.factorize(b2, Factorization::LLT);
  EXPECT_NO_THROW(solver.solve(b));
}

}  // namespace
}  // namespace spx
