// Tests for the scale-out serving layer (src/net/): wire protocol
// round-trips and hostile-input rejection, the endian-stable versioned
// pattern digest (golden values), the epoll servers (idle timeouts,
// slow-loris, version mismatch), the consistent-hash ring, shard
// factorize/solve over TCP, /metrics-over-HTTP reconciliation, and the
// end-to-end front + shards path with graceful drain.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mat/generators.hpp"
#include "net/circuit_breaker.hpp"
#include "net/client.hpp"
#include "net/front_server.hpp"
#include "net/http.hpp"
#include "net/protocol.hpp"
#include "net/shard_ring.hpp"
#include "net/shard_server.hpp"
#include "obs/obs.hpp"
#include "service/service_stats.hpp"

namespace spx {
namespace {

using net::BlockingClient;
using net::FactorizeRequestFrame;
using net::FactorizeResponseFrame;
using net::FrameHeader;
using net::FrameParser;
using net::FrameType;
using net::FrontServer;
using net::FrontServerOptions;
using net::NetError;
using net::ProtocolError;
using net::RefactorizeRequestFrame;
using net::ShardRing;
using net::ShardServer;
using net::ShardServerOptions;
using net::ShardState;
using net::SolveRequestFrame;
using net::SolveResponseFrame;
using service::RequestStatus;

std::shared_ptr<const CscMatrix<real_t>> shared(CscMatrix<real_t> a) {
  return std::make_shared<const CscMatrix<real_t>>(std::move(a));
}

std::vector<real_t> rhs_for(const CscMatrix<real_t>& a,
                            const std::vector<real_t>& x) {
  std::vector<real_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, b);
  return b;
}

ShardServerOptions shard_opts(const std::string& name) {
  ShardServerOptions o;
  o.name = name;
  o.service.num_workers = 2;
  return o;
}

/// Extracts the value of `series` (exact "name{labels}" prefix or bare
/// name) from a Prometheus text exposition; -1 when absent.
double prom_value(const std::string& text, const std::string& series) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(series + " ", 0) == 0) {
      return std::atof(line.c_str() + series.size() + 1);
    }
  }
  return -1;
}

// ---------- pattern digest (satellite: endian-stable + versioned) ------

TEST(PatternDigest, Fnv1aGoldenVectors) {
  // Standard 64-bit FNV-1a test vectors: the offset basis for empty
  // input, and the classic single-byte probe.
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
}

TEST(PatternDigest, GoldenValuesArePinned) {
  // These values are the cross-process routing contract (v2 of the
  // digest definition).  If this test fails, the wire format changed:
  // bump kPatternDigestVersion and update the goldens deliberately.
  EXPECT_EQ(kPatternDigestVersion, 2u);
  EXPECT_EQ(pattern_digest(gen::grid2d_laplacian(4, 4)),
            UINT64_C(0x99debdd7d24e48ff));
  EXPECT_EQ(pattern_digest(gen::grid3d_laplacian(3, 3, 3)),
            UINT64_C(0xc0aad7761116d4ce));
}

TEST(PatternDigest, IndependentOfValuesButNotStructure) {
  const auto a = gen::grid2d_laplacian(5, 5);
  auto vals = std::vector<real_t>(a.values().begin(), a.values().end());
  for (auto& v : vals) v += 3.25;
  const CscMatrix<real_t> same_pattern(
      a.nrows(), a.ncols(),
      std::vector<size_type>(a.colptr().begin(), a.colptr().end()),
      std::vector<index_t>(a.rowind().begin(), a.rowind().end()),
      std::move(vals));
  EXPECT_EQ(pattern_digest(a), pattern_digest(same_pattern));
  EXPECT_NE(pattern_digest(a), pattern_digest(gen::grid2d_laplacian(5, 6)));
}

// ---------- protocol round-trips ---------------------------------------

TEST(Protocol, FactorizeRequestRoundTrip) {
  const auto a = shared(gen::grid2d_laplacian(6, 6));
  FactorizeRequestFrame f;
  f.pattern_digest = pattern_digest(*a);
  f.trace = {42, 7};
  f.kind = Factorization::LLT;
  f.tenant = "tenant-α";  // arbitrary UTF-8 survives
  f.deadline_s = 1.5;
  const auto bytes = encode_factorize_request(99, f, *a);

  const FrameHeader h = net::decode_header(
      std::span<const std::uint8_t>(bytes).first(net::kHeaderBytes));
  EXPECT_EQ(h.type, FrameType::FactorizeRequest);
  EXPECT_EQ(h.corr_id, 99u);
  EXPECT_EQ(h.length, bytes.size() - net::kHeaderBytes);

  const auto payload =
      std::span<const std::uint8_t>(bytes).subspan(net::kHeaderBytes);
  EXPECT_EQ(net::peek_pattern_digest(payload), f.pattern_digest);
  const FactorizeRequestFrame d = net::decode_factorize_request(payload);
  EXPECT_EQ(d.pattern_digest, f.pattern_digest);
  EXPECT_EQ(d.trace.trace_id, 42u);
  EXPECT_EQ(d.trace.parent_span, 7u);
  EXPECT_EQ(d.kind, Factorization::LLT);
  EXPECT_EQ(d.tenant, f.tenant);
  EXPECT_DOUBLE_EQ(d.deadline_s, 1.5);
  ASSERT_NE(d.matrix, nullptr);
  EXPECT_EQ(d.matrix->nrows(), a->nrows());
  EXPECT_EQ(d.matrix->nnz(), a->nnz());
  ASSERT_EQ(d.matrix->colptr().size(), a->colptr().size());
  EXPECT_TRUE(std::equal(d.matrix->colptr().begin(),
                         d.matrix->colptr().end(), a->colptr().begin()));
  EXPECT_TRUE(std::equal(d.matrix->rowind().begin(),
                         d.matrix->rowind().end(), a->rowind().begin()));
  EXPECT_TRUE(std::equal(d.matrix->values().begin(),
                         d.matrix->values().end(), a->values().begin()));
}

TEST(Protocol, SolveAndResponseRoundTrips) {
  SolveRequestFrame s;
  s.pattern_digest = 0xabcdefull;
  s.factor_id = 17;
  s.tenant = "t";
  s.rhs = {1.0, -2.5, 3.75};
  const auto sb = encode_solve_request(5, s);
  const SolveRequestFrame sd = net::decode_solve_request(
      std::span<const std::uint8_t>(sb).subspan(net::kHeaderBytes));
  EXPECT_EQ(sd.factor_id, 17u);
  EXPECT_EQ(sd.rhs, s.rhs);

  FactorizeResponseFrame fr;
  fr.status = 0;
  fr.code = 1;
  fr.degraded = true;
  fr.factor_id = 123;
  fr.shard = "shard-a";
  fr.stats_json = "{\"id\":1}";
  const auto fb = encode_factorize_response(6, fr);
  const FactorizeResponseFrame fd = net::decode_factorize_response(
      std::span<const std::uint8_t>(fb).subspan(net::kHeaderBytes));
  EXPECT_EQ(fd.factor_id, 123u);
  EXPECT_EQ(fd.shard, "shard-a");
  EXPECT_TRUE(fd.degraded);

  SolveResponseFrame sr;
  sr.status = 0;
  sr.shard = "shard-b";
  sr.x = {0.5, 0.25};
  const auto srb = encode_solve_response(7, sr);
  const SolveResponseFrame srd = net::decode_solve_response(
      std::span<const std::uint8_t>(srb).subspan(net::kHeaderBytes));
  EXPECT_EQ(srd.x, sr.x);

  const auto eb = encode_error(8, NetError::Overloaded, "try later");
  const net::ErrorFrame ed = net::decode_error(
      std::span<const std::uint8_t>(eb).subspan(net::kHeaderBytes));
  EXPECT_EQ(ed.code, NetError::Overloaded);
  EXPECT_EQ(ed.message, "try later");
  EXPECT_TRUE(net::retryable(ed.code));
  EXPECT_FALSE(net::retryable(NetError::Malformed));
}

TEST(Protocol, RefactorizeRoundTrips) {
  RefactorizeRequestFrame r;
  r.pattern_digest = 0xfeedfacecafef00dull;
  r.trace = {11, 13};
  r.factor_id = 41;
  r.tenant = "tenant-β";
  r.deadline_s = 0.25;
  r.values = {1.0, -2.5, 3.75, 0.0625};
  const auto rb = encode_refactorize_request(21, r);
  const FrameHeader h = net::decode_header(
      std::span<const std::uint8_t>(rb).first(net::kHeaderBytes));
  EXPECT_EQ(h.version, net::kProtocolVersion);  // the v3 opcode
  EXPECT_EQ(h.type, FrameType::RefactorizeRequest);
  EXPECT_EQ(h.corr_id, 21u);
  const auto payload =
      std::span<const std::uint8_t>(rb).subspan(net::kHeaderBytes);
  // The prefix layout deliberately matches SolveRequestFrame, so the
  // routing peek works on both alike.
  EXPECT_EQ(net::peek_pattern_digest(payload), r.pattern_digest);
  const RefactorizeRequestFrame d = net::decode_refactorize_request(payload);
  EXPECT_EQ(d.pattern_digest, r.pattern_digest);
  EXPECT_EQ(d.trace.trace_id, 11u);
  EXPECT_EQ(d.trace.parent_span, 13u);
  EXPECT_EQ(d.factor_id, 41u);
  EXPECT_EQ(d.tenant, r.tenant);
  EXPECT_DOUBLE_EQ(d.deadline_s, 0.25);
  EXPECT_EQ(d.values, r.values);
  EXPECT_THROW(
      net::decode_refactorize_request(payload.first(payload.size() - 5)),
      ProtocolError);

  // The response reuses the FactorizeResponse body under its own type: a
  // refactorize outcome IS a factorize outcome.
  FactorizeResponseFrame resp;
  resp.status = 0;
  resp.factor_id = 41;
  resp.shard = "s3";
  resp.stats_json = "{\"refactorize\":true}";
  const auto eb = encode_refactorize_response(22, resp);
  EXPECT_EQ(net::decode_header(
                std::span<const std::uint8_t>(eb).first(net::kHeaderBytes))
                .type,
            FrameType::RefactorizeResponse);
  const FactorizeResponseFrame dd = net::decode_refactorize_response(
      std::span<const std::uint8_t>(eb).subspan(net::kHeaderBytes));
  EXPECT_EQ(dd.factor_id, 41u);
  EXPECT_EQ(dd.shard, "s3");
  EXPECT_EQ(dd.stats_json, resp.stats_json);
}

// ---------- hostile input ----------------------------------------------

TEST(Protocol, MalformedInputsThrowInsteadOfCrashing) {
  // Bad magic is rejected at feed time, before buffering a body.
  FrameParser p;
  std::vector<std::uint8_t> junk(64, 0x5a);
  EXPECT_THROW(p.feed(junk), ProtocolError);

  // Oversized declared length is rejected before allocation.
  FrameParser small(1024);
  auto big = encode_error(1, NetError::Internal, std::string(2048, 'x'));
  EXPECT_THROW(small.feed(big), ProtocolError);

  // Truncated bodies and trailing garbage throw from the decoders.
  const auto a = shared(gen::grid2d_laplacian(4, 4));
  FactorizeRequestFrame f;
  f.pattern_digest = pattern_digest(*a);
  auto bytes = encode_factorize_request(1, f, *a);
  auto payload =
      std::span<const std::uint8_t>(bytes).subspan(net::kHeaderBytes);
  EXPECT_NO_THROW(net::decode_factorize_request(payload));
  for (const std::size_t cut : {1ul, 8ul, 20ul, payload.size() / 2}) {
    EXPECT_THROW(
        net::decode_factorize_request(payload.first(payload.size() - cut)),
        ProtocolError);
  }
  std::vector<std::uint8_t> padded(payload.begin(), payload.end());
  padded.push_back(0);
  EXPECT_THROW(net::decode_factorize_request(padded), ProtocolError);

  // A lying routing digest is caught against the actual structure.
  std::vector<std::uint8_t> wrong_digest(payload.begin(), payload.end());
  wrong_digest[0] ^= 0xff;
  EXPECT_THROW(net::decode_factorize_request(wrong_digest), ProtocolError);

  EXPECT_THROW(net::decode_error(std::vector<std::uint8_t>{1, 2}),
               ProtocolError);
}

TEST(Protocol, ParserReassemblesArbitraryFragmentation) {
  const auto frame = encode_error(77, NetError::Draining, "bye");
  FrameParser p;
  for (const std::uint8_t b : frame) {  // one byte at a time (slow loris)
    p.feed({&b, 1});
  }
  const auto got = p.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header.corr_id, 77u);
  EXPECT_EQ(got->header.type, FrameType::Error);
  EXPECT_FALSE(p.next().has_value());
  EXPECT_LE(p.buffered(), frame.size());
}

// ---------- consistent-hash ring ---------------------------------------

TEST(ShardRing, RoutesDeterministicallyAndSpreads) {
  ShardRing ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  std::map<std::string, int> hits;
  for (std::uint64_t k = 0; k < 3000; ++k) {
    const std::uint64_t digest = fnv1a64(&k, sizeof k);
    const std::string s = ring.route(digest);
    EXPECT_EQ(s, ring.route(digest));  // stable
    ++hits[s];
  }
  // 64 vnodes per shard bounds the skew but does not equalize it; the
  // point is that every shard owns a meaningful arc of the ring.
  EXPECT_EQ(hits.size(), 3u);
  for (const auto& [name, n] : hits) EXPECT_GT(n, 150) << name;
}

TEST(ShardRing, RemovalOnlyRemapsTheLostShardsKeys) {
  ShardRing ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  std::vector<std::pair<std::uint64_t, std::string>> before;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    const std::uint64_t digest = fnv1a64(&k, sizeof k);
    before.emplace_back(digest, ring.route(digest));
  }
  ring.set_state("b", ShardState::Draining);
  EXPECT_EQ(ring.up_count(), 2u);
  int moved = 0;
  for (const auto& [digest, owner] : before) {
    const std::string now = ring.route(digest);
    EXPECT_NE(now, "b");
    if (owner != "b") {
      EXPECT_EQ(now, owner);  // survivors keep their keys (cache affinity)
    } else {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
  ring.set_state("b", ShardState::Up);
  for (const auto& [digest, owner] : before) {
    EXPECT_EQ(ring.route(digest), owner);  // recovery restores the map
  }
}

TEST(ShardRing, EmptyRingRoutesNowhere) {
  ShardRing ring;
  EXPECT_EQ(ring.route(123), "");
  ring.add("only");
  EXPECT_EQ(ring.route(123), "only");
  ring.remove("only");
  EXPECT_EQ(ring.route(123), "");
}

// ---------- shard server over TCP --------------------------------------

TEST(ShardServerTest, FactorizeSolveRoundTrip) {
  ShardServer shard(shard_opts("s1"));
  BlockingClient client;
  client.connect("127.0.0.1", shard.port());
  EXPECT_TRUE(client.ping());

  const auto a = shared(gen::grid2d_laplacian(8, 8));
  const FactorizeResponseFrame fr =
      client.factorize("t", *a, Factorization::LLT);
  ASSERT_EQ(fr.status, static_cast<std::uint8_t>(RequestStatus::Done))
      << fr.error;
  EXPECT_EQ(fr.shard, "s1");
  EXPECT_GT(fr.factor_id, 0u);
  EXPECT_NE(fr.stats_json.find("\"tenant\""), std::string::npos);

  std::vector<real_t> x_true(static_cast<std::size_t>(a->nrows()));
  for (std::size_t i = 0; i < x_true.size(); ++i) {
    x_true[i] = 1.0 + 0.25 * static_cast<double>(i % 7);
  }
  const SolveResponseFrame sr = client.solve(
      "t", pattern_digest(*a), fr.factor_id, rhs_for(*a, x_true));
  ASSERT_EQ(sr.status, static_cast<std::uint8_t>(RequestStatus::Done))
      << sr.error;
  ASSERT_EQ(sr.x.size(), x_true.size());
  for (std::size_t i = 0; i < x_true.size(); ++i) {
    EXPECT_NEAR(sr.x[i], x_true[i], 1e-8);
  }

  // A solve against a factor id that never existed is answered (not
  // dropped) with the retryable UnknownFactor.
  NetError err{};
  const SolveResponseFrame missing = client.solve(
      "t", pattern_digest(*a), 999999, rhs_for(*a, x_true), {}, &err);
  EXPECT_EQ(err, NetError::UnknownFactor);
  EXPECT_TRUE(net::retryable(err));
}

TEST(ShardServerTest, VersionMismatchIsAnsweredThenClosed) {
  ShardServer shard(shard_opts("s1"));
  BlockingClient client;
  client.connect("127.0.0.1", shard.port());
  FrameHeader h;
  h.version = 9;
  h.type = FrameType::Ping;
  h.corr_id = 4;
  client.send_raw(net::encode_raw_frame(h, {}));
  const auto resp = client.recv_frame();
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->header.type, FrameType::Error);
  EXPECT_EQ(net::decode_error(resp->payload).code,
            NetError::VersionMismatch);
  EXPECT_FALSE(client.recv_frame().has_value());  // server closed
}

TEST(ShardServerTest, RefactorizeOverTheWire) {
  ShardServer shard(shard_opts("s1"));
  BlockingClient client;
  client.connect("127.0.0.1", shard.port());

  const auto a = shared(gen::grid2d_laplacian(8, 8));
  const std::uint64_t digest = pattern_digest(*a);
  const FactorizeResponseFrame fr =
      client.factorize("t", *a, Factorization::LLT);
  ASSERT_EQ(fr.status, static_cast<std::uint8_t>(RequestStatus::Done))
      << fr.error;

  // Push doubled values through the v3 opcode: the resident handle stays,
  // the numbers change.
  std::vector<real_t> doubled(a->values().begin(), a->values().end());
  for (auto& v : doubled) v *= 2.0;
  const FactorizeResponseFrame rr =
      client.refactorize("t", digest, fr.factor_id, doubled);
  ASSERT_EQ(rr.status, static_cast<std::uint8_t>(RequestStatus::Done))
      << rr.error;
  EXPECT_EQ(rr.factor_id, fr.factor_id);
  EXPECT_EQ(rr.shard, "s1");

  // A right-hand side assembled from the ORIGINAL values now solves to
  // x = 1/2 everywhere: proof the new values are live behind the old id.
  const std::vector<real_t> ones(static_cast<std::size_t>(a->nrows()), 1.0);
  const SolveResponseFrame sr =
      client.solve("t", digest, fr.factor_id, rhs_for(*a, ones));
  ASSERT_EQ(sr.status, static_cast<std::uint8_t>(RequestStatus::Done))
      << sr.error;
  ASSERT_EQ(sr.x.size(), ones.size());
  for (const real_t v : sr.x) EXPECT_NEAR(v, 0.5, 1e-8);

  // A lying digest is answered Malformed: values must never be ingested
  // into a factor built from another pattern.
  NetError err{};
  client.refactorize("t", digest ^ 1, fr.factor_id, doubled, {}, &err);
  EXPECT_EQ(err, NetError::Malformed);

  // So is a value count that does not match the pattern.
  err = NetError{};
  client.refactorize("t", digest, fr.factor_id, std::vector<real_t>(3, 1.0),
                     {}, &err);
  EXPECT_EQ(err, NetError::Malformed);

  // An unknown factor id gets the retryable UnknownFactor; the client's
  // recovery is the same as for an evicted factor: a full factorize.
  err = NetError{};
  client.refactorize("t", digest, 999999, doubled, {}, &err);
  EXPECT_EQ(err, NetError::UnknownFactor);
  EXPECT_TRUE(net::retryable(err));

  // None of the refusals cost us the connection.
  EXPECT_TRUE(client.ping());
}

/// Reads exactly `n` bytes; false on EOF or error (test peer plumbing).
bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, buf + off, n - off);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

void write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(w);
  }
}

TEST(ShardServerTest, RefactorizeVersionSkewIsRejectedBothWays) {
  // Old client -> new shard: a v2 peer cannot express the refactorize
  // opcode, and any frame it does send is stopped at the version gate
  // before dispatch ever looks at the opcode.
  {
    ShardServer shard(shard_opts("s1"));
    BlockingClient old_peer;
    old_peer.connect("127.0.0.1", shard.port());
    FrameHeader h;
    h.version = 2;  // the last pre-refactorize protocol version
    h.type = FrameType::Ping;
    h.corr_id = 21;
    old_peer.send_raw(net::encode_raw_frame(h, {}));
    const auto resp = old_peer.recv_frame();
    ASSERT_TRUE(resp.has_value());
    ASSERT_EQ(resp->header.type, FrameType::Error);
    EXPECT_EQ(net::decode_error(resp->payload).code,
              NetError::VersionMismatch);
    EXPECT_FALSE(old_peer.recv_frame().has_value());  // closed
  }

  // New client -> old shard: emulate the v2-era dispatch, which answers
  // any unknown-version frame with Error(VersionMismatch) stamped with
  // ITS version and closes.  The typed refactorize() must surface the
  // code instead of hanging or mis-decoding.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t alen = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);
  std::thread old_shard([lfd] {
    const int conn = ::accept(lfd, nullptr, nullptr);
    if (conn < 0) return;
    std::vector<std::uint8_t> head(net::kHeaderBytes);
    if (read_exact(conn, head.data(), head.size())) {
      const FrameHeader got = net::decode_header(head);
      std::vector<std::uint8_t> body(got.length);
      if (got.length == 0 || read_exact(conn, body.data(), body.size())) {
        auto reply = encode_error(got.corr_id, NetError::VersionMismatch,
                                  "peer speaks protocol version 3, this "
                                  "shard speaks 2");
        reply[4] = 2;  // header offset 4 is the version byte
        write_all(conn, reply);
      }
    }
    ::shutdown(conn, SHUT_RDWR);
    ::close(conn);
  });

  BlockingClient fresh;
  fresh.connect("127.0.0.1", port);
  NetError err{};
  const FactorizeResponseFrame r =
      fresh.refactorize("t", 0x1234, 7, {1.0, 2.0}, {}, &err);
  old_shard.join();
  ::close(lfd);
  EXPECT_EQ(err, NetError::VersionMismatch);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(RequestStatus::Failed));
  // Skew needs an operator (upgrade the shard), not a blind retry.
  EXPECT_FALSE(net::retryable(err));
}

TEST(ShardServerTest, MalformedAndOversizedFramesAreSurvivable) {
  ShardServerOptions o = shard_opts("s1");
  o.max_payload = 4096;
  ShardServer shard(o);
  {
    // Garbage magic: the server drops the connection without crashing.
    BlockingClient c;
    c.connect("127.0.0.1", shard.port());
    std::vector<std::uint8_t> junk(40, 0xee);
    c.send_raw(junk);
    const auto resp = c.recv_frame();
    if (resp.has_value()) {
      EXPECT_EQ(resp->header.type, FrameType::Error);
    }
  }
  {
    // A declared length beyond max_payload is bounced before buffering.
    BlockingClient c;
    c.connect("127.0.0.1", shard.port());
    FrameHeader h;
    h.type = FrameType::SolveRequest;
    h.corr_id = 1;
    std::vector<std::uint8_t> fake(8192, 0);
    c.send_raw(net::encode_raw_frame(h, fake));
    const auto resp = c.recv_frame();
    if (resp.has_value()) {
      EXPECT_EQ(resp->header.type, FrameType::Error);
      EXPECT_EQ(net::decode_error(resp->payload).code, NetError::Malformed);
    }
  }
  {
    // A truncated-then-corrupted body decodes to Malformed, and the
    // server keeps running for the next client.
    BlockingClient c;
    c.connect("127.0.0.1", shard.port());
    const auto a = gen::grid2d_laplacian(4, 4);
    FactorizeRequestFrame f;
    f.pattern_digest = pattern_digest(a);
    auto bytes = encode_factorize_request(3, f, a);
    bytes[net::kHeaderBytes + 40] ^= 0xff;  // corrupt inside the body
    c.send_raw(bytes);
    const auto resp = c.recv_frame();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->header.type, FrameType::Error);
  }
  BlockingClient healthy;
  healthy.connect("127.0.0.1", shard.port());
  EXPECT_TRUE(healthy.ping());
}

TEST(ShardServerTest, SlowLorisRequestStillCompletes) {
  ShardServer shard(shard_opts("s1"));
  BlockingClient client;
  client.connect("127.0.0.1", shard.port());
  const auto a = gen::grid2d_laplacian(5, 5);
  FactorizeRequestFrame f;
  f.pattern_digest = pattern_digest(a);
  f.tenant = "slow";
  const auto bytes = encode_factorize_request(11, f, a);
  // Dribble the frame in uneven chunks with pauses: the connection state
  // machine must reassemble across arbitrarily many partial reads.
  std::size_t off = 0;
  std::size_t step = 1;
  while (off < bytes.size()) {
    const std::size_t n = std::min(step, bytes.size() - off);
    client.send_raw(std::span<const std::uint8_t>(bytes).subspan(off, n));
    off += n;
    step = step * 3 + 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto resp = client.recv_frame();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->header.type, FrameType::FactorizeResponse);
  EXPECT_EQ(resp->header.corr_id, 11u);
}

TEST(ShardServerTest, IdleConnectionsAreSweptAway) {
  ShardServerOptions o = shard_opts("s1");
  o.idle_timeout_s = 0.15;
  ShardServer shard(o);
  BlockingClient client;
  client.connect("127.0.0.1", shard.port(), 5.0);
  EXPECT_TRUE(client.ping());
  // recv_frame returns nullopt on the server's orderly idle-close.
  const auto t0 = std::chrono::steady_clock::now();
  const auto resp = client.recv_frame();
  EXPECT_FALSE(resp.has_value());
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 4.0);  // swept, not client-timeout
}

TEST(ShardServerTest, MetricsOverTcpReconcileWithServiceStats) {
  obs::MetricsRegistry reg;
  ShardServerOptions o = shard_opts("s1");
  o.service.solver.instr.metrics = &reg;
  ShardServer shard(o);
  BlockingClient client;
  client.connect("127.0.0.1", shard.port());
  const auto a = shared(gen::grid2d_laplacian(7, 7));
  const auto b = shared(gen::grid3d_laplacian(3, 3, 3));
  std::uint64_t factor_a = 0;
  for (int i = 0; i < 3; ++i) {
    const auto fr = client.factorize("m", *a, Factorization::LLT);
    ASSERT_EQ(fr.status, 0) << fr.error;
    factor_a = fr.factor_id;
  }
  ASSERT_EQ(client.factorize("m", *b, Factorization::LLT).status, 0);
  std::vector<real_t> ones(static_cast<std::size_t>(a->nrows()), 1.0);
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(
        client.solve("m", pattern_digest(*a), factor_a, ones).status, 0);
  }

  // The scraped exposition and the in-process snapshot must agree
  // exactly: both sides of every counter bump share one call site.
  const service::ServiceStats st = shard.service_stats();
  const std::string text =
      net::http_get("127.0.0.1", shard.http_port(), "/metrics");
  EXPECT_EQ(prom_value(text, "spx_service_submitted_total"),
            static_cast<double>(st.submitted));
  EXPECT_EQ(prom_value(text, "spx_service_completed_total"),
            static_cast<double>(st.completed));
  EXPECT_EQ(prom_value(text, "spx_service_factorizes_total"),
            static_cast<double>(st.factorizes));
  EXPECT_EQ(prom_value(text, "spx_service_solves_total"),
            static_cast<double>(st.solves));
  EXPECT_EQ(prom_value(text, "spx_analysis_cache_hits_total"),
            static_cast<double>(st.cache.hits));
  EXPECT_EQ(prom_value(text, "spx_analysis_cache_misses_total"),
            static_cast<double>(st.cache.misses));
  EXPECT_EQ(st.submitted, 6u);
  EXPECT_EQ(st.completed, 6u);
  EXPECT_GE(st.cache.hits, 2u);  // repeats of pattern a shared its analysis

  EXPECT_GT(prom_value(text, "spx_rpc_dispatch_total"), 0.0);
  EXPECT_GT(prom_value(text, "spx_net_frames_read_total"), 0.0);

  int status = 0;
  net::http_get("127.0.0.1", shard.http_port(), "/healthz", &status);
  EXPECT_EQ(status, 200);
  net::http_get("127.0.0.1", shard.http_port(), "/readyz", &status);
  EXPECT_EQ(status, 200);
  net::http_get("127.0.0.1", shard.http_port(), "/nope", &status);
  EXPECT_EQ(status, 404);
}

TEST(ShardServerTest, GracefulDrainAnswersEverythingAccepted) {
  ShardServerOptions o = shard_opts("s1");
  o.service.num_workers = 1;  // guarantee a queue builds up
  ShardServer shard(o);

  // Fire a burst of factorizes from worker threads, then drain while
  // most are still queued.  Every request must be answered: Done (it was
  // admitted before the drain) or the retryable Draining error.
  constexpr int kClients = 4;
  constexpr int kPer = 3;
  std::atomic<int> done{0};
  std::atomic<int> draining{0};
  std::atomic<int> lost{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      BlockingClient c;
      c.connect("127.0.0.1", shard.port());
      const auto a = shared(
          gen::grid2d_laplacian(10 + t, 10));  // distinct patterns
      for (int i = 0; i < kPer; ++i) {
        try {
          NetError err{};
          const auto fr =
              c.factorize("t" + std::to_string(t), *a, Factorization::LLT,
                          {}, &err);
          if (err == NetError::Draining) {
            ++draining;
          } else if (fr.status ==
                     static_cast<std::uint8_t>(RequestStatus::Done)) {
            ++done;
          } else if (fr.status == static_cast<std::uint8_t>(
                                      RequestStatus::Rejected)) {
            ++draining;  // service-level drain rejection: also answered
          } else {
            ++lost;
          }
        } catch (const std::exception&) {
          ++lost;  // connection died with a request outstanding
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(shard.drain_and_stop(30.0));
  for (auto& th : threads) th.join();
  EXPECT_EQ(lost.load(), 0);
  EXPECT_GT(done.load(), 0);
  EXPECT_EQ(done.load() + draining.load(), kClients * kPer);
}

// ---------- front-end ---------------------------------------------------

struct Cluster {
  std::unique_ptr<ShardServer> s1;
  std::unique_ptr<ShardServer> s2;
  std::unique_ptr<FrontServer> front;

  explicit Cluster(obs::MetricsRegistry* reg = nullptr) {
    ShardServerOptions o1 = shard_opts("s1");
    ShardServerOptions o2 = shard_opts("s2");
    if (reg != nullptr) {
      o1.service.solver.instr.metrics = reg;
      o2.service.solver.instr.metrics = reg;
    }
    s1 = std::make_unique<ShardServer>(o1);
    s2 = std::make_unique<ShardServer>(o2);
    FrontServerOptions fo;
    fo.shards = {{"s1", "127.0.0.1", s1->port()},
                 {"s2", "127.0.0.1", s2->port()}};
    fo.probe_interval_s = 0.05;
    fo.metrics = reg;
    front = std::make_unique<FrontServer>(fo);
  }
};

TEST(FrontServerTest, RoutesByPatternWithStableAffinity) {
  obs::MetricsRegistry reg;
  Cluster cluster(&reg);
  BlockingClient client;
  client.connect("127.0.0.1", cluster.front->port());
  EXPECT_TRUE(client.ping());

  // Distinct patterns; each must consistently land on one shard, and the
  // repeat factorizes must hit that shard's analysis cache.
  std::vector<std::shared_ptr<const CscMatrix<real_t>>> mats;
  for (int i = 0; i < 4; ++i) {
    mats.push_back(shared(gen::grid2d_laplacian(9 + i, 9)));
  }
  std::map<std::uint64_t, std::string> owner;
  for (int round = 0; round < 3; ++round) {
    for (const auto& m : mats) {
      const auto fr = client.factorize("aff", *m, Factorization::LLT);
      ASSERT_EQ(fr.status, 0) << fr.error;
      const std::uint64_t digest = pattern_digest(*m);
      if (round == 0) {
        owner[digest] = fr.shard;
      } else {
        EXPECT_EQ(fr.shard, owner[digest]) << "affinity broken";
      }
    }
  }
  const service::ServiceStats st1 = cluster.s1->service_stats();
  const service::ServiceStats st2 = cluster.s2->service_stats();
  // Every repeat after the first factorize of a pattern is a cache hit on
  // its owning shard: 4 patterns x 3 rounds = 12 requests, 12 - #patterns
  // hits across the fleet.
  EXPECT_EQ(st1.cache.hits + st2.cache.hits, 12u - owner.size());
  EXPECT_EQ(st1.cache.misses + st2.cache.misses, owner.size());
  cluster.front->drain_and_stop(5.0);
}

TEST(FrontServerTest, SolvesFollowFactorsAndUnknownFactorPropagates) {
  Cluster cluster;
  BlockingClient client;
  client.connect("127.0.0.1", cluster.front->port());
  const auto a = shared(gen::grid2d_laplacian(8, 8));
  const auto fr = client.factorize("t", *a, Factorization::LLT);
  ASSERT_EQ(fr.status, 0) << fr.error;
  std::vector<real_t> x_true(static_cast<std::size_t>(a->nrows()), 2.0);
  const auto sr = client.solve("t", pattern_digest(*a), fr.factor_id,
                               rhs_for(*a, x_true));
  ASSERT_EQ(sr.status, 0) << sr.error;
  EXPECT_EQ(sr.shard, fr.shard);  // solve followed the factor's shard
  for (std::size_t i = 0; i < x_true.size(); ++i) {
    EXPECT_NEAR(sr.x[i], x_true[i], 1e-8);
  }
  NetError err{};
  client.solve("t", pattern_digest(*a), 424242, rhs_for(*a, x_true), {},
               &err);
  EXPECT_EQ(err, NetError::UnknownFactor);
  cluster.front->drain_and_stop(5.0);
}

TEST(FrontServerTest, NoShardsMeansNotReady) {
  FrontServerOptions fo;
  fo.shards = {{"ghost", "127.0.0.1", 1}};  // nothing listens there
  fo.probe_interval_s = 0.05;
  FrontServer front(fo);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  int status = 0;
  const std::string body =
      net::http_get("127.0.0.1", front.http_port(), "/readyz", &status);
  EXPECT_EQ(status, 503);
  BlockingClient client;
  client.connect("127.0.0.1", front.port());
  const auto a = gen::grid2d_laplacian(4, 4);
  NetError err{};
  client.factorize("t", a, Factorization::LLT, {}, &err);
  EXPECT_EQ(err, NetError::NoShard);
  EXPECT_TRUE(net::retryable(err));
}

TEST(FrontServerTest, DrainedShardRequestsRerouteWithZeroLoss) {
  Cluster cluster;
  BlockingClient client;
  client.connect("127.0.0.1", cluster.front->port());

  // Find a pattern owned by each shard so the test is symmetric in which
  // shard we kill.
  std::map<std::string, std::shared_ptr<const CscMatrix<real_t>>> by_shard;
  for (int i = 0; by_shard.size() < 2 && i < 32; ++i) {
    auto m = shared(gen::grid2d_laplacian(6 + i, 6));
    const auto fr = client.factorize("probe", *m, Factorization::LLT);
    ASSERT_EQ(fr.status, 0) << fr.error;
    by_shard.emplace(fr.shard, m);
  }
  ASSERT_EQ(by_shard.size(), 2u);

  // Drain s1 in the background while a client keeps hammering patterns
  // owned by both shards through the front.  Retryable bounces are
  // retried by the client; anything else is a lost request.
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  std::atomic<int> lost{0};
  std::thread pump([&] {
    BlockingClient c;
    c.connect("127.0.0.1", cluster.front->port());
    std::vector<std::shared_ptr<const CscMatrix<real_t>>> mats;
    for (const auto& [shard, m] : by_shard) mats.push_back(m);
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto& m = mats[static_cast<std::size_t>(i++) % mats.size()];
      bool answered = false;
      for (int attempt = 0; attempt < 20 && !answered; ++attempt) {
        NetError err{};
        try {
          const auto fr = c.factorize("pump", *m, Factorization::LLT, {},
                                      &err);
          if (fr.status == 0) {
            ++completed;
            answered = true;
          } else if (err != NetError{} && net::retryable(err)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          } else if (fr.status == static_cast<std::uint8_t>(
                                      RequestStatus::Rejected)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          } else {
            ++lost;
            answered = true;
          }
        } catch (const std::exception&) {
          // Reconnect and retry; the request itself was answered by the
          // front with an error or will be retried.
          try {
            c.connect("127.0.0.1", cluster.front->port());
          } catch (const std::exception&) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
        }
      }
      if (!answered) ++lost;
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(cluster.s1->drain_and_stop(30.0));  // graceful SIGTERM path
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_release);
  pump.join();

  EXPECT_EQ(lost.load(), 0);
  EXPECT_GT(completed.load(), 0);

  // After the drain the surviving shard serves everything.
  for (const auto& [shard, m] : by_shard) {
    const auto fr = client.factorize("after", *m, Factorization::LLT);
    ASSERT_EQ(fr.status, 0) << fr.error;
    EXPECT_EQ(fr.shard, "s2");
  }
  cluster.front->drain_and_stop(5.0);
}

// ---------- frame checksums (tentpole: wire integrity) ------------------

TEST(Protocol, ChecksumSealsVerifiesAndStrips) {
  const auto a = gen::grid2d_laplacian(5, 5);
  FactorizeRequestFrame f;
  f.pattern_digest = pattern_digest(a);
  f.tenant = "t";
  auto frame = encode_factorize_request(9, f, a);
  const std::size_t bare = frame.size();
  net::add_checksum(frame);
  ASSERT_EQ(frame.size(), bare + net::kChecksumBytes);

  FrameParser p;
  p.feed(frame);
  const auto got = p.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header.corr_id, 9u);
  EXPECT_NE(got->header.flags & net::kFlagChecksum, 0);
  // The trailer is stripped: the delivered payload decodes cleanly and
  // its length matches the unsealed encoding.
  EXPECT_EQ(got->payload.size(), bare - net::kHeaderBytes);
  EXPECT_EQ(got->header.length, got->payload.size());
  EXPECT_NO_THROW(net::decode_factorize_request(got->payload));
}

TEST(Protocol, ChecksumMismatchIsRejected) {
  auto frame = encode_error(4, NetError::Internal, "payload under test");
  net::add_checksum(frame);
  for (const std::size_t at :
       {net::kHeaderBytes, frame.size() - net::kChecksumBytes - 1,
        frame.size() - 1}) {  // body start, body end, the CRC itself
    auto bad = frame;
    bad[at] ^= 0x01;
    FrameParser p;
    EXPECT_THROW(
        {
          p.feed(bad);
          p.next();
        },
        ProtocolError);
  }
  // Unsealed frames still parse: the flag is opt-in per sender.
  FrameParser p;
  p.feed(encode_error(5, NetError::Internal, "bare"));
  EXPECT_TRUE(p.next().has_value());
}

// ---------- wire fault injection (tentpole: chaos plumbing) -------------

TEST(ShardServerTest, CorruptedFrameIsDetectedNotDecoded) {
  ShardServer shard(shard_opts("s1"));
  const auto a = gen::grid2d_laplacian(6, 6);

  FaultInjector inj(FaultPlan::nth_task(FaultAction::CorruptFrame, 0));
  BlockingClient client;
  client.connect("127.0.0.1", shard.port());
  client.set_checksum(true);
  client.set_fault(&inj);
  NetError err{};
  const auto fr = client.factorize("t", a, Factorization::LLT, {}, &err);
  EXPECT_EQ(err, NetError::Malformed);  // CRC caught the flipped byte
  EXPECT_NE(static_cast<RequestStatus>(fr.status), RequestStatus::Done);
  EXPECT_EQ(inj.fired_count(), 1);
  EXPECT_EQ(shard.service_stats().submitted, 0u);

  // The shard survived; a clean sealed request works end to end.
  BlockingClient fresh;
  fresh.connect("127.0.0.1", shard.port());
  fresh.set_checksum(true);
  const auto ok = fresh.factorize("t", a, Factorization::LLT);
  ASSERT_EQ(ok.status, 0) << ok.error;
}

TEST(ShardServerTest, WireFaultsSurfaceAsClientFailuresNotHangs) {
  ShardServer shard(shard_opts("s1"));
  const auto a = gen::grid2d_laplacian(5, 5);

  {  // DropFrame: nothing is sent; the socket timeout fires.
    FaultInjector inj(FaultPlan::nth_task(FaultAction::DropFrame, 0));
    BlockingClient c;
    c.connect("127.0.0.1", shard.port(), /*timeout_s=*/0.3);
    c.set_fault(&inj);
    EXPECT_THROW(c.factorize("t", a, Factorization::LLT), InvalidArgument);
    EXPECT_EQ(inj.fired_count(), 1);
  }
  {  // TruncateFrame: half a payload, then the connection closes.
    FaultInjector inj(FaultPlan::nth_task(FaultAction::TruncateFrame, 0));
    BlockingClient c;
    c.connect("127.0.0.1", shard.port());
    c.set_fault(&inj);
    EXPECT_THROW(c.factorize("t", a, Factorization::LLT), InvalidArgument);
    EXPECT_FALSE(c.connected());
  }
  {  // AbortConnection: the connection dies instead of sending.
    FaultInjector inj(FaultPlan::nth_task(FaultAction::AbortConnection, 0));
    BlockingClient c;
    c.connect("127.0.0.1", shard.port());
    c.set_fault(&inj);
    EXPECT_THROW(c.factorize("t", a, Factorization::LLT), InvalidArgument);
    EXPECT_FALSE(c.connected());
  }
  {  // DelayFrame: late but intact -- the request still completes.
    FaultInjector inj(
        FaultPlan::nth_task(FaultAction::DelayFrame, 0, /*stall=*/0.05));
    BlockingClient c;
    c.connect("127.0.0.1", shard.port());
    c.set_fault(&inj);
    const auto fr = c.factorize("t", a, Factorization::LLT);
    ASSERT_EQ(fr.status, 0) << fr.error;
    EXPECT_EQ(inj.fired_count(), 1);
  }
  // The shard took no damage from any of it.
  EXPECT_EQ(shard.service_stats().factorizes, 1u);
}

// ---------- correlation-id dedup (tentpole: idempotent retries) ---------

TEST(ShardServerTest, DuplicateCorrelationIdsCoalesceToOneExecution) {
  ShardServer shard(shard_opts("s1"));
  const auto a = gen::grid2d_laplacian(7, 6);
  FactorizeRequestFrame f;
  f.pattern_digest = pattern_digest(a);
  f.tenant = "t";
  const auto bytes = encode_factorize_request(4242, f, a);

  BlockingClient c1;
  c1.connect("127.0.0.1", shard.port());
  const auto r1 = c1.call(bytes, 4242);
  ASSERT_EQ(r1.header.type, FrameType::FactorizeResponse);
  const auto fr1 = net::decode_factorize_response(r1.payload);
  ASSERT_EQ(fr1.status, 0) << fr1.error;

  // The same frame again -- same connection, then a different connection
  // (the failover path: a front retrying through another socket).  Both
  // replay the completed response instead of factorizing again.
  const auto r2 = c1.call(bytes, 4242);
  const auto fr2 = net::decode_factorize_response(r2.payload);
  BlockingClient c2;
  c2.connect("127.0.0.1", shard.port());
  const auto r3 = c2.call(bytes, 4242);
  const auto fr3 = net::decode_factorize_response(r3.payload);

  EXPECT_EQ(fr2.factor_id, fr1.factor_id);
  EXPECT_EQ(fr3.factor_id, fr1.factor_id);
  EXPECT_EQ(shard.service_stats().submitted, 1u);
  EXPECT_EQ(shard.service_stats().factorizes, 1u);

  // A different corr id with the same body is NOT deduplicated: the
  // response identity is (corr, request fingerprint), nothing looser.
  const auto bytes2 = encode_factorize_request(4243, f, a);
  const auto r4 = c1.call(bytes2, 4243);
  const auto fr4 = net::decode_factorize_response(r4.payload);
  ASSERT_EQ(fr4.status, 0) << fr4.error;
  EXPECT_EQ(shard.service_stats().submitted, 2u);
}

// ---------- deadline propagation (satellite) ----------------------------

TEST(ShardServerTest, ExpiredDeadlineShortCircuitsTheService) {
  ShardServer shard(shard_opts("s1"));
  BlockingClient client;
  client.connect("127.0.0.1", shard.port());
  client.set_deadline(1e-12);  // expired by the time a worker claims it
  const auto a = gen::grid2d_laplacian(8, 8);
  const auto fr = client.factorize("t", a, Factorization::LLT);
  EXPECT_EQ(static_cast<RequestStatus>(fr.status), RequestStatus::Expired);
  EXPECT_EQ(shard.service_stats().factorizes, 0u);

  client.set_deadline(0);  // and 0 means none: back to normal
  const auto ok = client.factorize("t", a, Factorization::LLT);
  ASSERT_EQ(ok.status, 0) << ok.error;
}

TEST(FrontServerTest, ExpiredDeadlineIsBouncedBeforeDispatch) {
  obs::MetricsRegistry reg;
  Cluster cluster(&reg);
  BlockingClient client;
  client.connect("127.0.0.1", cluster.front->port());
  client.set_deadline(1e-12);
  const auto a = gen::grid2d_laplacian(9, 9);
  NetError err{};
  client.factorize("t", a, Factorization::LLT, {}, &err);
  EXPECT_EQ(err, NetError::DeadlineExceeded);
  EXPECT_FALSE(net::retryable(err));  // rerouting expired work is waste
  EXPECT_EQ(reg.value("spx_front_rejected_total", {{"reason", "deadline"}}),
            1.0);
  // The shards never saw it.
  EXPECT_EQ(cluster.s1->service_stats().submitted, 0u);
  EXPECT_EQ(cluster.s2->service_stats().submitted, 0u);
}

// ---------- circuit breaker (tentpole) ----------------------------------

TEST(CircuitBreakerTest, OpensHalfOpensProbesAndRecloses) {
  net::CircuitBreakerOptions o;
  o.window = 8;
  o.min_samples = 4;
  o.error_threshold = 0.5;
  o.open_cooldown_s = 10.0;
  net::CircuitBreaker b(o);
  double now = 100.0;

  // Below min_samples nothing trips, however bad the ratio.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(b.record_failure(now), net::BreakerState::Closed);
  }
  // The fourth failure reaches min_samples at ratio 1.0: Open.
  EXPECT_EQ(b.record_failure(now), net::BreakerState::Open);
  EXPECT_EQ(b.opened(), 1u);

  // Open holds through the cooldown; successes inside it are ignored.
  EXPECT_EQ(b.state(now + 5.0), net::BreakerState::Open);
  EXPECT_EQ(b.record_success(now + 5.0), net::BreakerState::Open);
  now += 10.0;
  EXPECT_EQ(b.state(now), net::BreakerState::HalfOpen);

  // A failed probe re-opens and restarts the cooldown.
  EXPECT_EQ(b.record_failure(now), net::BreakerState::Open);
  EXPECT_EQ(b.opened(), 2u);
  EXPECT_EQ(b.state(now + 9.9), net::BreakerState::Open);
  now += 10.0;
  EXPECT_EQ(b.state(now), net::BreakerState::HalfOpen);

  // A successful probe closes and resets the window: the next single
  // failure is 1 sample again, not the straw on an old pile.
  EXPECT_EQ(b.record_success(now), net::BreakerState::Closed);
  EXPECT_EQ(b.reclosed(), 1u);
  EXPECT_EQ(b.record_failure(now), net::BreakerState::Closed);
}

TEST(CircuitBreakerTest, MixedTrafficBelowThresholdStaysClosed) {
  net::CircuitBreakerOptions o;
  o.window = 10;
  o.min_samples = 4;
  o.error_threshold = 0.5;
  net::CircuitBreaker b(o);
  // A third of requests error, forever: never opens.
  for (int i = 0; i < 51; ++i) {
    const bool fail = (i % 3) == 2;
    const auto st = fail ? b.record_failure(1.0) : b.record_success(1.0);
    ASSERT_EQ(st, net::BreakerState::Closed) << "at i=" << i;
  }
  EXPECT_EQ(b.opened(), 0u);
}

TEST(FrontServerTest, BreakerOpensOnShardLossAndReclosesOnRecovery) {
  obs::MetricsRegistry reg;
  ShardServerOptions o1 = shard_opts("s1");
  ShardServerOptions o2 = shard_opts("s2");
  auto s1 = std::make_unique<ShardServer>(o1);
  auto s2 = std::make_unique<ShardServer>(o2);
  const std::uint16_t s1_port = s1->port();

  FrontServerOptions fo;
  fo.shards = {{"s1", "127.0.0.1", s1_port},
               {"s2", "127.0.0.1", s2->port()}};
  fo.probe_interval_s = 0.05;
  fo.max_reconnect_backoff_s = 0.05;
  fo.breaker.min_samples = 1;  // one hard failure trips (test cluster)
  fo.breaker.window = 4;
  fo.breaker.open_cooldown_s = 0.15;
  fo.metrics = &reg;
  FrontServer front(fo);

  auto gauge = [&](const std::string& shard) {
    return reg.value("spx_front_breaker_state", {{"shard", shard}});
  };
  auto transitions = [&](const std::string& shard, const std::string& to) {
    return reg.value("spx_front_breaker_transitions_total",
                     {{"shard", shard}, {"to", to}});
  };
  auto wait_until = [](const std::function<bool()>& pred,
                       double timeout_s = 5.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  };

  BlockingClient client;
  client.connect("127.0.0.1", front.port());
  ASSERT_TRUE(client.ping());

  // Kill s1 outright: its connection drops, the breaker trips Open, and
  // the transition is visible in /metrics.
  s1.reset();
  ASSERT_TRUE(wait_until([&] { return transitions("s1", "open") >= 1.0; }));
  ASSERT_TRUE(wait_until([&] { return gauge("s1") >= 1.0; }));
  EXPECT_EQ(gauge("s2"), 0.0);

  // While s1 is down, everything (including its keys) is served by s2.
  for (int i = 0; i < 6; ++i) {
    const auto m = gen::grid2d_laplacian(6 + i, 6);
    const auto fr = client.factorize("t", m, Factorization::LLT);
    ASSERT_EQ(fr.status, 0) << fr.error;
    EXPECT_EQ(fr.shard, "s2");
  }

  // Resurrect s1 on its old port: the cooldown elapses, the ping probe
  // lands in HalfOpen, and the breaker re-closes (observed transition).
  o1.port = s1_port;
  s1 = std::make_unique<ShardServer>(o1);
  ASSERT_TRUE(
      wait_until([&] { return transitions("s1", "closed") >= 1.0; }));
  ASSERT_TRUE(wait_until([&] { return gauge("s1") == 0.0; }));

  // s1 is back in the ring: some pattern routes to it again.
  ASSERT_TRUE(wait_until([&] {
    for (int i = 0; i < 8; ++i) {
      const auto m = gen::grid2d_laplacian(6 + i, 6);
      const auto fr = client.factorize("t", m, Factorization::LLT);
      if (fr.status == 0 && fr.shard == "s1") return true;
    }
    return false;
  }));
  front.drain_and_stop(5.0);
}

}  // namespace
}  // namespace spx
