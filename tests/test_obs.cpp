// Observability-layer unit tests (DESIGN.md §11, docs/OBSERVABILITY.md):
// sharded metric exactness under contention, span parent/child integrity,
// the bounded tracer ring, exporter golden files, Exportable golden keys,
// and the layered OptionsBuilder.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "runtime/run_stats.hpp"
#include "runtime/trace.hpp"
#include "service/options_builder.hpp"
#include "service/service_stats.hpp"

namespace spx {
namespace {

// ---- metrics registry ---------------------------------------------------

TEST(Registry, CounterExactUnderEightThreads) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("t_total");
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < 20000; ++i) c.inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), 8 * 20000.0);
  EXPECT_EQ(reg.value("t_total"), 8 * 20000.0);
}

TEST(Registry, HistogramExactUnderEightThreads) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("t_seconds", {1.0, 2.0});
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&h, t] {
      // Threads 0..3 observe 0.5 (first bucket), 4..7 observe 8 (+Inf).
      for (int i = 0; i < 5000; ++i) h.observe(t < 4 ? 0.5 : 8.0);
    });
  }
  for (std::thread& w : workers) w.join();
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 40000u);
  ASSERT_EQ(s.cumulative.size(), 3u);
  EXPECT_EQ(s.cumulative[0], 20000u);  // le=1
  EXPECT_EQ(s.cumulative[1], 20000u);  // le=2
  EXPECT_EQ(s.cumulative[2], 40000u);  // +Inf
  EXPECT_DOUBLE_EQ(s.sum, 20000 * 0.5 + 20000 * 8.0);
}

TEST(Registry, LabelsAreSortedIntoOneSeries) {
  obs::MetricsRegistry reg;
  obs::Counter& a =
      reg.counter("t_total", "", {{"a", "1"}, {"b", "2"}});
  obs::Counter& b =
      reg.counter("t_total", "", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(reg.value("t_total", {{"b", "2"}, {"a", "1"}}), 1.0);
}

TEST(Registry, TypeConflictThrows) {
  obs::MetricsRegistry reg;
  reg.counter("t_total");
  EXPECT_THROW(reg.gauge("t_total"), InvalidArgument);
  reg.histogram("t_seconds", {1.0});
  EXPECT_THROW(reg.histogram("t_seconds", {2.0}), InvalidArgument);
}

TEST(Registry, ValueOfUnknownSeriesIsZero) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.value("never_registered"), 0.0);
}

// ---- span tracer --------------------------------------------------------

TEST(Span, ParentChildIntegrityAcrossThreads) {
  obs::Tracer tracer;
  const obs::SpanContext root = tracer.new_trace();
  obs::ScopedSpan parent(&tracer, "parent", "span-", root);
  // Children on worker threads parent to the still-open span (the id is
  // allocated at construction) and *record before it* -- the scheduler
  // task pattern.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&tracer, &parent, t] {
      obs::ScopedSpan child(&tracer, "child", "worker-", parent.context(),
                            t);
    });
  }
  for (std::thread& w : workers) w.join();
  parent.finish();

  const std::vector<obs::SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 5u);
  // The parent records last but every child links to it, in its trace.
  const obs::SpanRecord& p = spans.back();
  EXPECT_STREQ(p.name, "parent");
  EXPECT_EQ(p.trace_id, root.trace_id);
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_STREQ(spans[i].name, "child");
    EXPECT_EQ(spans[i].parent_id, p.span_id);
    EXPECT_EQ(spans[i].trace_id, p.trace_id);
    EXPECT_GE(spans[i].end, spans[i].start);
  }
}

TEST(Span, RingKeepsNewestAndCountsDrops) {
  obs::Tracer tiny(4);
  for (int i = 0; i < 10; ++i) {
    tiny.record_span("x", "span-", {}, double(i), double(i) + 1, 0, i);
  }
  EXPECT_EQ(tiny.size(), 4u);
  EXPECT_EQ(tiny.total_recorded(), 10u);
  EXPECT_EQ(tiny.dropped(), 6u);
  const std::vector<obs::SpanRecord> spans = tiny.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].arg0, 6 + i);  // oldest first
  }
  tiny.clear();
  EXPECT_EQ(tiny.size(), 0u);
  EXPECT_EQ(tiny.dropped(), 0u);
}

TEST(Span, ScopedSpanIsInertWithoutTracerAndFinishIsIdempotent) {
  obs::ScopedSpan inert;  // must not crash on destruction
  EXPECT_FALSE(inert.active());

  obs::Tracer tracer;
  obs::ScopedSpan s(&tracer, "x", "span-", {});
  EXPECT_TRUE(s.active());
  s.finish();
  s.finish();
  EXPECT_FALSE(s.active());
  EXPECT_EQ(tracer.size(), 1u);

  obs::ScopedSpan a(&tracer, "moved", "span-", {});
  obs::ScopedSpan b(std::move(a));
  EXPECT_FALSE(a.active());
  b.finish();
  EXPECT_EQ(tracer.size(), 2u);
}

TEST(Obs, RuntimeSwitchSkipsStatementEntirely) {
  obs::set_enabled(false);
  int hits = 0;
  SPX_OBS(++hits);
  EXPECT_EQ(hits, 0);
  obs::set_enabled(true);
  SPX_OBS(++hits);
  EXPECT_EQ(hits, 1);
}

// ---- exporters ----------------------------------------------------------

TEST(Export, PrometheusMatchesGoldenFile) {
  obs::MetricsRegistry reg;
  reg.counter("spx_golden_requests_total", "Requests handled",
              {{"kind", "panel"}, {"resource", "cpu"}})
      .inc(3);
  reg.counter("spx_golden_requests_total", "Requests handled",
              {{"kind", "update"}, {"resource", "gpu"}})
      .inc();
  reg.gauge("spx_golden_queue_depth", "Current queue depth").set(2);
  obs::Histogram& h =
      reg.histogram("spx_golden_seconds", {0.5, 1.0, 2.0}, "Latency");
  h.observe(0.25);
  h.observe(0.5);  // inclusive upper bound: still the first bucket
  h.observe(0.5);
  h.observe(4.0);

  std::ifstream golden(std::string(SPX_SOURCE_DIR) +
                       "/tests/golden/metrics.prom");
  ASSERT_TRUE(golden.good()) << "tests/golden/metrics.prom missing";
  std::ostringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(obs::prometheus_text(reg), want.str());
}

TEST(Export, ChromeTraceMatchesLegacyRecorderByteForByte) {
  TraceRecorder rec;
  rec.record(0, {TaskKind::Panel, 3, -1}, 0.0, 1.0);
  rec.record(1, {TaskKind::Update, 5, 2}, 0.5, 1.5);
  rec.record_transfer(0, 7, 0.1, 0.2);

  std::ostringstream via_recorder;
  rec.write_chrome_json(via_recorder);
  std::ostringstream via_exporter;
  obs::write_chrome_trace(rec.tracer().snapshot(), via_exporter);
  EXPECT_EQ(via_recorder.str(), via_exporter.str());

  // Legacy naming survives: "<kind> p<panel>[ e<edge>]" on "<track><id>".
  const std::string out = via_recorder.str();
  EXPECT_NE(out.find("\"name\": \"panel p3\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"update p5 e2\""), std::string::npos);
  EXPECT_NE(out.find("\"tid\": \"worker-0\""), std::string::npos);
  EXPECT_NE(out.find("\"tid\": \"dma-0\""), std::string::npos);
}

TEST(Export, SpansJsonCarriesIdsAndParentLinks) {
  obs::Tracer tracer;
  const obs::SpanContext root = tracer.new_trace();
  const obs::SpanContext parent =
      tracer.record_span("a", "span-", root, 0.0, 1.0);
  tracer.record_span("b", "worker-", parent, 0.25, 0.5, 3, 7, 2);

  const json::Value v = obs::spans_to_json(tracer.snapshot());
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.at(0).at("name").as_string(), "a");
  EXPECT_EQ(v.at(1).at("name").as_string(), "b");
  EXPECT_EQ(v.at(1).at("parent").as_number(),
            v.at(0).at("span").as_number());
  EXPECT_EQ(v.at(1).at("track").as_string(), "worker-3");
  EXPECT_EQ(v.at(1).at("arg0").as_number(), 7.0);
}

// ---- Exportable golden keys ---------------------------------------------

TEST(Export, RunStatsGoldenKeys) {
  RunStats st;
  st.makespan = 2.0;
  st.gflops = 1.5;
  st.tasks_cpu = 10;
  st.tasks_gpu = 4;
  const json::Value v = to_json(st);
  EXPECT_EQ(v.at("makespan_s").as_number(), 2.0);
  EXPECT_EQ(v.at("gflops").as_number(), 1.5);
  EXPECT_EQ(v.at("tasks_cpu").as_number(), 10.0);
  EXPECT_EQ(v.at("tasks_gpu").as_number(), 4.0);
  EXPECT_FALSE(v.at("busy_fraction").is_null());
  EXPECT_FALSE(v.at("degraded").is_null());
  // The legacy emitter elided transfer bytes for CPU-only runs.
  EXPECT_TRUE(v.number_or("bytes_h2d", -1) == -1);
}

TEST(Export, FactorQualityGoldenKeys) {
  FactorQuality q;
  q.perturbed_pivots = 2;
  q.perturbed_columns = {1, 3};
  q.threshold = 1e-12;
  const json::Value v = to_json(q);
  EXPECT_EQ(v.at("perturbed_pivots").as_number(), 2.0);
  EXPECT_EQ(v.at("perturbed_columns").size(), 2u);
  EXPECT_FALSE(v.at("degraded").is_null());
  EXPECT_FALSE(v.at("pivot_growth").is_null());
  EXPECT_FALSE(v.at("anorm").is_null());
  EXPECT_FALSE(v.at("indefinite").is_null());
}

TEST(Export, ServiceStatsGoldenKeys) {
  service::ServiceStats st;
  st.submitted = 5;
  st.completed = 4;
  st.failed = 1;
  st.errors[0] = 4;
  st.cache.hits = 2;
  const json::Value v = st.to_json();
  EXPECT_EQ(v.at("submitted").as_number(), 5.0);
  EXPECT_EQ(v.at("completed").as_number(), 4.0);
  EXPECT_EQ(v.at("failed").as_number(), 1.0);
  EXPECT_EQ(v.at("errors").at("none").as_number(), 4.0);
  EXPECT_EQ(v.at("cache").at("hits").as_number(), 2.0);
  EXPECT_EQ(v.at("health").as_string(), "degraded");
}

// ---- layered options builder --------------------------------------------

TEST(Builder, InstrumentationFlowsIntoEveryLayer) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  FaultInjector fault;
  OptionsBuilder b;
  b.metrics(&registry).tracer(&tracer).fault(&fault).threads(3);

  const SolverOptions s = b.solver_options();
  EXPECT_EQ(s.instr.metrics, &registry);
  EXPECT_EQ(s.instr.tracer, &tracer);
  EXPECT_EQ(s.instr.fault, &fault);
  EXPECT_EQ(s.num_threads, 3);

  const RealDriverOptions d = b.driver_options();
  EXPECT_EQ(d.instr.metrics, &registry);
  EXPECT_EQ(d.instr.tracer, &tracer);
  EXPECT_EQ(d.instr.fault, &fault);

  const service::ServiceOptions svc = b.service_options();
  EXPECT_EQ(svc.solver.instr.metrics, &registry);
  EXPECT_EQ(svc.solver.instr.tracer, &tracer);
}

TEST(Builder, ServiceKeepsSequentialDefaultUnlessRuntimeChosen) {
  OptionsBuilder b;
  EXPECT_EQ(b.service_options().solver.runtime, RuntimeKind::Sequential);
  b.runtime(RuntimeKind::Native);
  EXPECT_EQ(b.service_options().solver.runtime, RuntimeKind::Native);
  EXPECT_EQ(b.solver_options().runtime, RuntimeKind::Native);
}

}  // namespace
}  // namespace spx
