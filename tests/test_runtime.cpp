// Scheduler and real-driver tests: dependency correctness, implicit
// dependency inference, commute exclusion, and end-to-end numerical
// factorization through every runtime with multiple worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "core/analysis.hpp"
#include "core/sequential.hpp"
#include "core/solve.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"
#include "runtime/access_deps.hpp"
#include "runtime/dag_stats.hpp"
#include "runtime/flop_costs.hpp"
#include "runtime/native_scheduler.hpp"
#include "runtime/parsec_scheduler.hpp"
#include "runtime/real_driver.hpp"
#include "runtime/serialized_scheduler.hpp"
#include "runtime/starpu_scheduler.hpp"
#include "runtime/worker_queues.hpp"
#include "test_support.hpp"

namespace spx {
namespace {

constexpr double kTol = 1e-9;

// ---------- ImplicitDeps (StarPU submission semantics) -----------------

TEST(ImplicitDeps, ReadAfterWrite) {
  ImplicitDeps deps(1, 3);
  const Access w[] = {{0, AccessMode::Write}};
  const Access r[] = {{0, AccessMode::Read}};
  deps.submit(0, w);
  deps.submit(1, r);
  deps.submit(2, r);
  EXPECT_EQ(deps.in_count()[0], 0);
  EXPECT_EQ(deps.in_count()[1], 1);
  EXPECT_EQ(deps.in_count()[2], 1);
  EXPECT_EQ(deps.successors()[0].size(), 2u);
}

TEST(ImplicitDeps, WriteAfterReadersWaitsForAll) {
  ImplicitDeps deps(1, 4);
  const Access w[] = {{0, AccessMode::Write}};
  const Access r[] = {{0, AccessMode::Read}};
  deps.submit(0, w);
  deps.submit(1, r);
  deps.submit(2, r);
  deps.submit(3, w);
  // Writer 0 plus both readers (no transitive reduction, like StarPU).
  EXPECT_EQ(deps.in_count()[3], 3);
}

TEST(ImplicitDeps, CommuteGroupMembersIndependent) {
  ImplicitDeps deps(1, 5);
  const Access w[] = {{0, AccessMode::Write}};
  const Access c[] = {{0, AccessMode::CommuteRW}};
  deps.submit(0, w);
  deps.submit(1, c);
  deps.submit(2, c);
  deps.submit(3, c);
  deps.submit(4, w);
  // Each commute member depends only on the initial writer...
  EXPECT_EQ(deps.in_count()[1], 1);
  EXPECT_EQ(deps.in_count()[2], 1);
  EXPECT_EQ(deps.in_count()[3], 1);
  // ...and the closing writer on all three members.
  EXPECT_EQ(deps.in_count()[4], 3);
}

TEST(ImplicitDeps, ReadClosesCommuteGroup) {
  ImplicitDeps deps(1, 4);
  const Access c[] = {{0, AccessMode::CommuteRW}};
  const Access r[] = {{0, AccessMode::Read}};
  deps.submit(0, c);
  deps.submit(1, r);   // reads the group's result
  deps.submit(2, c);   // new group: must wait for the reader
  deps.submit(3, c);   // same new group
  EXPECT_EQ(deps.in_count()[1], 1);
  EXPECT_EQ(deps.in_count()[2], 2);  // group member 0 + reader 1
  EXPECT_EQ(deps.in_count()[3], 2);
}

TEST(ImplicitDeps, MatchesStructureCountersOnRealDag) {
  // The inferred graph must give factor(p) exactly in_degree[p]
  // predecessors-via-updates and each update exactly one (its source
  // factor) plus possibly none from the commute group.
  const Analysis an = analyze(gen::grid3d_laplacian(5, 5, 5));
  const SymbolicStructure& st = an.structure;
  TaskTable table(st, Factorization::LLT);
  Machine machine(2);
  FlopCosts costs(table);
  StarpuScheduler sched(table, machine, costs);
  const auto& in = sched.deps().in_count();
  for (index_t p = 0; p < st.num_panels(); ++p) {
    EXPECT_EQ(in[table.id_of({TaskKind::Panel, p, -1})], st.in_degree[p])
        << "panel " << p;
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      // update (p,e) waits for factor(p) and, transitively through the
      // commute group, nothing else.
      EXPECT_EQ(in[table.id_of({TaskKind::Update, p, e})], 1);
    }
  }
}

// ---------- generic scheduler executor (sanity harness) -----------------

// Executes a scheduler single-threaded in a loop, recording order, and
// verifies dependency safety invariants on the fly.
void drive_and_check(Scheduler& sched, const TaskTable& table,
                     int num_resources = 4) {
  const SymbolicStructure& st = table.structure();
  sched.reset();
  std::vector<char> factor_done(st.num_panels(), 0);
  std::vector<index_t> updates_in(st.num_panels(), 0);
  index_t executed = 0;
  while (!sched.finished()) {
    // Pop a batch (one task per "worker") before completing anything: this
    // also checks mutual exclusion of concurrent updates into one panel.
    std::vector<std::pair<Task, int>> batch;
    std::vector<char> dst_in_flight(st.num_panels(), 0);
    for (int r = 0; r < num_resources; ++r) {
      Task t;
      if (!sched.try_pop(r, &t)) continue;
      if (t.kind == TaskKind::Update) {
        const index_t dst = st.targets[t.panel][t.edge].dst;
        ASSERT_FALSE(dst_in_flight[dst])
            << "two concurrent updates into panel " << dst;
        dst_in_flight[dst] = 1;
      }
      batch.emplace_back(t, r);
    }
    ASSERT_FALSE(batch.empty()) << "scheduler stalled with work remaining";
    for (const auto& [t, r] : batch) {
      ++executed;
      if (t.kind == TaskKind::Subtree) {
        const SubtreeGroups& g = *sched.subtree_groups();
        for (const index_t m : g.members[t.panel]) {
          ASSERT_FALSE(factor_done[m]);
          factor_done[m] = 1;
          executed += static_cast<index_t>(st.targets[m].size());
          for (const UpdateEdge& e : st.targets[m]) updates_in[e.dst]++;
        }
        // The outer ++executed counted one unit; add the other members'.
        executed += static_cast<index_t>(g.members[t.panel].size()) - 1;
      } else if (t.kind == TaskKind::Panel) {
        ASSERT_FALSE(factor_done[t.panel]);
        ASSERT_EQ(updates_in[t.panel], st.in_degree[t.panel])
            << "factor ran before all updates arrived";
        factor_done[t.panel] = 1;
      } else {
        ASSERT_TRUE(factor_done[t.panel]);
        updates_in[st.targets[t.panel][t.edge].dst]++;
      }
      sched.on_complete(t, r);
    }
  }
  EXPECT_EQ(executed, table.num_tasks());
}

TEST(Schedulers, NativeRespectsDependencies) {
  const Analysis an = analyze(gen::grid2d_laplacian(17, 17));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(4);
  FlopCosts costs(table);
  NativeScheduler sched(table, machine, costs);
  drive_and_check(sched, table);
}

TEST(Schedulers, StarpuDmdaRespectsDependencies) {
  const Analysis an = analyze(gen::grid2d_laplacian(17, 17));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(4);
  FlopCosts costs(table);
  StarpuScheduler sched(table, machine, costs);
  drive_and_check(sched, table);
}

TEST(Schedulers, StarpuEagerRespectsDependencies) {
  const Analysis an = analyze(gen::grid2d_laplacian(17, 17));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(4);
  FlopCosts costs(table);
  StarpuOptions opts;
  opts.policy = StarpuOptions::Policy::Eager;
  StarpuScheduler sched(table, machine, costs, opts);
  drive_and_check(sched, table);
}

TEST(Schedulers, ParsecRespectsDependencies) {
  const Analysis an = analyze(gen::grid2d_laplacian(17, 17));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(4);
  FlopCosts costs(table);
  ParsecScheduler sched(table, machine, costs);
  drive_and_check(sched, table);
}

TEST(Schedulers, ResetAllowsRerun) {
  const Analysis an = analyze(gen::grid2d_laplacian(9, 9));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(2);
  FlopCosts costs(table);
  ParsecScheduler sched(table, machine, costs);
  drive_and_check(sched, table, 2);
  drive_and_check(sched, table, 2);  // must work twice
}

TEST(TaskTable, IdRoundTrip) {
  const Analysis an = analyze(gen::grid2d_laplacian(11, 11));
  TaskTable table(an.structure, Factorization::LU);
  for (index_t id = 0; id < table.num_tasks(); ++id) {
    EXPECT_EQ(table.id_of(table.task_of(id)), id);
  }
}

TEST(TaskTable, BottomLevelsDecreaseTowardRoot) {
  const Analysis an = analyze(gen::grid2d_laplacian(11, 11));
  TaskTable table(an.structure, Factorization::LLT);
  FlopCosts costs(table);
  const auto levels = table.bottom_levels(costs);
  const SymbolicStructure& st = an.structure;
  // A panel's level strictly exceeds any of its targets' levels.
  for (index_t p = 0; p < st.num_panels(); ++p) {
    for (const UpdateEdge& e : st.targets[p]) {
      EXPECT_GT(levels[p], levels[e.dst]);
    }
  }
}

// ---------- end-to-end numerical factorization through the runtimes ----

struct RtCase {
  RuntimeKind runtime;
  int threads;
  int gpu_streams;
};

class RuntimeNumerics : public ::testing::TestWithParam<RtCase> {};

TEST_P(RuntimeNumerics, CholeskyResidual) {
  const RtCase c = GetParam();
  SolverOptions opts;
  opts.runtime = c.runtime;
  opts.num_threads = c.threads;
  opts.num_gpu_streams = c.gpu_streams;
  Solver<real_t> solver(opts);
  const auto a = gen::grid3d_laplacian(6, 6, 6);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  Rng rng(77);
  std::vector<real_t> x(a.ncols()), b(a.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.multiply(x, b);
  std::vector<real_t> got = b;
  solver.solve(got);
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(got[i] - x[i]));
  }
  EXPECT_LT(err, kTol);
}

TEST_P(RuntimeNumerics, LdltResidual) {
  const RtCase c = GetParam();
  if (c.runtime == RuntimeKind::Native && c.gpu_streams > 0) GTEST_SKIP();
  SolverOptions opts;
  opts.runtime = c.runtime;
  opts.num_threads = c.threads;
  opts.num_gpu_streams = c.gpu_streams;
  Solver<real_t> solver(opts);
  Rng rng(79);
  const auto a = gen::random_sym_indefinite(150, 0.04, rng);
  solver.analyze(a);
  solver.factorize(a, Factorization::LDLT);
  std::vector<real_t> x(a.ncols()), b(a.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.multiply(x, b);
  std::vector<real_t> got = b;
  solver.solve(got);
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(got[i] - x[i]));
  }
  EXPECT_LT(err, 1e-7);
}

TEST_P(RuntimeNumerics, LuResidual) {
  const RtCase c = GetParam();
  SolverOptions opts;
  opts.runtime = c.runtime;
  opts.num_threads = c.threads;
  opts.num_gpu_streams = c.gpu_streams;
  Solver<real_t> solver(opts);
  const auto a = gen::convection_diffusion3d(6, 6, 5, 12.0);
  solver.analyze(a);
  solver.factorize(a, Factorization::LU);
  Rng rng(81);
  std::vector<real_t> x(a.ncols()), b(a.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.multiply(x, b);
  std::vector<real_t> got = b;
  solver.solve(got);
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(got[i] - x[i]));
  }
  EXPECT_LT(err, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, RuntimeNumerics,
    ::testing::Values(RtCase{RuntimeKind::Sequential, 1, 0},
                      RtCase{RuntimeKind::Native, 1, 0},
                      RtCase{RuntimeKind::Native, 4, 0},
                      RtCase{RuntimeKind::Starpu, 4, 0},
                      RtCase{RuntimeKind::Starpu, 4, 2},
                      RtCase{RuntimeKind::Parsec, 4, 0},
                      RtCase{RuntimeKind::Parsec, 4, 2}),
    [](const auto& info) {
      const RtCase& c = info.param;
      return std::string(to_string(c.runtime)) + "_t" +
             std::to_string(c.threads) + "_g" +
             std::to_string(c.gpu_streams);
    });

TEST(RuntimeNumerics, ComplexLdltThroughParsec) {
  SolverOptions opts;
  opts.runtime = RuntimeKind::Parsec;
  opts.num_threads = 3;
  Solver<complex_t> solver(opts);
  const auto a = gen::helmholtz3d(6, 6, 5);
  solver.analyze(a);
  solver.factorize(a, Factorization::LDLT);
  Rng rng(83);
  std::vector<complex_t> x(a.ncols()), b(a.ncols());
  for (auto& v : x) v = rng.scalar<complex_t>();
  a.multiply(x, b);
  std::vector<complex_t> got = b;
  solver.solve(got);
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, (double)std::abs(got[i] - x[i]));
  }
  EXPECT_LT(err, kTol);
}

TEST(RuntimeNumerics, RuntimesProduceSameFactorsAsSequential) {
  const auto a = gen::grid3d_laplacian(5, 5, 5);
  const Analysis an = analyze(a);
  const auto ap = permute_symmetric(a, an.perm);

  FactorData<real_t> ref(an.structure, Factorization::LLT);
  ref.initialize(ap);
  factorize_sequential(ref);

  for (const RuntimeKind rt :
       {RuntimeKind::Native, RuntimeKind::Starpu, RuntimeKind::Parsec}) {
    FactorData<real_t> f(an.structure, Factorization::LLT);
    f.initialize(ap);
    TaskTable table(an.structure, Factorization::LLT);
    Machine machine(4);
    FlopCosts costs(table);
    std::unique_ptr<Scheduler> sched;
    if (rt == RuntimeKind::Native) {
      sched = std::make_unique<NativeScheduler>(table, machine, costs);
    } else if (rt == RuntimeKind::Starpu) {
      sched = std::make_unique<StarpuScheduler>(table, machine, costs);
    } else {
      sched = std::make_unique<ParsecScheduler>(table, machine, costs);
    }
    execute_real(*sched, machine, f);
    for (index_t p = 0; p < an.structure.num_panels(); ++p) {
      const Panel& panel = an.structure.panels[p];
      const real_t* l1 = ref.panel_l(p);
      const real_t* l2 = f.panel_l(p);
      for (index_t j = 0; j < panel.width(); ++j) {
        for (index_t i = j; i < panel.nrows; ++i) {
          EXPECT_NEAR(l1[i + (std::size_t)j * panel.nrows],
                      l2[i + (std::size_t)j * panel.nrows], 1e-10)
              << to_string(rt) << " panel " << p;
        }
      }
    }
  }
}

TEST(RuntimeNumerics, RefinementConverges) {
  SolverOptions opts;
  opts.runtime = RuntimeKind::Parsec;
  opts.num_threads = 2;
  Solver<real_t> solver(opts);
  const auto a = gen::grid2d_laplacian(20, 20);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  Rng rng(85);
  std::vector<real_t> x(a.ncols()), b(a.ncols()), got(a.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.multiply(x, b);
  const int iters = solver.solve_refine(a, b, got, 1e-14);
  EXPECT_LE(iters, 3);
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(got[i] - x[i]));
  }
  EXPECT_LT(err, 1e-11);
}

TEST(Solver, ThrowsWithoutFactorize) {
  Solver<real_t> solver;
  std::vector<real_t> b(4, 1.0);
  EXPECT_THROW(solver.solve(b), InvalidArgument);
}

TEST(Solver, RejectsComplexCholesky) {
  Solver<complex_t> solver;
  const auto a = gen::helmholtz3d(3, 3, 3);
  solver.analyze(a);
  EXPECT_THROW(solver.factorize(a, Factorization::LLT), InvalidArgument);
}

TEST(Solver, PropagatesNumericalErrorFromThreads) {
  SolverOptions opts;
  opts.runtime = RuntimeKind::Parsec;
  opts.num_threads = 3;
  Solver<real_t> solver(opts);
  // Indefinite matrix through Cholesky must throw, not hang or crash.
  Rng rng(87);
  const auto a = gen::random_sym_indefinite(80, 0.05, rng);
  solver.analyze(a);
  EXPECT_THROW(solver.factorize(a, Factorization::LLT), NumericalError);
}

}  // namespace
}  // namespace spx

// ---------- subtree merging (paper future work) -------------------------

namespace spx {
namespace {

TEST(SubtreeMerge, ZeroThresholdGroupsNothing) {
  const Analysis an = analyze(gen::grid2d_laplacian(15, 15));
  TaskTable table(an.structure, Factorization::LLT);
  FlopCosts costs(table);
  const SubtreeGroups g = merge_subtrees(an.structure, costs, 0.0);
  EXPECT_EQ(g.num_groups, 0);
  for (index_t p = 0; p < an.structure.num_panels(); ++p) {
    EXPECT_FALSE(g.grouped(p));
  }
}

TEST(SubtreeMerge, GroupsAreCompleteSubtreesAndDisjoint) {
  const Analysis an = analyze(gen::grid3d_laplacian(9, 9, 9));
  TaskTable table(an.structure, Factorization::LLT);
  FlopCosts costs(table);
  const SubtreeGroups g = merge_subtrees(an.structure, costs, 1e-3);
  ASSERT_GT(g.num_groups, 0);
  const SymbolicStructure& st = an.structure;
  index_t grouped_panels = 0;
  for (index_t root = 0; root < st.num_panels(); ++root) {
    if (g.members[root].empty()) continue;
    EXPECT_EQ(g.root_of[root], root);
    for (const index_t m : g.members[root]) {
      EXPECT_EQ(g.root_of[m], root);
      ++grouped_panels;
      // No update edge may enter the group from outside (checked also by
      // the builder's internal assertion; verify independently here).
    }
  }
  for (index_t p = 0; p < st.num_panels(); ++p) {
    for (const UpdateEdge& e : st.targets[p]) {
      if (g.grouped(e.dst)) {
        EXPECT_EQ(g.root_of[p], g.root_of[e.dst])
            << "external edge enters group at panel " << e.dst;
      }
    }
  }
  EXPECT_GT(grouped_panels, 0);
}

TEST(SubtreeMerge, LargerThresholdGroupsMore) {
  const Analysis an = analyze(gen::grid3d_laplacian(9, 9, 9));
  TaskTable table(an.structure, Factorization::LLT);
  FlopCosts costs(table);
  index_t small_grouped = 0, big_grouped = 0;
  const SubtreeGroups gs = merge_subtrees(an.structure, costs, 1e-4);
  const SubtreeGroups gb = merge_subtrees(an.structure, costs, 1e-1);
  for (index_t p = 0; p < an.structure.num_panels(); ++p) {
    small_grouped += gs.grouped(p) ? 1 : 0;
    big_grouped += gb.grouped(p) ? 1 : 0;
  }
  EXPECT_GE(big_grouped, small_grouped);
}

TEST(SubtreeMerge, ParsecSchedulerInvariantsWithGroups) {
  const Analysis an = analyze(gen::grid2d_laplacian(17, 17));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(4);
  FlopCosts costs(table);
  ParsecOptions opts;
  opts.subtree_merge_seconds = 1e-3;
  ParsecScheduler sched(table, machine, costs, opts);
  ASSERT_NE(sched.subtree_groups(), nullptr);
  drive_and_check(sched, table);
}

TEST(SubtreeMerge, NumericalResultUnchanged) {
  const auto a = gen::grid3d_laplacian(7, 7, 7);
  for (const double merge : {0.0, 1e-3, 1e-1}) {
    SolverOptions opts;
    opts.runtime = RuntimeKind::Parsec;
    opts.num_threads = 3;
    opts.parsec.subtree_merge_seconds = merge;
    Solver<real_t> solver(opts);
    solver.analyze(a);
    solver.factorize(a, Factorization::LLT);
    Rng rng(91);
    std::vector<real_t> x(a.ncols()), b(a.ncols());
    for (auto& v : x) v = rng.uniform(-1, 1);
    a.multiply(x, b);
    std::vector<real_t> got = b;
    solver.solve(got);
    double err = 0;
    for (index_t i = 0; i < a.ncols(); ++i) {
      err = std::max(err, std::abs(got[i] - x[i]));
    }
    EXPECT_LT(err, 1e-9) << "merge threshold " << merge;
  }
}

TEST(SubtreeMerge, LdltWithGroupsStaysCorrect) {
  Rng rng(93);
  const auto a = gen::random_sym_indefinite(150, 0.04, rng);
  SolverOptions opts;
  opts.runtime = RuntimeKind::Parsec;
  opts.num_threads = 3;
  opts.parsec.subtree_merge_seconds = 1e-2;
  Solver<real_t> solver(opts);
  solver.analyze(a);
  solver.factorize(a, Factorization::LDLT);
  std::vector<real_t> x(a.ncols()), b(a.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.multiply(x, b);
  std::vector<real_t> got = b;
  solver.solve(got);
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(got[i] - x[i]));
  }
  EXPECT_LT(err, 1e-7);
}

}  // namespace
}  // namespace spx

// ---------- proportional static mapping (native option) -----------------

namespace spx {
namespace {

TEST(NativeMapping, ProportionalRespectsDependencies) {
  const Analysis an = analyze(gen::grid2d_laplacian(17, 17));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(4);
  FlopCosts costs(table);
  NativeOptions opts;
  opts.mapping = NativeOptions::Mapping::Proportional;
  NativeScheduler sched(table, machine, costs, opts);
  drive_and_check(sched, table);
}

TEST(NativeMapping, ProportionalSolvesNumerically) {
  const auto a = gen::grid3d_laplacian(6, 6, 6);
  const Analysis an = analyze(a);
  FactorData<real_t> f(an.structure, Factorization::LLT);
  f.initialize(permute_symmetric(a, an.perm));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(3);
  FlopCosts costs(table);
  NativeOptions opts;
  opts.mapping = NativeOptions::Mapping::Proportional;
  NativeScheduler sched(table, machine, costs, opts);
  RealDriverOptions dopts;
  dopts.fused_ldlt = false;
  execute_real(sched, machine, f, dopts);
  Rng rng(95);
  std::vector<real_t> x(a.ncols()), b(a.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.multiply(x, b);
  std::vector<real_t> pb(b.size()), out(b.size());
  permute_vector<real_t>(an.perm, b, pb);
  solve_permuted(f, std::span<real_t>(pb));
  unpermute_vector<real_t>(an.perm, pb, out);
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(out[i] - x[i]));
  }
  EXPECT_LT(err, 1e-9);
}

}  // namespace
}  // namespace spx

// ---------- sharded-runtime regression and stress coverage ---------------

namespace spx {
namespace {

TEST(StealOrder, VictimOrderingIsSignedAndDeterministic) {
  // Historical bug: the native steal comparator subtracted unsigned
  // size()/head values; this pins the intended order -- most remaining
  // work first, lower worker index on ties.
  std::vector<StealVictim> v = {{5, 3}, {7, 1}, {5, 0}, {2, 2}};
  sort_steal_victims(v);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0].worker, 1);
  EXPECT_EQ(v[1].worker, 0);
  EXPECT_EQ(v[2].worker, 3);
  EXPECT_EQ(v[3].worker, 2);
}

/// Fan-in structure: three width-1 panels (off-diagonal heights h0 < h2 <
/// h1) all updating one wide panel 3.  Distinct heights give the updates
/// distinct bottom-level priorities: u1 > u2 > u0.
SymbolicStructure fan_in_structure() {
  SymbolicStructure st;
  const index_t heights[3] = {2, 6, 4};
  size_type storage = 0, nnz = 0;
  for (index_t p = 0; p < 3; ++p) {
    Panel panel;
    panel.supernode = p;
    panel.col_begin = p;
    panel.col_end = p + 1;
    panel.nrows = 1 + heights[p];
    panel.storage_offset = storage;
    panel.blocks.push_back({p, p + 1, p, 0});
    panel.blocks.push_back({3, 3 + heights[p], 3, 1});
    storage += static_cast<size_type>(panel.nrows);
    nnz += 1 + static_cast<size_type>(heights[p]);
    st.panels.push_back(panel);
    st.targets.push_back({{3, 1, 2}});
    st.in_degree.push_back(0);
    st.panel_of_col.push_back(p);
  }
  Panel wide;
  wide.supernode = 3;
  wide.col_begin = 3;
  wide.col_end = 11;
  wide.nrows = 8;
  wide.storage_offset = storage;
  wide.blocks.push_back({3, 11, 3, 0});
  storage += 64;
  nnz += 36;
  st.panels.push_back(wide);
  st.targets.push_back({});
  st.in_degree.push_back(3);
  for (index_t j = 3; j < 11; ++j) st.panel_of_col.push_back(3);
  st.factor_entries = storage;
  st.nnz_factor = nnz;
  st.validate();
  return st;
}

TEST(StarpuDmda, DeferredCommuteTasksReinsertedInPriorityOrder) {
  // Regression: deferred commute tasks used to be re-enqueued with a
  // push_front loop, which reversed the dmda completion-time order when
  // several updates were parked on the same target panel.
  const SymbolicStructure st = fan_in_structure();
  TaskTable table(st, Factorization::LLT);
  Machine machine(1);
  FlopCosts costs(table);
  StarpuScheduler sched(table, machine, costs);  // dmda policy

  const std::vector<double> prio = table.bottom_levels(costs);
  const index_t u0 = table.id_of({TaskKind::Update, 0, 0});
  const index_t u1 = table.id_of({TaskKind::Update, 1, 0});
  const index_t u2 = table.id_of({TaskKind::Update, 2, 0});
  ASSERT_GT(prio[u1], prio[u2]);
  ASSERT_GT(prio[u2], prio[u0]);

  Task t;
  for (index_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(sched.try_pop(0, &t));
    ASSERT_EQ(t.kind, TaskKind::Panel);
    sched.on_complete(t, 0);
  }
  // u0 claims panel 3; u1 and u2 arrive while it is busy and are parked.
  ASSERT_TRUE(sched.try_pop(0, &t));
  ASSERT_EQ(t.kind, TaskKind::Update);
  ASSERT_EQ(t.panel, 0);
  Task parked_probe;
  ASSERT_FALSE(sched.try_pop(0, &parked_probe));
  sched.on_complete(t, 0);
  // The release must hand back the higher-priority u1 before u2.
  ASSERT_TRUE(sched.try_pop(0, &t));
  EXPECT_EQ(t.kind, TaskKind::Update);
  EXPECT_EQ(t.panel, 1);
  sched.on_complete(t, 0);
  ASSERT_TRUE(sched.try_pop(0, &t));
  EXPECT_EQ(t.kind, TaskKind::Update);
  EXPECT_EQ(t.panel, 2);
  sched.on_complete(t, 0);
  ASSERT_TRUE(sched.try_pop(0, &t));
  EXPECT_EQ(t.kind, TaskKind::Panel);
  EXPECT_EQ(t.panel, 3);
  sched.on_complete(t, 0);
  EXPECT_TRUE(sched.finished());
}

TEST(DagWidth, FanInPeakWidth) {
  const SymbolicStructure st = fan_in_structure();
  TaskTable table(st, Factorization::LLT);
  FlopCosts costs(table);
  const DagStats s = dag_stats(st, costs, Decomposition::TwoLevel);
  // Levels: three factors, then three updates, then the wide factor.
  EXPECT_EQ(s.peak_width, 3);
  EXPECT_EQ(s.num_tasks, 7);
}

// ---------- multi-threaded stress (satellite: max hardware threads) ------

/// Delegating wrapper recording, per worker thread, the result of its
/// *last* finished() call -- a worker leaving the driver loop early (with
/// work remaining) shows up as a false entry.
class FinishObserver : public Scheduler {
 public:
  explicit FinishObserver(Scheduler& inner) : inner_(&inner) {}
  void reset() override { inner_->reset(); }
  bool try_pop(int r, Task* out) override { return inner_->try_pop(r, out); }
  void on_complete(const Task& t, int r) override {
    inner_->on_complete(t, r);
  }
  bool finished() const override {
    const bool f = inner_->finished();
    std::lock_guard<std::mutex> lock(m_);
    last_seen_[std::this_thread::get_id()] = f;
    return f;
  }
  std::string name() const override { return inner_->name(); }
  bool peek_prefetch(int r, Task* out) override {
    return inner_->peek_prefetch(r, out);
  }
  const SubtreeGroups* subtree_groups() const override {
    return inner_->subtree_groups();
  }
  ContentionStats contention() const override {
    return inner_->contention();
  }
  std::size_t observed_threads() const {
    std::lock_guard<std::mutex> lock(m_);
    return last_seen_.size();
  }
  bool every_exit_saw_finished() const {
    std::lock_guard<std::mutex> lock(m_);
    if (last_seen_.empty()) return false;
    for (const auto& [tid, f] : last_seen_) {
      if (!f) return false;
    }
    return true;
  }

 private:
  Scheduler* inner_;
  mutable std::mutex m_;
  mutable std::map<std::thread::id, bool> last_seen_;
};

int stress_threads() {
  return std::max(4, static_cast<int>(std::thread::hardware_concurrency()));
}

struct StressCase {
  CscMatrix<real_t> a;
  Analysis an;
  index_t expected_tasks = 0;
};

/// ~500-panel surrogate: 12^3 Laplacian with narrow panels so the task
/// graph is wide and the tasks small (the contention-sensitive regime).
const StressCase& stress_case() {
  static const StressCase c = [] {
    StressCase s{gen::grid3d_laplacian(12, 12, 12), {}, 0};
    AnalysisOptions opts;
    opts.symbolic.max_panel_width = 4;
    s.an = analyze(s.a, opts);
    s.expected_tasks =
        s.an.structure.num_panels() +
        static_cast<index_t>(s.an.structure.num_update_tasks());
    return s;
  }();
  return c;
}

/// Runs `sched` through execute_real with every machine resource and
/// verifies: all workers exit only after finished(), every task executed
/// exactly once (task counts), contention counters are populated, and the
/// factor solves the original system.
void stress_run(Scheduler& sched, const Machine& machine,
                index_t expected_tasks) {
  const StressCase& sc = stress_case();
  ASSERT_GE(sc.an.structure.num_panels(), 450);
  FinishObserver obs(sched);
  FactorData<real_t> f(sc.an.structure, Factorization::LLT);
  f.initialize(permute_symmetric(sc.a, sc.an.perm));
  RealDriverOptions dopts;
  dopts.fused_ldlt = false;
  const RunStats stats = execute_real(obs, machine, f, dopts);
  const auto nr = static_cast<std::size_t>(machine.num_resources());
  EXPECT_EQ(obs.observed_threads(), nr);
  EXPECT_TRUE(obs.every_exit_saw_finished())
      << "a worker exited the driver loop before finished()";
  if (expected_tasks > 0) {
    EXPECT_EQ(stats.tasks_cpu + stats.tasks_gpu, expected_tasks);
    EXPECT_EQ(stats.contention.total_pops(), expected_tasks);
  }
  EXPECT_EQ(stats.contention.idle_wait.size(), nr);
  EXPECT_EQ(stats.contention.lock_wait.size(), nr);
  EXPECT_GT(stats.makespan, 0.0);
  // Numerical round trip through the threaded factorization.
  Rng rng(7);
  std::vector<real_t> x(sc.a.ncols()), b(sc.a.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  sc.a.multiply(x, b);
  std::vector<real_t> pb(b.size()), out(b.size());
  permute_vector<real_t>(sc.an.perm, b, pb);
  solve_permuted(f, std::span<real_t>(pb));
  unpermute_vector<real_t>(sc.an.perm, pb, out);
  double err = 0;
  for (index_t i = 0; i < sc.a.ncols(); ++i) {
    err = std::max(err, std::abs(out[i] - x[i]));
  }
  EXPECT_LT(err, 1e-7);
}

TEST(RuntimeStress, NativeMaxThreads) {
  const StressCase& sc = stress_case();
  TaskTable table(sc.an.structure, Factorization::LLT);
  Machine machine(stress_threads());
  FlopCosts costs(table);
  NativeScheduler sched(table, machine, costs);
  stress_run(sched, machine, sc.expected_tasks);
}

TEST(RuntimeStress, StarpuDmdaMaxThreads) {
  const StressCase& sc = stress_case();
  TaskTable table(sc.an.structure, Factorization::LLT);
  Machine machine(stress_threads());
  FlopCosts costs(table);
  StarpuScheduler sched(table, machine, costs);
  stress_run(sched, machine, sc.expected_tasks);
}

TEST(RuntimeStress, StarpuEagerMaxThreads) {
  const StressCase& sc = stress_case();
  TaskTable table(sc.an.structure, Factorization::LLT);
  Machine machine(stress_threads());
  FlopCosts costs(table);
  StarpuOptions opts;
  opts.policy = StarpuOptions::Policy::Eager;
  StarpuScheduler sched(table, machine, costs, opts);
  stress_run(sched, machine, sc.expected_tasks);
}

TEST(RuntimeStress, ParsecMaxThreads) {
  const StressCase& sc = stress_case();
  TaskTable table(sc.an.structure, Factorization::LLT);
  Machine machine(stress_threads());
  FlopCosts costs(table);
  ParsecScheduler sched(table, machine, costs);
  stress_run(sched, machine, sc.expected_tasks);
}

TEST(RuntimeStress, ParsecMergedSubtreesMaxThreads) {
  const StressCase& sc = stress_case();
  TaskTable table(sc.an.structure, Factorization::LLT);
  Machine machine(stress_threads());
  FlopCosts costs(table);
  ParsecOptions opts;
  opts.subtree_merge_seconds = 1e-3;
  ParsecScheduler sched(table, machine, costs, opts);
  stress_run(sched, machine, /*expected_tasks=*/0);  // merged: fewer pops
}

TEST(RuntimeStress, ParsecGpuStreamsMaxThreads) {
  const StressCase& sc = stress_case();
  TaskTable table(sc.an.structure, Factorization::LLT);
  Machine machine(stress_threads(), 1, 2);
  FlopCosts costs(table);
  ParsecOptions opts;
  opts.gpu_min_flops = 1e4;  // push real work through the stream workers
  ParsecScheduler sched(table, machine, costs, opts);
  stress_run(sched, machine, sc.expected_tasks);
}

TEST(RuntimeStress, ConcurrentSolvesMatchSequential) {
  // A factorized Solver is immutable state for solve/solve_multi: many
  // threads solving through one shared instance must produce exactly the
  // results a sequential caller gets (the solve service relies on this
  // for concurrent read-only solves against one FactorHandle).
  const auto a = gen::grid2d_laplacian(24, 24);
  Solver<real_t> solver;
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  const index_t n = a.ncols();
  constexpr int kThreads = 8;
  constexpr int kSolvesPerThread = 4;

  // Sequential references: one per (thread, iteration) pair, through the
  // same code path each thread will use (single-RHS or two-column multi;
  // their kernels differ, so each path gets its own reference).
  std::vector<std::vector<real_t>> rhs, expect, expect_multi;
  Rng rng(95);
  for (int i = 0; i < kThreads * kSolvesPerThread; ++i) {
    std::vector<real_t> b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform(-1, 1);
    rhs.push_back(b);
    std::vector<real_t> block(static_cast<std::size_t>(n) * 2);
    std::copy(b.begin(), b.end(), block.begin());
    std::copy(b.begin(), b.end(), block.begin() + n);
    solver.solve_multi(block, 2);
    expect_multi.push_back(std::move(block));
    solver.solve(b);
    expect.push_back(std::move(b));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSolvesPerThread; ++i) {
        const std::size_t r =
            static_cast<std::size_t>(t * kSolvesPerThread + i);
        if (i % 2 == 0) {
          std::vector<real_t> b = rhs[r];
          solver.solve(b);
          if (b != expect[r]) mismatches.fetch_add(1);
        } else {
          // Exercise the multi-RHS path: duplicate the column twice.
          std::vector<real_t> block(static_cast<std::size_t>(n) * 2);
          std::copy(rhs[r].begin(), rhs[r].end(), block.begin());
          std::copy(rhs[r].begin(), rhs[r].end(), block.begin() + n);
          solver.solve_multi(block, 2);
          if (block != expect_multi[r]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent solves diverged from the sequential reference";
}

TEST(RuntimeStress, SerializedBaselineMatchesNative) {
  // The global-lock baseline wrapper must be behaviorally transparent.
  const StressCase& sc = stress_case();
  TaskTable table(sc.an.structure, Factorization::LLT);
  Machine machine(stress_threads());
  FlopCosts costs(table);
  NativeScheduler inner(table, machine, costs);
  SerializedScheduler sched(inner, machine.num_resources());
  stress_run(sched, machine, sc.expected_tasks);
}

}  // namespace
}  // namespace spx
