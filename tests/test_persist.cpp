// Tests for the factor-persistence layer (src/persist/) and the warm
// paths built on it: snapshot encode/decode round-trips for all three
// factorization kinds, corruption/version-skew rejection, the async
// rate-limited FactorStore, AnalysisCache::insert +
// SolveService::adopt_factor, and the ShardServer end-to-end story --
// factorize, restart against the same persist dir, get served warm
// without the service running a single factorization.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "mat/generators.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/shard_server.hpp"
#include "persist/factor_store.hpp"
#include "persist/snapshot.hpp"
#include "service/solve_service.hpp"

namespace spx {
namespace {

namespace fs = std::filesystem;

fs::path unique_dir(const std::string& tag) {
  static std::atomic<int> seq{0};
  fs::path p = fs::temp_directory_path() /
               ("spx_persist_" + tag + "_" + std::to_string(::getpid()) +
                "_" + std::to_string(seq++));
  fs::create_directories(p);
  return p;
}

persist::FactorSnapshot snapshot_of(const CscMatrix<real_t>& a,
                                    Factorization kind,
                                    std::uint64_t factor_id = 7) {
  Solver<real_t> solver;
  solver.analyze(a);
  solver.factorize(a, kind);
  const FactorData<real_t>& fd = solver.factor_data();
  persist::FactorSnapshot snap;
  snap.pattern_digest = solver.pattern_digest();
  snap.value_hash = persist::value_hash(a.values());
  snap.kind = kind;
  snap.factor_id = factor_id;
  snap.analysis = solver.analysis_shared();
  snap.quality = fd.quality();
  snap.lval.assign(fd.lvalues().begin(), fd.lvalues().end());
  snap.uval.assign(fd.uvalues().begin(), fd.uvalues().end());
  snap.dval.assign(fd.dvalues().begin(), fd.dvalues().end());
  return snap;
}

std::vector<real_t> rhs_for(const CscMatrix<real_t>& a,
                            const std::vector<real_t>& x) {
  std::vector<real_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, b);
  return b;
}

// ---- snapshot format ----------------------------------------------------

TEST(SnapshotTest, RoundTripRestoresSolvableFactors) {
  const auto a = gen::grid2d_laplacian(9, 8);
  for (const Factorization kind :
       {Factorization::LLT, Factorization::LDLT, Factorization::LU}) {
    const persist::FactorSnapshot snap = snapshot_of(a, kind);
    const std::vector<std::uint8_t> bytes = persist::encode_snapshot(snap);
    const persist::FactorSnapshot back = persist::decode_snapshot(bytes);

    EXPECT_EQ(back.pattern_digest, snap.pattern_digest);
    EXPECT_EQ(back.value_hash, snap.value_hash);
    EXPECT_EQ(back.kind, kind);
    EXPECT_EQ(back.factor_id, snap.factor_id);
    ASSERT_EQ(back.lval, snap.lval);  // bit-exact value round trip
    ASSERT_EQ(back.uval, snap.uval);
    ASSERT_EQ(back.dval, snap.dval);

    // The restored factors must actually solve.
    Solver<real_t> warm;
    warm.adopt_analysis(back.analysis, back.pattern_digest);
    warm.restore_factors(back.kind, back.lval, back.uval, back.dval,
                         back.quality);
    EXPECT_TRUE(warm.factorized());
    const std::vector<real_t> x_true(static_cast<std::size_t>(a.nrows()),
                                     1.5);
    std::vector<real_t> x = rhs_for(a, x_true);
    warm.solve(x);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_NEAR(x[i], x_true[i], 1e-8) << "kind " << to_string(kind);
    }
  }
}

TEST(SnapshotTest, RejectsCorruptionTruncationAndVersionSkew) {
  const auto a = gen::grid2d_laplacian(6, 6);
  const std::vector<std::uint8_t> good =
      persist::encode_snapshot(snapshot_of(a, Factorization::LLT));
  ASSERT_NO_THROW(persist::decode_snapshot(good));

  auto expect_reject = [](std::vector<std::uint8_t> bytes) {
    EXPECT_THROW(persist::decode_snapshot(bytes), persist::SnapshotError);
  };
  // Bad magic.
  {
    auto b = good;
    b[0] ^= 0xff;
    expect_reject(std::move(b));
  }
  // Version skew must reject, not misparse.
  {
    auto b = good;
    b[4] += 1;
    expect_reject(std::move(b));
  }
  // Truncation anywhere.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, good.size() / 2, good.size() - 1}) {
    auto b = good;
    b.resize(keep);
    expect_reject(std::move(b));
  }
  // A single flipped body bit fails the CRC.
  {
    auto b = good;
    b[persist::kSnapshotHeaderBytes + b.size() / 2] ^= 0x01;
    expect_reject(std::move(b));
  }
  // A flipped CRC byte likewise.
  {
    auto b = good;
    b[16] ^= 0x01;
    expect_reject(std::move(b));
  }
}

TEST(SnapshotTest, ValueHashDistinguishesValueChanges) {
  auto a = gen::grid2d_laplacian(5, 5);
  const std::uint64_t h1 = persist::value_hash(a.values());
  auto b = a;
  b.values_mut()[3] += 1e-9;
  EXPECT_NE(h1, persist::value_hash(b.values()));
  EXPECT_EQ(h1, persist::value_hash(a.values()));
}

// ---- FactorStore --------------------------------------------------------

TEST(FactorStoreTest, WritesAtomicallyLoadsBackAndRateLimits) {
  const fs::path dir = unique_dir("store");
  const auto a = gen::grid2d_laplacian(7, 7);
  const persist::FactorSnapshot snap = snapshot_of(a, Factorization::LLT, 3);
  {
    persist::FactorStoreOptions o;
    o.dir = dir.string();
    o.min_interval_s = 60.0;
    persist::FactorStore store(o);
    EXPECT_TRUE(store.save(snap));
    EXPECT_FALSE(store.save(snap));  // inside the rate-limit window
    store.flush();
    EXPECT_EQ(store.writes(), 1u);
    EXPECT_EQ(store.rate_limited(), 1u);
    EXPECT_EQ(store.write_errors(), 0u);
    // The write is atomic: no .tmp sibling survives.
    for (const auto& e : fs::directory_iterator(dir)) {
      EXPECT_NE(e.path().extension(), ".tmp");
    }
  }
  // A corrupt sibling must be skipped, not fatal.
  {
    std::ofstream bad(dir / "deadbeefdeadbeef-llt.spxsnap",
                      std::ios::binary);
    bad << "this is not a snapshot";
  }
  persist::FactorStoreOptions o2;
  o2.dir = dir.string();
  persist::FactorStore store2(o2);
  const auto loaded = store2.load_all();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].snap.pattern_digest, snap.pattern_digest);
  EXPECT_EQ(loaded[0].snap.factor_id, 3u);
  EXPECT_EQ(loaded[0].snap.lval, snap.lval);
  fs::remove_all(dir);
}

// ---- service warm APIs --------------------------------------------------

TEST(ServiceWarmTest, AdoptFactorServesSolvesAndSeedsAnalysisCache) {
  const auto a = gen::grid2d_laplacian(8, 8);
  const persist::FactorSnapshot snap = snapshot_of(a, Factorization::LLT);

  service::SolveService svc;
  Solver<real_t> warm(svc.options().solver);
  warm.adopt_analysis(snap.analysis, snap.pattern_digest);
  warm.restore_factors(snap.kind, snap.lval, snap.uval, snap.dval,
                       snap.quality);
  const service::FactorHandle factor = svc.adopt_factor(std::move(warm));
  ASSERT_NE(factor, nullptr);

  const std::vector<real_t> x_true(static_cast<std::size_t>(a.nrows()), 2.0);
  const auto sr =
      svc.solve("t", factor, rhs_for(a, x_true));
  ASSERT_TRUE(sr.ok()) << sr.error;
  for (std::size_t i = 0; i < sr.x.size(); ++i) {
    ASSERT_NEAR(sr.x[i], x_true[i], 1e-8);
  }

  // The adopted factor seeded the pattern cache: factorizing the same
  // pattern skips the symbolic phase (a hit, not a miss).
  const auto fr = svc.factorize(
      "t", std::make_shared<const CscMatrix<real_t>>(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok()) << fr.error;
  EXPECT_EQ(svc.stats().cache.hits, 1u);
  EXPECT_EQ(svc.stats().cache.misses, 0u);
}

// ---- shard end-to-end ---------------------------------------------------

bool wait_for_snapshot(const fs::path& dir, double timeout_s = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".spxsnap") return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(ShardPersistenceTest, RestartServesWarmWithoutRefactorizing) {
  const fs::path dir = unique_dir("shard");
  const auto a = gen::grid2d_laplacian(10, 9);
  net::ShardServerOptions opts;
  opts.name = "p1";
  opts.service.num_workers = 2;
  opts.persist_dir = dir.string();
  opts.persist_interval_s = 0;

  std::uint64_t cold_factor_id = 0;
  {
    net::ShardServer shard(opts);
    net::BlockingClient client;
    client.connect("127.0.0.1", shard.port());
    const auto fr = client.factorize("t", a, Factorization::LLT);
    ASSERT_EQ(fr.status, 0) << fr.error;
    cold_factor_id = fr.factor_id;
    EXPECT_EQ(shard.service_stats().factorizes, 1u);
    ASSERT_TRUE(wait_for_snapshot(dir));
  }

  {
    net::ShardServer shard(opts);  // same dir: replays the snapshot
    EXPECT_EQ(shard.warm_factors(), 1u);
    int status = 0;
    const std::string ready = net::http_get("127.0.0.1", shard.http_port(),
                                            "/readyz", &status);
    EXPECT_EQ(status, 200);
    EXPECT_NE(ready.find("warm=1"), std::string::npos) << ready;

    net::BlockingClient client;
    client.connect("127.0.0.1", shard.port());
    // Identical input: answered from the restored factor, same id, with
    // zero factorizations (and zero submissions) in the fresh service.
    const auto fr = client.factorize("t", a, Factorization::LLT);
    ASSERT_EQ(fr.status, 0) << fr.error;
    EXPECT_EQ(fr.factor_id, cold_factor_id);
    EXPECT_NE(fr.stats_json.find("warm"), std::string::npos);
    EXPECT_EQ(shard.service_stats().factorizes, 0u);
    EXPECT_EQ(shard.service_stats().submitted, 0u);

    // Pre-crash factor ids keep solving after the restart.
    const std::vector<real_t> x_true(static_cast<std::size_t>(a.nrows()),
                                     3.0);
    const auto sr = client.solve("t", pattern_digest(a), cold_factor_id,
                                 rhs_for(a, x_true));
    ASSERT_EQ(sr.status, 0) << sr.error;
    for (std::size_t i = 0; i < sr.x.size(); ++i) {
      ASSERT_NEAR(sr.x[i], x_true[i], 1e-8);
    }
    // Different values, same pattern: NOT warm-servable, but the seeded
    // analysis cache still makes it a symbolic hit.
    auto a2 = a;
    a2.values_mut()[0] += 0.5;
    const auto fr2 = client.factorize("t", a2, Factorization::LLT);
    ASSERT_EQ(fr2.status, 0) << fr2.error;
    EXPECT_NE(fr2.factor_id, cold_factor_id);
    EXPECT_EQ(shard.service_stats().factorizes, 1u);
    EXPECT_GE(shard.service_stats().cache.hits, 1u);
  }
  fs::remove_all(dir);
}

TEST(ShardPersistenceTest, CorruptSnapshotMeansColdStartNotCrash) {
  const fs::path dir = unique_dir("corrupt");
  const auto a = gen::grid2d_laplacian(8, 8);
  net::ShardServerOptions opts;
  opts.name = "p2";
  opts.service.num_workers = 1;
  opts.persist_dir = dir.string();
  opts.persist_interval_s = 0;
  {
    net::ShardServer shard(opts);
    net::BlockingClient client;
    client.connect("127.0.0.1", shard.port());
    const auto fr = client.factorize("t", a, Factorization::LLT);
    ASSERT_EQ(fr.status, 0) << fr.error;
    ASSERT_TRUE(wait_for_snapshot(dir));
  }
  // Flip one byte in every snapshot file.
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() != ".spxsnap") continue;
    std::fstream f(e.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size / 2);
    char c = 0;
    f.seekg(size / 2);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x10);
    f.seekp(size / 2);
    f.write(&c, 1);
  }
  {
    net::ShardServer shard(opts);  // must reject the snapshot and carry on
    EXPECT_EQ(shard.warm_factors(), 0u);
    net::BlockingClient client;
    client.connect("127.0.0.1", shard.port());
    const auto fr = client.factorize("t", a, Factorization::LLT);
    ASSERT_EQ(fr.status, 0) << fr.error;  // recomputed cold
    EXPECT_EQ(shard.service_stats().factorizes, 1u);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace spx
