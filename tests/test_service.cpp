// Tests for the multi-tenant solve service (src/service/): pattern keys,
// the analysis cache, admission control, batching, cancellation,
// deadlines, per-tenant fairness, and the stats JSON surface.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "common/json.hpp"
#include "mat/generators.hpp"
#include "service/solve_service.hpp"
#include "test_support.hpp"

namespace spx {
namespace {

using service::AnalysisCache;
using service::CacheOutcome;
using service::FactorHandle;
using service::FactorizeResult;
using service::PatternKey;
using service::PrecisionPolicy;
using service::RequestOptions;
using service::RequestStatus;
using service::ServiceOptions;
using service::ServiceStats;
using service::SolveResult;
using service::SolveService;
using service::TenantConfig;
using service::Ticket;

std::shared_ptr<const CscMatrix<real_t>> shared(CscMatrix<real_t> a) {
  return std::make_shared<const CscMatrix<real_t>>(std::move(a));
}

RequestOptions req(std::string tenant, double deadline_s = 0) {
  RequestOptions r;
  r.tenant = std::move(tenant);
  r.deadline_s = deadline_s;
  return r;
}

std::vector<real_t> rhs_for(const CscMatrix<real_t>& a,
                            const std::vector<real_t>& x) {
  std::vector<real_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, b);
  return b;
}

// ---------- pattern keys -----------------------------------------------

TEST(PatternKey, SamePatternDifferentValuesMatch) {
  const auto a1 = gen::grid2d_laplacian(9, 9);
  auto vals = std::vector<real_t>(a1.values().begin(), a1.values().end());
  for (auto& v : vals) v *= 2.5;
  const CscMatrix<real_t> a2(
      a1.nrows(), a1.ncols(),
      std::vector<size_type>(a1.colptr().begin(), a1.colptr().end()),
      std::vector<index_t>(a1.rowind().begin(), a1.rowind().end()),
      std::move(vals));
  EXPECT_EQ(PatternKey::of(a1), PatternKey::of(a2));
  EXPECT_EQ(pattern_digest(a1), pattern_digest(a2));
}

TEST(PatternKey, DifferentPatternsDiffer) {
  const auto a = gen::grid2d_laplacian(9, 9);
  const auto b = gen::grid2d_laplacian(9, 10);
  const auto c = gen::grid3d_laplacian(4, 4, 4);
  EXPECT_FALSE(PatternKey::of(a) == PatternKey::of(b));
  EXPECT_NE(pattern_digest(a), pattern_digest(c));
}

// ---------- analysis cache ---------------------------------------------

TEST(AnalysisCache, MissThenHitSharesTheAnalysis) {
  const auto a = gen::grid2d_laplacian(10, 10);
  AnalysisCache cache(64 << 20);
  const PatternKey key = PatternKey::of(a);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return analyze(a);
  };
  CacheOutcome out = CacheOutcome::Bypass;
  const auto first = cache.get_or_compute(key, compute, &out);
  EXPECT_EQ(out, CacheOutcome::Miss);
  const auto second = cache.get_or_compute(key, compute, &out);
  EXPECT_EQ(out, CacheOutcome::Hit);
  EXPECT_EQ(first.get(), second.get());  // same shared object, no copy
  EXPECT_EQ(computes, 1);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_GT(st.bytes, 0u);
}

TEST(AnalysisCache, ZeroBudgetBypasses) {
  const auto a = gen::grid2d_laplacian(6, 6);
  AnalysisCache cache(0);
  EXPECT_FALSE(cache.enabled());
  CacheOutcome out = CacheOutcome::Hit;
  const auto an = cache.get_or_compute(
      PatternKey::of(a), [&] { return analyze(a); }, &out);
  EXPECT_EQ(out, CacheOutcome::Bypass);
  EXPECT_NE(an, nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(AnalysisCache, LruEvictionUnderByteBudget) {
  const auto p1 = gen::grid2d_laplacian(10, 10);
  const auto p2 = gen::grid2d_laplacian(11, 10);
  const auto p3 = gen::grid2d_laplacian(12, 10);
  const std::size_t b1 = AnalysisCache::analysis_bytes(analyze(p1));
  AnalysisCache cache(b1 * 5 / 2);  // roughly two entries
  for (const auto* m : {&p1, &p2, &p3}) {
    cache.get_or_compute(PatternKey::of(*m), [&] { return analyze(*m); });
  }
  const auto st = cache.stats();
  EXPECT_GE(st.evictions, 1u);
  EXPECT_LE(st.bytes, cache.max_bytes());
  // p3 is the most recently used entry and must still be resident; p1 was
  // the cold end and must have been evicted.
  CacheOutcome out = CacheOutcome::Bypass;
  cache.get_or_compute(PatternKey::of(p3), [&] { return analyze(p3); }, &out);
  EXPECT_EQ(out, CacheOutcome::Hit);
  cache.get_or_compute(PatternKey::of(p1), [&] { return analyze(p1); }, &out);
  EXPECT_EQ(out, CacheOutcome::Miss);
}

TEST(AnalysisCache, OversizedAnalysisPassesThroughWithoutResidency) {
  const auto a = gen::grid2d_laplacian(8, 8);
  AnalysisCache cache(1);  // nothing fits
  const auto an =
      cache.get_or_compute(PatternKey::of(a), [&] { return analyze(a); });
  EXPECT_NE(an, nullptr);
  const auto st = cache.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.evictions, 1u);
}

TEST(AnalysisCache, ConcurrentMissesCoalesceToOneCompute) {
  const auto a = gen::grid2d_laplacian(10, 10);
  AnalysisCache cache(64 << 20);
  const PatternKey key = PatternKey::of(a);
  std::atomic<int> computes{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  const auto slow_compute = [&] {
    computes.fetch_add(1);
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
    return analyze(a);
  };
  CacheOutcome out1 = CacheOutcome::Bypass;
  std::thread t1([&] { cache.get_or_compute(key, slow_compute, &out1); });
  while (!entered.load()) std::this_thread::yield();
  // t1 is inside compute; this call must coalesce onto its future.
  CacheOutcome out2 = CacheOutcome::Bypass;
  std::thread t2([&] { cache.get_or_compute(key, slow_compute, &out2); });
  release.store(true);
  t1.join();
  t2.join();
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(out1, CacheOutcome::Miss);
  EXPECT_EQ(out2, CacheOutcome::Hit);
}

TEST(AnalysisCache, ComputeFailurePropagatesAndLeavesNoEntry) {
  const auto a = gen::grid2d_laplacian(6, 6);
  AnalysisCache cache(64 << 20);
  const PatternKey key = PatternKey::of(a);
  EXPECT_THROW(cache.get_or_compute(
                   key, [&]() -> Analysis { throw NumericalError("boom"); }),
               NumericalError);
  // The key is not poisoned: a later compute succeeds and caches.
  CacheOutcome out = CacheOutcome::Bypass;
  cache.get_or_compute(key, [&] { return analyze(a); }, &out);
  EXPECT_EQ(out, CacheOutcome::Miss);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// ---------- service correctness ----------------------------------------

TEST(SolveService, FactorizeAndSolveMatchDirectSolver) {
  const auto a = gen::grid3d_laplacian(5, 5, 5);
  std::vector<real_t> xstar(static_cast<std::size_t>(a.ncols()));
  Rng rng(11);
  for (auto& v : xstar) v = rng.uniform(-1, 1);
  const std::vector<real_t> b = rhs_for(a, xstar);

  SolveService svc;
  const FactorizeResult fr =
      svc.factorize("tenant-a", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok()) << fr.error;
  ASSERT_NE(fr.factor, nullptr);
  EXPECT_GT(fr.stats.factorize_s, 0.0);
  EXPECT_EQ(fr.stats.cache, CacheOutcome::Miss);
  EXPECT_GT(fr.stats.run.makespan, 0.0);

  const SolveResult sr = svc.solve("tenant-a", fr.factor, b);
  ASSERT_TRUE(sr.ok()) << sr.error;

  Solver<real_t> direct;
  direct.analyze(a);
  direct.factorize(a, Factorization::LLT);
  std::vector<real_t> xd = b;
  direct.solve(xd);
  ASSERT_EQ(sr.x.size(), xd.size());
  for (std::size_t i = 0; i < xd.size(); ++i) {
    EXPECT_NEAR(sr.x[i], xd[i], 1e-12);
  }
}

TEST(SolveService, RepeatedPatternsHitTheCache) {
  const auto a = gen::grid2d_laplacian(12, 12);
  SolveService svc;
  for (int i = 0; i < 4; ++i) {
    const FactorizeResult fr =
        svc.factorize("t", shared(a), Factorization::LLT);
    ASSERT_TRUE(fr.ok()) << fr.error;
    EXPECT_EQ(fr.stats.cache,
              i == 0 ? CacheOutcome::Miss : CacheOutcome::Hit);
    EXPECT_EQ(fr.stats.analyze_s > 0.0, i == 0);  // hits skip analysis
  }
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.cache.misses, 1u);
  EXPECT_EQ(st.cache.hits, 3u);
  EXPECT_EQ(st.factorizes, 4u);
}

TEST(SolveService, ConcurrentFactorizationsOfDifferentMatrices) {
  ServiceOptions opts;
  opts.num_workers = 4;
  SolveService svc(opts);
  std::vector<CscMatrix<real_t>> mats;
  mats.push_back(gen::grid2d_laplacian(10, 10));
  mats.push_back(gen::grid2d_laplacian(11, 11));
  mats.push_back(gen::grid2d_laplacian(12, 12));
  mats.push_back(gen::grid3d_laplacian(4, 4, 4));
  std::vector<Ticket<FactorizeResult>> tickets;
  tickets.reserve(mats.size());
  for (const auto& m : mats) {
    tickets.push_back(
        svc.submit_factorize(req("t"), shared(m), Factorization::LLT));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const FactorizeResult fr = tickets[i].get();
    ASSERT_TRUE(fr.ok()) << fr.error;
    // Each factor solves its own system correctly.
    std::vector<real_t> ones(static_cast<std::size_t>(mats[i].ncols()), 1.0);
    const std::vector<real_t> b = rhs_for(mats[i], ones);
    const SolveResult sr = svc.solve("t", fr.factor, b);
    ASSERT_TRUE(sr.ok()) << sr.error;
    for (const real_t v : sr.x) EXPECT_NEAR(v, 1.0, 1e-9);
  }
  EXPECT_EQ(svc.stats().cache.misses, 4u);  // four distinct patterns
}

// ---------- admission control ------------------------------------------

TEST(SolveService, BoundedQueueRejectsBeyondCapacity) {
  ServiceOptions opts;
  opts.num_workers = 0;  // nothing drains: the queue fills synchronously
  opts.queue_capacity = 3;
  const auto a = shared(gen::grid2d_laplacian(6, 6));
  std::vector<Ticket<FactorizeResult>> tickets;
  {
    SolveService svc(opts);
    for (int i = 0; i < 8; ++i) {
      tickets.push_back(
          svc.submit_factorize(req("t"), a, Factorization::LLT));
    }
    // Rejections complete immediately, before the service shuts down.
    int rejected = 0;
    for (int i = 3; i < 8; ++i) {
      const FactorizeResult fr = tickets[static_cast<std::size_t>(i)].get();
      EXPECT_EQ(fr.status, RequestStatus::Rejected);
      EXPECT_NE(fr.error.find("admission queue full"), std::string::npos);
      EXPECT_EQ(fr.factor, nullptr);
      ++rejected;
    }
    EXPECT_EQ(rejected, 5);
    EXPECT_EQ(svc.stats().rejected, 5u);
    EXPECT_EQ(svc.stats().queue_depth, 3u);
  }
  // Destruction drains the three queued-but-unstarted requests as Failed.
  for (int i = 0; i < 3; ++i) {
    const FactorizeResult fr = tickets[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(fr.status, RequestStatus::Failed);
    EXPECT_NE(fr.error.find("shutdown"), std::string::npos);
  }
}

TEST(SolveService, QueueBoundIsPerTenant) {
  ServiceOptions opts;
  opts.num_workers = 0;
  opts.queue_capacity = 2;
  SolveService svc(opts);
  const auto a = shared(gen::grid2d_laplacian(6, 6));
  // Tenant "a" fills its bound; tenant "b" is still admitted.
  EXPECT_TRUE(svc.submit_factorize(req("a"), a, Factorization::LLT).valid());
  EXPECT_TRUE(svc.submit_factorize(req("a"), a, Factorization::LLT).valid());
  auto rej = svc.submit_factorize(req("a"), a, Factorization::LLT);
  auto ok = svc.submit_factorize(req("b"), a, Factorization::LLT);
  EXPECT_EQ(rej.get().status, RequestStatus::Rejected);
  EXPECT_EQ(svc.stats().rejected, 1u);
  EXPECT_EQ(svc.stats().queue_depth, 3u);
  (void)ok;
}

TEST(SolveService, CancelBeforeExecution) {
  ServiceOptions opts;
  opts.num_workers = 0;  // the job can never start
  SolveService svc(opts);
  auto ticket = svc.submit_factorize(
      req("t"), shared(gen::grid2d_laplacian(6, 6)), Factorization::LLT);
  EXPECT_TRUE(ticket.cancel());
  const FactorizeResult fr = ticket.get();
  EXPECT_EQ(fr.status, RequestStatus::Cancelled);
  EXPECT_EQ(svc.stats().cancelled, 1u);
  EXPECT_FALSE(ticket.cancel());  // idempotent: already terminal
}

TEST(SolveService, DeadlineExpiresWhileQueued) {
  ServiceOptions opts;
  opts.num_workers = 1;
  SolveService svc(opts);
  const auto big = shared(gen::grid3d_laplacian(8, 8, 8));
  const auto small = shared(gen::grid2d_laplacian(6, 6));
  // The worker is busy with the big factorize; the second request's
  // microscopic deadline passes while it waits in the queue.
  auto slow = svc.submit_factorize(req("t"), big, Factorization::LLT);
  auto doomed = svc.submit_factorize(req("t", /*deadline_s=*/1e-9), small,
                                     Factorization::LLT);
  EXPECT_TRUE(slow.get().ok());
  const FactorizeResult fr = doomed.get();
  EXPECT_EQ(fr.status, RequestStatus::Expired);
  EXPECT_EQ(svc.stats().expired, 1u);
}

// ---------- multi-RHS batching -----------------------------------------

TEST(SolveService, BatchingWindowCoalescesSameFactorSolves) {
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.batch_window = 0.05;
  SolveService svc(opts);
  const auto a = gen::grid2d_laplacian(10, 10);
  const FactorizeResult fr =
      svc.factorize("t", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok()) << fr.error;

  Rng rng(23);
  const int kRhs = 4;
  std::vector<std::vector<real_t>> xs, bs;
  for (int c = 0; c < kRhs; ++c) {
    std::vector<real_t> x(static_cast<std::size_t>(a.ncols()));
    for (auto& v : x) v = rng.uniform(-1, 1);
    bs.push_back(rhs_for(a, x));
    xs.push_back(std::move(x));
  }
  std::vector<Ticket<SolveResult>> tickets;
  for (int c = 0; c < kRhs; ++c) {
    tickets.push_back(
        svc.submit_solve(req("t"), fr.factor, bs[std::size_t(c)]));
  }
  index_t max_batched = 0;
  for (int c = 0; c < kRhs; ++c) {
    const SolveResult sr = tickets[std::size_t(c)].get();
    ASSERT_TRUE(sr.ok()) << sr.error;
    max_batched = std::max(max_batched, sr.stats.batched_rhs);
    for (std::size_t i = 0; i < sr.x.size(); ++i) {
      EXPECT_NEAR(sr.x[i], xs[std::size_t(c)][i], 1e-9);
    }
  }
  // The worker picked up the first solve, lingered for the window, and
  // drained the rest into one solve_multi call.
  EXPECT_GE(max_batched, 2);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.solves, static_cast<std::uint64_t>(kRhs));
  EXPECT_LT(st.batches, static_cast<std::uint64_t>(kRhs));
  EXPECT_EQ(st.batched_rhs, static_cast<std::uint64_t>(kRhs));
}

TEST(SolveService, SolveValidatesArguments) {
  SolveService svc;
  const auto a = gen::grid2d_laplacian(6, 6);
  const FactorizeResult fr =
      svc.factorize("t", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok());
  EXPECT_THROW(svc.submit_solve(req("t"), nullptr, {}), InvalidArgument);
  EXPECT_THROW(svc.submit_solve(req("t"), fr.factor, std::vector<real_t>(3)),
               InvalidArgument);
  RequestOptions zero_rhs = req("t");
  zero_rhs.nrhs = 0;
  EXPECT_THROW(svc.submit_solve(std::move(zero_rhs), fr.factor,
                                std::vector<real_t>{}),
               InvalidArgument);
}

// ---------- stats JSON surface -----------------------------------------

TEST(SolveService, RequestAndServiceStatsRoundTripThroughJson) {
  SolveService svc;
  const auto a = gen::grid2d_laplacian(10, 10);
  const FactorizeResult fr =
      svc.factorize("tenant-α", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok()) << fr.error;
  const SolveResult sr = svc.solve(
      "tenant-α", fr.factor,
      std::vector<real_t>(static_cast<std::size_t>(a.ncols()), 1.0));
  ASSERT_TRUE(sr.ok()) << sr.error;

  // Request stats: parseable JSON carrying the non-ASCII tenant intact.
  const json::Value rq = json::Value::parse(fr.stats.to_json().dump());
  EXPECT_EQ(rq.at("tenant").as_string(), "tenant-α");
  EXPECT_EQ(rq.at("cache").as_string(), "miss");
  EXPECT_GT(rq.at("factorize_s").as_number(), 0.0);
  EXPECT_GT(rq.at("run").at("makespan_s").as_number(), 0.0);
  const json::Value sq = json::Value::parse(sr.stats.to_json().dump());
  EXPECT_GE(sq.at("queue_wait_s").as_number(), 0.0);
  EXPECT_EQ(sq.at("batched_rhs").as_number(), 1.0);

  const json::Value sv = json::Value::parse(svc.stats().to_json().dump());
  EXPECT_EQ(sv.at("submitted").as_number(), 2.0);
  EXPECT_EQ(sv.at("completed").as_number(), 2.0);
  EXPECT_EQ(sv.at("cache").at("misses").as_number(), 1.0);
}

// ---------- refactorize fast path --------------------------------------

TEST(SolveService, RefactorizeServesNewValuesThroughTheSameHandle) {
  const auto a = gen::grid2d_laplacian(12, 12);
  SolveService svc;
  const FactorizeResult fr = svc.factorize("t", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok()) << fr.error;
  ASSERT_TRUE(fr.factor->refactorizable());
  std::vector<real_t> ones(static_cast<std::size_t>(a.ncols()), 1.0);
  const std::vector<real_t> b = rhs_for(a, ones);

  // Scale the values by 2: the same b must now solve to x = 1/2.
  std::vector<real_t> scaled(a.values().begin(), a.values().end());
  for (auto& v : scaled) v *= 2.0;
  const FactorizeResult rr = svc.refactorize("t", fr.factor, scaled);
  ASSERT_TRUE(rr.ok()) << rr.error;
  EXPECT_EQ(rr.factor, fr.factor);  // the handle keeps serving
  EXPECT_GT(rr.stats.factorize_s, 0.0);
  EXPECT_EQ(rr.stats.analyze_s, 0.0);  // no symbolic work on the fast path

  const SolveResult sr = svc.solve("t", fr.factor, b);
  ASSERT_TRUE(sr.ok()) << sr.error;
  for (const real_t v : sr.x) EXPECT_NEAR(v, 0.5, 1e-9);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.factorizes, 1u);
  EXPECT_EQ(st.refactorizes, 1u);
  EXPECT_EQ(st.cache.misses, 1u);  // refactorize never re-analyzes
}

TEST(SolveService, RefactorizeValidatesArguments) {
  const auto a = gen::grid2d_laplacian(8, 8);
  SolveService svc;
  const FactorizeResult fr = svc.factorize("t", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok());
  EXPECT_THROW(svc.submit_refactorize(req("t"), nullptr, {}),
               InvalidArgument);
  EXPECT_THROW(
      svc.submit_refactorize(req("t"), fr.factor, std::vector<real_t>(3)),
      InvalidArgument);
}

TEST(SolveService, SnapshotRestoredFactorIsNotRefactorizable) {
  // adopt_factor has no input matrix to retain, so the numeric fast path
  // must refuse instead of ingesting values against a missing pattern.
  const auto a = gen::grid2d_laplacian(8, 8);
  SolveService svc;
  Solver<real_t> solo;
  solo.analyze(a);
  solo.factorize(a, Factorization::LLT);
  const FactorHandle restored = svc.adopt_factor(std::move(solo));
  EXPECT_FALSE(restored->refactorizable());
  std::vector<real_t> vals(a.values().begin(), a.values().end());
  EXPECT_THROW(svc.submit_refactorize(req("t"), restored, std::move(vals)),
               InvalidArgument);
}

// ---------- precision policy -------------------------------------------

TEST(SolveService, Fp32RefinePolicyServesFloatFactorsAtFp64Accuracy) {
  ServiceOptions opts;
  opts.precision = PrecisionPolicy::Fp32Refine;
  SolveService svc(opts);
  const auto a = gen::grid2d_laplacian(12, 12);
  std::vector<real_t> xstar(static_cast<std::size_t>(a.ncols()));
  Rng rng(7);
  for (auto& v : xstar) v = rng.uniform(-1, 1);
  const std::vector<real_t> b = rhs_for(a, xstar);

  const FactorizeResult fr = svc.factorize("t", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok()) << fr.error;
  EXPECT_TRUE(fr.stats.fp32);
  EXPECT_TRUE(fr.factor->fp32());
  EXPECT_EQ(fr.factor->precision(), PrecisionPolicy::Fp32Refine);
  EXPECT_FALSE(fr.stats.precision_fallback);
  EXPECT_LE(fr.stats.backward_error, opts.mixed_tolerance);

  const SolveResult sr = svc.solve("t", fr.factor, b);
  ASSERT_TRUE(sr.ok()) << sr.error;
  EXPECT_TRUE(sr.stats.fp32);
  EXPECT_GE(sr.stats.refine_iterations, 1);
  for (std::size_t i = 0; i < sr.x.size(); ++i) {
    EXPECT_NEAR(sr.x[i], xstar[i], 1e-8);
  }
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.tenants.at("t").fp32_served, 2u);  // factorize + solve
  EXPECT_EQ(st.tenants.at("t").fp64_fallbacks, 0u);
}

TEST(SolveService, Fp32GateTripFallsBackToFp64) {
  // Values far beyond float range overflow the fp32 factorization; the
  // probe gate trips and the service silently re-factorizes in double.
  auto a = gen::grid2d_laplacian(10, 10);
  for (auto& v : a.values_mut()) v *= 1e200;
  ServiceOptions opts;
  opts.precision = PrecisionPolicy::Fp32Refine;
  SolveService svc(opts);
  const FactorizeResult fr = svc.factorize("t", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok()) << fr.error;
  EXPECT_FALSE(fr.stats.fp32);
  EXPECT_TRUE(fr.stats.precision_fallback);
  EXPECT_FALSE(fr.factor->fp32());

  std::vector<real_t> ones(static_cast<std::size_t>(a.ncols()), 1.0);
  const SolveResult sr = svc.solve("t", fr.factor, rhs_for(a, ones));
  ASSERT_TRUE(sr.ok()) << sr.error;
  for (const real_t v : sr.x) EXPECT_NEAR(v, 1.0, 1e-9);
  EXPECT_EQ(svc.stats().tenants.at("t").fp64_fallbacks, 1u);
}

TEST(SolveService, AutoPolicySkipsFp32AfterAFallback) {
  auto a = gen::grid2d_laplacian(10, 10);
  for (auto& v : a.values_mut()) v *= 1e200;
  ServiceOptions opts;
  opts.precision = PrecisionPolicy::Auto;
  SolveService svc(opts);
  const FactorizeResult first =
      svc.factorize("t", shared(a), Factorization::LLT);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_TRUE(first.stats.precision_fallback);  // paid the doomed attempt
  const FactorizeResult second =
      svc.factorize("t", shared(a), Factorization::LLT);
  ASSERT_TRUE(second.ok()) << second.error;
  // The digest is remembered: no second fp32 attempt, no fallback event.
  EXPECT_FALSE(second.stats.fp32);
  EXPECT_FALSE(second.stats.precision_fallback);
}

TEST(SolveService, PrecisionResolvesRequestOverTenantOverService) {
  ServiceOptions opts;
  opts.precision = PrecisionPolicy::Fp64;
  TenantConfig mixed;
  mixed.precision = PrecisionPolicy::Fp32Refine;
  mixed.precision_set = true;
  opts.tenants["mixed"] = mixed;
  SolveService svc(opts);
  EXPECT_EQ(svc.effective_policy("mixed"), PrecisionPolicy::Fp32Refine);
  EXPECT_EQ(svc.effective_policy("other"), PrecisionPolicy::Fp64);
  EXPECT_EQ(svc.effective_policy("mixed", PrecisionPolicy::Fp64),
            PrecisionPolicy::Fp64);

  // A per-request override beats both lower layers end to end.
  const auto a = gen::grid2d_laplacian(10, 10);
  RequestOptions r = req("other");
  r.precision = PrecisionPolicy::Fp32Refine;
  const FactorizeResult fr =
      svc.factorize(std::move(r), shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok()) << fr.error;
  EXPECT_TRUE(fr.stats.fp32);
  EXPECT_EQ(fr.stats.precision, PrecisionPolicy::Fp32Refine);
}

// ---------- request options surface ------------------------------------

TEST(SolveService, MultiRhsSolveThroughRequestOptions) {
  const auto a = gen::grid2d_laplacian(10, 10);
  SolveService svc;
  const FactorizeResult fr = svc.factorize("t", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok());
  const auto n = static_cast<std::size_t>(a.ncols());
  std::vector<real_t> ones(n, 1.0);
  std::vector<real_t> ramp(n);
  for (std::size_t i = 0; i < n; ++i) ramp[i] = 0.01 * double(i);
  std::vector<real_t> stacked = rhs_for(a, ones);
  const std::vector<real_t> b2 = rhs_for(a, ramp);
  stacked.insert(stacked.end(), b2.begin(), b2.end());

  RequestOptions r = req("t");
  r.nrhs = 2;
  const SolveResult sr = svc.solve(std::move(r), fr.factor, std::move(stacked));
  ASSERT_TRUE(sr.ok()) << sr.error;
  ASSERT_EQ(sr.x.size(), 2 * n);
  EXPECT_EQ(sr.stats.batched_rhs, 2);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sr.x[i], 1.0, 1e-9);
    EXPECT_NEAR(sr.x[n + i], ramp[i], 1e-9);
  }
}

TEST(SolveService, DeprecatedPositionalSubmitsStillForward) {
  SolveService svc;
  const auto a = shared(gen::grid2d_laplacian(8, 8));
  SPX_SUPPRESS_DEPRECATED_BEGIN
  auto ft = svc.submit_factorize(std::string("t"), a, Factorization::LLT);
  const FactorizeResult fr = ft.get();
  ASSERT_TRUE(fr.ok()) << fr.error;
  std::vector<real_t> b(static_cast<std::size_t>(a->ncols()), 1.0);
  auto st = svc.submit_solve(std::string("t"), fr.factor, std::move(b));
  EXPECT_TRUE(st.get().ok());
  SPX_SUPPRESS_DEPRECATED_END
}

// ---------- per-tenant QoS ---------------------------------------------

struct QueueProbeJob : service::JobBase {
  QueueProbeJob() : JobBase(service::JobKind::Solve) {}
  void complete_unrun(RequestStatus, std::string) override {}
};

std::shared_ptr<QueueProbeJob> probe(std::string tenant,
                                     double deadline_s = 0) {
  auto j = std::make_shared<QueueProbeJob>();
  j->tenant = std::move(tenant);
  if (deadline_s > 0) {
    j->deadline = service::Clock::now() +
                  std::chrono::duration_cast<service::Clock::duration>(
                      std::chrono::duration<double>(deadline_s));
  }
  return j;
}

TEST(AdmissionQueue, EdfOrdersDeadlinesAheadOfFifoWithinOneTenant) {
  service::AdmissionQueue q(16);
  const auto fifo1 = probe("t");
  const auto late = probe("t", 30.0);
  const auto early = probe("t", 10.0);
  const auto mid = probe("t", 20.0);
  const auto fifo2 = probe("t");
  for (const auto& j : {fifo1, late, early, mid, fifo2}) {
    ASSERT_TRUE(q.try_push(j));
  }
  // Deadline-carrying jobs pop earliest-deadline-first, ahead of the
  // deadline-free jobs, which keep their FIFO order.
  EXPECT_EQ(q.try_pop(), early);
  EXPECT_EQ(q.try_pop(), mid);
  EXPECT_EQ(q.try_pop(), late);
  EXPECT_EQ(q.try_pop(), fifo1);
  EXPECT_EQ(q.try_pop(), fifo2);
  EXPECT_EQ(q.try_pop(), nullptr);
}

TEST(AdmissionQueue, WeightedSharesInterleaveFourToOne) {
  std::map<std::string, TenantConfig> tenants;
  tenants["heavy"].weight = 4.0;
  service::AdmissionQueue q(16, nullptr, std::move(tenants));
  EXPECT_EQ(q.tenant_weight("heavy"), 4.0);
  EXPECT_EQ(q.tenant_weight("light"), 1.0);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.try_push(probe("heavy")));
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(q.try_push(probe("light")));
  std::vector<int> light_pos;
  for (int i = 0; i < 10; ++i) {
    const auto j = q.try_pop();
    ASSERT_NE(j, nullptr);
    if (j->tenant == "light") light_pos.push_back(i);
  }
  // Smooth WRR at 4:1 yields H H L H H H H L H H -- the light tenant gets
  // every fifth slot instead of waiting behind the heavy backlog.
  ASSERT_EQ(light_pos.size(), 2u);
  EXPECT_EQ(light_pos[0], 2);
  EXPECT_EQ(light_pos[1], 7);
}

TEST(SolveService, PerTenantStatsSlices) {
  ServiceOptions opts;
  opts.tenants["gold"].weight = 4.0;
  SolveService svc(opts);
  const auto a = gen::grid2d_laplacian(8, 8);
  const FactorizeResult fr =
      svc.factorize("gold", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok());
  const std::vector<real_t> b(static_cast<std::size_t>(a.ncols()), 1.0);
  ASSERT_TRUE(svc.solve("gold", fr.factor, b).ok());
  ASSERT_TRUE(svc.solve("silver", fr.factor, b).ok());

  const ServiceStats st = svc.stats();
  const service::TenantStats& gold = st.tenants.at("gold");
  EXPECT_EQ(gold.submitted, 2u);
  EXPECT_EQ(gold.completed, 2u);
  EXPECT_EQ(gold.factorizes, 1u);
  EXPECT_EQ(gold.solves, 1u);
  EXPECT_EQ(gold.weight, 4.0);
  const service::TenantStats& silver = st.tenants.at("silver");
  EXPECT_EQ(silver.submitted, 1u);
  EXPECT_EQ(silver.solves, 1u);
  EXPECT_EQ(silver.weight, 1.0);
  // The slices surface in the stats JSON too.
  const json::Value sv = json::Value::parse(st.to_json().dump());
  EXPECT_EQ(sv.at("tenants").at("gold").at("weight").as_number(), 4.0);
}

// ---------- fairness + stress (runs under SPX_SANITIZE=thread) ----------

TEST(ServiceStress, NoTenantStarvedAcrossMixedRequests) {
  // One flooding tenant and three light tenants share the service.  With
  // round-robin admission the light tenants' requests must complete long
  // before the flood drains -- no tenant waits behind another tenant's
  // backlog.
  ServiceOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 2000;
  opts.max_batch = 1;  // keep completion order == scheduling order
  SolveService svc(opts);
  // Large enough that 880 solves cannot drain in the microseconds it
  // takes to enqueue the light tenants below.
  const auto a = gen::grid2d_laplacian(40, 40);
  const FactorizeResult fr =
      svc.factorize("warm", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok()) << fr.error;
  const std::vector<real_t> b(static_cast<std::size_t>(a.ncols()), 1.0);

  constexpr int kFlood = 880;
  constexpr int kLight = 50;
  std::vector<Ticket<SolveResult>> flood, light;
  // Fill the flood tenant's queue first, then interleave the light
  // tenants; round-robin must still serve them promptly.
  for (int i = 0; i < kFlood; ++i) {
    flood.push_back(svc.submit_solve(req("flood"), fr.factor, b));
  }
  for (int i = 0; i < kLight; ++i) {
    for (const char* tenant : {"light-1", "light-2", "light-3"}) {
      light.push_back(svc.submit_solve(req(tenant), fr.factor, b));
    }
  }
  std::uint64_t light_max_seq = 0;
  for (auto& t : light) {
    const SolveResult sr = t.get();
    ASSERT_TRUE(sr.ok()) << sr.error;
    light_max_seq = std::max(light_max_seq, sr.stats.completion_seq);
  }
  std::uint64_t flood_max_seq = 0;
  for (auto& t : flood) {
    const SolveResult sr = t.get();
    ASSERT_TRUE(sr.ok()) << sr.error;
    flood_max_seq = std::max(flood_max_seq, sr.stats.completion_seq);
  }
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 1u + kFlood + 3u * kLight);
  EXPECT_EQ(st.rejected, 0u);
  // Each round-robin rotation serves every tenant once, so the 150 light
  // requests all complete within the first ~4*150 completions (plus the
  // flood's head start while they were being enqueued); the flood's tail
  // necessarily lands at the very end.
  EXPECT_LT(light_max_seq, 800u);
  EXPECT_GT(flood_max_seq, light_max_seq);
  EXPECT_EQ(flood_max_seq, st.completed);
}

TEST(ServiceStress, ConcurrentTenantsSubmitAndSolve) {
  // Many threads hammer one service with mixed factorize + solve traffic
  // against distinct patterns; everything must complete and be correct.
  ServiceOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 256;
  opts.batch_window = 0.001;
  SolveService svc(opts);
  constexpr int kThreads = 6;
  constexpr int kPerThread = 12;
  std::atomic<int> solved{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto a = gen::grid2d_laplacian(8 + t % 3, 8);
      const std::string tenant = "tenant-" + std::to_string(t);
      const FactorizeResult fr =
          svc.factorize(tenant, shared(a), Factorization::LLT);
      ASSERT_TRUE(fr.ok()) << fr.error;
      std::vector<real_t> ones(static_cast<std::size_t>(a.ncols()), 1.0);
      const std::vector<real_t> b = rhs_for(a, ones);
      for (int i = 0; i < kPerThread; ++i) {
        const SolveResult sr = svc.solve(tenant, fr.factor, b);
        ASSERT_TRUE(sr.ok()) << sr.error;
        for (const real_t v : sr.x) ASSERT_NEAR(v, 1.0, 1e-9);
        solved.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(solved.load(), kThreads * kPerThread);
  EXPECT_EQ(svc.stats().cache.misses, 3u);  // three distinct patterns
}

}  // namespace
}  // namespace spx
