// End-to-end numerical tests of the sequential supernodal factorization:
// every factorization kind, both update-kernel variants, both LDLT
// strategies, all orderings, real and complex scalars.
#include <gtest/gtest.h>

#include "core/sequential.hpp"
#include "mat/generators.hpp"
#include "mat/triplets.hpp"
#include "test_support.hpp"

namespace spx {
namespace {

using test::solve_residual;

constexpr double kTol = 1e-9;

TEST(SeqFactor, CholeskyGrid2d) {
  const auto a = gen::grid2d_laplacian(15, 15);
  const double r = solve_residual<real_t>(
      a, Factorization::LLT,
      [](FactorData<real_t>& f) { factorize_sequential(f); });
  EXPECT_LT(r, kTol);
}

TEST(SeqFactor, CholeskyGrid3d) {
  const auto a = gen::grid3d_laplacian(7, 7, 7);
  const double r = solve_residual<real_t>(
      a, Factorization::LLT,
      [](FactorData<real_t>& f) { factorize_sequential(f); });
  EXPECT_LT(r, kTol);
}

TEST(SeqFactor, CholeskyElasticity) {
  const auto a = gen::elasticity3d(5, 5, 5);
  const double r = solve_residual<real_t>(
      a, Factorization::LLT,
      [](FactorData<real_t>& f) { factorize_sequential(f); });
  EXPECT_LT(r, kTol);
}

TEST(SeqFactor, LdltRealIndefinite) {
  Rng rng(31);
  const auto a = gen::random_sym_indefinite(120, 0.05, rng);
  const double r = solve_residual<real_t>(
      a, Factorization::LDLT,
      [](FactorData<real_t>& f) { factorize_sequential(f); });
  EXPECT_LT(r, kTol);
}

TEST(SeqFactor, LdltComplexSymmetricHelmholtz) {
  const auto a = gen::helmholtz3d(6, 6, 6);
  const double r = solve_residual<complex_t>(
      a, Factorization::LDLT,
      [](FactorData<complex_t>& f) { factorize_sequential(f); });
  EXPECT_LT(r, kTol);
}

TEST(SeqFactor, LuRealConvectionDiffusion) {
  const auto a = gen::convection_diffusion3d(6, 6, 6, 20.0);
  const double r = solve_residual<real_t>(
      a, Factorization::LU,
      [](FactorData<real_t>& f) { factorize_sequential(f); });
  EXPECT_LT(r, kTol);
}

TEST(SeqFactor, LuComplexFilter) {
  const auto a = gen::filter3d(5, 5, 5);
  const double r = solve_residual<complex_t>(
      a, Factorization::LU,
      [](FactorData<complex_t>& f) { factorize_sequential(f); });
  EXPECT_LT(r, kTol);
}

TEST(SeqFactor, LuRandomStructurallySymmetric) {
  Rng rng(33);
  const auto a = gen::random_unsym(100, 0.06, rng);
  const double r = solve_residual<real_t>(
      a, Factorization::LU,
      [](FactorData<real_t>& f) { factorize_sequential(f); });
  EXPECT_LT(r, kTol);
}

// ---- parametrized sweep over variants and orderings -----------------

struct Config {
  UpdateVariant variant;
  bool fused_ldlt;
  OrderingMethod ordering;
};

class FactorConfigs : public ::testing::TestWithParam<Config> {};

TEST_P(FactorConfigs, CholeskyResidualSmall) {
  const Config cfg = GetParam();
  AnalysisOptions opts;
  opts.ordering = cfg.ordering;
  const auto a = gen::grid2d_laplacian(13, 11);
  const double r = solve_residual<real_t>(
      a, Factorization::LLT,
      [&](FactorData<real_t>& f) {
        factorize_sequential(f, cfg.variant, cfg.fused_ldlt);
      },
      opts);
  EXPECT_LT(r, kTol);
}

TEST_P(FactorConfigs, LdltResidualSmall) {
  const Config cfg = GetParam();
  AnalysisOptions opts;
  opts.ordering = cfg.ordering;
  Rng rng(37);
  const auto a = gen::random_sym_indefinite(90, 0.06, rng);
  const double r = solve_residual<real_t>(
      a, Factorization::LDLT,
      [&](FactorData<real_t>& f) {
        factorize_sequential(f, cfg.variant, cfg.fused_ldlt);
      },
      opts);
  EXPECT_LT(r, kTol);
}

TEST_P(FactorConfigs, LuResidualSmall) {
  const Config cfg = GetParam();
  AnalysisOptions opts;
  opts.ordering = cfg.ordering;
  const auto a = gen::convection_diffusion3d(5, 5, 4, 10.0);
  const double r = solve_residual<real_t>(
      a, Factorization::LU,
      [&](FactorData<real_t>& f) {
        factorize_sequential(f, cfg.variant, cfg.fused_ldlt);
      },
      opts);
  EXPECT_LT(r, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndOrderings, FactorConfigs,
    ::testing::Values(
        Config{UpdateVariant::TempBuffer, false,
               OrderingMethod::NestedDissection},
        Config{UpdateVariant::Direct, false,
               OrderingMethod::NestedDissection},
        Config{UpdateVariant::TempBuffer, true,
               OrderingMethod::NestedDissection},
        Config{UpdateVariant::Direct, true, OrderingMethod::NestedDissection},
        Config{UpdateVariant::TempBuffer, false,
               OrderingMethod::MinimumDegree},
        Config{UpdateVariant::TempBuffer, false, OrderingMethod::RCM},
        Config{UpdateVariant::TempBuffer, false, OrderingMethod::Natural}));

// Both update variants must produce *identical* factors (same arithmetic,
// different data movement).
TEST(SeqFactor, VariantsProduceIdenticalFactors) {
  const auto a = gen::grid3d_laplacian(5, 5, 5);
  const Analysis an = analyze(a);
  const auto ap = permute_symmetric(a, an.perm);
  FactorData<real_t> f1(an.structure, Factorization::LLT);
  FactorData<real_t> f2(an.structure, Factorization::LLT);
  f1.initialize(ap);
  f2.initialize(ap);
  factorize_sequential(f1, UpdateVariant::TempBuffer);
  factorize_sequential(f2, UpdateVariant::Direct);
  for (index_t p = 0; p < an.structure.num_panels(); ++p) {
    const Panel& panel = an.structure.panels[p];
    const real_t* l1 = f1.panel_l(p);
    const real_t* l2 = f2.panel_l(p);
    for (index_t j = 0; j < panel.width(); ++j) {
      for (index_t i = j; i < panel.nrows; ++i) {  // lower part only
        EXPECT_NEAR(l1[i + static_cast<std::size_t>(j) * panel.nrows],
                    l2[i + static_cast<std::size_t>(j) * panel.nrows],
                    1e-12)
            << "panel " << p;
      }
    }
  }
}

// Splitting panels must not change the numerical result.
TEST(SeqFactor, SplitWidthsAgree) {
  const auto a = gen::grid3d_laplacian(6, 6, 6);
  for (const index_t width : {0, 8, 32}) {
    AnalysisOptions opts;
    opts.symbolic.max_panel_width = width;
    const double r = solve_residual<real_t>(
        a, Factorization::LLT,
        [](FactorData<real_t>& f) { factorize_sequential(f); }, opts);
    EXPECT_LT(r, kTol) << "width " << width;
  }
}

// Amalgamation (extra explicit zeros) must not change the result either.
TEST(SeqFactor, AmalgamationLevelsAgree) {
  const auto a = gen::grid3d_laplacian(6, 6, 6);
  for (const double fill : {0.0, 0.12, 0.4}) {
    AnalysisOptions opts;
    opts.symbolic.amalgamation.fill_ratio = fill;
    const double r = solve_residual<real_t>(
        a, Factorization::LU,
        [](FactorData<real_t>& f) { factorize_sequential(f); }, opts);
    EXPECT_LT(r, kTol) << "fill " << fill;
  }
}

TEST(SeqFactor, ThrowsOnSingularMatrix) {
  // Exactly singular: a 2x2 block of ones.
  Triplets<real_t> t(4, 4);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add_sym(1, 0, 1.0);
  t.add(2, 2, 1.0);
  t.add(3, 3, 1.0);
  const auto a = t.to_csc();
  const Analysis an = analyze(a);
  const auto ap = permute_symmetric(a, an.perm);
  FactorData<real_t> f(an.structure, Factorization::LLT);
  f.initialize(ap);
  EXPECT_THROW(factorize_sequential(f), NumericalError);
}

TEST(FactorData, RowPositionFindsAllStructureRows) {
  const auto a = gen::grid2d_laplacian(9, 9);
  const Analysis an = analyze(a);
  FactorData<real_t> f(an.structure, Factorization::LLT);
  for (index_t p = 0; p < an.structure.num_panels(); ++p) {
    const Panel& panel = an.structure.panels[p];
    for (const Block& b : panel.blocks) {
      for (index_t r = b.row_begin; r < b.row_end; ++r) {
        EXPECT_EQ(f.row_position(p, r), b.offset + (r - b.row_begin));
      }
    }
  }
}

// Larger mixed test: every kind on a moderately big 3D problem.
TEST(SeqFactor, MediumProblemAllKinds) {
  const auto spd = gen::grid3d_laplacian(9, 9, 9);
  EXPECT_LT(solve_residual<real_t>(
                spd, Factorization::LLT,
                [](FactorData<real_t>& f) { factorize_sequential(f); }),
            kTol);
  EXPECT_LT(solve_residual<real_t>(
                spd, Factorization::LDLT,
                [](FactorData<real_t>& f) { factorize_sequential(f); }),
            kTol);
  const auto uns = gen::convection_diffusion3d(8, 8, 8, 15.0);
  EXPECT_LT(solve_residual<real_t>(
                uns, Factorization::LU,
                [](FactorData<real_t>& f) { factorize_sequential(f); }),
            kTol);
}

}  // namespace
}  // namespace spx

// ---- left-looking traversal (paper §III's alternative) -----------------

namespace spx {
namespace {

TEST(LeftLooking, BitIdenticalToRightLooking) {
  const auto a = gen::grid3d_laplacian(6, 6, 6);
  const Analysis an = analyze(a);
  const auto ap = permute_symmetric(a, an.perm);
  FactorData<real_t> right(an.structure, Factorization::LLT);
  FactorData<real_t> left(an.structure, Factorization::LLT);
  right.initialize(ap);
  left.initialize(ap);
  // Right-looking with the fused-LDLT path disabled is arithmetically the
  // same sequence as the left-looking gather; results must match exactly.
  factorize_sequential(right, UpdateVariant::TempBuffer, true);
  factorize_sequential_left(left, UpdateVariant::TempBuffer);
  for (index_t p = 0; p < an.structure.num_panels(); ++p) {
    const Panel& panel = an.structure.panels[p];
    const real_t* lr = right.panel_l(p);
    const real_t* ll = left.panel_l(p);
    for (index_t j = 0; j < panel.width(); ++j) {
      for (index_t i = j; i < panel.nrows; ++i) {
        EXPECT_EQ(lr[i + (std::size_t)j * panel.nrows],
                  ll[i + (std::size_t)j * panel.nrows])
            << "panel " << p;
      }
    }
  }
}

TEST(LeftLooking, SolvesAllKinds) {
  EXPECT_LT(test::solve_residual<real_t>(
                gen::grid2d_laplacian(12, 12), Factorization::LLT,
                [](FactorData<real_t>& f) { factorize_sequential_left(f); }),
            1e-9);
  Rng rng(55);
  EXPECT_LT(test::solve_residual<real_t>(
                gen::random_sym_indefinite(90, 0.05, rng),
                Factorization::LDLT,
                [](FactorData<real_t>& f) { factorize_sequential_left(f); }),
            1e-9);
  EXPECT_LT(test::solve_residual<complex_t>(
                gen::filter3d(4, 4, 4), Factorization::LU,
                [](FactorData<complex_t>& f) {
                  factorize_sequential_left(f);
                }),
            1e-9);
}

}  // namespace
}  // namespace spx
