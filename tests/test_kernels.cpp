#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "kernels/dense.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/scatter.hpp"

namespace spx {
namespace {
namespace k = kernels;

template <typename T>
std::vector<T> random_matrix(index_t m, index_t n, Rng& rng) {
  std::vector<T> a(static_cast<std::size_t>(m) * n);
  for (auto& v : a) v = rng.scalar<T>();
  return a;
}

template <typename T>
double max_diff(const std::vector<T>& a, const std::vector<T>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, static_cast<double>(magnitude<T>(a[i] - b[i])));
  }
  return d;
}

using Dims = std::tuple<int, int, int>;

class GemmSizes : public ::testing::TestWithParam<Dims> {};

TEST_P(GemmSizes, OptimizedMatchesReferenceReal) {
  const auto [m, n, kk] = GetParam();
  Rng rng(100 + m + 7 * n + 13 * kk);
  const auto a = random_matrix<real_t>(m, kk, rng);
  const auto b = random_matrix<real_t>(n, kk, rng);
  auto c1 = random_matrix<real_t>(m, n, rng);
  auto c2 = c1;
  k::gemm_nt<real_t>(m, n, kk, -1.0, a.data(), m, b.data(), n, 1.0,
                     c1.data(), m);
  k::gemm_nt_ref<real_t>(m, n, kk, -1.0, a.data(), m, b.data(), n, 1.0,
                         c2.data(), m);
  EXPECT_LT(max_diff(c1, c2), 1e-12 * std::max(1, kk));
}

TEST_P(GemmSizes, OptimizedMatchesReferenceComplex) {
  const auto [m, n, kk] = GetParam();
  Rng rng(200 + m + 7 * n + 13 * kk);
  const auto a = random_matrix<complex_t>(m, kk, rng);
  const auto b = random_matrix<complex_t>(n, kk, rng);
  auto c1 = random_matrix<complex_t>(m, n, rng);
  auto c2 = c1;
  k::gemm_nt<complex_t>(m, n, kk, complex_t(0.5, -1.0), a.data(), m,
                        b.data(), n, complex_t(1.0), c1.data(), m);
  k::gemm_nt_ref<complex_t>(m, n, kk, complex_t(0.5, -1.0), a.data(), m,
                            b.data(), n, complex_t(1.0), c2.data(), m);
  EXPECT_LT(max_diff(c1, c2), 1e-12 * std::max(1, kk));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(Dims{1, 1, 1}, Dims{3, 5, 2}, Dims{8, 8, 8},
                      Dims{17, 4, 9}, Dims{33, 7, 21}, Dims{5, 1, 300},
                      Dims{64, 64, 64}, Dims{100, 3, 1}, Dims{2, 95, 37},
                      Dims{129, 17, 65}));

TEST(GemmNt, BetaZeroOverwritesNanFree) {
  // beta = 0 must overwrite C even when C holds garbage/NaN.
  const index_t m = 4, n = 3, kk = 2;
  Rng rng(5);
  const auto a = random_matrix<real_t>(m, kk, rng);
  const auto b = random_matrix<real_t>(n, kk, rng);
  std::vector<real_t> c(m * n, std::numeric_limits<real_t>::quiet_NaN());
  k::gemm_nt<real_t>(m, n, kk, 1.0, a.data(), m, b.data(), n, 0.0, c.data(),
                     m);
  for (const auto v : c) EXPECT_FALSE(std::isnan(v));
}

TEST(GemmNt, RespectsLeadingDimensions) {
  const index_t m = 3, n = 2, kk = 2, lda = 5, ldb = 4, ldc = 7;
  Rng rng(6);
  const auto a = random_matrix<real_t>(lda, kk, rng);
  const auto b = random_matrix<real_t>(ldb, kk, rng);
  auto c1 = random_matrix<real_t>(ldc, n, rng);
  auto c2 = c1;
  k::gemm_nt<real_t>(m, n, kk, 2.0, a.data(), lda, b.data(), ldb, 1.0,
                     c1.data(), ldc);
  k::gemm_nt_ref<real_t>(m, n, kk, 2.0, a.data(), lda, b.data(), ldb, 1.0,
                         c2.data(), ldc);
  EXPECT_LT(max_diff(c1, c2), 1e-13);
  // Rows beyond m untouched.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = m; i < ldc; ++i) {
      EXPECT_EQ(c1[i + j * ldc], c2[i + j * ldc]);
    }
  }
}

TEST(Potrf, ReconstructsSpdMatrix) {
  const index_t n = 20;
  Rng rng(7);
  // A = B*B^T + n*I is SPD.
  const auto b = random_matrix<real_t>(n, n, rng);
  std::vector<real_t> a(n * n, 0.0);
  k::gemm_nt_ref<real_t>(n, n, n, 1.0, b.data(), n, b.data(), n, 0.0,
                         a.data(), n);
  for (index_t i = 0; i < n; ++i) a[i + i * n] += n;
  auto l = a;
  k::potrf<real_t>(n, l.data(), n);
  // Reconstruct lower(L*L^T) and compare to lower(A).
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      real_t acc = 0;
      for (index_t p = 0; p <= j; ++p) acc += l[i + p * n] * l[j + p * n];
      EXPECT_NEAR(acc, a[i + j * n], 1e-10 * n);
    }
  }
}

TEST(Potrf, ThrowsOnIndefinite) {
  std::vector<real_t> a{1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_THROW(k::potrf<real_t>(2, a.data(), 2), NumericalError);
}

TEST(Ldlt, ReconstructsSymmetricIndefinite) {
  const index_t n = 12;
  Rng rng(8);
  std::vector<real_t> a(n * n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      const real_t v = rng.uniform(-1, 1);
      a[i + j * n] = v;
      a[j + i * n] = v;
    }
    a[j + j * n] = (j % 2 ? -1.0 : 1.0) * (8.0 + j);  // dominant, indefinite
  }
  auto ld = a;
  k::ldlt<real_t>(n, ld.data(), n);
  bool saw_negative_pivot = false;
  for (index_t j = 0; j < n; ++j) {
    if (ld[j + j * n] < 0) saw_negative_pivot = true;
  }
  EXPECT_TRUE(saw_negative_pivot);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      real_t acc = 0;
      for (index_t p = 0; p <= j; ++p) {
        const real_t lip = (i == p) ? 1.0 : (i > p ? ld[i + p * n] : 0.0);
        const real_t ljp = (j == p) ? 1.0 : (j > p ? ld[j + p * n] : 0.0);
        acc += lip * ld[p + p * n] * ljp;
      }
      EXPECT_NEAR(acc, a[i + j * n], 1e-9 * n) << i << "," << j;
    }
  }
}

TEST(Ldlt, ComplexSymmetricReconstruction) {
  const index_t n = 8;
  Rng rng(9);
  std::vector<complex_t> a(n * n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      const complex_t v = rng.scalar<complex_t>();
      a[i + j * n] = v;
      a[j + i * n] = v;  // plain symmetric, NOT Hermitian
    }
    a[j + j * n] += complex_t(10.0, 3.0);
  }
  auto ld = a;
  k::ldlt<complex_t>(n, ld.data(), n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      complex_t acc = 0;
      for (index_t p = 0; p <= j; ++p) {
        const complex_t lip =
            (i == p) ? complex_t(1) : (i > p ? ld[i + p * n] : complex_t(0));
        const complex_t ljp =
            (j == p) ? complex_t(1) : (j > p ? ld[j + p * n] : complex_t(0));
        acc += lip * ld[p + p * n] * ljp;
      }
      EXPECT_LT(magnitude<complex_t>(acc - a[i + j * n]), 1e-9 * n);
    }
  }
}

TEST(Getrf, ReconstructsLu) {
  const index_t n = 15;
  Rng rng(10);
  auto a = random_matrix<real_t>(n, n, rng);
  for (index_t j = 0; j < n; ++j) a[j + j * n] += n;  // dominance
  auto lu = a;
  k::getrf_nopiv<real_t>(n, lu.data(), n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      real_t acc = 0;
      for (index_t p = 0; p <= std::min(i, j); ++p) {
        const real_t lip = (i == p) ? 1.0 : lu[i + p * n];
        acc += lip * lu[p + j * n];
      }
      EXPECT_NEAR(acc, a[i + j * n], 1e-9 * n);
    }
  }
}

TEST(TrsmRightLowerTrans, SolvesAgainstGemmCheck) {
  const index_t m = 9, n = 6;
  Rng rng(11);
  auto l = random_matrix<real_t>(n, n, rng);
  for (index_t j = 0; j < n; ++j) l[j + j * n] += n;
  const auto b = random_matrix<real_t>(m, n, rng);
  auto x = b;
  k::trsm_right_lower_trans<real_t>(m, n, l.data(), n, x.data(), m, false);
  // Check X * L^T == B: (X L^T)(i,j) = sum_{p<=j} X(i,p) * L(j,p).
  std::vector<real_t> back(m * n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      real_t acc = 0;
      for (index_t p = 0; p <= j; ++p) {
        acc += x[i + p * m] * l[j + p * n];
      }
      back[i + j * m] = acc;
    }
  }
  EXPECT_LT(max_diff(back, b), 1e-10 * n);
}

TEST(TrsmRightLowerTrans, UnitDiagIgnoresDiagonal) {
  const index_t m = 4, n = 3;
  Rng rng(12);
  auto l = random_matrix<real_t>(n, n, rng);
  const auto b = random_matrix<real_t>(m, n, rng);
  auto x1 = b, x2 = b;
  k::trsm_right_lower_trans<real_t>(m, n, l.data(), n, x1.data(), m, true);
  for (index_t j = 0; j < n; ++j) l[j + j * n] = 77.0;  // perturb diag
  k::trsm_right_lower_trans<real_t>(m, n, l.data(), n, x2.data(), m, true);
  EXPECT_EQ(max_diff(x1, x2), 0.0);
}

TEST(TrsmRightUpper, SolvesAgainstGemmCheck) {
  const index_t m = 7, n = 5;
  Rng rng(13);
  auto u = random_matrix<real_t>(n, n, rng);
  for (index_t j = 0; j < n; ++j) u[j + j * n] += n;
  const auto b = random_matrix<real_t>(m, n, rng);
  auto x = b;
  k::trsm_right_upper<real_t>(m, n, u.data(), n, x.data(), m);
  std::vector<real_t> back(m * n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      real_t acc = 0;
      for (index_t p = 0; p <= j; ++p) acc += x[i + p * m] * u[p + j * n];
      back[i + j * m] = acc;
    }
  }
  EXPECT_LT(max_diff(back, b), 1e-10 * n);
}

TEST(Trsv, ForwardBackwardRoundTrip) {
  const index_t n = 10;
  Rng rng(14);
  auto l = random_matrix<real_t>(n, n, rng);
  for (index_t j = 0; j < n; ++j) l[j + j * n] += n;
  std::vector<real_t> x(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  // y = L*x, then forward solve must return x.
  std::vector<real_t> y(n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) y[i] += l[i + j * n] * x[j];
  }
  k::trsv_lower<real_t>(n, l.data(), n, false, y.data());
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], x[i], 1e-10);
  // y2 = L^T*x, backward transposed solve must return x.
  std::vector<real_t> y2(n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) y2[j] += l[i + j * n] * x[i];
  }
  k::trsv_lower_trans<real_t>(n, l.data(), n, false, y2.data());
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(y2[i], x[i], 1e-10);
}

TEST(TrsvUpper, RoundTrip) {
  const index_t n = 9;
  Rng rng(15);
  auto u = random_matrix<real_t>(n, n, rng);
  for (index_t j = 0; j < n; ++j) u[j + j * n] += n;
  std::vector<real_t> x(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<real_t> y(n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= j; ++i) y[i] += u[i + j * n] * x[j];
  }
  k::trsv_upper<real_t>(n, u.data(), n, y.data());
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], x[i], 1e-10);
}

TEST(ScaleCols, ForwardAndInverseCancel) {
  const index_t m = 6, n = 4;
  Rng rng(16);
  auto a = random_matrix<real_t>(m, n, rng);
  const auto orig = a;
  std::vector<real_t> d{2.0, -3.0, 0.5, 7.0};
  k::scale_cols<real_t>(m, n, a.data(), m, d.data(), a.data(), m);
  k::scale_cols_inv<real_t>(m, n, a.data(), m, d.data());
  EXPECT_LT(max_diff(a, orig), 1e-14);
}

TEST(Gemv, SubMatchesManual) {
  const index_t m = 5, n = 3;
  Rng rng(17);
  const auto a = random_matrix<real_t>(m, n, rng);
  std::vector<real_t> x(n), y(m, 1.0), expect(m, 1.0);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) expect[i] -= a[i + j * m] * x[j];
  }
  k::gemv_sub<real_t>(m, n, a.data(), m, x.data(), y.data());
  EXPECT_LT(max_diff(y, expect), 1e-13);
}

}  // namespace
}  // namespace spx

// ---- blocked kernels: sizes crossing the 48-wide blocking factor ------

namespace spx {
namespace {
namespace k2 = kernels;

class BlockedSizes : public ::testing::TestWithParam<int> {};

TEST_P(BlockedSizes, GemmNnMatchesReference) {
  const index_t n = GetParam();
  Rng rng(300 + n);
  const auto a = random_matrix<real_t>(n, n, rng);
  const auto b = random_matrix<real_t>(n, n, rng);
  auto c1 = random_matrix<real_t>(n, n, rng);
  auto c2 = c1;
  k2::gemm_nn<real_t>(n, n, n, -1.0, a.data(), n, b.data(), n, 0.5,
                      c1.data(), n);
  k2::gemm_nn_ref<real_t>(n, n, n, -1.0, a.data(), n, b.data(), n, 0.5,
                          c2.data(), n);
  EXPECT_LT(max_diff(c1, c2), 1e-11 * n);
}

TEST_P(BlockedSizes, PotrfReconstructs) {
  const index_t n = GetParam();
  Rng rng(310 + n);
  const auto b = random_matrix<real_t>(n, n, rng);
  std::vector<real_t> a(static_cast<std::size_t>(n) * n, 0.0);
  k2::gemm_nt<real_t>(n, n, n, 1.0, b.data(), n, b.data(), n, 0.0,
                      a.data(), n);
  for (index_t i = 0; i < n; ++i) a[i + static_cast<std::size_t>(i) * n] += n;
  auto l = a;
  k2::potrf<real_t>(n, l.data(), n);
  // Sample a set of entries of L*L^T against A (full check is O(n^3)).
  Rng pick(17);
  for (int trial = 0; trial < 200; ++trial) {
    const index_t i = static_cast<index_t>(pick.next_below(n));
    const index_t j = static_cast<index_t>(pick.next_below(i + 1));
    real_t acc = 0;
    for (index_t p = 0; p <= j; ++p) {
      acc += l[i + static_cast<std::size_t>(p) * n] *
             l[j + static_cast<std::size_t>(p) * n];
    }
    EXPECT_NEAR(acc, a[i + static_cast<std::size_t>(j) * n], 1e-9 * n);
  }
}

TEST_P(BlockedSizes, LdltReconstructs) {
  const index_t n = GetParam();
  Rng rng(320 + n);
  std::vector<real_t> a(static_cast<std::size_t>(n) * n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      const real_t v = rng.uniform(-1, 1);
      a[i + static_cast<std::size_t>(j) * n] = v;
      a[j + static_cast<std::size_t>(i) * n] = v;
    }
    a[j + static_cast<std::size_t>(j) * n] =
        (j % 2 ? -1.0 : 1.0) * (2.0 * n + j);
  }
  auto ld = a;
  k2::ldlt<real_t>(n, ld.data(), n);
  Rng pick(19);
  for (int trial = 0; trial < 200; ++trial) {
    const index_t i = static_cast<index_t>(pick.next_below(n));
    const index_t j = static_cast<index_t>(pick.next_below(i + 1));
    real_t acc = 0;
    for (index_t p = 0; p <= j; ++p) {
      const real_t lip =
          (i == p) ? 1.0 : ld[i + static_cast<std::size_t>(p) * n];
      const real_t ljp =
          (j == p) ? 1.0 : ld[j + static_cast<std::size_t>(p) * n];
      acc += lip * ld[p + static_cast<std::size_t>(p) * n] * ljp;
    }
    EXPECT_NEAR(acc, a[i + static_cast<std::size_t>(j) * n], 1e-8 * n);
  }
}

TEST_P(BlockedSizes, GetrfReconstructs) {
  const index_t n = GetParam();
  Rng rng(330 + n);
  auto a = random_matrix<real_t>(n, n, rng);
  for (index_t j = 0; j < n; ++j) {
    a[j + static_cast<std::size_t>(j) * n] += 2.0 * n;
  }
  auto lu = a;
  k2::getrf_nopiv<real_t>(n, lu.data(), n);
  Rng pick(23);
  for (int trial = 0; trial < 200; ++trial) {
    const index_t i = static_cast<index_t>(pick.next_below(n));
    const index_t j = static_cast<index_t>(pick.next_below(n));
    real_t acc = 0;
    for (index_t p = 0; p <= std::min(i, j); ++p) {
      const real_t lip =
          (i == p) ? 1.0 : lu[i + static_cast<std::size_t>(p) * n];
      acc += lip * lu[p + static_cast<std::size_t>(j) * n];
    }
    EXPECT_NEAR(acc, a[i + static_cast<std::size_t>(j) * n], 1e-8 * n);
  }
}

TEST_P(BlockedSizes, TrsmRightLowerTransSolves) {
  const index_t n = GetParam(), m = 13;
  Rng rng(340 + n);
  auto l = random_matrix<real_t>(n, n, rng);
  for (index_t j = 0; j < n; ++j) {
    l[j + static_cast<std::size_t>(j) * n] += n;
  }
  const auto b = random_matrix<real_t>(m, n, rng);
  auto x = b;
  k2::trsm_right_lower_trans<real_t>(m, n, l.data(), n, x.data(), m, false);
  // (X L^T)(i, j) must reproduce B.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      real_t acc = 0;
      for (index_t p = 0; p <= j; ++p) {
        acc += x[i + static_cast<std::size_t>(p) * m] *
               l[j + static_cast<std::size_t>(p) * n];
      }
      EXPECT_NEAR(acc, b[i + static_cast<std::size_t>(j) * m], 1e-9 * n);
    }
  }
}

TEST_P(BlockedSizes, TrsmLeftLowerUnitSolves) {
  const index_t n = GetParam(), m = 7;
  Rng rng(350 + n);
  auto l = random_matrix<real_t>(n, n, rng);
  // Keep the unit triangle well conditioned: random unit-lower matrices
  // with O(1) entries have exponentially large inverses.
  for (auto& v : l) v *= 4.0 / n;
  const auto b = random_matrix<real_t>(n, m, rng);
  auto x = b;
  k2::trsm_left_lower_unit<real_t>(n, m, l.data(), n, x.data(), n);
  // L (unit) * X == B.
  for (index_t c = 0; c < m; ++c) {
    for (index_t i = 0; i < n; ++i) {
      real_t acc = x[i + static_cast<std::size_t>(c) * n];
      for (index_t p = 0; p < i; ++p) {
        acc += l[i + static_cast<std::size_t>(p) * n] *
               x[p + static_cast<std::size_t>(c) * n];
      }
      EXPECT_NEAR(acc, b[i + static_cast<std::size_t>(c) * n], 1e-9 * n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AcrossBlockBoundary, BlockedSizes,
                         ::testing::Values(47, 48, 49, 96, 131, 200));

TEST(BlockedKernels, ComplexLdltLargeSize) {
  const index_t n = 100;
  Rng rng(360);
  std::vector<complex_t> a(static_cast<std::size_t>(n) * n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      const complex_t v = rng.scalar<complex_t>();
      a[i + static_cast<std::size_t>(j) * n] = v;
      a[j + static_cast<std::size_t>(i) * n] = v;
    }
    a[j + static_cast<std::size_t>(j) * n] += complex_t(3.0 * n, n);
  }
  auto ld = a;
  k2::ldlt<complex_t>(n, ld.data(), n);
  Rng pick(29);
  for (int trial = 0; trial < 100; ++trial) {
    const index_t i = static_cast<index_t>(pick.next_below(n));
    const index_t j = static_cast<index_t>(pick.next_below(i + 1));
    complex_t acc = 0;
    for (index_t p = 0; p <= j; ++p) {
      const complex_t lip =
          (i == p) ? complex_t(1) : ld[i + static_cast<std::size_t>(p) * n];
      const complex_t ljp =
          (j == p) ? complex_t(1) : ld[j + static_cast<std::size_t>(p) * n];
      acc += lip * ld[p + static_cast<std::size_t>(p) * n] * ljp;
    }
    EXPECT_LT(magnitude<complex_t>(acc - a[i + static_cast<std::size_t>(j) * n]),
              1e-8 * n);
  }
}

// ---------------------------------------------------------------------------
// ISA-dispatch conformance sweep (docs/KERNELS.md): every GEMM variant the
// host can run -- forced via the ScopedIsaOverride test knob -- must agree
// with the *_ref oracle over a size grid that exercises the degenerate
// (0/1), sub-tile, tile-boundary (47/48/49) and multi-block (129) cases,
// with non-tight leading dimensions and every alpha/beta combination from
// {0, 1, -1, 0.5}.  Runs clean under -DSPX_SANITIZE=address.
// ---------------------------------------------------------------------------

template <typename T>
void run_isa_conformance_sweep(double tol_unit) {
  const index_t sizes[] = {0, 1, 3, 17, 47, 48, 49, 129};
  const T coeffs[] = {T(0), T(1), T(-1), T(0.5)};
  const std::vector<kernels::Isa>& sup =
      kernels::Dispatch::instance().supported();
  ASSERT_FALSE(sup.empty());
  Rng rng(9000 + static_cast<int>(sizeof(T)));
  for (const index_t m : sizes) {
    for (const index_t n : sizes) {
      for (const index_t kk : sizes) {
        const index_t lda = m + 5;
        const index_t ldb_nt = n + 3;
        const index_t ldb_nn = kk + 2;
        const index_t ldc = m + 7;
        const auto a = random_matrix<T>(lda, kk, rng);
        const auto b_nt = random_matrix<T>(ldb_nt, kk, rng);
        const auto b_nn = random_matrix<T>(ldb_nn, n, rng);
        const auto c0 = random_matrix<T>(ldc, n, rng);
        const double tol = tol_unit * std::max<index_t>(1, kk);
        for (const T alpha : coeffs) {
          for (const T beta : coeffs) {
            auto ref_nt = c0;
            auto ref_nn = c0;
            k::gemm_nt_ref<T>(m, n, kk, alpha, a.data(), lda, b_nt.data(),
                              ldb_nt, beta, ref_nt.data(), ldc);
            k::gemm_nn_ref<T>(m, n, kk, alpha, a.data(), lda, b_nn.data(),
                              ldb_nn, beta, ref_nn.data(), ldc);
            for (const kernels::Isa isa : sup) {
              kernels::ScopedIsaOverride force(isa);
              ASSERT_TRUE(force.ok());
              auto got = c0;
              k::gemm_nt<T>(m, n, kk, alpha, a.data(), lda, b_nt.data(),
                            ldb_nt, beta, got.data(), ldc);
              EXPECT_LT(max_diff(got, ref_nt), tol)
                  << "gemm_nt isa=" << kernels::to_string(isa) << " m=" << m
                  << " n=" << n << " k=" << kk << " alpha=" << double(alpha)
                  << " beta=" << double(beta);
              got = c0;
              k::gemm_nn<T>(m, n, kk, alpha, a.data(), lda, b_nn.data(),
                            ldb_nn, beta, got.data(), ldc);
              EXPECT_LT(max_diff(got, ref_nn), tol)
                  << "gemm_nn isa=" << kernels::to_string(isa) << " m=" << m
                  << " n=" << n << " k=" << kk << " alpha=" << double(alpha)
                  << " beta=" << double(beta);
            }
          }
        }
      }
    }
  }
}

TEST(IsaConformance, GemmAllVariantsMatchReferenceFp64) {
  run_isa_conformance_sweep<real_t>(1e-12);
}

TEST(IsaConformance, GemmAllVariantsMatchReferenceFp32) {
  run_isa_conformance_sweep<real32_t>(2e-4);
}

TEST(IsaConformance, ForceRejectsUnsupportedTier) {
  const auto& sup = kernels::Dispatch::instance().supported();
  for (const kernels::Isa isa :
       {kernels::Isa::Generic, kernels::Isa::Neon, kernels::Isa::Avx2,
        kernels::Isa::Avx512}) {
    const bool in_sup = std::find(sup.begin(), sup.end(), isa) != sup.end();
    kernels::ScopedIsaOverride force(isa);
    EXPECT_EQ(force.ok(), in_sup) << kernels::to_string(isa);
    // A rejected force must leave the active selection untouched.
    if (!force.ok()) {
      EXPECT_NE(kernels::Dispatch::instance().active(), isa);
    }
  }
  // After every override scope closed, we are back on the auto choice.
  EXPECT_EQ(kernels::Dispatch::instance().active(),
            kernels::Dispatch::instance().supported().back());
}

// ---------------------------------------------------------------------------
// Blocked vs unblocked TRSM: the factor kernels route their panel solves
// through the blocked right-TRSMs, which must agree with the unblocked
// base case for every n, including n below, at, just above and at several
// multiples of the blocking factor (48): n in {1, 47, 48, 49, 149}.
// ---------------------------------------------------------------------------

class TrsmBlockedVsUnblocked : public ::testing::TestWithParam<int> {};

TEST_P(TrsmBlockedVsUnblocked, RightLowerTransMatches) {
  const index_t n = GetParam();
  const index_t m = 37;
  Rng rng(500 + n);
  auto l = random_matrix<real_t>(n, n, rng);
  for (index_t j = 0; j < n; ++j) l[j + static_cast<std::size_t>(j) * n] += n;
  const auto x0 = random_matrix<real_t>(m, n, rng);
  for (const bool unit : {false, true}) {
    auto xb = x0;
    auto xu = x0;
    k::trsm_right_lower_trans<real_t>(m, n, l.data(), n, xb.data(), m, unit);
    k::trsm_right_lower_trans_unblocked<real_t>(m, n, l.data(), n, xu.data(),
                                                m, unit);
    // Relative comparison: the unit-diagonal solve amplifies |X| by the
    // (exponentially large) norm of the unit-triangular inverse, so the
    // agreement bound must scale with the solution magnitude.
    double xmax = 1.0;
    for (const real_t v : xu) xmax = std::max(xmax, std::abs(v));
    EXPECT_LT(max_diff(xb, xu), 1e-13 * n * xmax) << "unit=" << unit;
  }
}

TEST_P(TrsmBlockedVsUnblocked, RightUpperMatches) {
  const index_t n = GetParam();
  const index_t m = 37;
  Rng rng(600 + n);
  auto u = random_matrix<real_t>(n, n, rng);
  for (index_t j = 0; j < n; ++j) u[j + static_cast<std::size_t>(j) * n] += n;
  const auto x0 = random_matrix<real_t>(m, n, rng);
  auto xb = x0;
  auto xu = x0;
  k::trsm_right_upper<real_t>(m, n, u.data(), n, xb.data(), m);
  k::trsm_right_upper_unblocked<real_t>(m, n, u.data(), n, xu.data(), m);
  EXPECT_LT(max_diff(xb, xu), 1e-11 * n);
}

INSTANTIATE_TEST_SUITE_P(BlockBoundary, TrsmBlockedVsUnblocked,
                         ::testing::Values(1, 47, 48, 49, 149));

// Regression for the blocked-LDL^T W scratch: with a padded leading
// dimension the old whole-panel copy dragged the inter-column gaps into
// the scratch buffer.  Seed the gaps with NaN so any read of them poisons
// the factorization, and check the factors still reconstruct A.
TEST(BlockedKernels, LdltPaddedLeadingDimension) {
  const index_t n = 120;  // three kNB=48 blocks: 48 + 48 + 24
  const index_t lda = n + 7;
  Rng rng(777);
  std::vector<real_t> a(static_cast<std::size_t>(lda) * n,
                        std::numeric_limits<real_t>::quiet_NaN());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      const real_t v = rng.scalar<real_t>();
      a[i + static_cast<std::size_t>(j) * lda] = v;
      a[j + static_cast<std::size_t>(i) * lda] = v;
    }
    a[j + static_cast<std::size_t>(j) * lda] += 3.0 * n;
  }
  auto ld = a;
  k::ldlt<real_t>(n, ld.data(), lda);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      real_t acc = 0;
      for (index_t p = 0; p <= j; ++p) {
        const real_t lip =
            (i == p) ? 1.0 : ld[i + static_cast<std::size_t>(p) * lda];
        const real_t ljp =
            (j == p) ? 1.0 : ld[j + static_cast<std::size_t>(p) * lda];
        acc += lip * ld[p + static_cast<std::size_t>(p) * lda] * ljp;
      }
      EXPECT_NEAR(acc, a[i + static_cast<std::size_t>(j) * lda], 1e-9 * n);
    }
  }
  // The padding rows were never part of the matrix and must stay NaN.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = n; i < lda; ++i) {
      EXPECT_TRUE(std::isnan(ld[i + static_cast<std::size_t>(j) * lda]));
    }
  }
}

#ifndef NDEBUG
// The uniform dimension guards only exist in debug builds
// (SPX_DEBUG_ASSERT compiles away under NDEBUG).
TEST(KernelAssertsDeathTest, GemmRejectsBadLeadingDimensions) {
  std::vector<real_t> a(64), b(64), c(64);
  EXPECT_DEATH(k::gemm_nt<real_t>(4, 4, 4, 1.0, a.data(), 3, b.data(), 4,
                                  0.0, c.data(), 4),
               "lda");
  EXPECT_DEATH(k::gemm_nt<real_t>(4, 4, 4, 1.0, a.data(), 4, b.data(), 3,
                                  0.0, c.data(), 4),
               "ldb");
  EXPECT_DEATH(k::gemm_nn<real_t>(4, 4, 4, 1.0, a.data(), 4, b.data(), 3,
                                  0.0, c.data(), 4),
               "ldb");
  EXPECT_DEATH(k::gemm_nt<real_t>(-1, 4, 4, 1.0, a.data(), 4, b.data(), 4,
                                  0.0, c.data(), 4),
               "m");
}

TEST(KernelAssertsDeathTest, TrsmRejectsBadLeadingDimensions) {
  std::vector<real_t> l(64), x(64);
  EXPECT_DEATH(
      k::trsm_right_lower_trans<real_t>(4, 4, l.data(), 3, x.data(), 4,
                                        false),
      "ldl");
  EXPECT_DEATH(k::trsm_right_upper<real_t>(4, 4, l.data(), 4, x.data(), 3),
               "ldx");
}
#endif  // NDEBUG

}  // namespace
}  // namespace spx
