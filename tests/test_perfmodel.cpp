// Performance-model tests: JSON persistence round-trip, corrupt/missing
// file degradation, prediction monotonicity, history refinement, and the
// acceptance-critical property that dmda placement actually follows the
// calibrated CPU/GPU rates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "common/error.hpp"
#include "core/analysis.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"
#include "perfmodel/calibrate.hpp"
#include "perfmodel/calibrated_costs.hpp"
#include "runtime/flop_costs.hpp"
#include "runtime/starpu_scheduler.hpp"

namespace spx {
namespace {

using perfmodel::CalPoint;
using perfmodel::CalibratedCosts;
using perfmodel::KernelClass;
using perfmodel::KernelShape;
using perfmodel::KernelTable;
using perfmodel::PerfModel;
using perfmodel::TaskClass;

/// Constant-rate table over [w_lo, w_hi]: predicted time = work / rate.
KernelTable flat_table(KernelClass c, const KernelShape& lo,
                       const KernelShape& hi, double rate) {
  KernelTable t;
  t.add({lo, perfmodel::kernel_work(c, lo), rate, 1});
  t.add({hi, perfmodel::kernel_work(c, hi), rate, 1});
  t.fit();
  return t;
}

/// A model covering every slot CalibratedCosts consults, with one GEMM
/// rate per resource kind (panels stay CPU-only).
PerfModel two_speed_model(double cpu_rate, double gpu_rate) {
  PerfModel m;
  m.set_host("test");
  const KernelShape flo{2, 2, 2}, fhi{256, 256, 256};
  for (const KernelClass c :
       {KernelClass::Potrf, KernelClass::Ldlt, KernelClass::Getrf}) {
    m.set_table(c, ResourceKind::Cpu, flat_table(c, flo, fhi, cpu_rate));
  }
  m.set_table(KernelClass::TrsmPanel, ResourceKind::Cpu,
              flat_table(KernelClass::TrsmPanel, {2, 2, 2}, {4096, 256, 256},
                         cpu_rate));
  m.set_table(KernelClass::GemmNt, ResourceKind::Cpu,
              flat_table(KernelClass::GemmNt, {2, 2, 2}, {4096, 512, 512},
                         cpu_rate));
  m.set_table(KernelClass::Scatter, ResourceKind::Cpu,
              flat_table(KernelClass::Scatter, {2, 2, 0}, {8192, 512, 0},
                         cpu_rate));
  m.set_table(KernelClass::GemmNtGapped, ResourceKind::GpuStream,
              flat_table(KernelClass::GemmNtGapped, {2, 2, 2},
                         {4096, 512, 512}, gpu_rate));
  return m;
}

// ---------- persistence ------------------------------------------------

TEST(PerfModel, JsonRoundTripPreservesPredictions) {
  PerfModel m = two_speed_model(1e9, 5e9);
  // Three observations in the same log2 flop bucket (min_samples = 3).
  m.observe(TaskClass::Update, ResourceKind::Cpu, 1.5e6, 1.5e-3);
  m.observe(TaskClass::Update, ResourceKind::Cpu, 1.7e6, 1.7e-3);
  m.observe(TaskClass::Update, ResourceKind::Cpu, 1.6e6, 1.4e-3);
  const PerfModel back = PerfModel::from_json(m.to_json());
  EXPECT_EQ(back.host(), "test");
  const KernelShape probes[] = {{16, 16, 16}, {128, 32, 64}, {700, 12, 96}};
  for (const KernelShape& s : probes) {
    for (const KernelClass c : {KernelClass::Potrf, KernelClass::TrsmPanel,
                                KernelClass::GemmNt}) {
      double a = 0.0, b = 0.0;
      ASSERT_TRUE(m.kernel_seconds(c, ResourceKind::Cpu, s, &a));
      ASSERT_TRUE(back.kernel_seconds(c, ResourceKind::Cpu, s, &b));
      EXPECT_DOUBLE_EQ(a, b);
    }
  }
  // History buckets survive the round-trip with their running means.
  double a = 0.0, b = 0.0;
  ASSERT_TRUE(m.history_seconds(TaskClass::Update, ResourceKind::Cpu, 1.6e6,
                                &a));
  ASSERT_TRUE(back.history_seconds(TaskClass::Update, ResourceKind::Cpu,
                                   1.6e6, &b));
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(PerfModel, SaveLoadFileRoundTrip) {
  const std::string path = testing::TempDir() + "spx_model_rt.json";
  PerfModel m = two_speed_model(2e9, 8e9);
  m.save(path);
  std::string error;
  const auto back = PerfModel::load(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->host(), "test");
  std::remove(path.c_str());
}

TEST(PerfModel, LoadMissingFileReturnsError) {
  std::string error;
  const auto m = PerfModel::load("/nonexistent/dir/model.json", &error);
  EXPECT_FALSE(m.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(PerfModel, LoadCorruptFileReturnsError) {
  const std::string path = testing::TempDir() + "spx_model_bad.json";
  std::ofstream(path) << "{ not json at all ]";
  std::string error;
  const auto m = PerfModel::load(path, &error);
  EXPECT_FALSE(m.has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(PerfModel, WrongSchemaVersionRejected) {
  EXPECT_THROW(
      PerfModel::from_json(
          R"({"spx_perf_model_version": 999, "host": "x", "kernels": []})"),
      InvalidArgument);
}

TEST(Solver, DegradesToFlopCostsOnBadModelFile) {
  SolverOptions opts;
  opts.runtime = RuntimeKind::Starpu;
  opts.num_threads = 2;
  opts.perf_model_file = "/nonexistent/dir/model.json";
  Solver<double> solver(opts);
  const auto a = gen::grid2d_laplacian(12, 12);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);  // must not throw
  EXPECT_EQ(solver.perf_model(), nullptr);
}

// ---------- prediction shape -------------------------------------------

TEST(KernelTable, FitClampsNonMonotoneTimes) {
  // Middle point measured absurdly fast (rate spike): fit() must still
  // produce times non-decreasing in work.
  KernelTable t;
  t.add({{32, 32, 32}, 1e5, 1e9, 1});
  t.add({{64, 64, 64}, 8e5, 64e9, 1});  // spike
  t.add({{128, 128, 128}, 6.4e6, 2e9, 1});
  t.fit();
  double prev = 0.0;
  for (double w = 5e4; w < 1e7; w *= 1.07) {
    const double s = t.seconds(w);
    // Pooled (flat-time) segments may wobble by one ulp under the
    // log-log interpolation; anything beyond rounding is a real bug.
    EXPECT_GE(s, prev * (1.0 - 1e-12)) << "time decreased at work " << w;
    prev = std::max(prev, s);
  }
}

TEST(PerfModel, PredictionsMonotoneInEachDimension) {
  // Within the fitted segment, growing any one of m, n, k must not make
  // the predicted time smaller (kernel_work is strictly increasing per
  // dimension and the fitted table is non-decreasing in work).
  perfmodel::CalibrationOptions copts;
  copts.quick = true;
  const PerfModel m = perfmodel::calibrate_kernels(copts);
  const KernelClass c = KernelClass::GemmNt;
  double prev = 0.0;
  for (double mm = 16; mm <= 512; mm *= 2) {
    double s = 0.0;
    ASSERT_TRUE(m.kernel_seconds(c, ResourceKind::Cpu, {mm, 32, 32}, &s));
    EXPECT_GE(s, prev * (1.0 - 1e-12));
    prev = std::max(prev, s);
  }
  prev = 0.0;
  for (double n = 4; n <= 256; n *= 2) {
    double s = 0.0;
    ASSERT_TRUE(m.kernel_seconds(c, ResourceKind::Cpu, {256, n, 32}, &s));
    EXPECT_GE(s, prev * (1.0 - 1e-12));
    prev = std::max(prev, s);
  }
  prev = 0.0;
  for (double k = 8; k <= 256; k *= 2) {
    double s = 0.0;
    ASSERT_TRUE(m.kernel_seconds(c, ResourceKind::Cpu, {256, 32, k}, &s));
    EXPECT_GE(s, prev * (1.0 - 1e-12));
    prev = std::max(prev, s);
  }
}

// ---------- history layer ----------------------------------------------

TEST(PerfModel, HistoryNeedsMinSamplesThenPredicts) {
  PerfModel m;
  double s = 0.0;
  m.observe(TaskClass::PanelLlt, ResourceKind::Cpu, 1e6, 1e-3);
  EXPECT_FALSE(m.history_seconds(TaskClass::PanelLlt, ResourceKind::Cpu,
                                 1e6, &s));
  m.observe(TaskClass::PanelLlt, ResourceKind::Cpu, 1e6, 1e-3);
  m.observe(TaskClass::PanelLlt, ResourceKind::Cpu, 1e6, 1e-3);
  ASSERT_TRUE(m.history_seconds(TaskClass::PanelLlt, ResourceKind::Cpu, 1e6,
                                &s));
  EXPECT_NEAR(s, 1e-3, 1e-9);
  // A different flop bucket is a different entry.
  EXPECT_FALSE(m.history_seconds(TaskClass::PanelLlt, ResourceKind::Cpu,
                                 64e6, &s));
}

// ---------- CalibratedCosts --------------------------------------------

TEST(CalibratedCosts, PanelGpuQueryThrows) {
  const Analysis an = analyze(gen::grid2d_laplacian(9, 9));
  TaskTable table(an.structure, Factorization::LLT);
  const PerfModel m = two_speed_model(1e9, 4e9);
  CalibratedCosts costs(table, m);
  EXPECT_GT(costs.panel_seconds(0, ResourceKind::Cpu), 0.0);
  EXPECT_THROW(costs.panel_seconds(0, ResourceKind::GpuStream),
               InvalidArgument);
}

TEST(FlopCosts, PanelGpuQueryThrows) {
  const Analysis an = analyze(gen::grid2d_laplacian(9, 9));
  TaskTable table(an.structure, Factorization::LLT);
  FlopCosts costs(table);
  EXPECT_GT(costs.panel_seconds(0, ResourceKind::Cpu), 0.0);
  EXPECT_THROW(costs.panel_seconds(0, ResourceKind::GpuStream),
               InvalidArgument);
}

TEST(CalibratedCosts, EmptyModelFallsBackToFlopCosts) {
  const Analysis an = analyze(gen::grid2d_laplacian(11, 11));
  TaskTable table(an.structure, Factorization::LLT);
  const PerfModel empty;  // no tables, no history
  CalibratedCosts costs(table, empty);
  FlopCosts flop(table);
  EXPECT_EQ(costs.coverage(), 0.0);
  for (index_t p = 0; p < an.structure.num_panels(); ++p) {
    EXPECT_DOUBLE_EQ(costs.panel_seconds(p, ResourceKind::Cpu),
                     flop.panel_seconds(p, ResourceKind::Cpu));
  }
}

TEST(CalibratedCosts, FullModelCoversEverything) {
  const Analysis an = analyze(gen::grid2d_laplacian(11, 11));
  TaskTable table(an.structure, Factorization::LLT);
  const PerfModel m = two_speed_model(1e9, 4e9);
  CalibratedCosts costs(table, m);
  EXPECT_DOUBLE_EQ(costs.coverage(), 1.0);
}

// ---------- dmda consumes the calibrated rates -------------------------

/// Drains the scheduler sequentially, recording which resource kind ran
/// each update task; returns the number of updates placed on the GPU.
int gpu_update_count(const TaskTable& table, const Machine& machine,
                     const TaskCosts& costs) {
  StarpuOptions sopts;
  sopts.policy = StarpuOptions::Policy::Dmda;
  sopts.gpu_min_flops = 0.0;  // every update is GPU-eligible
  StarpuScheduler sched(table, machine, costs, sopts);
  int gpu_updates = 0;
  bool progressed = true;
  while (!sched.finished() && progressed) {
    progressed = false;
    for (int r = 0; r < machine.num_resources(); ++r) {
      Task t;
      while (sched.try_pop(r, &t)) {
        progressed = true;
        if (t.kind == TaskKind::Update &&
            machine.resource(r).kind == ResourceKind::GpuStream) {
          ++gpu_updates;
        }
        sched.on_complete(t, r);
      }
    }
  }
  EXPECT_TRUE(sched.finished());
  return gpu_updates;
}

TEST(StarpuDmda, PlacementFollowsCalibratedRatio) {
  const Analysis an = analyze(gen::grid3d_laplacian(6, 6, 6));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(2, 1);  // 2 CPU workers + 1 GPU stream
  // Same tasks, same machine; only the calibrated CPU:GPU rate ratio
  // flips.  dmda must move update work toward the faster resource.
  const PerfModel gpu_fast = two_speed_model(1e9, 16e9);
  const PerfModel gpu_slow = two_speed_model(16e9, 1e9);
  CalibratedCosts fast(table, gpu_fast), slow(table, gpu_slow);
  const int with_fast_gpu = gpu_update_count(table, machine, fast);
  const int with_slow_gpu = gpu_update_count(table, machine, slow);
  EXPECT_GT(with_fast_gpu, with_slow_gpu);
  EXPECT_GT(with_fast_gpu, 0);
}

}  // namespace
}  // namespace spx
