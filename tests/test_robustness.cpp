// Numerical robustness and failure handling: static-pivot perturbation
// accounting, auto-refinement of degraded solves, failed-factorize
// rollback, the fault-injection harness, and the service's retry /
// error-classification layer (ISSUE: robustness archetype).
#include <gtest/gtest.h>

#include <cmath>

#include "common/json.hpp"
#include "kernels/dense.hpp"
#include "mat/generators.hpp"
#include "runtime/fault_injection.hpp"
#include "service/solve_service.hpp"
#include "test_support.hpp"

namespace spx {
namespace {

namespace k = kernels;

using service::ErrorCode;
using service::FactorizeResult;
using service::RequestOptions;
using service::RequestStatus;
using service::ServiceOptions;
using service::SolveResult;
using service::SolveService;

std::shared_ptr<const CscMatrix<real_t>> shared(CscMatrix<real_t> a) {
  return std::make_shared<const CscMatrix<real_t>>(std::move(a));
}

// ---------- kernel-level perturbation ----------------------------------

TEST(PivotControl, PotrfPerturbsTinyPivotAndRecordsIt) {
  // 2x2 SPD-ish with an exactly singular trailing pivot: [[1,1],[1,1]].
  std::vector<real_t> a = {1.0, 1.0, 1.0, 1.0};
  FactorQuality q;
  k::PivotControl pc{1e-10, 5, &q};
  k::potrf<real_t>(2, a.data(), 2, pc);
  EXPECT_EQ(q.perturbed_pivots, 1);
  ASSERT_EQ(q.perturbed_columns.size(), 1u);
  EXPECT_EQ(q.perturbed_columns[0], 6);  // col_offset + local column 1
  EXPECT_TRUE(q.degraded());
  EXPECT_DOUBLE_EQ(a[3], std::sqrt(1e-10));
}

TEST(PivotControl, PotrfThrowsOnIndefiniteEvenWhenPerturbing) {
  // Genuinely indefinite: trailing pivot is -1 after elimination.
  std::vector<real_t> a = {1.0, 0.0, 0.0, -1.0};
  FactorQuality q;
  k::PivotControl pc{1e-10, 0, &q};
  EXPECT_THROW(k::potrf<real_t>(2, a.data(), 2, pc), NumericalError);
  EXPECT_TRUE(q.indefinite);
}

TEST(PivotControl, LdltPerturbsPreservingSign) {
  std::vector<real_t> a = {-1e-30, 0.0, 0.0, 2.0};
  FactorQuality q;
  k::PivotControl pc{1e-8, 0, &q};
  k::ldlt<real_t>(2, a.data(), 2, pc);
  EXPECT_EQ(q.perturbed_pivots, 1);
  EXPECT_DOUBLE_EQ(a[0], -1e-8);  // sign preserved
}

TEST(PivotControl, GetrfZeroPivotBecomesPlusThreshold) {
  std::vector<real_t> a = {0.0, 0.0, 0.0, 3.0};
  FactorQuality q;
  k::PivotControl pc{1e-8, 0, &q};
  k::getrf_nopiv<real_t>(2, a.data(), 2, pc);
  EXPECT_EQ(q.perturbed_pivots, 1);
  EXPECT_DOUBLE_EQ(a[0], 1e-8);
}

TEST(PivotControl, LegacyThrowNamesGlobalColumn) {
  std::vector<real_t> a = {1.0, 0.0, 0.0, 0.0};
  k::PivotControl pc{0.0, 40, nullptr};
  try {
    k::getrf_nopiv<real_t>(2, a.data(), 2, pc);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("global column 41"),
              std::string::npos)
        << e.what();
  }
}

// ---------- generators --------------------------------------------------

TEST(Generators, RankDeficientHasConsistentNullSpace) {
  const auto a = gen::rank_deficient(12, 3);
  // Each segment annihilates its constant vector: A * 1 = 0.
  std::vector<real_t> ones(12, 1.0), y(12);
  a.multiply(ones, y);
  for (const real_t v : y) EXPECT_NEAR(v, 0.0, 1e-14);
}

TEST(Generators, TinyPivotPlantsExactlyEps) {
  const auto a = gen::tiny_pivot(8, 1e-9);
  bool found = false;
  for (index_t j = 0; j < 8; ++j) {
    for (size_type p = a.colptr()[j]; p < a.colptr()[j + 1]; ++p) {
      if (a.rowind()[p] == j && a.values()[p] == 1e-9) found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------- end-to-end degraded solves ----------------------------------

struct DegradedCase {
  const char* name;
  CscMatrix<real_t> matrix;
  Factorization kind;
  std::vector<real_t> rhs;  ///< consistent right-hand side
};

std::vector<DegradedCase> degraded_cases() {
  std::vector<DegradedCase> cases;
  {
    // Rank-deficient SPSD: rhs = A * x0 is consistent by construction.
    auto a = gen::rank_deficient(60, 4);
    std::vector<real_t> x0(60), b(60);
    Rng rng(7);
    for (auto& v : x0) v = rng.scalar<real_t>();
    a.multiply(x0, b);
    cases.push_back({"rank-deficient-llt", std::move(a),
                     Factorization::LLT, std::move(b)});
  }
  {
    auto a = gen::tiny_pivot(64, 1e-25);
    std::vector<real_t> x0(64), b(64);
    Rng rng(8);
    for (auto& v : x0) v = rng.scalar<real_t>();
    a.multiply(x0, b);
    cases.push_back({"tiny-pivot-ldlt", std::move(a), Factorization::LDLT,
                     std::move(b)});
  }
  {
    auto a = gen::tiny_pivot(64, 0.0);  // exact zero pivot
    std::vector<real_t> x0(64), b(64);
    Rng rng(9);
    for (auto& v : x0) v = rng.scalar<real_t>();
    a.multiply(x0, b);
    cases.push_back({"zero-pivot-lu", std::move(a), Factorization::LU,
                     std::move(b)});
  }
  return cases;
}

class NumericalRobustness : public ::testing::TestWithParam<RuntimeKind> {};

TEST_P(NumericalRobustness, DegradedSolveRefinesToTolerance) {
  for (DegradedCase& c : degraded_cases()) {
    SolverOptions opts;
    opts.runtime = GetParam();
    opts.num_threads = 4;
    opts.refine_tolerance = 1e-12;
    Solver<real_t> solver(opts);
    solver.analyze(c.matrix);
    ASSERT_NO_THROW(solver.factorize(c.matrix, c.kind)) << c.name;
    const FactorQuality& q = solver.last_factorization_stats().quality;
    EXPECT_TRUE(q.degraded()) << c.name;
    EXPECT_GE(q.perturbed_pivots, 1) << c.name;
    EXPECT_FALSE(q.perturbed_columns.empty()) << c.name;

    std::vector<real_t> x = c.rhs;
    const SolveReport rep = solver.solve(x);
    EXPECT_TRUE(rep.degraded) << c.name;
    EXPECT_LE(rep.backward_error, 1e-10) << c.name;
    EXPECT_LE(test::relative_residual<real_t>(c.matrix, x, c.rhs), 1e-10)
        << c.name;
  }
}

TEST_P(NumericalRobustness, CleanMatrixSolvesUndegraded) {
  const auto a = gen::grid2d_laplacian(12, 12);
  SolverOptions opts;
  opts.runtime = GetParam();
  opts.num_threads = 4;
  Solver<real_t> solver(opts);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  EXPECT_FALSE(solver.last_factorization_stats().quality.degraded());
  std::vector<real_t> b(static_cast<std::size_t>(a.ncols()), 1.0);
  const SolveReport rep = solver.solve(b);
  EXPECT_FALSE(rep.degraded);
  EXPECT_EQ(rep.refine_iterations, 0);
}

INSTANTIATE_TEST_SUITE_P(Runtimes, NumericalRobustness,
                         ::testing::Values(RuntimeKind::Sequential,
                                           RuntimeKind::Native,
                                           RuntimeKind::Starpu,
                                           RuntimeKind::Parsec),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---------- failed factorize rolls back ---------------------------------

TEST(SolverRollback, FailedFactorizeLeavesSolverAnalyzedNotFactorized) {
  // Indefinite matrix under LL^T: factorize throws even with perturbation
  // enabled (indefiniteness is not absorbable).
  Rng rng(3);
  const auto bad = gen::random_sym_indefinite(40, 0.2, rng);
  const auto good = gen::grid2d_laplacian(8, 5);  // same n = 40
  ASSERT_EQ(bad.ncols(), good.ncols());

  SolverOptions opts;
  Solver<real_t> solver(opts);
  solver.analyze(bad);
  EXPECT_THROW(solver.factorize(bad, Factorization::LLT), NumericalError);
  EXPECT_TRUE(solver.analyzed());
  EXPECT_FALSE(solver.factorized());
  // The post-mortem quality record survives for reporting.
  EXPECT_TRUE(solver.last_factorization_stats().quality.indefinite);
  std::vector<real_t> b(40, 1.0);
  EXPECT_THROW(solver.solve(b), InvalidArgument);

  // Same pattern? No -- so re-analyze and factorize something solvable:
  // the solver is fully reusable after the failure.
  solver.analyze(good);
  ASSERT_NO_THROW(solver.factorize(good, Factorization::LLT));
  std::vector<real_t> x(40, 1.0);
  ASSERT_NO_THROW(solver.solve(x));

  // And the failed matrix still factors via LDL^T (absorbable there).
  solver.analyze(bad);
  ASSERT_NO_THROW(solver.factorize(bad, Factorization::LDLT));
}

// ---------- fault injector ----------------------------------------------

TEST(FaultInjection, SeededPlanIsDeterministic) {
  const FaultPlan p1 = FaultPlan::seeded(FaultAction::Throw, 42, 1000);
  const FaultPlan p2 = FaultPlan::seeded(FaultAction::Throw, 42, 1000);
  EXPECT_EQ(p1.victim, p2.victim);
  EXPECT_LT(p1.victim, 1000u);
  const FaultPlan p3 = FaultPlan::seeded(FaultAction::Throw, 43, 1000);
  EXPECT_NE(p1.victim, p3.victim);  // mix64 spreads adjacent seeds
}

TEST(FaultInjection, ThrowFaultSurfacesAndSolverStaysReusable) {
  const auto a = gen::grid3d_laplacian(6, 6, 6);
  FaultInjector fault(FaultPlan::nth_task(FaultAction::Throw, 3));
  SolverOptions opts;
  opts.runtime = RuntimeKind::Native;
  opts.num_threads = 4;
  opts.instr.fault = &fault;
  Solver<real_t> solver(opts);
  solver.analyze(a);
  EXPECT_THROW(solver.factorize(a, Factorization::LLT), InjectedFault);
  EXPECT_EQ(fault.fired_count(), 1);
  EXPECT_TRUE(solver.analyzed());
  EXPECT_FALSE(solver.factorized());
  // The fault already fired (ordinals are monotonic): retry succeeds
  // without re-analyzing.
  ASSERT_NO_THROW(solver.factorize(a, Factorization::LLT));
  std::vector<real_t> b(static_cast<std::size_t>(a.ncols()), 1.0);
  ASSERT_NO_THROW(solver.solve(b));
}

TEST(FaultInjection, StallFaultDelaysButCompletes) {
  const auto a = gen::grid2d_laplacian(16, 16);
  FaultInjector fault(FaultPlan::nth_task(FaultAction::Stall, 1, 0.02));
  SolverOptions opts;
  opts.runtime = RuntimeKind::Parsec;
  opts.num_threads = 3;
  opts.instr.fault = &fault;
  Solver<real_t> solver(opts);
  solver.analyze(a);
  ASSERT_NO_THROW(solver.factorize(a, Factorization::LLT));
  EXPECT_EQ(fault.fired_count(), 1);
  std::vector<real_t> b(static_cast<std::size_t>(a.ncols()), 1.0);
  ASSERT_NO_THROW(solver.solve(b));
}

TEST(FaultInjection, AllocFailSurfacesAsBadAlloc) {
  const auto a = gen::grid2d_laplacian(10, 10);
  FaultInjector fault(FaultPlan::nth_task(FaultAction::AllocFail, 0));
  SolverOptions opts;
  opts.instr.fault = &fault;
  Solver<real_t> solver(opts);
  solver.analyze(a);
  EXPECT_THROW(solver.factorize(a, Factorization::LLT), std::bad_alloc);
  EXPECT_EQ(fault.fired_count(), 1);
  EXPECT_FALSE(solver.factorized());
  ASSERT_NO_THROW(solver.factorize(a, Factorization::LLT));  // one-shot
}

TEST(FaultInjection, CorruptPivotEitherPerturbsOrCompletes) {
  // Zeroing a panel's leading pivot mid-run must never hang or crash;
  // the run either completes (possibly degraded) or reports breakdown.
  const auto a = gen::grid2d_laplacian(20, 20);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    FaultInjector fault(
        FaultPlan::seeded(FaultAction::CorruptPivot, seed, 50));
    SolverOptions opts;
    opts.runtime = RuntimeKind::Starpu;
    opts.num_threads = 4;
    opts.instr.fault = &fault;
    Solver<real_t> solver(opts);
    solver.analyze(a);
    try {
      solver.factorize(a, Factorization::LLT);
      EXPECT_TRUE(solver.factorized());
    } catch (const NumericalError&) {
      EXPECT_FALSE(solver.factorized());
    }
  }
}

// ---------- JSON schema -------------------------------------------------

TEST(QualityJson, RunStatsCarryQualityKeys) {
  const auto a = gen::tiny_pivot(32, 1e-25);
  Solver<real_t> solver;
  solver.analyze(a);
  solver.factorize(a, Factorization::LDLT);
  const json::Value v =
      json::Value::parse(to_json(solver.last_factorization_stats()).dump());
  EXPECT_TRUE(v.at("degraded").as_bool());
  const json::Value& q = v.at("quality");
  for (const char* key :
       {"degraded", "perturbed_pivots", "perturbed_columns", "pivot_growth",
        "anorm", "threshold", "indefinite"}) {
    EXPECT_NE(q.find(key), nullptr) << key;
  }
  EXPECT_GE(q.at("perturbed_pivots").as_number(), 1.0);
}

// ---------- service retry / classification ------------------------------

TEST(ServiceResilience, InjectedFaultRetriesToSuccess) {
  FaultInjector fault(FaultPlan::nth_task(FaultAction::Throw, 2));
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.retry_backoff_s = 0.001;
  // Task faults fire in the threaded driver; the sequential path only
  // sees the allocation hook.
  sopts.solver.runtime = RuntimeKind::Native;
  sopts.solver.num_threads = 2;
  sopts.solver.instr.fault = &fault;
  SolveService svc(sopts);
  const auto a = gen::grid2d_laplacian(12, 12);
  const FactorizeResult fr =
      svc.factorize("t", shared(a), Factorization::LLT);
  ASSERT_TRUE(fr.ok()) << fr.error;
  EXPECT_EQ(fr.code, ErrorCode::None);
  EXPECT_GE(fr.stats.attempts, 2);  // first attempt died, retry succeeded
  EXPECT_EQ(fault.fired_count(), 1);
  const service::ServiceStats st = svc.stats();
  EXPECT_GE(st.retries, 1u);
  EXPECT_EQ(st.error_count(ErrorCode::None), 1u);
  EXPECT_STREQ(st.health(), "degraded");  // retries happened
}

TEST(ServiceResilience, DegradedFactorizeReportsCodeAndRefines) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  SolveService svc(sopts);
  auto a = gen::tiny_pivot(48, 1e-25);
  std::vector<real_t> x0(48, 1.0), b(48);
  a.multiply(x0, b);
  const FactorizeResult fr =
      svc.factorize("t", shared(a), Factorization::LDLT);
  ASSERT_TRUE(fr.ok()) << fr.error;
  EXPECT_TRUE(fr.degraded());
  EXPECT_EQ(fr.code, ErrorCode::NumericalDegraded);
  EXPECT_TRUE(fr.stats.degraded);
  const SolveResult sr = svc.solve("t", fr.factor, b);
  ASSERT_TRUE(sr.ok()) << sr.error;
  EXPECT_EQ(sr.code, ErrorCode::NumericalDegraded);
  EXPECT_LE(sr.stats.backward_error, 1e-10);
  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.error_count(ErrorCode::NumericalDegraded), 2u);
  EXPECT_STREQ(st.health(), "degraded");
}

TEST(ServiceResilience, UnretryableFailureClassifiesNumericalFailed) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.max_attempts = 2;
  sopts.retry_backoff_s = 0.001;
  SolveService svc(sopts);
  Rng rng(5);
  const auto bad = gen::random_sym_indefinite(30, 0.2, rng);
  const FactorizeResult fr =
      svc.factorize("t", shared(bad), Factorization::LLT);
  EXPECT_FALSE(fr.ok());
  EXPECT_EQ(fr.status, RequestStatus::Failed);
  EXPECT_EQ(fr.code, ErrorCode::NumericalFailed);
  EXPECT_EQ(fr.stats.attempts, 2);  // retried once, still indefinite
  EXPECT_EQ(svc.stats().error_count(ErrorCode::NumericalFailed), 1u);
}

TEST(ServiceResilience, TenantRetryBudgetFailsFastWhenExhausted) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.max_attempts = 3;
  sopts.retry_backoff_s = 0.0;
  sopts.tenant_retry_budget = 1;
  SolveService svc(sopts);
  Rng rng(5);
  const auto bad = gen::random_sym_indefinite(30, 0.2, rng);
  const FactorizeResult f1 =
      svc.factorize("hog", shared(bad), Factorization::LLT);
  EXPECT_FALSE(f1.ok());
  EXPECT_EQ(f1.stats.attempts, 2);  // budget allowed exactly one retry
  const FactorizeResult f2 =
      svc.factorize("hog", shared(bad), Factorization::LLT);
  EXPECT_FALSE(f2.ok());
  EXPECT_EQ(f2.stats.attempts, 1);  // budget exhausted: no retry at all
  EXPECT_EQ(svc.stats().retries, 1u);
}

TEST(ServiceResilience, UnrunTerminalsMapToStructuredCodes) {
  ServiceOptions sopts;
  sopts.num_workers = 0;  // nothing executes
  sopts.queue_capacity = 1;
  auto svc = std::make_unique<SolveService>(sopts);
  const auto a = shared(gen::grid2d_laplacian(6, 6));
  auto t1 = svc->submit_factorize(RequestOptions{.tenant = "t"}, a,
                                  Factorization::LLT);
  auto t2 = svc->submit_factorize(RequestOptions{.tenant = "t"}, a,
                                  Factorization::LLT);  // rejected
  auto t3 = svc->submit_factorize(RequestOptions{.tenant = "u"}, a,
                                  Factorization::LLT);
  EXPECT_TRUE(t3.cancel());
  const FactorizeResult r2 = t2.get();
  EXPECT_EQ(r2.status, RequestStatus::Rejected);
  EXPECT_EQ(r2.code, ErrorCode::Overloaded);
  const FactorizeResult r3 = t3.get();
  EXPECT_EQ(r3.code, ErrorCode::Cancelled);
  svc.reset();  // shutdown drains t1 -> Internal
  const FactorizeResult r1 = t1.get();
  EXPECT_EQ(r1.status, RequestStatus::Failed);
  EXPECT_EQ(r1.code, ErrorCode::Internal);
}

// ---------- JSON golden keys --------------------------------------------

TEST(ServiceResilience, StatsJsonCarriesErrorAndHealthKeys) {
  SolveService svc;
  const auto a = gen::grid2d_laplacian(8, 8);
  ASSERT_TRUE(svc.factorize("t", shared(a), Factorization::LLT).ok());
  const json::Value v = json::Value::parse(svc.stats().to_json().dump());
  EXPECT_NE(v.find("retries"), nullptr);
  EXPECT_EQ(v.at("health").as_string(), "ok");
  const json::Value& e = v.at("errors");
  for (const char* key :
       {"none", "numerical-degraded", "numerical-failed", "injected-fault",
        "out-of-memory", "overloaded", "cancelled", "timeout", "internal"}) {
    EXPECT_NE(e.find(key), nullptr) << key;
  }
  EXPECT_EQ(e.at("none").as_number(), 1.0);
}

}  // namespace
}  // namespace spx
