#include <gtest/gtest.h>

#include <set>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace spx {
namespace {

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = r.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, ComplexScalarHasBothParts) {
  Rng r(5);
  const complex_t z = r.scalar<complex_t>();
  EXPECT_NE(z.imag(), 0.0);
}

TEST(Types, MagnitudeRealAndComplex) {
  EXPECT_EQ(magnitude(-3.0), 3.0);
  EXPECT_DOUBLE_EQ(magnitude(complex_t(3.0, 4.0)), 5.0);
}

TEST(Types, PrecisionTags) {
  EXPECT_EQ(precision_of<real_t>(), Precision::D);
  EXPECT_EQ(precision_of<complex_t>(), Precision::Z);
  EXPECT_STREQ(to_string(Precision::Z), "Z");
}

TEST(Flops, GemmCount) { EXPECT_EQ(flops_gemm(10, 20, 30), 12000.0); }

TEST(Flops, PotrfLeadingTerm) {
  EXPECT_NEAR(flops_potrf(300), 300.0 * 300 * 300 / 3, 50000);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=x", "--flag"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get("beta", ""), "x");
  EXPECT_TRUE(cli.get_flag("flag"));
  EXPECT_EQ(cli.get_double("gamma", 2.5), 2.5);
  EXPECT_NO_THROW(cli.check_unknown());
}

TEST(Cli, RejectsUnknown) {
  const char* argv[] = {"prog", "--oops", "1"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_THROW(cli.check_unknown(), InvalidArgument);
}

TEST(Cli, RejectsPositional) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv)), InvalidArgument);
}

// ---------- JSON string escaping ---------------------------------------

TEST(Json, EscapesControlCharactersOnWrite) {
  json::Value v(std::string("a\x01" "b\x1f"));
  EXPECT_EQ(v.dump(), "\"a\\u0001b\\u001f\"\n");
  // Named escapes stay named.
  json::Value named(std::string("tab\there\nquote\"back\\slash"));
  EXPECT_EQ(named.dump(), "\"tab\\there\\nquote\\\"back\\\\slash\"\n");
}

TEST(Json, NonAsciiRoundTripsThroughEscapes) {
  // BMP characters escape as one \uXXXX; the dump is pure ASCII.
  const std::string bmp = "caf\xc3\xa9 \xce\xb1\xce\xb2";  // café αβ
  const std::string dumped = json::Value(bmp).dump();
  for (const char c : dumped) EXPECT_LT(static_cast<unsigned char>(c), 0x80);
  EXPECT_NE(dumped.find("\\u00e9"), std::string::npos);
  EXPECT_NE(dumped.find("\\u03b1"), std::string::npos);
  EXPECT_EQ(json::Value::parse(dumped).as_string(), bmp);
}

TEST(Json, AstralCharactersUseSurrogatePairs) {
  const std::string emoji = "\xf0\x9f\x98\x80";  // U+1F600
  const std::string dumped = json::Value(emoji).dump();
  EXPECT_EQ(dumped, "\"\\ud83d\\ude00\"\n");
  EXPECT_EQ(json::Value::parse(dumped).as_string(), emoji);
}

TEST(Json, ParsesEscapesItNeverEmits) {
  // Uppercase hex digits and escaped forward slash are legal input.
  EXPECT_EQ(json::Value::parse("\"\\u00E9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(json::Value::parse("\"\\/\"").as_string(), "/");
  // A surrogate pair assembled from mixed-case digits.
  EXPECT_EQ(json::Value::parse("\"\\uD83D\\uDE00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, MalformedUtf8BecomesReplacementCharacter) {
  // A lone continuation byte, a truncated 2-byte sequence, an overlong
  // encoding: each escapes as U+FFFD instead of emitting invalid JSON.
  for (const char* bad : {"\x80", "\xc3", "\xc0\xaf"}) {
    const std::string dumped = json::Value(std::string("x") + bad).dump();
    EXPECT_NE(dumped.find("\\ufffd"), std::string::npos) << dumped;
    EXPECT_NO_THROW(json::Value::parse(dumped));
  }
}

TEST(Json, RejectsMalformedUnicodeEscapes) {
  EXPECT_THROW(json::Value::parse("\"\\u12\""), InvalidArgument);
  EXPECT_THROW(json::Value::parse("\"\\uZZZZ\""), InvalidArgument);
  // A high surrogate must be followed by a low surrogate...
  EXPECT_THROW(json::Value::parse("\"\\ud83d\""), InvalidArgument);
  EXPECT_THROW(json::Value::parse("\"\\ud83dx\""), InvalidArgument);
  EXPECT_THROW(json::Value::parse("\"\\ud83d\\u0041\""), InvalidArgument);
  // ...and a low surrogate may not stand alone.
  EXPECT_THROW(json::Value::parse("\"\\ude00\""), InvalidArgument);
}

TEST(Json, EscapedKeysRoundTripInObjects) {
  json::Value obj = json::Value::object();
  obj.set("tenant-\xe6\x97\xa5\xe6\x9c\xac", json::Value(1.0));  // 日本
  const std::string dumped = obj.dump();
  const json::Value back = json::Value::parse(dumped);
  EXPECT_EQ(back.members().size(), 1u);
  EXPECT_EQ(back.members()[0].first, "tenant-\xe6\x97\xa5\xe6\x9c\xac");
}

}  // namespace
}  // namespace spx
