#include <gtest/gtest.h>

#include <set>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace spx {
namespace {

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = r.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, ComplexScalarHasBothParts) {
  Rng r(5);
  const complex_t z = r.scalar<complex_t>();
  EXPECT_NE(z.imag(), 0.0);
}

TEST(Types, MagnitudeRealAndComplex) {
  EXPECT_EQ(magnitude(-3.0), 3.0);
  EXPECT_DOUBLE_EQ(magnitude(complex_t(3.0, 4.0)), 5.0);
}

TEST(Types, PrecisionTags) {
  EXPECT_EQ(precision_of<real_t>(), Precision::D);
  EXPECT_EQ(precision_of<complex_t>(), Precision::Z);
  EXPECT_STREQ(to_string(Precision::Z), "Z");
}

TEST(Flops, GemmCount) { EXPECT_EQ(flops_gemm(10, 20, 30), 12000.0); }

TEST(Flops, PotrfLeadingTerm) {
  EXPECT_NEAR(flops_potrf(300), 300.0 * 300 * 300 / 3, 50000);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=x", "--flag"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get("beta", ""), "x");
  EXPECT_TRUE(cli.get_flag("flag"));
  EXPECT_EQ(cli.get_double("gamma", 2.5), 2.5);
  EXPECT_NO_THROW(cli.check_unknown());
}

TEST(Cli, RejectsUnknown) {
  const char* argv[] = {"prog", "--oops", "1"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_THROW(cli.check_unknown(), InvalidArgument);
}

TEST(Cli, RejectsPositional) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv)), InvalidArgument);
}

}  // namespace
}  // namespace spx
