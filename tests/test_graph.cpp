#include <gtest/gtest.h>

#include <numeric>

#include "graph/orderings.hpp"
#include "graph/permute_graph.hpp"
#include "mat/generators.hpp"
#include "mat/triplets.hpp"

namespace spx {
namespace {

Graph grid_graph(index_t nx, index_t ny) {
  return Graph::from_pattern(gen::grid2d_laplacian(nx, ny));
}

TEST(Graph, FromPatternDropsDiagonalAndSymmetrizes) {
  Triplets<real_t> t(3, 3);
  t.add(0, 0, 1.0);
  t.add(2, 0, 5.0);  // only one side present
  t.add(1, 1, 1.0);
  const Graph g = Graph::from_pattern(t.to_csc());
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.neighbors(0)[0], 2);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, GridDegrees) {
  const Graph g = grid_graph(4, 4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.degree(0), 2);   // corner
  EXPECT_EQ(g.degree(5), 4);   // interior
  EXPECT_TRUE(g.validate());
}

TEST(Graph, InducedSubgraph) {
  const Graph g = grid_graph(3, 3);
  std::vector<index_t> verts{0, 1, 3, 4};
  std::vector<index_t> scratch;
  const Graph sub = g.induced_subgraph(verts, scratch);
  EXPECT_EQ(sub.num_vertices(), 4);
  EXPECT_EQ(sub.num_edges(), 4);  // the 2x2 corner of the grid
  EXPECT_TRUE(sub.validate());
}

TEST(Ordering, IdentityAndValidate) {
  const Ordering ord = Ordering::identity(5);
  EXPECT_TRUE(ord.validate());
  EXPECT_EQ(ord.new_to_old[3], 3);
}

TEST(Ordering, FromNewToOldRejectsNonPermutation) {
  EXPECT_THROW(Ordering::from_new_to_old({0, 0, 1}), InvalidArgument);
  EXPECT_THROW(Ordering::from_new_to_old({0, 3}), InvalidArgument);
}

TEST(Ordering, PermuteSymmetricPreservesEntries) {
  Rng rng(4);
  const auto a = gen::random_spd(12, 0.3, rng);
  const Ordering ord = reverse_cuthill_mckee(Graph::from_pattern(a));
  const auto b = permute_symmetric(a, ord);
  for (index_t j = 0; j < a.ncols(); ++j) {
    for (index_t i = 0; i < a.nrows(); ++i) {
      EXPECT_DOUBLE_EQ(b.at(ord.old_to_new[i], ord.old_to_new[j]),
                       a.at(i, j));
    }
  }
}

TEST(Ordering, VectorPermutationRoundTrip) {
  const Ordering ord = Ordering::from_new_to_old({2, 0, 1});
  std::vector<real_t> v{10, 20, 30}, p(3), u(3);
  permute_vector<real_t>(ord, v, p);
  EXPECT_DOUBLE_EQ(p[0], 30.0);  // new 0 holds old 2
  unpermute_vector<real_t>(ord, p, u);
  EXPECT_EQ(u, v);
}

TEST(Rcm, ValidPermutationOnGrid) {
  const Graph g = grid_graph(8, 8);
  const Ordering ord = reverse_cuthill_mckee(g);
  EXPECT_TRUE(ord.validate());
}

TEST(Rcm, ReducesBandwidthVsNatural) {
  // A long thin grid ordered column-major has bandwidth nx*ny-ish on the
  // wrong axis; RCM should do no worse than the natural ordering.
  const Graph g = grid_graph(30, 3);
  const Ordering rcm = reverse_cuthill_mckee(g);
  auto bandwidth = [&](const Ordering& ord) {
    index_t bw = 0;
    for (index_t v = 0; v < g.num_vertices(); ++v) {
      for (const index_t u : g.neighbors(v)) {
        bw = std::max(bw, std::abs(ord.old_to_new[v] - ord.old_to_new[u]));
      }
    }
    return bw;
  };
  EXPECT_LE(bandwidth(rcm), bandwidth(Ordering::identity(g.num_vertices())));
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two disjoint paths: 0-1-2 and 3-4.
  Triplets<real_t> t(5, 5);
  t.add_sym(1, 0, 1.0);
  t.add_sym(2, 1, 1.0);
  t.add_sym(4, 3, 1.0);
  for (index_t i = 0; i < 5; ++i) t.add(i, i, 1.0);
  const Ordering ord = reverse_cuthill_mckee(Graph::from_pattern(t.to_csc()));
  EXPECT_TRUE(ord.validate());
}

TEST(MinimumDegree, ValidPermutation) {
  const Graph g = grid_graph(10, 10);
  const Ordering ord = minimum_degree(g);
  EXPECT_TRUE(ord.validate());
}

TEST(MinimumDegree, BeatsNaturalFillOnGrid) {
  const Graph g = grid_graph(12, 12);
  const size_type md = cholesky_fill(g, minimum_degree(g));
  const size_type nat = cholesky_fill(g, Ordering::identity(g.num_vertices()));
  EXPECT_LT(md, nat);
}

TEST(NestedDissection, ValidPermutation) {
  const Graph g = grid_graph(20, 20);
  const Ordering ord = nested_dissection(g);
  EXPECT_TRUE(ord.validate());
}

TEST(NestedDissection, BeatsRcmFillOnGrid) {
  const Graph g = grid_graph(24, 24);
  const size_type nd = cholesky_fill(g, nested_dissection(g));
  const size_type rcm = cholesky_fill(g, reverse_cuthill_mckee(g));
  EXPECT_LT(nd, rcm);
}

TEST(NestedDissection, DeterministicForFixedSeed) {
  const Graph g = grid_graph(15, 15);
  NestedDissectionOptions opts;
  opts.seed = 7;
  const Ordering a = nested_dissection(g, opts);
  const Ordering b = nested_dissection(g, opts);
  EXPECT_EQ(a.new_to_old, b.new_to_old);
}

TEST(NestedDissection, HandlesDisconnectedGraph) {
  Triplets<real_t> t(200, 200);
  for (index_t i = 0; i < 100; i += 1) t.add(i, i, 1.0);
  // Component 1: a path on [0,100); component 2: a path on [100,200).
  for (index_t i = 0; i + 1 < 100; ++i) t.add_sym(i + 1, i, -1.0);
  for (index_t i = 100; i + 1 < 200; ++i) t.add_sym(i + 1, i, -1.0);
  const Ordering ord = nested_dissection(Graph::from_pattern(t.to_csc()));
  EXPECT_TRUE(ord.validate());
}

TEST(NestedDissection, TinyGraphFallsBackToLeafOrdering) {
  const Graph g = grid_graph(3, 2);
  NestedDissectionOptions opts;
  opts.leaf_size = 96;
  const Ordering ord = nested_dissection(g, opts);
  EXPECT_TRUE(ord.validate());
}

TEST(PermuteGraph, PreservesStructure) {
  const Graph g = grid_graph(6, 6);
  const Ordering ord = reverse_cuthill_mckee(g);
  const Graph pg = permute_graph(g, ord);
  EXPECT_TRUE(pg.validate());
  EXPECT_EQ(pg.num_edges(), g.num_edges());
  // Edge (u,v) in g <=> (old_to_new[u], old_to_new[v]) in pg.
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    for (const index_t u : g.neighbors(v)) {
      const auto nb = pg.neighbors(ord.old_to_new[v]);
      EXPECT_TRUE(std::binary_search(nb.begin(), nb.end(),
                                     ord.old_to_new[u]));
    }
  }
}

}  // namespace
}  // namespace spx
