// Solve-phase tests: single- vs multi-RHS consistency, leading-dimension
// handling, refinement, and cross-kind coverage.
#include <gtest/gtest.h>

#include <functional>

#include "core/sequential.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"
#include "test_support.hpp"

namespace spx {
namespace {

template <typename T>
FactorData<T> factored(const CscMatrix<T>& a, const Analysis& an,
                       Factorization kind) {
  FactorData<T> f(an.structure, kind);
  f.initialize(permute_symmetric(a, an.perm));
  factorize_sequential(f);
  return f;
}

template <typename T>
void check_multi_matches_single(const CscMatrix<T>& a, Factorization kind) {
  const Analysis an = analyze(a);
  const FactorData<T> f = factored(a, an, kind);
  const index_t n = a.ncols();
  const index_t nrhs = 5;
  Rng rng(400);
  std::vector<T> b(static_cast<std::size_t>(n) * nrhs);
  for (auto& v : b) v = rng.scalar<T>();

  // Multi-RHS in one shot.
  std::vector<T> multi = b;
  solve_permuted_multi(f, multi.data(), nrhs, n);
  // Column by column through the single-RHS path.
  std::vector<T> single = b;
  for (index_t c = 0; c < nrhs; ++c) {
    solve_permuted(f,
                   std::span<T>(single.data() + std::size_t(c) * n, n));
  }
  for (std::size_t i = 0; i < multi.size(); ++i) {
    EXPECT_LT(magnitude<T>(multi[i] - single[i]), 1e-12)
        << "entry " << i;
  }
}

TEST(MultiRhs, MatchesSingleCholesky) {
  check_multi_matches_single<real_t>(gen::grid3d_laplacian(6, 6, 6),
                                     Factorization::LLT);
}

TEST(MultiRhs, MatchesSingleLdlt) {
  Rng rng(401);
  check_multi_matches_single<real_t>(
      gen::random_sym_indefinite(90, 0.06, rng), Factorization::LDLT);
}

TEST(MultiRhs, MatchesSingleLu) {
  check_multi_matches_single<real_t>(
      gen::convection_diffusion3d(5, 5, 5, 8.0), Factorization::LU);
}

TEST(MultiRhs, MatchesSingleComplexLdlt) {
  check_multi_matches_single<complex_t>(gen::helmholtz3d(5, 5, 5),
                                        Factorization::LDLT);
}

TEST(MultiRhs, MatchesSingleComplexLu) {
  check_multi_matches_single<complex_t>(gen::filter3d(4, 4, 4),
                                        Factorization::LU);
}

TEST(MultiRhs, RespectsLeadingDimension) {
  const auto a = gen::grid2d_laplacian(9, 9);
  const Analysis an = analyze(a);
  const FactorData<real_t> f = factored(a, an, Factorization::LLT);
  const index_t n = a.ncols(), nrhs = 3, ldx = n + 7;
  Rng rng(402);
  std::vector<real_t> x(static_cast<std::size_t>(ldx) * nrhs, -777.0);
  std::vector<real_t> compact(static_cast<std::size_t>(n) * nrhs);
  for (index_t c = 0; c < nrhs; ++c) {
    for (index_t i = 0; i < n; ++i) {
      const real_t v = rng.uniform(-1, 1);
      x[i + static_cast<std::size_t>(c) * ldx] = v;
      compact[i + static_cast<std::size_t>(c) * n] = v;
    }
  }
  solve_permuted_multi(f, x.data(), nrhs, ldx);
  solve_permuted_multi(f, compact.data(), nrhs, n);
  for (index_t c = 0; c < nrhs; ++c) {
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i + static_cast<std::size_t>(c) * ldx],
                  compact[i + static_cast<std::size_t>(c) * n], 1e-13);
    }
    // Padding rows untouched.
    for (index_t i = n; i < ldx; ++i) {
      EXPECT_EQ(x[i + static_cast<std::size_t>(c) * ldx], -777.0);
    }
  }
}

TEST(MultiRhs, SolverFacadeEndToEnd) {
  SolverOptions opts;
  opts.runtime = RuntimeKind::Parsec;
  opts.num_threads = 2;
  Solver<real_t> solver(opts);
  const auto a = gen::grid3d_laplacian(5, 5, 5);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  const index_t n = a.ncols(), nrhs = 4;
  Rng rng(403);
  std::vector<real_t> xstar(static_cast<std::size_t>(n) * nrhs);
  for (auto& v : xstar) v = rng.uniform(-1, 1);
  std::vector<real_t> b(xstar.size());
  for (index_t c = 0; c < nrhs; ++c) {
    a.multiply(std::span<const real_t>(xstar.data() + std::size_t(c) * n, n),
               std::span<real_t>(b.data() + std::size_t(c) * n, n));
  }
  solver.solve_multi(b, nrhs);
  double err = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    err = std::max(err, std::abs(b[i] - xstar[i]));
  }
  EXPECT_LT(err, 1e-9);
}

TEST(MultiRhs, SolverRejectsBadBlockSize) {
  Solver<real_t> solver;
  const auto a = gen::grid2d_laplacian(5, 5);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  std::vector<real_t> b(a.ncols() * 2 + 1);
  EXPECT_THROW(solver.solve_multi(b, 2), InvalidArgument);
}

// ---------- numeric-only re-factorization -------------------------------

/// Same pattern as `a`, values transformed by `f(row, col, v)`.
CscMatrix<real_t> with_values(
    const CscMatrix<real_t>& a,
    const std::function<real_t(index_t, index_t, real_t)>& f) {
  std::vector<real_t> vals(a.values().begin(), a.values().end());
  for (index_t c = 0; c < a.ncols(); ++c) {
    for (size_type k = a.colptr()[static_cast<std::size_t>(c)];
         k < a.colptr()[static_cast<std::size_t>(c) + 1]; ++k) {
      const auto ki = static_cast<std::size_t>(k);
      vals[ki] = f(a.rowind()[ki], c, vals[ki]);
    }
  }
  return CscMatrix<real_t>(
      a.nrows(), a.ncols(),
      std::vector<size_type>(a.colptr().begin(), a.colptr().end()),
      std::vector<index_t>(a.rowind().begin(), a.rowind().end()),
      std::move(vals));
}

TEST(Refactorize, ThrowsBeforeFirstFactorize) {
  Solver<real_t> solver;
  const auto a = gen::grid2d_laplacian(6, 6);
  // The fast path reuses the allocated factors: without them it must
  // refuse loudly, not fall back to a silent full factorize.
  EXPECT_THROW(solver.refactorize(a), InvalidArgument);
  solver.analyze(a);
  EXPECT_THROW(solver.refactorize(a), InvalidArgument);  // analyzed only
  solver.factorize(a, Factorization::LLT);
  ASSERT_NO_THROW(solver.refactorize(a));
}

TEST(Refactorize, RejectsADifferentPattern) {
  const auto a = gen::grid2d_laplacian(8, 8);   // n = 64
  const auto c = gen::grid3d_laplacian(4, 4, 4);  // n = 64, other pattern
  Solver<real_t> solver;
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  EXPECT_THROW(solver.refactorize(c), InvalidArgument);
  EXPECT_THROW(solver.refactorize(gen::grid2d_laplacian(8, 9)),
               InvalidArgument);
  EXPECT_TRUE(solver.factorized());  // the refusal changed nothing
}

TEST(Refactorize, MatchesAFreshFactorizeAcrossValueDrift) {
  const auto a = gen::grid2d_laplacian(12, 12);
  Solver<real_t> fast;
  fast.analyze(a);
  fast.factorize(a, Factorization::LLT);
  const auto n = static_cast<std::size_t>(a.ncols());
  Rng rng(500);
  std::vector<real_t> xstar(n);
  for (auto& v : xstar) v = rng.uniform(-1, 1);
  for (int step = 1; step <= 3; ++step) {
    // SPD-preserving drift: strengthen the diagonal step by step.
    const real_t bump = 1.0 + 0.25 * step;
    const CscMatrix<real_t> anew = with_values(
        a, [&](index_t r, index_t c, real_t v) {
          return r == c ? v * bump : v;
        });
    fast.refactorize(anew);

    Solver<real_t> fresh;
    fresh.analyze(anew);
    fresh.factorize(anew, Factorization::LLT);
    std::vector<real_t> b(n);
    anew.multiply(xstar, b);
    std::vector<real_t> x_fast = b, x_fresh = b;
    fast.solve(x_fast);
    fresh.solve(x_fresh);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x_fast[i], xstar[i], 1e-9);
      EXPECT_NEAR(x_fast[i], x_fresh[i], 1e-11);
    }
  }
}

TEST(Refactorize, FailureRollsBackToThePreviousServableFactor) {
  SolverOptions opts;
  opts.pivot_threshold = 0;  // no static perturbation: breakdown throws
  Solver<real_t> solver(opts);
  const auto a = gen::grid2d_laplacian(10, 10);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  const auto n = static_cast<std::size_t>(a.ncols());
  std::vector<real_t> ones(n, 1.0);
  std::vector<real_t> b(n);
  a.multiply(ones, b);

  // A negated diagonal is indefinite: the LL^T sweep hits a negative
  // pivot and throws.  Unlike factorize(), the solver must remain
  // factorized with the PREVIOUS values afterwards.
  const CscMatrix<real_t> bad = with_values(
      a, [](index_t r, index_t c, real_t v) { return r == c ? -v : v; });
  EXPECT_THROW(solver.refactorize(bad), NumericalError);
  ASSERT_TRUE(solver.factorized());
  std::vector<real_t> x = b;
  solver.solve(x);
  for (const real_t v : x) EXPECT_NEAR(v, 1.0, 1e-9);

  // And the rolled-back solver still accepts a later good refactorize.
  const CscMatrix<real_t> good = with_values(
      a, [](index_t r, index_t c, real_t v) { return r == c ? 2 * v : v; });
  ASSERT_NO_THROW(solver.refactorize(good));
  std::vector<real_t> bg(n);
  good.multiply(ones, bg);
  std::vector<real_t> xg = bg;
  solver.solve(xg);
  for (const real_t v : xg) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Refinement, RecoversFromPerturbedFactors) {
  // Perturb the factors slightly: a plain solve is inaccurate, refinement
  // against the true matrix recovers full precision.
  const auto a = gen::grid2d_laplacian(12, 12);
  SolverOptions opts;
  opts.runtime = RuntimeKind::Sequential;
  Solver<real_t> solver(opts);
  solver.analyze(a);
  solver.factorize(a, Factorization::LLT);
  Rng rng(404);
  std::vector<real_t> x(a.ncols()), b(a.ncols()), got(a.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.multiply(x, b);
  const int iters = solver.solve_refine(a, b, got, 1e-14, 20);
  EXPECT_LE(iters, 2);
  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(got[i] - x[i]));
  }
  EXPECT_LT(err, 1e-12);
}

}  // namespace
}  // namespace spx
