#include <gtest/gtest.h>

#include <numeric>

#include "core/analysis.hpp"
#include "mat/generators.hpp"
#include "symbolic/amalgamation.hpp"
#include "symbolic/etree.hpp"

namespace spx {
namespace {

// Dense-symbolic oracle: column structures of L by naive elimination.
std::vector<std::vector<index_t>> naive_symbolic(const Graph& g) {
  const index_t n = g.num_vertices();
  std::vector<std::vector<char>> lower(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (index_t j = 0; j < n; ++j) {
    for (const index_t i : g.neighbors(j)) {
      if (i > j) lower[j][i] = 1;
    }
  }
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = k + 1; i < n; ++i) {
      if (!lower[k][i]) continue;
      for (index_t j = i + 1; j < n; ++j) {
        if (lower[k][j]) lower[i][j] = 1;  // fill
      }
    }
  }
  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      if (lower[j][i]) cols[j].push_back(i);
    }
  }
  return cols;
}

// Oracle etree: parent(j) = min row index of L column j below diagonal.
std::vector<index_t> naive_etree(const Graph& g) {
  const auto cols = naive_symbolic(g);
  std::vector<index_t> parent(cols.size(), -1);
  for (std::size_t j = 0; j < cols.size(); ++j) {
    if (!cols[j].empty()) parent[j] = cols[j].front();
  }
  return parent;
}

TEST(Etree, MatchesNaiveOnGrid) {
  const Graph g = Graph::from_pattern(gen::grid2d_laplacian(5, 5));
  EXPECT_EQ(elimination_tree(g), naive_etree(g));
}

TEST(Etree, MatchesNaiveOnRandom) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = gen::random_spd(25, 0.15, rng);
    const Graph g = Graph::from_pattern(a);
    EXPECT_EQ(elimination_tree(g), naive_etree(g)) << "trial " << trial;
  }
}

TEST(Etree, PostorderIsValid) {
  const Graph g = Graph::from_pattern(gen::grid2d_laplacian(8, 8));
  const auto parent = elimination_tree(g);
  const auto post = tree_postorder(parent);
  const index_t n = g.num_vertices();
  ASSERT_EQ(static_cast<index_t>(post.size()), n);
  // Permutation + every child appears before its parent.
  std::vector<index_t> pos(static_cast<std::size_t>(n), -1);
  for (index_t k = 0; k < n; ++k) {
    ASSERT_EQ(pos[post[k]], -1);
    pos[post[k]] = k;
  }
  for (index_t v = 0; v < n; ++v) {
    if (parent[v] != -1) EXPECT_LT(pos[v], pos[parent[v]]);
  }
}

TEST(ColCounts, MatchNaiveSymbolic) {
  Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    const auto a = gen::random_spd(30, 0.12, rng);
    Graph g = Graph::from_pattern(a);
    // Postorder first (the counts routine requires it only for the etree
    // invariants, but the pipeline always postorders, so test that path).
    auto parent = elimination_tree(g);
    const Ordering post = Ordering::from_new_to_old(tree_postorder(parent));
    g = permute_graph(g, post);
    parent = elimination_tree(g);
    const auto postorder = tree_postorder(parent);
    const auto counts = cholesky_col_counts(g, parent, postorder);
    const auto oracle = naive_symbolic(g);
    for (std::size_t j = 0; j < oracle.size(); ++j) {
      EXPECT_EQ(counts[j], static_cast<index_t>(oracle[j].size()) + 1)
          << "col " << j << " trial " << trial;
    }
  }
}

TEST(Supernodes, PartitionCoversAllColumns) {
  const Graph g0 = Graph::from_pattern(gen::grid3d_laplacian(6, 6, 6));
  Graph g = permute_graph(g0, nested_dissection(g0));
  auto parent = elimination_tree(g);
  const Ordering post = Ordering::from_new_to_old(tree_postorder(parent));
  g = permute_graph(g, post);
  parent = elimination_tree(g);
  const auto postorder = tree_postorder(parent);
  const auto counts = cholesky_col_counts(g, parent, postorder);
  const auto part = find_fundamental_supernodes(parent, counts);
  EXPECT_EQ(part.first_col.front(), 0);
  EXPECT_EQ(part.first_col.back(), g.num_vertices());
  for (index_t s = 0; s < part.count(); ++s) {
    EXPECT_GT(part.width(s), 0);
    for (index_t j = part.first_col[s]; j < part.first_col[s + 1]; ++j) {
      EXPECT_EQ(part.sn_of_col[j], s);
    }
  }
}

TEST(Supernodes, RowStructureMatchesNaive) {
  Rng rng(17);
  const auto a = gen::random_spd(40, 0.1, rng);
  Graph g = Graph::from_pattern(a);
  auto parent = elimination_tree(g);
  const Ordering post = Ordering::from_new_to_old(tree_postorder(parent));
  g = permute_graph(g, post);
  parent = elimination_tree(g);
  const auto postorder = tree_postorder(parent);
  const auto counts = cholesky_col_counts(g, parent, postorder);
  const auto part = find_fundamental_supernodes(parent, counts);
  const auto forest = supernodal_symbolic(g, parent, part);
  const auto oracle = naive_symbolic(g);
  for (index_t s = 0; s < part.count(); ++s) {
    // The supernode's row set must equal the first column's structure
    // beyond the supernode (fundamental supernode property).
    const index_t j0 = part.first_col[s];
    const index_t last = part.first_col[s + 1] - 1;
    std::vector<index_t> expect;
    for (const index_t r : oracle[j0]) {
      if (r > last) expect.push_back(r);
    }
    EXPECT_EQ(forest.rows[s], expect) << "supernode " << s;
  }
}

TEST(Amalgamation, ZeroBudgetKeepsStructure) {
  const Graph g0 = Graph::from_pattern(gen::grid2d_laplacian(12, 12));
  Graph g = permute_graph(g0, nested_dissection(g0));
  auto parent = elimination_tree(g);
  const Ordering post = Ordering::from_new_to_old(tree_postorder(parent));
  g = permute_graph(g, post);
  parent = elimination_tree(g);
  const auto postorder = tree_postorder(parent);
  const auto counts = cholesky_col_counts(g, parent, postorder);
  const auto part = find_fundamental_supernodes(parent, counts);
  const auto forest = supernodal_symbolic(g, parent, part);
  AmalgamationOptions opts;
  opts.fill_ratio = 0.0;
  opts.min_width = 0;
  const auto res = amalgamate(part, forest, opts);
  EXPECT_EQ(res.extra_fill, 0);
  EXPECT_EQ(res.nnz_after, res.nnz_before);
  EXPECT_EQ(res.part.count(), part.count());
}

TEST(Amalgamation, FillGrowsWithBudgetAndPanelCountShrinks) {
  const Graph g0 = Graph::from_pattern(gen::grid3d_laplacian(8, 8, 8));
  Graph g = permute_graph(g0, nested_dissection(g0));
  auto parent = elimination_tree(g);
  const Ordering post = Ordering::from_new_to_old(tree_postorder(parent));
  g = permute_graph(g, post);
  parent = elimination_tree(g);
  const auto postorder = tree_postorder(parent);
  const auto counts = cholesky_col_counts(g, parent, postorder);
  const auto part = find_fundamental_supernodes(parent, counts);
  const auto forest = supernodal_symbolic(g, parent, part);

  AmalgamationOptions small, big;
  small.fill_ratio = 0.02;
  big.fill_ratio = 0.25;
  small.min_width = big.min_width = 0;
  const auto rs = amalgamate(part, forest, small);
  const auto rb = amalgamate(part, forest, big);
  EXPECT_LE(rs.extra_fill, rb.extra_fill);
  EXPECT_GE(rs.part.count(), rb.part.count());
  EXPECT_LE(static_cast<double>(rs.extra_fill),
            0.02 * static_cast<double>(rs.nnz_before) + 1);
}

TEST(Amalgamation, RenumberIsConsistent) {
  const Graph g0 = Graph::from_pattern(gen::grid2d_laplacian(15, 15));
  Graph g = permute_graph(g0, nested_dissection(g0));
  auto parent = elimination_tree(g);
  const Ordering post = Ordering::from_new_to_old(tree_postorder(parent));
  g = permute_graph(g, post);
  parent = elimination_tree(g);
  const auto postorder = tree_postorder(parent);
  const auto counts = cholesky_col_counts(g, parent, postorder);
  const auto part = find_fundamental_supernodes(parent, counts);
  const auto forest = supernodal_symbolic(g, parent, part);
  const auto res = amalgamate(part, forest, {});
  EXPECT_TRUE(res.renumber.validate());
  // Rows of each supernode point strictly beyond its columns.
  for (index_t s = 0; s < res.part.count(); ++s) {
    for (const index_t r : res.forest.rows[s]) {
      EXPECT_GE(r, res.part.first_col[s + 1]);
    }
  }
}

TEST(Structure, ValidatesOnVariousProblems) {
  {
    const Analysis an = analyze(gen::grid2d_laplacian(20, 20));
    an.structure.validate();
  }
  {
    const Analysis an = analyze(gen::grid3d_laplacian(7, 7, 7));
    an.structure.validate();
  }
  {
    Rng rng(23);
    const Analysis an = analyze(gen::random_spd(60, 0.1, rng));
    an.structure.validate();
  }
}

TEST(Structure, PanelSplittingBoundsWidth) {
  AnalysisOptions opts;
  opts.symbolic.max_panel_width = 16;
  const Analysis an = analyze(gen::grid3d_laplacian(8, 8, 8), opts);
  an.structure.validate();
  for (const Panel& p : an.structure.panels) {
    EXPECT_LE(p.width(), 16);
  }
}

TEST(Structure, NoSplittingWhenDisabled) {
  AnalysisOptions wide, narrow;
  wide.symbolic.max_panel_width = 0;
  narrow.symbolic.max_panel_width = 8;
  const auto a = gen::grid3d_laplacian(6, 6, 6);
  const Analysis aw = analyze(a, wide);
  const Analysis an = analyze(a, narrow);
  EXPECT_LE(aw.structure.num_panels(), an.structure.num_panels());
}

TEST(Structure, FlopCountsArePositiveAndOrdered) {
  const Analysis an = analyze(gen::grid3d_laplacian(6, 6, 6));
  const double llt = an.total_flops(Factorization::LLT);
  const double ldlt = an.total_flops(Factorization::LDLT);
  const double lu = an.total_flops(Factorization::LU);
  EXPECT_GT(llt, 0.0);
  EXPECT_GT(ldlt, llt * 0.9);  // LDLT ~ LLT plus scaling
  EXPECT_GT(lu, 1.8 * llt);    // LU about twice the symmetric cost
}

TEST(Structure, InDegreeMatchesEdges) {
  const Analysis an = analyze(gen::grid2d_laplacian(18, 18));
  const auto& st = an.structure;
  std::vector<index_t> indeg(st.num_panels(), 0);
  for (index_t p = 0; p < st.num_panels(); ++p) {
    for (const auto& e : st.targets[p]) indeg[e.dst]++;
  }
  for (index_t p = 0; p < st.num_panels(); ++p) {
    EXPECT_EQ(indeg[p], st.in_degree[p]);
  }
}

TEST(Compose, AppliesInnerThenOuter) {
  const Ordering inner = Ordering::from_new_to_old({1, 2, 0});
  const Ordering outer = Ordering::from_new_to_old({2, 0, 1});
  const Ordering c = compose(inner, outer);
  // new position k holds inner.new_to_old[outer.new_to_old[k]]
  EXPECT_EQ(c.new_to_old[0], inner.new_to_old[2]);
  EXPECT_TRUE(c.validate());
}

}  // namespace
}  // namespace spx
