// ChaosStress: crash-tolerance sweep for the serving layer.
//
// Three phases, each gated hard (any violation fails the run):
//
//   A. Wire chaos -- a seed sweep of deterministic socket faults (drop,
//      truncate, delay, corrupt, abort) against an in-process shard with
//      frame checksums on.  Gates: every run terminates (watchdog), a
//      corrupted frame is never decoded as a request, every response the
//      client *acked* (saw status Done for) stays servable afterwards --
//      including acked refactorizes, which must serve the NEW values --
//      and the shard survives to serve a clean client.
//
//   B. Process chaos -- spx_shard x2 (each with a persist dir) behind
//      spx_front, SIGKILLed and restarted under mixed traffic (factorize,
//      refactorize, solve) across a seed sweep.  Gates: zero lost
//      acknowledged requests, the victim's
//      circuit breaker is observed opening and re-closing via /metrics,
//      the restarted shard replays its snapshots (/readyz reports warm
//      entries) and serves repeats warm (spx_shard_warm_hits_total > 0,
//      i.e. the hit rate recovers instead of re-factorizing from cold).
//
//   C. Corruption -- every snapshot in a persist dir gets a flipped
//      byte; the shard must come up cold (warm=0) without crashing and
//      still serve.
//
// Registered in ctest as `ChaosStress` running `--smoke`; the full sweep
// (no flag) is the soak configuration.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <functional>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mat/generators.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/shard_server.hpp"
#include "runtime/fault_injection.hpp"

#ifndef SPX_SHARD_BIN
#define SPX_SHARD_BIN "spx_shard"
#endif
#ifndef SPX_FRONT_BIN
#define SPX_FRONT_BIN "spx_front"
#endif

namespace {

using namespace spx;
namespace fs = std::filesystem;

int g_failures = 0;

void check(bool ok, const char* phase, std::uint64_t seed,
           const std::string& what) {
  if (ok) return;
  ++g_failures;
  std::fprintf(stderr, "FAIL [%s seed=%llu]: %s\n", phase,
               static_cast<unsigned long long>(seed), what.c_str());
}

std::vector<real_t> ones_rhs(const CscMatrix<real_t>& a) {
  return std::vector<real_t>(static_cast<std::size_t>(a.ncols()), 1.0);
}

// ---- phase A: wire chaos ------------------------------------------------

void wire_chaos_seed(net::ShardServer& shard,
                     const std::vector<CscMatrix<real_t>>& mats,
                     std::uint64_t seed) {
  static const FaultAction kWire[] = {
      FaultAction::DropFrame, FaultAction::TruncateFrame,
      FaultAction::DelayFrame, FaultAction::CorruptFrame,
      FaultAction::AbortConnection};
  const FaultAction action = kWire[seed % (sizeof(kWire) / sizeof(*kWire))];
  FaultInjector fault(FaultPlan{action, seed % 5, 0.002});

  net::BlockingClient c;
  c.connect("127.0.0.1", shard.port(), /*timeout_s=*/0.5);
  c.set_checksum(true);
  c.set_fault(&fault);

  // Acked work: (matrix index, factor id) pairs the client saw Done for.
  std::vector<std::pair<std::size_t, std::uint64_t>> acked;
  const int requests = 6;
  for (int i = 0; i < requests; ++i) {
    const std::size_t mi = (seed + std::uint64_t(i)) % mats.size();
    try {
      const auto fr = c.factorize("chaos", mats[mi], Factorization::LLT);
      if (fr.status == 0) acked.emplace_back(mi, fr.factor_id);
    } catch (const std::exception&) {
      // The injected fault broke this connection; a real client
      // reconnects and retries.  Nothing was acked, so nothing is owed.
      try {
        c.connect("127.0.0.1", shard.port(), 0.5);
        c.set_checksum(true);
      } catch (const std::exception&) {
      }
    }
  }

  // Refactorize traffic in the same storm: push doubled values at every
  // acked factor through the faulted connection.  An acked refresh is a
  // promise the NEW values are live behind the old handle.
  std::vector<std::pair<std::size_t, std::uint64_t>> refreshed;
  for (const auto& [mi, factor_id] : acked) {
    std::vector<real_t> doubled(mats[mi].values().begin(),
                                mats[mi].values().end());
    for (auto& v : doubled) v *= 2.0;
    try {
      const auto rr = c.refactorize("chaos", pattern_digest(mats[mi]),
                                    factor_id, doubled);
      if (rr.status == 0) refreshed.emplace_back(mi, factor_id);
    } catch (const std::exception&) {
      try {
        c.connect("127.0.0.1", shard.port(), 0.5);
        c.set_checksum(true);
      } catch (const std::exception&) {
      }
    }
  }

  // Every acknowledged factorize must still be servable: acked work is
  // durable against whatever the wire did around it.
  net::BlockingClient clean;
  clean.connect("127.0.0.1", shard.port());
  for (const auto& [mi, factor_id] : acked) {
    const auto sr = clean.solve("chaos", pattern_digest(mats[mi]), factor_id,
                                ones_rhs(mats[mi]));
    check(sr.status == 0, "wire", seed,
          "acked factor " + std::to_string(factor_id) +
              " no longer solvable: " + sr.error);
  }
  // Acked refreshes serve the doubled operator: 2A x = 2A·1 -> x = 1.
  for (const auto& [mi, factor_id] : refreshed) {
    std::vector<real_t> b(static_cast<std::size_t>(mats[mi].ncols()));
    mats[mi].multiply(ones_rhs(mats[mi]), b);
    for (auto& v : b) v *= 2.0;
    const auto sr =
        clean.solve("chaos", pattern_digest(mats[mi]), factor_id, b);
    check(sr.status == 0, "wire", seed,
          "acked refactorize " + std::to_string(factor_id) +
              " no longer solvable: " + sr.error);
    for (const real_t v : sr.x) {
      if (std::abs(v - 1.0) > 1e-6) {
        check(false, "wire", seed,
              "acked refactorize " + std::to_string(factor_id) +
                  " does not serve the refreshed values");
        break;
      }
    }
  }
  // And the shard itself took no damage.
  const auto fr = clean.factorize("chaos", mats[seed % mats.size()],
                                  Factorization::LLT);
  check(fr.status == 0, "wire", seed,
        "shard unhealthy after wire faults: " + fr.error);
}

// ---- phase B/C helpers: child processes ---------------------------------

struct ChildProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::uint16_t http_port = 0;
  std::string name;
};

ChildProc spawn_with_ports(const char* bin, std::string name,
                           std::vector<std::string> args) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  args.insert(args.begin(), bin);
  args.push_back("--print-ports");
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(bin, argv.data());
    std::fprintf(stderr, "execv(%s): %s\n", bin, std::strerror(errno));
    ::_exit(127);
  }
  ::close(fds[1]);
  std::string line;
  char ch;
  while (::read(fds[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
  ::close(fds[0]);
  ChildProc p;
  p.pid = pid;
  p.name = std::move(name);
  if (std::sscanf(line.c_str(), "%hu %hu", &p.port, &p.http_port) != 2) {
    std::fprintf(stderr, "%s did not print its ports (got '%s')\n", bin,
                 line.c_str());
    ::kill(pid, SIGKILL);
    std::exit(1);
  }
  return p;
}

/// Scrapes one Prometheus series (exact name or name{labels} prefix),
/// summed over matching series; 0 when absent or the scrape fails.
double scrape(std::uint16_t http_port, const std::string& series) {
  std::string text;
  try {
    text = net::http_get("127.0.0.1", http_port, "/metrics");
  } catch (const std::exception&) {
    return 0;
  }
  double total = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(series, 0) == 0 && line.size() > series.size() &&
        (line[series.size()] == ' ' || line[series.size()] == '{')) {
      const std::size_t sp = line.rfind(' ');
      if (sp != std::string::npos) total += std::atof(line.c_str() + sp + 1);
    }
  }
  return total;
}

bool wait_until(const std::function<bool()>& pred, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

bool http_ready(std::uint16_t http_port, const char* path,
                std::string* body_out = nullptr) {
  int status = 0;
  try {
    std::string body = net::http_get("127.0.0.1", http_port, path, &status);
    if (body_out != nullptr) *body_out = std::move(body);
  } catch (const std::exception&) {
    return false;
  }
  return status == 200;
}

struct TrafficStats {
  std::uint64_t acked = 0;      ///< responses seen with status Done
  std::uint64_t retried = 0;    ///< retryable bounces absorbed
  std::uint64_t refreshed = 0;  ///< refactorizes acked with status Done
  std::uint64_t lost = 0;       ///< acked work that later failed hard
};

/// One client thread of factorize+solve rounds through the front,
/// retrying everything retryable.  "Lost" means strictly: we exhausted
/// retries on work the system had not acked (never-acked gives up
/// quietly), or an acked factorize later failed every solve attempt.
void traffic_run(std::uint16_t front_port, const std::string& tenant,
                 const std::vector<std::shared_ptr<const CscMatrix<real_t>>>&
                     mats,
                 int rounds, std::atomic<bool>* stop, TrafficStats* out) {
  net::BlockingClient c;
  try {
    c.connect("127.0.0.1", front_port);
  } catch (const std::exception&) {
    return;
  }
  for (int i = 0; i < rounds; ++i) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) return;
    const auto& a = mats[static_cast<std::size_t>(i) % mats.size()];
    const std::uint64_t digest = pattern_digest(*a);
    std::uint64_t factor_id = 0;
    bool solved = false;
    for (int attempt = 0; attempt < 100 && !solved; ++attempt) {
      try {
        net::NetError err{};
        if (factor_id == 0) {
          const auto fr = c.factorize(tenant, *a, Factorization::LLT, {},
                                      &err);
          if (err != net::NetError{} || fr.status != 0) {
            if (err != net::NetError{} && !net::retryable(err)) {
              ++out->lost;
              break;
            }
            ++out->retried;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            continue;
          }
          factor_id = fr.factor_id;
          ++out->acked;
        }
        const auto sr = c.solve(tenant, digest, factor_id, ones_rhs(*a), {},
                                &err);
        if (err == net::NetError::UnknownFactor) {
          // The owning shard died before replaying this factor; the
          // factorize is re-run elsewhere.  The ack is honored as long
          // as the retry loop eventually lands it.
          factor_id = 0;
          ++out->retried;
          continue;
        }
        if (err != net::NetError{} || sr.status != 0) {
          if (err != net::NetError{} && !net::retryable(err)) {
            ++out->lost;
            break;
          }
          ++out->retried;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        solved = true;
        // One same-values refactorize rides every solved round.  Under
        // kill/restart chaos it must ack, bounce retryable (including
        // UnknownFactor: snapshot-restored factors cannot ingest values;
        // the documented recovery is a fresh factorize), or reconnect --
        // never fail hard on a factor the system acked.
        std::vector<real_t> vals(a->values().begin(), a->values().end());
        const auto rr = c.refactorize(tenant, digest, factor_id,
                                      std::move(vals), {}, &err);
        if (err == net::NetError{} && rr.status == 0) {
          ++out->refreshed;
        } else if (err != net::NetError{} && !net::retryable(err)) {
          ++out->lost;
        } else {
          ++out->retried;
        }
      } catch (const std::exception&) {
        ++out->retried;
        try {
          c.connect("127.0.0.1", front_port);
        } catch (const std::exception&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
    }
    if (!solved && factor_id != 0) ++out->lost;  // acked, then abandoned
  }
}

// ---- phase B: process chaos --------------------------------------------

int process_chaos(bool smoke, const fs::path& tmp) {
  const int kill_cycles = smoke ? 2 : 5;
  const int clients = smoke ? 3 : 6;
  const int rounds = smoke ? 8 : 20;

  const fs::path dirs[2] = {tmp / "persist-s0", tmp / "persist-s1"};
  auto spawn_shard = [&](int idx, std::uint16_t port) {
    std::vector<std::string> args = {
        "--name",    "s" + std::to_string(idx),
        "--workers", "2",
        "--persist-dir", dirs[idx].string(),
        "--persist-interval", "0"};
    if (port != 0) {
      args.push_back("--port");
      args.push_back(std::to_string(port));
    }
    return spawn_with_ports(SPX_SHARD_BIN, "s" + std::to_string(idx),
                            std::move(args));
  };

  ChildProc shards[2] = {spawn_shard(0, 0), spawn_shard(1, 0)};
  std::vector<std::string> front_args;
  for (int s = 0; s < 2; ++s) {
    front_args.push_back("--shard");
    front_args.push_back(shards[s].name + ":127.0.0.1:" +
                         std::to_string(shards[s].port));
  }
  for (const char* a : {"--probe-interval", "0.05", "--max-backoff", "0.1",
                        "--breaker-cooldown", "0.2"}) {
    front_args.push_back(a);
  }
  ChildProc front =
      spawn_with_ports(SPX_FRONT_BIN, "front", std::move(front_args));

  auto kill_all = [&] {
    for (ChildProc& p : shards) {
      if (p.pid > 0) ::kill(p.pid, SIGKILL);
    }
    if (front.pid > 0) ::kill(front.pid, SIGKILL);
    for (ChildProc& p : shards) {
      if (p.pid > 0) ::waitpid(p.pid, nullptr, 0);
    }
    if (front.pid > 0) ::waitpid(front.pid, nullptr, 0);
  };

  if (!wait_until([&] { return http_ready(front.http_port, "/readyz"); },
                  10.0)) {
    check(false, "proc", 0, "front never became ready");
    kill_all();
    return 1;
  }

  std::vector<std::shared_ptr<const CscMatrix<real_t>>> mats;
  for (int p = 0; p < 6; ++p) {
    mats.push_back(std::make_shared<const CscMatrix<real_t>>(
        gen::grid2d_laplacian(10 + p, 10)));
  }

  TrafficStats totals;
  for (int cycle = 0; cycle < kill_cycles; ++cycle) {
    const std::uint64_t seed = static_cast<std::uint64_t>(cycle);
    const int victim = cycle % 2;
    ChildProc& v = shards[victim];
    const std::string breaker_open =
        "spx_front_breaker_transitions_total{shard=\"" + v.name +
        "\",to=\"open\"}";
    const std::string breaker_closed =
        "spx_front_breaker_transitions_total{shard=\"" + v.name +
        "\",to=\"closed\"}";
    const double opened_before = scrape(front.http_port, breaker_open);
    const double closed_before = scrape(front.http_port, breaker_closed);

    // Traffic on; give it a head start so the victim has factorized (and
    // persisted) something worth coming back warm for.
    std::vector<TrafficStats> stats(static_cast<std::size_t>(clients));
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(traffic_run, front.port,
                           "chaos-" + std::to_string(cycle), std::cref(mats),
                           rounds, nullptr,
                           &stats[static_cast<std::size_t>(c)]);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    // SIGKILL: no drain, no goodbye.  Everything the client was promised
    // must survive this.
    ::kill(v.pid, SIGKILL);
    ::waitpid(v.pid, nullptr, 0);
    v.pid = -1;

    // The breaker must be seen opening on the dead shard.
    check(wait_until(
              [&] {
                return scrape(front.http_port, breaker_open) > opened_before;
              },
              10.0),
          "proc", seed, "breaker never opened for killed " + v.name);

    // Supervised restart on the same port, same persist dir.
    v = spawn_shard(victim, v.port);
    check(wait_until(
              [&] {
                return scrape(front.http_port, breaker_closed) >
                       closed_before;
              },
              10.0),
          "proc", seed, "breaker never re-closed after " + v.name +
                            " restart");

    // Warm restart: the snapshots written before the SIGKILL replay.
    std::string ready;
    check(wait_until([&] { return http_ready(v.http_port, "/readyz",
                                             &ready); },
                     10.0) &&
              ready.find("warm=") != std::string::npos &&
              ready.find("warm=0") == std::string::npos,
          "proc", seed,
          "restarted " + v.name + " reports no warm factors: " + ready);
    check(scrape(v.http_port, "spx_shard_snapshots_loaded_total") >= 1.0,
          "proc", seed, v.name + " loaded no snapshots");

    for (auto& t : threads) t.join();
    for (const TrafficStats& s : stats) {
      totals.acked += s.acked;
      totals.retried += s.retried;
      totals.refreshed += s.refreshed;
      totals.lost += s.lost;
    }
  }

  check(totals.lost == 0, "proc", 0,
        std::to_string(totals.lost) + " acknowledged requests lost");
  check(totals.acked > 0, "proc", 0, "no traffic was acked (vacuous run)");
  check(totals.refreshed > 0, "proc", 0,
        "no refactorize was acked (opcode never exercised)");

  // Hit-rate recovery: repeats of the same inputs are served from the
  // restored warm index instead of re-factorized from cold.  A cold
  // restart (no persist dir) would show zero warm hits here by
  // construction, so > 0 is exactly "warm >= cold".
  double warm_hits = 0;
  for (const ChildProc& p : shards) {
    warm_hits += scrape(p.http_port, "spx_shard_warm_hits_total");
  }
  check(warm_hits > 0, "proc", 0,
        "restarted shards served no warm hits (hit rate did not recover)");

  std::printf("chaos proc: %d kill/restart cycles, acked %llu, refreshed "
              "%llu, retried %llu, lost %llu, warm hits %.0f\n",
              kill_cycles, static_cast<unsigned long long>(totals.acked),
              static_cast<unsigned long long>(totals.refreshed),
              static_cast<unsigned long long>(totals.retried),
              static_cast<unsigned long long>(totals.lost), warm_hits);

  // ---- phase C: corrupt every snapshot; cold start, never a crash ------
  ::kill(shards[0].pid, SIGKILL);
  ::waitpid(shards[0].pid, nullptr, 0);
  shards[0].pid = -1;
  std::uint64_t corrupted = 0;
  for (const auto& e : fs::directory_iterator(dirs[0])) {
    if (e.path().extension() != ".spxsnap") continue;
    std::fstream f(e.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    if (size <= 0) continue;
    char c = 0;
    f.seekg(size / 2);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x20);
    f.seekp(size / 2);
    f.write(&c, 1);
    ++corrupted;
  }
  check(corrupted > 0, "corrupt", 0, "no snapshots on disk to corrupt");

  shards[0] = spawn_shard(0, shards[0].port);  // must come up regardless
  std::string ready;
  check(wait_until([&] { return http_ready(shards[0].http_port, "/readyz",
                                           &ready); },
                   10.0),
        "corrupt", 0, "shard with corrupt snapshots never became ready");
  check(ready.find("warm=0") != std::string::npos, "corrupt", 0,
        "corrupt snapshots were not rejected: " + ready);
  {
    net::BlockingClient c;
    c.connect("127.0.0.1", shards[0].port);
    const auto fr = c.factorize("cold", *mats[0], Factorization::LLT);
    check(fr.status == 0, "corrupt", 0,
          "cold shard cannot factorize: " + fr.error);
  }
  std::printf("chaos corrupt: %llu snapshots rejected, cold start clean\n",
              static_cast<unsigned long long>(corrupted));

  kill_all();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t wire_seeds = smoke ? 12 : 64;

  // Watchdog: chaos must terminate.  A stuck retry loop or deadlocked
  // server would otherwise hang ctest; abort loudly instead.
  std::atomic<bool> done{false};
  std::thread watchdog([&done] {
    for (int i = 0; i < 2400; ++i) {  // 240 s ceiling
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (done.load()) return;
    }
    std::fprintf(stderr, "FAIL: chaos sweep hung (watchdog)\n");
    std::_Exit(2);
  });

  // ---- phase A ----------------------------------------------------------
  {
    net::ShardServerOptions o;
    o.name = "wire";
    o.service.num_workers = 2;
    net::ShardServer shard(o);
    std::vector<CscMatrix<real_t>> mats;
    for (int p = 0; p < 4; ++p) {
      mats.push_back(gen::grid2d_laplacian(8 + p, 8));
    }
    for (std::uint64_t seed = 0; seed < wire_seeds; ++seed) {
      wire_chaos_seed(shard, mats, seed);
    }
    std::printf("chaos wire: %llu seeds swept\n",
                static_cast<unsigned long long>(wire_seeds));
  }

  // ---- phases B + C -----------------------------------------------------
  const fs::path tmp =
      fs::temp_directory_path() /
      ("spx_chaos_" + std::to_string(static_cast<long>(::getpid())));
  fs::create_directories(tmp);
  process_chaos(smoke, tmp);
  std::error_code ec;
  fs::remove_all(tmp, ec);

  done.store(true);
  watchdog.join();
  std::printf("chaos_stress: %d failures\n", g_failures);
  return g_failures == 0 ? 0 : 1;
}
