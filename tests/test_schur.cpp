// Schur complement / partial factorization tests against dense oracles.
#include <gtest/gtest.h>

#include "core/schur.hpp"
#include "core/solver.hpp"
#include "kernels/dense.hpp"
#include "mat/generators.hpp"

namespace spx {
namespace {

// Dense oracle: S = A22 - A21 * inv(A11) * A12 via dense LU.
std::vector<real_t> dense_schur(const CscMatrix<real_t>& a,
                                std::span<const index_t> iface) {
  const index_t n = a.ncols();
  const index_t k = static_cast<index_t>(iface.size());
  const index_t m = n - k;
  std::vector<char> is_if(n, 0);
  for (const index_t i : iface) is_if[i] = 1;
  std::vector<index_t> interior;
  for (index_t i = 0; i < n; ++i) {
    if (!is_if[i]) interior.push_back(i);
  }
  // Dense blocks.
  std::vector<real_t> a11(static_cast<std::size_t>(m) * m, 0.0);
  std::vector<real_t> a12(static_cast<std::size_t>(m) * k, 0.0);
  std::vector<real_t> a21(static_cast<std::size_t>(k) * m, 0.0);
  std::vector<real_t> s(static_cast<std::size_t>(k) * k, 0.0);
  for (index_t j = 0; j < m; ++j) {
    for (index_t i = 0; i < m; ++i) {
      a11[i + static_cast<std::size_t>(j) * m] =
          a.at(interior[i], interior[j]);
    }
    for (index_t i = 0; i < k; ++i) {
      a21[i + static_cast<std::size_t>(j) * k] = a.at(iface[i], interior[j]);
    }
  }
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < m; ++i) {
      a12[i + static_cast<std::size_t>(j) * m] = a.at(interior[i], iface[j]);
    }
    for (index_t i = 0; i < k; ++i) {
      s[i + static_cast<std::size_t>(j) * k] = a.at(iface[i], iface[j]);
    }
  }
  // X = inv(A11) * A12 by LU solves.
  kernels::getrf_nopiv<real_t>(m, a11.data(), m);
  kernels::trsm_left_lower_unit<real_t>(m, k, a11.data(), m, a12.data(), m);
  kernels::trsm_left_upper<real_t>(m, k, a11.data(), m, a12.data(), m);
  // S -= A21 * X.
  kernels::gemm_nn<real_t>(k, k, m, -1.0, a21.data(), k, a12.data(), m, 1.0,
                           s.data(), k);
  return s;
}

std::vector<index_t> pick_interface(index_t n, index_t k, Rng& rng) {
  std::vector<char> used(n, 0);
  std::vector<index_t> iface;
  while (static_cast<index_t>(iface.size()) < k) {
    const index_t i = static_cast<index_t>(rng.next_below(n));
    if (!used[i]) {
      used[i] = 1;
      iface.push_back(i);
    }
  }
  return iface;
}

TEST(Schur, MatchesDenseOracleSpd) {
  Rng rng(600);
  const auto a = gen::random_spd(60, 0.1, rng);
  const auto iface = pick_interface(60, 7, rng);
  SchurComplement<real_t> sc;
  sc.compute(a, iface, Factorization::LLT);
  const auto got = sc.schur_matrix();
  const auto want = dense_schur(a, iface);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-9) << "entry " << i;
  }
}

TEST(Schur, MatchesDenseOracleLdlt) {
  Rng rng(601);
  const auto a = gen::random_sym_indefinite(70, 0.08, rng);
  const auto iface = pick_interface(70, 6, rng);
  SchurComplement<real_t> sc;
  sc.compute(a, iface, Factorization::LDLT);
  const auto got = sc.schur_matrix();
  const auto want = dense_schur(a, iface);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-8) << "entry " << i;
  }
}

TEST(Schur, MatchesDenseOracleLu) {
  Rng rng(602);
  const auto a = gen::random_unsym(60, 0.1, rng);
  const auto iface = pick_interface(60, 8, rng);
  SchurComplement<real_t> sc;
  sc.compute(a, iface, Factorization::LU);
  const auto got = sc.schur_matrix();
  const auto want = dense_schur(a, iface);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-8) << "entry " << i;
  }
}

TEST(Schur, CondensedSolveMatchesDirect) {
  // Full workflow: condense, solve the k x k system densely, expand; the
  // result must match the plain direct solve.
  const auto a = gen::grid2d_laplacian(12, 12);
  Rng rng(603);
  const auto iface = pick_interface(a.ncols(), 10, rng);
  SchurComplement<real_t> sc;
  sc.compute(a, iface, Factorization::LLT);

  std::vector<real_t> xstar(a.ncols()), b(a.ncols());
  for (auto& v : xstar) v = rng.uniform(-1, 1);
  a.multiply(xstar, b);

  auto s = sc.schur_matrix();
  auto bhat = sc.condense_rhs(b);
  // Dense solve of S x2 = bhat.
  const index_t k = sc.schur_size();
  kernels::getrf_nopiv<real_t>(k, s.data(), k);
  kernels::trsv_lower<real_t>(k, s.data(), k, true, bhat.data());
  kernels::trsv_upper<real_t>(k, s.data(), k, bhat.data());
  const auto x = sc.expand_solution(b, bhat);

  double err = 0;
  for (index_t i = 0; i < a.ncols(); ++i) {
    err = std::max(err, std::abs(x[i] - xstar[i]));
  }
  EXPECT_LT(err, 1e-9);
}

TEST(Schur, CondensedSolveLdltAndLu) {
  Rng rng(604);
  {
    const auto a = gen::random_sym_indefinite(80, 0.06, rng);
    const auto iface = pick_interface(80, 9, rng);
    SchurComplement<real_t> sc;
    sc.compute(a, iface, Factorization::LDLT);
    std::vector<real_t> xstar(a.ncols()), b(a.ncols());
    for (auto& v : xstar) v = rng.uniform(-1, 1);
    a.multiply(xstar, b);
    auto s = sc.schur_matrix();
    auto bhat = sc.condense_rhs(b);
    const index_t k = sc.schur_size();
    kernels::getrf_nopiv<real_t>(k, s.data(), k);
    kernels::trsv_lower<real_t>(k, s.data(), k, true, bhat.data());
    kernels::trsv_upper<real_t>(k, s.data(), k, bhat.data());
    const auto x = sc.expand_solution(b, bhat);
    double err = 0;
    for (index_t i = 0; i < a.ncols(); ++i) {
      err = std::max(err, std::abs(x[i] - xstar[i]));
    }
    EXPECT_LT(err, 1e-8);
  }
  {
    const auto a = gen::convection_diffusion3d(4, 4, 4, 8.0);
    const auto iface = pick_interface(a.ncols(), 5, rng);
    SchurComplement<real_t> sc;
    sc.compute(a, iface, Factorization::LU);
    std::vector<real_t> xstar(a.ncols()), b(a.ncols());
    for (auto& v : xstar) v = rng.uniform(-1, 1);
    a.multiply(xstar, b);
    auto s = sc.schur_matrix();
    auto bhat = sc.condense_rhs(b);
    const index_t k = sc.schur_size();
    kernels::getrf_nopiv<real_t>(k, s.data(), k);
    kernels::trsv_lower<real_t>(k, s.data(), k, true, bhat.data());
    kernels::trsv_upper<real_t>(k, s.data(), k, bhat.data());
    const auto x = sc.expand_solution(b, bhat);
    double err = 0;
    for (index_t i = 0; i < a.ncols(); ++i) {
      err = std::max(err, std::abs(x[i] - xstar[i]));
    }
    EXPECT_LT(err, 1e-8);
  }
}

TEST(Schur, RejectsBadInterfaceSets) {
  const auto a = gen::grid2d_laplacian(5, 5);
  SchurComplement<real_t> sc;
  std::vector<index_t> dup{1, 1};
  EXPECT_THROW(sc.compute(a, dup, Factorization::LLT), InvalidArgument);
  std::vector<index_t> oob{1, 99};
  EXPECT_THROW(sc.compute(a, oob, Factorization::LLT), InvalidArgument);
  std::vector<index_t> all(a.ncols());
  for (index_t i = 0; i < a.ncols(); ++i) all[i] = i;
  EXPECT_THROW(sc.compute(a, all, Factorization::LLT), InvalidArgument);
}

}  // namespace
}  // namespace spx
