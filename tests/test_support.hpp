// Shared helpers for the spx test suites.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/analysis.hpp"
#include "core/factor_data.hpp"
#include "core/solve.hpp"
#include "graph/ordering.hpp"
#include "mat/csc.hpp"

namespace spx::test {

/// Relative residual ||Ax - b|| / ||b|| (inf-norm).
template <typename T>
double relative_residual(const CscMatrix<T>& a, std::span<const T> x,
                         std::span<const T> b) {
  std::vector<T> ax(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, ax);
  double rnorm = 0.0, bnorm = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    rnorm = std::max(rnorm, static_cast<double>(magnitude<T>(ax[i] - b[i])));
    bnorm = std::max(bnorm, static_cast<double>(magnitude<T>(b[i])));
  }
  return bnorm > 0 ? rnorm / bnorm : rnorm;
}

/// End-to-end solve through a caller-supplied factorization routine:
/// analyze, permute, initialize, factorize (via `factorize`), solve, and
/// return the relative residual against a random RHS.
template <typename T, typename FactorizeFn>
double solve_residual(const CscMatrix<T>& a, Factorization kind,
                      FactorizeFn&& factorize,
                      const AnalysisOptions& opts = {}) {
  const Analysis an = analyze(a, opts);
  an.structure.validate();
  const CscMatrix<T> ap = permute_symmetric(a, an.perm);
  FactorData<T> f(an.structure, kind);
  f.initialize(ap);
  factorize(f);

  Rng rng(12345);
  const index_t n = a.ncols();
  std::vector<T> xref(static_cast<std::size_t>(n));
  for (auto& v : xref) v = rng.scalar<T>();
  std::vector<T> b(static_cast<std::size_t>(n));
  a.multiply(xref, b);

  std::vector<T> pb(static_cast<std::size_t>(n));
  permute_vector<T>(an.perm, b, pb);
  solve_permuted(f, std::span<T>(pb));
  std::vector<T> x(static_cast<std::size_t>(n));
  unpermute_vector<T>(an.perm, pb, x);
  return relative_residual<T>(a, x, b);
}

}  // namespace spx::test
