#include <gtest/gtest.h>

#include <sstream>

#include "mat/generators.hpp"
#include "mat/mm_io.hpp"
#include "mat/surrogates.hpp"
#include "mat/triplets.hpp"

namespace spx {
namespace {

TEST(Triplets, SumsDuplicates) {
  Triplets<real_t> t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(2, 1, 5.0);
  const auto a = t.to_csc();
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(Triplets, SortsRowsWithinColumns) {
  Triplets<real_t> t(4, 2);
  t.add(3, 0, 1.0);
  t.add(1, 0, 2.0);
  t.add(2, 0, 3.0);
  const auto a = t.to_csc();
  const auto rows = a.col_rows(0);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0] < rows[1] && rows[1] < rows[2]);
}

TEST(Csc, RejectsBadStructure) {
  // colptr not matching rowind size.
  EXPECT_THROW(CscMatrix<real_t>(2, 2, {0, 1, 3}, {0}, {1.0}),
               InvalidArgument);
  // unsorted rows.
  EXPECT_THROW(CscMatrix<real_t>(2, 1, {0, 2}, {1, 0}, {1.0, 2.0}),
               InvalidArgument);
}

TEST(Csc, MultiplyMatchesManual) {
  // [[2,1],[0,3]] * [1,2] = [4,6]
  Triplets<real_t> t(2, 2);
  t.add(0, 0, 2.0);
  t.add(0, 1, 1.0);
  t.add(1, 1, 3.0);
  const auto a = t.to_csc();
  std::vector<real_t> x{1.0, 2.0}, y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Csc, TransposeInvolution) {
  Rng rng(1);
  const auto a = gen::random_unsym(20, 0.2, rng);
  const auto att = a.transposed().transposed();
  EXPECT_EQ(att.nnz(), a.nnz());
  for (index_t j = 0; j < a.ncols(); ++j) {
    for (index_t i = 0; i < a.nrows(); ++i) {
      EXPECT_EQ(att.at(i, j), a.at(i, j));
    }
  }
}

TEST(Generators, Grid2dIsSymmetricLaplacian) {
  const auto a = gen::grid2d_laplacian(5, 4);
  EXPECT_EQ(a.nrows(), 20);
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(5, 0), -1.0);  // +y neighbour at nx=5
}

TEST(Generators, Grid3dStencilSize) {
  const auto a = gen::grid3d_laplacian(4, 4, 4);
  EXPECT_EQ(a.nrows(), 64);
  EXPECT_TRUE(a.is_symmetric());
  // Interior vertex has 7 entries in its column.
  const index_t c = (1 * 4 + 1) * 4 + 1;
  EXPECT_EQ(static_cast<int>(a.col_rows(c).size()), 7);
}

TEST(Generators, ElasticityIsSymmetricWithThreeDof) {
  const auto a = gen::elasticity3d(3, 3, 3);
  EXPECT_EQ(a.nrows(), 81);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(Generators, HelmholtzIsComplexSymmetricNotHermitian) {
  const auto a = gen::helmholtz3d(4, 4, 4);
  EXPECT_TRUE(a.is_symmetric());  // plain-transpose symmetric
  // Diagonal has nonzero imaginary part => not Hermitian.
  EXPECT_NE(a.at(0, 0).imag(), 0.0);
}

TEST(Generators, FilterIsStructurallySymmetricValueUnsym) {
  const auto a = gen::filter3d(3, 3, 3);
  EXPECT_FALSE(a.is_symmetric());
  // Structural symmetry: pattern of A equals pattern of A^T.
  const auto at = a.transposed();
  for (index_t j = 0; j < a.ncols(); ++j) {
    const auto ra = a.col_rows(j);
    const auto rb = at.col_rows(j);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t kk = 0; kk < ra.size(); ++kk) EXPECT_EQ(ra[kk], rb[kk]);
  }
}

TEST(Generators, ConvectionDiffusionUnsymmetric) {
  const auto a = gen::convection_diffusion3d(4, 4, 4, 50.0);
  EXPECT_FALSE(a.is_symmetric());
  // Diagonal dominance (stability for no-pivot LU).
  for (index_t j = 0; j < a.ncols(); ++j) {
    double off = 0.0;
    for (std::size_t kk = 0; kk < a.col_rows(j).size(); ++kk) {
      const index_t r = a.col_rows(j)[kk];
      if (r != j) off += std::abs(a.col_values(j)[kk]);
    }
    EXPECT_GE(a.at(j, j), off - 1e-12);
  }
}

TEST(Generators, RandomSpdIsSymmetric) {
  Rng rng(9);
  const auto a = gen::random_spd(30, 0.2, rng);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(MmIo, RoundTripReal) {
  Rng rng(2);
  const auto a = gen::random_unsym(15, 0.3, rng);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const auto b = read_matrix_market<real_t>(ss);
  ASSERT_EQ(b.nnz(), a.nnz());
  for (index_t j = 0; j < a.ncols(); ++j) {
    for (index_t i = 0; i < a.nrows(); ++i) {
      EXPECT_DOUBLE_EQ(b.at(i, j), a.at(i, j));
    }
  }
}

TEST(MmIo, RoundTripComplex) {
  Rng rng(3);
  const auto a = gen::random_complex_sym(10, 0.3, rng);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const auto b = read_matrix_market<complex_t>(ss);
  ASSERT_EQ(b.nnz(), a.nnz());
  EXPECT_EQ(b.at(3, 2), a.at(3, 2));
}

TEST(MmIo, ReadsSymmetricHeader) {
  const char* text =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 3 5.0\n";
  std::stringstream ss(text);
  const auto a = read_matrix_market<real_t>(ss);
  EXPECT_EQ(a.nnz(), 4);  // mirrored off-diagonal
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
}

TEST(MmIo, RejectsGarbage) {
  std::stringstream ss("not a matrix\n");
  EXPECT_THROW(read_matrix_market<real_t>(ss), InvalidArgument);
}

}  // namespace
}  // namespace spx

// ---- Table-I surrogate registry ----------------------------------------

namespace spx {
namespace {

TEST(Surrogates, RegistryHasNineInPaperOrder) {
  const auto& specs = paper_surrogates();
  ASSERT_EQ(specs.size(), 9u);
  EXPECT_EQ(specs.front().name, "afshell10");
  EXPECT_EQ(specs.back().name, "Serena");
  // Paper flop column is ascending.
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_GE(specs[i].paper_tflop, specs[i - 1].paper_tflop);
  }
  int d = 0, z = 0;
  for (const auto& s : specs) (s.prec == Precision::D ? d : z)++;
  EXPECT_EQ(d, 7);
  EXPECT_EQ(z, 2);
}

TEST(Surrogates, LookupIsCaseInsensitive) {
  EXPECT_EQ(surrogate_by_name("serena").name, "Serena");
  EXPECT_EQ(surrogate_by_name("HOOK").name, "HOOK");
  EXPECT_THROW(surrogate_by_name("nope"), InvalidArgument);
}

TEST(Surrogates, ScaleGrowsUnknownsProportionally) {
  const SurrogateSpec& flan = surrogate_by_name("Flan");   // 3D
  const SurrogateSpec& af = surrogate_by_name("afshell10");  // 2D
  // Volume scaling: x8 flops ~ x2 linear dimension in 3D, x? in 2D.
  EXPECT_EQ(scaled_dim(flan, 8.0), 2 * scaled_dim(flan, 1.0));
  EXPECT_EQ(scaled_dim(af, 4.0), 2 * scaled_dim(af, 1.0));
  EXPECT_GE(scaled_dim(flan, 1e-9), 4);  // floor guards tiny scales
}

TEST(Surrogates, PrecisionGuards) {
  EXPECT_THROW(build_surrogate_z(surrogate_by_name("Flan"), 0.1),
               InvalidArgument);
  EXPECT_THROW(build_surrogate_d(surrogate_by_name("pmlDF"), 0.1),
               InvalidArgument);
  const auto a = build_surrogate_d(surrogate_by_name("audi"), 0.02);
  EXPECT_EQ(a.ncols() % 3, 0);  // elasticity: 3 dofs per node
  EXPECT_TRUE(a.is_symmetric());
}

}  // namespace
}  // namespace spx
