// Simulator tests: device engine physics, cost-model shapes, coherence
// directory, and end-to-end scaling behaviour on the simulated Mirage
// platform (the qualitative properties the paper's figures rest on).
#include <gtest/gtest.h>

#include "core/sim_runner.hpp"
#include "mat/generators.hpp"
#include "runtime/dag_stats.hpp"
#include "runtime/data_directory.hpp"
#include "sim/calibration.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_engine.hpp"

namespace spx {
namespace {

using sim::CostModel;
using sim::DeviceEngine;
using sim::GpuGemmVariant;
using sim::PlatformSpec;

// ---------------- DeviceEngine --------------------------------------

TEST(DeviceEngine, SingleKernelRunsAtFullSpeed) {
  DeviceEngine e(2);
  e.start(0, 0.0, 1.0, 0.4);
  const auto [slot, t] = e.next_completion();
  EXPECT_EQ(slot, 0);
  EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(DeviceEngine, LowDemandKernelsOverlapPerfectly) {
  DeviceEngine e(2);
  e.start(0, 0.0, 1.0, 0.4);
  e.start(1, 0.0, 1.0, 0.4);  // total demand 0.8 <= 1: no slowdown
  EXPECT_DOUBLE_EQ(e.next_completion().second, 1.0);
}

TEST(DeviceEngine, OversubscriptionSlowsProportionally) {
  DeviceEngine e(2);
  e.start(0, 0.0, 1.0, 1.0);
  e.start(1, 0.0, 1.0, 1.0);  // total demand 2: half speed each
  EXPECT_NEAR(e.next_completion().second, 2.0, 1e-12);
}

TEST(DeviceEngine, LateArrivalIntegratesPiecewise) {
  DeviceEngine e(2);
  e.start(0, 0.0, 1.0, 1.0);
  e.advance(0.5);            // kernel 0 half done at full speed
  e.start(1, 0.5, 1.0, 1.0); // now both at half speed
  // kernel 0 needs 0.5 more alone-seconds at rate 1/2 -> finishes at 1.5.
  const auto [slot, t] = e.next_completion();
  EXPECT_EQ(slot, 0);
  EXPECT_NEAR(t, 1.5, 1e-12);
  e.advance(t);
  e.finish(0, t);
  // kernel 1 did 0.5 alone-seconds by then, finishes 0.5 later at rate 1.
  EXPECT_NEAR(e.next_completion().second, 2.0, 1e-12);
}

// ---------------- Cost model shapes (Fig. 3 ingredients) --------------

class GemmModel : public ::testing::Test {
 protected:
  PlatformSpec spec = sim::mirage();
  Analysis an = analyze(gen::grid2d_laplacian(8, 8));
  CostModel model{spec, an.structure, Factorization::LLT, {}};

  double rate(double m, GpuGemmVariant v, double gap = 1.0) {
    const double t = model.gpu_gemm_seconds(m, 128, 128, v, gap);
    return flops_gemm(m, 128, 128) / t / 1e9;
  }
};

TEST_F(GemmModel, CublasBeatsAstraBeatsSparse) {
  for (const double m : {500.0, 2000.0, 8000.0}) {
    EXPECT_GT(rate(m, GpuGemmVariant::Cublas),
              rate(m, GpuGemmVariant::Astra));
    EXPECT_GT(rate(m, GpuGemmVariant::Astra),
              rate(m, GpuGemmVariant::Sparse, 2.0));
  }
}

TEST_F(GemmModel, AstraLossIsAboutFifteenPercent) {
  const double c = rate(8000, GpuGemmVariant::Cublas);
  const double a = rate(8000, GpuGemmVariant::Astra);
  EXPECT_NEAR(a / c, 0.85, 0.03);
}

TEST_F(GemmModel, RatesGrowWithM) {
  double prev = 0.0;
  for (const double m : {128.0, 512.0, 2048.0, 8192.0}) {
    const double r = rate(m, GpuGemmVariant::Cublas);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST_F(GemmModel, LargeMAapproachesAttainablePeak) {
  // The paper's Fig. 3: the single-stream cuBLAS curve is still ~15% below
  // the square-matrix peak at M = 9000 on this skinny shape.
  EXPECT_NEAR(rate(9000, GpuGemmVariant::Cublas), spec.gpu_peak_gflops,
              spec.gpu_peak_gflops * 0.15);
}

TEST_F(GemmModel, TallerGappedPanelsAreSlower) {
  EXPECT_GT(rate(3000, GpuGemmVariant::Sparse, 1.0),
            rate(3000, GpuGemmVariant::Sparse, 2.0));
  EXPECT_GT(rate(3000, GpuGemmVariant::Sparse, 2.0),
            rate(3000, GpuGemmVariant::Sparse, 4.0));
}

TEST_F(GemmModel, LdltVariantCostsFivePercent) {
  const double s = rate(4000, GpuGemmVariant::Sparse, 1.5);
  const double l = rate(4000, GpuGemmVariant::SparseLdlt, 1.5);
  EXPECT_NEAR(l / s, 0.95, 0.01);
}

TEST_F(GemmModel, SmallKernelsUnderuseTheDevice) {
  EXPECT_LT(model.gpu_gemm_demand(128, 128), 0.2);
  EXPECT_GT(model.gpu_gemm_demand(4000, 128), 0.7);
}

TEST_F(GemmModel, ComplexArithmeticLowersCountedRate) {
  CostModel::Options zopts;
  zopts.complex_arith = true;
  CostModel zmodel(spec, an.structure, Factorization::LDLT, zopts);
  const double dz =
      zmodel.gpu_gemm_seconds(4000, 128, 128, GpuGemmVariant::Cublas, 1.0);
  const double dd =
      model.gpu_gemm_seconds(4000, 128, 128, GpuGemmVariant::Cublas, 1.0);
  EXPECT_GT(dz, 2.0 * dd);
}

TEST_F(GemmModel, CacheHotUpdatesAreFasterWhenMemoryBound) {
  // Pick any update task; hot panels can only reduce the duration.
  const SymbolicStructure& st = an.structure;
  for (index_t p = 0; p < st.num_panels(); ++p) {
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      EXPECT_LE(model.cpu_update_seconds(p, e, true, true),
                model.cpu_update_seconds(p, e, false, false));
    }
  }
}

// ---------------- DataDirectory ---------------------------------------

TEST(Directory, WriteInvalidatesOtherCopies) {
  const Analysis an = analyze(gen::grid2d_laplacian(6, 6));
  DataDirectory dir(an.structure, Factorization::LLT, 8, 2);
  EXPECT_TRUE(dir.valid_on(0, DataDirectory::kHost));
  EXPECT_FALSE(dir.valid_on(0, 0));
  dir.add_copy(0, 0);
  EXPECT_TRUE(dir.valid_on(0, 0));
  EXPECT_DOUBLE_EQ(dir.bytes_to_fetch(0, 0), 0.0);
  dir.note_write(0, 1);
  EXPECT_FALSE(dir.valid_on(0, DataDirectory::kHost));
  EXPECT_FALSE(dir.valid_on(0, 0));
  EXPECT_TRUE(dir.valid_on(0, 1));
  EXPECT_EQ(dir.source_of(0), 1);
}

TEST(Directory, LuPanelsCountBothArrays) {
  const Analysis an = analyze(gen::grid2d_laplacian(6, 6));
  DataDirectory chol(an.structure, Factorization::LLT, 8, 1);
  DataDirectory lu(an.structure, Factorization::LU, 8, 1);
  EXPECT_DOUBLE_EQ(lu.panel_bytes(0), 2.0 * chol.panel_bytes(0));
}

// ---------------- end-to-end simulated scaling -------------------------

class SimScaling : public ::testing::Test {
 protected:
  Analysis an = analyze(gen::grid3d_laplacian(14, 14, 14));

  RunStats run(const std::string& sched, int cores, int gpus,
               int streams = 1) {
    SimRunConfig cfg;
    cfg.scheduler = sched;
    cfg.cores = cores;
    cfg.gpus = gpus;
    cfg.streams_per_gpu = streams;
    // The test problem is tiny compared to the paper's matrices; lower the
    // offload threshold so GPUs see work at this scale.
    cfg.gpu_min_flops = 2e5;
    return simulate_run(an, Factorization::LLT, cfg);
  }
};

TEST_F(SimScaling, AllSchedulersCompleteAndAgreeOnWork) {
  for (const char* s : {"native", "starpu", "starpu-eager", "parsec"}) {
    const RunStats st = run(s, 4, 0);
    EXPECT_GT(st.makespan, 0.0) << s;
    EXPECT_GT(st.gflops, 0.0) << s;
    EXPECT_EQ(st.tasks_gpu, 0) << s;
  }
}

TEST_F(SimScaling, MoreCoresNeverSlower) {
  for (const char* s : {"native", "starpu", "parsec"}) {
    const double t1 = run(s, 1, 0).makespan;
    const double t6 = run(s, 6, 0).makespan;
    const double t12 = run(s, 12, 0).makespan;
    EXPECT_LT(t6, t1 * 0.9) << s;
    EXPECT_LE(t12, t6 * 1.05) << s;
  }
}

TEST_F(SimScaling, TwelveCoreSpeedupIsSubstantial) {
  const double t1 = run("parsec", 1, 0).makespan;
  const double t12 = run("parsec", 12, 0).makespan;
  EXPECT_GT(t1 / t12, 4.0);  // decent strong scaling at this tiny size
}

TEST_F(SimScaling, ParsecAtLeastMatchesStarpuOnManyCores) {
  // Paper Fig. 2: PaRSEC's data-reuse policy gives it the edge over
  // StarPU on multicore runs.
  const double parsec = run("parsec", 12, 0).makespan;
  const double starpu = run("starpu", 12, 0).makespan;
  EXPECT_LE(parsec, starpu * 1.02);
}

TEST_F(SimScaling, GpusSpeedUpBigProblems) {
  // Needs a problem with enough large updates for offload to pay (paper
  // Fig. 4: the small afshell10 gains nothing); 64k unknowns suffices for
  // a clear >25% win.
  const Analysis big = analyze(gen::grid3d_laplacian(40, 40, 40));
  for (const char* s : {"starpu", "parsec"}) {
    SimRunConfig cfg;
    cfg.scheduler = s;
    cfg.cores = 12;
    const double cpu = simulate_run(big, Factorization::LLT, cfg).makespan;
    cfg.gpus = 1;
    const RunStats g1 = simulate_run(big, Factorization::LLT, cfg);
    cfg.gpus = 3;
    cfg.streams_per_gpu = s[0] == 'p' ? 3 : 1;
    const RunStats g3 = simulate_run(big, Factorization::LLT, cfg);
    EXPECT_LT(g1.makespan, cpu * 0.8) << s;
    EXPECT_LE(g3.makespan, g1.makespan * 1.05) << s;
    EXPECT_GT(g1.tasks_gpu, 0) << s;
    EXPECT_GT(g1.bytes_h2d, 0.0) << s;
  }
}

TEST_F(SimScaling, ParsecStreamsHelp) {
  // Paper Fig. 4: PaRSEC with 3 streams >= 1 stream (small kernels
  // overlap on the device).
  const double s1 = run("parsec", 12, 3, 1).makespan;
  const double s3 = run("parsec", 12, 3, 3).makespan;
  EXPECT_LE(s3, s1 * 1.02);
}

TEST_F(SimScaling, CacheModelRecordsHits) {
  const RunStats parsec = run("parsec", 12, 0);
  const RunStats starpu = run("starpu", 12, 0);
  EXPECT_GT(parsec.cache_queries, 0);
  // PaRSEC's locality queues should produce a higher hit rate than
  // StarPU's central placement.
  const double hp = double(parsec.cache_hits) / parsec.cache_queries;
  const double hs = double(starpu.cache_hits) / starpu.cache_queries;
  EXPECT_GT(hp, hs);
}

TEST_F(SimScaling, DeterministicRepeats) {
  const double a = run("parsec", 6, 2, 3).makespan;
  const double b = run("parsec", 6, 2, 3).makespan;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SimSmall, LdltStrategyGapMatchesPaper) {
  // Paper Fig. 2 (PmlDF/Serena): the generic runtimes lose ground on LDLT
  // because their fused update kernel rescales per task, while native
  // prescales once per panel.  Test the *relative* penalty: parsec's
  // LDLT/LLT time ratio must exceed native's.
  const Analysis an = analyze(gen::grid3d_laplacian(12, 12, 12));
  SimRunConfig native_cfg, parsec_cfg;
  native_cfg.scheduler = "native";
  parsec_cfg.scheduler = "parsec";
  native_cfg.cores = parsec_cfg.cores = 12;
  const double n_ldlt =
      simulate_run(an, Factorization::LDLT, native_cfg).makespan;
  const double n_llt =
      simulate_run(an, Factorization::LLT, native_cfg).makespan;
  const double p_ldlt =
      simulate_run(an, Factorization::LDLT, parsec_cfg).makespan;
  const double p_llt =
      simulate_run(an, Factorization::LLT, parsec_cfg).makespan;
  EXPECT_GT(p_ldlt / p_llt, n_ldlt / n_llt);
}

TEST(SimSmall, AfshellLikeSmallProblemGainsLittleFromGpus) {
  // Paper Fig. 4: afshell10 (2D, 0.12 TFlop) is too small to benefit.
  const Analysis an = analyze(gen::grid2d_laplacian(120, 120));
  SimRunConfig cpu, gpu;
  cpu.scheduler = gpu.scheduler = "parsec";
  cpu.cores = gpu.cores = 12;
  gpu.gpus = 3;
  gpu.streams_per_gpu = 3;
  const double tc = simulate_run(an, Factorization::LLT, cpu).makespan;
  const double tg = simulate_run(an, Factorization::LLT, gpu).makespan;
  EXPECT_GT(tg, tc * 0.7);  // at best a marginal gain
}

}  // namespace
}  // namespace spx

// ---- DAG statistics and host calibration --------------------------------

namespace spx {
namespace {

TEST(DagStats, FineDecompositionHasShorterCriticalPath) {
  const Analysis an = analyze(gen::grid3d_laplacian(10, 10, 10));
  sim::CostModel model(sim::mirage(), an.structure, Factorization::LLT, {});
  const DagStats fine =
      dag_stats(an.structure, model, Decomposition::TwoLevel);
  const DagStats oned =
      dag_stats(an.structure, model, Decomposition::OneDRight);
  // Splitting updates off the 1D tasks is exactly what shortens the
  // critical path (paper §V: "dynamically splits update tasks, so that
  // the critical path of the algorithm can be reduced").
  EXPECT_LT(fine.critical_path, oned.critical_path);
  EXPECT_GT(fine.avg_parallelism(), oned.avg_parallelism());
  // Total work identical up to the panel/update partition.
  EXPECT_NEAR(fine.total_work, oned.total_work, 1e-9 * oned.total_work);
  EXPECT_GT(fine.num_tasks, oned.num_tasks);
}

TEST(DagStats, LeftAndRightOneDCoverSameWork) {
  const Analysis an = analyze(gen::grid3d_laplacian(8, 8, 8));
  sim::CostModel model(sim::mirage(), an.structure, Factorization::LLT, {});
  const DagStats r = dag_stats(an.structure, model, Decomposition::OneDRight);
  const DagStats l = dag_stats(an.structure, model, Decomposition::OneDLeft);
  EXPECT_NEAR(r.total_work, l.total_work, 1e-9 * r.total_work);
  EXPECT_EQ(r.num_tasks, l.num_tasks);
  EXPECT_GT(l.critical_path, 0.0);
}

TEST(Calibration, ProducesPlausibleHostSpec) {
  sim::CalibrationReport rep;
  const sim::PlatformSpec host = sim::calibrate_host(&rep, 1);
  EXPECT_GT(rep.gemm_large_gflops, 0.1);
  EXPECT_GT(rep.stream_bw, 1e8);
  EXPECT_GT(host.cpu_peak_gflops, 0.1);
  EXPECT_GT(host.cpu_half_dim, 0.0);
  EXPECT_GT(host.cpu_panel_efficiency, 0.05);
  EXPECT_LE(host.cpu_panel_efficiency, 1.0);
  EXPECT_EQ(host.max_gpus, 0);
}

}  // namespace
}  // namespace spx

// ---- device memory pressure ---------------------------------------------

namespace spx {
namespace {

TEST(DeviceMemory, TinyCapacityForcesEvictions) {
  const Analysis an = analyze(gen::grid3d_laplacian(16, 16, 16));
  sim::PlatformSpec spec = sim::mirage();
  // Room for only a few panels: every offloaded update churns the LRU.
  spec.gpu_memory_bytes = 3e5;
  SimRunConfig small, big;
  small.scheduler = big.scheduler = "parsec";
  small.gpus = big.gpus = 1;
  small.streams_per_gpu = big.streams_per_gpu = 2;
  small.gpu_min_flops = big.gpu_min_flops = 1e5;
  small.platform = spec;
  const RunStats pressured = simulate_run(an, Factorization::LLT, small);
  const RunStats roomy = simulate_run(an, Factorization::LLT, big);
  EXPECT_GT(pressured.gpu_evictions, 0);
  EXPECT_EQ(roomy.gpu_evictions, 0);
  // Evictions force re-transfers: more H2D traffic under pressure.
  EXPECT_GE(pressured.bytes_h2d, roomy.bytes_h2d);
  // And they cannot make the run faster.
  EXPECT_GE(pressured.makespan, roomy.makespan * 0.999);
}

}  // namespace
}  // namespace spx

// ---- merged subtrees interacting with GPUs in the simulator --------------

namespace spx {
namespace {

TEST(SimSubtree, GroupedTasksCoexistWithGpus) {
  const Analysis an = analyze(gen::grid3d_laplacian(12, 12, 12));
  SimRunConfig cfg;
  cfg.scheduler = "parsec";
  cfg.cores = 6;
  cfg.gpus = 2;
  cfg.streams_per_gpu = 2;
  cfg.gpu_min_flops = 2e5;
  cfg.subtree_merge_seconds = 1e-3;
  const RunStats merged = simulate_run(an, Factorization::LLT, cfg);
  cfg.subtree_merge_seconds = 0.0;
  const RunStats plain = simulate_run(an, Factorization::LLT, cfg);
  EXPECT_GT(merged.gflops, 0.0);
  EXPECT_GT(merged.tasks_gpu, 0);
  // Merged bottoms shift some updates from GPU-eligible tasks into CPU
  // subtree tasks, but the result must stay in the same ballpark.
  EXPECT_LT(merged.makespan, plain.makespan * 1.5);
  EXPECT_GT(merged.makespan, plain.makespan * 0.5);
}

TEST(SimSubtree, GroupedLdltAndLuComplete) {
  const Analysis an = analyze(gen::grid2d_laplacian(20, 20));
  for (const Factorization kind :
       {Factorization::LDLT, Factorization::LU}) {
    SimRunConfig cfg;
    cfg.scheduler = "parsec";
    cfg.cores = 4;
    cfg.subtree_merge_seconds = 1e-3;
    EXPECT_GT(simulate_run(an, kind, cfg).gflops, 0.0);
  }
}

}  // namespace
}  // namespace spx
