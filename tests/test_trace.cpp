// Trace-recording tests: coverage, ordering, JSON export, and agreement
// between recorded busy time and driver statistics.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "core/sim_runner.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"
#include "runtime/flop_costs.hpp"
#include "runtime/parsec_scheduler.hpp"
#include "runtime/real_driver.hpp"
#include "runtime/trace.hpp"
#include "sim/cost_model.hpp"
#include "sim/sim_driver.hpp"

namespace spx {
namespace {

TEST(Trace, SimRecordsEveryTask) {
  const Analysis an = analyze(gen::grid2d_laplacian(14, 14));
  TaskTable table(an.structure, Factorization::LLT);
  sim::CostModel model(sim::mirage(), an.structure, Factorization::LLT, {});
  Machine machine(4);
  ParsecScheduler sched(table, machine, model);
  TraceRecorder trace;
  sim::SimOptions opts;
  opts.trace = &trace;
  const RunStats st = sim::simulate(sched, machine, table, model,
                                    an.total_flops(Factorization::LLT),
                                    opts);
  EXPECT_EQ(trace.num_events(),
            static_cast<std::size_t>(table.num_tasks()));
  // Events on a resource must not overlap, and busy time must match.
  std::vector<double> busy(machine.num_resources(), 0.0);
  std::vector<double> last_end(machine.num_resources(), 0.0);
  auto events = trace.events();
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  for (const auto& e : events) {
    ASSERT_GE(e.start, last_end[e.resource] - 1e-12);
    ASSERT_LE(e.end, st.makespan + 1e-12);
    last_end[e.resource] = e.end;
    busy[e.resource] += e.end - e.start;
  }
  for (int r = 0; r < machine.num_resources(); ++r) {
    EXPECT_NEAR(busy[r], st.busy[r], 1e-9);
  }
}

TEST(Trace, SimRecordsTransfersWithGpus) {
  const Analysis an = analyze(gen::grid3d_laplacian(10, 10, 10));
  TaskTable table(an.structure, Factorization::LLT);
  sim::CostModel::Options mo;
  sim::CostModel model(sim::mirage(), an.structure, Factorization::LLT, mo);
  Machine machine(4, 1, 2);
  ParsecOptions popts;
  popts.gpu_min_flops = 1e5;
  ParsecScheduler sched(table, machine, model, popts);
  TraceRecorder trace;
  sim::SimOptions opts;
  opts.trace = &trace;
  opts.prefetch = false;
  sim::simulate(sched, machine, table, model,
                an.total_flops(Factorization::LLT), opts);
  EXPECT_GT(trace.num_transfers(), 0u);
}

TEST(Trace, RealDriverRecords) {
  const auto a = gen::grid2d_laplacian(12, 12);
  const Analysis an = analyze(a);
  FactorData<real_t> f(an.structure, Factorization::LLT);
  f.initialize(permute_symmetric(a, an.perm));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(3);
  FlopCosts costs(table);
  ParsecScheduler sched(table, machine, costs);
  TraceRecorder trace;
  RealDriverOptions opts;
  opts.instr.trace = &trace;
  execute_real(sched, machine, f, opts);
  EXPECT_EQ(trace.num_events(),
            static_cast<std::size_t>(table.num_tasks()));
}

TEST(Trace, ChromeJsonWellFormed) {
  const Analysis an = analyze(gen::grid2d_laplacian(8, 8));
  TaskTable table(an.structure, Factorization::LLT);
  sim::CostModel model(sim::mirage(), an.structure, Factorization::LLT, {});
  Machine machine(2);
  ParsecScheduler sched(table, machine, model);
  TraceRecorder trace;
  sim::SimOptions opts;
  opts.trace = &trace;
  sim::simulate(sched, machine, table, model, 1e9, opts);
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Balanced braces and one record per event.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(json.begin(), json.end(), '\n')) -
                3,  // header + footer lines
            trace.num_events() - 1);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(Trace, ClearResets) {
  TraceRecorder trace;
  trace.record(0, {TaskKind::Panel, 3, -1}, 0.0, 1.0);
  EXPECT_EQ(trace.num_events(), 1u);
  trace.clear();
  EXPECT_EQ(trace.num_events(), 0u);
}

TEST(Trace, JsonEscape) {
  EXPECT_EQ(json_escape("plain p12 e3"), "plain p12 e3");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny\tz\r"), "x\\ny\\tz\\r");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
}

TEST(Trace, JsonKeepsSubMicrosecondPrecisionPastOneSecond) {
  // Regression: default 6-significant-digit float formatting rounded ts
  // to whole milliseconds once start exceeded ~1 s.
  TraceRecorder trace;
  trace.record(0, {TaskKind::Panel, 1, -1}, 2.0000005, 2.0000015);
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ts\": 2000000.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\": 1.000"), std::string::npos) << json;
  // Stream formatting state must be restored after export.
  std::ostringstream probe;
  trace.write_chrome_json(probe);
  probe << 0.5;
  EXPECT_NE(probe.str().find("0.5"), std::string::npos);
  EXPECT_EQ(probe.str().find("0.500000"), std::string::npos);
}

// Minimal JSON reader (objects, arrays, strings with escapes, numbers,
// literals) -- enough to prove the export round-trips through a real
// parser instead of eyeballing substrings.
class MiniJsonReader {
 public:
  explicit MiniJsonReader(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse() {
    skip_ws();
    const bool ok = value();
    skip_ws();
    return ok && p_ == end_;
  }
  int events() const { return events_; }
  const std::vector<double>& ts_values() const { return ts_; }

 private:
  void skip_ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\n' || *p_ == '\r' ||
                         *p_ == '\t')) {
      ++p_;
    }
  }
  bool value() {
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string(nullptr);
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number(nullptr);
    }
  }
  bool object() {
    ++p_;  // {
    ++events_;
    skip_ws();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (p_ >= end_ || *p_ != ':') return false;
      ++p_;
      skip_ws();
      if (key == "ts") {
        double v = 0;
        if (!number(&v)) return false;
        ts_.push_back(v);
      } else if (!value()) {
        return false;
      }
      skip_ws();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      break;
    }
    if (p_ >= end_ || *p_ != '}') return false;
    ++p_;
    return true;
  }
  bool array() {
    ++p_;  // [
    skip_ws();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        skip_ws();
        continue;
      }
      break;
    }
    if (p_ >= end_ || *p_ != ']') return false;
    ++p_;
    return true;
  }
  bool string(std::string* out) {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
        if (*p_ == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ >= end_ || !std::isxdigit(static_cast<unsigned char>(
                                  *p_))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(*p_) ==
                   std::string::npos) {
          return false;
        }
        ++p_;
        continue;
      }
      if (static_cast<unsigned char>(*p_) < 0x20) return false;  // raw ctl
      if (out != nullptr) out->push_back(*p_);
      ++p_;
    }
    if (p_ >= end_) return false;
    ++p_;
    return true;
  }
  bool number(double* out) {
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                         *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                         *p_ == '-' || *p_ == '+')) {
      digits = true;
      ++p_;
    }
    if (!digits) return false;
    if (out != nullptr) *out = std::strtod(start, nullptr);
    return true;
  }
  bool literal(const char* lit) {
    for (const char* c = lit; *c != '\0'; ++c, ++p_) {
      if (p_ >= end_ || *p_ != *c) return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  int events_ = 0;
  std::vector<double> ts_;
};

TEST(Trace, ChromeJsonRoundTripsThroughParser) {
  TraceRecorder trace;
  // Names include every escaped class via the panel/edge digits plus the
  // long-run timestamps that used to lose precision.
  trace.record(0, {TaskKind::Panel, 7, -1}, 0.25, 0.5);
  trace.record(1, {TaskKind::Update, 7, 2}, 1.0000005, 1.25);
  trace.record(0, {TaskKind::Subtree, 3, -1}, 3.5, 4.75);
  trace.record_transfer(0, 9, 0.125, 0.375);
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();  // keep alive: reader holds pointers
  MiniJsonReader reader(json);
  ASSERT_TRUE(reader.parse()) << json;
  // Outer object + one object per event and transfer.
  EXPECT_EQ(reader.events(), 5);
  ASSERT_EQ(reader.ts_values().size(), 4u);
  EXPECT_NEAR(reader.ts_values()[0], 0.25 * 1e6, 1e-6);
  EXPECT_NEAR(reader.ts_values()[1], 1.0000005 * 1e6, 1e-3);
  EXPECT_NEAR(reader.ts_values()[2], 3.5 * 1e6, 1e-6);
  EXPECT_NEAR(reader.ts_values()[3], 0.125 * 1e6, 1e-6);
}

}  // namespace
}  // namespace spx
