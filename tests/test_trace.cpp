// Trace-recording tests: coverage, ordering, JSON export, and agreement
// between recorded busy time and driver statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "core/sim_runner.hpp"
#include "core/solver.hpp"
#include "mat/generators.hpp"
#include "runtime/flop_costs.hpp"
#include "runtime/parsec_scheduler.hpp"
#include "runtime/real_driver.hpp"
#include "runtime/trace.hpp"
#include "sim/cost_model.hpp"
#include "sim/sim_driver.hpp"

namespace spx {
namespace {

TEST(Trace, SimRecordsEveryTask) {
  const Analysis an = analyze(gen::grid2d_laplacian(14, 14));
  TaskTable table(an.structure, Factorization::LLT);
  sim::CostModel model(sim::mirage(), an.structure, Factorization::LLT, {});
  Machine machine(4);
  ParsecScheduler sched(table, machine, model);
  TraceRecorder trace;
  sim::SimOptions opts;
  opts.trace = &trace;
  const RunStats st = sim::simulate(sched, machine, table, model,
                                    an.total_flops(Factorization::LLT),
                                    opts);
  EXPECT_EQ(trace.num_events(),
            static_cast<std::size_t>(table.num_tasks()));
  // Events on a resource must not overlap, and busy time must match.
  std::vector<double> busy(machine.num_resources(), 0.0);
  std::vector<double> last_end(machine.num_resources(), 0.0);
  auto events = trace.events();
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  for (const auto& e : events) {
    ASSERT_GE(e.start, last_end[e.resource] - 1e-12);
    ASSERT_LE(e.end, st.makespan + 1e-12);
    last_end[e.resource] = e.end;
    busy[e.resource] += e.end - e.start;
  }
  for (int r = 0; r < machine.num_resources(); ++r) {
    EXPECT_NEAR(busy[r], st.busy[r], 1e-9);
  }
}

TEST(Trace, SimRecordsTransfersWithGpus) {
  const Analysis an = analyze(gen::grid3d_laplacian(10, 10, 10));
  TaskTable table(an.structure, Factorization::LLT);
  sim::CostModel::Options mo;
  sim::CostModel model(sim::mirage(), an.structure, Factorization::LLT, mo);
  Machine machine(4, 1, 2);
  ParsecOptions popts;
  popts.gpu_min_flops = 1e5;
  ParsecScheduler sched(table, machine, model, popts);
  TraceRecorder trace;
  sim::SimOptions opts;
  opts.trace = &trace;
  opts.prefetch = false;
  sim::simulate(sched, machine, table, model,
                an.total_flops(Factorization::LLT), opts);
  EXPECT_GT(trace.num_transfers(), 0u);
}

TEST(Trace, RealDriverRecords) {
  const auto a = gen::grid2d_laplacian(12, 12);
  const Analysis an = analyze(a);
  FactorData<real_t> f(an.structure, Factorization::LLT);
  f.initialize(permute_symmetric(a, an.perm));
  TaskTable table(an.structure, Factorization::LLT);
  Machine machine(3);
  FlopCosts costs(table);
  ParsecScheduler sched(table, machine, costs);
  TraceRecorder trace;
  RealDriverOptions opts;
  opts.trace = &trace;
  execute_real(sched, machine, f, opts);
  EXPECT_EQ(trace.num_events(),
            static_cast<std::size_t>(table.num_tasks()));
}

TEST(Trace, ChromeJsonWellFormed) {
  const Analysis an = analyze(gen::grid2d_laplacian(8, 8));
  TaskTable table(an.structure, Factorization::LLT);
  sim::CostModel model(sim::mirage(), an.structure, Factorization::LLT, {});
  Machine machine(2);
  ParsecScheduler sched(table, machine, model);
  TraceRecorder trace;
  sim::SimOptions opts;
  opts.trace = &trace;
  sim::simulate(sched, machine, table, model, 1e9, opts);
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Balanced braces and one record per event.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(json.begin(), json.end(), '\n')) -
                3,  // header + footer lines
            trace.num_events() - 1);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(Trace, ClearResets) {
  TraceRecorder trace;
  trace.record(0, {TaskKind::Panel, 3, -1}, 0.0, 1.0);
  EXPECT_EQ(trace.num_events(), 1u);
  trace.clear();
  EXPECT_EQ(trace.num_events(), 0u);
}

}  // namespace
}  // namespace spx
