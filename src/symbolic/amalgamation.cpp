#include "symbolic/amalgamation.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace spx {
namespace {

// For a parent-child pair in the supernode forest the merged row structure
// is exactly the parent's (rows(c) \ cols(p) is a subset of rows(p)), so a
// merge costs:
//   extra = w_c * (w_p + |rows(p)| - |rows(c)|)  >= 0
// extra explicit zeros and needs no set arithmetic at all.
size_type merge_cost(size_type wc, size_type rc, size_type wp,
                     size_type rp) {
  return wc * (wp + rp - rc);
}

}  // namespace

AmalgamationResult amalgamate(const SupernodePartition& part,
                              const SupernodeForest& forest,
                              const AmalgamationOptions& opts) {
  const index_t nsn = part.count();
  const index_t n =
      nsn == 0 ? 0 : part.first_col[static_cast<std::size_t>(nsn)];

  // Mutable merge state.
  std::vector<size_type> width(static_cast<std::size_t>(nsn));
  std::vector<size_type> nrows(static_cast<std::size_t>(nsn));
  std::vector<index_t> parent = forest.parent;
  std::vector<char> alive(static_cast<std::size_t>(nsn), 1);
  // Members of each alive root, ascending original supernode id.
  std::vector<std::vector<index_t>> members(static_cast<std::size_t>(nsn));
  for (index_t s = 0; s < nsn; ++s) {
    width[s] = part.width(s);
    nrows[s] = static_cast<size_type>(forest.rows[s].size());
    members[s] = {s};
  }
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(nsn));
  for (index_t s = 0; s < nsn; ++s) {
    if (parent[s] != -1) children[parent[s]].push_back(s);
  }

  AmalgamationResult res;
  res.nnz_before = supernodal_nnz(part, forest);

  // Supernodes overlapping the protected tail accept no merges (their
  // column set must stay exactly the caller's Schur block).
  const index_t protect_from =
      opts.protect_tail > 0 ? n - opts.protect_tail : n;
  const auto protected_parent = [&](index_t c) {
    const index_t p = parent[c];
    return p != -1 && part.first_col[p + 1] > protect_from;
  };

  auto do_merge = [&](index_t c) {
    const index_t p = parent[c];
    SPX_DEBUG_ASSERT(p != -1 && alive[c] && alive[p]);
    res.extra_fill += merge_cost(width[c], nrows[c], width[p], nrows[p]);
    width[p] += width[c];
    alive[c] = 0;
    // Splice members keeping ascending id order (all of c's ids < p's
    // first id is NOT guaranteed after chained merges, so do a real merge).
    std::vector<index_t> merged;
    merged.reserve(members[c].size() + members[p].size());
    std::merge(members[c].begin(), members[c].end(), members[p].begin(),
               members[p].end(), std::back_inserter(merged));
    members[p] = std::move(merged);
    members[c].clear();
    for (const index_t gc : children[c]) {
      parent[gc] = p;
      children[p].push_back(gc);
    }
    children[c].clear();
    children[p].erase(
        std::remove(children[p].begin(), children[p].end(), c),
        children[p].end());
  };

  // Phase 1: unconditional merges of too-narrow supernodes, bottom-up.
  // (Ascending id order is bottom-up because supernodes are postordered.)
  for (index_t s = 0; s < nsn; ++s) {
    if (alive[s] && parent[s] != -1 && !protected_parent(s) &&
        width[s] < static_cast<size_type>(opts.min_width)) {
      do_merge(s);
    }
  }

  // Phase 2: budgeted merges, cheapest extra fill first, lazy-stale queue.
  if (opts.fill_ratio > 0.0) {
    const size_type budget = static_cast<size_type>(
        opts.fill_ratio * static_cast<double>(res.nnz_before));
    struct Cand {
      size_type cost;
      index_t child;
      bool operator>(const Cand& o) const { return cost > o.cost; }
    };
    std::priority_queue<Cand, std::vector<Cand>, std::greater<Cand>> pq;
    auto push_candidate = [&](index_t c) {
      if (!alive[c] || parent[c] == -1 || protected_parent(c)) return;
      const index_t p = parent[c];
      pq.push({merge_cost(width[c], nrows[c], width[p], nrows[p]), c});
    };
    for (index_t s = 0; s < nsn; ++s) push_candidate(s);
    while (!pq.empty()) {
      const Cand cand = pq.top();
      pq.pop();
      const index_t c = cand.child;
      if (!alive[c] || parent[c] == -1 || protected_parent(c)) continue;
      const index_t p = parent[c];
      const size_type cost = merge_cost(width[c], nrows[c], width[p],
                                        nrows[p]);
      if (cost != cand.cost) {  // stale: parent grew since insertion
        pq.push({cost, c});
        continue;
      }
      if (res.extra_fill + cost > budget) break;
      // Remember p's children before the merge mutates them.
      const std::vector<index_t> siblings = children[p];
      do_merge(c);
      // Costs of p's remaining children changed; refresh lazily.
      for (const index_t sib : siblings) {
        if (sib != c) push_candidate(sib);
      }
      push_candidate(p);
    }
  }

  // Renumber: emit alive supernodes in ascending id order (topological:
  // a root's id exceeds all of its descendants' ids), columns of members
  // in ascending order.
  std::vector<index_t> new_to_old;
  new_to_old.reserve(static_cast<std::size_t>(n));
  res.part.first_col.push_back(0);
  std::vector<index_t> alive_rank(static_cast<std::size_t>(nsn), -1);
  index_t nalive = 0;
  for (index_t s = 0; s < nsn; ++s) {
    if (!alive[s]) continue;
    alive_rank[s] = nalive++;
    for (const index_t m : members[s]) {
      for (index_t j = part.first_col[m]; j < part.first_col[m + 1]; ++j) {
        new_to_old.push_back(j);
      }
    }
    res.part.first_col.push_back(static_cast<index_t>(new_to_old.size()));
  }
  res.renumber = Ordering::from_new_to_old(std::move(new_to_old));

  res.part.sn_of_col.resize(static_cast<std::size_t>(n));
  for (index_t s = 0; s < nalive; ++s) {
    for (index_t j = res.part.first_col[s]; j < res.part.first_col[s + 1];
         ++j) {
      res.part.sn_of_col[j] = s;
    }
  }

  // Rebuild forest in the new numbering.  Row structure of a merged
  // supernode is its root's (see merge_cost comment); remap + resort.
  res.forest.parent.assign(static_cast<std::size_t>(nalive), -1);
  res.forest.rows.resize(static_cast<std::size_t>(nalive));
  for (index_t s = 0; s < nsn; ++s) {
    if (!alive[s]) continue;
    const index_t ns = alive_rank[s];
    if (parent[s] != -1) {
      SPX_DEBUG_ASSERT(alive[parent[s]]);
      res.forest.parent[ns] = alive_rank[parent[s]];
    }
    std::vector<index_t> rows;
    rows.reserve(forest.rows[s].size());
    for (const index_t r : forest.rows[s]) {
      rows.push_back(res.renumber.old_to_new[r]);
    }
    std::sort(rows.begin(), rows.end());
    res.forest.rows[ns] = std::move(rows);
  }
  res.nnz_after = supernodal_nnz(res.part, res.forest);
  SPX_ASSERT(res.nnz_after == res.nnz_before + res.extra_fill);
  return res;
}

}  // namespace spx
