// Elimination tree and column counts of the Cholesky factor.
//
// All routines operate on the *permuted* symmetric pattern (a Graph whose
// vertex k is the k-th pivot).  The elimination tree drives everything in
// a supernodal solver: supernode detection, the task DAG, and the
// contribution edges between panels (paper §III).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/ordering.hpp"

namespace spx {

/// Liu's elimination-tree algorithm with path compression.
/// parent[k] = -1 for roots.  O(nnz * alpha(n)).
std::vector<index_t> elimination_tree(const Graph& g);

/// Postorder of the forest; children visited before parents, subtrees
/// contiguous.  Returns post[k] = k-th vertex in postorder.
std::vector<index_t> tree_postorder(const std::vector<index_t>& parent);

/// Column counts of L (including the diagonal) via the Gilbert--Ng--Peyton
/// skeleton algorithm, O(nnz * alpha(n)).  `parent` and `post` must come
/// from the two functions above on the same graph.
std::vector<index_t> cholesky_col_counts(const Graph& g,
                                         const std::vector<index_t>& parent,
                                         const std::vector<index_t>& post);

/// Composes two orderings: first apply `inner`, then `outer` on the result.
/// combined.old_to_new[i] = outer.old_to_new[inner.old_to_new[i]].
Ordering compose(const Ordering& inner, const Ordering& outer);

}  // namespace spx
