#include "symbolic/structure.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spx {

size_type SymbolicStructure::num_update_tasks() const {
  size_type total = 0;
  for (const auto& t : targets) total += static_cast<size_type>(t.size());
  return total;
}

double SymbolicStructure::panel_task_flops(index_t p,
                                           Factorization kind) const {
  const Panel& panel = panels[p];
  const double w = panel.width();
  const double below = panel.nrows_below();
  switch (kind) {
    case Factorization::LLT:
      return flops_potrf(w) + flops_trsm(w, below);
    case Factorization::LDLT:
      // Diagonal LDL^T + solve + column scaling by D^{-1}.
      return flops_ldlt(w) + flops_trsm(w, below) + flops_scale(below, w);
    case Factorization::LU:
      // Both the L and the U side get a TRSM.
      return flops_getrf(w) + 2.0 * flops_trsm(w, below);
  }
  return 0.0;
}

double SymbolicStructure::update_task_flops(index_t p, const UpdateEdge& e,
                                            Factorization kind) const {
  const Panel& panel = panels[p];
  const double w = panel.width();
  double total = 0.0;
  for (index_t b = e.first_block; b < e.last_block; ++b) {
    const Block& blk = panel.blocks[b];
    const double m = panel.nrows - blk.offset;  // trailing rows incl. blk
    const double nb = blk.height();
    total += flops_gemm(m, nb, w);
    if (kind == Factorization::LU) {
      total += flops_gemm(m, nb, w);  // the U-side update
    } else if (kind == Factorization::LDLT) {
      total += flops_scale(nb, w);  // form D * L_b^T on the fly
    }
  }
  return total;
}

double SymbolicStructure::total_flops(Factorization kind) const {
  double total = 0.0;
  for (index_t p = 0; p < num_panels(); ++p) {
    total += panel_task_flops(p, kind);
    for (const UpdateEdge& e : targets[p]) {
      total += update_task_flops(p, e, kind);
    }
  }
  return total;
}

void SymbolicStructure::validate() const {
  const index_t np = num_panels();
  const index_t n = num_cols();
  SPX_ASSERT(static_cast<index_t>(targets.size()) == np);
  SPX_ASSERT(static_cast<index_t>(in_degree.size()) == np);
  std::vector<index_t> in_check(static_cast<std::size_t>(np), 0);
  index_t col = 0;
  size_type storage = 0;
  for (index_t p = 0; p < np; ++p) {
    const Panel& panel = panels[p];
    SPX_ASSERT(panel.col_begin == col && panel.col_end > panel.col_begin);
    col = panel.col_end;
    SPX_ASSERT(!panel.blocks.empty());
    const Block& diag = panel.blocks.front();
    SPX_ASSERT(diag.row_begin == panel.col_begin &&
               diag.row_end == panel.col_end && diag.facing_panel == p &&
               diag.offset == 0);
    index_t offset = 0;
    for (std::size_t b = 0; b < panel.blocks.size(); ++b) {
      const Block& blk = panel.blocks[b];
      SPX_ASSERT(blk.height() > 0);
      SPX_ASSERT(blk.offset == offset);
      offset += blk.height();
      if (b > 0) {
        SPX_ASSERT(blk.row_begin >= panel.blocks[b - 1].row_end);
        SPX_ASSERT(blk.row_begin >= panel.col_end);
        const Panel& facing = panels[blk.facing_panel];
        SPX_ASSERT(blk.facing_panel > p);
        SPX_ASSERT(blk.row_begin >= facing.col_begin &&
                   blk.row_end <= facing.col_end);
      }
    }
    SPX_ASSERT(offset == panel.nrows);
    SPX_ASSERT(panel.storage_offset == storage);
    storage += static_cast<size_type>(panel.nrows) * panel.width();
    for (index_t j = panel.col_begin; j < panel.col_end; ++j) {
      SPX_ASSERT(panel_of_col[j] == p);
    }
    // Edges cover exactly the off-diagonal blocks, in order.
    index_t next_block = 1;
    for (const UpdateEdge& e : targets[p]) {
      SPX_ASSERT(e.first_block == next_block && e.last_block > e.first_block);
      next_block = e.last_block;
      for (index_t b = e.first_block; b < e.last_block; ++b) {
        SPX_ASSERT(panel.blocks[b].facing_panel == e.dst);
      }
      in_check[e.dst]++;
    }
    SPX_ASSERT(next_block == static_cast<index_t>(panel.blocks.size()));
  }
  SPX_ASSERT(col == n);
  SPX_ASSERT(storage == factor_entries);
  for (index_t p = 0; p < np; ++p) SPX_ASSERT(in_check[p] == in_degree[p]);
}

SymbolicStructure build_structure(const SupernodePartition& part,
                                  const SupernodeForest& forest,
                                  index_t max_panel_width) {
  const index_t nsn = part.count();
  const index_t n =
      nsn == 0 ? 0 : part.first_col[static_cast<std::size_t>(nsn)];
  SymbolicStructure st;
  st.panel_of_col.assign(static_cast<std::size_t>(n), -1);

  // Pass 1: create the panels (column slices), so that panel_of_col is
  // complete before blocks are cut at panel boundaries.
  for (index_t s = 0; s < nsn; ++s) {
    const index_t w = part.width(s);
    index_t nsplit = 1;
    if (max_panel_width > 0 && w > max_panel_width) {
      nsplit = (w + max_panel_width - 1) / max_panel_width;
    }
    const index_t base = w / nsplit, rem = w % nsplit;
    index_t c = part.first_col[s];
    for (index_t k = 0; k < nsplit; ++k) {
      Panel p;
      p.col_begin = c;
      p.col_end = c + base + (k < rem ? 1 : 0);
      p.supernode = s;
      c = p.col_end;
      const index_t id = static_cast<index_t>(st.panels.size());
      for (index_t j = p.col_begin; j < p.col_end; ++j) {
        st.panel_of_col[j] = id;
      }
      st.panels.push_back(std::move(p));
    }
    SPX_ASSERT(c == part.first_col[s + 1]);
  }

  // Pass 2: blocks.  A panel's below-diagonal rows are the remaining
  // columns of its supernode followed by the supernode's row structure;
  // both are sorted and disjoint, and we cut maximal runs at facing-panel
  // boundaries.
  const index_t np = st.num_panels();
  st.targets.resize(static_cast<std::size_t>(np));
  st.in_degree.assign(static_cast<std::size_t>(np), 0);
  for (index_t p = 0; p < np; ++p) {
    Panel& panel = st.panels[p];
    const index_t s = panel.supernode;
    panel.blocks.push_back(
        {panel.col_begin, panel.col_end, p, 0});
    index_t offset = panel.width();

    auto emit_rows = [&](index_t row_begin, index_t row_end) {
      // Split [row_begin,row_end) at facing panel boundaries and at block
      // discontinuities (the caller guarantees the run is contiguous).
      index_t r = row_begin;
      while (r < row_end) {
        const index_t fp = st.panel_of_col[r];
        const index_t stop = std::min(row_end, st.panels[fp].col_end);
        // Merge with the previous block when contiguous and same facing.
        Block& prev = panel.blocks.back();
        if (prev.row_end == r && prev.facing_panel == fp &&
            prev.offset > 0) {
          prev.row_end = stop;
        } else {
          panel.blocks.push_back({r, stop, fp, offset});
        }
        offset += stop - r;
        r = stop;
      }
    };

    // Trailing columns of the same supernode (dense coupling between the
    // split slices).
    if (panel.col_end < part.first_col[s + 1]) {
      emit_rows(panel.col_end, part.first_col[s + 1]);
    }
    // Supernode row structure: group consecutive indices into runs.
    const auto& rows = forest.rows[s];
    std::size_t k = 0;
    while (k < rows.size()) {
      std::size_t e = k + 1;
      while (e < rows.size() && rows[e] == rows[e - 1] + 1) ++e;
      emit_rows(rows[k], rows[k - 1 + (e - k)] + 1);
      k = e;
    }
    panel.nrows = offset;

    // Edges: group consecutive off-diagonal blocks by facing panel.
    index_t b = 1;
    const index_t nb = static_cast<index_t>(panel.blocks.size());
    while (b < nb) {
      index_t e = b + 1;
      while (e < nb &&
             panel.blocks[e].facing_panel == panel.blocks[b].facing_panel) {
        ++e;
      }
      st.targets[p].push_back({panel.blocks[b].facing_panel, b, e});
      st.in_degree[panel.blocks[b].facing_panel]++;
      b = e;
    }
  }

  // Storage offsets and nnz.
  size_type storage = 0, nnz = 0;
  for (Panel& panel : st.panels) {
    panel.storage_offset = storage;
    const size_type w = panel.width();
    storage += static_cast<size_type>(panel.nrows) * w;
    nnz += w * (w + 1) / 2 +
           static_cast<size_type>(panel.nrows_below()) * w;
  }
  st.factor_entries = storage;
  st.nnz_factor = nnz;
  return st;
}

}  // namespace spx
