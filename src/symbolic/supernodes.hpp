// Fundamental supernode detection and supernodal row structures.
//
// A supernode is a maximal set of contiguous columns with identical
// below-diagonal row structure; it becomes a "panel" -- the tall & skinny
// dense matrix that is the unit of data in the task DAG (paper §III).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace spx {

struct SupernodePartition {
  /// first_col[s]..first_col[s+1]-1 are the columns of supernode s
  /// (in the postordered permuted index space).
  std::vector<index_t> first_col;  // size num_supernodes + 1
  /// Supernode id owning each column.
  std::vector<index_t> sn_of_col;

  index_t count() const {
    return static_cast<index_t>(first_col.size()) - 1;
  }
  index_t width(index_t s) const { return first_col[s + 1] - first_col[s]; }
};

/// Splits the postordered columns into fundamental supernodes:
/// column j joins j-1's supernode iff parent(j-1) == j and
/// colcount(j-1) == colcount(j) + 1.
SupernodePartition find_fundamental_supernodes(
    const std::vector<index_t>& parent, const std::vector<index_t>& counts);

struct SupernodeForest {
  /// parent supernode (-1 for roots): supernode of parent(last column).
  std::vector<index_t> parent;
  /// Below-diagonal row structure of each supernode (sorted, strictly
  /// greater than the supernode's last column).  The defining supernodal
  /// property: all columns of the supernode share this structure.
  std::vector<std::vector<index_t>> rows;
};

/// Computes the supernode tree and per-supernode row structures by merging
/// children structures bottom-up (the supernodal symbolic factorization).
/// `g` is the postordered permuted pattern.
SupernodeForest supernodal_symbolic(const Graph& g,
                                    const std::vector<index_t>& parent,
                                    const SupernodePartition& part);

/// nnz(L) implied by a partition + row structures (diagonal blocks counted
/// as full lower triangles, off-diagonal rows dense across the width).
size_type supernodal_nnz(const SupernodePartition& part,
                         const SupernodeForest& forest);

/// Splits the supernode containing `col` so that a supernode boundary
/// falls exactly at `col` (no-op when one already does).  Used to keep a
/// Schur block from fusing with interior columns.
void force_partition_boundary(SupernodePartition& part,
                              SupernodeForest& forest, index_t col);

}  // namespace spx
