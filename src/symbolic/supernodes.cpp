#include "symbolic/supernodes.hpp"

#include <algorithm>

namespace spx {

SupernodePartition find_fundamental_supernodes(
    const std::vector<index_t>& parent, const std::vector<index_t>& counts) {
  const index_t n = static_cast<index_t>(parent.size());
  SupernodePartition part;
  part.sn_of_col.resize(static_cast<std::size_t>(n));
  // Count children: a column with more than one child cannot extend its
  // predecessor's supernode (the structure merge makes it non-fundamental).
  std::vector<index_t> nchild(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    if (parent[j] != -1) nchild[parent[j]]++;
  }
  part.first_col.push_back(0);
  for (index_t j = 0; j < n; ++j) {
    const bool starts_new =
        j == 0 || parent[j - 1] != j || counts[j - 1] != counts[j] + 1 ||
        nchild[j] > 1;
    if (starts_new && j > 0) part.first_col.push_back(j);
    part.sn_of_col[j] = static_cast<index_t>(part.first_col.size()) - 1;
  }
  part.first_col.push_back(n);
  return part;
}

SupernodeForest supernodal_symbolic(const Graph& g,
                                    const std::vector<index_t>& parent,
                                    const SupernodePartition& part) {
  const index_t nsn = part.count();
  const index_t n = g.num_vertices();
  SupernodeForest forest;
  forest.parent.assign(static_cast<std::size_t>(nsn), -1);
  forest.rows.resize(static_cast<std::size_t>(nsn));

  for (index_t s = 0; s < nsn; ++s) {
    const index_t last = part.first_col[s + 1] - 1;
    if (parent[last] != -1) forest.parent[s] = part.sn_of_col[parent[last]];
  }

  // Children lists in ascending order (supernodes are postordered since
  // the columns are).
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(nsn));
  for (index_t s = 0; s < nsn; ++s) {
    if (forest.parent[s] != -1) children[forest.parent[s]].push_back(s);
  }

  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  std::vector<index_t> touched;
  for (index_t s = 0; s < nsn; ++s) {
    const index_t last = part.first_col[s + 1] - 1;
    touched.clear();
    // Pattern of A below the supernode, over all its columns.
    for (index_t j = part.first_col[s]; j <= last; ++j) {
      for (const index_t i : g.neighbors(j)) {
        if (i > last && !mark[i]) {
          mark[i] = 1;
          touched.push_back(i);
        }
      }
    }
    // Children contributions: rows(c) beyond this supernode's columns.
    for (const index_t c : children[s]) {
      for (const index_t i : forest.rows[c]) {
        if (i > last && !mark[i]) {
          mark[i] = 1;
          touched.push_back(i);
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    forest.rows[s] = touched;
    for (const index_t i : touched) mark[i] = 0;
  }
  return forest;
}

void force_partition_boundary(SupernodePartition& part,
                              SupernodeForest& forest, index_t col) {
  const index_t nsn = part.count();
  const index_t n = nsn == 0 ? 0 : part.first_col.back();
  if (col <= 0 || col >= n) return;
  const index_t s = part.sn_of_col[col];
  if (part.first_col[s] == col) return;  // boundary already exists

  // Split supernode s at `col` into s (left) and s+1 (right).
  const index_t split_end = part.first_col[s + 1];
  part.first_col.insert(part.first_col.begin() + s + 1, col);
  for (index_t j = col; j < split_end; ++j) part.sn_of_col[j] = s + 1;
  for (index_t j = split_end; j < n; ++j) part.sn_of_col[j]++;

  // Right half keeps the old rows; left half additionally sees the right
  // half's columns as below-diagonal rows.
  std::vector<index_t> left_rows;
  for (index_t r = col; r < split_end; ++r) left_rows.push_back(r);
  left_rows.insert(left_rows.end(), forest.rows[s].begin(),
                   forest.rows[s].end());
  forest.rows.insert(forest.rows.begin() + s + 1, forest.rows[s]);
  forest.rows[s] = std::move(left_rows);

  // Parents: ids >= s+1 shift by one; children of the old s re-attach by
  // the supernode that owns their parent column (their first row).
  std::vector<index_t> parent(static_cast<std::size_t>(nsn) + 1);
  for (index_t t = 0; t < nsn + 1; ++t) {
    index_t old_parent;
    if (t < s) {
      old_parent = forest.parent[t];
    } else if (t == s) {
      parent[t] = s + 1;  // left half's parent column is `col`
      continue;
    } else {
      old_parent = forest.parent[t - 1];
    }
    if (old_parent == -1) {
      parent[t] = -1;
    } else if (old_parent < s) {
      parent[t] = old_parent;
    } else if (old_parent > s) {
      parent[t] = old_parent + 1;
    } else {
      // Was a child of the split supernode: re-resolve via its parent
      // column (the smallest row of its structure, already in the new
      // forest.rows position t).
      SPX_ASSERT(!forest.rows[t].empty());
      const index_t pcol = forest.rows[t][0];
      parent[t] = part.sn_of_col[pcol];
    }
  }
  forest.parent = std::move(parent);
}

size_type supernodal_nnz(const SupernodePartition& part,
                         const SupernodeForest& forest) {
  size_type nnz = 0;
  for (index_t s = 0; s < part.count(); ++s) {
    const size_type w = part.width(s);
    nnz += w * (w + 1) / 2;
    nnz += w * static_cast<size_type>(forest.rows[s].size());
  }
  return nnz;
}

}  // namespace spx
