// Supernode amalgamation.
//
// Merges small supernodes into their parents, accepting extra explicit
// zeros ("extra fill") in exchange for larger panels: larger BLAS-3 calls
// on CPUs and -- crucially for the paper's hybrid experiments -- blocks
// large enough to be efficient on GPU devices.  This reimplements the
// strategy of Hénon, Ramet, Roman (the amalgamation the paper reuses,
// ref [25]): greedily apply the parent-child merge with the smallest
// relative extra fill until a global fill budget is exhausted; supernodes
// narrower than `min_width` are merged unconditionally.
//
// The paper raises the fill budget to 12% for the heterogeneous runs.
#pragma once

#include "graph/ordering.hpp"
#include "symbolic/supernodes.hpp"

namespace spx {

struct AmalgamationOptions {
  /// Maximum total extra fill, as a fraction of the exact nnz(L).
  /// 0 disables budgeted merging (only min_width merges apply).
  double fill_ratio = 0.12;
  /// Supernodes narrower than this merge into their parent regardless of
  /// fill (they are too small to feed BLAS-3).
  index_t min_width = 8;
  /// Never merge anything into a supernode touching the last
  /// `protect_tail` columns (keeps a Schur block intact; 0 = off).
  index_t protect_tail = 0;
};

struct AmalgamationResult {
  /// Merged partition and structures, in the *renumbered* column space.
  SupernodePartition part;
  SupernodeForest forest;
  /// Renumbering applied: old (postordered) column -> new column.
  /// Identity when no merge moved columns.
  Ordering renumber;
  /// Extra explicit zeros introduced, in L entries.
  size_type extra_fill = 0;
  /// nnz(L) before / after.
  size_type nnz_before = 0;
  size_type nnz_after = 0;
};

AmalgamationResult amalgamate(const SupernodePartition& part,
                              const SupernodeForest& forest,
                              const AmalgamationOptions& opts = {});

}  // namespace spx
