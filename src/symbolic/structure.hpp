// Block symbolic structure: the final product of the analysis phase.
//
// Each supernode is split vertically into one or more *panels* (paper §III:
// "supernodes of the higher levels are split vertically prior to the
// factorization to limit the task granularity and create more
// parallelism").  A panel stores a dense tall-and-skinny column-major
// matrix: its diagonal block followed by its off-diagonal blocks.  Blocks
// are maximal row intervals that do not cross a facing panel's boundary,
// which is what allows an update task to target exactly one panel.
//
// The structure also carries the task-DAG adjacency (per-panel target
// lists) used by all three runtimes, and the per-task flop counts used for
// GFlop/s reporting and the simulation cost models.
#pragma once

#include <vector>

#include "common/flops.hpp"
#include "common/types.hpp"
#include "symbolic/amalgamation.hpp"

namespace spx {

struct Block {
  index_t row_begin;      ///< first (permuted) row of the block
  index_t row_end;        ///< one past the last row
  index_t facing_panel;   ///< panel owning those rows (self for diagonal)
  index_t offset;         ///< row offset of this block inside the panel

  index_t height() const { return row_end - row_begin; }
};

struct Panel {
  index_t col_begin;   ///< first (permuted) column
  index_t col_end;     ///< one past the last column
  index_t supernode;   ///< owning supernode (pre-split)
  size_type storage_offset;  ///< offset into the factor value array
  index_t nrows;       ///< total rows = sum of block heights
  /// blocks[0] is the diagonal block; the rest are below-diagonal, sorted
  /// by row_begin.
  std::vector<Block> blocks;

  index_t width() const { return col_end - col_begin; }
  /// Rows strictly below the diagonal block.
  index_t nrows_below() const { return nrows - width(); }
};

/// An edge of the panel DAG: "panel src updates panel dst".
struct UpdateEdge {
  index_t dst;          ///< target panel
  index_t first_block;  ///< first off-diagonal block of src facing dst
  index_t last_block;   ///< one past the last such block
};

struct SymbolicOptions {
  AmalgamationOptions amalgamation;
  /// Panels wider than this are split into ceil(w / max_panel_width)
  /// near-equal slices.  0 disables splitting.
  index_t max_panel_width = 128;
};

class SymbolicStructure {
 public:
  std::vector<Panel> panels;
  /// Panel owning each column (size n).
  std::vector<index_t> panel_of_col;
  /// Out-edges of each panel, sorted by dst; edge (p -> dst) covers the
  /// contiguous run of p's blocks facing dst.
  std::vector<std::vector<UpdateEdge>> targets;
  /// Number of incoming update edges per panel.
  std::vector<index_t> in_degree;
  /// Total L storage in scalars (sum over panels of nrows * width).
  size_type factor_entries = 0;
  /// nnz(L) counting the diagonal block as a lower triangle (the value the
  /// paper's Table I reports as nnz_L).
  size_type nnz_factor = 0;

  index_t num_panels() const { return static_cast<index_t>(panels.size()); }
  index_t num_cols() const {
    return static_cast<index_t>(panel_of_col.size());
  }
  size_type num_update_tasks() const;

  /// Flops of the panel task (diag factorization + TRSM) under a given
  /// factorization kind.
  double panel_task_flops(index_t p, Factorization kind) const;
  /// Flops of the update task along edge e of panel p.
  double update_task_flops(index_t p, const UpdateEdge& e,
                           Factorization kind) const;
  /// Total factorization flops (the paper's Table I "Flop" column).
  double total_flops(Factorization kind) const;

  /// Structural sanity checks (tests call this on every pipeline output).
  void validate() const;
};

/// Builds the block structure from an amalgamated supernode partition.
SymbolicStructure build_structure(const SupernodePartition& part,
                                  const SupernodeForest& forest,
                                  index_t max_panel_width);

}  // namespace spx
