#include "symbolic/etree.hpp"

#include <algorithm>

#include "graph/ordering.hpp"

namespace spx {

std::vector<index_t> elimination_tree(const Graph& g) {
  const index_t n = g.num_vertices();
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);
  for (index_t k = 0; k < n; ++k) {
    for (const index_t i : g.neighbors(k)) {
      if (i >= k) continue;  // only below-diagonal entries A(k, i), i < k
      // Walk up from i, compressing paths onto k.
      index_t j = i;
      while (ancestor[j] != -1 && ancestor[j] != k) {
        const index_t next = ancestor[j];
        ancestor[j] = k;
        j = next;
      }
      if (ancestor[j] == -1) {
        ancestor[j] = k;
        parent[j] = k;
      }
    }
  }
  return parent;
}

std::vector<index_t> tree_postorder(const std::vector<index_t>& parent) {
  const index_t n = static_cast<index_t>(parent.size());
  // Build child lists (reversed iteration keeps children in ascending
  // order, giving a deterministic postorder).
  std::vector<index_t> first_child(static_cast<std::size_t>(n), -1);
  std::vector<index_t> next_sibling(static_cast<std::size_t>(n), -1);
  for (index_t v = n - 1; v >= 0; --v) {
    const index_t p = parent[v];
    if (p != -1) {
      next_sibling[v] = first_child[p];
      first_child[p] = v;
    }
  }
  std::vector<index_t> post;
  post.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> stack;
  for (index_t root = 0; root < n; ++root) {
    if (parent[root] != -1) continue;
    // Iterative DFS: descend into the next unvisited child, emit a vertex
    // once its child list is exhausted.
    stack.push_back(root);
    while (!stack.empty()) {
      const index_t v = stack.back();
      const index_t c = first_child[v];
      if (c != -1) {
        first_child[v] = next_sibling[c];  // consume child c
        stack.push_back(c);
      } else {
        post.push_back(v);
        stack.pop_back();
      }
    }
  }
  return post;
}

std::vector<index_t> cholesky_col_counts(const Graph& g,
                                         const std::vector<index_t>& parent,
                                         const std::vector<index_t>& post) {
  const index_t n = g.num_vertices();
  std::vector<index_t> delta(static_cast<std::size_t>(n), 0);
  std::vector<index_t> first(static_cast<std::size_t>(n), -1);
  std::vector<index_t> maxfirst(static_cast<std::size_t>(n), -1);
  std::vector<index_t> prevleaf(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) ancestor[v] = v;

  // first[j] = postorder index of j's first descendant.
  for (index_t k = 0; k < n; ++k) {
    index_t j = post[k];
    delta[j] = (first[j] == -1) ? 1 : 0;  // leaf of the etree
    for (; j != -1 && first[j] == -1; j = parent[j]) first[j] = k;
  }

  auto find_root = [&](index_t s) {
    index_t q = s;
    while (q != ancestor[q]) q = ancestor[q];
    // Path compression.
    while (s != q) {
      const index_t next = ancestor[s];
      ancestor[s] = q;
      s = next;
    }
    return q;
  };

  for (index_t k = 0; k < n; ++k) {
    const index_t j = post[k];
    if (parent[j] != -1) delta[parent[j]]--;  // j is not a leaf of parent
    for (const index_t i : g.neighbors(j)) {
      // Consider A(i, j) with i > j: j is in row subtree of i.
      if (i <= j) continue;
      if (first[j] <= maxfirst[i]) continue;  // j not a new leaf for row i
      maxfirst[i] = first[j];
      const index_t jprev = prevleaf[i];
      prevleaf[i] = j;
      if (jprev == -1) {
        delta[j]++;  // first leaf of row subtree i
      } else {
        delta[j]++;
        delta[find_root(jprev)]--;  // least common ancestor correction
      }
    }
    if (parent[j] != -1) ancestor[j] = parent[j];
  }
  // Accumulate deltas up the tree to get the counts.
  std::vector<index_t> counts = delta;
  for (index_t k = 0; k < n; ++k) {
    const index_t j = post[k];
    if (parent[j] != -1) counts[parent[j]] += counts[j];
  }
  return counts;
}

Ordering compose(const Ordering& inner, const Ordering& outer) {
  SPX_CHECK_ARG(inner.size() == outer.size(), "ordering sizes differ");
  const index_t n = inner.size();
  std::vector<index_t> new_to_old(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) {
    new_to_old[k] = inner.new_to_old[outer.new_to_old[k]];
  }
  return Ordering::from_new_to_old(std::move(new_to_old));
}

}  // namespace spx
