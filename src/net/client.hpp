// Blocking protocol client: the synchronous counterpart of the epoll
// servers, used by benches, tests, and anything scripting a shard or
// front-end (one request in flight per client; run many clients for
// load).  Also exposes raw send/receive so robustness tests can speak
// malformed or deliberately fragmented bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "runtime/fault_injection.hpp"

namespace spx::net {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& o) noexcept;
  BlockingClient& operator=(BlockingClient&& o) noexcept;

  /// Connects with a socket-level send/recv timeout.  Throws
  /// InvalidArgument when the peer is unreachable.
  void connect(const std::string& host, std::uint16_t port,
               double timeout_s = 10.0);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends raw bytes verbatim (tests: malformed frames, slow-loris
  /// fragments).  Throws on a broken connection.
  void send_raw(std::span<const std::uint8_t> bytes);

  /// Receives the next complete frame; nullopt on orderly peer close.
  /// Throws ProtocolError on malformed input and InvalidArgument on
  /// timeout/reset.
  std::optional<FrameParser::Frame> recv_frame();

  /// send_raw + recv_frame, asserting the response's correlation id.
  FrameParser::Frame call(std::span<const std::uint8_t> frame,
                          std::uint64_t expect_corr);

  /// Seals every outbound typed request with the protocol's CRC32C
  /// trailer (servers answer in kind, so responses come back sealed too).
  void set_checksum(bool on) { checksum_ = on; }
  /// Arms deterministic wire faults against outbound typed requests;
  /// nullptr disarms.  The injector must outlive the client.
  void set_fault(FaultInjector* fault) { fault_ = fault; }
  /// Relative deadline stamped on subsequent typed requests (0 = none).
  void set_deadline(double deadline_s) { deadline_s_ = deadline_s; }

  // ---- typed conveniences ----

  /// Remote factorize; throws ProtocolError if the server answered with a
  /// protocol Error frame (carrying its NetError in the message) unless
  /// `net_error_out` is given (then it is filled and status=Failed).
  FactorizeResponseFrame factorize(const std::string& tenant,
                                   const CscMatrix<real_t>& a,
                                   Factorization kind,
                                   WireTrace trace = {},
                                   NetError* net_error_out = nullptr);
  SolveResponseFrame solve(const std::string& tenant,
                           std::uint64_t pattern_digest,
                           std::uint64_t factor_id,
                           const std::vector<real_t>& rhs,
                           WireTrace trace = {},
                           NetError* net_error_out = nullptr);
  /// Remote numeric-only refactorize of a resident factor (v3 opcode):
  /// `values` are the nnz new values in the factorized pattern's storage
  /// order, digest-checked server-side.
  FactorizeResponseFrame refactorize(const std::string& tenant,
                                     std::uint64_t pattern_digest,
                                     std::uint64_t factor_id,
                                     const std::vector<real_t>& values,
                                     WireTrace trace = {},
                                     NetError* net_error_out = nullptr);
  bool ping();

 private:
  /// Applies checksum sealing + armed wire faults to an encoded request,
  /// sends whatever survives, and runs the correlation-matched receive
  /// loop.  The typed conveniences all funnel through here.
  FrameParser::Frame call_prepared(std::vector<std::uint8_t> frame,
                                   std::uint64_t expect_corr);
  FrameParser::Frame recv_matched(std::uint64_t expect_corr);

  std::uint64_t next_corr_ = 1;
  int fd_ = -1;
  bool checksum_ = false;
  double deadline_s_ = 0;
  FaultInjector* fault_ = nullptr;
  FrameParser parser_;
};

}  // namespace spx::net
