// Blocking protocol client: the synchronous counterpart of the epoll
// servers, used by benches, tests, and anything scripting a shard or
// front-end (one request in flight per client; run many clients for
// load).  Also exposes raw send/receive so robustness tests can speak
// malformed or deliberately fragmented bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace spx::net {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& o) noexcept;
  BlockingClient& operator=(BlockingClient&& o) noexcept;

  /// Connects with a socket-level send/recv timeout.  Throws
  /// InvalidArgument when the peer is unreachable.
  void connect(const std::string& host, std::uint16_t port,
               double timeout_s = 10.0);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends raw bytes verbatim (tests: malformed frames, slow-loris
  /// fragments).  Throws on a broken connection.
  void send_raw(std::span<const std::uint8_t> bytes);

  /// Receives the next complete frame; nullopt on orderly peer close.
  /// Throws ProtocolError on malformed input and InvalidArgument on
  /// timeout/reset.
  std::optional<FrameParser::Frame> recv_frame();

  /// send_raw + recv_frame, asserting the response's correlation id.
  FrameParser::Frame call(std::span<const std::uint8_t> frame,
                          std::uint64_t expect_corr);

  // ---- typed conveniences ----

  /// Remote factorize; throws ProtocolError if the server answered with a
  /// protocol Error frame (carrying its NetError in the message) unless
  /// `net_error_out` is given (then it is filled and status=Failed).
  FactorizeResponseFrame factorize(const std::string& tenant,
                                   const CscMatrix<real_t>& a,
                                   Factorization kind,
                                   WireTrace trace = {},
                                   NetError* net_error_out = nullptr);
  SolveResponseFrame solve(const std::string& tenant,
                           std::uint64_t pattern_digest,
                           std::uint64_t factor_id,
                           const std::vector<real_t>& rhs,
                           WireTrace trace = {},
                           NetError* net_error_out = nullptr);
  bool ping();

 private:
  std::uint64_t next_corr_ = 1;
  int fd_ = -1;
  FrameParser parser_;
};

}  // namespace spx::net
