#include "net/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "net/server.hpp"  // set_nonblocking

namespace spx::net {

namespace {

constexpr std::size_t kMaxRequestBytes = 16 * 1024;

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

std::string render(const HttpResponse& r) {
  std::string out = "HTTP/1.0 " + std::to_string(r.status) + " " +
                    reason_phrase(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

}  // namespace

/// One HTTP connection: buffer the request until the blank line, answer,
/// flush, close.
struct HttpServer::Conn : FdHandler,
                          std::enable_shared_from_this<HttpServer::Conn> {
  HttpServer& owner;
  int fd;
  std::uint64_t id;
  std::string in;
  std::string out;
  std::size_t out_off = 0;
  bool responding = false;

  Conn(HttpServer& o, int f, std::uint64_t i) : owner(o), fd(f), id(i) {}
  ~Conn() override {
    if (fd >= 0) ::close(fd);
  }

  void finish() {
    if (fd < 0) return;
    owner.loop_.del_fd(fd);
    ::close(fd);
    fd = -1;
    owner.conns_.erase(id);  // may destroy *this; touch nothing after
  }

  void respond(const HttpResponse& r) {
    out = render(r);
    responding = true;
    owner.loop_.mod_fd(fd, EPOLLOUT);
    flush();
  }

  void flush() {
    while (fd >= 0 && out_off < out.size()) {
      const ssize_t n = ::send(fd, out.data() + out_off,
                               out.size() - out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        finish();
        return;
      }
      out_off += static_cast<std::size_t>(n);
    }
    finish();
  }

  void on_events(std::uint32_t events) override {
    auto self = shared_from_this();
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
      finish();
      return;
    }
    if (responding) {
      flush();
      return;
    }
    char buf[4096];
    while (fd >= 0) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n == 0) {
        finish();
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        finish();
        return;
      }
      in.append(buf, static_cast<std::size_t>(n));
      if (in.size() > kMaxRequestBytes) {
        respond({400, "text/plain", "request too large\n"});
        return;
      }
      const std::size_t end = in.find("\r\n\r\n");
      if (end == std::string::npos) continue;
      // Request line: METHOD SP PATH SP VERSION
      const std::size_t eol = in.find("\r\n");
      const std::string line = in.substr(0, eol);
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos ||
          line.substr(0, sp1) != "GET") {
        respond({400, "text/plain", "only GET is supported\n"});
        return;
      }
      const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      respond(owner.handler_ ? owner.handler_(path)
                             : HttpResponse{404, "text/plain", "\n"});
      return;
    }
  }
};

/// The listening socket of an HttpServer.
struct HttpServer::Acceptor : FdHandler {
  HttpServer& owner;
  int fd = -1;

  explicit Acceptor(HttpServer& o) : owner(o) {}
  ~Acceptor() override {
    if (fd >= 0) ::close(fd);
  }

  void on_events(std::uint32_t) override {
    while (true) {
      const int cfd = ::accept4(fd, nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) break;
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn =
          std::make_shared<Conn>(owner, cfd, owner.next_id_++);
      owner.conns_.emplace(conn->id, conn);
      owner.loop_.add_fd(cfd, EPOLLIN, conn.get());
    }
  }
};

HttpServer::HttpServer(EventLoop& loop, std::uint16_t port,
                       HttpHandler handler)
    : loop_(loop), handler_(std::move(handler)) {
  acceptor_ = std::make_unique<Acceptor>(*this);
  acceptor_->fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SPX_CHECK_ARG(acceptor_->fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(acceptor_->fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  SPX_CHECK_ARG(::bind(acceptor_->fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0,
                "HttpServer: bind() failed");
  SPX_CHECK_ARG(::listen(acceptor_->fd, 64) == 0,
                "HttpServer: listen() failed");
  socklen_t len = sizeof addr;
  ::getsockname(acceptor_->fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(acceptor_->fd);
  loop_.add_fd(acceptor_->fd, EPOLLIN, acceptor_.get());
}

HttpServer::~HttpServer() { close_all(); }

void HttpServer::close_all() {
  if (acceptor_ != nullptr && acceptor_->fd >= 0) {
    loop_.del_fd(acceptor_->fd);
    ::close(acceptor_->fd);
    acceptor_->fd = -1;
  }
  // Conn::finish erases from conns_; drain via copies.
  std::vector<std::shared_ptr<Conn>> all;
  all.reserve(conns_.size());
  for (const auto& [id, c] : conns_) all.push_back(c);
  for (const auto& c : all) c->finish();
  conns_.clear();
}

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int* status_out,
                     double timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SPX_CHECK_ARG(fd >= 0, "socket() failed");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((timeout_s - double(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw InvalidArgument("http_get: cannot connect to " + host + ":" +
                          std::to_string(port));
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  if (::send(fd, req.data(), req.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    throw InvalidArgument("http_get: request write failed");
  }
  std::string response;
  char buf[8192];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t sp = response.find(' ');
  SPX_CHECK_ARG(sp != std::string::npos, "http_get: malformed response");
  const int status = std::atoi(response.c_str() + sp + 1);
  if (status_out != nullptr) {
    *status_out = status;
  } else {
    SPX_CHECK_ARG(status == 200, "http_get: non-200 response");
  }
  const std::size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? std::string()
                                   : response.substr(body + 4);
}

}  // namespace spx::net
