#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace spx::net {

namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EventLoop::EventLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  SPX_CHECK_ARG(epfd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  SPX_CHECK_ARG(wake_fd_ >= 0, "eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  SPX_CHECK_ARG(::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
                "epoll_ctl(wake) failed");
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epfd_ >= 0) ::close(epfd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  SPX_CHECK_ARG(::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                "epoll_ctl(add) failed");
  handlers_[fd] = handler;
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  SPX_CHECK_ARG(::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                "epoll_ctl(mod) failed");
}

void EventLoop::del_fd(int fd) {
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::post(Callback fn) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore EAGAIN.
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
}

std::uint64_t EventLoop::schedule(double delay_s, Callback fn) {
  const std::uint64_t id = next_timer_++;
  timer_heap_.push(Timer{now() + std::max(0.0, delay_s), id});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) { timer_fns_.erase(id); }

double EventLoop::now() const { return monotonic_seconds(); }

void EventLoop::drain_posted() {
  std::uint64_t counter = 0;
  while (::read(wake_fd_, &counter, sizeof counter) > 0) {
  }
  std::vector<Callback> todo;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    todo.swap(posted_);
  }
  for (Callback& fn : todo) fn();
}

int EventLoop::next_timeout_ms() const {
  if (timer_heap_.empty()) return 200;  // idle tick, bounds stop() latency
  const double dt = timer_heap_.top().due - now();
  if (dt <= 0) return 0;
  return static_cast<int>(std::ceil(std::min(dt, 0.2) * 1000.0));
}

void EventLoop::fire_due_timers() {
  while (!timer_heap_.empty() && timer_heap_.top().due <= now()) {
    const Timer t = timer_heap_.top();
    timer_heap_.pop();
    const auto it = timer_fns_.find(t.id);
    if (it == timer_fns_.end()) continue;  // cancelled
    Callback fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
  }
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    stop_requested_ = false;
  }
  running_ = true;
  std::array<epoll_event, 64> events;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(post_mutex_);
      if (stop_requested_) break;
    }
    const int n =
        ::epoll_wait(epfd_, events.data(),
                     static_cast<int>(events.size()), next_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw InternalError(std::string("epoll_wait failed: ") +
                          std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        drain_posted();
        continue;
      }
      // Re-resolve per event: an earlier handler in this batch may have
      // closed this fd (its entry is gone -> the stale event is dropped).
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      it->second->on_events(events[static_cast<std::size_t>(i)].events);
    }
    fire_due_timers();
  }
  drain_posted();  // run tail posts so cross-thread posters never hang
  running_ = false;
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    stop_requested_ = true;
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
}

}  // namespace spx::net
