// The scale-out front-end: a protocol-aware proxy that consistent-hashes
// each request's pattern digest over the live shard ring, so every
// sparsity pattern keeps hitting the shard whose analysis cache (and
// resident factors) already know it.
//
// The front never parses the CSC bodies it proxies: it peeks the 8-byte
// routing digest at payload offset 0, rewrites the correlation id, and
// forwards the frame bytes verbatim.  Per-shard bounded in-flight windows
// bounce excess load with Error(Overloaded) -- the same reject-don't-
// queue backpressure the admission queue applies in-process.  When a
// shard answers Draining or its connection drops, its pending requests
// are rerouted over the remaining ring (bounded attempts), so a shard
// can be drained or killed mid-run without losing accepted requests.
//
// Failure handling (docs/SERVICE.md "Failure modes and recovery"):
//   - Each upstream carries a circuit breaker (net/circuit_breaker.hpp)
//     fed by hard outcomes: connection drops and Internal/Malformed
//     errors open it, responses and pongs close it.  An open breaker
//     withdraws the shard from the ring and reroutes its in-flight
//     work; the existing ping probe doubles as the half-open probe.
//   - Requests carry their wire deadline: expired work is answered with
//     Error(DeadlineExceeded) instead of being dispatched or rerouted,
//     so retry storms cannot resurrect dead work.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/circuit_breaker.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "net/shard_ring.hpp"

namespace spx::net {

struct ShardEndpoint {
  std::string name;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct FrontServerOptions {
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;       ///< client-facing protocol port
  std::uint16_t http_port = 0;  ///< probe/metrics port
  std::vector<ShardEndpoint> shards;
  std::uint32_t vnodes = 64;
  /// Per-shard in-flight window; requests beyond it get Error(Overloaded).
  std::size_t max_inflight_per_shard = 256;
  /// A request is rerouted at most this many times before the client gets
  /// Error(NoShard) and must retry itself.
  int max_reroutes = 3;
  double probe_interval_s = 0.5;      ///< ping cadence per upstream
  double reconnect_backoff_s = 0.05;  ///< initial; doubles per retry
  /// Cap for the doubling reconnect backoff.  Each shard's actual delay
  /// carries a deterministic per-shard jitter factor (0.75x-1.25x) so a
  /// fleet of fronts does not reconnect-stampede in lockstep.
  double max_reconnect_backoff_s = 2.0;
  /// Per-shard circuit breaker tuning (window, threshold, cooldown).
  CircuitBreakerOptions breaker;
  double idle_timeout_s = 0;          ///< client connections
  std::size_t max_payload = kDefaultMaxPayload;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = global registry
};

class FrontServer {
 public:
  explicit FrontServer(FrontServerOptions options);
  ~FrontServer();
  FrontServer(const FrontServer&) = delete;
  FrontServer& operator=(const FrontServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint16_t http_port() const { return http_port_; }

  /// Graceful drain: stop accepting, answer Draining to new requests,
  /// wait (bounded) until every proxied request has been answered, then
  /// stop the loop.  Returns true when the pending table emptied in time.
  bool drain_and_stop(double timeout_s = 0);

 private:
  struct Upstream {
    ShardEndpoint endpoint;
    ConnectionPtr conn;          ///< null while disconnected
    bool alive = false;          ///< pong seen on the current connection
    std::size_t inflight = 0;
    double backoff_s = 0;
    std::uint64_t reconnect_timer = 0;
    obs::Counter* routed = nullptr;    ///< spx_front_routed_total{shard=}
    obs::Counter* rerouted = nullptr;  ///< spx_front_rerouted_total{shard=}
    CircuitBreaker breaker;
    obs::Gauge* breaker_state = nullptr;  ///< spx_front_breaker_state{shard=}
    obs::Counter* breaker_opened = nullptr;
    obs::Counter* breaker_reclosed = nullptr;
  };

  struct Pending {
    std::uint64_t client_conn = 0;
    std::uint64_t client_corr = 0;
    std::uint64_t digest = 0;
    int attempts = 0;
    /// Monotonic (loop clock) expiry stamped from the request's wire
    /// deadline_s at arrival; 0 = no deadline.
    double deadline_mono = 0;
    std::string shard;
    std::vector<std::uint8_t> frame;  ///< full frame, corr = front corr
  };

  void on_client_frame(Connection& conn, const FrameHeader& header,
                       std::span<const std::uint8_t> payload);
  void on_upstream_frame(const std::string& name, const FrameHeader& header,
                         std::span<const std::uint8_t> payload);
  void on_upstream_close(const std::string& name);
  /// Sends `pending` (already in pending_) to `shard`; bookkeeping only.
  void dispatch_to(const std::string& shard, std::uint64_t front_corr);
  /// Re-sends a pending request to a freshly routed shard, or answers the
  /// client with Error(NoShard) when attempts are exhausted.
  void reroute(std::uint64_t front_corr);
  /// Answers the pending request's client with an Error frame and drops
  /// the pending entry.
  void answer_error(std::uint64_t front_corr, NetError code,
                    const std::string& message);
  void forward_to_client(std::uint64_t front_corr, const FrameHeader& header,
                         std::span<const std::uint8_t> payload);
  void connect_upstream(const std::string& name);
  void schedule_reconnect(const std::string& name);
  void arm_probe();
  /// Feeds one hard outcome into `name`'s breaker and applies any state
  /// transition: opening withdraws the shard from the ring and reroutes
  /// its pending work; re-closing restores it.
  void note_breaker(const std::string& name, bool ok);
  HttpResponse handle_http(const std::string& path);

  FrontServerOptions options_;
  obs::MetricsRegistry* registry_ = nullptr;
  NetCounters net_counters_;
  obs::Counter* rejected_no_shard_ = nullptr;
  obs::Counter* rejected_overloaded_ = nullptr;
  obs::Counter* rejected_shard_lost_ = nullptr;
  obs::Counter* rejected_deadline_ = nullptr;
  EventLoop loop_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<HttpServer> http_;
  std::uint16_t port_ = 0;
  std::uint16_t http_port_ = 0;
  ShardRing ring_;
  std::unordered_map<std::string, Upstream> upstreams_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_corr_ = 1;
  std::uint64_t next_probe_corr_;  ///< high-bit range, never collides
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::thread loop_thread_;
};

}  // namespace spx::net
