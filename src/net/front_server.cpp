#include "net/front_server.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <future>

#include "obs/export.hpp"

namespace spx::net {

namespace {

/// Probe (ping) correlation ids live in the top half of the id space so
/// they can never collide with proxied request ids.
constexpr std::uint64_t kProbeBase = 1ull << 63;

}  // namespace

FrontServer::FrontServer(FrontServerOptions options)
    : options_(std::move(options)),
      registry_(&obs::registry_or_global(options_.metrics)),
      ring_(options_.vnodes),
      next_probe_corr_(kProbeBase) {
  net_counters_.resolve(*registry_);
  rejected_no_shard_ = &registry_->counter(
      "spx_front_rejected_total", "Requests bounced by the front-end",
      {{"reason", "no_shard"}});
  rejected_overloaded_ = &registry_->counter(
      "spx_front_rejected_total", "Requests bounced by the front-end",
      {{"reason", "overloaded"}});
  rejected_shard_lost_ = &registry_->counter(
      "spx_front_rejected_total", "Requests bounced by the front-end",
      {{"reason", "shard_lost"}});
  rejected_deadline_ = &registry_->counter(
      "spx_front_rejected_total", "Requests bounced by the front-end",
      {{"reason", "deadline"}});
  // Seed proxied correlation ids pseudo-randomly (well below the probe
  // range) so a restarted front does not re-mint the ids its predecessor
  // used against the same shards' dedup tables.
  {
    std::uint64_t h = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    h *= 0x9e3779b97f4a7c15ull;
    h ^= h >> 31;
    next_corr_ = (h & ((kProbeBase >> 1) - 1)) + 1;
  }

  ServerOptions sopts;
  sopts.bind = options_.bind;
  sopts.port = options_.port;
  sopts.idle_timeout_s = options_.idle_timeout_s;
  sopts.max_payload = options_.max_payload;
  server_ = std::make_unique<Server>(
      loop_, sopts,
      [this](Connection& c, const FrameHeader& h,
             std::span<const std::uint8_t> p) { on_client_frame(c, h, p); },
      CloseCallback{}, &net_counters_);
  port_ = server_->port();
  http_ = std::make_unique<HttpServer>(
      loop_, options_.http_port,
      [this](const std::string& path) { return handle_http(path); });
  http_port_ = http_->port();

  for (const ShardEndpoint& ep : options_.shards) {
    Upstream up;
    up.endpoint = ep;
    up.backoff_s = options_.reconnect_backoff_s;
    up.routed = &registry_->counter("spx_front_routed_total",
                                    "Requests routed to a shard",
                                    {{"shard", ep.name}});
    up.rerouted = &registry_->counter(
        "spx_front_rerouted_total",
        "Requests re-sent to another shard after drain/loss",
        {{"shard", ep.name}});
    up.breaker = CircuitBreaker(options_.breaker);
    up.breaker_state = &registry_->gauge(
        "spx_front_breaker_state",
        "Per-shard circuit breaker state (0=closed 1=open 2=half-open)",
        {{"shard", ep.name}});
    up.breaker_opened = &registry_->counter(
        "spx_front_breaker_transitions_total", "Circuit breaker transitions",
        {{"shard", ep.name}, {"to", "open"}});
    up.breaker_reclosed = &registry_->counter(
        "spx_front_breaker_transitions_total", "Circuit breaker transitions",
        {{"shard", ep.name}, {"to", "closed"}});
    upstreams_.emplace(ep.name, std::move(up));
    ring_.add(ep.name);
    // Optimistically Up: the first probe or send settles the truth fast,
    // and a cold start would otherwise answer NoShard to everyone.
    connect_upstream(ep.name);
  }
  arm_probe();
  loop_thread_ = std::thread([this] { loop_.run(); });
}

FrontServer::~FrontServer() {
  if (!stopped_.load(std::memory_order_acquire)) {
    loop_.post([this] {
      server_->close_all("front shutdown");
      http_->close_all();
      for (auto& [name, up] : upstreams_) {
        if (up.conn != nullptr) up.conn->close("front shutdown");
        up.conn = nullptr;
      }
      loop_.stop();
    });
  }
  if (loop_thread_.joinable()) loop_thread_.join();
}

bool FrontServer::drain_and_stop(double timeout_s) {
  draining_.store(true, std::memory_order_release);
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> fut = done->get_future();
  loop_.post([this, done] {
    server_->stop_accepting();
    auto check = std::make_shared<std::function<void()>>();
    // Weak self-reference: the strong ref travels through the scheduled
    // timers, so the poll chain releases itself on completion instead of
    // keeping a shared_ptr cycle alive.
    *check = [this, weak = std::weak_ptr<std::function<void()>>(check),
              done] {
      if (pending_.empty()) {
        done->set_value();
        return;
      }
      auto self = weak.lock();
      if (self == nullptr) return;
      loop_.schedule(0.01, [self] { (*self)(); });
    };
    (*check)();
  });
  bool drained = true;
  if (timeout_s > 0) {
    drained = fut.wait_for(std::chrono::duration<double>(timeout_s)) ==
              std::future_status::ready;
  } else {
    fut.wait();
  }
  loop_.post([this] {
    server_->close_all("front drained");
    http_->close_all();
    for (auto& [name, up] : upstreams_) {
      if (up.conn != nullptr) up.conn->close("front drained");
      up.conn = nullptr;
    }
    loop_.stop();
  });
  if (loop_thread_.joinable()) loop_thread_.join();
  stopped_.store(true, std::memory_order_release);
  return drained;
}

// ---- client side --------------------------------------------------------

void FrontServer::on_client_frame(Connection& conn,
                                  const FrameHeader& header,
                                  std::span<const std::uint8_t> payload) {
  if (header.version != kProtocolVersion) {
    conn.send_error_and_close(
        header.corr_id, NetError::VersionMismatch,
        "front speaks protocol v" + std::to_string(kProtocolVersion) +
            ", peer sent v" + std::to_string(header.version));
    return;
  }
  if (header.type == FrameType::Ping) {
    conn.send(encode_empty(FrameType::Pong, header.corr_id));
    return;
  }
  if (header.type != FrameType::FactorizeRequest &&
      header.type != FrameType::SolveRequest &&
      header.type != FrameType::RefactorizeRequest) {
    conn.send(encode_error(
        header.corr_id, NetError::UnsupportedType,
        std::string("front does not handle ") + to_string(header.type)));
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    conn.send(
        encode_error(header.corr_id, NetError::Draining, "front draining"));
    return;
  }
  std::uint64_t digest = 0;
  try {
    digest = peek_pattern_digest(payload);
  } catch (const ProtocolError& e) {
    SPX_OBS(net_counters_.protocol_errors->inc());
    conn.send_error_and_close(header.corr_id, NetError::Malformed, e.what());
    return;
  }
  const std::string shard = ring_.route(digest);
  if (shard.empty()) {
    SPX_OBS(rejected_no_shard_->inc());
    conn.send(encode_error(header.corr_id, NetError::NoShard,
                           "no live shard for this pattern"));
    return;
  }
  Upstream& up = upstreams_.at(shard);
  if (up.inflight >= options_.max_inflight_per_shard) {
    SPX_OBS(rejected_overloaded_->inc());
    conn.send(encode_error(header.corr_id, NetError::Overloaded,
                           "in-flight window to shard '" + shard +
                               "' is full"));
    return;
  }
  const std::uint64_t front_corr = next_corr_++;
  Pending p;
  p.client_conn = conn.id();
  p.client_corr = header.corr_id;
  p.digest = digest;
  p.attempts = 0;
  // Carry the wire deadline onto the loop clock; dispatch_to refuses to
  // send (or re-send) work that has already expired.
  const double deadline_s = peek_deadline(header.type, payload);
  p.deadline_mono = deadline_s > 0 ? loop_.now() + deadline_s : 0;
  FrameHeader fwd = header;
  fwd.corr_id = front_corr;
  p.frame = encode_raw_frame(fwd, payload);
  pending_.emplace(front_corr, std::move(p));
  dispatch_to(shard, front_corr);
}

void FrontServer::dispatch_to(const std::string& shard,
                              std::uint64_t front_corr) {
  Pending& p = pending_.at(front_corr);
  if (p.deadline_mono > 0 && loop_.now() >= p.deadline_mono) {
    // Expired work is dropped, not rerouted: the client already gave up
    // on it, and a shard doing it anyway would only burn capacity.
    SPX_OBS(rejected_deadline_->inc());
    answer_error(front_corr, NetError::DeadlineExceeded,
                 "deadline expired before dispatch to a shard");
    return;
  }
  Upstream& up = upstreams_.at(shard);
  p.shard = shard;
  ++p.attempts;
  ++up.inflight;
  SPX_OBS((p.attempts > 1 ? up.rerouted : up.routed)->inc());
  if (up.conn == nullptr) connect_upstream(shard);
  if (up.conn != nullptr) {
    up.conn->send(p.frame);
  } else {
    // Connect failed synchronously: treat like a lost shard.
    on_upstream_close(shard);
  }
}

void FrontServer::reroute(std::uint64_t front_corr) {
  const auto it = pending_.find(front_corr);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.attempts > options_.max_reroutes) {
    SPX_OBS(rejected_shard_lost_->inc());
    answer_error(front_corr, NetError::NoShard,
                 "request rerouted too many times");
    return;
  }
  const std::string shard = ring_.route(p.digest);
  if (shard.empty()) {
    SPX_OBS(rejected_shard_lost_->inc());
    answer_error(front_corr, NetError::NoShard,
                 "no live shard left for this pattern");
    return;
  }
  dispatch_to(shard, front_corr);
}

void FrontServer::answer_error(std::uint64_t front_corr, NetError code,
                               const std::string& message) {
  const auto it = pending_.find(front_corr);
  if (it == pending_.end()) return;
  const Pending p = std::move(it->second);
  pending_.erase(it);
  if (ConnectionPtr c = server_->find(p.client_conn);
      c != nullptr && c->open()) {
    c->send(encode_error(p.client_corr, code, message));
  }
}

void FrontServer::forward_to_client(std::uint64_t front_corr,
                                    const FrameHeader& header,
                                    std::span<const std::uint8_t> payload) {
  const auto it = pending_.find(front_corr);
  if (it == pending_.end()) return;
  const Pending p = std::move(it->second);
  pending_.erase(it);
  if (ConnectionPtr c = server_->find(p.client_conn);
      c != nullptr && c->open()) {
    FrameHeader fwd = header;
    fwd.corr_id = p.client_corr;
    c->send(encode_raw_frame(fwd, payload));
  }
}

// ---- upstream side ------------------------------------------------------

void FrontServer::on_upstream_frame(const std::string& name,
                                    const FrameHeader& header,
                                    std::span<const std::uint8_t> payload) {
  Upstream& up = upstreams_.at(name);
  if (header.type == FrameType::Pong) {
    up.alive = true;
    up.backoff_s = options_.reconnect_backoff_s;
    // A pong is the half-open probe's success signal; the breaker gates
    // re-admission so an open breaker keeps the shard out of the ring
    // even while its TCP connection answers pings.
    note_breaker(name, true);
    if (ring_.state(name) == ShardState::Down &&
        up.breaker.state(loop_.now()) == BreakerState::Closed) {
      ring_.set_state(name, ShardState::Up);
    }
    return;
  }
  const auto it = pending_.find(header.corr_id);
  if (it == pending_.end()) return;  // stale (rerouted or probe echo)
  if (it->second.shard == name && up.inflight > 0) --up.inflight;

  if (header.type == FrameType::Error) {
    NetError code = NetError::Internal;
    std::string message = "malformed error frame from shard";
    try {
      ErrorFrame err = decode_error(payload);
      code = err.code;
      message = std::move(err.message);
    } catch (const ProtocolError&) {
    }
    if (code == NetError::Draining) {
      // The shard is shedding load: withdraw it from the ring and give
      // this request a new home.  Later responses for requests the shard
      // already admitted still flow back normally.  Draining is graceful
      // -- it feeds the ring state, never the breaker.
      ring_.set_state(name, ShardState::Draining);
      reroute(header.corr_id);
      return;
    }
    if (code == NetError::Internal || code == NetError::Malformed) {
      // The shard misbehaved on a frame we forwarded verbatim: a hard
      // failure signal.
      note_breaker(name, false);
    }
    // Overloaded / UnknownFactor / Malformed / Internal: the client owns
    // the retry decision (backoff, re-factorize...).
    answer_error(header.corr_id, code, message);
    return;
  }
  note_breaker(name, true);
  forward_to_client(header.corr_id, header, payload);
}

void FrontServer::on_upstream_close(const std::string& name) {
  Upstream& up = upstreams_.at(name);
  up.conn = nullptr;
  up.alive = false;
  up.inflight = 0;
  note_breaker(name, false);
  if (ring_.state(name) != ShardState::Draining) {
    ring_.set_state(name, ShardState::Down);
  }
  // Everything in flight to this shard gets rerouted (or bounced after
  // too many attempts); nothing silently disappears with the connection.
  std::vector<std::uint64_t> orphans;
  for (const auto& [corr, p] : pending_) {
    if (p.shard == name) orphans.push_back(corr);
  }
  for (const std::uint64_t corr : orphans) reroute(corr);
  schedule_reconnect(name);
}

void FrontServer::connect_upstream(const std::string& name) {
  Upstream& up = upstreams_.at(name);
  if (up.conn != nullptr) return;
  int fd = -1;
  try {
    fd = connect_nonblocking(up.endpoint.host, up.endpoint.port);
  } catch (const InvalidArgument&) {
    schedule_reconnect(name);
    return;
  }
  // Upstream connections reuse the Connection state machine; ids in the
  // probe range keep them clear of Server-owned client connection ids.
  auto conn = std::make_shared<Connection>(loop_, fd, next_probe_corr_++,
                                           options_.max_payload,
                                           &net_counters_);
  conn->set_frame_handler([this, name](Connection&, const FrameHeader& h,
                                       std::span<const std::uint8_t> p) {
    on_upstream_frame(name, h, p);
  });
  conn->set_close_handler([this, name](Connection&, const std::string&) {
    on_upstream_close(name);
  });
  up.conn = conn;
  conn->register_with_loop();
  // First write doubles as the connect probe: it flushes when the TCP
  // handshake completes, and the Pong marks the shard Up.
  conn->send(encode_empty(FrameType::Ping, next_probe_corr_++));
}

void FrontServer::schedule_reconnect(const std::string& name) {
  Upstream& up = upstreams_.at(name);
  if (up.reconnect_timer != 0) return;
  // Deterministic per-shard jitter (0.75x-1.25x): spreads a fleet's
  // reconnect attempts without needing randomness at schedule time.
  const double jitter =
      0.75 + 0.5 * static_cast<double>(std::hash<std::string>{}(name) %
                                       1024) /
                 1024.0;
  const double delay = up.backoff_s * jitter;
  up.backoff_s =
      std::min(up.backoff_s * 2, options_.max_reconnect_backoff_s);
  up.reconnect_timer = loop_.schedule(delay, [this, name] {
    Upstream& u = upstreams_.at(name);
    u.reconnect_timer = 0;
    if (u.conn == nullptr && !stopped_.load(std::memory_order_acquire)) {
      connect_upstream(name);
    }
  });
}

void FrontServer::arm_probe() {
  loop_.schedule(options_.probe_interval_s, [this] {
    for (auto& [name, up] : upstreams_) {
      // Tick the breaker clock: an elapsed cooldown surfaces here as
      // HalfOpen, and the ping below becomes the recovery probe.
      const BreakerState st = up.breaker.state(loop_.now());
      SPX_OBS(up.breaker_state->set(static_cast<double>(st)));
      if (up.conn != nullptr) {
        up.conn->send(encode_empty(FrameType::Ping, next_probe_corr_++));
      } else if (up.reconnect_timer == 0) {
        connect_upstream(name);
      }
    }
    arm_probe();
  });
}

void FrontServer::note_breaker(const std::string& name, bool ok) {
  Upstream& up = upstreams_.at(name);
  const double now = loop_.now();
  const BreakerState before = up.breaker.state(now);
  const BreakerState after =
      ok ? up.breaker.record_success(now) : up.breaker.record_failure(now);
  SPX_OBS(up.breaker_state->set(static_cast<double>(after)));
  if (after == before) return;
  if (after == BreakerState::Open) {
    SPX_OBS(up.breaker_opened->inc());
    if (ring_.state(name) != ShardState::Draining) {
      ring_.set_state(name, ShardState::Down);
    }
    // Give every request aimed at the tripped shard a new home now;
    // waiting for its connection to die could strand them for seconds.
    std::vector<std::uint64_t> orphans;
    for (const auto& [corr, p] : pending_) {
      if (p.shard == name) orphans.push_back(corr);
    }
    for (const std::uint64_t corr : orphans) reroute(corr);
  } else if (after == BreakerState::Closed &&
             before == BreakerState::HalfOpen) {
    SPX_OBS(up.breaker_reclosed->inc());
    if (up.conn != nullptr && ring_.state(name) == ShardState::Down) {
      ring_.set_state(name, ShardState::Up);
    }
  }
}

HttpResponse FrontServer::handle_http(const std::string& path) {
  if (path == "/healthz") {
    const bool ok = ring_.up_count() > 0;
    return {ok ? 200 : 503, "text/plain",
            ok ? std::string("ok\n") : std::string("failing\n")};
  }
  if (path == "/readyz") {
    if (draining_.load(std::memory_order_acquire)) {
      return {503, "text/plain", "draining\n"};
    }
    if (ring_.up_count() == 0) return {503, "text/plain", "no-shards\n"};
    return {200, "text/plain", "ready\n"};
  }
  if (path == "/metrics") {
    HttpResponse r;
    r.body = obs::prometheus_text(*registry_);
    return r;
  }
  return {404, "text/plain", "not found\n"};
}

}  // namespace spx::net
