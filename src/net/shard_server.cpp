#include "net/shard_server.hpp"

#include <cstring>

#include "obs/export.hpp"

namespace spx::net {

using service::FactorizeResult;
using service::SolveResult;

ShardServer::ShardServer(ShardServerOptions options)
    : options_(std::move(options)),
      registry_(
          &obs::registry_or_global(options_.service.solver.instr.metrics)),
      tracer_(options_.service.solver.instr.tracer) {
  net_counters_.resolve(*registry_);
  rpc_dispatched_ = &registry_->counter("spx_rpc_dispatch_total",
                                        "Protocol requests dispatched");
  rpc_errors_ = &registry_->counter(
      "spx_rpc_errors_total", "Protocol requests answered with Error frames");
  service_ = std::make_unique<service::SolveService>(options_.service);

  ServerOptions sopts;
  sopts.bind = options_.bind;
  sopts.port = options_.port;
  sopts.idle_timeout_s = options_.idle_timeout_s;
  sopts.max_payload = options_.max_payload;
  server_ = std::make_unique<Server>(
      loop_, sopts,
      [this](Connection& c, const FrameHeader& h,
             std::span<const std::uint8_t> p) { on_frame(c, h, p); },
      CloseCallback{}, &net_counters_);
  port_ = server_->port();
  http_ = std::make_unique<HttpServer>(
      loop_, options_.http_port,
      [this](const std::string& path) { return handle_http(path); });
  http_port_ = http_->port();
  // Everything is registered; the reactor can go live.
  loop_thread_ = std::thread([this] { loop_.run(); });
}

ShardServer::~ShardServer() {
  if (!stopped_.load(std::memory_order_acquire)) {
    loop_.post([this] {
      server_->close_all("shard shutdown");
      http_->close_all();
      loop_.stop();
    });
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  // SolveService's destructor completes whatever is still queued.
  service_.reset();
}

void ShardServer::begin_drain() {
  draining_.store(true, std::memory_order_release);
  loop_.post([this] { server_->stop_accepting(); });
}

bool ShardServer::drain_and_stop(double timeout_s) {
  begin_drain();
  const bool drained = service_->drain(timeout_s);
  stop_loop();
  if (loop_thread_.joinable()) loop_thread_.join();
  stopped_.store(true, std::memory_order_release);
  return drained;
}

void ShardServer::stop_loop() {
  // Completion callbacks posted before drain() returned are already in
  // the loop's queue; posting the flush check after them serializes it
  // behind every response send.  The check then waits (bounded) for the
  // write queues to clear so no response is cut off mid-flush.
  loop_.post([this] {
    auto check = std::make_shared<std::function<void(int)>>();
    // The stored lambda holds only a weak self-reference; the strong ref
    // lives in each scheduled timer, so the chain frees itself when done.
    *check = [this, weak = std::weak_ptr<std::function<void(int)>>(check)](
                 int tries) {
      if (!server_->any_write_pending() || tries > 400) {
        server_->close_all("shard drained");
        http_->close_all();
        loop_.stop();
        return;
      }
      auto self = weak.lock();
      if (self == nullptr) return;
      loop_.schedule(0.005, [self, tries] { (*self)(tries + 1); });
    };
    (*check)(0);
  });
}

void ShardServer::on_frame(Connection& conn, const FrameHeader& header,
                           std::span<const std::uint8_t> payload) {
  if (header.version != kProtocolVersion) {
    SPX_OBS(rpc_errors_->inc());
    conn.send_error_and_close(
        header.corr_id, NetError::VersionMismatch,
        "shard speaks protocol v" + std::to_string(kProtocolVersion) +
            ", peer sent v" + std::to_string(header.version));
    return;
  }
  switch (header.type) {
    case FrameType::Ping:
      conn.send(encode_empty(FrameType::Pong, header.corr_id));
      return;
    case FrameType::FactorizeRequest:
      SPX_OBS(rpc_dispatched_->inc());
      handle_factorize(conn, header.corr_id, payload);
      return;
    case FrameType::SolveRequest:
      SPX_OBS(rpc_dispatched_->inc());
      handle_solve(conn, header.corr_id, payload);
      return;
    default:
      SPX_OBS(rpc_errors_->inc());
      conn.send(encode_error(
          header.corr_id, NetError::UnsupportedType,
          std::string("shard does not handle ") + to_string(header.type)));
      return;
  }
}

void ShardServer::handle_factorize(Connection& conn, std::uint64_t corr,
                                   std::span<const std::uint8_t> payload) {
  if (draining()) {
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(corr, NetError::Draining, "shard draining"));
    return;
  }
  FactorizeRequestFrame req;
  try {
    req = decode_factorize_request(payload);
  } catch (const ProtocolError& e) {
    SPX_OBS(rpc_errors_->inc());
    conn.send_error_and_close(corr, NetError::Malformed, e.what());
    return;
  }
  const obs::SpanContext wire_parent{req.trace.trace_id,
                                     req.trace.parent_span};
  obs::ScopedSpan dispatch;
  SPX_OBS(dispatch = obs::ScopedSpan(tracer_, "rpc.dispatch", "net-",
                                     wire_parent, 0,
                                     static_cast<std::int64_t>(corr)));
  auto wconn = std::weak_ptr<Connection>(
      std::static_pointer_cast<Connection>(conn.shared_from_this()));
  auto ticket = std::make_shared<service::Ticket<FactorizeResult>>();
  // on_complete fires on a worker (or this) thread right after the result
  // promise resolves; the posted lambda runs on the loop thread strictly
  // after *ticket below is assigned, so get() never blocks.
  auto finalize = [this, ticket, corr, wconn] {
    const FactorizeResult res = ticket->get();
    FactorizeResponseFrame out;
    out.status = static_cast<std::uint8_t>(res.status);
    out.code = static_cast<std::uint8_t>(res.code);
    out.degraded = res.stats.degraded;
    if (res.ok()) out.factor_id = register_factor(res.factor);
    out.shard = options_.name;
    out.error = res.error;
    out.stats_json = res.stats.to_json().dump();
    if (ConnectionPtr c = wconn.lock(); c != nullptr && c->open()) {
      c->send(encode_factorize_response(corr, out));
    }
  };
  const obs::SpanContext trace =
      dispatch.active() ? dispatch.context() : wire_parent;
  *ticket = service_->submit_factorize(
      req.tenant, req.matrix, req.kind, req.deadline_s, trace,
      [this, finalize] { loop_.post(finalize); });
}

void ShardServer::handle_solve(Connection& conn, std::uint64_t corr,
                               std::span<const std::uint8_t> payload) {
  if (draining()) {
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(corr, NetError::Draining, "shard draining"));
    return;
  }
  SolveRequestFrame req;
  try {
    req = decode_solve_request(payload);
  } catch (const ProtocolError& e) {
    SPX_OBS(rpc_errors_->inc());
    conn.send_error_and_close(corr, NetError::Malformed, e.what());
    return;
  }
  service::FactorHandle factor = find_factor(req.factor_id);
  if (factor == nullptr) {
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(corr, NetError::UnknownFactor,
                           "factor " + std::to_string(req.factor_id) +
                               " is not resident on this shard"));
    return;
  }
  const obs::SpanContext wire_parent{req.trace.trace_id,
                                     req.trace.parent_span};
  obs::ScopedSpan dispatch;
  SPX_OBS(dispatch = obs::ScopedSpan(tracer_, "rpc.dispatch", "net-",
                                     wire_parent, 0,
                                     static_cast<std::int64_t>(corr)));
  auto wconn = std::weak_ptr<Connection>(
      std::static_pointer_cast<Connection>(conn.shared_from_this()));
  auto ticket = std::make_shared<service::Ticket<SolveResult>>();
  auto finalize = [this, ticket, corr, wconn] {
    const SolveResult res = ticket->get();
    SolveResponseFrame out;
    out.status = static_cast<std::uint8_t>(res.status);
    out.code = static_cast<std::uint8_t>(res.code);
    out.degraded = res.stats.degraded;
    out.shard = options_.name;
    out.error = res.error;
    out.stats_json = res.stats.to_json().dump();
    out.x = res.x;
    if (ConnectionPtr c = wconn.lock(); c != nullptr && c->open()) {
      c->send(encode_solve_response(corr, out));
    }
  };
  const obs::SpanContext trace =
      dispatch.active() ? dispatch.context() : wire_parent;
  try {
    *ticket = service_->submit_solve(
        req.tenant, std::move(factor), std::move(req.rhs), req.deadline_s,
        trace, [this, finalize] { loop_.post(finalize); });
  } catch (const InvalidArgument& e) {
    // rhs size / factor mismatch: a caller bug, answered (not a drop).
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(corr, NetError::Malformed, e.what()));
  }
}

std::uint64_t ShardServer::register_factor(service::FactorHandle factor) {
  const std::uint64_t id = next_factor_id_++;
  lru_.push_front(id);
  factors_.emplace(id, FactorEntry{std::move(factor), lru_.begin()});
  while (factors_.size() > options_.max_factors && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    factors_.erase(victim);
  }
  return id;
}

service::FactorHandle ShardServer::find_factor(std::uint64_t id) {
  const auto it = factors_.find(id);
  if (it == factors_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
  return it->second.factor;
}

HttpResponse ShardServer::handle_http(const std::string& path) {
  if (path == "/healthz") {
    const service::ServiceStats st = service_->stats();
    const char* health = st.health();
    const int status = std::strcmp(health, "failing") == 0 ? 503 : 200;
    return {status, "text/plain", std::string(health) + "\n"};
  }
  if (path == "/readyz") {
    if (draining()) return {503, "text/plain", "draining\n"};
    return {200, "text/plain", "ready\n"};
  }
  if (path == "/metrics") {
    HttpResponse r;
    r.body = obs::prometheus_text(*registry_);
    return r;
  }
  return {404, "text/plain", "not found\n"};
}

}  // namespace spx::net
