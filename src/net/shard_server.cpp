#include "net/shard_server.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "obs/export.hpp"

namespace spx::net {

using service::FactorizeResult;
using service::SolveResult;

namespace {

/// FNV-1a fingerprint of a request's content: what makes two wire
/// requests "the same work" for dedup purposes.
std::uint64_t fingerprint(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                          const std::string& tenant) {
  std::uint64_t h = 14695981039346656037ull;
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  fold(a);
  fold(b);
  fold(c);
  for (const char ch : tenant) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ShardServer::ShardServer(ShardServerOptions options)
    : options_(std::move(options)),
      registry_(
          &obs::registry_or_global(options_.service.solver.instr.metrics)),
      tracer_(options_.service.solver.instr.tracer) {
  net_counters_.resolve(*registry_);
  rpc_dispatched_ = &registry_->counter("spx_rpc_dispatch_total",
                                        "Protocol requests dispatched");
  rpc_errors_ = &registry_->counter(
      "spx_rpc_errors_total", "Protocol requests answered with Error frames");
  warm_hits_ = &registry_->counter(
      "spx_shard_warm_hits_total",
      "Factorize requests served from restored/remembered factors");
  dedup_hits_ = &registry_->counter(
      "spx_shard_dedup_hits_total",
      "Requests answered by correlation-id dedup (replayed or coalesced)");
  snap_loaded_ = &registry_->counter("spx_shard_snapshots_loaded_total",
                                     "Factor snapshots restored on startup");
  snap_saved_ = &registry_->counter("spx_shard_snapshots_saved_total",
                                    "Factor snapshots enqueued for writing");
  service_ = std::make_unique<service::SolveService>(options_.service);
  // Replay runs before the listener exists: the registry and warm index
  // are still single-threaded here, and the first client to connect
  // already sees every recovered factor.
  if (!options_.persist_dir.empty()) replay_snapshots();

  ServerOptions sopts;
  sopts.bind = options_.bind;
  sopts.port = options_.port;
  sopts.idle_timeout_s = options_.idle_timeout_s;
  sopts.max_payload = options_.max_payload;
  server_ = std::make_unique<Server>(
      loop_, sopts,
      [this](Connection& c, const FrameHeader& h,
             std::span<const std::uint8_t> p) { on_frame(c, h, p); },
      CloseCallback{}, &net_counters_);
  port_ = server_->port();
  http_ = std::make_unique<HttpServer>(
      loop_, options_.http_port,
      [this](const std::string& path) { return handle_http(path); });
  http_port_ = http_->port();
  // Everything is registered; the reactor can go live.
  loop_thread_ = std::thread([this] { loop_.run(); });
}

ShardServer::~ShardServer() {
  if (!stopped_.load(std::memory_order_acquire)) {
    loop_.post([this] {
      server_->close_all("shard shutdown");
      http_->close_all();
      loop_.stop();
    });
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  // SolveService's destructor completes whatever is still queued.
  service_.reset();
}

void ShardServer::begin_drain() {
  draining_.store(true, std::memory_order_release);
  loop_.post([this] { server_->stop_accepting(); });
}

bool ShardServer::drain_and_stop(double timeout_s) {
  begin_drain();
  const bool drained = service_->drain(timeout_s);
  stop_loop();
  if (loop_thread_.joinable()) loop_thread_.join();
  stopped_.store(true, std::memory_order_release);
  return drained;
}

void ShardServer::stop_loop() {
  // Completion callbacks posted before drain() returned are already in
  // the loop's queue; posting the flush check after them serializes it
  // behind every response send.  The check then waits (bounded) for the
  // write queues to clear so no response is cut off mid-flush.
  loop_.post([this] {
    auto check = std::make_shared<std::function<void(int)>>();
    // The stored lambda holds only a weak self-reference; the strong ref
    // lives in each scheduled timer, so the chain frees itself when done.
    *check = [this, weak = std::weak_ptr<std::function<void(int)>>(check)](
                 int tries) {
      if (!server_->any_write_pending() || tries > 400) {
        server_->close_all("shard drained");
        http_->close_all();
        loop_.stop();
        return;
      }
      auto self = weak.lock();
      if (self == nullptr) return;
      loop_.schedule(0.005, [self, tries] { (*self)(tries + 1); });
    };
    (*check)(0);
  });
}

void ShardServer::on_frame(Connection& conn, const FrameHeader& header,
                           std::span<const std::uint8_t> payload) {
  if (header.version != kProtocolVersion) {
    SPX_OBS(rpc_errors_->inc());
    conn.send_error_and_close(
        header.corr_id, NetError::VersionMismatch,
        "shard speaks protocol v" + std::to_string(kProtocolVersion) +
            ", peer sent v" + std::to_string(header.version));
    return;
  }
  switch (header.type) {
    case FrameType::Ping:
      conn.send(encode_empty(FrameType::Pong, header.corr_id));
      return;
    case FrameType::FactorizeRequest:
      SPX_OBS(rpc_dispatched_->inc());
      handle_factorize(conn, header.corr_id, payload);
      return;
    case FrameType::SolveRequest:
      SPX_OBS(rpc_dispatched_->inc());
      handle_solve(conn, header.corr_id, payload);
      return;
    case FrameType::RefactorizeRequest:
      SPX_OBS(rpc_dispatched_->inc());
      handle_refactorize(conn, header.corr_id, payload);
      return;
    default:
      SPX_OBS(rpc_errors_->inc());
      conn.send(encode_error(
          header.corr_id, NetError::UnsupportedType,
          std::string("shard does not handle ") + to_string(header.type)));
      return;
  }
}

void ShardServer::handle_factorize(Connection& conn, std::uint64_t corr,
                                   std::span<const std::uint8_t> payload) {
  if (draining()) {
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(corr, NetError::Draining, "shard draining"));
    return;
  }
  FactorizeRequestFrame req;
  try {
    req = decode_factorize_request(payload);
  } catch (const ProtocolError& e) {
    SPX_OBS(rpc_errors_->inc());
    conn.send_error_and_close(corr, NetError::Malformed, e.what());
    return;
  }
  // Content identity: pattern digest + value hash + kind.  Drives both
  // the warm index (identical inputs => identical factors) and dedup.
  const std::uint64_t digest = pattern_digest(*req.matrix);
  const std::uint64_t vhash = persist::value_hash(req.matrix->values());
  const std::uint64_t fp = fingerprint(
      digest, vhash, static_cast<std::uint64_t>(req.kind), req.tenant);
  if (dedup_admit(conn, corr, fp)) return;
  const DedupKey key{corr, fp};
  const WarmKey wkey{digest, vhash, static_cast<std::uint8_t>(req.kind)};
  // The warm index exists only under persistence: without snapshots a
  // repeat factorize runs normally (callers may rely on fresh stats).
  if (const auto wit = warm_.find(wkey);
      store_ != nullptr && wit != warm_.end()) {
    if (find_factor(wit->second) != nullptr) {
      // Restored (or remembered) factor for this exact input: answer
      // without a single flop of numeric work.
      SPX_OBS(warm_hits_->inc());
      FactorizeResponseFrame out;
      out.status = static_cast<std::uint8_t>(service::RequestStatus::Done);
      out.code = static_cast<std::uint8_t>(service::ErrorCode::None);
      out.degraded = false;
      out.factor_id = wit->second;
      out.shard = options_.name;
      out.stats_json = "{\"warm\":true}";
      dedup_finish(key, encode_factorize_response(corr, out), true);
      return;
    }
    warm_.erase(wit);  // factor was LRU-evicted; recompute below
    warm_count_.store(warm_.size(), std::memory_order_release);
  }
  const obs::SpanContext wire_parent{req.trace.trace_id,
                                     req.trace.parent_span};
  obs::ScopedSpan dispatch;
  SPX_OBS(dispatch = obs::ScopedSpan(tracer_, "rpc.dispatch", "net-",
                                     wire_parent, 0,
                                     static_cast<std::int64_t>(corr)));
  auto ticket = std::make_shared<service::Ticket<FactorizeResult>>();
  // on_complete fires on a worker (or this) thread right after the result
  // promise resolves; the posted lambda runs on the loop thread strictly
  // after *ticket below is assigned, so get() never blocks.  Responses --
  // to the requester and to any deduped failover retries -- go through
  // the dedup entry's waiter list.
  auto finalize = [this, ticket, corr, key, wkey] {
    const FactorizeResult res = ticket->get();
    FactorizeResponseFrame out;
    out.status = static_cast<std::uint8_t>(res.status);
    out.code = static_cast<std::uint8_t>(res.code);
    out.degraded = res.stats.degraded;
    if (res.ok()) {
      out.factor_id = register_factor(res.factor);
      // fp32 factors stay memory-only: the snapshot format carries fp64
      // factor values, and the float path needs its reference matrix for
      // refinement, so they are neither warm-indexed nor persisted.
      if (store_ != nullptr && !res.factor->fp32()) {
        warm_[wkey] = out.factor_id;
        warm_count_.store(warm_.size(), std::memory_order_release);
        if (!res.stats.degraded) {
          persist_factor(wkey.digest, wkey.vhash,
                         static_cast<Factorization>(wkey.kind), out.factor_id,
                         *res.factor);
        }
      }
    }
    out.shard = options_.name;
    out.error = res.error;
    out.stats_json = res.stats.to_json().dump();
    // Cache only successes: a failed attempt must stay retryable on this
    // shard (e.g. after an injected fault or a transient overload).
    dedup_finish(key, encode_factorize_response(corr, out), res.ok());
  };
  service::RequestOptions ropts;
  ropts.tenant = req.tenant;
  ropts.deadline_s = req.deadline_s;
  ropts.trace = dispatch.active() ? dispatch.context() : wire_parent;
  ropts.on_complete = [this, finalize] { loop_.post(finalize); };
  *ticket =
      service_->submit_factorize(std::move(ropts), req.matrix, req.kind);
}

void ShardServer::handle_solve(Connection& conn, std::uint64_t corr,
                               std::span<const std::uint8_t> payload) {
  if (draining()) {
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(corr, NetError::Draining, "shard draining"));
    return;
  }
  SolveRequestFrame req;
  try {
    req = decode_solve_request(payload);
  } catch (const ProtocolError& e) {
    SPX_OBS(rpc_errors_->inc());
    conn.send_error_and_close(corr, NetError::Malformed, e.what());
    return;
  }
  service::FactorHandle factor = find_factor(req.factor_id);
  if (factor == nullptr) {
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(corr, NetError::UnknownFactor,
                           "factor " + std::to_string(req.factor_id) +
                               " is not resident on this shard"));
    return;
  }
  const std::uint64_t fp = fingerprint(
      req.factor_id, persist::value_hash(req.rhs),
      static_cast<std::uint64_t>(FrameType::SolveRequest), req.tenant);
  if (dedup_admit(conn, corr, fp)) return;
  const DedupKey key{corr, fp};
  const obs::SpanContext wire_parent{req.trace.trace_id,
                                     req.trace.parent_span};
  obs::ScopedSpan dispatch;
  SPX_OBS(dispatch = obs::ScopedSpan(tracer_, "rpc.dispatch", "net-",
                                     wire_parent, 0,
                                     static_cast<std::int64_t>(corr)));
  auto ticket = std::make_shared<service::Ticket<SolveResult>>();
  auto finalize = [this, ticket, corr, key] {
    const SolveResult res = ticket->get();
    SolveResponseFrame out;
    out.status = static_cast<std::uint8_t>(res.status);
    out.code = static_cast<std::uint8_t>(res.code);
    out.degraded = res.stats.degraded;
    out.shard = options_.name;
    out.error = res.error;
    out.stats_json = res.stats.to_json().dump();
    out.x = res.x;
    dedup_finish(key, encode_solve_response(corr, out), res.ok());
  };
  service::RequestOptions ropts;
  ropts.tenant = req.tenant;
  ropts.deadline_s = req.deadline_s;
  ropts.trace = dispatch.active() ? dispatch.context() : wire_parent;
  ropts.on_complete = [this, finalize] { loop_.post(finalize); };
  try {
    *ticket = service_->submit_solve(std::move(ropts), std::move(factor),
                                     std::move(req.rhs));
  } catch (const InvalidArgument& e) {
    // rhs size / factor mismatch: a caller bug, answered (not a drop).
    SPX_OBS(rpc_errors_->inc());
    dedup_finish(key, encode_error(corr, NetError::Malformed, e.what()),
                 false);
  }
}

void ShardServer::handle_refactorize(Connection& conn, std::uint64_t corr,
                                     std::span<const std::uint8_t> payload) {
  if (draining()) {
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(corr, NetError::Draining, "shard draining"));
    return;
  }
  RefactorizeRequestFrame req;
  try {
    req = decode_refactorize_request(payload);
  } catch (const ProtocolError& e) {
    SPX_OBS(rpc_errors_->inc());
    conn.send_error_and_close(corr, NetError::Malformed, e.what());
    return;
  }
  service::FactorHandle factor = find_factor(req.factor_id);
  if (factor == nullptr) {
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(corr, NetError::UnknownFactor,
                           "factor " + std::to_string(req.factor_id) +
                               " is not resident on this shard"));
    return;
  }
  if (!factor->refactorizable()) {
    // A snapshot-restored factor has no retained matrix to ingest values
    // into; the client's recovery action is the same as for an evicted
    // factor: submit a full factorize.
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(corr, NetError::UnknownFactor,
                           "factor " + std::to_string(req.factor_id) +
                               " cannot ingest values (restored from a "
                               "snapshot); submit a full factorize"));
    return;
  }
  // Value ingestion is digest-checked: new values for a *different*
  // pattern are a caller bug, not a refactorize.
  if (factor->solver().pattern_digest() != req.pattern_digest) {
    SPX_OBS(rpc_errors_->inc());
    conn.send(encode_error(
        corr, NetError::Malformed,
        "pattern digest does not match factor " +
            std::to_string(req.factor_id) +
            "; refactorize ingests new values for the factorized pattern"));
    return;
  }
  const std::uint64_t vhash = persist::value_hash(req.values);
  const std::uint64_t fp = fingerprint(
      req.factor_id, vhash,
      static_cast<std::uint64_t>(FrameType::RefactorizeRequest), req.tenant);
  if (dedup_admit(conn, corr, fp)) return;
  const DedupKey key{corr, fp};
  const obs::SpanContext wire_parent{req.trace.trace_id,
                                     req.trace.parent_span};
  obs::ScopedSpan dispatch;
  SPX_OBS(dispatch = obs::ScopedSpan(tracer_, "rpc.dispatch", "net-",
                                     wire_parent, 0,
                                     static_cast<std::int64_t>(corr)));
  auto ticket = std::make_shared<service::Ticket<FactorizeResult>>();
  const std::uint64_t factor_id = req.factor_id;
  const WarmKey wkey{req.pattern_digest, vhash,
                     static_cast<std::uint8_t>(factor->kind())};
  auto finalize = [this, ticket, corr, key, wkey, factor_id] {
    const FactorizeResult res = ticket->get();
    FactorizeResponseFrame out;
    out.status = static_cast<std::uint8_t>(res.status);
    out.code = static_cast<std::uint8_t>(res.code);
    out.degraded = res.stats.degraded;
    if (res.ok()) {
      out.factor_id = factor_id;  // same handle, refreshed values
      if (store_ != nullptr) {
        // The old values are gone, so every warm entry pointing at this
        // factor is stale; replace them with the ingested identity.
        for (auto it = warm_.begin(); it != warm_.end();) {
          it = it->second == factor_id ? warm_.erase(it) : std::next(it);
        }
        if (!res.factor->fp32()) {
          warm_[wkey] = factor_id;
          if (!res.stats.degraded) {
            persist_factor(wkey.digest, wkey.vhash,
                           static_cast<Factorization>(wkey.kind), factor_id,
                           *res.factor);
          }
        }
        warm_count_.store(warm_.size(), std::memory_order_release);
      }
    }
    out.shard = options_.name;
    out.error = res.error;
    out.stats_json = res.stats.to_json().dump();
    dedup_finish(key, encode_refactorize_response(corr, out), res.ok());
  };
  service::RequestOptions ropts;
  ropts.tenant = req.tenant;
  ropts.deadline_s = req.deadline_s;
  ropts.trace = dispatch.active() ? dispatch.context() : wire_parent;
  ropts.on_complete = [this, finalize] { loop_.post(finalize); };
  try {
    *ticket = service_->submit_refactorize(std::move(ropts),
                                           std::move(factor),
                                           std::move(req.values));
  } catch (const InvalidArgument& e) {
    // Value-count mismatch: a caller bug, answered (not a drop).
    SPX_OBS(rpc_errors_->inc());
    dedup_finish(key, encode_error(corr, NetError::Malformed, e.what()),
                 false);
  }
}

std::uint64_t ShardServer::register_factor(service::FactorHandle factor) {
  const std::uint64_t id = next_factor_id_++;
  lru_.push_front(id);
  factors_.emplace(id, FactorEntry{std::move(factor), lru_.begin()});
  while (factors_.size() > options_.max_factors && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    factors_.erase(victim);
  }
  return id;
}

void ShardServer::register_factor_as(std::uint64_t id,
                                     service::FactorHandle factor) {
  if (id == 0 || factors_.find(id) != factors_.end()) return;
  lru_.push_front(id);
  factors_.emplace(id, FactorEntry{std::move(factor), lru_.begin()});
  next_factor_id_ = std::max(next_factor_id_, id + 1);
  while (factors_.size() > options_.max_factors && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    factors_.erase(victim);
  }
}

service::FactorHandle ShardServer::find_factor(std::uint64_t id) {
  const auto it = factors_.find(id);
  if (it == factors_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
  return it->second.factor;
}

void ShardServer::replay_snapshots() {
  persist::FactorStoreOptions po;
  po.dir = options_.persist_dir;
  po.min_interval_s = options_.persist_interval_s;
  store_ = std::make_unique<persist::FactorStore>(std::move(po));
  for (persist::LoadedSnapshot& loaded : store_->load_all()) {
    persist::FactorSnapshot& sn = loaded.snap;
    try {
      Solver<real_t> solver(options_.service.solver);
      solver.adopt_analysis(sn.analysis, sn.pattern_digest);
      solver.restore_factors(sn.kind, sn.lval, sn.uval, sn.dval, sn.quality);
      service::FactorHandle handle = service_->adopt_factor(std::move(solver));
      if (sn.factor_id == 0) sn.factor_id = next_factor_id_;
      register_factor_as(sn.factor_id, std::move(handle));
      warm_[WarmKey{sn.pattern_digest, sn.value_hash,
                    static_cast<std::uint8_t>(sn.kind)}] = sn.factor_id;
      SPX_OBS(snap_loaded_->inc());
      logf(LogLevel::Info, "persist: %s warmed factor %llu from %s",
           options_.name.c_str(),
           static_cast<unsigned long long>(sn.factor_id),
           loaded.path.c_str());
    } catch (const std::exception& e) {
      // Restoring must never take the shard down: worst case is a cold
      // start for this pattern.
      logf(LogLevel::Warn, "persist: cannot restore %s: %s",
           loaded.path.c_str(), e.what());
    }
  }
  warm_count_.store(warm_.size(), std::memory_order_release);
}

void ShardServer::persist_factor(std::uint64_t digest, std::uint64_t vhash,
                                 Factorization kind, std::uint64_t factor_id,
                                 const service::Factor& factor) {
  const Solver<real_t>& solver = factor.solver();
  const FactorData<real_t>& fd = solver.factor_data();
  persist::FactorSnapshot snap;
  snap.pattern_digest = digest;
  snap.value_hash = vhash;
  snap.kind = kind;
  snap.factor_id = factor_id;
  snap.analysis = solver.analysis_shared();
  snap.quality = fd.quality();
  snap.lval.assign(fd.lvalues().begin(), fd.lvalues().end());
  snap.uval.assign(fd.uvalues().begin(), fd.uvalues().end());
  snap.dval.assign(fd.dvalues().begin(), fd.dvalues().end());
  if (store_->save(std::move(snap))) SPX_OBS(snap_saved_->inc());
}

bool ShardServer::dedup_admit(Connection& conn, std::uint64_t corr,
                              std::uint64_t fp) {
  const DedupKey key{corr, fp};
  const auto it = dedup_.find(key);
  if (it == dedup_.end()) {
    // First sighting: the requester becomes the entry's first waiter and
    // the caller proceeds to execute.
    DedupEntry e;
    e.waiters.emplace_back(
        std::static_pointer_cast<Connection>(conn.shared_from_this()), corr);
    dedup_.emplace(key, std::move(e));
    return false;
  }
  SPX_OBS(dedup_hits_->inc());
  if (it->second.done) {
    // Failover retry of acknowledged work: replay the stored response
    // (same corr id -- it is part of the key) without re-executing.
    dedup_lru_.splice(dedup_lru_.begin(), dedup_lru_, it->second.lru);
    conn.send(it->second.response);
    return true;
  }
  // The original is still executing; park this connection on it.
  it->second.waiters.emplace_back(
      std::static_pointer_cast<Connection>(conn.shared_from_this()), corr);
  return true;
}

void ShardServer::dedup_finish(const DedupKey& key,
                               const std::vector<std::uint8_t>& resp,
                               bool cache) {
  const auto it = dedup_.find(key);
  if (it == dedup_.end()) return;
  for (auto& [wconn, corr] : it->second.waiters) {
    (void)corr;  // same corr for every waiter: it is part of the key
    if (ConnectionPtr c = wconn.lock(); c != nullptr && c->open()) {
      c->send(resp);
    }
  }
  it->second.waiters.clear();
  if (!cache || options_.dedup_capacity == 0) {
    dedup_.erase(it);
    return;
  }
  it->second.done = true;
  it->second.response = resp;
  dedup_lru_.push_front(key);
  it->second.lru = dedup_lru_.begin();
  while (dedup_lru_.size() > options_.dedup_capacity) {
    dedup_.erase(dedup_lru_.back());
    dedup_lru_.pop_back();
  }
}

HttpResponse ShardServer::handle_http(const std::string& path) {
  if (path == "/healthz") {
    const service::ServiceStats st = service_->stats();
    const char* health = st.health();
    const int status = std::strcmp(health, "failing") == 0 ? 503 : 200;
    return {status, "text/plain", std::string(health) + "\n"};
  }
  if (path == "/readyz") {
    if (draining()) return {503, "text/plain", "draining\n"};
    // warm = factors recovered or remembered and still resident; a
    // restarted shard advertises its head start here.
    return {200, "text/plain",
            "ready warm=" +
                std::to_string(warm_count_.load(std::memory_order_acquire)) +
                "\n"};
  }
  if (path == "/metrics") {
    HttpResponse r;
    r.body = obs::prometheus_text(*registry_);
    return r;
  }
  return {404, "text/plain", "not found\n"};
}

}  // namespace spx::net
