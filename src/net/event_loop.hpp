// Epoll-based event loop: the single-threaded reactor under every network
// endpoint (shard listener, front-end, HTTP probes).
//
// One thread calls run(); everything else talks to the loop through the
// thread-safe post() (an eventfd wakes the sleeping epoll_wait).  Fd
// handlers and timers only ever fire on the loop thread, so connection
// state machines need no locks.  Timers are a min-heap consulted for the
// epoll timeout; handlers must tolerate spurious wakeups (level-triggered
// epoll, nonblocking fds).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

namespace spx::net {

/// Receiver of readiness events for one registered fd.
struct FdHandler {
  virtual ~FdHandler() = default;
  /// `events` is the epoll event mask (EPOLLIN/EPOLLOUT/EPOLLHUP/...).
  virtual void on_events(std::uint32_t events) = 0;
};

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (must be nonblocking) for `events`; `handler` must
  /// outlive the registration.  Loop thread only (or before run()).
  void add_fd(int fd, std::uint32_t events, FdHandler* handler);
  void mod_fd(int fd, std::uint32_t events);
  /// Deregisters; safe against events already harvested for this fd in
  /// the current epoll batch (they are dropped on dispatch).
  void del_fd(int fd);

  /// Enqueues `fn` to run on the loop thread; safe from any thread, and
  /// the only cross-thread entry point.  Wakes a sleeping run().
  void post(Callback fn);

  /// Runs `fn` on the loop thread after `delay_s` seconds.  Returns a
  /// cancellation id.  Loop thread only.
  std::uint64_t schedule(double delay_s, Callback fn);
  void cancel_timer(std::uint64_t id);

  /// Dispatches events until stop().  The calling thread becomes the loop
  /// thread.
  void run();
  /// Makes run() return once the current dispatch round finishes; safe
  /// from any thread and from handlers.
  void stop();

  /// Monotonic seconds (the timer clock).
  double now() const;

  bool in_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

 private:
  struct Timer {
    double due = 0;
    std::uint64_t id = 0;
    bool operator>(const Timer& o) const { return due > o.due; }
  };

  void drain_posted();
  int next_timeout_ms() const;
  void fire_due_timers();

  int epfd_ = -1;
  int wake_fd_ = -1;
  std::thread::id loop_thread_;
  bool running_ = false;

  std::unordered_map<int, FdHandler*> handlers_;

  std::mutex post_mutex_;
  std::vector<Callback> posted_;
  bool stop_requested_ = false;

  std::uint64_t next_timer_ = 1;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>>
      timer_heap_;
  std::unordered_map<std::uint64_t, Callback> timer_fns_;  ///< live timers
};

}  // namespace spx::net
