// A solve shard: SolveService wrapped behind the wire protocol.  One
// epoll loop (on a dedicated thread) runs the protocol listener and the
// HTTP probe endpoint; factorize/solve requests decode into service
// submissions, and worker-thread completions hop back onto the loop via
// Connection::post_send.  Completed factors live in an id-keyed LRU
// registry so remote solves can reference them across connections.
//
// Graceful drain (the SIGTERM path in tools/spx_shard.cpp):
//   1. stop accepting; in-progress reads still parse
//   2. new requests answer Error(Draining) -- the front-end reroutes them
//   3. SolveService::drain() runs every already-admitted request
//   4. responses flush, connections close, the loop stops
// No accepted request is ever dropped.
//
// Crash tolerance (docs/SERVICE.md "Failure modes and recovery"):
//   - With `persist_dir` set, completed non-degraded factorizations are
//     snapshotted to disk (async, rate-limited, crash-atomic) and
//     replayed on startup: the restarted shard re-registers each factor
//     under its pre-crash id, seeds the analysis cache, and serves an
//     identical (pattern, values, kind) factorize as an immediate warm
//     hit without redoing any numeric work.
//   - Factorize/solve requests are deduplicated by (correlation id,
//     content fingerprint): a failover retry of work this shard already
//     completed replays the stored response instead of re-executing, and
//     a retry racing the original execution joins it as a waiter.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/http.hpp"
#include "net/server.hpp"
#include "persist/factor_store.hpp"
#include "service/solve_service.hpp"

namespace spx::net {

struct ShardServerOptions {
  std::string name = "shard";  ///< reported in responses (affinity checks)
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;       ///< protocol port (0 = ephemeral)
  std::uint16_t http_port = 0;  ///< probe/metrics port (0 = ephemeral)
  double idle_timeout_s = 0;    ///< idle client connections are closed
  std::size_t max_payload = kDefaultMaxPayload;
  /// Resident factor cap; least-recently-used factors are dropped beyond
  /// it (clients holding a dropped id get UnknownFactor and re-factorize).
  std::size_t max_factors = 64;
  /// Snapshot directory for factor persistence (empty = disabled).
  /// Loaded on startup, written on factorize completion.
  std::string persist_dir;
  /// Per-key floor between snapshot rewrites (FactorStoreOptions).
  double persist_interval_s = 5.0;
  /// Completed responses retained for correlation-id dedup replay.
  std::size_t dedup_capacity = 256;
  service::ServiceOptions service;
};

class ShardServer {
 public:
  explicit ShardServer(ShardServerOptions options);
  ~ShardServer();
  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint16_t http_port() const { return http_port_; }
  const std::string& name() const { return options_.name; }
  service::ServiceStats service_stats() const { return service_->stats(); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Steps 1-2 of the drain: stop accepting, answer Draining.  Thread-safe
  /// and idempotent.
  void begin_drain();
  /// Full graceful shutdown: begin_drain, run every admitted request
  /// (bounded by `timeout_s`; 0 = no bound), flush responses, stop the
  /// loop.  Returns true when the service drained completely.
  bool drain_and_stop(double timeout_s = 0);

  /// Warm factors the store proved resident on startup (snapshot replay).
  std::size_t warm_factors() const {
    return warm_count_.load(std::memory_order_acquire);
  }

 private:
  struct FactorEntry {
    service::FactorHandle factor;
    std::list<std::uint64_t>::iterator lru;  ///< position in lru_
  };
  /// Identity of a warm-servable factorization: same pattern, same
  /// values, same kind => bit-identical factors.
  struct WarmKey {
    std::uint64_t digest = 0;
    std::uint64_t vhash = 0;
    std::uint8_t kind = 0;
    friend bool operator==(const WarmKey&, const WarmKey&) = default;
  };
  struct WarmKeyHash {
    std::size_t operator()(const WarmKey& k) const {
      std::uint64_t h = k.digest ^ (k.vhash * 0x9e3779b97f4a7c15ull);
      h ^= (h >> 29) ^ k.kind;
      return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ull);
    }
  };
  /// Dedup identity: the wire correlation id plus a fingerprint of the
  /// request content (so unrelated requests reusing a corr id from a
  /// different front instance never alias).
  struct DedupKey {
    std::uint64_t corr = 0;
    std::uint64_t fingerprint = 0;
    friend bool operator==(const DedupKey&, const DedupKey&) = default;
  };
  struct DedupKeyHash {
    std::size_t operator()(const DedupKey& k) const {
      return static_cast<std::size_t>(
          (k.corr ^ k.fingerprint) * 0x9e3779b97f4a7c15ull);
    }
  };
  struct DedupEntry {
    bool done = false;
    /// Response frame (pre-seal encoding) once done; corr is patched per
    /// waiter on replay.
    std::vector<std::uint8_t> response;
    /// Connections waiting on the in-flight original.
    std::vector<std::pair<std::weak_ptr<Connection>, std::uint64_t>> waiters;
    std::list<DedupKey>::iterator lru;  ///< valid once done
  };

  void on_frame(Connection& conn, const FrameHeader& header,
                std::span<const std::uint8_t> payload);
  void handle_factorize(Connection& conn, std::uint64_t corr,
                        std::span<const std::uint8_t> payload);
  void handle_solve(Connection& conn, std::uint64_t corr,
                    std::span<const std::uint8_t> payload);
  void handle_refactorize(Connection& conn, std::uint64_t corr,
                          std::span<const std::uint8_t> payload);
  /// Registers a completed factor, evicting LRU beyond max_factors.
  std::uint64_t register_factor(service::FactorHandle factor);
  /// Replay path: registers under a persisted id (no-op on collision).
  void register_factor_as(std::uint64_t id, service::FactorHandle factor);
  service::FactorHandle find_factor(std::uint64_t id);
  /// Loads every snapshot in persist_dir into the service + registry.
  void replay_snapshots();
  /// Enqueues an async snapshot write of a completed factor.
  void persist_factor(std::uint64_t digest, std::uint64_t vhash,
                      Factorization kind, std::uint64_t factor_id,
                      const service::Factor& factor);
  /// True when the request was answered (replay) or parked as a waiter
  /// on an identical in-flight request; false registers it as in-flight.
  bool dedup_admit(Connection& conn, std::uint64_t corr,
                   std::uint64_t fingerprint);
  /// Completes a dedup entry: answers every waiter; `cache` keeps the
  /// response for replay (successes), false erases it (retryable fails).
  void dedup_finish(const DedupKey& key, const std::vector<std::uint8_t>& resp,
                    bool cache);
  HttpResponse handle_http(const std::string& path);
  void stop_loop();

  ShardServerOptions options_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  NetCounters net_counters_;
  obs::Counter* rpc_dispatched_ = nullptr;  ///< spx_rpc_dispatch_total
  obs::Counter* rpc_errors_ = nullptr;      ///< spx_rpc_errors_total
  obs::Counter* warm_hits_ = nullptr;       ///< spx_shard_warm_hits_total
  obs::Counter* dedup_hits_ = nullptr;      ///< spx_shard_dedup_hits_total
  obs::Counter* snap_loaded_ = nullptr;  ///< spx_shard_snapshots_loaded_total
  obs::Counter* snap_saved_ = nullptr;   ///< spx_shard_snapshots_saved_total
  std::unique_ptr<service::SolveService> service_;
  std::unique_ptr<persist::FactorStore> store_;
  EventLoop loop_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<HttpServer> http_;
  std::uint16_t port_ = 0;
  std::uint16_t http_port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  // Factor registry: loop thread only.
  std::unordered_map<std::uint64_t, FactorEntry> factors_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::uint64_t next_factor_id_ = 1;
  // Warm index + request dedup: loop thread only (warm_count_ is read by
  // handle_http on the same loop and by tests off-loop, hence atomic).
  std::unordered_map<WarmKey, std::uint64_t, WarmKeyHash> warm_;
  std::atomic<std::size_t> warm_count_{0};
  std::unordered_map<DedupKey, DedupEntry, DedupKeyHash> dedup_;
  std::list<DedupKey> dedup_lru_;  ///< completed entries, front = newest
  std::thread loop_thread_;
};

}  // namespace spx::net
