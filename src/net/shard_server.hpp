// A solve shard: SolveService wrapped behind the wire protocol.  One
// epoll loop (on a dedicated thread) runs the protocol listener and the
// HTTP probe endpoint; factorize/solve requests decode into service
// submissions, and worker-thread completions hop back onto the loop via
// Connection::post_send.  Completed factors live in an id-keyed LRU
// registry so remote solves can reference them across connections.
//
// Graceful drain (the SIGTERM path in tools/spx_shard.cpp):
//   1. stop accepting; in-progress reads still parse
//   2. new requests answer Error(Draining) -- the front-end reroutes them
//   3. SolveService::drain() runs every already-admitted request
//   4. responses flush, connections close, the loop stops
// No accepted request is ever dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/http.hpp"
#include "net/server.hpp"
#include "service/solve_service.hpp"

namespace spx::net {

struct ShardServerOptions {
  std::string name = "shard";  ///< reported in responses (affinity checks)
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;       ///< protocol port (0 = ephemeral)
  std::uint16_t http_port = 0;  ///< probe/metrics port (0 = ephemeral)
  double idle_timeout_s = 0;    ///< idle client connections are closed
  std::size_t max_payload = kDefaultMaxPayload;
  /// Resident factor cap; least-recently-used factors are dropped beyond
  /// it (clients holding a dropped id get UnknownFactor and re-factorize).
  std::size_t max_factors = 64;
  service::ServiceOptions service;
};

class ShardServer {
 public:
  explicit ShardServer(ShardServerOptions options);
  ~ShardServer();
  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint16_t http_port() const { return http_port_; }
  const std::string& name() const { return options_.name; }
  service::ServiceStats service_stats() const { return service_->stats(); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Steps 1-2 of the drain: stop accepting, answer Draining.  Thread-safe
  /// and idempotent.
  void begin_drain();
  /// Full graceful shutdown: begin_drain, run every admitted request
  /// (bounded by `timeout_s`; 0 = no bound), flush responses, stop the
  /// loop.  Returns true when the service drained completely.
  bool drain_and_stop(double timeout_s = 0);

 private:
  struct FactorEntry {
    service::FactorHandle factor;
    std::list<std::uint64_t>::iterator lru;  ///< position in lru_
  };

  void on_frame(Connection& conn, const FrameHeader& header,
                std::span<const std::uint8_t> payload);
  void handle_factorize(Connection& conn, std::uint64_t corr,
                        std::span<const std::uint8_t> payload);
  void handle_solve(Connection& conn, std::uint64_t corr,
                    std::span<const std::uint8_t> payload);
  /// Registers a completed factor, evicting LRU beyond max_factors.
  std::uint64_t register_factor(service::FactorHandle factor);
  service::FactorHandle find_factor(std::uint64_t id);
  HttpResponse handle_http(const std::string& path);
  void stop_loop();

  ShardServerOptions options_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  NetCounters net_counters_;
  obs::Counter* rpc_dispatched_ = nullptr;  ///< spx_rpc_dispatch_total
  obs::Counter* rpc_errors_ = nullptr;      ///< spx_rpc_errors_total
  std::unique_ptr<service::SolveService> service_;
  EventLoop loop_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<HttpServer> http_;
  std::uint16_t port_ = 0;
  std::uint16_t http_port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  // Factor registry: loop thread only.
  std::unordered_map<std::uint64_t, FactorEntry> factors_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::uint64_t next_factor_id_ = 1;
  std::thread loop_thread_;
};

}  // namespace spx::net
