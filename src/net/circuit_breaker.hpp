// Per-shard circuit breaker: pure state-machine logic, no clocks or
// threads of its own (callers pass monotonic `now` seconds -- the event
// loop's EventLoop::now() in production, a hand-cranked double in tests).
//
//   Closed    normal traffic; outcomes fill a rolling window.  When the
//             window holds >= min_samples and the error ratio reaches
//             error_threshold, the breaker Opens.
//   Open      the shard is presumed sick: the front withdraws it from
//             the ring and reroutes its in-flight work.  After
//             open_cooldown_s the breaker moves to HalfOpen.
//   HalfOpen  one probe decides: a success Closes (window reset), a
//             failure re-Opens (cooldown restarts).
//
// This layers *under* the ring's Up/Draining/Down states: Draining stays
// a graceful, breaker-neutral signal, while repeated hard failures
// (connection drops, Internal errors) trip the breaker even when the
// TCP connection looks healthy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spx::net {

enum class BreakerState : std::uint8_t { Closed = 0, Open = 1, HalfOpen = 2 };

const char* to_string(BreakerState s);

struct CircuitBreakerOptions {
  std::size_t window = 16;      ///< rolling outcome window (samples)
  std::size_t min_samples = 4;  ///< ratio is meaningless below this
  double error_threshold = 0.5;  ///< open at >= this error ratio
  double open_cooldown_s = 1.0;  ///< Open -> HalfOpen after this
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// Current state, applying the Open -> HalfOpen cooldown transition.
  BreakerState state(double now);

  /// Records a request outcome.  Returns the state after the record --
  /// callers compare against the state before to detect transitions.
  BreakerState record_success(double now);
  BreakerState record_failure(double now);

  std::uint64_t opened() const { return opened_; }   ///< Closed/Half -> Open
  std::uint64_t reclosed() const { return reclosed_; }  ///< Half -> Closed

 private:
  void push(bool error);
  double error_ratio() const;

  CircuitBreakerOptions options_;
  BreakerState state_ = BreakerState::Closed;
  std::vector<bool> outcomes_;  ///< ring buffer, true = error
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  double opened_at_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t reclosed_ = 0;
};

}  // namespace spx::net
