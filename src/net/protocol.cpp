#include "net/protocol.hpp"

#include <bit>
#include <cstring>

#include "common/crc32c.hpp"

namespace spx::net {

namespace {

// ---- byte-order primitives ---------------------------------------------
// Everything on the wire is little-endian.  Scalars are folded explicitly
// (endian-independent); bulk numeric arrays take the memcpy fast path on
// little-endian hosts and the per-element fold elsewhere.

class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed UTF-8 string (u16 length: tenant names, shard names).
  void str16(std::string_view s) {
    SPX_CHECK_ARG(s.size() <= 0xffff, "wire string exceeds 64 KiB");
    u16(static_cast<std::uint16_t>(s.size()));
    append(s.data(), s.size());
  }
  /// Length-prefixed string (u32 length: error text, stats JSON).
  void str32(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }

  template <typename T>
  void array(std::span<const T> v) {
    static_assert(sizeof(T) == 4 || sizeof(T) == 8);
    if constexpr (std::endian::native == std::endian::little) {
      append(v.data(), v.size() * sizeof(T));
    } else {
      for (const T& x : v) {
        if constexpr (sizeof(T) == 4) {
          u32(std::bit_cast<std::uint32_t>(x));
        } else {
          u64(std::bit_cast<std::uint64_t>(x));
        }
      }
    }
  }

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }

  std::vector<std::uint8_t>& out_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    const auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(b[i]) << (8 * i);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str16() { return str(u16()); }
  std::string str32() {
    const std::uint32_t n = u32();
    if (n > remaining()) {
      throw ProtocolError("string length exceeds payload");
    }
    return str(n);
  }

  /// Bulk-reads `count` elements straight into a vector sized exactly for
  /// them -- the zero-copy CSC ingestion path (one copy from the wire
  /// buffer into the final array, no intermediate representation).
  template <typename T>
  std::vector<T> array(std::size_t count) {
    static_assert(sizeof(T) == 4 || sizeof(T) == 8);
    const std::size_t bytes = count * sizeof(T);
    if (count > remaining() / sizeof(T)) {
      throw ProtocolError("array extends past end of payload");
    }
    std::vector<T> v(count);
    if constexpr (std::endian::native == std::endian::little) {
      if (bytes != 0) std::memcpy(v.data(), bytes_.data() + pos_, bytes);
      pos_ += bytes;
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        if constexpr (sizeof(T) == 4) {
          v[i] = std::bit_cast<T>(u32());
        } else {
          v[i] = std::bit_cast<T>(u64());
        }
      }
    }
    return v;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  void expect_end() const {
    if (remaining() != 0) {
      throw ProtocolError("trailing bytes after frame body");
    }
  }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > remaining()) throw ProtocolError("truncated frame body");
    const auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::string str(std::size_t n) {
    const auto s = take(n);
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Reserves the 20-byte header, returns the payload start offset.
std::size_t begin_frame(std::vector<std::uint8_t>& out) {
  out.resize(kHeaderBytes);
  return kHeaderBytes;
}

/// Back-patches the header once the payload length is known.
void end_frame(std::vector<std::uint8_t>& out, FrameType type,
               std::uint64_t corr_id) {
  const std::uint64_t payload = out.size() - kHeaderBytes;
  SPX_CHECK_ARG(payload <= 0xffffffffull, "frame payload exceeds 4 GiB");
  std::vector<std::uint8_t> header;
  WireWriter w(header);
  w.u32(kMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0);  // flags
  w.u32(static_cast<std::uint32_t>(payload));
  w.u64(corr_id);
  std::memcpy(out.data(), header.data(), kHeaderBytes);
}

void write_trace(WireWriter& w, const WireTrace& t) {
  w.u64(t.trace_id);
  w.u64(t.parent_span);
}

WireTrace read_trace(WireReader& r) {
  WireTrace t;
  t.trace_id = r.u64();
  t.parent_span = r.u64();
  return t;
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::FactorizeRequest:
      return "factorize_request";
    case FrameType::SolveRequest:
      return "solve_request";
    case FrameType::FactorizeResponse:
      return "factorize_response";
    case FrameType::SolveResponse:
      return "solve_response";
    case FrameType::Error:
      return "error";
    case FrameType::Ping:
      return "ping";
    case FrameType::Pong:
      return "pong";
    case FrameType::RefactorizeRequest:
      return "refactorize_request";
    case FrameType::RefactorizeResponse:
      return "refactorize_response";
  }
  return "?";
}

const char* to_string(NetError e) {
  switch (e) {
    case NetError::VersionMismatch:
      return "version_mismatch";
    case NetError::Malformed:
      return "malformed";
    case NetError::UnsupportedType:
      return "unsupported_type";
    case NetError::Overloaded:
      return "overloaded";
    case NetError::Draining:
      return "draining";
    case NetError::NoShard:
      return "no_shard";
    case NetError::UnknownFactor:
      return "unknown_factor";
    case NetError::Internal:
      return "internal";
    case NetError::DeadlineExceeded:
      return "deadline_exceeded";
  }
  return "?";
}

bool retryable(NetError e) {
  // DeadlineExceeded is deliberately absent: the work is already late,
  // so rerouting it would only waste another shard's time.
  return e == NetError::Overloaded || e == NetError::Draining ||
         e == NetError::NoShard || e == NetError::UnknownFactor;
}

// ---- encode -------------------------------------------------------------

std::vector<std::uint8_t> encode_factorize_request(
    std::uint64_t corr_id, const FactorizeRequestFrame& f,
    const CscMatrix<real_t>& a) {
  std::vector<std::uint8_t> out;
  begin_frame(out);
  WireWriter w(out);
  w.u64(f.pattern_digest);
  write_trace(w, f.trace);
  w.u8(static_cast<std::uint8_t>(f.kind));
  w.str16(f.tenant);
  w.f64(f.deadline_s);
  w.u32(static_cast<std::uint32_t>(a.nrows()));
  w.u32(static_cast<std::uint32_t>(a.ncols()));
  w.u64(static_cast<std::uint64_t>(a.nnz()));
  w.array(a.colptr());
  w.array(a.rowind());
  w.array(a.values());
  end_frame(out, FrameType::FactorizeRequest, corr_id);
  return out;
}

std::vector<std::uint8_t> encode_solve_request(std::uint64_t corr_id,
                                               const SolveRequestFrame& f) {
  std::vector<std::uint8_t> out;
  begin_frame(out);
  WireWriter w(out);
  w.u64(f.pattern_digest);
  write_trace(w, f.trace);
  w.u64(f.factor_id);
  w.str16(f.tenant);
  w.f64(f.deadline_s);
  w.u32(static_cast<std::uint32_t>(f.rhs.size()));
  w.array(std::span<const real_t>(f.rhs));
  end_frame(out, FrameType::SolveRequest, corr_id);
  return out;
}

std::vector<std::uint8_t> encode_refactorize_request(
    std::uint64_t corr_id, const RefactorizeRequestFrame& f) {
  std::vector<std::uint8_t> out;
  begin_frame(out);
  WireWriter w(out);
  w.u64(f.pattern_digest);
  write_trace(w, f.trace);
  w.u64(f.factor_id);
  w.str16(f.tenant);
  w.f64(f.deadline_s);
  w.u32(static_cast<std::uint32_t>(f.values.size()));
  w.array(std::span<const real_t>(f.values));
  end_frame(out, FrameType::RefactorizeRequest, corr_id);
  return out;
}

static std::vector<std::uint8_t> encode_factorize_response_as(
    FrameType type, std::uint64_t corr_id, const FactorizeResponseFrame& f) {
  std::vector<std::uint8_t> out;
  begin_frame(out);
  WireWriter w(out);
  w.u8(f.status);
  w.u8(f.code);
  w.u8(f.degraded ? 1 : 0);
  w.u64(f.factor_id);
  w.str16(f.shard);
  w.str32(f.error);
  w.str32(f.stats_json);
  end_frame(out, type, corr_id);
  return out;
}

std::vector<std::uint8_t> encode_factorize_response(
    std::uint64_t corr_id, const FactorizeResponseFrame& f) {
  return encode_factorize_response_as(FrameType::FactorizeResponse, corr_id,
                                      f);
}

std::vector<std::uint8_t> encode_refactorize_response(
    std::uint64_t corr_id, const FactorizeResponseFrame& f) {
  return encode_factorize_response_as(FrameType::RefactorizeResponse, corr_id,
                                      f);
}

std::vector<std::uint8_t> encode_solve_response(
    std::uint64_t corr_id, const SolveResponseFrame& f) {
  std::vector<std::uint8_t> out;
  begin_frame(out);
  WireWriter w(out);
  w.u8(f.status);
  w.u8(f.code);
  w.u8(f.degraded ? 1 : 0);
  w.str16(f.shard);
  w.str32(f.error);
  w.str32(f.stats_json);
  w.u32(static_cast<std::uint32_t>(f.x.size()));
  w.array(std::span<const real_t>(f.x));
  end_frame(out, FrameType::SolveResponse, corr_id);
  return out;
}

std::vector<std::uint8_t> encode_error(std::uint64_t corr_id, NetError code,
                                       std::string_view message) {
  std::vector<std::uint8_t> out;
  begin_frame(out);
  WireWriter w(out);
  w.u32(static_cast<std::uint32_t>(code));
  w.str32(message);
  end_frame(out, FrameType::Error, corr_id);
  return out;
}

std::vector<std::uint8_t> encode_empty(FrameType type,
                                       std::uint64_t corr_id) {
  std::vector<std::uint8_t> out;
  begin_frame(out);
  end_frame(out, type, corr_id);
  return out;
}

std::vector<std::uint8_t> encode_raw_frame(
    const FrameHeader& header, std::span<const std::uint8_t> payload) {
  const bool seal = (header.flags & kFlagChecksum) != 0;
  const std::size_t length =
      payload.size() + (seal ? kChecksumBytes : std::size_t{0});
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + length);
  WireWriter w(out);
  w.u32(kMagic);
  w.u8(header.version);
  w.u8(static_cast<std::uint8_t>(header.type));
  w.u16(header.flags);
  w.u32(static_cast<std::uint32_t>(length));
  w.u64(header.corr_id);
  out.insert(out.end(), payload.begin(), payload.end());
  if (seal) w.u32(crc32c(payload.data(), payload.size()));
  return out;
}

void add_checksum(std::vector<std::uint8_t>& frame) {
  SPX_CHECK_ARG(frame.size() >= kHeaderBytes,
                "add_checksum needs an encoded frame");
  const std::uint32_t crc =
      crc32c(frame.data() + kHeaderBytes, frame.size() - kHeaderBytes);
  const std::uint64_t payload = frame.size() - kHeaderBytes + kChecksumBytes;
  SPX_CHECK_ARG(payload <= 0xffffffffull, "frame payload exceeds 4 GiB");
  WireWriter w(frame);
  w.u32(crc);
  // Header offsets: magic[0,4) version[4] type[5] flags[6,8) length[8,12).
  frame[6] |= static_cast<std::uint8_t>(kFlagChecksum);
  for (int i = 0; i < 4; ++i) {
    frame[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
}

// ---- decode -------------------------------------------------------------

FrameHeader decode_header(std::span<const std::uint8_t> bytes) {
  SPX_CHECK_ARG(bytes.size() == kHeaderBytes,
                "decode_header needs exactly kHeaderBytes");
  WireReader r(bytes);
  if (r.u32() != kMagic) {
    throw ProtocolError("bad magic (not an spx frame)");
  }
  FrameHeader h;
  h.version = r.u8();
  h.type = static_cast<FrameType>(r.u8());
  h.flags = r.u16();
  h.length = r.u32();
  h.corr_id = r.u64();
  return h;
}

FactorizeRequestFrame decode_factorize_request(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  FactorizeRequestFrame f;
  f.pattern_digest = r.u64();
  f.trace = read_trace(r);
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(Factorization::LU)) {
    throw ProtocolError("unknown factorization kind on the wire");
  }
  f.kind = static_cast<Factorization>(kind);
  f.tenant = r.str16();
  f.deadline_s = r.f64();
  const std::uint32_t nrows = r.u32();
  const std::uint32_t ncols = r.u32();
  const std::uint64_t nnz = r.u64();
  if (nrows > 0x7fffffffu || ncols > 0x7fffffffu) {
    throw ProtocolError("matrix dimension overflows index_t");
  }
  if (nnz > r.remaining() / sizeof(index_t)) {
    throw ProtocolError("nnz exceeds payload size");
  }
  std::vector<size_type> colptr =
      r.array<size_type>(static_cast<std::size_t>(ncols) + 1);
  std::vector<index_t> rowind =
      r.array<index_t>(static_cast<std::size_t>(nnz));
  std::vector<real_t> values =
      r.array<real_t>(static_cast<std::size_t>(nnz));
  r.expect_end();
  try {
    f.matrix = std::make_shared<const CscMatrix<real_t>>(
        static_cast<index_t>(nrows), static_cast<index_t>(ncols),
        std::move(colptr), std::move(rowind), std::move(values));
  } catch (const InvalidArgument& e) {
    // The CSC constructor's O(nnz) structure validation doubles as the
    // wire-level sanity check: sorted unique row indices, consistent
    // colptr.  Hostile structure surfaces as a protocol error, not UB.
    throw ProtocolError(std::string("invalid CSC structure: ") + e.what());
  }
  if (pattern_digest(*f.matrix) != f.pattern_digest) {
    throw ProtocolError("pattern digest does not match the CSC structure");
  }
  return f;
}

SolveRequestFrame decode_solve_request(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  SolveRequestFrame f;
  f.pattern_digest = r.u64();
  f.trace = read_trace(r);
  f.factor_id = r.u64();
  f.tenant = r.str16();
  f.deadline_s = r.f64();
  const std::uint32_t n = r.u32();
  f.rhs = r.array<real_t>(n);
  r.expect_end();
  return f;
}

RefactorizeRequestFrame decode_refactorize_request(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  RefactorizeRequestFrame f;
  f.pattern_digest = r.u64();
  f.trace = read_trace(r);
  f.factor_id = r.u64();
  f.tenant = r.str16();
  f.deadline_s = r.f64();
  const std::uint32_t n = r.u32();
  f.values = r.array<real_t>(n);
  r.expect_end();
  return f;
}

FactorizeResponseFrame decode_factorize_response(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  FactorizeResponseFrame f;
  f.status = r.u8();
  f.code = r.u8();
  f.degraded = r.u8() != 0;
  f.factor_id = r.u64();
  f.shard = r.str16();
  f.error = r.str32();
  f.stats_json = r.str32();
  r.expect_end();
  return f;
}

FactorizeResponseFrame decode_refactorize_response(
    std::span<const std::uint8_t> payload) {
  return decode_factorize_response(payload);  // shared body layout
}

SolveResponseFrame decode_solve_response(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  SolveResponseFrame f;
  f.status = r.u8();
  f.code = r.u8();
  f.degraded = r.u8() != 0;
  f.shard = r.str16();
  f.error = r.str32();
  f.stats_json = r.str32();
  const std::uint32_t n = r.u32();
  f.x = r.array<real_t>(n);
  r.expect_end();
  return f;
}

ErrorFrame decode_error(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ErrorFrame f;
  const std::uint32_t code = r.u32();
  if (code < 1 ||
      code > static_cast<std::uint32_t>(NetError::DeadlineExceeded)) {
    throw ProtocolError("unknown NetError code on the wire");
  }
  f.code = static_cast<NetError>(code);
  f.message = r.str32();
  r.expect_end();
  return f;
}

std::uint64_t peek_pattern_digest(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  return r.u64();
}

double peek_deadline(FrameType type, std::span<const std::uint8_t> payload) {
  if (type != FrameType::FactorizeRequest &&
      type != FrameType::SolveRequest &&
      type != FrameType::RefactorizeRequest) {
    return 0.0;
  }
  try {
    WireReader r(payload);
    r.u64();        // pattern digest
    read_trace(r);  // trace context
    if (type == FrameType::FactorizeRequest) {
      r.u8();  // factorization kind
    } else {
      r.u64();  // factor id (solve and refactorize share the prefix)
    }
    r.str16();  // tenant
    const double deadline = r.f64();
    return deadline > 0 ? deadline : 0.0;
  } catch (const ProtocolError&) {
    return 0.0;  // the shard's full decode is the authority
  }
}

// ---- stream assembly ----------------------------------------------------

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  // Validate the header eagerly so a bad-magic or memory-bomb peer is
  // rejected before its declared payload is ever buffered.
  if (buf_.size() - consumed_ >= kHeaderBytes) {
    const FrameHeader h = decode_header(
        std::span<const std::uint8_t>(buf_).subspan(consumed_,
                                                    kHeaderBytes));
    if (h.length > max_payload_) {
      throw ProtocolError("declared payload exceeds the frame size limit");
    }
  }
}

std::optional<FrameParser::Frame> FrameParser::next() {
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kHeaderBytes) return std::nullopt;
  const auto view = std::span<const std::uint8_t>(buf_).subspan(consumed_);
  const FrameHeader h = decode_header(view.first(kHeaderBytes));
  if (h.length > max_payload_) {
    throw ProtocolError("declared payload exceeds the frame size limit");
  }
  if (avail < kHeaderBytes + h.length) return std::nullopt;
  Frame f;
  f.header = h;
  std::size_t body = h.length;
  if ((h.flags & kFlagChecksum) != 0) {
    // The trailer rides inside `length`; verify it over the preceding
    // payload bytes and strip it, so decoders never see (or trust) a
    // corrupted body.  The flag stays set in the delivered header, which
    // lets a proxy know to re-seal when it forwards the bare payload.
    if (body < kChecksumBytes) {
      throw ProtocolError("checksummed frame shorter than its trailer");
    }
    body -= kChecksumBytes;
    const std::uint8_t* p = view.data() + kHeaderBytes;
    std::uint32_t wire = 0;
    for (int i = 0; i < 4; ++i) {
      wire |= std::uint32_t(p[body + static_cast<std::size_t>(i)])
              << (8 * i);
    }
    if (crc32c(p, body) != wire) {
      throw ProtocolError("frame checksum mismatch (corrupted payload)");
    }
    f.header.length = static_cast<std::uint32_t>(body);
  }
  f.payload.assign(view.begin() + kHeaderBytes,
                   view.begin() + kHeaderBytes + body);
  consumed_ += kHeaderBytes + h.length;
  // Compact once the parsed-off prefix dominates, keeping the buffer
  // proportional to the unparsed remainder.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return f;
}

}  // namespace spx::net
