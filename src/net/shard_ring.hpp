// Consistent-hash ring over the live shard set.  The front-end routes
// each request by its pattern digest, so all requests touching one
// sparsity pattern land on one shard -- that shard's analysis cache
// (symbolic factorization reuse, PR 3) stays hot, and factors live where
// their solves arrive.
//
// Standard Karger-style ring with virtual nodes: each shard hashes to
// `vnodes` points on a 64-bit circle (fnv1a64 of "name#i"), and a key
// routes to the first point clockwise from its digest.  Removing a shard
// only remaps the keys that pointed at it (~1/N of the space); the other
// shards' caches are undisturbed -- the property the reroute-on-drain
// path depends on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace spx::net {

enum class ShardState : std::uint8_t {
  Up = 0,
  Draining = 1,  ///< finishing in-flight work; no new requests
  Down = 2,      ///< unreachable; probing for recovery
};

const char* to_string(ShardState s);

class ShardRing {
 public:
  explicit ShardRing(std::uint32_t vnodes = 64) : vnodes_(vnodes) {}

  /// Adds `name` (idempotent) in state Up.
  void add(const std::string& name);
  /// Removes `name` and its ring points entirely.
  void remove(const std::string& name);
  /// Marks state; Draining/Down shards keep their entry (for recovery)
  /// but their ring points are withdrawn so no new keys land on them.
  void set_state(const std::string& name, ShardState state);
  ShardState state(const std::string& name) const;
  bool contains(const std::string& name) const {
    return states_.count(name) != 0;
  }

  /// Routes a key to its shard; empty string when no shard is Up.
  std::string route(std::uint64_t digest) const;

  std::size_t up_count() const;
  std::vector<std::string> shards() const;  ///< all known, any state

 private:
  void insert_points(const std::string& name);
  void erase_points(const std::string& name);

  std::uint32_t vnodes_;
  std::map<std::uint64_t, std::string> ring_;  ///< point -> shard (Up only)
  std::unordered_map<std::string, ShardState> states_;
};

}  // namespace spx::net
