// Minimal plaintext HTTP/1.0 GET endpoint on the shared event loop,
// serving the operational probes of spx_shard and spx_front:
//   /healthz  -- coarse process health ("ok" / "degraded" / "failing")
//   /readyz   -- readiness ("ready", or 503 "draining"/"no-shards")
//   /metrics  -- Prometheus text exposition of the endpoint's registry
//
// Deliberately tiny: GET only, connection: close, no keep-alive, no
// chunking -- just enough for `curl` and a scraper, parsed defensively
// (request line + headers bounded at 16 KiB).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/event_loop.hpp"

namespace spx::net {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

/// Maps a request path ("/metrics") to a response; runs on the loop
/// thread, so handlers can read reactor-owned state without locks.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

class HttpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) on `loop`.
  HttpServer(EventLoop& loop, std::uint16_t port, HttpHandler handler);
  ~HttpServer();

  std::uint16_t port() const { return port_; }
  void close_all();

 private:
  struct Conn;
  friend struct Conn;
  struct Acceptor;

  EventLoop& loop_;
  HttpHandler handler_;
  std::uint16_t port_ = 0;
  std::unique_ptr<Acceptor> acceptor_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns_;
};

/// Blocking one-shot HTTP GET (test/bench helper): returns the response
/// body; throws InvalidArgument on connection failure or non-200 unless
/// `status_out` is given (then the status is reported instead).
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int* status_out = nullptr,
                     double timeout_s = 5.0);

}  // namespace spx::net
