#include "net/shard_ring.hpp"

#include "mat/csc.hpp"  // fnv1a64

namespace spx::net {

const char* to_string(ShardState s) {
  switch (s) {
    case ShardState::Up:
      return "up";
    case ShardState::Draining:
      return "draining";
    case ShardState::Down:
      return "down";
  }
  return "?";
}

void ShardRing::insert_points(const std::string& name) {
  for (std::uint32_t i = 0; i < vnodes_; ++i) {
    const std::string key = name + "#" + std::to_string(i);
    ring_.emplace(fnv1a64(key.data(), key.size()), name);
  }
}

void ShardRing::erase_points(const std::string& name) {
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == name) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardRing::add(const std::string& name) {
  if (states_.count(name) != 0) return;
  states_[name] = ShardState::Up;
  insert_points(name);
}

void ShardRing::remove(const std::string& name) {
  if (states_.erase(name) != 0) erase_points(name);
}

void ShardRing::set_state(const std::string& name, ShardState state) {
  const auto it = states_.find(name);
  if (it == states_.end()) return;
  if (it->second == state) return;
  const bool was_up = it->second == ShardState::Up;
  const bool is_up = state == ShardState::Up;
  it->second = state;
  if (was_up && !is_up) erase_points(name);
  if (!was_up && is_up) insert_points(name);
}

ShardState ShardRing::state(const std::string& name) const {
  const auto it = states_.find(name);
  return it == states_.end() ? ShardState::Down : it->second;
}

std::string ShardRing::route(std::uint64_t digest) const {
  if (ring_.empty()) return {};
  auto it = ring_.lower_bound(digest);
  if (it == ring_.end()) it = ring_.begin();  // wrap around the circle
  return it->second;
}

std::size_t ShardRing::up_count() const {
  std::size_t n = 0;
  for (const auto& [name, st] : states_) {
    if (st == ShardState::Up) ++n;
  }
  return n;
}

std::vector<std::string> ShardRing::shards() const {
  std::vector<std::string> out;
  out.reserve(states_.size());
  for (const auto& [name, st] : states_) out.push_back(name);
  return out;
}

}  // namespace spx::net
