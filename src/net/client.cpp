#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace spx::net {

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& o) noexcept
    : next_corr_(o.next_corr_), fd_(o.fd_), parser_(std::move(o.parser_)) {
  o.fd_ = -1;
}

BlockingClient& BlockingClient::operator=(BlockingClient&& o) noexcept {
  if (this != &o) {
    close();
    next_corr_ = o.next_corr_;
    fd_ = o.fd_;
    parser_ = std::move(o.parser_);
    o.fd_ = -1;
  }
  return *this;
}

void BlockingClient::connect(const std::string& host, std::uint16_t port,
                             double timeout_s) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SPX_CHECK_ARG(fd >= 0, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw InvalidArgument("BlockingClient: bad IPv4 address '" + host + "'");
  }
  // Connect with a bounded wait: nonblocking connect + poll, then restore
  // blocking mode with socket-level timeouts for send/recv.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_s * 1000));
    int err = 0;
    socklen_t len = sizeof err;
    if (rc == 1) ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    rc = (rc == 1 && err == 0) ? 0 : -1;
    if (rc != 0) errno = err != 0 ? err : ETIMEDOUT;
  }
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    throw InvalidArgument("BlockingClient: cannot connect to " + host + ":" +
                          std::to_string(port) + " (" + std::strerror(err) +
                          ")");
  }
  ::fcntl(fd, F_SETFL, flags);
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec =
      static_cast<suseconds_t>((timeout_s - double(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  parser_ = FrameParser();
}

void BlockingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void BlockingClient::send_raw(std::span<const std::uint8_t> bytes) {
  SPX_CHECK_ARG(fd_ >= 0, "BlockingClient: not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      throw InvalidArgument(std::string("BlockingClient: send failed: ") +
                            std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<FrameParser::Frame> BlockingClient::recv_frame() {
  SPX_CHECK_ARG(fd_ >= 0, "BlockingClient: not connected");
  while (true) {
    if (auto frame = parser_.next()) return frame;
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return std::nullopt;  // orderly close
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      throw InvalidArgument(std::string("BlockingClient: recv failed: ") +
                            std::strerror(err));
    }
    parser_.feed({buf, static_cast<std::size_t>(n)});
  }
}

FrameParser::Frame BlockingClient::call(std::span<const std::uint8_t> frame,
                                        std::uint64_t expect_corr) {
  send_raw(frame);
  return recv_matched(expect_corr);
}

FrameParser::Frame BlockingClient::recv_matched(std::uint64_t expect_corr) {
  while (true) {
    auto resp = recv_frame();
    if (!resp.has_value()) {
      throw InvalidArgument(
          "BlockingClient: connection closed awaiting response");
    }
    // Error frames with corr 0 are connection-fatal protocol complaints
    // (e.g. the server could not even read our correlation id).
    if (resp->header.corr_id == expect_corr || resp->header.corr_id == 0) {
      return std::move(*resp);
    }
    // Stale response from a previous (abandoned) request: skip it.
  }
}

FrameParser::Frame BlockingClient::call_prepared(
    std::vector<std::uint8_t> frame, std::uint64_t expect_corr) {
  if (checksum_) add_checksum(frame);
  bool close_after_send = false;
  if (fault_ != nullptr) {
    switch (fault_->on_wire_frame()) {
      case FaultAction::DropFrame:
        frame.clear();  // vanished in flight; the recv timeout covers us
        break;
      case FaultAction::TruncateFrame:
        frame.resize(kHeaderBytes + (frame.size() - kHeaderBytes) / 2);
        close_after_send = true;
        break;
      case FaultAction::DelayFrame:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fault_->plan().stall_seconds));
        break;
      case FaultAction::CorruptFrame:
        if (frame.size() > kHeaderBytes) {
          frame[kHeaderBytes + (frame.size() - kHeaderBytes) / 2] ^= 0x40;
        }
        break;
      case FaultAction::AbortConnection:
        close();
        break;
      default:
        break;
    }
  }
  SPX_CHECK_ARG(fd_ >= 0,
                "BlockingClient: connection aborted by injected fault");
  if (!frame.empty()) send_raw(frame);
  if (close_after_send) {
    close();
    throw InvalidArgument(
        "BlockingClient: connection truncated by injected fault");
  }
  return recv_matched(expect_corr);
}

namespace {

/// Unpacks an Error frame into `net_error_out` (Failed result) or throws.
template <typename Resp>
Resp handle_error_frame(const FrameParser::Frame& frame,
                        NetError* net_error_out) {
  const ErrorFrame err = decode_error(frame.payload);
  if (net_error_out != nullptr) {
    *net_error_out = err.code;
    Resp r;
    r.status = 1;  // service::RequestStatus::Failed
    r.error = err.message;
    return r;
  }
  throw ProtocolError(std::string("server error [") + to_string(err.code) +
                      "]: " + err.message);
}

}  // namespace

FactorizeResponseFrame BlockingClient::factorize(const std::string& tenant,
                                                 const CscMatrix<real_t>& a,
                                                 Factorization kind,
                                                 WireTrace trace,
                                                 NetError* net_error_out) {
  if (net_error_out != nullptr) *net_error_out = NetError{};
  FactorizeRequestFrame req;
  req.pattern_digest = pattern_digest(a);
  req.trace = trace;
  req.kind = kind;
  req.tenant = tenant;
  req.deadline_s = deadline_s_;
  const std::uint64_t corr = next_corr_++;
  const auto frame =
      call_prepared(encode_factorize_request(corr, req, a), corr);
  if (frame.header.type == FrameType::Error) {
    return handle_error_frame<FactorizeResponseFrame>(frame, net_error_out);
  }
  if (frame.header.type != FrameType::FactorizeResponse) {
    throw ProtocolError(std::string("unexpected response type: ") +
                        to_string(frame.header.type));
  }
  return decode_factorize_response(frame.payload);
}

SolveResponseFrame BlockingClient::solve(const std::string& tenant,
                                         std::uint64_t pattern_digest,
                                         std::uint64_t factor_id,
                                         const std::vector<real_t>& rhs,
                                         WireTrace trace,
                                         NetError* net_error_out) {
  if (net_error_out != nullptr) *net_error_out = NetError{};
  SolveRequestFrame req;
  req.pattern_digest = pattern_digest;
  req.trace = trace;
  req.factor_id = factor_id;
  req.tenant = tenant;
  req.deadline_s = deadline_s_;
  req.rhs = rhs;
  const std::uint64_t corr = next_corr_++;
  const auto frame = call_prepared(encode_solve_request(corr, req), corr);
  if (frame.header.type == FrameType::Error) {
    return handle_error_frame<SolveResponseFrame>(frame, net_error_out);
  }
  if (frame.header.type != FrameType::SolveResponse) {
    throw ProtocolError(std::string("unexpected response type: ") +
                        to_string(frame.header.type));
  }
  return decode_solve_response(frame.payload);
}

FactorizeResponseFrame BlockingClient::refactorize(
    const std::string& tenant, std::uint64_t pattern_digest,
    std::uint64_t factor_id, const std::vector<real_t>& values,
    WireTrace trace, NetError* net_error_out) {
  if (net_error_out != nullptr) *net_error_out = NetError{};
  RefactorizeRequestFrame req;
  req.pattern_digest = pattern_digest;
  req.trace = trace;
  req.factor_id = factor_id;
  req.tenant = tenant;
  req.deadline_s = deadline_s_;
  req.values = values;
  const std::uint64_t corr = next_corr_++;
  const auto frame =
      call_prepared(encode_refactorize_request(corr, req), corr);
  if (frame.header.type == FrameType::Error) {
    return handle_error_frame<FactorizeResponseFrame>(frame, net_error_out);
  }
  if (frame.header.type != FrameType::RefactorizeResponse) {
    throw ProtocolError(std::string("unexpected response type: ") +
                        to_string(frame.header.type));
  }
  return decode_refactorize_response(frame.payload);
}

bool BlockingClient::ping() {
  const std::uint64_t corr = next_corr_++;
  try {
    const auto frame =
        call_prepared(encode_empty(FrameType::Ping, corr), corr);
    return frame.header.type == FrameType::Pong;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace spx::net
