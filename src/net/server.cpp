#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace spx::net {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  SPX_CHECK_ARG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "fcntl(O_NONBLOCK) failed");
}

int connect_nonblocking(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SPX_CHECK_ARG(fd >= 0, "socket() failed");
  set_nonblocking(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw InvalidArgument("connect_nonblocking: bad IPv4 address '" + host +
                          "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    throw InvalidArgument(std::string("connect() failed: ") +
                          std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void NetCounters::resolve(obs::MetricsRegistry& reg) {
  accepted = &reg.counter("spx_net_accepted_total",
                          "TCP connections accepted");
  frames_read = &reg.counter("spx_net_frames_read_total",
                             "Complete frames parsed off the wire");
  bytes_read = &reg.counter("spx_net_bytes_read_total",
                            "Payload + header bytes read");
  bytes_written = &reg.counter("spx_net_bytes_written_total",
                               "Bytes written to peers");
  idle_closed = &reg.counter("spx_net_idle_closed_total",
                             "Connections closed by the idle-timeout sweep");
  protocol_errors = &reg.counter(
      "spx_net_protocol_errors_total",
      "Connections dropped for malformed/oversized/bad-magic input");
}

// ---- Connection ---------------------------------------------------------

Connection::Connection(EventLoop& loop, int fd, std::uint64_t id,
                       std::size_t max_payload, NetCounters* counters)
    : loop_(loop),
      fd_(fd),
      id_(id),
      counters_(counters),
      parser_(max_payload),
      last_activity_(loop.now()) {}

Connection::~Connection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::register_with_loop() {
  loop_.add_fd(fd_, EPOLLIN, this);
}

void Connection::update_epoll() {
  if (fd_ < 0) return;
  const bool want = !write_queue_.empty();
  if (want == want_write_) return;
  want_write_ = want;
  loop_.mod_fd(fd_, want ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

void Connection::send(std::vector<std::uint8_t> frame) {
  if (fd_ < 0) return;
  if (checksum_ && frame.size() >= kHeaderBytes &&
      (frame[6] & kFlagChecksum) == 0) {
    add_checksum(frame);
  }
  if (fault_ != nullptr) {
    switch (fault_->on_wire_frame()) {
      case FaultAction::DropFrame:
        return;  // the peer sees nothing; its timeout/retry must cover
      case FaultAction::TruncateFrame:
        // A crash mid-send: deliver a prefix, then tear the stream down
        // (leaving the stream desynced-but-open would wedge the peer's
        // parser forever, which no real failure produces).
        frame.resize(kHeaderBytes + (frame.size() - kHeaderBytes) / 2);
        enqueue(std::move(frame));
        on_frame_ = nullptr;
        closing_after_flush_ = true;
        handle_writable();
        return;
      case FaultAction::DelayFrame: {
        auto self = shared_from_this();
        loop_.schedule(fault_->plan().stall_seconds,
                       [self, f = std::move(frame)]() mutable {
                         if (self->open()) self->enqueue(std::move(f));
                       });
        return;
      }
      case FaultAction::CorruptFrame:
        if (frame.size() > kHeaderBytes) {
          frame[kHeaderBytes + (frame.size() - kHeaderBytes) / 2] ^= 0x40;
        }
        break;
      case FaultAction::AbortConnection:
        close("injected connection abort");
        return;
      default:
        break;
    }
  }
  enqueue(std::move(frame));
}

void Connection::enqueue(std::vector<std::uint8_t> frame) {
  if (fd_ < 0) return;
  write_queue_.push_back(std::move(frame));
  handle_writable();  // opportunistic immediate write
}

void Connection::post_send(std::vector<std::uint8_t> frame) {
  auto self = shared_from_this();
  loop_.post([self, frame = std::move(frame)]() mutable {
    self->send(std::move(frame));
  });
}

void Connection::send_error_and_close(std::uint64_t corr_id, NetError code,
                                      const std::string& message) {
  send(encode_error(corr_id, code, message));
  // Close after the error frame drains (or immediately if it already did).
  if (write_queue_.empty()) {
    close(message);
  } else {
    // Mark by clearing the frame handler: any further input is ignored,
    // and handle_writable() closes once the queue empties.
    on_frame_ = nullptr;
    closing_after_flush_ = true;
  }
}

void Connection::close(const std::string& reason) {
  if (fd_ < 0) return;
  loop_.del_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_close_) {
    // Detach first: the close handler usually erases the owning map entry
    // and must never be re-entered.
    CloseCallback cb = std::move(on_close_);
    on_close_ = nullptr;
    cb(*this, reason);
  }
}

void Connection::on_events(std::uint32_t events) {
  auto self = shared_from_this();  // survive owner erasing us mid-dispatch
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close("connection error/hangup");
    return;
  }
  if ((events & EPOLLOUT) != 0) handle_writable();
  if (fd_ >= 0 && (events & EPOLLIN) != 0) handle_readable();
}

void Connection::handle_readable() {
  std::uint8_t buf[64 * 1024];
  while (fd_ >= 0) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) {
      close("peer closed");
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close(std::string("read error: ") + std::strerror(errno));
      return;
    }
    last_activity_ = loop_.now();
    SPX_OBS(if (counters_ != nullptr)
                counters_->bytes_read->inc(static_cast<double>(n)));
    try {
      parser_.feed({buf, static_cast<std::size_t>(n)});
      while (auto frame = parser_.next()) {
        SPX_OBS(if (counters_ != nullptr) counters_->frames_read->inc());
        if ((frame->header.flags & kFlagChecksum) != 0) {
          checksum_ = true;  // answer a checksumming peer in kind
        }
        if (on_frame_) {
          on_frame_(*this, frame->header, frame->payload);
        }
        if (fd_ < 0) return;  // handler closed us
      }
    } catch (const ProtocolError& e) {
      SPX_OBS(if (counters_ != nullptr) counters_->protocol_errors->inc());
      send_error_and_close(0, NetError::Malformed, e.what());
      return;
    }
  }
}

void Connection::handle_writable() {
  while (fd_ >= 0 && !write_queue_.empty()) {
    const std::vector<std::uint8_t>& front = write_queue_.front();
    const ssize_t n =
        ::send(fd_, front.data() + write_offset_,
               front.size() - write_offset_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close(std::string("write error: ") + std::strerror(errno));
      return;
    }
    last_activity_ = loop_.now();
    SPX_OBS(if (counters_ != nullptr)
                counters_->bytes_written->inc(static_cast<double>(n)));
    write_offset_ += static_cast<std::size_t>(n);
    if (write_offset_ == front.size()) {
      write_queue_.pop_front();
      write_offset_ = 0;
    }
  }
  if (write_queue_.empty() && closing_after_flush_) {
    close("closed after error frame");
    return;
  }
  update_epoll();
}

// ---- Server -------------------------------------------------------------

Server::Server(EventLoop& loop, ServerOptions options,
               FrameCallback on_frame, CloseCallback on_close,
               NetCounters* counters)
    : loop_(loop),
      options_(std::move(options)),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)),
      counters_(counters) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SPX_CHECK_ARG(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  SPX_CHECK_ARG(
      ::inet_pton(AF_INET, options_.bind.c_str(), &addr.sin_addr) == 1,
      "Server: bad IPv4 bind address");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidArgument(std::string("bind() failed: ") +
                          std::strerror(err));
  }
  SPX_CHECK_ARG(::listen(listen_fd_, 128) == 0, "listen() failed");
  socklen_t len = sizeof addr;
  SPX_CHECK_ARG(::getsockname(listen_fd_,
                              reinterpret_cast<sockaddr*>(&addr),
                              &len) == 0,
                "getsockname() failed");
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
  loop_.add_fd(listen_fd_, EPOLLIN, this);
  if (options_.idle_timeout_s > 0) {
    arm_sweep(std::max(options_.idle_timeout_s / 4, 0.05));
  }
}

void Server::arm_sweep(double period) {
  sweep_timer_ = loop_.schedule(period, [this, period] {
    sweep_idle();
    arm_sweep(period);
  });
}

Server::~Server() {
  destroyed_ = true;
  close_all("server shutdown");
}

void Server::stop_accepting() {
  if (!accepting_) return;
  accepting_ = false;
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::close_all(const std::string& reason) {
  stop_accepting();
  if (sweep_timer_ != 0) {
    loop_.cancel_timer(sweep_timer_);
    sweep_timer_ = 0;
  }
  // Copy out: close handlers erase from connections_.
  std::vector<ConnectionPtr> conns;
  conns.reserve(connections_.size());
  for (const auto& [id, c] : connections_) conns.push_back(c);
  for (const ConnectionPtr& c : conns) c->close(reason);
  connections_.clear();
}

ConnectionPtr Server::find(std::uint64_t conn_id) const {
  const auto it = connections_.find(conn_id);
  return it == connections_.end() ? nullptr : it->second;
}

bool Server::any_write_pending() const {
  for (const auto& [id, c] : connections_) {
    if (c->open() && c->write_pending()) return true;
  }
  return false;
}

void Server::on_events(std::uint32_t) {
  while (accepting_) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      break;  // transient accept failure; the loop retries on next event
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    SPX_OBS(if (counters_ != nullptr) counters_->accepted->inc());
    auto conn = std::make_shared<Connection>(loop_, fd, next_conn_id_++,
                                             options_.max_payload,
                                             counters_);
    conn->set_fault(options_.fault);
    conn->set_frame_handler(on_frame_);
    conn->set_close_handler(
        [this](Connection& c, const std::string& reason) {
          if (on_close_) on_close_(c, reason);
          if (!destroyed_) connections_.erase(c.id());
        });
    connections_.emplace(conn->id(), conn);
    conn->register_with_loop();
  }
}

void Server::sweep_idle() {
  if (options_.idle_timeout_s <= 0) return;
  const double now = loop_.now();
  std::vector<ConnectionPtr> idle;
  for (const auto& [id, c] : connections_) {
    if (now - c->last_activity() > options_.idle_timeout_s) idle.push_back(c);
  }
  for (const ConnectionPtr& c : idle) {
    SPX_OBS(if (counters_ != nullptr) counters_->idle_closed->inc());
    c->close("idle timeout");
  }
}

}  // namespace spx::net
