#include "net/circuit_breaker.hpp"

namespace spx::net {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::Open:
      return "open";
    case BreakerState::HalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {
  if (options_.window == 0) options_.window = 1;
  outcomes_.assign(options_.window, false);
}

void CircuitBreaker::push(bool error) {
  outcomes_[next_] = error;
  next_ = (next_ + 1) % options_.window;
  if (filled_ < options_.window) ++filled_;
}

double CircuitBreaker::error_ratio() const {
  if (filled_ == 0) return 0.0;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    if (outcomes_[i]) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(filled_);
}

BreakerState CircuitBreaker::state(double now) {
  if (state_ == BreakerState::Open &&
      now - opened_at_ >= options_.open_cooldown_s) {
    state_ = BreakerState::HalfOpen;
  }
  return state_;
}

BreakerState CircuitBreaker::record_success(double now) {
  switch (state(now)) {
    case BreakerState::Closed:
      push(false);
      break;
    case BreakerState::HalfOpen:
      // The probe came back: the shard recovered.
      state_ = BreakerState::Closed;
      outcomes_.assign(options_.window, false);
      next_ = 0;
      filled_ = 0;
      ++reclosed_;
      break;
    case BreakerState::Open:
      // Successes during the cooldown are late responses to pre-open
      // work; they carry no signal about recovery yet.
      break;
  }
  return state_;
}

BreakerState CircuitBreaker::record_failure(double now) {
  switch (state(now)) {
    case BreakerState::Closed:
      push(true);
      if (filled_ >= options_.min_samples &&
          error_ratio() >= options_.error_threshold) {
        state_ = BreakerState::Open;
        opened_at_ = now;
        ++opened_;
      }
      break;
    case BreakerState::HalfOpen:
      // The probe failed: back to Open, cooldown restarts.
      state_ = BreakerState::Open;
      opened_at_ = now;
      ++opened_;
      break;
    case BreakerState::Open:
      break;
  }
  return state_;
}

}  // namespace spx::net
