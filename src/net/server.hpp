// Nonblocking TCP server plumbing on the epoll event loop: accepted and
// outbound connections share one state machine (read buffer -> frame
// parser -> frame callback; write queue drained on EPOLLOUT), plus the
// listening socket with accept fan-out and idle-timeout sweeps.
//
// Threading: every Connection method except post_send() must run on the
// loop thread.  post_send() is the bridge the solve-service worker
// threads use to push a finished response back into the reactor.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "obs/obs.hpp"
#include "runtime/fault_injection.hpp"

namespace spx::net {

/// Creates a nonblocking TCP socket connected (asynchronously) to
/// host:port; returns the fd or throws InvalidArgument.
int connect_nonblocking(const std::string& host, std::uint16_t port);

/// Counters of one endpoint's network activity, resolved once against a
/// registry and shared by its listener + connections.  Mirrors the
/// `net.*` span/counter catalogue in docs/SERVICE.md.
struct NetCounters {
  obs::Counter* accepted = nullptr;        ///< spx_net_accepted_total
  obs::Counter* frames_read = nullptr;     ///< spx_net_frames_read_total
  obs::Counter* bytes_read = nullptr;      ///< spx_net_bytes_read_total
  obs::Counter* bytes_written = nullptr;   ///< spx_net_bytes_written_total
  obs::Counter* idle_closed = nullptr;     ///< spx_net_idle_closed_total
  obs::Counter* protocol_errors = nullptr; ///< spx_net_protocol_errors_total

  void resolve(obs::MetricsRegistry& reg);
};

class Connection;
using ConnectionPtr = std::shared_ptr<Connection>;

/// Called with each complete, size-validated frame.
using FrameCallback = std::function<void(Connection&, const FrameHeader&,
                                         std::span<const std::uint8_t>)>;
/// Called exactly once when the connection is torn down.
using CloseCallback =
    std::function<void(Connection&, const std::string& reason)>;

class Connection : public FdHandler,
                   public std::enable_shared_from_this<Connection> {
 public:
  /// Takes ownership of nonblocking `fd`.  Call register_with_loop()
  /// after construction (shared_from_this needs a live shared_ptr).
  Connection(EventLoop& loop, int fd, std::uint64_t id,
             std::size_t max_payload, NetCounters* counters);
  ~Connection() override;

  void register_with_loop();

  std::uint64_t id() const { return id_; }
  bool open() const { return fd_ >= 0; }
  double last_activity() const { return last_activity_; }
  bool write_pending() const { return !write_queue_.empty(); }

  void set_frame_handler(FrameCallback cb) { on_frame_ = std::move(cb); }
  void set_close_handler(CloseCallback cb) { on_close_ = std::move(cb); }

  /// Arms deterministic wire faults (FaultAction::DropFrame & friends)
  /// against this connection's outbound frames; nullptr disarms.  The
  /// injector must outlive the connection.
  void set_fault(FaultInjector* fault) { fault_ = fault; }
  /// Seals outbound frames with the CRC32C trailer.  Also flips on
  /// automatically when the peer sends a checksummed frame, so a server
  /// answers in kind without configuration (the negotiation rule).
  void set_checksum(bool on) { checksum_ = on; }
  bool checksum() const { return checksum_; }

  /// Queues `frame` for writing (loop thread only).
  void send(std::vector<std::uint8_t> frame);
  /// Thread-safe send: hops onto the loop thread first.  Frames posted
  /// after close are dropped silently (the peer is gone either way).
  void post_send(std::vector<std::uint8_t> frame);

  /// Convenience: encode_error + send + close for protocol violations.
  void send_error_and_close(std::uint64_t corr_id, NetError code,
                            const std::string& message);

  /// Tears down: deregisters, closes the fd, fires the close handler
  /// (exactly once).  Loop thread only.
  void close(const std::string& reason);

  void on_events(std::uint32_t events) override;

 private:
  void handle_readable();
  void handle_writable();
  void update_epoll();
  /// Queues a sealed frame verbatim (the post-fault tail of send()).
  void enqueue(std::vector<std::uint8_t> frame);

  EventLoop& loop_;
  int fd_ = -1;
  const std::uint64_t id_;
  NetCounters* counters_;
  FaultInjector* fault_ = nullptr;
  bool checksum_ = false;
  FrameParser parser_;
  FrameCallback on_frame_;
  CloseCallback on_close_;
  std::deque<std::vector<std::uint8_t>> write_queue_;
  std::size_t write_offset_ = 0;  ///< into write_queue_.front()
  bool want_write_ = false;
  bool closing_after_flush_ = false;  ///< close once the queue drains
  double last_activity_ = 0;
};

struct ServerOptions {
  /// Bind address; loopback by default (the service mesh fronts it).
  std::string bind = "127.0.0.1";
  /// 0 picks an ephemeral port (tests/benches); port() reports it.
  std::uint16_t port = 0;
  /// Connections idle longer than this are closed by the sweep; 0
  /// disables the timeout.
  double idle_timeout_s = 0;
  std::size_t max_payload = kDefaultMaxPayload;
  /// Optional wire-fault injector shared by every accepted connection
  /// (chaos tests); must outlive the server when set.
  FaultInjector* fault = nullptr;
};

/// Listening socket: accepts nonblocking connections, owns them until
/// close, sweeps idle ones.
class Server : public FdHandler {
 public:
  Server(EventLoop& loop, ServerOptions options, FrameCallback on_frame,
         CloseCallback on_close = {}, NetCounters* counters = nullptr);
  ~Server() override;

  std::uint16_t port() const { return port_; }
  std::size_t connection_count() const { return connections_.size(); }

  /// Stops accepting (graceful drain step 1); existing connections live.
  void stop_accepting();
  /// Closes every connection and the listener.  Loop thread only.
  void close_all(const std::string& reason);

  ConnectionPtr find(std::uint64_t conn_id) const;
  /// True while any connection still has queued response bytes (drain
  /// waits for this to clear before closing).
  bool any_write_pending() const;

  void on_events(std::uint32_t events) override;

 private:
  void sweep_idle();
  void arm_sweep(double period);

  EventLoop& loop_;
  ServerOptions options_;
  FrameCallback on_frame_;
  CloseCallback on_close_;
  NetCounters* counters_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, ConnectionPtr> connections_;
  bool accepting_ = true;
  std::uint64_t sweep_timer_ = 0;
  bool destroyed_ = false;
};

/// Makes an fd nonblocking; throws on failure.
void set_nonblocking(int fd);

}  // namespace spx::net
