// Binary wire protocol of the scale-out serving layer (docs/SERVICE.md).
//
// Every message is one length-prefixed frame: a fixed 20-byte header
// (magic, version, type, flags, payload length, correlation id) followed
// by a type-specific payload.  All integers and doubles are little-endian
// on the wire; encode/decode fold bytes explicitly, so the format is
// identical across host endiannesses (matching the endian-stable
// pattern_digest the front-end routes on).
//
// Design points:
//   * The pattern digest sits at byte 0 of every request payload, so the
//     front-end routes a frame to its shard by peeking 8 bytes -- it never
//     parses (or copies) the CSC body it proxies.
//   * Matrix ingestion is zero-copy into the mat/ CSC layout: the decoder
//     bulk-copies the wire arrays straight into the colptr/rowind/values
//     vectors a CscMatrix adopts -- no intermediate triplet or DTO form.
//   * Request frames carry an explicit trace context (trace id + parent
//     span id), threading the obs trace across the wire; 0 means "none".
//   * Responses carry the structured outcome (status + ErrorCode), the
//     serving shard's name, and the full RequestStats/RunStats surface as
//     a JSON document -- the same bytes `RequestStats::to_json().dump()`
//     produces in-process.
//
// This header depends only on mat/csc.hpp and the common layer; no
// sockets, no event loop -- protocol robustness is testable in isolation
// (tests/test_net.cpp round-trips and malformed-input suites).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mat/csc.hpp"

namespace spx::net {

/// Thrown by decoders on any malformed, truncated, or out-of-bounds
/// input.  Servers catch it and answer with an Error frame (they never
/// crash on hostile bytes; the ASan suite pins this).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Wire magic: the bytes 'S' 'P' 'X' 'W' in order.
inline constexpr std::uint32_t kMagic = 0x57585053u;
/// Protocol version; a peer speaking a different version gets an Error
/// frame with code VersionMismatch and the connection is closed.
/// v2 added the optional per-frame CRC32C trailer (kFlagChecksum).
/// v3 added the refactorize opcodes (RefactorizeRequest/Response) -- a
/// v2 peer cannot express them, so the version gate is the skew defense
/// (tests/test_net.cpp exercises both directions).
inline constexpr std::uint8_t kProtocolVersion = 3;
/// Frame header size on the wire.
inline constexpr std::size_t kHeaderBytes = 20;
/// Default ceiling on payload size; larger length fields are rejected
/// before any allocation (slow-loris / memory-bomb defense).
inline constexpr std::size_t kDefaultMaxPayload = 256u << 20;

/// Header flag: the payload carries a 4-byte little-endian CRC32C
/// trailer computed over the payload bytes that precede it (the trailer
/// is included in `length`).  FrameParser verifies and strips it, so a
/// flipped bit surfaces as a ProtocolError instead of a decoded frame.
/// Opt-in per sender (see add_checksum); receivers always understand it.
inline constexpr std::uint16_t kFlagChecksum = 0x1;
/// Size of the CRC32C trailer kFlagChecksum announces.
inline constexpr std::size_t kChecksumBytes = 4;

enum class FrameType : std::uint8_t {
  FactorizeRequest = 1,
  SolveRequest = 2,
  FactorizeResponse = 3,
  SolveResponse = 4,
  Error = 5,
  Ping = 6,
  Pong = 7,
  RefactorizeRequest = 8,   ///< v3: numeric-only refresh of a live factor
  RefactorizeResponse = 9,  ///< v3: same body layout as FactorizeResponse
};

const char* to_string(FrameType t);

/// Protocol-level error codes carried by Error frames (distinct from the
/// service-level ErrorCode, which rides inside response frames).
enum class NetError : std::uint32_t {
  VersionMismatch = 1,  ///< peer speaks another protocol version
  Malformed = 2,        ///< frame failed to decode
  UnsupportedType = 3,  ///< frame type this endpoint does not handle
  Overloaded = 4,       ///< per-shard in-flight window full (retryable)
  Draining = 5,         ///< shard is draining; reroute (retryable)
  NoShard = 6,          ///< front-end has no live shard for the key
  UnknownFactor = 7,    ///< factor id not resident (re-factorize)
  Internal = 8,         ///< unexpected server-side failure
  DeadlineExceeded = 9,  ///< request deadline passed; retrying is useless
};

const char* to_string(NetError e);

/// True for protocol errors a client should absorb by retrying (possibly
/// against a rerouted shard) rather than surfacing.
bool retryable(NetError e);

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::Ping;
  std::uint16_t flags = 0;
  std::uint32_t length = 0;   ///< payload bytes following the header
  std::uint64_t corr_id = 0;  ///< echoed verbatim in the response
};

// ---- frame bodies -------------------------------------------------------

/// Trace context threaded across the wire (0/0 = no trace).
struct WireTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

struct FactorizeRequestFrame {
  std::uint64_t pattern_digest = 0;  ///< byte 0 of the payload (routing key)
  WireTrace trace;
  Factorization kind = Factorization::LLT;
  std::string tenant;
  double deadline_s = 0;  ///< 0 = none
  /// Decoded matrix (decode only; encoding reads from `matrix_view`).
  std::shared_ptr<const CscMatrix<real_t>> matrix;
};

struct SolveRequestFrame {
  std::uint64_t pattern_digest = 0;  ///< routes to the factor's shard
  WireTrace trace;
  std::uint64_t factor_id = 0;  ///< from a FactorizeResponse
  std::string tenant;
  double deadline_s = 0;
  std::vector<real_t> rhs;
};

/// Numeric-only re-factorization of a resident factor: new values for the
/// pattern the factor was built from.  The prefix layout (digest, trace,
/// factor id, tenant, deadline) deliberately matches SolveRequestFrame,
/// so peek_deadline and the routing path treat both alike.  The shard
/// verifies `pattern_digest` against the factor before ingesting.
struct RefactorizeRequestFrame {
  std::uint64_t pattern_digest = 0;  ///< routes to the factor's shard
  WireTrace trace;
  std::uint64_t factor_id = 0;  ///< from a FactorizeResponse
  std::string tenant;
  double deadline_s = 0;
  std::vector<real_t> values;  ///< nnz new values, CSC storage order
};

struct FactorizeResponseFrame {
  std::uint8_t status = 0;  ///< service::RequestStatus
  std::uint8_t code = 0;    ///< service::ErrorCode
  bool degraded = false;
  std::uint64_t factor_id = 0;  ///< valid iff status == Done
  std::string shard;            ///< serving shard's name (affinity checks)
  std::string error;
  std::string stats_json;  ///< RequestStats::to_json().dump() (incl RunStats)
};

struct SolveResponseFrame {
  std::uint8_t status = 0;
  std::uint8_t code = 0;
  bool degraded = false;
  std::string shard;
  std::string error;
  std::string stats_json;
  std::vector<real_t> x;  ///< solution; empty unless status == Done
};

struct ErrorFrame {
  NetError code = NetError::Internal;
  std::string message;
};

// ---- encode -------------------------------------------------------------

/// Encodes a complete frame (header + payload) ready to write.
std::vector<std::uint8_t> encode_factorize_request(
    std::uint64_t corr_id, const FactorizeRequestFrame& f,
    const CscMatrix<real_t>& a);
std::vector<std::uint8_t> encode_solve_request(std::uint64_t corr_id,
                                               const SolveRequestFrame& f);
std::vector<std::uint8_t> encode_refactorize_request(
    std::uint64_t corr_id, const RefactorizeRequestFrame& f);
std::vector<std::uint8_t> encode_factorize_response(
    std::uint64_t corr_id, const FactorizeResponseFrame& f);
/// Same body layout as FactorizeResponse under the RefactorizeResponse
/// frame type (a refactorize outcome IS a factorize outcome).
std::vector<std::uint8_t> encode_refactorize_response(
    std::uint64_t corr_id, const FactorizeResponseFrame& f);
std::vector<std::uint8_t> encode_solve_response(
    std::uint64_t corr_id, const SolveResponseFrame& f);
std::vector<std::uint8_t> encode_error(std::uint64_t corr_id, NetError code,
                                       std::string_view message);
std::vector<std::uint8_t> encode_empty(FrameType type,
                                       std::uint64_t corr_id);

/// Assembles a frame from an explicit header and payload, trusting the
/// header fields verbatim (version included; length is taken from the
/// payload).  The front-end uses it to re-correlate proxied frames
/// without touching their bodies; tests use it to forge hostile headers.
/// When `header.flags` has kFlagChecksum set, a fresh CRC32C trailer is
/// appended (FrameParser strips trailers on receipt, so proxied payloads
/// arrive here bare and must be re-sealed).
std::vector<std::uint8_t> encode_raw_frame(
    const FrameHeader& header, std::span<const std::uint8_t> payload);

/// Seals an already-encoded frame with the optional integrity trailer:
/// appends CRC32C over the payload, sets kFlagChecksum, and fixes up the
/// header length.  Idempotent-unsafe (do not call twice on one frame).
void add_checksum(std::vector<std::uint8_t>& frame);

// ---- decode -------------------------------------------------------------

/// Decodes a header from exactly kHeaderBytes.  Throws ProtocolError on a
/// bad magic; version is NOT checked here (the caller decides whether to
/// answer VersionMismatch or close).
FrameHeader decode_header(std::span<const std::uint8_t> bytes);

FactorizeRequestFrame decode_factorize_request(
    std::span<const std::uint8_t> payload);
SolveRequestFrame decode_solve_request(std::span<const std::uint8_t> payload);
RefactorizeRequestFrame decode_refactorize_request(
    std::span<const std::uint8_t> payload);
FactorizeResponseFrame decode_factorize_response(
    std::span<const std::uint8_t> payload);
FactorizeResponseFrame decode_refactorize_response(
    std::span<const std::uint8_t> payload);
SolveResponseFrame decode_solve_response(
    std::span<const std::uint8_t> payload);
ErrorFrame decode_error(std::span<const std::uint8_t> payload);

/// Routing key of a request payload without decoding it: the pattern
/// digest every request type stores in its first 8 bytes.
std::uint64_t peek_pattern_digest(std::span<const std::uint8_t> payload);

/// Relative deadline of a request payload without decoding the body
/// (both request layouts keep it in a fixed-offset prefix).  Returns 0
/// ("no deadline") for non-request frames or a truncated prefix -- the
/// value is advisory (the shard re-decodes authoritatively), so peeking
/// never throws.
double peek_deadline(FrameType type, std::span<const std::uint8_t> payload);

// ---- stream assembly ----------------------------------------------------

/// Incremental frame assembler over a byte stream: feed whatever arrived,
/// take complete frames out.  Tolerates arbitrary fragmentation (a
/// slow-loris peer dribbling one byte at a time) and rejects oversized or
/// bad-magic input with ProtocolError before buffering the body.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// One fully-assembled frame.
  struct Frame {
    FrameHeader header;
    std::vector<std::uint8_t> payload;
  };

  /// Appends raw bytes from the stream.  Throws ProtocolError on bad
  /// magic or an oversized declared length (the connection should be
  /// closed; resynchronization is not attempted).
  void feed(std::span<const std::uint8_t> bytes);

  /// Pops the next complete frame, or nullopt when more bytes are needed.
  std::optional<Frame> next();

  /// Bytes currently buffered (tests: bounded under slow-loris).
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  ///< parsed-off prefix, compacted lazily
};

}  // namespace spx::net
