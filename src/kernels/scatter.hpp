// Row-mapping ("gap") machinery for sparse panel updates.
//
// An update task computes W = A_trailing * B^T where A_trailing is the
// trailing rows of the source panel and scatters W into the facing panel,
// whose stored rows are a *superset* arranged with gaps.  The paper's GPU
// kernel (modified ASTRA GEMM) computes directly into the gapped C; the
// CPU kernel computes into a contiguous buffer and dispatches.  Both paths
// are implemented here on top of a precomputed segment map.
#pragma once

#include <vector>

#include "kernels/dense.hpp"
#include "symbolic/structure.hpp"

namespace spx::kernels {

/// One contiguous run of rows: `len` source rows starting at W row
/// `src_offset` land at target storage rows starting at `dst_offset`.
struct RowSegment {
  index_t src_offset;
  index_t dst_offset;
  index_t len;
};

/// Maps the trailing rows of `src` (storage rows [first_offset,
/// src.nrows)) onto storage rows of `dst`.  Every trailing source row is
/// guaranteed by the symbolic structure to exist in dst.
std::vector<RowSegment> build_row_segments(const Panel& src,
                                           index_t first_offset,
                                           const Panel& dst);

/// c_dst(:, dst_col + j) -= w(:, j) for the mapped rows: the CPU
/// "compute-then-dispatch" path.
template <typename T>
void scatter_sub(const std::vector<RowSegment>& segs, index_t ncols,
                 const T* w, index_t ldw, T* dst, index_t lddst,
                 index_t dst_col) {
  for (index_t j = 0; j < ncols; ++j) {
    const T* wcol = w + static_cast<std::size_t>(j) * ldw;
    T* dcol = dst + static_cast<std::size_t>(dst_col + j) * lddst;
    for (const RowSegment& s : segs) {
      const T* ws = wcol + s.src_offset;
      T* ds = dcol + s.dst_offset;
      for (index_t r = 0; r < s.len; ++r) ds[r] -= ws[r];
    }
  }
}

/// Buffer-free path (the paper's modified-ASTRA GPU kernel): one GEMM per
/// contiguous segment, accumulating straight into the gapped target.
/// `a` addresses the *full* source panel column (leading dimension lda);
/// segment src offsets are relative to a + seg.src_offset rows.
template <typename T>
void gemm_nt_gapped(const std::vector<RowSegment>& segs, index_t n,
                    index_t k, T alpha, const T* a, index_t lda, const T* b,
                    index_t ldb, T* dst, index_t lddst, index_t dst_col) {
  for (const RowSegment& s : segs) {
    gemm_nt(s.len, n, k, alpha, a + s.src_offset, lda, b, ldb, T(1),
            dst + s.dst_offset + static_cast<std::size_t>(dst_col) * lddst,
            lddst);
  }
}

}  // namespace spx::kernels
