// AVX-512F packed-GEMM variant (x86-64).  Compiled with -mavx512f
// -mavx512dq -mfma when the toolchain supports it; degrades to null
// tables otherwise.
//
// 16x8 doubles / 32x8 floats: 16 zmm accumulators + 2 A loads + 1
// broadcast out of 32 registers, twice the AVX2 tile in both the vector
// width and the broadcast reuse.
#include "kernels/dispatch.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "kernels/microkernel.hpp"

namespace spx::kernels {
namespace {

struct MicroAvx512D {
  static constexpr int MR = 16;
  static constexpr int NR = 8;
  static void run(index_t kc, const double* ap, const double* bp, double* c,
                  index_t ldc) {
    __m512d acc0[NR];
    __m512d acc1[NR];
    for (int j = 0; j < NR; ++j) {
      double* col = c + static_cast<std::size_t>(j) * ldc;
      acc0[j] = _mm512_loadu_pd(col);
      acc1[j] = _mm512_loadu_pd(col + 8);
    }
    for (index_t l = 0; l < kc; ++l) {
      const __m512d a0 = _mm512_loadu_pd(ap);
      const __m512d a1 = _mm512_loadu_pd(ap + 8);
      ap += MR;
      for (int j = 0; j < NR; ++j) {
        const __m512d bv = _mm512_set1_pd(bp[j]);
        acc0[j] = _mm512_fmadd_pd(a0, bv, acc0[j]);
        acc1[j] = _mm512_fmadd_pd(a1, bv, acc1[j]);
      }
      bp += NR;
    }
    for (int j = 0; j < NR; ++j) {
      double* col = c + static_cast<std::size_t>(j) * ldc;
      _mm512_storeu_pd(col, acc0[j]);
      _mm512_storeu_pd(col + 8, acc1[j]);
    }
  }
};

struct MicroAvx512S {
  static constexpr int MR = 32;
  static constexpr int NR = 8;
  static void run(index_t kc, const float* ap, const float* bp, float* c,
                  index_t ldc) {
    __m512 acc0[NR];
    __m512 acc1[NR];
    for (int j = 0; j < NR; ++j) {
      float* col = c + static_cast<std::size_t>(j) * ldc;
      acc0[j] = _mm512_loadu_ps(col);
      acc1[j] = _mm512_loadu_ps(col + 16);
    }
    for (index_t l = 0; l < kc; ++l) {
      const __m512 a0 = _mm512_loadu_ps(ap);
      const __m512 a1 = _mm512_loadu_ps(ap + 16);
      ap += MR;
      for (int j = 0; j < NR; ++j) {
        const __m512 bv = _mm512_set1_ps(bp[j]);
        acc0[j] = _mm512_fmadd_ps(a0, bv, acc0[j]);
        acc1[j] = _mm512_fmadd_ps(a1, bv, acc1[j]);
      }
      bp += NR;
    }
    for (int j = 0; j < NR; ++j) {
      float* col = c + static_cast<std::size_t>(j) * ldc;
      _mm512_storeu_ps(col, acc0[j]);
      _mm512_storeu_ps(col + 16, acc1[j]);
    }
  }
};

template <typename T, typename M, micro::BShape S>
void gemm_impl(index_t m, index_t n, index_t k, T alpha, const T* a,
               index_t lda, const T* b, index_t ldb, T beta, T* c,
               index_t ldc) {
  micro::packed_gemm<T, M>(S, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

}  // namespace

GemmFuncs<real_t> gemm_variant_avx512_d() {
  return {&gemm_impl<real_t, MicroAvx512D, micro::BShape::Nt>,
          &gemm_impl<real_t, MicroAvx512D, micro::BShape::Nn>};
}

GemmFuncs<real32_t> gemm_variant_avx512_s() {
  return {&gemm_impl<real32_t, MicroAvx512S, micro::BShape::Nt>,
          &gemm_impl<real32_t, MicroAvx512S, micro::BShape::Nn>};
}

}  // namespace spx::kernels

#else  // !__AVX512F__

namespace spx::kernels {
GemmFuncs<real_t> gemm_variant_avx512_d() { return {}; }
GemmFuncs<real32_t> gemm_variant_avx512_s() { return {}; }
}  // namespace spx::kernels

#endif
