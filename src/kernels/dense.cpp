#include "kernels/dense.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "kernels/dispatch.hpp"

namespace spx::kernels {
namespace {

/// Shared argument guards: every dense kernel validates its dimensions
/// and leading dimensions in debug builds, so a bad stride from a future
/// caller (e.g. a 2D tile task) faults here instead of corrupting
/// neighboring panels.  `ld_of(rows)` is the minimum legal leading
/// dimension of an operand with `rows` rows.
inline index_t ld_of(index_t rows) { return std::max<index_t>(1, rows); }

#define SPX_KERNEL_ASSERT_DIMS_2(m, n) \
  SPX_DEBUG_ASSERT((m) >= 0 && (n) >= 0)
#define SPX_KERNEL_ASSERT_DIMS_3(m, n, k) \
  SPX_DEBUG_ASSERT((m) >= 0 && (n) >= 0 && (k) >= 0)

/// Register-tiled core of the streaming (non-packed) gemm_nt used by the
/// complex path: processes a j-tile of up to 4 columns of C at once so
/// each A column is streamed once per 4 C columns.
template <typename T, int JT>
void gemm_nt_jtile(index_t m, index_t k, T alpha, const T* a, index_t lda,
                   const T* b, index_t ldb, T* c, index_t ldc) {
  for (index_t l = 0; l < k; ++l) {
    const T* acol = a + static_cast<std::size_t>(l) * lda;
    T bv[JT];
    for (int j = 0; j < JT; ++j) {
      bv[j] = alpha * b[j + static_cast<std::size_t>(l) * ldb];
    }
    for (index_t i = 0; i < m; ++i) {
      const T av = acol[i];
      for (int j = 0; j < JT; ++j) {
        c[i + static_cast<std::size_t>(j) * ldc] += av * bv[j];
      }
    }
  }
}

/// C := beta * C over the full m x n extent (beta==0 overwrites NaN).
template <typename T>
void scale_beta(index_t m, index_t n, T beta, T* c, index_t ldc) {
  if (beta == T(1)) return;
  if (beta == T(0)) {
    for (index_t j = 0; j < n; ++j) {
      std::fill_n(c + static_cast<std::size_t>(j) * ldc, m, T(0));
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      T* col = c + static_cast<std::size_t>(j) * ldc;
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
}

/// Streaming gemm_nt kept for the complex types (the dispatch layer
/// covers real_t/real32_t with packed SIMD variants; see dispatch.hpp).
template <typename T>
void gemm_nt_streaming(index_t m, index_t n, index_t k, T alpha, const T* a,
                       index_t lda, const T* b, index_t ldb, T beta, T* c,
                       index_t ldc) {
  scale_beta(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;
  // Block over k to keep the streamed A panel in cache.
  constexpr index_t KB = 256;
  for (index_t l0 = 0; l0 < k; l0 += KB) {
    const index_t kb = std::min(KB, k - l0);
    const T* ablk = a + static_cast<std::size_t>(l0) * lda;
    const T* bblk = b + static_cast<std::size_t>(l0) * ldb;
    index_t j = 0;
    for (; j + 4 <= n; j += 4) {
      gemm_nt_jtile<T, 4>(m, kb, alpha, ablk, lda, bblk + j, ldb,
                          c + static_cast<std::size_t>(j) * ldc, ldc);
    }
    for (; j < n; ++j) {
      gemm_nt_jtile<T, 1>(m, kb, alpha, ablk, lda, bblk + j, ldb,
                          c + static_cast<std::size_t>(j) * ldc, ldc);
    }
  }
}

/// Streaming gemm_nn (axpy formulation) kept for the complex types.
template <typename T>
void gemm_nn_streaming(index_t m, index_t n, index_t k, T alpha, const T* a,
                       index_t lda, const T* b, index_t ldb, T beta, T* c,
                       index_t ldc) {
  scale_beta(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;
  // axpy formulation: C(:,j) += alpha * B(l,j) * A(:,l), streaming A once
  // per column of C with 4-column tiles like gemm_nt.
  for (index_t j0 = 0; j0 < n; j0 += 4) {
    const index_t jt = std::min<index_t>(4, n - j0);
    for (index_t l = 0; l < k; ++l) {
      const T* acol = a + static_cast<std::size_t>(l) * lda;
      T bv[4];
      for (index_t j = 0; j < jt; ++j) {
        bv[j] = alpha * b[l + static_cast<std::size_t>(j0 + j) * ldb];
      }
      for (index_t i = 0; i < m; ++i) {
        const T av = acol[i];
        for (index_t j = 0; j < jt; ++j) {
          c[i + static_cast<std::size_t>(j0 + j) * ldc] += av * bv[j];
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void gemm_nt(index_t m, index_t n, index_t k, T alpha, const T* a,
             index_t lda, const T* b, index_t ldb, T beta, T* c,
             index_t ldc) {
  SPX_KERNEL_ASSERT_DIMS_3(m, n, k);
  SPX_DEBUG_ASSERT(lda >= ld_of(m) && ldb >= ld_of(n) && ldc >= ld_of(m));
  if constexpr (is_complex_v<T>) {
    gemm_nt_streaming(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else {
    Dispatch::instance().gemm<T>(GemmShape::Nt, m, n, k, alpha, a, lda, b,
                                 ldb, beta, c, ldc);
  }
}

template <typename T>
void gemm_nt_ref(index_t m, index_t n, index_t k, T alpha, const T* a,
                 index_t lda, const T* b, index_t ldb, T beta, T* c,
                 index_t ldc) {
  SPX_KERNEL_ASSERT_DIMS_3(m, n, k);
  SPX_DEBUG_ASSERT(lda >= ld_of(m) && ldb >= ld_of(n) && ldc >= ld_of(m));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      T acc = T(0);
      for (index_t l = 0; l < k; ++l) {
        acc += a[i + static_cast<std::size_t>(l) * lda] *
               b[j + static_cast<std::size_t>(l) * ldb];
      }
      T& cij = c[i + static_cast<std::size_t>(j) * ldc];
      cij = beta * cij + alpha * acc;
    }
  }
}

template <typename T>
void gemm_nn(index_t m, index_t n, index_t k, T alpha, const T* a,
             index_t lda, const T* b, index_t ldb, T beta, T* c,
             index_t ldc) {
  SPX_KERNEL_ASSERT_DIMS_3(m, n, k);
  SPX_DEBUG_ASSERT(lda >= ld_of(m) && ldb >= ld_of(k) && ldc >= ld_of(m));
  if constexpr (is_complex_v<T>) {
    gemm_nn_streaming(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else {
    Dispatch::instance().gemm<T>(GemmShape::Nn, m, n, k, alpha, a, lda, b,
                                 ldb, beta, c, ldc);
  }
}

template <typename T>
void gemm_nn_ref(index_t m, index_t n, index_t k, T alpha, const T* a,
                 index_t lda, const T* b, index_t ldb, T beta, T* c,
                 index_t ldc) {
  SPX_KERNEL_ASSERT_DIMS_3(m, n, k);
  SPX_DEBUG_ASSERT(lda >= ld_of(m) && ldb >= ld_of(k) && ldc >= ld_of(m));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      T acc = T(0);
      for (index_t l = 0; l < k; ++l) {
        acc += a[i + static_cast<std::size_t>(l) * lda] *
               b[l + static_cast<std::size_t>(j) * ldb];
      }
      T& cij = c[i + static_cast<std::size_t>(j) * ldc];
      cij = beta * cij + alpha * acc;
    }
  }
}

namespace {

/// Blocking factor of the panel-level kernels: diagonal blocks are
/// factored unblocked below this size, larger ones recurse through
/// GEMM-rich updates (same arithmetic, better cache behaviour).
constexpr index_t kNB = 48;

/// PivotControl whose local column 0 sits `k` columns past pc's (the
/// blocked kernels hand the unblocked base case shifted diagonals).
PivotControl shift(const PivotControl& pc, index_t k) {
  return {pc.threshold, pc.col_offset + k, pc.quality};
}

[[noreturn]] void throw_pivot(const char* kernel, const char* what,
                              index_t global_col) {
  throw NumericalError(std::string(kernel) + ": " + what +
                       " at global column " + std::to_string(global_col));
}

/// Accepts, perturbs, or rejects the pivot of local column `j`.
/// Returns the (possibly replaced) pivot value; records accounting.
template <typename T>
T settle_pivot(const char* kernel, T d, index_t j, const PivotControl& pc,
               bool cholesky) {
  const double mag = static_cast<double>(magnitude<T>(d));
  const index_t col = pc.col_offset + j;
  bool perturbed = false;
  if (pc.threshold > 0) {
    if (cholesky) {
      // Cholesky needs d > 0; a tiny (or tiny-negative, i.e. roundoff on
      // a singular matrix) pivot is lifted to +threshold, but a pivot
      // below -threshold means genuine indefiniteness -- no perturbation
      // repairs that, so escalate (callers wanting to continue use LDL^T).
      double dr;
      if constexpr (is_complex_v<T>) {
        dr = mag;  // complex-symmetric "Cholesky" guards magnitude only
      } else {
        dr = static_cast<double>(d);
      }
      if (dr < -pc.threshold) {
        if (pc.quality != nullptr) pc.quality->indefinite = true;
        throw_pivot(kernel, "indefinite pivot", col);
      }
      if (dr < pc.threshold) {
        d = T(pc.threshold);
        perturbed = true;
      }
    } else if (mag < pc.threshold) {
      // Sign/phase-preserving replacement: d <- threshold * d/|d|
      // (exact zero becomes +threshold).
      if (mag == 0.0) {
        d = T(pc.threshold);
      } else {
        d *= static_cast<real_of_t<T>>(pc.threshold / mag);
      }
      perturbed = true;
    }
  } else if (cholesky) {
    bool bad;
    if constexpr (is_complex_v<T>) {
      // Complex Cholesky without conjugation is only used on matrices
      // guaranteed safe by construction; guard against exact zero.
      bad = (d == T(0));
    } else {
      bad = !(d > T(0));
    }
    if (bad) throw_pivot(kernel, "non-positive pivot", col);
  } else if (d == T(0)) {
    throw_pivot(kernel, "zero pivot", col);
  }
  if (pc.quality != nullptr) {
    pc.quality->note_pivot(perturbed ? pc.threshold : mag, col, perturbed);
  }
  return d;
}

template <typename T>
void potrf_unblocked(index_t n, T* a, index_t lda, const PivotControl& pc) {
  // Left-looking scalar Cholesky, used on diagonal blocks of size <= kNB.
  for (index_t j = 0; j < n; ++j) {
    T* aj = a + static_cast<std::size_t>(j) * lda;
    // a(j:n,j) -= A(j:n,0:j) * A(j,0:j)^T
    for (index_t k = 0; k < j; ++k) {
      const T ajk = a[j + static_cast<std::size_t>(k) * lda];
      if (ajk == T(0)) continue;
      const T* ak = a + static_cast<std::size_t>(k) * lda;
      for (index_t i = j; i < n; ++i) aj[i] -= ak[i] * ajk;
    }
    const T diag = settle_pivot("potrf", aj[j], j, pc, /*cholesky=*/true);
    const T root = std::sqrt(diag);
    const T inv = T(1) / root;
    aj[j] = root;
    for (index_t i = j + 1; i < n; ++i) aj[i] *= inv;
  }
}

template <typename T>
void ldlt_unblocked(index_t n, T* a, index_t lda, const PivotControl& pc) {
  // Right-looking LDL^T with plain transpose (complex-symmetric safe).
  for (index_t j = 0; j < n; ++j) {
    T* aj = a + static_cast<std::size_t>(j) * lda;
    const T d = settle_pivot("ldlt", aj[j], j, pc, /*cholesky=*/false);
    aj[j] = d;
    const T inv = T(1) / d;
    for (index_t i = j + 1; i < n; ++i) aj[i] *= inv;  // L(i,j)
    // Trailing update: A(i,k) -= L(i,j) * d * L(k,j) for k > j.
    for (index_t k = j + 1; k < n; ++k) {
      const T lkj_d = aj[k] * d;
      if (lkj_d == T(0)) continue;
      T* akcol = a + static_cast<std::size_t>(k) * lda;
      for (index_t i = k; i < n; ++i) akcol[i] -= aj[i] * lkj_d;
    }
  }
}

template <typename T>
void getrf_nopiv_unblocked(index_t n, T* a, index_t lda,
                           const PivotControl& pc) {
  for (index_t j = 0; j < n; ++j) {
    T* aj = a + static_cast<std::size_t>(j) * lda;
    const T piv = settle_pivot("getrf", aj[j], j, pc, /*cholesky=*/false);
    aj[j] = piv;
    const T inv = T(1) / piv;
    for (index_t i = j + 1; i < n; ++i) aj[i] *= inv;
    for (index_t k = j + 1; k < n; ++k) {
      T* ak = a + static_cast<std::size_t>(k) * lda;
      const T ujk = ak[j];
      if (ujk == T(0)) continue;
      for (index_t i = j + 1; i < n; ++i) ak[i] -= aj[i] * ujk;
    }
  }
}

}  // namespace

template <typename T>
void trsm_right_lower_trans_unblocked(index_t m, index_t n, const T* l,
                                      index_t ldl, T* x, index_t ldx,
                                      bool unit_diag) {
  SPX_KERNEL_ASSERT_DIMS_2(m, n);
  SPX_DEBUG_ASSERT(ldl >= ld_of(n) && ldx >= ld_of(m));
  // Solve X * L^T = B column by column of L^T (i.e. row j of L):
  //   X(:,j) = (B(:,j) - sum_{i<j} X(:,i) * L(j,i)) / L(j,j)
  for (index_t j = 0; j < n; ++j) {
    T* xj = x + static_cast<std::size_t>(j) * ldx;
    for (index_t i = 0; i < j; ++i) {
      const T lji = l[j + static_cast<std::size_t>(i) * ldl];
      if (lji == T(0)) continue;
      const T* xi = x + static_cast<std::size_t>(i) * ldx;
      for (index_t r = 0; r < m; ++r) xj[r] -= xi[r] * lji;
    }
    if (!unit_diag) {
      const T d = l[j + static_cast<std::size_t>(j) * ldl];
      const T inv = T(1) / d;
      for (index_t r = 0; r < m; ++r) xj[r] *= inv;
    }
  }
}

template <typename T>
void trsm_right_upper_unblocked(index_t m, index_t n, const T* u,
                                index_t ldu, T* x, index_t ldx) {
  SPX_KERNEL_ASSERT_DIMS_2(m, n);
  SPX_DEBUG_ASSERT(ldu >= ld_of(n) && ldx >= ld_of(m));
  // Solve X * U = B:  X(:,j) = (B(:,j) - sum_{i<j} X(:,i)*U(i,j)) / U(j,j).
  for (index_t j = 0; j < n; ++j) {
    T* xj = x + static_cast<std::size_t>(j) * ldx;
    for (index_t i = 0; i < j; ++i) {
      const T uij = u[i + static_cast<std::size_t>(j) * ldu];
      if (uij == T(0)) continue;
      const T* xi = x + static_cast<std::size_t>(i) * ldx;
      for (index_t r = 0; r < m; ++r) xj[r] -= xi[r] * uij;
    }
    const T inv = T(1) / u[j + static_cast<std::size_t>(j) * ldu];
    for (index_t r = 0; r < m; ++r) xj[r] *= inv;
  }
}

template <typename T>
void trsm_right_lower_trans(index_t m, index_t n, const T* l, index_t ldl,
                            T* x, index_t ldx, bool unit_diag) {
  SPX_KERNEL_ASSERT_DIMS_2(m, n);
  SPX_DEBUG_ASSERT(ldl >= ld_of(n) && ldx >= ld_of(m));
  // Blocked: X_j := (B_j - X_{<j} * L(j, <j)^T) * L_jj^{-T}.
  for (index_t j = 0; j < n; j += kNB) {
    const index_t jb = std::min(kNB, n - j);
    if (j > 0) {
      gemm_nt(m, jb, j, T(-1), x, ldx, l + j, ldl, T(1),
              x + static_cast<std::size_t>(j) * ldx, ldx);
    }
    trsm_right_lower_trans_unblocked(
        m, jb, l + j + static_cast<std::size_t>(j) * ldl, ldl,
        x + static_cast<std::size_t>(j) * ldx, ldx, unit_diag);
  }
}

template <typename T>
void trsm_right_upper(index_t m, index_t n, const T* u, index_t ldu, T* x,
                      index_t ldx) {
  SPX_KERNEL_ASSERT_DIMS_2(m, n);
  SPX_DEBUG_ASSERT(ldu >= ld_of(n) && ldx >= ld_of(m));
  // Blocked: X_j := (B_j - X_{<j} * U(<j, j)) * U_jj^{-1}.
  for (index_t j = 0; j < n; j += kNB) {
    const index_t jb = std::min(kNB, n - j);
    if (j > 0) {
      gemm_nn(m, jb, j, T(-1), x, ldx,
              u + static_cast<std::size_t>(j) * ldu, ldu, T(1),
              x + static_cast<std::size_t>(j) * ldx, ldx);
    }
    trsm_right_upper_unblocked(
        m, jb, u + j + static_cast<std::size_t>(j) * ldu, ldu,
        x + static_cast<std::size_t>(j) * ldx, ldx);
  }
}

template <typename T>
void trsm_left_lower_unit(index_t n, index_t m, const T* l, index_t ldl,
                          T* x, index_t ldx) {
  SPX_KERNEL_ASSERT_DIMS_2(n, m);
  SPX_DEBUG_ASSERT(ldl >= ld_of(n) && ldx >= ld_of(n));
  // Forward substitution on block rows: X_i := X_i - L(i, <i) * X_{<i}.
  for (index_t i = 0; i < n; i += kNB) {
    const index_t ib = std::min(kNB, n - i);
    if (i > 0) {
      gemm_nn(ib, m, i, T(-1), l + i, ldl, x, ldx, T(1), x + i, ldx);
    }
    // Unblocked unit-lower solve on the diagonal block.
    const T* lii = l + i + static_cast<std::size_t>(i) * ldl;
    for (index_t c = 0; c < m; ++c) {
      T* col = x + i + static_cast<std::size_t>(c) * ldx;
      for (index_t j = 0; j < ib; ++j) {
        const T v = col[j];
        if (v == T(0)) continue;
        for (index_t r = j + 1; r < ib; ++r) {
          col[r] -= lii[r + static_cast<std::size_t>(j) * ldl] * v;
        }
      }
    }
  }
}

template <typename T>
void potrf(index_t n, T* a, index_t lda, const PivotControl& pc) {
  SPX_DEBUG_ASSERT(n >= 0 && lda >= ld_of(n));
  // Right-looking blocked Cholesky over the unblocked base case.
  for (index_t k = 0; k < n; k += kNB) {
    const index_t kb = std::min(kNB, n - k);
    T* akk = a + k + static_cast<std::size_t>(k) * lda;
    potrf_unblocked(kb, akk, lda, shift(pc, k));
    const index_t m2 = n - k - kb;
    if (m2 == 0) continue;
    T* a21 = akk + kb;
    trsm_right_lower_trans(m2, kb, akk, lda, a21, lda, false);
    // Trailing symmetric update, lower trapezoid by block columns.
    for (index_t j = 0; j < m2; j += kNB) {
      const index_t jb = std::min(kNB, m2 - j);
      gemm_nt(m2 - j, jb, kb, T(-1), a21 + j, lda, a21 + j, lda, T(1),
              a + (k + kb + j) +
                  static_cast<std::size_t>(k + kb + j) * lda,
              lda);
    }
  }
}

template <typename T>
void ldlt(index_t n, T* a, index_t lda, const PivotControl& pc) {
  SPX_DEBUG_ASSERT(n >= 0 && lda >= ld_of(n));
  // Blocked LDL^T: needs a W = L21 * D scratch for the trailing update.
  std::vector<T> w;
  for (index_t k = 0; k < n; k += kNB) {
    const index_t kb = std::min(kNB, n - k);
    T* akk = a + k + static_cast<std::size_t>(k) * lda;
    ldlt_unblocked(kb, akk, lda, shift(pc, k));
    const index_t m2 = n - k - kb;
    if (m2 == 0) continue;
    T* a21 = akk + kb;
    trsm_right_lower_trans(m2, kb, akk, lda, a21, lda, true);
    // a21 currently holds L21 * D (the TRSM solved against unit L only);
    // save it as W column by column into a tight m2-stride buffer (a
    // whole-panel copy would also drag the (lda - m2)-element inter-column
    // gaps along, and overread a caller's tight-bottom panel), then divide
    // out D to obtain L21.
    w.resize(static_cast<std::size_t>(kb) * m2);
    for (index_t j = 0; j < kb; ++j) {
      std::copy_n(a21 + static_cast<std::size_t>(j) * lda, m2,
                  w.data() + static_cast<std::size_t>(j) * m2);
    }
    std::vector<T> dinv(static_cast<std::size_t>(kb));
    for (index_t j = 0; j < kb; ++j) {
      dinv[j] = akk[j + static_cast<std::size_t>(j) * lda];
    }
    scale_cols_inv(m2, kb, a21, lda, dinv.data());
    // Trailing update: A22 -= L21 * (L21 * D)^T = L21 * W^T (lower part).
    for (index_t j = 0; j < m2; j += kNB) {
      const index_t jb = std::min(kNB, m2 - j);
      gemm_nt(m2 - j, jb, kb, T(-1), a21 + j, lda, w.data() + j, m2, T(1),
              a + (k + kb + j) +
                  static_cast<std::size_t>(k + kb + j) * lda,
              lda);
    }
  }
}

template <typename T>
void getrf_nopiv(index_t n, T* a, index_t lda, const PivotControl& pc) {
  SPX_DEBUG_ASSERT(n >= 0 && lda >= ld_of(n));
  for (index_t k = 0; k < n; k += kNB) {
    const index_t kb = std::min(kNB, n - k);
    T* akk = a + k + static_cast<std::size_t>(k) * lda;
    getrf_nopiv_unblocked(kb, akk, lda, shift(pc, k));
    const index_t m2 = n - k - kb;
    if (m2 == 0) continue;
    T* a21 = akk + kb;                                        // below
    T* a12 = akk + static_cast<std::size_t>(kb) * lda;        // right
    T* a22 = a12 + kb;
    trsm_right_upper(m2, kb, akk, lda, a21, lda);             // L21
    trsm_left_lower_unit(kb, m2, akk, lda, a12, lda);         // U12
    gemm_nn(m2, m2, kb, T(-1), a21, lda, a12, lda, T(1), a22, lda);
  }
}

template <typename T>
void gemm_tn(index_t m, index_t n, index_t k, T alpha, const T* a,
             index_t lda, const T* b, index_t ldb, T beta, T* c,
             index_t ldc) {
  SPX_KERNEL_ASSERT_DIMS_3(m, n, k);
  SPX_DEBUG_ASSERT(lda >= ld_of(k) && ldb >= ld_of(k) && ldc >= ld_of(m));
  for (index_t j = 0; j < n; ++j) {
    const T* bcol = b + static_cast<std::size_t>(j) * ldb;
    T* ccol = c + static_cast<std::size_t>(j) * ldc;
    for (index_t i = 0; i < m; ++i) {
      const T* acol = a + static_cast<std::size_t>(i) * lda;
      T acc = T(0);
      for (index_t l = 0; l < k; ++l) acc += acol[l] * bcol[l];
      ccol[i] = beta * ccol[i] + alpha * acc;
    }
  }
}

template <typename T>
void trsm_left_lower(index_t n, index_t m, const T* l, index_t ldl,
                     bool unit_diag, T* x, index_t ldx) {
  SPX_KERNEL_ASSERT_DIMS_2(n, m);
  SPX_DEBUG_ASSERT(ldl >= ld_of(n) && ldx >= ld_of(n));
  for (index_t c = 0; c < m; ++c) {
    trsv_lower(n, l, ldl, unit_diag, x + static_cast<std::size_t>(c) * ldx);
  }
}

template <typename T>
void trsm_left_lower_trans(index_t n, index_t m, const T* l, index_t ldl,
                           bool unit_diag, T* x, index_t ldx) {
  SPX_KERNEL_ASSERT_DIMS_2(n, m);
  SPX_DEBUG_ASSERT(ldl >= ld_of(n) && ldx >= ld_of(n));
  for (index_t c = 0; c < m; ++c) {
    trsv_lower_trans(n, l, ldl, unit_diag,
                     x + static_cast<std::size_t>(c) * ldx);
  }
}

template <typename T>
void trsm_left_upper(index_t n, index_t m, const T* u, index_t ldu, T* x,
                     index_t ldx) {
  SPX_KERNEL_ASSERT_DIMS_2(n, m);
  SPX_DEBUG_ASSERT(ldu >= ld_of(n) && ldx >= ld_of(n));
  for (index_t c = 0; c < m; ++c) {
    trsv_upper(n, u, ldu, x + static_cast<std::size_t>(c) * ldx);
  }
}

template <typename T>
void scale_cols(index_t m, index_t n, const T* a, index_t lda, const T* d,
                T* b, index_t ldb) {
  SPX_KERNEL_ASSERT_DIMS_2(m, n);
  SPX_DEBUG_ASSERT(lda >= ld_of(m) && ldb >= ld_of(m));
  for (index_t j = 0; j < n; ++j) {
    const T* acol = a + static_cast<std::size_t>(j) * lda;
    T* bcol = b + static_cast<std::size_t>(j) * ldb;
    const T dj = d[j];
    for (index_t i = 0; i < m; ++i) bcol[i] = acol[i] * dj;
  }
}

template <typename T>
void scale_cols_inv(index_t m, index_t n, T* a, index_t lda, const T* d) {
  SPX_KERNEL_ASSERT_DIMS_2(m, n);
  SPX_DEBUG_ASSERT(lda >= ld_of(m));
  for (index_t j = 0; j < n; ++j) {
    T* col = a + static_cast<std::size_t>(j) * lda;
    const T inv = T(1) / d[j];
    for (index_t i = 0; i < m; ++i) col[i] *= inv;
  }
}

template <typename T>
void trsv_lower(index_t n, const T* l, index_t ldl, bool unit_diag, T* b) {
  SPX_DEBUG_ASSERT(n >= 0 && ldl >= ld_of(n));
  for (index_t j = 0; j < n; ++j) {
    const T* lj = l + static_cast<std::size_t>(j) * ldl;
    if (!unit_diag) b[j] /= lj[j];
    const T bj = b[j];
    for (index_t i = j + 1; i < n; ++i) b[i] -= lj[i] * bj;
  }
}

template <typename T>
void trsv_lower_trans(index_t n, const T* l, index_t ldl, bool unit_diag,
                      T* b) {
  SPX_DEBUG_ASSERT(n >= 0 && ldl >= ld_of(n));
  for (index_t j = n - 1; j >= 0; --j) {
    const T* lj = l + static_cast<std::size_t>(j) * ldl;
    T acc = b[j];
    for (index_t i = j + 1; i < n; ++i) acc -= lj[i] * b[i];
    b[j] = unit_diag ? acc : acc / lj[j];
  }
}

template <typename T>
void trsv_upper(index_t n, const T* u, index_t ldu, T* b) {
  SPX_DEBUG_ASSERT(n >= 0 && ldu >= ld_of(n));
  for (index_t j = n - 1; j >= 0; --j) {
    const T* uj = u + static_cast<std::size_t>(j) * ldu;
    b[j] /= uj[j];
    const T bj = b[j];
    for (index_t i = 0; i < j; ++i) b[i] -= uj[i] * bj;
  }
}

template <typename T>
void gemv_sub(index_t m, index_t n, const T* a, index_t lda, const T* x,
              T* y) {
  SPX_KERNEL_ASSERT_DIMS_2(m, n);
  SPX_DEBUG_ASSERT(lda >= ld_of(m));
  for (index_t j = 0; j < n; ++j) {
    const T xj = x[j];
    if (xj == T(0)) continue;
    const T* col = a + static_cast<std::size_t>(j) * lda;
    for (index_t i = 0; i < m; ++i) y[i] -= col[i] * xj;
  }
}

template <typename T>
void gemv_trans_sub(index_t m, index_t n, const T* a, index_t lda,
                    const T* x, T* y) {
  SPX_KERNEL_ASSERT_DIMS_2(m, n);
  SPX_DEBUG_ASSERT(lda >= ld_of(m));
  for (index_t j = 0; j < n; ++j) {
    const T* col = a + static_cast<std::size_t>(j) * lda;
    T acc = T(0);
    for (index_t i = 0; i < m; ++i) acc += col[i] * x[i];
    y[j] -= acc;
  }
}

#define SPX_INSTANTIATE_DENSE(T)                                              \
  template void gemm_nt<T>(index_t, index_t, index_t, T, const T*, index_t,  \
                           const T*, index_t, T, T*, index_t);               \
  template void gemm_nt_ref<T>(index_t, index_t, index_t, T, const T*,      \
                               index_t, const T*, index_t, T, T*, index_t); \
  template void gemm_nn<T>(index_t, index_t, index_t, T, const T*, index_t, \
                           const T*, index_t, T, T*, index_t);              \
  template void gemm_nn_ref<T>(index_t, index_t, index_t, T, const T*,      \
                               index_t, const T*, index_t, T, T*, index_t); \
  template void trsm_left_lower_unit<T>(index_t, index_t, const T*,         \
                                        index_t, T*, index_t);              \
  template void gemm_tn<T>(index_t, index_t, index_t, T, const T*, index_t, \
                           const T*, index_t, T, T*, index_t);              \
  template void trsm_left_lower<T>(index_t, index_t, const T*, index_t,     \
                                   bool, T*, index_t);                      \
  template void trsm_left_lower_trans<T>(index_t, index_t, const T*,        \
                                         index_t, bool, T*, index_t);       \
  template void trsm_left_upper<T>(index_t, index_t, const T*, index_t,     \
                                   T*, index_t);                            \
  template void trsm_right_lower_trans<T>(index_t, index_t, const T*,       \
                                          index_t, T*, index_t, bool);      \
  template void trsm_right_lower_trans_unblocked<T>(                        \
      index_t, index_t, const T*, index_t, T*, index_t, bool);              \
  template void trsm_right_upper<T>(index_t, index_t, const T*, index_t,    \
                                    T*, index_t);                           \
  template void trsm_right_upper_unblocked<T>(index_t, index_t, const T*,   \
                                              index_t, T*, index_t);        \
  template void potrf<T>(index_t, T*, index_t, const PivotControl&);        \
  template void ldlt<T>(index_t, T*, index_t, const PivotControl&);         \
  template void getrf_nopiv<T>(index_t, T*, index_t, const PivotControl&);  \
  template void scale_cols<T>(index_t, index_t, const T*, index_t,          \
                              const T*, T*, index_t);                       \
  template void scale_cols_inv<T>(index_t, index_t, T*, index_t, const T*); \
  template void trsv_lower<T>(index_t, const T*, index_t, bool, T*);        \
  template void trsv_lower_trans<T>(index_t, const T*, index_t, bool, T*);  \
  template void trsv_upper<T>(index_t, const T*, index_t, T*);              \
  template void gemv_sub<T>(index_t, index_t, const T*, index_t, const T*,  \
                            T*);                                            \
  template void gemv_trans_sub<T>(index_t, index_t, const T*, index_t,      \
                                  const T*, T*);

SPX_INSTANTIATE_DENSE(real_t)
SPX_INSTANTIATE_DENSE(complex_t)
SPX_INSTANTIATE_DENSE(real32_t)

}  // namespace spx::kernels
