// Packed, register- and cache-blocked GEMM shared by every ISA variant of
// the dense-kernel dispatch layer (kernels/dispatch.hpp).
//
// The design is the classic three-level blocking of Goto/BLIS, sized for
// the panel shapes the sparse factorization produces:
//
//   jc over NC columns of C   (B panel reused across the whole M extent)
//     pc over KC of k         (B block packed once, alpha folded in)
//       ic over MC rows of C  (A block packed into MR-row micro-panels)
//         jr over NR, ir over MR -> micro-kernel: an MR x NR register
//         tile accumulated over KC with one A load + NR broadcasts per k.
//
// Each ISA translation unit (microkernel_generic.cpp, microkernel_avx2.cpp,
// microkernel_avx512.cpp, microkernel_neon.cpp) instantiates packed_gemm
// with its own micro-kernel struct and is compiled with that ISA's flags;
// the dispatcher only ever calls a variant after cpuid confirms support.
//
// Micro-kernel contract (struct M):
//   static constexpr int MR, NR;           // register tile
//   static void run(index_t kc, const T* ap, const T* bp, T* c, index_t ldc);
//     -> C(0:MR, 0:NR) += sum_l ap[l*MR + i] * bp[l*NR + j], column-major C.
// Edge tiles run the same kernel into a zeroed MR x NR stack buffer whose
// valid region is then added to C, so packed panels are always full-width
// (zero padded) and the inner loop never branches on remainders.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"

namespace spx::kernels::micro {

/// Cache blocking parameters (elements, not bytes).  KC x NR of packed B
/// stays L1-resident per micro-panel; MC x KC of packed A targets L2; NC
/// bounds the packed-B workspace (KC*NC doubles = 1 MiB at the defaults).
constexpr index_t kKC = 256;
constexpr index_t kMC = 192;
constexpr index_t kNC = 512;

/// Calls with m*n*k below this skip packing entirely: the streaming
/// fallback below beats the packed path once the pack cost is not
/// amortized (measured crossover is near 12^3 on both tested hosts).
constexpr double kSmallGemmCutoff = 2048.0;

/// B-operand shape of the two GEMM flavors the solver uses.
/// Nt: B is n x k, C += alpha*A*B^T (the sparse-update shape).
/// Nn: B is k x n, C += alpha*A*B (blocked-LU trailing update).
enum class BShape { Nt, Nn };

/// C := beta * C over the full m x n extent (beta==0 overwrites, so C may
/// hold NaN/garbage on entry).
template <typename T>
inline void apply_beta(index_t m, index_t n, T beta, T* c, index_t ldc) {
  if (beta == T(1)) return;
  if (beta == T(0)) {
    for (index_t j = 0; j < n; ++j) {
      std::fill_n(c + static_cast<std::size_t>(j) * ldc, m, T(0));
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      T* col = c + static_cast<std::size_t>(j) * ldc;
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
}

/// Packs an mc x kc block of A (column-major, lda) into MR-row
/// micro-panels: out[panel][l*MR + i], zero-padding the last panel.
template <typename T, int MR>
void pack_a(index_t mc, index_t kc, const T* a, index_t lda, T* out) {
  for (index_t i0 = 0; i0 < mc; i0 += MR) {
    const index_t mr = std::min<index_t>(MR, mc - i0);
    for (index_t l = 0; l < kc; ++l) {
      const T* col = a + i0 + static_cast<std::size_t>(l) * lda;
      index_t i = 0;
      for (; i < mr; ++i) out[i] = col[i];
      for (; i < MR; ++i) out[i] = T(0);
      out += MR;
    }
  }
}

/// Packs a kc x nc block of B into NR-column micro-panels with alpha
/// folded in: out[panel][l*NR + j] = alpha * B(j, l) (Nt) or
/// alpha * B(l, j) (Nn), zero-padding the last panel.
template <typename T, int NR>
void pack_b(BShape shape, index_t kc, index_t nc, T alpha, const T* b,
            index_t ldb, T* out) {
  for (index_t j0 = 0; j0 < nc; j0 += NR) {
    const index_t nr = std::min<index_t>(NR, nc - j0);
    for (index_t l = 0; l < kc; ++l) {
      index_t j = 0;
      if (shape == BShape::Nt) {
        const T* row = b + j0 + static_cast<std::size_t>(l) * ldb;
        for (; j < nr; ++j) out[j] = alpha * row[j];
      } else {
        for (; j < nr; ++j) {
          out[j] = alpha * b[l + static_cast<std::size_t>(j0 + j) * ldb];
        }
      }
      for (; j < NR; ++j) out[j] = T(0);
      out += NR;
    }
  }
}

/// Streaming (non-packing) fallback for tiny products: the 4-column
/// register-tiled axpy formulation the pre-dispatch kernels used.
template <typename T>
void small_gemm(BShape shape, index_t m, index_t n, index_t k, T alpha,
                const T* a, index_t lda, const T* b, index_t ldb, T beta,
                T* c, index_t ldc) {
  apply_beta(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;
  for (index_t j0 = 0; j0 < n; j0 += 4) {
    const index_t jt = std::min<index_t>(4, n - j0);
    for (index_t l = 0; l < k; ++l) {
      const T* acol = a + static_cast<std::size_t>(l) * lda;
      T bv[4];
      for (index_t j = 0; j < jt; ++j) {
        bv[j] = alpha * (shape == BShape::Nt
                             ? b[(j0 + j) + static_cast<std::size_t>(l) * ldb]
                             : b[l + static_cast<std::size_t>(j0 + j) * ldb]);
      }
      for (index_t i = 0; i < m; ++i) {
        const T av = acol[i];
        for (index_t j = 0; j < jt; ++j) {
          c[i + static_cast<std::size_t>(j0 + j) * ldc] += av * bv[j];
        }
      }
    }
  }
}

/// The full blocked GEMM: C := beta*C + alpha * A * op(B) with op chosen
/// by `shape`.  Complete kernel semantics (beta always applied, m==0 /
/// n==0 / k==0 / alpha==0 degenerate cases handled) so each ISA variant
/// is a drop-in function pointer for the dispatcher.
template <typename T, typename M>
void packed_gemm(BShape shape, index_t m, index_t n, index_t k, T alpha,
                 const T* a, index_t lda, const T* b, index_t ldb, T beta,
                 T* c, index_t ldc) {
  if (static_cast<double>(m) * static_cast<double>(n) *
          static_cast<double>(k) < kSmallGemmCutoff) {
    small_gemm(shape, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  apply_beta(m, n, beta, c, ldc);
  if (alpha == T(0)) return;
  constexpr int MR = M::MR;
  constexpr int NR = M::NR;
  // Workspaces persist across calls; resize() only reallocates on growth.
  thread_local std::vector<T> apack;
  thread_local std::vector<T> bpack;
  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    const index_t ncp = (nc + NR - 1) / NR * NR;
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min(kKC, k - pc);
      bpack.resize(static_cast<std::size_t>(ncp) * kc);
      const T* bblk = (shape == BShape::Nt)
                          ? b + jc + static_cast<std::size_t>(pc) * ldb
                          : b + pc + static_cast<std::size_t>(jc) * ldb;
      pack_b<T, NR>(shape, kc, nc, alpha, bblk, ldb, bpack.data());
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mc = std::min(kMC, m - ic);
        const index_t mcp = (mc + MR - 1) / MR * MR;
        apack.resize(static_cast<std::size_t>(mcp) * kc);
        pack_a<T, MR>(mc, kc, a + ic + static_cast<std::size_t>(pc) * lda,
                      lda, apack.data());
        for (index_t jr = 0; jr < nc; jr += NR) {
          const index_t nr = std::min<index_t>(NR, nc - jr);
          const T* bp = bpack.data() + static_cast<std::size_t>(jr) * kc;
          for (index_t ir = 0; ir < mc; ir += MR) {
            const index_t mr = std::min<index_t>(MR, mc - ir);
            const T* ap = apack.data() + static_cast<std::size_t>(ir) * kc;
            T* cblk = c + (ic + ir) + static_cast<std::size_t>(jc + jr) * ldc;
            if (mr == MR && nr == NR) {
              M::run(kc, ap, bp, cblk, ldc);
            } else {
              T buf[MR * NR] = {};
              M::run(kc, ap, bp, buf, MR);
              for (index_t j = 0; j < nr; ++j) {
                for (index_t i = 0; i < mr; ++i) {
                  cblk[i + static_cast<std::size_t>(j) * ldc] +=
                      buf[i + j * MR];
                }
              }
            }
          }
        }
      }
    }
  }
}

/// Portable micro-kernel: fixed-bound loops over a stack accumulator tile
/// that any -O2 autovectorizer turns into the baseline SIMD of the target
/// (SSE2 on x86-64, NEON on aarch64).  Also the semantics oracle the
/// intrinsics kernels are conformance-tested against.
template <typename T, int MR_, int NR_>
struct GenericMicro {
  static constexpr int MR = MR_;
  static constexpr int NR = NR_;
  static void run(index_t kc, const T* ap, const T* bp, T* c, index_t ldc) {
    T acc[MR * NR] = {};
    for (index_t l = 0; l < kc; ++l) {
      for (int j = 0; j < NR; ++j) {
        const T bv = bp[j];
        for (int i = 0; i < MR; ++i) acc[i + j * MR] += ap[i] * bv;
      }
      ap += MR;
      bp += NR;
    }
    for (int j = 0; j < NR; ++j) {
      T* col = c + static_cast<std::size_t>(j) * ldc;
      for (int i = 0; i < MR; ++i) col[i] += acc[i + j * MR];
    }
  }
};

}  // namespace spx::kernels::micro
