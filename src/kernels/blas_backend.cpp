// Optional external-BLAS delegation (-DSPX_WITH_BLAS=ON): large GEMMs go
// to any LP64 CBLAS (OpenBLAS, ATLAS, Netlib, BLIS) the build linked.
//
// The CBLAS prototypes are declared here instead of including <cblas.h>
// so detection only needs the library, not development headers; the enum
// arguments pass as int, which matches the C ABI of every LP64 CBLAS.
// This file is only added to the build when SPX_WITH_BLAS is ON, so a
// build without BLAS has no undefined symbols to satisfy.
#include "kernels/dispatch.hpp"

extern "C" {
void cblas_dgemm(int order, int transa, int transb, int m, int n, int k,
                 double alpha, const double* a, int lda, const double* b,
                 int ldb, double beta, double* c, int ldc);
void cblas_sgemm(int order, int transa, int transb, int m, int n, int k,
                 float alpha, const float* a, int lda, const float* b,
                 int ldb, float beta, float* c, int ldc);
}

namespace spx::kernels {
namespace {
constexpr int kColMajor = 102;  // CblasColMajor
constexpr int kNoTrans = 111;   // CblasNoTrans
constexpr int kTrans = 112;     // CblasTrans
}  // namespace

void blas_gemm(GemmShape shape, index_t m, index_t n, index_t k,
               double alpha, const double* a, index_t lda, const double* b,
               index_t ldb, double beta, double* c, index_t ldc) {
  cblas_dgemm(kColMajor, kNoTrans,
              shape == GemmShape::Nt ? kTrans : kNoTrans, m, n, k, alpha, a,
              lda, b, ldb, beta, c, ldc);
}

void blas_gemm(GemmShape shape, index_t m, index_t n, index_t k, float alpha,
               const float* a, index_t lda, const float* b, index_t ldb,
               float beta, float* c, index_t ldc) {
  cblas_sgemm(kColMajor, kNoTrans,
              shape == GemmShape::Nt ? kTrans : kNoTrans, m, n, k, alpha, a,
              lda, b, ldb, beta, c, ldc);
}

}  // namespace spx::kernels
