// AVX2+FMA packed-GEMM variant (x86-64).  Compiled with -mavx2 -mfma by
// src/CMakeLists.txt when the toolchain supports it; on other targets (or
// toolchains) this TU degrades to null tables and the dispatcher never
// offers the tier.
//
// Register tiles are the classic Haswell shapes: 8x6 doubles (12 ymm
// accumulators + 2 A loads + 1 broadcast = 15 of 16 registers) and 16x6
// floats.  One A-panel load pair and NR broadcasts feed 2*NR independent
// FMA chains per k step, enough to hide the 4-5 cycle FMA latency at 2
// FMAs/cycle.
#include "kernels/dispatch.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "kernels/microkernel.hpp"

namespace spx::kernels {
namespace {

struct MicroAvx2D {
  static constexpr int MR = 8;
  static constexpr int NR = 6;
  static void run(index_t kc, const double* ap, const double* bp, double* c,
                  index_t ldc) {
    __m256d acc0[NR];
    __m256d acc1[NR];
    for (int j = 0; j < NR; ++j) {
      double* col = c + static_cast<std::size_t>(j) * ldc;
      acc0[j] = _mm256_loadu_pd(col);
      acc1[j] = _mm256_loadu_pd(col + 4);
    }
    for (index_t l = 0; l < kc; ++l) {
      const __m256d a0 = _mm256_loadu_pd(ap);
      const __m256d a1 = _mm256_loadu_pd(ap + 4);
      ap += MR;
      for (int j = 0; j < NR; ++j) {
        const __m256d bv = _mm256_broadcast_sd(bp + j);
        acc0[j] = _mm256_fmadd_pd(a0, bv, acc0[j]);
        acc1[j] = _mm256_fmadd_pd(a1, bv, acc1[j]);
      }
      bp += NR;
    }
    for (int j = 0; j < NR; ++j) {
      double* col = c + static_cast<std::size_t>(j) * ldc;
      _mm256_storeu_pd(col, acc0[j]);
      _mm256_storeu_pd(col + 4, acc1[j]);
    }
  }
};

struct MicroAvx2S {
  static constexpr int MR = 16;
  static constexpr int NR = 6;
  static void run(index_t kc, const float* ap, const float* bp, float* c,
                  index_t ldc) {
    __m256 acc0[NR];
    __m256 acc1[NR];
    for (int j = 0; j < NR; ++j) {
      float* col = c + static_cast<std::size_t>(j) * ldc;
      acc0[j] = _mm256_loadu_ps(col);
      acc1[j] = _mm256_loadu_ps(col + 8);
    }
    for (index_t l = 0; l < kc; ++l) {
      const __m256 a0 = _mm256_loadu_ps(ap);
      const __m256 a1 = _mm256_loadu_ps(ap + 8);
      ap += MR;
      for (int j = 0; j < NR; ++j) {
        const __m256 bv = _mm256_broadcast_ss(bp + j);
        acc0[j] = _mm256_fmadd_ps(a0, bv, acc0[j]);
        acc1[j] = _mm256_fmadd_ps(a1, bv, acc1[j]);
      }
      bp += NR;
    }
    for (int j = 0; j < NR; ++j) {
      float* col = c + static_cast<std::size_t>(j) * ldc;
      _mm256_storeu_ps(col, acc0[j]);
      _mm256_storeu_ps(col + 8, acc1[j]);
    }
  }
};

template <typename T, typename M, micro::BShape S>
void gemm_impl(index_t m, index_t n, index_t k, T alpha, const T* a,
               index_t lda, const T* b, index_t ldb, T beta, T* c,
               index_t ldc) {
  micro::packed_gemm<T, M>(S, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

}  // namespace

GemmFuncs<real_t> gemm_variant_avx2_d() {
  return {&gemm_impl<real_t, MicroAvx2D, micro::BShape::Nt>,
          &gemm_impl<real_t, MicroAvx2D, micro::BShape::Nn>};
}

GemmFuncs<real32_t> gemm_variant_avx2_s() {
  return {&gemm_impl<real32_t, MicroAvx2S, micro::BShape::Nt>,
          &gemm_impl<real32_t, MicroAvx2S, micro::BShape::Nn>};
}

}  // namespace spx::kernels

#else  // !(__AVX2__ && __FMA__)

namespace spx::kernels {
GemmFuncs<real_t> gemm_variant_avx2_d() { return {}; }
GemmFuncs<real32_t> gemm_variant_avx2_s() { return {}; }
}  // namespace spx::kernels

#endif
