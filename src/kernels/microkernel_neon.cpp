// NEON packed-GEMM variant (aarch64).  NEON is baseline on aarch64, so no
// special flags are needed: this TU instantiates the generic micro-kernel
// with a tile sized for the 32 128-bit vector registers and lets the
// autovectorizer emit fmla.  On non-ARM targets it degrades to null
// tables and the tier is never offered.
#include "kernels/dispatch.hpp"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include "kernels/microkernel.hpp"

namespace spx::kernels {
namespace {

// 8x6 doubles: 12 live 2-lane accumulators; 16x6 floats mirror AVX2.
template <typename T>
using Micro = micro::GenericMicro<T, std::is_same_v<T, float> ? 16 : 8, 6>;

template <typename T, micro::BShape S>
void gemm_impl(index_t m, index_t n, index_t k, T alpha, const T* a,
               index_t lda, const T* b, index_t ldb, T beta, T* c,
               index_t ldc) {
  micro::packed_gemm<T, Micro<T>>(S, m, n, k, alpha, a, lda, b, ldb, beta,
                                  c, ldc);
}

}  // namespace

GemmFuncs<real_t> gemm_variant_neon_d() {
  return {&gemm_impl<real_t, micro::BShape::Nt>,
          &gemm_impl<real_t, micro::BShape::Nn>};
}

GemmFuncs<real32_t> gemm_variant_neon_s() {
  return {&gemm_impl<real32_t, micro::BShape::Nt>,
          &gemm_impl<real32_t, micro::BShape::Nn>};
}

}  // namespace spx::kernels

#else  // not ARM

namespace spx::kernels {
GemmFuncs<real_t> gemm_variant_neon_d() { return {}; }
GemmFuncs<real32_t> gemm_variant_neon_s() { return {}; }
}  // namespace spx::kernels

#endif
