#include "kernels/dispatch.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace spx::kernels {

// Variant providers, one pair per ISA translation unit.  Tables come back
// null when the TU was compiled for a target that cannot run the tier.
GemmFuncs<real_t> gemm_variant_generic_d();
GemmFuncs<real32_t> gemm_variant_generic_s();
GemmFuncs<real_t> gemm_variant_avx2_d();
GemmFuncs<real32_t> gemm_variant_avx2_s();
GemmFuncs<real_t> gemm_variant_avx512_d();
GemmFuncs<real32_t> gemm_variant_avx512_s();
GemmFuncs<real_t> gemm_variant_neon_d();
GemmFuncs<real32_t> gemm_variant_neon_s();

#ifdef SPX_WITH_BLAS
// kernels/blas_backend.cpp
void blas_gemm(GemmShape shape, index_t m, index_t n, index_t k,
               double alpha, const double* a, index_t lda, const double* b,
               index_t ldb, double beta, double* c, index_t ldc);
void blas_gemm(GemmShape shape, index_t m, index_t n, index_t k, float alpha,
               const float* a, index_t lda, const float* b, index_t ldb,
               float beta, float* c, index_t ldc);
#endif

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::Generic:
      return "generic";
    case Isa::Neon:
      return "neon";
    case Isa::Avx2:
      return "avx2";
    case Isa::Avx512:
      return "avx512";
  }
  return "?";
}

namespace {

Isa detect_host_isa() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return Isa::Avx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::Avx2;
  }
  return Isa::Generic;
#elif defined(__aarch64__)
  return Isa::Neon;
#else
  return Isa::Generic;
#endif
}

bool parse_isa(const char* s, Isa* out) {
  if (std::strcmp(s, "generic") == 0) {
    *out = Isa::Generic;
  } else if (std::strcmp(s, "neon") == 0) {
    *out = Isa::Neon;
  } else if (std::strcmp(s, "avx2") == 0) {
    *out = Isa::Avx2;
  } else if (std::strcmp(s, "avx512") == 0) {
    *out = Isa::Avx512;
  } else {
    return false;
  }
  return true;
}

}  // namespace

Dispatch& Dispatch::instance() {
  static Dispatch d;
  return d;
}

template <>
GemmFuncs<real_t>* Dispatch::table<real_t>() {
  return table_d_;
}
template <>
GemmFuncs<real32_t>* Dispatch::table<real32_t>() {
  return table_s_;
}

Dispatch::Dispatch() {
  table_d_[static_cast<int>(Isa::Generic)] = gemm_variant_generic_d();
  table_s_[static_cast<int>(Isa::Generic)] = gemm_variant_generic_s();
  table_d_[static_cast<int>(Isa::Neon)] = gemm_variant_neon_d();
  table_s_[static_cast<int>(Isa::Neon)] = gemm_variant_neon_s();
  table_d_[static_cast<int>(Isa::Avx2)] = gemm_variant_avx2_d();
  table_s_[static_cast<int>(Isa::Avx2)] = gemm_variant_avx2_s();
  table_d_[static_cast<int>(Isa::Avx512)] = gemm_variant_avx512_d();
  table_s_[static_cast<int>(Isa::Avx512)] = gemm_variant_avx512_s();

  detected_ = detect_host_isa();
  // A tier is offered only when the host supports it AND both scalar
  // tables were compiled for it.  AVX-512 hosts can run the AVX2 tier;
  // tier families never mix otherwise.
  auto offered = [&](Isa isa) {
    return table_d_[static_cast<int>(isa)].available() &&
           table_s_[static_cast<int>(isa)].available();
  };
  supported_.push_back(Isa::Generic);
  if (detected_ == Isa::Neon && offered(Isa::Neon)) {
    supported_.push_back(Isa::Neon);
  }
  if ((detected_ == Isa::Avx2 || detected_ == Isa::Avx512) &&
      offered(Isa::Avx2)) {
    supported_.push_back(Isa::Avx2);
  }
  if (detected_ == Isa::Avx512 && offered(Isa::Avx512)) {
    supported_.push_back(Isa::Avx512);
  }

  auto_choice_ = supported_.back();
  if (const char* env = std::getenv("SPX_KERNEL_ISA")) {
    env_value_ = env;
    Isa parsed;
    if (std::strcmp(env, "auto") == 0 || env[0] == '\0') {
      // explicit auto: keep the best tier
    } else if (!parse_isa(env, &parsed)) {
      std::fprintf(stderr,
                   "spx: SPX_KERNEL_ISA='%s' not recognized "
                   "(auto|generic|neon|avx2|avx512); using %s\n",
                   env, to_string(auto_choice_));
    } else if (std::find(supported_.begin(), supported_.end(), parsed) ==
               supported_.end()) {
      std::fprintf(stderr,
                   "spx: SPX_KERNEL_ISA='%s' not runnable on this "
                   "host/build; using %s\n",
                   env, to_string(auto_choice_));
    } else {
      auto_choice_ = parsed;
      env_override_ = true;
    }
  }
  active_.store(auto_choice_, std::memory_order_relaxed);

#ifdef SPX_WITH_BLAS
  blas_crossover_ = 96;
  if (const char* env = std::getenv("SPX_BLAS_CROSSOVER")) {
    blas_crossover_ = static_cast<index_t>(std::atoi(env));  // <=0 disables
  }
#endif

  // Record the startup decision as an info gauge (labels carry the state;
  // the value is always 1).  Forced overrides are per-run-visible through
  // RunStats::kernel_isa instead.
  SPX_OBS(obs::MetricsRegistry::global()
              .gauge("spx_kernel_isa_info",
                     "Dense-kernel dispatch decision at startup",
                     {{"isa", to_string(auto_choice_)},
                      {"detected", to_string(detected_)},
                      {"blas", blas_active() ? "on" : "off"}})
              .set(1));
}

bool Dispatch::force(Isa isa) {
  if (std::find(supported_.begin(), supported_.end(), isa) ==
      supported_.end()) {
    return false;
  }
  active_.store(isa, std::memory_order_relaxed);
  return true;
}

void Dispatch::reset() {
  active_.store(auto_choice_, std::memory_order_relaxed);
}

bool Dispatch::blas_compiled() const {
#ifdef SPX_WITH_BLAS
  return true;
#else
  return false;
#endif
}

bool Dispatch::blas_active() const {
  return blas_compiled() && blas_crossover_ > 0;
}

std::string Dispatch::describe() const {
  std::string s = "isa=";
  s += to_string(active());
  s += " (detected ";
  s += to_string(detected_);
  if (env_override_) {
    s += ", SPX_KERNEL_ISA=";
    s += env_value_;
  }
  s += "), blas=";
  if (!blas_compiled()) {
    s += "off";
  } else if (!blas_active()) {
    s += "compiled,disabled";
  } else {
    s += "on,crossover=";
    s += std::to_string(blas_crossover_);
  }
  return s;
}

template <typename T>
const GemmFuncs<T>& Dispatch::variant(Isa isa) const {
  return const_cast<Dispatch*>(this)->table<T>()[static_cast<int>(isa)];
}

template <typename T>
void Dispatch::gemm(GemmShape shape, index_t m, index_t n, index_t k,
                    T alpha, const T* a, index_t lda, const T* b,
                    index_t ldb, T beta, T* c, index_t ldc) const {
#ifdef SPX_WITH_BLAS
  if (blas_crossover_ > 0) {
    const double crossover = static_cast<double>(blas_crossover_);
    if (static_cast<double>(m) * static_cast<double>(n) *
            static_cast<double>(k) >=
        crossover * crossover * crossover) {
      blas_gemm(shape, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
      return;
    }
  }
#endif
  const GemmFuncs<T>& f = variant<T>(active());
  (shape == GemmShape::Nt ? f.nt : f.nn)(m, n, k, alpha, a, lda, b, ldb,
                                         beta, c, ldc);
}

template const GemmFuncs<real_t>& Dispatch::variant<real_t>(Isa) const;
template const GemmFuncs<real32_t>& Dispatch::variant<real32_t>(Isa) const;
template void Dispatch::gemm<real_t>(GemmShape, index_t, index_t, index_t,
                                     real_t, const real_t*, index_t,
                                     const real_t*, index_t, real_t, real_t*,
                                     index_t) const;
template void Dispatch::gemm<real32_t>(GemmShape, index_t, index_t, index_t,
                                       real32_t, const real32_t*, index_t,
                                       const real32_t*, index_t, real32_t,
                                       real32_t*, index_t) const;

}  // namespace spx::kernels
