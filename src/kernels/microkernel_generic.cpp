// Generic (portable) packed-GEMM variant: the GenericMicro template
// compiled with the build's baseline flags.  Always available; the
// floor every other variant must beat and the fallback the dispatcher
// uses when cpuid offers nothing better.
#include "kernels/dispatch.hpp"
#include "kernels/microkernel.hpp"

namespace spx::kernels {
namespace {

template <typename T>
using Micro = micro::GenericMicro<T, 8, 4>;

template <typename T>
void gemm_nt_impl(index_t m, index_t n, index_t k, T alpha, const T* a,
                  index_t lda, const T* b, index_t ldb, T beta, T* c,
                  index_t ldc) {
  micro::packed_gemm<T, Micro<T>>(micro::BShape::Nt, m, n, k, alpha, a, lda,
                                  b, ldb, beta, c, ldc);
}

template <typename T>
void gemm_nn_impl(index_t m, index_t n, index_t k, T alpha, const T* a,
                  index_t lda, const T* b, index_t ldb, T beta, T* c,
                  index_t ldc) {
  micro::packed_gemm<T, Micro<T>>(micro::BShape::Nn, m, n, k, alpha, a, lda,
                                  b, ldb, beta, c, ldc);
}

}  // namespace

GemmFuncs<real_t> gemm_variant_generic_d() {
  return {&gemm_nt_impl<real_t>, &gemm_nn_impl<real_t>};
}

GemmFuncs<real32_t> gemm_variant_generic_s() {
  return {&gemm_nt_impl<real32_t>, &gemm_nn_impl<real32_t>};
}

}  // namespace spx::kernels
