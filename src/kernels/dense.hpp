// Dense BLAS/LAPACK-style kernels used inside panels.
//
// Column-major layout with explicit leading dimension, templated over
// double and std::complex<double>.  Transposes are PLAIN transposes (no
// conjugation): the solver's complex cases are complex-*symmetric* LDL^T
// and general LU, never Hermitian (paper Table I: Z matrices use LU and
// LDL^T only).
//
// The `*_ref` kernels are deliberately naive and serve as test oracles for
// the optimized versions.
#pragma once

#include "common/error.hpp"
#include "common/factor_quality.hpp"
#include "common/types.hpp"

namespace spx::kernels {

/// Static-pivot handling policy of the factorization kernels.
///
/// With `threshold <= 0` (the default) a bad pivot throws NumericalError
/// naming the offending global column.  With `threshold > 0` the kernels
/// degrade gracefully instead (PaStiX-style static perturbation): a pivot
/// with |d| < threshold is replaced by +/- threshold (sign preserving;
/// exact zeros become +threshold, complex pivots keep their phase) and
/// the replacement is recorded in `quality`.  Cholesky cannot absorb
/// genuine indefiniteness: a pivot below -threshold still throws, after
/// flagging `quality->indefinite`.
struct PivotControl {
  double threshold = 0.0;    ///< absolute perturbation floor (eps * ||A||)
  index_t col_offset = 0;    ///< global column of local column 0
  FactorQuality* quality = nullptr;  ///< optional pivot accounting sink
};

/// C(m x n) := beta*C + alpha * A(m x k) * B(n x k)^T.
/// The "NT" shape is the one sparse updates use: B is the facing block of
/// the same panel as A (paper Fig. 3 benchmarks exactly C = C - A*B^T).
template <typename T>
void gemm_nt(index_t m, index_t n, index_t k, T alpha, const T* a,
             index_t lda, const T* b, index_t ldb, T beta, T* c,
             index_t ldc);

/// Reference (naive triple loop) version of gemm_nt.
template <typename T>
void gemm_nt_ref(index_t m, index_t n, index_t k, T alpha, const T* a,
                 index_t lda, const T* b, index_t ldb, T beta, T* c,
                 index_t ldc);

/// C(m x n) := beta*C + alpha * A(m x k) * B(k x n)  (no transpose; the
/// blocked LU trailing update and right-upper TRSM need this shape).
template <typename T>
void gemm_nn(index_t m, index_t n, index_t k, T alpha, const T* a,
             index_t lda, const T* b, index_t ldb, T beta, T* c,
             index_t ldc);

/// Reference version of gemm_nn.
template <typename T>
void gemm_nn_ref(index_t m, index_t n, index_t k, T alpha, const T* a,
                 index_t lda, const T* b, index_t ldb, T beta, T* c,
                 index_t ldc);

/// X(n x m) := L^{-1} * X where L(n x n) is lower triangular with unit
/// diagonal (the U12 solve of blocked LU).
template <typename T>
void trsm_left_lower_unit(index_t n, index_t m, const T* l, index_t ldl,
                          T* x, index_t ldx);

/// C(m x n) := beta*C + alpha * A(k x m)^T * B(k x n)  (plain transpose;
/// the multi-RHS backward solve gathers with this shape).
template <typename T>
void gemm_tn(index_t m, index_t n, index_t k, T alpha, const T* a,
             index_t lda, const T* b, index_t ldb, T beta, T* c,
             index_t ldc);

/// X(n x m) := L^{-1} X, general lower triangle (multi-RHS forward solve).
template <typename T>
void trsm_left_lower(index_t n, index_t m, const T* l, index_t ldl,
                     bool unit_diag, T* x, index_t ldx);

/// X(n x m) := L^{-T} X (multi-RHS backward solve, symmetric kinds).
template <typename T>
void trsm_left_lower_trans(index_t n, index_t m, const T* l, index_t ldl,
                           bool unit_diag, T* x, index_t ldx);

/// X(n x m) := U^{-1} X, upper triangle (multi-RHS backward solve, LU).
template <typename T>
void trsm_left_upper(index_t n, index_t m, const T* u, index_t ldu, T* x,
                     index_t ldx);

/// X(m x n) := X * L^{-T} where L(n x n) is lower triangular.
/// `unit_diag` skips the diagonal division (LDL^T / LU-L cases).
/// This is the panel TRSM: L21 := A21 * L11^{-T}.
template <typename T>
void trsm_right_lower_trans(index_t m, index_t n, const T* l, index_t ldl,
                            T* x, index_t ldx, bool unit_diag);

/// X(m x n) := X * U^{-1} where U(n x n) is upper triangular (non-unit).
/// LU panel: L21 := A21 * U11^{-1}.
template <typename T>
void trsm_right_upper(index_t m, index_t n, const T* u, index_t ldu, T* x,
                      index_t ldx);

/// Unblocked (column-at-a-time) base case of trsm_right_lower_trans.
/// Exposed as a test oracle: the blocked variant must agree with this for
/// every n, including n that is not a multiple of the blocking factor.
template <typename T>
void trsm_right_lower_trans_unblocked(index_t m, index_t n, const T* l,
                                      index_t ldl, T* x, index_t ldx,
                                      bool unit_diag);

/// Unblocked base case of trsm_right_upper (test oracle, see above).
template <typename T>
void trsm_right_upper_unblocked(index_t m, index_t n, const T* u,
                                index_t ldu, T* x, index_t ldx);

/// In-place lower Cholesky of the leading n x n block: A = L*L^T, lower
/// triangle overwritten by L (strictly upper part untouched).
/// Throws NumericalError on a non-positive pivot (or, under a perturbing
/// PivotControl, only on an indefinite pivot below -threshold).
template <typename T>
void potrf(index_t n, T* a, index_t lda, const PivotControl& pc = {});

/// In-place LDL^T (no pivoting, plain transpose): unit lower L overwrites
/// the strictly lower triangle, D overwrites the diagonal.
/// Throws NumericalError on a zero pivot unless `pc` perturbs it.
template <typename T>
void ldlt(index_t n, T* a, index_t lda, const PivotControl& pc = {});

/// In-place LU without pivoting: unit lower L strictly below the diagonal,
/// U on and above.  Throws NumericalError on a zero pivot unless `pc`
/// perturbs it.
template <typename T>
void getrf_nopiv(index_t n, T* a, index_t lda, const PivotControl& pc = {});

/// B(m x n) := A(m x n) scaled column-wise: B(:,j) = A(:,j) * d[j].
/// In-place allowed (b == a).
template <typename T>
void scale_cols(index_t m, index_t n, const T* a, index_t lda, const T* d,
                T* b, index_t ldb);

/// A(m x n) := A(:,j) / d[j] column-wise (the D^{-1} step of LDL^T panels).
template <typename T>
void scale_cols_inv(index_t m, index_t n, T* a, index_t lda, const T* d);

/// Lower-triangular solve L*y = b (forward substitution), in place on b.
template <typename T>
void trsv_lower(index_t n, const T* l, index_t ldl, bool unit_diag, T* b);

/// Transposed lower-triangular solve L^T*y = b (backward), in place.
template <typename T>
void trsv_lower_trans(index_t n, const T* l, index_t ldl, bool unit_diag,
                      T* b);

/// Upper-triangular solve U*y = b (backward substitution), in place.
template <typename T>
void trsv_upper(index_t n, const T* u, index_t ldu, T* b);

/// y(m) := y - A(m x n) * x(n)  (dense column-major GEMV accumulate).
template <typename T>
void gemv_sub(index_t m, index_t n, const T* a, index_t lda, const T* x,
              T* y);

/// y(n) := y - A(m x n)^T * x(m)  (transposed GEMV accumulate).
template <typename T>
void gemv_trans_sub(index_t m, index_t n, const T* a, index_t lda,
                    const T* x, T* y);

}  // namespace spx::kernels
