// Runtime CPU dispatch for the dense-kernel layer (ROADMAP item 1).
//
// A process-wide Dispatch singleton probes CPU features once (AVX2/AVX-512
// + FMA via cpuid on x86-64, NEON on aarch64) and selects, per scalar type,
// the fastest packed-GEMM variant the host both supports and this build
// compiled (kernels/microkernel_*.cpp).  Complex stays on the generic
// in-place path in dense.cpp -- the paper's Z matrices spend their time in
// the same real panels after amalgamation, and complex SIMD horizontal
// shuffles are not worth the variant surface.
//
// Selection order and overrides:
//   1. `SPX_KERNEL_ISA` env: auto | generic | avx2 | avx512 | neon
//      (read once at first use; unsupported values warn and fall back);
//   2. Dispatch::force()/reset() or the ScopedIsaOverride RAII -- the
//      test knob the ISA conformance sweep uses;
//   3. otherwise the best supported variant.
//
// With -DSPX_WITH_BLAS=ON the dispatcher additionally delegates GEMMs
// whose m*n*k exceeds a crossover (default 96^3, `SPX_BLAS_CROSSOVER` env,
// <= 0 disables) to an external LP64 CBLAS (kernels/blas_backend.cpp);
// everything below the crossover and every non-GEMM kernel keeps the
// native path, and the `*_ref` kernels remain the oracle for all of it.
//
// The decision is observable: RunStats carries `kernel_isa`/`kernel_blas`
// per factorization, an `spx_kernel_isa_info` gauge records the startup
// decision, and `bench_kernels --verify` prints it (docs/KERNELS.md).
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace spx::kernels {

/// Instruction-set tiers a GEMM variant can be compiled for.
enum class Isa {
  Generic,  ///< portable autovectorized micro-kernel (always available)
  Neon,     ///< aarch64 baseline SIMD
  Avx2,     ///< x86-64 AVX2 + FMA intrinsics
  Avx512,   ///< x86-64 AVX-512F intrinsics
};

const char* to_string(Isa isa);

/// GEMM flavor selector: Nt is C += alpha*A*B^T (B is n x k), Nn is
/// C += alpha*A*B (B is k x n).  Mirrors micro::BShape without pulling
/// the packing header into every dense-kernel consumer.
enum class GemmShape { Nt, Nn };

/// Function-pointer table one ISA variant fills for one scalar type.
/// Null entries mean "not compiled into this build" (e.g. the AVX TUs on
/// aarch64, or a toolchain without -mavx512f).
template <typename T>
struct GemmFuncs {
  using Fn = void (*)(index_t m, index_t n, index_t k, T alpha, const T* a,
                      index_t lda, const T* b, index_t ldb, T beta, T* c,
                      index_t ldc);
  Fn nt = nullptr;
  Fn nn = nullptr;
  bool available() const { return nt != nullptr && nn != nullptr; }
};

class Dispatch {
 public:
  /// The process-wide dispatcher; probes the CPU on first use.
  static Dispatch& instance();

  /// Best tier the host CPU supports (ignores build/env/force state).
  Isa detected() const { return detected_; }
  /// Tier the next dispatched GEMM will run (env/force applied).
  Isa active() const { return active_.load(std::memory_order_relaxed); }
  /// Tiers that are both compiled into this build and runnable on this
  /// host, in increasing preference order (Generic is always first).
  const std::vector<Isa>& supported() const { return supported_; }

  /// Forces a specific tier (tests; see ScopedIsaOverride).  Returns
  /// false -- leaving the selection unchanged -- when `isa` is not in
  /// supported().
  bool force(Isa isa);
  /// Reverts force() to the env/auto selection.
  void reset();

  /// True when this build delegates large GEMMs to an external CBLAS and
  /// the runtime crossover has not disabled it.
  bool blas_active() const;
  /// True when the build compiled the CBLAS backend at all.
  bool blas_compiled() const;
  /// Crossover dimension d: calls with m*n*k >= d^3 delegate to BLAS.
  index_t blas_crossover() const { return blas_crossover_; }

  /// One-line human-readable decision summary, e.g.
  /// "isa=avx2 (detected avx512, SPX_KERNEL_ISA=avx2), blas=off".
  std::string describe() const;

  /// Dispatched GEMM entry point used by kernels::gemm_nt / gemm_nn for
  /// real_t and real32_t.
  template <typename T>
  void gemm(GemmShape shape, index_t m, index_t n, index_t k, T alpha,
            const T* a, index_t lda, const T* b, index_t ldb, T beta, T* c,
            index_t ldc) const;

  /// Variant table lookup (exposed for the conformance sweep, which runs
  /// every supported tier against the *_ref oracle).
  template <typename T>
  const GemmFuncs<T>& variant(Isa isa) const;

  Dispatch(const Dispatch&) = delete;
  Dispatch& operator=(const Dispatch&) = delete;

 private:
  Dispatch();

  template <typename T>
  GemmFuncs<T>* table();

  Isa detected_ = Isa::Generic;
  Isa auto_choice_ = Isa::Generic;  ///< env-resolved default selection
  std::atomic<Isa> active_{Isa::Generic};
  std::vector<Isa> supported_;
  GemmFuncs<real_t> table_d_[4];
  GemmFuncs<real32_t> table_s_[4];
  bool env_override_ = false;
  std::string env_value_;
  index_t blas_crossover_ = 0;
};

/// RAII ISA override for tests: forces a tier for the enclosing scope and
/// restores the env/auto selection on destruction.  `ok()` is false when
/// the host or build cannot run the requested tier (callers skip then).
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(Isa isa) : ok_(Dispatch::instance().force(isa)) {}
  ~ScopedIsaOverride() { Dispatch::instance().reset(); }
  bool ok() const { return ok_; }
  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;

 private:
  bool ok_;
};

}  // namespace spx::kernels
