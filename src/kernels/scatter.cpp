#include "kernels/scatter.hpp"

#include <algorithm>

namespace spx::kernels {

std::vector<RowSegment> build_row_segments(const Panel& src,
                                           index_t first_offset,
                                           const Panel& dst) {
  std::vector<RowSegment> segs;
  // Locate the source block containing `first_offset`.
  std::size_t sb = 0;
  while (sb < src.blocks.size() &&
         src.blocks[sb].offset + src.blocks[sb].height() <= first_offset) {
    ++sb;
  }
  std::size_t db = 0;  // target blocks are sorted by row; sweep once
  for (; sb < src.blocks.size(); ++sb) {
    const Block& s = src.blocks[sb];
    index_t r =
        s.row_begin + std::max<index_t>(0, first_offset - s.offset);
    while (r < s.row_end) {
      // Advance to the target block containing row r.
      while (db < dst.blocks.size() && dst.blocks[db].row_end <= r) ++db;
      SPX_ASSERT(db < dst.blocks.size() && dst.blocks[db].row_begin <= r);
      const Block& d = dst.blocks[db];
      const index_t stop = std::min(s.row_end, d.row_end);
      segs.push_back({s.offset + (r - s.row_begin) - first_offset,
                      d.offset + (r - d.row_begin), stop - r});
      r = stop;
    }
  }
  // Merge runs that stayed contiguous on both sides (cheap and shrinks the
  // per-update segment walk).
  std::vector<RowSegment> merged;
  for (const RowSegment& s : segs) {
    if (!merged.empty() &&
        merged.back().src_offset + merged.back().len == s.src_offset &&
        merged.back().dst_offset + merged.back().len == s.dst_offset) {
      merged.back().len += s.len;
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

}  // namespace spx::kernels
