// Pattern-keyed analysis cache: shares ordering + symbolic factorization
// + DAG skeleton across every request whose matrix has the same sparsity
// structure.
//
// This is the serving-layer payoff of the PASTIX analyze/factorize split
// (paper §III): the expensive symbolic phase is value-independent, so a
// production loop that refactorizes one pattern with new values thousands
// of times -- circuit simulation, FEM time stepping -- pays for analysis
// once.  Entries are immutable (shared_ptr<const Analysis>), LRU-evicted
// under a byte budget, and concurrent misses on one key are coalesced: the
// first requester computes, the rest block on a shared future instead of
// duplicating the work.
#pragma once

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/analysis.hpp"
#include "obs/obs.hpp"
#include "service/pattern_key.hpp"
#include "service/service_stats.hpp"

namespace spx::service {

class AnalysisCache {
 public:
  /// `max_bytes` bounds the resident estimate of cached analyses; 0
  /// disables caching entirely (every call computes privately).
  /// `registry` receives the spx_analysis_cache_* series (null = the
  /// process-global registry); the series mirror AnalysisCacheStats
  /// exactly -- same bump sites under the same lock.
  explicit AnalysisCache(std::size_t max_bytes,
                         obs::MetricsRegistry* registry = nullptr);

  /// Returns the cached analysis for `key`, or runs `compute` and caches
  /// the result.  Thread-safe; concurrent misses on the same key run
  /// `compute` once.  `outcome` (optional) reports hit/miss/bypass.
  /// Exceptions from `compute` propagate to every coalesced waiter.
  std::shared_ptr<const Analysis> get_or_compute(
      const PatternKey& key, const std::function<Analysis()>& compute,
      CacheOutcome* outcome = nullptr);

  /// Seeds the cache with an already-computed analysis (the shard's
  /// snapshot-replay warm path).  No-op when the key is already resident
  /// or the cache is disabled; counts as neither hit nor miss.
  void insert(const PatternKey& key, std::shared_ptr<const Analysis> analysis);

  bool enabled() const { return max_bytes_ > 0; }
  std::size_t max_bytes() const { return max_bytes_; }
  AnalysisCacheStats stats() const;
  void clear();

  /// Resident-size estimate used for the byte budget (exact container
  /// footprint of one Analysis, exposed for tests).
  static std::size_t analysis_bytes(const Analysis& an);

 private:
  struct Entry {
    PatternKey key;
    std::shared_ptr<const Analysis> analysis;
    std::size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  void evict_over_budget_locked();
  /// Pushes the resident bytes/entries figures into the gauges.
  void update_gauges_locked();

  const std::size_t max_bytes_;
  obs::Counter* m_hits_;       ///< spx_analysis_cache_hits_total
  obs::Counter* m_misses_;     ///< spx_analysis_cache_misses_total
  obs::Counter* m_evictions_;  ///< spx_analysis_cache_evictions_total
  obs::Counter* m_coalesced_;  ///< hits that joined an in-flight compute
  obs::Gauge* m_bytes_;        ///< spx_analysis_cache_bytes
  obs::Gauge* m_entries_;      ///< spx_analysis_cache_entries
  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<PatternKey, LruList::iterator, PatternKeyHash> map_;
  std::unordered_map<PatternKey,
                     std::shared_future<std::shared_ptr<const Analysis>>,
                     PatternKeyHash>
      inflight_;
  AnalysisCacheStats stats_;
};

}  // namespace spx::service
