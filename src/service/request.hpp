// Request plumbing shared by the admission queue and the executor: the
// polymorphic job base with claim/cancel/deadline state, and the atomic
// service-wide counters.
//
// Claiming is the linchpin of the concurrency design: a job is executed
// (or terminally completed) by whoever wins the single atomic
// claimed.exchange -- a worker popping it from the admission queue, a
// batch assembler draining it from a factor's pending list, a cancelling
// caller, or the drain on service shutdown.  Losers simply skip the job,
// so a request can sit in several containers at once without ever running
// or completing twice.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "service/service_stats.hpp"

namespace spx::service {

using Clock = std::chrono::steady_clock;

enum class JobKind { Factorize, Solve };

/// Service-wide counters, updated lock-free from workers and cancelling
/// callers; SolveService::stats() snapshots them.
struct SharedCounters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> factorizes{0};
  std::atomic<std::uint64_t> solves{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_rhs{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> completion_seq{0};
  /// Terminal outcomes per ErrorCode (indexed by enum value).
  std::array<std::atomic<std::uint64_t>, kErrorCodeCount> by_code{};

  void count_code(ErrorCode c) { ++by_code[static_cast<std::size_t>(c)]; }

  void count_unrun(RequestStatus s) {
    count_code(code_for_unrun(s));
    switch (s) {
      case RequestStatus::Rejected:
        ++rejected;
        break;
      case RequestStatus::Cancelled:
        ++cancelled;
        break;
      case RequestStatus::Expired:
        ++expired;
        break;
      default:
        ++failed;  // shutdown drains and other never-ran failures
        break;
    }
  }
};

struct JobBase {
  const JobKind kind;
  std::uint64_t id = 0;
  std::string tenant;
  Clock::time_point enqueued{};
  Clock::time_point deadline{};  ///< default-constructed = no deadline
  std::atomic<bool> claimed{false};
  std::atomic<bool> cancel_requested{false};
  std::shared_ptr<SharedCounters> counters;

  explicit JobBase(JobKind k) : kind(k) {}
  virtual ~JobBase() = default;

  /// True exactly once, for whoever takes ownership of completion.
  bool try_claim() {
    return !claimed.exchange(true, std::memory_order_acq_rel);
  }
  bool has_deadline() const { return deadline != Clock::time_point{}; }
  bool past_deadline(Clock::time_point now) const {
    return has_deadline() && now > deadline;
  }

  /// Completes the request without executing it (rejected, cancelled,
  /// expired, or shutdown drain).  Only call after a successful
  /// try_claim(); fulfills the promise and bumps the counters.
  virtual void complete_unrun(RequestStatus status, std::string error) = 0;
};

}  // namespace spx::service
