// Request plumbing shared by the admission queue and the executor: the
// polymorphic job base with claim/cancel/deadline state, and the atomic
// service-wide counters.
//
// Claiming is the linchpin of the concurrency design: a job is executed
// (or terminally completed) by whoever wins the single atomic
// claimed.exchange -- a worker popping it from the admission queue, a
// batch assembler draining it from a factor's pending list, a cancelling
// caller, or the drain on service shutdown.  Losers simply skip the job,
// so a request can sit in several containers at once without ever running
// or completing twice.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/obs.hpp"
#include "service/service_stats.hpp"

namespace spx::service {

using Clock = std::chrono::steady_clock;

enum class JobKind { Factorize, Refactorize, Solve };

/// Service-wide counters, updated lock-free from workers and cancelling
/// callers; SolveService::stats() snapshots them.
///
/// Every atomic doubles as a registry series: resolve_metrics() binds each
/// one to a `spx_service_*_total` counter, and the note_*/count_* bumps
/// below increment both at the same call site, so a Prometheus scrape
/// reconciles *exactly* with ServiceStats (`bench_service --metrics`
/// asserts this equality).
struct SharedCounters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> factorizes{0};
  std::atomic<std::uint64_t> refactorizes{0};
  std::atomic<std::uint64_t> solves{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_rhs{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> completion_seq{0};
  /// Terminal outcomes per ErrorCode (indexed by enum value).
  std::array<std::atomic<std::uint64_t>, kErrorCodeCount> by_code{};

  /// Mirrored registry series; null until resolve_metrics() runs (direct
  /// SharedCounters users without a registry keep working).
  obs::Counter* m_submitted = nullptr;
  obs::Counter* m_completed = nullptr;
  obs::Counter* m_failed = nullptr;
  obs::Counter* m_rejected = nullptr;
  obs::Counter* m_cancelled = nullptr;
  obs::Counter* m_expired = nullptr;
  obs::Counter* m_factorizes = nullptr;
  obs::Counter* m_refactorizes = nullptr;
  obs::Counter* m_solves = nullptr;
  obs::Counter* m_batches = nullptr;
  obs::Counter* m_batched_rhs = nullptr;
  obs::Counter* m_retries = nullptr;
  std::array<obs::Counter*, kErrorCodeCount> m_by_code{};

  /// Binds every counter to its registry series (registration is
  /// mutex-protected; do this once, before traffic).
  void resolve_metrics(obs::MetricsRegistry& reg);

  static void bump(std::atomic<std::uint64_t>& a, obs::Counter* m,
                   std::uint64_t n = 1) {
    a.fetch_add(n, std::memory_order_relaxed);
    SPX_OBS(if (m != nullptr) m->inc(static_cast<double>(n)));
  }

  void note_submitted() { bump(submitted, m_submitted); }
  void note_completed() { bump(completed, m_completed); }
  void note_failed() { bump(failed, m_failed); }
  void note_factorize() { bump(factorizes, m_factorizes); }
  void note_refactorize() { bump(refactorizes, m_refactorizes); }
  void note_solve() { bump(solves, m_solves); }
  void note_batch(std::uint64_t rhs) {
    bump(batches, m_batches);
    bump(batched_rhs, m_batched_rhs, rhs);
  }
  void note_retry() { bump(retries, m_retries); }

  // ---- per-tenant slices -------------------------------------------
  // Guarded by one mutex: tenant bumps happen once per request event,
  // never on the per-task hot path.  Each slice mirrors into the
  // spx_service_tenant_* labeled series when a registry was resolved.
  void note_tenant_submitted(const std::string& tenant);
  void note_tenant_rejected(const std::string& tenant);
  /// Records a Done request: what kind it was and how it was served.
  void note_tenant_done(const std::string& tenant, JobKind kind, bool fp32,
                        bool fp64_fallback);
  void set_tenant_weight(const std::string& tenant, double weight);
  std::map<std::string, TenantStats> tenant_snapshot() const;

  void count_code(ErrorCode c) {
    const auto i = static_cast<std::size_t>(c);
    bump(by_code[i], m_by_code[i]);
  }

  void count_unrun(RequestStatus s) {
    count_code(code_for_unrun(s));
    switch (s) {
      case RequestStatus::Rejected:
        bump(rejected, m_rejected);
        break;
      case RequestStatus::Cancelled:
        bump(cancelled, m_cancelled);
        break;
      case RequestStatus::Expired:
        bump(expired, m_expired);
        break;
      default:
        note_failed();  // shutdown drains and other never-ran failures
        break;
    }
  }

 private:
  struct TenantCell {
    TenantStats stats;
    obs::Counter* m_submitted = nullptr;
    obs::Counter* m_completed = nullptr;
    obs::Counter* m_fp32_served = nullptr;
    obs::Counter* m_fp64_fallbacks = nullptr;
  };
  /// Finds or creates the tenant's slice, binding its labeled series on
  /// first sight when a registry was resolved.  Caller holds the mutex.
  TenantCell& tenant_cell_locked(const std::string& tenant);

  mutable std::mutex tenants_mutex_;
  std::map<std::string, TenantCell> tenants_;
  obs::MetricsRegistry* tenant_registry_ = nullptr;
};

struct JobBase {
  const JobKind kind;
  std::uint64_t id = 0;
  std::string tenant;
  Clock::time_point enqueued{};
  Clock::time_point deadline{};  ///< default-constructed = no deadline
  std::atomic<bool> claimed{false};
  std::atomic<bool> cancel_requested{false};
  std::shared_ptr<SharedCounters> counters;
  /// Root context of this request's trace (one trace id per request; the
  /// queue-wait, factorize/solve, retry and task spans all hang off it).
  /// Pre-set by submitters carrying a wire trace; otherwise the service
  /// mints a fresh trace at admission.
  obs::SpanContext trace_ctx;
  /// Tracer timestamp at admission (start of the queue-wait span).
  double trace_enqueued = 0;
  /// Fired exactly once, after the promise is fulfilled (any terminal
  /// status, any thread).  The net layer uses it to push the response
  /// back onto the event loop; the service chains its drain accounting
  /// through it.  Must not throw.
  std::function<void()> on_complete;

  explicit JobBase(JobKind k) : kind(k) {}
  virtual ~JobBase() = default;

  /// True exactly once, for whoever takes ownership of completion.
  bool try_claim() {
    return !claimed.exchange(true, std::memory_order_acq_rel);
  }
  bool has_deadline() const { return deadline != Clock::time_point{}; }
  bool past_deadline(Clock::time_point now) const {
    return has_deadline() && now > deadline;
  }

  /// Completes the request without executing it (rejected, cancelled,
  /// expired, or shutdown drain).  Only call after a successful
  /// try_claim(); fulfills the promise and bumps the counters.
  virtual void complete_unrun(RequestStatus status, std::string error) = 0;

  /// Fires on_complete (once); every promise-fulfilling path must call
  /// this immediately after set_value.
  void notify_complete() {
    if (on_complete) {
      std::function<void()> cb = std::move(on_complete);
      on_complete = nullptr;
      cb();
    }
  }
};

}  // namespace spx::service
