// Multi-tenant in-process solve service: the serving layer over the
// Solver facade (ROADMAP north star -- heavy concurrent factorize/solve
// traffic against a library built for one caller at a time).
//
// Request path:
//   submit_factorize(req, A, kind)     ->  Ticket<FactorizeResult>
//     admission queue (bounded per tenant, weighted shares + EDF within
//     the tenant, reject-on-full)
//     -> worker: pattern-keyed analysis cache (hit shares the symbolic
//        factorization; miss computes once, coalescing concurrent misses)
//     -> Solver::adopt_analysis + factorize on the worker's runtime
//        (or MixedPrecisionSolver when the precision policy picks fp32)
//     -> FactorHandle, shareable across solve requests and threads
//   submit_refactorize(req, factor, v) ->  Ticket<FactorizeResult>
//     numeric-only fast path: the factor's symbolic analysis and value
//     allocation are reused; only the values are ingested (digest-checked
//     against the retained pattern).  A failed refactorize rolls back and
//     the previous factor keeps serving.
//   submit_solve(req, factor, b)       ->  Ticket<SolveResult>
//     solve requests against one factor that arrive within the batching
//     window are coalesced into a single solve_multi call (GEMM-shaped
//     panel updates instead of per-RHS GEMVs).
//
// All submits take one RequestOptions struct (tenant, deadline,
// precision, nrhs, trace, on_complete); the old positional submit_*
// signatures remain as deprecated forwarding shims for one release.
// Every ticket supports cancel(); deadlines expire requests that waited
// too long; every result carries RequestStats (queue wait, cache outcome,
// factorize/solve wall time, precision served, scheduler RunStats)
// exportable as JSON.  Per-tenant QoS (weights, queue bounds, precision
// defaults) comes from ServiceOptions::tenants; per-tenant counters show
// up in ServiceStats::tenants and the spx_service_tenant_* series.
#pragma once

#include <condition_variable>
#include <future>
#include <map>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/mixed.hpp"
#include "core/solver.hpp"
#include "service/admission_queue.hpp"
#include "service/analysis_cache.hpp"

namespace spx::service {

struct ServiceOptions {
  /// Executor threads; each runs one request at a time.  0 is allowed
  /// (nothing executes until destruction -- used by cancellation tests).
  int num_workers = 2;
  /// Per-tenant admission bound; submits beyond it are Rejected.  A
  /// TenantConfig::queue_capacity overrides it for that tenant.
  std::size_t queue_capacity = 64;
  /// Byte budget of the pattern-keyed analysis cache (0 disables it).
  std::size_t cache_bytes = 256ull << 20;
  /// Seconds a solve lingers after being picked up, letting more
  /// same-factor solves arrive for coalescing.  0 batches only what has
  /// already accumulated.
  double batch_window = 0;
  /// Ceiling on RHS columns coalesced into one solve_multi call.
  index_t max_batch = 32;
  /// Inner solver configuration (runtime, threads, perf model...).  The
  /// default is the sequential runtime: the service scales by running
  /// many requests concurrently, one worker each, rather than nesting
  /// thread pools.  Configure Native/Starpu/Parsec + num_threads for
  /// few-large-requests workloads.
  SolverOptions solver;
  /// Total factorize attempts per request (1 disables retries).  Only
  /// transient-or-absorbable failures retry: numerical breakdown (with an
  /// escalated pivot threshold), injected faults, allocation failure.
  int max_attempts = 3;
  /// Backoff before attempt k is retry_backoff_s * 2^(k-2) seconds.
  double retry_backoff_s = 0.01;
  /// Each retry multiplies the solver's pivot_threshold by this, widening
  /// the static-perturbation net until the factorization survives.
  double eps_escalation = 16.0;
  /// Per-tenant budget of retry attempts (summed over all its requests);
  /// an exhausted budget fails fast, so one tenant's pathological inputs
  /// cannot monopolize workers with retry storms.
  std::uint64_t tenant_retry_budget = 64;
  /// A degraded factorization whose pivot growth exceeds this is treated
  /// as numerical failure (refinement cannot repair it) and retried.
  double max_pivot_growth = 1e10;
  /// Service-wide default precision policy; a TenantConfig or a
  /// RequestOptions::precision override wins, in that order of
  /// increasing priority.
  PrecisionPolicy precision = PrecisionPolicy::Fp64;
  /// Refinement target of the fp32 path -- also its fallback gate: a
  /// factorization whose probe solve cannot refine to this backward
  /// error is re-factorized in fp64 automatically.
  double mixed_tolerance = 1e-10;
  /// Refinement sweep cap of the fp32 path.
  int mixed_max_iter = 30;
  /// Per-tenant QoS + serving config (weight, queue bound, precision);
  /// tenants not listed get the defaults (weight 1, queue_capacity,
  /// `precision` above).
  std::map<std::string, TenantConfig> tenants;

  ServiceOptions() { solver.runtime = RuntimeKind::Sequential; }
};

/// Options of one submitted request -- the single submission surface of
/// every submit_* call (docs/SERVICE.md "Request options").
struct RequestOptions {
  std::string tenant;
  /// > 0: the request expires if still queued this many seconds from
  /// submission.
  double deadline_s = 0;
  /// Per-request precision override (factorize requests only); unset =
  /// the tenant's TenantConfig, then ServiceOptions::precision.
  std::optional<PrecisionPolicy> precision;
  /// Column count of a multi-RHS solve: the rhs vector carries nrhs
  /// column-major right-hand sides of length n.  Ignored by factorize
  /// and refactorize requests.
  index_t nrhs = 1;
  /// A valid context parents the request's spans under a caller-provided
  /// (e.g. wire-carried) trace instead of a fresh one.
  obs::SpanContext trace;
  /// Fired exactly once, right after the result promise is fulfilled
  /// (any terminal status, any thread; must not throw).
  std::function<void()> on_complete;
};

struct SolveJob;

/// A completed numeric factorization held by the service.  Solves share
/// it read-only from any number of threads; refactorize requests take
/// the write side of its lock and swap the numeric values in place.
class Factor {
 public:
  const Solver<real_t>& solver() const { return solver_; }
  index_t n() const { return solver_.analysis().perm.size(); }
  /// True when the float-factor + fp64-refine path serves this factor.
  bool fp32() const { return mixed_ != nullptr; }
  /// The precision policy the factorize request resolved to.
  PrecisionPolicy precision() const { return policy_; }
  Factorization kind() const { return fkind_; }
  /// True when refactorize can ingest new values (the input matrix was
  /// retained; snapshot-restored factors were not).
  bool refactorizable() const { return matrix_ != nullptr; }

 private:
  friend class SolveService;
  Solver<real_t> solver_;
  /// Float factors + fp64 refinement (policy Fp32Refine/Auto when the
  /// quality gate held); null = classic fp64 path.
  std::unique_ptr<MixedPrecisionSolver> mixed_;
  PrecisionPolicy policy_ = PrecisionPolicy::Fp64;
  Factorization fkind_ = Factorization::LLT;
  /// The factorized matrix, retained so refactorize can rebuild it from
  /// ingested values (and the fp32 path can compute residuals).
  std::shared_ptr<const CscMatrix<real_t>> matrix_;
  /// Solves hold this shared; refactorize holds it exclusive while it
  /// swaps the numeric values.
  mutable std::shared_mutex rw_;
  /// Solve requests awaiting batching (weak: the admission queue and
  /// tickets own the jobs; stale entries are pruned lazily, and weak
  /// pointers break the Factor -> job -> Factor ownership cycle).
  std::mutex pending_mutex_;
  std::vector<std::weak_ptr<SolveJob>> pending_;
};

using FactorHandle = std::shared_ptr<Factor>;

struct FactorizeResult {
  RequestStatus status = RequestStatus::Failed;
  ErrorCode code = ErrorCode::Internal;  ///< structured outcome
  std::string error;
  FactorHandle factor;  ///< non-null iff status == Done
  RequestStats stats;

  bool ok() const { return status == RequestStatus::Done; }
  /// Done, but via perturbed pivots (solves auto-refine and report).
  bool degraded() const { return code == ErrorCode::NumericalDegraded; }
};

struct SolveResult {
  RequestStatus status = RequestStatus::Failed;
  ErrorCode code = ErrorCode::Internal;  ///< structured outcome
  std::string error;
  std::vector<real_t> x;  ///< solution; empty unless status == Done
  RequestStats stats;

  bool ok() const { return status == RequestStatus::Done; }
  bool degraded() const { return code == ErrorCode::NumericalDegraded; }
};

struct FactorizeJob : JobBase {
  FactorizeJob() : JobBase(JobKind::Factorize) {}
  std::shared_ptr<const CscMatrix<real_t>> matrix;
  Factorization fkind = Factorization::LLT;
  PrecisionPolicy policy = PrecisionPolicy::Fp64;  ///< resolved at submit
  RequestStats stats;
  std::promise<FactorizeResult> promise;
  void complete_unrun(RequestStatus status, std::string error) override;
};

struct RefactorizeJob : JobBase {
  RefactorizeJob() : JobBase(JobKind::Refactorize) {}
  FactorHandle factor;
  std::vector<real_t> values;  ///< new numeric values, length nnz(A)
  RequestStats stats;
  std::promise<FactorizeResult> promise;
  void complete_unrun(RequestStatus status, std::string error) override;
};

struct SolveJob : JobBase {
  SolveJob() : JobBase(JobKind::Solve) {}
  FactorHandle factor;
  std::vector<real_t> rhs;  ///< nrhs column-major RHS of length n
  index_t nrhs = 1;
  RequestStats stats;
  std::promise<SolveResult> promise;
  void complete_unrun(RequestStatus status, std::string error) override;
};

/// Handle to an in-flight request: a future for the result plus a
/// best-effort cancel.
template <typename Result>
class Ticket {
 public:
  Ticket() = default;
  bool valid() const { return future_.valid(); }
  /// Blocks until the request reaches a terminal status.
  Result get() const { return future_.get(); }
  void wait() const { future_.wait(); }
  std::uint64_t id() const { return state_ != nullptr ? state_->id : 0; }

  /// Requests cancellation.  True when the request had not started: it
  /// then completes immediately with status Cancelled.  False means
  /// execution already began (or finished); the result stands.
  bool cancel() {
    if (state_ == nullptr) return false;
    state_->cancel_requested.store(true, std::memory_order_release);
    if (!state_->try_claim()) return false;
    state_->complete_unrun(RequestStatus::Cancelled, "cancelled by caller");
    return true;
  }

 private:
  friend class SolveService;
  Ticket(std::shared_future<Result> f, std::shared_ptr<JobBase> s)
      : future_(std::move(f)), state_(std::move(s)) {}

  std::shared_future<Result> future_;
  std::shared_ptr<JobBase> state_;
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions options = {});
  /// Drains: queued-but-unstarted requests complete as Failed("service
  /// shutdown"); running requests finish normally.
  ~SolveService();
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admits an analyze+factorize of `a` under `req` (tenant, deadline,
  /// precision override, trace, completion hook).  The matrix is shared,
  /// not copied; callers must not mutate it until the ticket resolves.
  Ticket<FactorizeResult> submit_factorize(
      RequestOptions req, std::shared_ptr<const CscMatrix<real_t>> a,
      Factorization kind);

  /// Admits a numeric-only re-factorization of `factor` with `values`
  /// (nnz doubles in the retained matrix's storage order).  Reuses the
  /// factor's analysis and allocation; a failure rolls back and the
  /// previous factor keeps serving.  Throws InvalidArgument on a null or
  /// non-refactorizable factor or a value-count mismatch (caller bug,
  /// not load).
  Ticket<FactorizeResult> submit_refactorize(RequestOptions req,
                                             FactorHandle factor,
                                             std::vector<real_t> values);

  /// Admits a solve of `factor` x = rhs (req.nrhs column-major RHS of
  /// length n).  Throws InvalidArgument on a null factor or an rhs whose
  /// size is not n * nrhs (caller bug, not load); overload and deadline
  /// produce Rejected/Expired results.
  Ticket<SolveResult> submit_solve(RequestOptions req, FactorHandle factor,
                                   std::vector<real_t> rhs);

  // ---- deprecated positional shims (one release) -------------------
  [[deprecated("pass a RequestOptions instead")]] Ticket<FactorizeResult>
  submit_factorize(std::string tenant,
                   std::shared_ptr<const CscMatrix<real_t>> a,
                   Factorization kind, double deadline_s = 0,
                   obs::SpanContext trace = {},
                   std::function<void()> on_complete = {}) {
    RequestOptions req;
    req.tenant = std::move(tenant);
    req.deadline_s = deadline_s;
    req.trace = trace;
    req.on_complete = std::move(on_complete);
    return submit_factorize(std::move(req), std::move(a), kind);
  }
  [[deprecated("pass a RequestOptions instead")]] Ticket<SolveResult>
  submit_solve(std::string tenant, FactorHandle factor,
               std::vector<real_t> rhs, double deadline_s = 0,
               obs::SpanContext trace = {},
               std::function<void()> on_complete = {}) {
    RequestOptions req;
    req.tenant = std::move(tenant);
    req.deadline_s = deadline_s;
    req.trace = trace;
    req.on_complete = std::move(on_complete);
    return submit_solve(std::move(req), std::move(factor), std::move(rhs));
  }

  /// Blocking conveniences (submit + get).
  FactorizeResult factorize(const std::string& tenant,
                            std::shared_ptr<const CscMatrix<real_t>> a,
                            Factorization kind) {
    RequestOptions req;
    req.tenant = tenant;
    return submit_factorize(std::move(req), std::move(a), kind).get();
  }
  FactorizeResult factorize(RequestOptions req,
                            std::shared_ptr<const CscMatrix<real_t>> a,
                            Factorization kind) {
    return submit_factorize(std::move(req), std::move(a), kind).get();
  }
  FactorizeResult refactorize(const std::string& tenant, FactorHandle factor,
                              std::vector<real_t> values) {
    RequestOptions req;
    req.tenant = tenant;
    return submit_refactorize(std::move(req), std::move(factor),
                              std::move(values))
        .get();
  }
  SolveResult solve(const std::string& tenant, FactorHandle factor,
                    std::vector<real_t> rhs) {
    RequestOptions req;
    req.tenant = tenant;
    return submit_solve(std::move(req), std::move(factor), std::move(rhs))
        .get();
  }
  SolveResult solve(RequestOptions req, FactorHandle factor,
                    std::vector<real_t> rhs) {
    return submit_solve(std::move(req), std::move(factor), std::move(rhs))
        .get();
  }

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

  /// The precision policy a factorize under (`tenant`, `override_`)
  /// resolves to: request override, then TenantConfig, then the
  /// service-wide default.
  PrecisionPolicy effective_policy(
      const std::string& tenant,
      const std::optional<PrecisionPolicy>& override_ = {}) const;

  /// Wraps an externally restored solver (snapshot replay) in a
  /// FactorHandle servable by submit_solve, bypassing the request path.
  /// The solver must be factorized; its analysis is also seeded into the
  /// pattern cache so later factorizes of the same pattern skip the
  /// symbolic phase.  Throws InvalidArgument on an unfactorized solver.
  /// Restored factors are fp64 and not refactorizable (no retained
  /// matrix).
  FactorHandle adopt_factor(Solver<real_t> solver);

  /// The pattern-keyed analysis cache (snapshot replay seeds it).
  AnalysisCache& cache() { return cache_; }

  /// Graceful drain (SIGTERM path): new submits are Rejected("service
  /// draining"), while every already-admitted request -- queued or
  /// running -- completes normally.  Blocks until the service is empty or
  /// `timeout_s` elapses (0 = wait indefinitely); returns true when fully
  /// drained.  Requires num_workers > 0 to make progress on queued work.
  /// Idempotent; the destructor afterwards finds nothing to drop.
  bool drain(double timeout_s = 0);
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// Admitted requests not yet terminal (queued + executing).
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }

 private:
  template <typename Result, typename Job>
  Ticket<Result> admit(std::shared_ptr<Job> job, double deadline_s);
  void worker_loop();
  void run_factorize(const std::shared_ptr<FactorizeJob>& job);
  void run_refactorize(const std::shared_ptr<RefactorizeJob>& job);
  void run_solve_batch(const std::shared_ptr<SolveJob>& first);
  /// One factorize attempt; throws on failure.  Fills stats/result.
  void factorize_attempt(FactorizeJob& job, const SolverOptions& sopts,
                         FactorizeResult& res);
  /// fp32 factorization + probe gate; true when the mixed path took the
  /// factor (false = caller factorizes fp64 and records a fallback).
  bool try_fp32_factorize(Factor& factor, const CscMatrix<real_t>& a,
                          Factorization kind, RequestStats& st);
  /// Consumes one unit of `tenant`'s retry budget; false when exhausted.
  bool spend_retry(const std::string& tenant);
  /// Whether the policy wants an fp32 attempt for this pattern (Auto
  /// consults the fallback memory; Fp32Refine always tries).
  bool want_fp32(PrecisionPolicy policy, std::uint64_t digest);
  void note_fp32_fallback(std::uint64_t digest);

  ServiceOptions options_;
  AnalysisCache cache_;
  AdmissionQueue queue_;
  std::shared_ptr<SharedCounters> counters_;
  obs::Tracer* tracer_ = nullptr;  ///< from options_.solver.instr.tracer
  std::atomic<std::uint64_t> next_id_{1};
  std::mutex retry_mutex_;
  std::unordered_map<std::string, std::uint64_t> retry_spent_;
  /// Pattern digests whose fp32 attempt tripped the gate; Auto skips
  /// them on later factorizes instead of paying the doomed attempt.
  std::mutex fp32_mutex_;
  std::unordered_set<std::uint64_t> fp32_fallback_digests_;
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> inflight_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::vector<std::thread> workers_;
};

}  // namespace spx::service
