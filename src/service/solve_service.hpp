// Multi-tenant in-process solve service: the serving layer over the
// Solver facade (ROADMAP north star -- heavy concurrent factorize/solve
// traffic against a library built for one caller at a time).
//
// Request path:
//   submit_factorize(tenant, A, kind)  ->  Ticket<FactorizeResult>
//     admission queue (bounded per tenant, reject-on-full)
//     -> worker: pattern-keyed analysis cache (hit shares the symbolic
//        factorization; miss computes once, coalescing concurrent misses)
//     -> Solver::adopt_analysis + factorize on the worker's runtime
//     -> FactorHandle, shareable across solve requests and threads
//   submit_solve(tenant, factor, b)    ->  Ticket<SolveResult>
//     solve requests against one factor that arrive within the batching
//     window are coalesced into a single solve_multi call (GEMM-shaped
//     panel updates instead of per-RHS GEMVs).
//
// Every ticket supports cancel(); deadlines expire requests that waited
// too long; every result carries RequestStats (queue wait, cache outcome,
// factorize/solve wall time, scheduler RunStats) exportable as JSON.
// Several factorizations of different matrices are in flight concurrently
// -- one per worker -- and completed factors serve concurrent read-only
// solves from any number of threads.
#pragma once

#include <condition_variable>
#include <future>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/solver.hpp"
#include "service/admission_queue.hpp"
#include "service/analysis_cache.hpp"

namespace spx::service {

struct ServiceOptions {
  /// Executor threads; each runs one request at a time.  0 is allowed
  /// (nothing executes until destruction -- used by cancellation tests).
  int num_workers = 2;
  /// Per-tenant admission bound; submits beyond it are Rejected.
  std::size_t queue_capacity = 64;
  /// Byte budget of the pattern-keyed analysis cache (0 disables it).
  std::size_t cache_bytes = 256ull << 20;
  /// Seconds a solve lingers after being picked up, letting more
  /// same-factor solves arrive for coalescing.  0 batches only what has
  /// already accumulated.
  double batch_window = 0;
  /// Ceiling on RHS columns coalesced into one solve_multi call.
  index_t max_batch = 32;
  /// Inner solver configuration (runtime, threads, perf model...).  The
  /// default is the sequential runtime: the service scales by running
  /// many requests concurrently, one worker each, rather than nesting
  /// thread pools.  Configure Native/Starpu/Parsec + num_threads for
  /// few-large-requests workloads.
  SolverOptions solver;
  /// Total factorize attempts per request (1 disables retries).  Only
  /// transient-or-absorbable failures retry: numerical breakdown (with an
  /// escalated pivot threshold), injected faults, allocation failure.
  int max_attempts = 3;
  /// Backoff before attempt k is retry_backoff_s * 2^(k-2) seconds.
  double retry_backoff_s = 0.01;
  /// Each retry multiplies the solver's pivot_threshold by this, widening
  /// the static-perturbation net until the factorization survives.
  double eps_escalation = 16.0;
  /// Per-tenant budget of retry attempts (summed over all its requests);
  /// an exhausted budget fails fast, so one tenant's pathological inputs
  /// cannot monopolize workers with retry storms.
  std::uint64_t tenant_retry_budget = 64;
  /// A degraded factorization whose pivot growth exceeds this is treated
  /// as numerical failure (refinement cannot repair it) and retried.
  double max_pivot_growth = 1e10;

  ServiceOptions() { solver.runtime = RuntimeKind::Sequential; }
};

struct SolveJob;

/// A completed numeric factorization held by the service.  Immutable
/// after construction; safe to share across threads for read-only solves.
class Factor {
 public:
  const Solver<real_t>& solver() const { return solver_; }
  index_t n() const { return solver_.analysis().perm.size(); }

 private:
  friend class SolveService;
  Solver<real_t> solver_;
  /// Solve requests awaiting batching (weak: the admission queue and
  /// tickets own the jobs; stale entries are pruned lazily, and weak
  /// pointers break the Factor -> job -> Factor ownership cycle).
  std::mutex pending_mutex_;
  std::vector<std::weak_ptr<SolveJob>> pending_;
};

using FactorHandle = std::shared_ptr<Factor>;

struct FactorizeResult {
  RequestStatus status = RequestStatus::Failed;
  ErrorCode code = ErrorCode::Internal;  ///< structured outcome
  std::string error;
  FactorHandle factor;  ///< non-null iff status == Done
  RequestStats stats;

  bool ok() const { return status == RequestStatus::Done; }
  /// Done, but via perturbed pivots (solves auto-refine and report).
  bool degraded() const { return code == ErrorCode::NumericalDegraded; }
};

struct SolveResult {
  RequestStatus status = RequestStatus::Failed;
  ErrorCode code = ErrorCode::Internal;  ///< structured outcome
  std::string error;
  std::vector<real_t> x;  ///< solution; empty unless status == Done
  RequestStats stats;

  bool ok() const { return status == RequestStatus::Done; }
  bool degraded() const { return code == ErrorCode::NumericalDegraded; }
};

struct FactorizeJob : JobBase {
  FactorizeJob() : JobBase(JobKind::Factorize) {}
  std::shared_ptr<const CscMatrix<real_t>> matrix;
  Factorization fkind = Factorization::LLT;
  RequestStats stats;
  std::promise<FactorizeResult> promise;
  void complete_unrun(RequestStatus status, std::string error) override;
};

struct SolveJob : JobBase {
  SolveJob() : JobBase(JobKind::Solve) {}
  FactorHandle factor;
  std::vector<real_t> rhs;
  RequestStats stats;
  std::promise<SolveResult> promise;
  void complete_unrun(RequestStatus status, std::string error) override;
};

/// Handle to an in-flight request: a future for the result plus a
/// best-effort cancel.
template <typename Result>
class Ticket {
 public:
  Ticket() = default;
  bool valid() const { return future_.valid(); }
  /// Blocks until the request reaches a terminal status.
  Result get() const { return future_.get(); }
  void wait() const { future_.wait(); }
  std::uint64_t id() const { return state_ != nullptr ? state_->id : 0; }

  /// Requests cancellation.  True when the request had not started: it
  /// then completes immediately with status Cancelled.  False means
  /// execution already began (or finished); the result stands.
  bool cancel() {
    if (state_ == nullptr) return false;
    state_->cancel_requested.store(true, std::memory_order_release);
    if (!state_->try_claim()) return false;
    state_->complete_unrun(RequestStatus::Cancelled, "cancelled by caller");
    return true;
  }

 private:
  friend class SolveService;
  Ticket(std::shared_future<Result> f, std::shared_ptr<JobBase> s)
      : future_(std::move(f)), state_(std::move(s)) {}

  std::shared_future<Result> future_;
  std::shared_ptr<JobBase> state_;
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions options = {});
  /// Drains: queued-but-unstarted requests complete as Failed("service
  /// shutdown"); running requests finish normally.
  ~SolveService();
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admits an analyze+factorize of `a` for `tenant`.  `deadline_s` > 0
  /// expires the request if it is still queued that many seconds from
  /// now.  The matrix is shared, not copied; callers must not mutate it
  /// until the ticket resolves.  A valid `trace` parents the request's
  /// spans under a caller-provided (e.g. wire-carried) trace instead of a
  /// fresh one; `on_complete` fires once, right after the result promise
  /// is fulfilled (any terminal status, any thread; must not throw).
  Ticket<FactorizeResult> submit_factorize(
      std::string tenant, std::shared_ptr<const CscMatrix<real_t>> a,
      Factorization kind, double deadline_s = 0, obs::SpanContext trace = {},
      std::function<void()> on_complete = {});

  /// Admits a solve of `factor` x = rhs.  Throws InvalidArgument on a
  /// null factor or an rhs whose size is not the factor's n (caller bug,
  /// not load); overload and deadline produce Rejected/Expired results.
  Ticket<SolveResult> submit_solve(std::string tenant, FactorHandle factor,
                                   std::vector<real_t> rhs,
                                   double deadline_s = 0,
                                   obs::SpanContext trace = {},
                                   std::function<void()> on_complete = {});

  /// Blocking conveniences (submit + get).
  FactorizeResult factorize(const std::string& tenant,
                            std::shared_ptr<const CscMatrix<real_t>> a,
                            Factorization kind) {
    return submit_factorize(tenant, std::move(a), kind).get();
  }
  SolveResult solve(const std::string& tenant, FactorHandle factor,
                    std::vector<real_t> rhs) {
    return submit_solve(tenant, std::move(factor), std::move(rhs)).get();
  }

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

  /// Wraps an externally restored solver (snapshot replay) in a
  /// FactorHandle servable by submit_solve, bypassing the request path.
  /// The solver must be factorized; its analysis is also seeded into the
  /// pattern cache so later factorizes of the same pattern skip the
  /// symbolic phase.  Throws InvalidArgument on an unfactorized solver.
  FactorHandle adopt_factor(Solver<real_t> solver);

  /// The pattern-keyed analysis cache (snapshot replay seeds it).
  AnalysisCache& cache() { return cache_; }

  /// Graceful drain (SIGTERM path): new submits are Rejected("service
  /// draining"), while every already-admitted request -- queued or
  /// running -- completes normally.  Blocks until the service is empty or
  /// `timeout_s` elapses (0 = wait indefinitely); returns true when fully
  /// drained.  Requires num_workers > 0 to make progress on queued work.
  /// Idempotent; the destructor afterwards finds nothing to drop.
  bool drain(double timeout_s = 0);
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// Admitted requests not yet terminal (queued + executing).
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }

 private:
  template <typename Result, typename Job>
  Ticket<Result> admit(std::shared_ptr<Job> job, double deadline_s);
  void worker_loop();
  void run_factorize(const std::shared_ptr<FactorizeJob>& job);
  void run_solve_batch(const std::shared_ptr<SolveJob>& first);
  /// One factorize attempt; throws on failure.  Fills stats/result.
  void factorize_attempt(FactorizeJob& job, const SolverOptions& sopts,
                         FactorizeResult& res);
  /// Consumes one unit of `tenant`'s retry budget; false when exhausted.
  bool spend_retry(const std::string& tenant);

  ServiceOptions options_;
  AnalysisCache cache_;
  AdmissionQueue queue_;
  std::shared_ptr<SharedCounters> counters_;
  obs::Tracer* tracer_ = nullptr;  ///< from options_.solver.instr.tracer
  std::atomic<std::uint64_t> next_id_{1};
  std::mutex retry_mutex_;
  std::unordered_map<std::string, std::uint64_t> retry_spent_;
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> inflight_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::vector<std::thread> workers_;
};

}  // namespace spx::service
