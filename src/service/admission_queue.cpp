#include "service/admission_queue.hpp"

#include <algorithm>

namespace spx::service {

AdmissionQueue::AdmissionQueue(std::size_t per_tenant_capacity,
                               obs::MetricsRegistry* registry,
                               std::map<std::string, TenantConfig> tenants)
    : capacity_(per_tenant_capacity == 0 ? 1 : per_tenant_capacity),
      registry_(&obs::registry_or_global(registry)),
      config_(std::move(tenants)) {
  m_admitted_ = &registry_->counter("spx_admission_admitted_total",
                                    "Requests accepted into a tenant queue");
  m_rejected_ = &registry_->counter(
      "spx_admission_rejected_total",
      "Requests bounced at admission (tenant queue full or shutdown)");
  m_depth_ = &registry_->gauge("spx_admission_queue_depth",
                               "Requests currently queued");
}

AdmissionQueue::Tenant& AdmissionQueue::tenant_locked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  tenant_order_.push_back(name);
  Tenant& t = tenants_[name];
  t.capacity = capacity_;
  if (const auto cfg = config_.find(name); cfg != config_.end()) {
    if (cfg->second.weight > 0) t.weight = cfg->second.weight;
    if (cfg->second.queue_capacity > 0) {
      t.capacity = cfg->second.queue_capacity;
    }
  }
  SPX_OBS({
    const obs::Labels labels(1, {"tenant", name});
    t.m_admitted =
        &registry_->counter("spx_service_tenant_admitted_total",
                            "Requests this tenant got admitted", labels);
    t.m_rejected = &registry_->counter(
        "spx_service_tenant_rejected_total",
        "Requests this tenant had bounced at admission", labels);
    t.m_served = &registry_->counter(
        "spx_service_tenant_served_total",
        "Queue slots the weighted rotation granted this tenant", labels);
    t.m_depth =
        &registry_->gauge("spx_service_tenant_queue_depth",
                          "Requests this tenant has queued", labels);
  });
  return t;
}

bool AdmissionQueue::try_push(std::shared_ptr<JobBase> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      SPX_OBS(m_rejected_->inc());
      return false;
    }
    Tenant& t = tenant_locked(job->tenant);
    if (t.q.size() >= t.capacity) {  // backpressure
      SPX_OBS({
        m_rejected_->inc();
        t.m_rejected->inc();
      });
      return false;
    }
    if (job->has_deadline()) {
      // EDF within the tenant: after every queued job with an earlier or
      // equal deadline, before deadline-free jobs (which stay FIFO).
      const auto pos = std::lower_bound(
          t.q.begin(), t.q.end(), job->deadline,
          [](const std::shared_ptr<JobBase>& j, Clock::time_point d) {
            return j->has_deadline() && j->deadline <= d;
          });
      t.q.insert(pos, std::move(job));
    } else {
      t.q.push_back(std::move(job));
    }
    ++depth_;
    SPX_OBS({
      m_admitted_->inc();
      t.m_admitted->inc();
      m_depth_->set(static_cast<double>(depth_));
      t.m_depth->set(static_cast<double>(t.q.size()));
    });
  }
  cv_.notify_one();
  return true;
}

std::shared_ptr<JobBase> AdmissionQueue::pop_locked() {
  // Smooth weighted round-robin over tenants with pending work: each
  // candidate accumulates its weight, the largest accumulator wins and
  // pays back the round's total.  Equal weights reproduce plain
  // round-robin; a tenant that drains resets its accumulator so a later
  // burst starts from a clean slate.
  double total = 0.0;
  Tenant* best = nullptr;
  for (const std::string& name : tenant_order_) {
    Tenant& t = tenants_[name];
    if (t.q.empty()) continue;
    total += t.weight;
    t.wrr_current += t.weight;
    if (best == nullptr || t.wrr_current > best->wrr_current) best = &t;
  }
  if (best == nullptr) return nullptr;
  best->wrr_current -= total;
  std::shared_ptr<JobBase> job = std::move(best->q.front());
  best->q.pop_front();
  if (best->q.empty()) best->wrr_current = 0.0;
  --depth_;
  SPX_OBS({
    m_depth_->set(static_cast<double>(depth_));
    best->m_served->inc();
    best->m_depth->set(static_cast<double>(best->q.size()));
  });
  return job;
}

std::shared_ptr<JobBase> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (std::shared_ptr<JobBase> job = pop_locked()) return job;
    if (shutdown_) return nullptr;
    cv_.wait(lock);
  }
}

std::shared_ptr<JobBase> AdmissionQueue::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  return pop_locked();
}

void AdmissionQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

double AdmissionQueue::tenant_weight(const std::string& tenant) const {
  if (const auto cfg = config_.find(tenant);
      cfg != config_.end() && cfg->second.weight > 0) {
    return cfg->second.weight;
  }
  return 1.0;
}

}  // namespace spx::service
