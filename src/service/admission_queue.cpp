#include "service/admission_queue.hpp"

namespace spx::service {

AdmissionQueue::AdmissionQueue(std::size_t per_tenant_capacity,
                               obs::MetricsRegistry* registry)
    : capacity_(per_tenant_capacity == 0 ? 1 : per_tenant_capacity) {
  obs::MetricsRegistry& reg = obs::registry_or_global(registry);
  m_admitted_ = &reg.counter("spx_admission_admitted_total",
                             "Requests accepted into a tenant queue");
  m_rejected_ = &reg.counter(
      "spx_admission_rejected_total",
      "Requests bounced at admission (tenant queue full or shutdown)");
  m_depth_ =
      &reg.gauge("spx_admission_queue_depth", "Requests currently queued");
}

bool AdmissionQueue::try_push(std::shared_ptr<JobBase> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      SPX_OBS(m_rejected_->inc());
      return false;
    }
    auto it = queues_.find(job->tenant);
    if (it == queues_.end()) {
      tenant_order_.push_back(job->tenant);
      it = queues_.emplace(job->tenant, std::deque<std::shared_ptr<JobBase>>())
               .first;
    }
    if (it->second.size() >= capacity_) {  // backpressure
      SPX_OBS(m_rejected_->inc());
      return false;
    }
    it->second.push_back(std::move(job));
    ++depth_;
    SPX_OBS({
      m_admitted_->inc();
      m_depth_->set(static_cast<double>(depth_));
    });
  }
  cv_.notify_one();
  return true;
}

std::shared_ptr<JobBase> AdmissionQueue::pop_locked() {
  const std::size_t tenants = tenant_order_.size();
  for (std::size_t i = 0; i < tenants; ++i) {
    const std::size_t t = (rr_ + i) % tenants;
    auto& q = queues_[tenant_order_[t]];
    if (q.empty()) continue;
    std::shared_ptr<JobBase> job = std::move(q.front());
    q.pop_front();
    --depth_;
    SPX_OBS(m_depth_->set(static_cast<double>(depth_)));
    rr_ = (t + 1) % tenants;  // next rotation starts after this tenant
    return job;
  }
  return nullptr;
}

std::shared_ptr<JobBase> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (std::shared_ptr<JobBase> job = pop_locked()) return job;
    if (shutdown_) return nullptr;
    cv_.wait(lock);
  }
}

std::shared_ptr<JobBase> AdmissionQueue::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  return pop_locked();
}

void AdmissionQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

}  // namespace spx::service
