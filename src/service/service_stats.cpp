#include "service/service_stats.hpp"

namespace spx::service {

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::Done:
      return "done";
    case RequestStatus::Failed:
      return "failed";
    case RequestStatus::Rejected:
      return "rejected";
    case RequestStatus::Cancelled:
      return "cancelled";
    case RequestStatus::Expired:
      return "expired";
  }
  return "?";
}

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::None:
      return "none";
    case ErrorCode::NumericalDegraded:
      return "numerical-degraded";
    case ErrorCode::NumericalFailed:
      return "numerical-failed";
    case ErrorCode::InjectedFault:
      return "injected-fault";
    case ErrorCode::OutOfMemory:
      return "out-of-memory";
    case ErrorCode::Overloaded:
      return "overloaded";
    case ErrorCode::Cancelled:
      return "cancelled";
    case ErrorCode::Timeout:
      return "timeout";
    case ErrorCode::Internal:
      return "internal";
  }
  return "?";
}

ErrorCode code_for_unrun(RequestStatus s) {
  switch (s) {
    case RequestStatus::Rejected:
      return ErrorCode::Overloaded;
    case RequestStatus::Cancelled:
      return ErrorCode::Cancelled;
    case RequestStatus::Expired:
      return ErrorCode::Timeout;
    default:
      return ErrorCode::Internal;  // shutdown drain / never-ran failures
  }
}

const char* to_string(CacheOutcome c) {
  switch (c) {
    case CacheOutcome::Hit:
      return "hit";
    case CacheOutcome::Miss:
      return "miss";
    case CacheOutcome::Bypass:
      return "bypass";
  }
  return "?";
}

json::Value RequestStats::to_json() const {
  json::Value v = json::Value::object();
  v.set("id", json::Value(static_cast<double>(id)));
  v.set("tenant", json::Value(tenant));
  v.set("queue_wait_s", json::Value(queue_wait_s));
  if (analyze_s > 0) v.set("analyze_s", json::Value(analyze_s));
  if (factorize_s > 0) {
    v.set("factorize_s", json::Value(factorize_s));
    v.set("cache", json::Value(std::string(to_string(cache))));
  }
  if (solve_s > 0 || batched_rhs > 0) {
    v.set("solve_s", json::Value(solve_s));
    v.set("batched_rhs", json::Value(static_cast<double>(batched_rhs)));
  }
  v.set("code", json::Value(std::string(to_string(code))));
  if (attempts > 0) v.set("attempts", json::Value(static_cast<double>(attempts)));
  if (degraded) {
    v.set("degraded", json::Value(true));
    v.set("backward_error", json::Value(backward_error));
  }
  v.set("completion_seq", json::Value(static_cast<double>(completion_seq)));
  if (run.makespan > 0) v.set("run", spx::to_json(run));
  return v;
}

json::Value AnalysisCacheStats::to_json() const {
  json::Value v = json::Value::object();
  v.set("hits", json::Value(static_cast<double>(hits)));
  v.set("misses", json::Value(static_cast<double>(misses)));
  v.set("evictions", json::Value(static_cast<double>(evictions)));
  v.set("bytes", json::Value(static_cast<double>(bytes)));
  v.set("entries", json::Value(static_cast<double>(entries)));
  return v;
}

const char* ServiceStats::health() const {
  const std::uint64_t hard_failures =
      failed + error_count(ErrorCode::Internal);
  if (hard_failures > completed) return "failing";
  if (hard_failures > 0 || error_count(ErrorCode::NumericalDegraded) > 0 ||
      retries > 0) {
    return "degraded";
  }
  return "ok";
}

json::Value ServiceStats::to_json() const {
  json::Value v = json::Value::object();
  v.set("submitted", json::Value(static_cast<double>(submitted)));
  v.set("completed", json::Value(static_cast<double>(completed)));
  v.set("failed", json::Value(static_cast<double>(failed)));
  v.set("rejected", json::Value(static_cast<double>(rejected)));
  v.set("cancelled", json::Value(static_cast<double>(cancelled)));
  v.set("expired", json::Value(static_cast<double>(expired)));
  v.set("factorizes", json::Value(static_cast<double>(factorizes)));
  v.set("solves", json::Value(static_cast<double>(solves)));
  v.set("batches", json::Value(static_cast<double>(batches)));
  v.set("batched_rhs", json::Value(static_cast<double>(batched_rhs)));
  v.set("retries", json::Value(static_cast<double>(retries)));
  v.set("queue_depth", json::Value(static_cast<double>(queue_depth)));
  json::Value e = json::Value::object();
  for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
    e.set(to_string(static_cast<ErrorCode>(i)),
          json::Value(static_cast<double>(errors[i])));
  }
  v.set("errors", std::move(e));
  v.set("health", json::Value(std::string(health())));
  v.set("cache", cache.to_json());
  return v;
}

}  // namespace spx::service
