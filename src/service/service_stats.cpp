#include "service/service_stats.hpp"

namespace spx::service {

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::Done:
      return "done";
    case RequestStatus::Failed:
      return "failed";
    case RequestStatus::Rejected:
      return "rejected";
    case RequestStatus::Cancelled:
      return "cancelled";
    case RequestStatus::Expired:
      return "expired";
  }
  return "?";
}

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::None:
      return "none";
    case ErrorCode::NumericalDegraded:
      return "numerical-degraded";
    case ErrorCode::NumericalFailed:
      return "numerical-failed";
    case ErrorCode::InjectedFault:
      return "injected-fault";
    case ErrorCode::OutOfMemory:
      return "out-of-memory";
    case ErrorCode::Overloaded:
      return "overloaded";
    case ErrorCode::Cancelled:
      return "cancelled";
    case ErrorCode::Timeout:
      return "timeout";
    case ErrorCode::Internal:
      return "internal";
  }
  return "?";
}

ErrorCode code_for_unrun(RequestStatus s) {
  switch (s) {
    case RequestStatus::Rejected:
      return ErrorCode::Overloaded;
    case RequestStatus::Cancelled:
      return ErrorCode::Cancelled;
    case RequestStatus::Expired:
      return ErrorCode::Timeout;
    default:
      return ErrorCode::Internal;  // shutdown drain / never-ran failures
  }
}

const char* to_string(CacheOutcome c) {
  switch (c) {
    case CacheOutcome::Hit:
      return "hit";
    case CacheOutcome::Miss:
      return "miss";
    case CacheOutcome::Bypass:
      return "bypass";
  }
  return "?";
}

const char* to_string(PrecisionPolicy p) {
  switch (p) {
    case PrecisionPolicy::Fp64:
      return "fp64";
    case PrecisionPolicy::Fp32Refine:
      return "fp32_refine";
    case PrecisionPolicy::Auto:
      return "auto";
  }
  return "?";
}

void RequestStats::export_json(obs::JsonWriter& w) const {
  w.field("id", id).field("tenant", tenant).field("queue_wait_s",
                                                  queue_wait_s);
  if (analyze_s > 0) w.field("analyze_s", analyze_s);
  if (factorize_s > 0) {
    w.field("factorize_s", factorize_s).field("cache", to_string(cache));
  }
  if (solve_s > 0 || batched_rhs > 0) {
    w.field("solve_s", solve_s).field("batched_rhs", batched_rhs);
  }
  w.field("code", to_string(code));
  if (attempts > 0) w.field("attempts", attempts);
  if (degraded) {
    w.field("degraded", true).field("backward_error", backward_error);
  }
  if (precision != PrecisionPolicy::Fp64 || fp32 || precision_fallback) {
    w.field("precision", to_string(precision)).field("fp32", fp32);
    if (precision_fallback) w.field("precision_fallback", true);
    if (refine_iterations > 0) {
      w.field("refine_iterations", refine_iterations)
          .field("backward_error", backward_error);
    }
  }
  w.field("completion_seq", completion_seq);
  if (run.makespan > 0) w.object("run", run);
}

json::Value RequestStats::to_json() const { return obs::to_json(*this); }

void AnalysisCacheStats::export_json(obs::JsonWriter& w) const {
  w.field("hits", hits)
      .field("misses", misses)
      .field("evictions", evictions)
      .field("bytes", bytes)
      .field("entries", entries);
}

json::Value AnalysisCacheStats::to_json() const { return obs::to_json(*this); }

void TenantStats::export_json(obs::JsonWriter& w) const {
  w.field("submitted", submitted)
      .field("completed", completed)
      .field("rejected", rejected)
      .field("factorizes", factorizes)
      .field("refactorizes", refactorizes)
      .field("solves", solves)
      .field("fp32_served", fp32_served)
      .field("fp64_fallbacks", fp64_fallbacks)
      .field("weight", weight);
}

const char* ServiceStats::health() const {
  const std::uint64_t hard_failures =
      failed + error_count(ErrorCode::Internal);
  if (hard_failures > completed) return "failing";
  if (hard_failures > 0 || error_count(ErrorCode::NumericalDegraded) > 0 ||
      retries > 0) {
    return "degraded";
  }
  return "ok";
}

void ServiceStats::export_json(obs::JsonWriter& w) const {
  w.field("submitted", submitted)
      .field("completed", completed)
      .field("failed", failed)
      .field("rejected", rejected)
      .field("cancelled", cancelled)
      .field("expired", expired)
      .field("factorizes", factorizes)
      .field("refactorizes", refactorizes)
      .field("solves", solves)
      .field("batches", batches)
      .field("batched_rhs", batched_rhs)
      .field("retries", retries)
      .field("queue_depth", queue_depth)
      .object("errors",
              [&](obs::JsonWriter& e) {
                for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
                  e.field(to_string(static_cast<ErrorCode>(i)), errors[i]);
                }
              })
      .field("health", health())
      .object("cache", cache)
      .object("tenants", [&](obs::JsonWriter& t) {
        for (const auto& [name, ts] : tenants) t.object(name, ts);
      });
}

json::Value ServiceStats::to_json() const { return obs::to_json(*this); }

}  // namespace spx::service
