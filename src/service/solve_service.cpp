#include "service/solve_service.hpp"

#include "common/timer.hpp"

namespace spx::service {

namespace {

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

void SharedCounters::resolve_metrics(obs::MetricsRegistry& reg) {
  const auto c = [&](const char* name, const char* help) {
    return &reg.counter(name, help);
  };
  m_submitted = c("spx_service_submitted_total", "Requests submitted");
  m_completed =
      c("spx_service_completed_total", "Requests finished with status Done");
  m_failed = c("spx_service_failed_total", "Requests finished Failed");
  m_rejected = c("spx_service_rejected_total", "Requests Rejected");
  m_cancelled = c("spx_service_cancelled_total", "Requests Cancelled");
  m_expired = c("spx_service_expired_total", "Requests Expired");
  m_factorizes =
      c("spx_service_factorizes_total", "Factorize requests completed Done");
  m_refactorizes = c("spx_service_refactorizes_total",
                     "Refactorize requests completed Done");
  m_solves = c("spx_service_solves_total", "Solve requests completed Done");
  m_batches =
      c("spx_service_batches_total", "Coalesced solve_multi calls issued");
  m_batched_rhs = c("spx_service_batched_rhs_total",
                    "Total RHS columns across solve batches");
  m_retries =
      c("spx_service_retries_total", "Factorize re-attempts issued");
  for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
    m_by_code[i] = &reg.counter(
        "spx_service_errors_total", "Terminal outcomes per error code",
        {{"code", to_string(static_cast<ErrorCode>(i))}});
  }
  tenant_registry_ = &reg;
}

SharedCounters::TenantCell& SharedCounters::tenant_cell_locked(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  TenantCell& cell = tenants_[tenant];
  SPX_OBS(if (tenant_registry_ != nullptr) {
    const obs::Labels labels(1, {"tenant", tenant});
    cell.m_submitted = &tenant_registry_->counter(
        "spx_service_tenant_submitted_total",
        "Requests this tenant submitted", labels);
    cell.m_completed = &tenant_registry_->counter(
        "spx_service_tenant_completed_total",
        "Requests this tenant completed Done", labels);
    cell.m_fp32_served = &tenant_registry_->counter(
        "spx_service_tenant_fp32_served_total",
        "Requests the fp32+refine path served for this tenant", labels);
    cell.m_fp64_fallbacks = &tenant_registry_->counter(
        "spx_service_tenant_fp64_fallbacks_total",
        "fp32 gate trips re-factorized in fp64 for this tenant", labels);
  });
  return cell;
}

void SharedCounters::note_tenant_submitted(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  TenantCell& cell = tenant_cell_locked(tenant);
  ++cell.stats.submitted;
  SPX_OBS(if (cell.m_submitted != nullptr) cell.m_submitted->inc());
}

void SharedCounters::note_tenant_rejected(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  // The registry side of rejections is the admission queue's
  // spx_service_tenant_rejected_total; here only the stats slice counts.
  ++tenant_cell_locked(tenant).stats.rejected;
}

void SharedCounters::note_tenant_done(const std::string& tenant, JobKind kind,
                                      bool fp32, bool fp64_fallback) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  TenantCell& cell = tenant_cell_locked(tenant);
  ++cell.stats.completed;
  SPX_OBS(if (cell.m_completed != nullptr) cell.m_completed->inc());
  switch (kind) {
    case JobKind::Factorize:
      ++cell.stats.factorizes;
      break;
    case JobKind::Refactorize:
      ++cell.stats.refactorizes;
      break;
    case JobKind::Solve:
      ++cell.stats.solves;
      break;
  }
  if (fp32) {
    ++cell.stats.fp32_served;
    SPX_OBS(if (cell.m_fp32_served != nullptr) cell.m_fp32_served->inc());
  }
  if (fp64_fallback) {
    ++cell.stats.fp64_fallbacks;
    SPX_OBS(
        if (cell.m_fp64_fallbacks != nullptr) cell.m_fp64_fallbacks->inc());
  }
}

void SharedCounters::set_tenant_weight(const std::string& tenant,
                                       double weight) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  tenant_cell_locked(tenant).stats.weight = weight;
}

std::map<std::string, TenantStats> SharedCounters::tenant_snapshot() const {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  std::map<std::string, TenantStats> out;
  for (const auto& [name, cell] : tenants_) out.emplace(name, cell.stats);
  return out;
}

void FactorizeJob::complete_unrun(RequestStatus status, std::string error) {
  counters->count_unrun(status);
  if (status == RequestStatus::Rejected) counters->note_tenant_rejected(tenant);
  stats.code = code_for_unrun(status);
  stats.completion_seq = 1 + counters->completion_seq.fetch_add(1);
  FactorizeResult r;
  r.status = status;
  r.code = stats.code;
  r.error = std::move(error);
  r.stats = stats;
  promise.set_value(std::move(r));
  notify_complete();
}

void RefactorizeJob::complete_unrun(RequestStatus status, std::string error) {
  counters->count_unrun(status);
  if (status == RequestStatus::Rejected) counters->note_tenant_rejected(tenant);
  stats.code = code_for_unrun(status);
  stats.completion_seq = 1 + counters->completion_seq.fetch_add(1);
  FactorizeResult r;
  r.status = status;
  r.code = stats.code;
  r.error = std::move(error);
  r.stats = stats;
  promise.set_value(std::move(r));
  notify_complete();
}

void SolveJob::complete_unrun(RequestStatus status, std::string error) {
  counters->count_unrun(status);
  if (status == RequestStatus::Rejected) counters->note_tenant_rejected(tenant);
  stats.code = code_for_unrun(status);
  stats.completion_seq = 1 + counters->completion_seq.fetch_add(1);
  SolveResult r;
  r.status = status;
  r.code = stats.code;
  r.error = std::move(error);
  r.stats = stats;
  promise.set_value(std::move(r));
  notify_complete();
}

SolveService::SolveService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes, options_.solver.instr.metrics),
      queue_(options_.queue_capacity, options_.solver.instr.metrics,
             options_.tenants),
      counters_(std::make_shared<SharedCounters>()),
      tracer_(options_.solver.instr.tracer) {
  SPX_CHECK_ARG(options_.num_workers >= 0, "num_workers must be >= 0");
  SPX_CHECK_ARG(options_.max_batch >= 1, "max_batch must be >= 1");
  counters_->resolve_metrics(
      obs::registry_or_global(options_.solver.instr.metrics));
  // Seed the stats slices of configured tenants so their weights show up
  // before any traffic arrives.
  for (const auto& [name, cfg] : options_.tenants) {
    counters_->set_tenant_weight(name, cfg.weight > 0 ? cfg.weight : 1.0);
  }
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolveService::~SolveService() {
  queue_.shutdown();
  for (std::thread& w : workers_) w.join();
  // Complete whatever never got picked up, so no ticket blocks forever.
  while (std::shared_ptr<JobBase> job = queue_.try_pop()) {
    if (job->try_claim()) {
      job->complete_unrun(RequestStatus::Failed, "service shutdown");
    }
  }
}

PrecisionPolicy SolveService::effective_policy(
    const std::string& tenant,
    const std::optional<PrecisionPolicy>& override_) const {
  if (override_.has_value()) return *override_;
  if (const auto it = options_.tenants.find(tenant);
      it != options_.tenants.end() && it->second.precision_set) {
    return it->second.precision;
  }
  return options_.precision;
}

bool SolveService::want_fp32(PrecisionPolicy policy, std::uint64_t digest) {
  if (policy == PrecisionPolicy::Fp64) return false;
  if (policy == PrecisionPolicy::Fp32Refine) return true;
  std::lock_guard<std::mutex> lock(fp32_mutex_);
  return fp32_fallback_digests_.count(digest) == 0;
}

void SolveService::note_fp32_fallback(std::uint64_t digest) {
  std::lock_guard<std::mutex> lock(fp32_mutex_);
  fp32_fallback_digests_.insert(digest);
}

template <typename Result, typename Job>
Ticket<Result> SolveService::admit(std::shared_ptr<Job> job,
                                   double deadline_s) {
  job->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job->enqueued = Clock::now();
  if (deadline_s > 0) {
    job->deadline =
        job->enqueued + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(deadline_s));
  }
  job->counters = counters_;
  job->stats.id = job->id;
  job->stats.tenant = job->tenant;
  // One trace per request: everything downstream (queue wait, factorize,
  // driver tasks, retries) parents under this root context.  A submitter
  // that carried a trace across the wire pre-set trace_ctx; keep it so
  // the remote spans join the client's trace.
  SPX_OBS(if (tracer_ != nullptr) {
    if (!job->trace_ctx.valid()) job->trace_ctx = tracer_->new_trace();
    job->trace_enqueued = tracer_->now();
  });
  counters_->note_submitted();
  counters_->note_tenant_submitted(job->tenant);
  // Chain the drain accounting through on_complete: every terminal path
  // fulfills the promise then notify_complete(), so inflight_ reaches 0
  // exactly when every admitted request has a result.
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  job->on_complete = [this, user_cb = std::move(job->on_complete)] {
    if (user_cb) user_cb();
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drain_cv_.notify_all();
    }
  };
  Ticket<Result> ticket(job->promise.get_future().share(), job);
  if (draining_.load(std::memory_order_acquire)) {
    if (job->try_claim()) {  // fresh job: always wins
      job->complete_unrun(RequestStatus::Rejected, "service draining");
    }
    return ticket;
  }
  if (!queue_.try_push(job)) {
    if (job->try_claim()) {
      job->complete_unrun(RequestStatus::Rejected,
                          "admission queue full for tenant '" + job->tenant +
                              "'");
    }
  }
  return ticket;
}

Ticket<FactorizeResult> SolveService::submit_factorize(
    RequestOptions req, std::shared_ptr<const CscMatrix<real_t>> a,
    Factorization kind) {
  SPX_CHECK_ARG(a != nullptr, "submit_factorize(): null matrix");
  SPX_CHECK_ARG(a->nrows() == a->ncols(), "square matrix required");
  auto job = std::make_shared<FactorizeJob>();
  job->tenant = std::move(req.tenant);
  job->matrix = std::move(a);
  job->fkind = kind;
  job->policy = effective_policy(job->tenant, req.precision);
  job->trace_ctx = req.trace;
  job->on_complete = std::move(req.on_complete);
  return admit<FactorizeResult>(std::move(job), req.deadline_s);
}

Ticket<FactorizeResult> SolveService::submit_refactorize(
    RequestOptions req, FactorHandle factor, std::vector<real_t> values) {
  SPX_CHECK_ARG(factor != nullptr, "submit_refactorize(): null factor handle");
  SPX_CHECK_ARG(factor->refactorizable(),
                "submit_refactorize(): factor has no retained matrix "
                "(restored from a snapshot); submit a full factorize "
                "instead");
  SPX_CHECK_ARG(values.size() == factor->matrix_->values().size(),
                "submit_refactorize(): values size differs from the "
                "factor's nnz");
  auto job = std::make_shared<RefactorizeJob>();
  job->tenant = std::move(req.tenant);
  job->factor = std::move(factor);
  job->values = std::move(values);
  job->trace_ctx = req.trace;
  job->on_complete = std::move(req.on_complete);
  return admit<FactorizeResult>(std::move(job), req.deadline_s);
}

Ticket<SolveResult> SolveService::submit_solve(RequestOptions req,
                                               FactorHandle factor,
                                               std::vector<real_t> rhs) {
  SPX_CHECK_ARG(factor != nullptr, "submit_solve(): null factor handle");
  SPX_CHECK_ARG(req.nrhs >= 1, "submit_solve(): nrhs must be >= 1");
  SPX_CHECK_ARG(static_cast<index_t>(rhs.size()) ==
                    factor->n() * req.nrhs,
                "submit_solve(): rhs size differs from n * nrhs");
  auto job = std::make_shared<SolveJob>();
  job->tenant = std::move(req.tenant);
  job->factor = std::move(factor);
  job->rhs = std::move(rhs);
  job->nrhs = req.nrhs;
  job->trace_ctx = req.trace;
  job->on_complete = std::move(req.on_complete);
  Ticket<SolveResult> ticket = admit<SolveResult>(job, req.deadline_s);
  // Register for batching only after surviving admission.  A worker may
  // pop and even finish the job before this append runs; the entry is
  // weak and claimed, so the next drain simply prunes it.
  if (!job->claimed.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(job->factor->pending_mutex_);
    job->factor->pending_.push_back(job);
  }
  return ticket;
}

void SolveService::worker_loop() {
  while (std::shared_ptr<JobBase> job = queue_.pop()) {
    if (!job->try_claim()) continue;  // already batched or cancelled
    const Clock::time_point now = Clock::now();
    if (job->cancel_requested.load(std::memory_order_acquire)) {
      job->complete_unrun(RequestStatus::Cancelled, "cancelled by caller");
      continue;
    }
    if (job->past_deadline(now)) {
      job->complete_unrun(RequestStatus::Expired,
                          "deadline passed while queued");
      continue;
    }
    SPX_OBS(if (tracer_ != nullptr && job->trace_ctx.valid()) {
      tracer_->record_span("service.queue.wait", "service-", job->trace_ctx,
                           job->trace_enqueued, tracer_->now(), 0,
                           static_cast<std::int64_t>(job->id));
    });
    switch (job->kind) {
      case JobKind::Factorize: {
        auto fj = std::static_pointer_cast<FactorizeJob>(job);
        fj->stats.queue_wait_s = seconds_between(fj->enqueued, now);
        run_factorize(fj);
        break;
      }
      case JobKind::Refactorize: {
        auto rj = std::static_pointer_cast<RefactorizeJob>(job);
        rj->stats.queue_wait_s = seconds_between(rj->enqueued, now);
        run_refactorize(rj);
        break;
      }
      case JobKind::Solve: {
        auto sj = std::static_pointer_cast<SolveJob>(job);
        sj->stats.queue_wait_s = seconds_between(sj->enqueued, now);
        run_solve_batch(sj);
        break;
      }
    }
  }
}

bool SolveService::spend_retry(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(retry_mutex_);
  std::uint64_t& spent = retry_spent_[tenant];
  if (spent >= options_.tenant_retry_budget) return false;
  ++spent;
  counters_->note_retry();
  return true;
}

bool SolveService::try_fp32_factorize(Factor& factor,
                                      const CscMatrix<real_t>& a,
                                      Factorization kind, RequestStats& st) {
  try {
    auto mixed =
        std::make_unique<MixedPrecisionSolver>(options_.solver.analysis);
    mixed->adopt_analysis(factor.solver_.analysis_shared(),
                          factor.solver_.pattern_digest());
    mixed->factorize(a, kind);
    // Quality gate: solve A x = A*1 and require refinement to reach the
    // target backward error.  A float factor that cannot reproduce the
    // ones vector will not serve real solves either, so the caller
    // re-factorizes in fp64 instead of shipping a doomed factor.
    const auto n = static_cast<std::size_t>(a.ncols());
    std::vector<real_t> ones(n, 1.0);
    std::vector<real_t> b(n);
    std::vector<real_t> x(n);
    a.multiply(ones, b);
    const MixedSolveReport probe =
        mixed->solve(b, x, options_.mixed_tolerance, options_.mixed_max_iter);
    st.refine_iterations = probe.iterations;
    st.backward_error = probe.residual;
    if (!probe.converged) return false;
    factor.mixed_ = std::move(mixed);
    return true;
  } catch (const NumericalError&) {
    // Breakdown in float (e.g. a pivot that underflows to zero): the
    // same matrix can still factor fine in double.
    return false;
  }
}

void SolveService::factorize_attempt(FactorizeJob& job,
                                     const SolverOptions& sopts,
                                     FactorizeResult& res) {
  RequestStats& st = job.stats;
  const PatternKey key = PatternKey::of(*job.matrix);
  std::shared_ptr<const Analysis> analysis = cache_.get_or_compute(
      key,
      [&] {
        Timer ta;
        Analysis an = spx::analyze(*job.matrix, sopts.analysis);
        st.analyze_s = ta.elapsed();
        return an;
      },
      &st.cache);
  auto factor = std::make_shared<Factor>();
  factor->policy_ = job.policy;
  factor->fkind_ = job.fkind;
  factor->matrix_ = job.matrix;
  factor->solver_ = Solver<real_t>(sopts);
  factor->solver_.adopt_analysis(std::move(analysis), key.digest);
  st.precision = job.policy;
  Timer tf;
  bool fp32 = false;
  if (want_fp32(job.policy, key.digest)) {
    fp32 = try_fp32_factorize(*factor, *job.matrix, job.fkind, st);
    if (!fp32) {
      st.precision_fallback = true;
      note_fp32_fallback(key.digest);
    }
  }
  if (!fp32) {
    factor->solver_.factorize(*job.matrix, job.fkind);
    st.run = factor->solver_.last_factorization_stats();
    const FactorQuality& q = st.run.quality;
    if (q.degraded() && q.pivot_growth() > options_.max_pivot_growth) {
      // Perturbation technically succeeded but the factors are too wild
      // for refinement to repair; classify as numerical failure
      // (retryable: a larger epsilon shrinks the 1/eps growth).
      throw NumericalError("pivot growth " +
                           std::to_string(q.pivot_growth()) +
                           " exceeds the serviceable limit");
    }
    st.degraded = q.degraded();
    res.code = q.degraded() ? ErrorCode::NumericalDegraded : ErrorCode::None;
  } else {
    res.code = ErrorCode::None;
  }
  st.factorize_s = tf.elapsed();
  st.fp32 = fp32;
  res.factor = std::move(factor);
}

void SolveService::run_factorize(const std::shared_ptr<FactorizeJob>& job) {
  FactorizeResult res;
  RequestStats& st = job->stats;
  SolverOptions sopts = options_.solver;
  // Parent this request's solver/driver spans under one request span of
  // its own trace.
  obs::ScopedSpan req_span;
  SPX_OBS({
    req_span = obs::ScopedSpan(tracer_, "service.factorize", "service-",
                               job->trace_ctx, 0,
                               static_cast<std::int64_t>(job->id));
    sopts.instr.parent = req_span.context();
  });
  const int max_attempts = std::max(1, options_.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    st.attempts = attempt;
    ErrorCode code;
    std::string error;
    try {
      factorize_attempt(*job, sopts, res);
      res.status = RequestStatus::Done;
      st.code = res.code;
      counters_->note_factorize();
      counters_->note_completed();
      counters_->count_code(res.code);
      counters_->note_tenant_done(job->tenant, JobKind::Factorize, st.fp32,
                                  st.precision_fallback);
      break;
    } catch (const InjectedFault& e) {
      code = ErrorCode::InjectedFault;
      error = e.what();
    } catch (const NumericalError& e) {
      code = ErrorCode::NumericalFailed;
      error = e.what();
    } catch (const std::bad_alloc&) {
      code = ErrorCode::OutOfMemory;
      error = "factor allocation failed";
    } catch (const std::exception& e) {
      code = ErrorCode::Internal;
      error = e.what();
    }
    // Retry transient-or-absorbable failures with escalating epsilon and
    // exponential backoff, within the tenant's retry budget.
    const bool retryable = code == ErrorCode::NumericalFailed ||
                           code == ErrorCode::InjectedFault ||
                           code == ErrorCode::OutOfMemory;
    if (retryable && attempt < max_attempts && spend_retry(job->tenant)) {
      if (code == ErrorCode::NumericalFailed) {
        sopts.pivot_threshold =
            (sopts.pivot_threshold > 0 ? sopts.pivot_threshold : 1e-12) *
            options_.eps_escalation;
      }
      if (options_.retry_backoff_s > 0) {
        obs::ScopedSpan backoff;
        SPX_OBS(backoff = obs::ScopedSpan(
                    tracer_, "service.retry.backoff", "service-",
                    req_span.context(), 0,
                    static_cast<std::int64_t>(job->id), attempt));
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options_.retry_backoff_s * static_cast<double>(1 << (attempt - 1))));
      }
      continue;
    }
    res.status = RequestStatus::Failed;
    res.code = code;
    res.error = std::move(error);
    st.code = code;
    counters_->note_failed();
    counters_->count_code(code);
    break;
  }
  st.completion_seq = 1 + counters_->completion_seq.fetch_add(1);
  res.stats = st;
  job->promise.set_value(std::move(res));
  job->notify_complete();
}

void SolveService::run_refactorize(
    const std::shared_ptr<RefactorizeJob>& job) {
  FactorizeResult res;
  RequestStats& st = job->stats;
  obs::ScopedSpan req_span;
  SPX_OBS(req_span = obs::ScopedSpan(tracer_, "service.refactorize",
                                     "service-", job->trace_ctx, 0,
                                     static_cast<std::int64_t>(job->id)));
  st.attempts = 1;
  Factor& f = *job->factor;
  st.precision = f.policy_;
  ErrorCode code = ErrorCode::Internal;
  std::string error;
  try {
    // Exclusive against concurrent solves: the numeric values of the live
    // factor are swapped in place.
    std::unique_lock<std::shared_mutex> wlock(f.rw_);
    const std::shared_ptr<const CscMatrix<real_t>> prev = f.matrix_;
    auto m = std::make_shared<const CscMatrix<real_t>>(
        prev->nrows(), prev->ncols(),
        std::vector<size_type>(prev->colptr().begin(), prev->colptr().end()),
        std::vector<index_t>(prev->rowind().begin(), prev->rowind().end()),
        std::move(job->values));
    Timer tf;
    bool fallback = false;
    if (f.mixed_ != nullptr) {
      f.mixed_->refactorize(*m);
      // Re-run the probe gate against the new values; drifting matrices
      // can leave the fp32 regime mid-stream.
      const auto n = static_cast<std::size_t>(m->ncols());
      std::vector<real_t> ones(n, 1.0);
      std::vector<real_t> b(n);
      std::vector<real_t> x(n);
      m->multiply(ones, b);
      const MixedSolveReport probe = f.mixed_->solve(
          b, x, options_.mixed_tolerance, options_.mixed_max_iter);
      st.refine_iterations = probe.iterations;
      st.backward_error = probe.residual;
      if (probe.converged) {
        st.fp32 = true;
      } else {
        // Gate trip: promote the factor to fp64 before dropping the float
        // path.  If the fp64 factorization fails, restore the float
        // factors from the retained previous matrix so the factor keeps
        // serving the old values.
        try {
          f.solver_.factorize(*m, f.fkind_);
        } catch (...) {
          f.mixed_->refactorize(*prev);
          throw;
        }
        f.mixed_.reset();
        fallback = true;
        st.precision_fallback = true;
        note_fp32_fallback(f.solver_.pattern_digest());
        st.run = f.solver_.last_factorization_stats();
        st.degraded = st.run.quality.degraded();
      }
    } else {
      // Solver::refactorize rolls back to the previous factor on any
      // failure, so a throw below leaves the factor servable.
      f.solver_.refactorize(*m);
      st.run = f.solver_.last_factorization_stats();
      st.degraded = st.run.quality.degraded();
    }
    st.factorize_s = tf.elapsed();
    f.matrix_ = std::move(m);
    res.status = RequestStatus::Done;
    res.code =
        st.degraded ? ErrorCode::NumericalDegraded : ErrorCode::None;
    res.factor = job->factor;
    st.code = res.code;
    counters_->note_refactorize();
    counters_->note_completed();
    counters_->count_code(res.code);
    counters_->note_tenant_done(job->tenant, JobKind::Refactorize, st.fp32,
                                fallback);
  } catch (const InjectedFault& e) {
    code = ErrorCode::InjectedFault;
    error = e.what();
  } catch (const NumericalError& e) {
    code = ErrorCode::NumericalFailed;
    error = e.what();
  } catch (const std::bad_alloc&) {
    code = ErrorCode::OutOfMemory;
    error = "factor allocation failed";
  } catch (const std::exception& e) {
    code = ErrorCode::Internal;
    error = e.what();
  }
  if (res.status != RequestStatus::Done) {
    res.status = RequestStatus::Failed;
    res.code = code;
    res.error = std::move(error);
    st.code = code;
    counters_->note_failed();
    counters_->count_code(code);
  }
  st.completion_seq = 1 + counters_->completion_seq.fetch_add(1);
  res.stats = st;
  job->promise.set_value(std::move(res));
  job->notify_complete();
}

void SolveService::run_solve_batch(const std::shared_ptr<SolveJob>& first) {
  // Linger so that same-factor solves submitted moments later coalesce
  // into this batch instead of paying their own traversal.
  if (options_.batch_window > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.batch_window));
  }
  Factor& factor = *first->factor;
  std::vector<std::shared_ptr<SolveJob>> batch;
  batch.push_back(first);
  index_t cols = first->nrhs;
  {
    std::lock_guard<std::mutex> lock(factor.pending_mutex_);
    auto& pending = factor.pending_;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      std::shared_ptr<SolveJob> job = pending[i].lock();
      if (job == nullptr || job->claimed.load(std::memory_order_acquire)) {
        continue;  // prune: done elsewhere, cancelled, or expired weak ref
      }
      if (cols + job->nrhs > options_.max_batch || !job->try_claim()) {
        pending[kept++] = pending[i];  // keep for a later batch
        continue;
      }
      job->stats.queue_wait_s = seconds_between(job->enqueued, Clock::now());
      cols += job->nrhs;
      batch.push_back(std::move(job));
    }
    pending.resize(kept);
  }

  // Honor per-member cancellation/deadline now that they are claimed.
  const Clock::time_point now = Clock::now();
  std::vector<std::shared_ptr<SolveJob>> runnable;
  runnable.reserve(batch.size());
  for (std::shared_ptr<SolveJob>& job : batch) {
    if (job->cancel_requested.load(std::memory_order_acquire)) {
      job->complete_unrun(RequestStatus::Cancelled, "cancelled by caller");
    } else if (job->past_deadline(now)) {
      job->complete_unrun(RequestStatus::Expired,
                          "deadline passed while queued");
    } else {
      runnable.push_back(std::move(job));
    }
  }
  if (runnable.empty()) return;

  const index_t n = factor.n();
  index_t k = 0;  // total RHS columns across the runnable batch
  for (const std::shared_ptr<SolveJob>& job : runnable) k += job->nrhs;
  obs::ScopedSpan batch_span;
  SPX_OBS(batch_span = obs::ScopedSpan(
              tracer_, "service.solve.batch", "service-", first->trace_ctx,
              0, static_cast<std::int64_t>(first->id), k));
  try {
    Timer ts;
    std::vector<real_t> block(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(k));
    std::size_t off = 0;
    for (const std::shared_ptr<SolveJob>& job : runnable) {
      std::copy(job->rhs.begin(), job->rhs.end(), block.begin() + off);
      off += job->rhs.size();
    }
    bool fp32 = false;
    bool degraded = false;
    double backward_error = 0;
    int refine_iterations = 0;
    {
      // Shared against refactorize, which swaps values exclusively.
      std::shared_lock<std::shared_mutex> rlock(factor.rw_);
      if (factor.mixed_ != nullptr) {
        fp32 = true;
        const MixedSolveReport rep = factor.mixed_->solve_multi(
            block, k, options_.mixed_tolerance, options_.mixed_max_iter);
        degraded = !rep.converged;
        backward_error = rep.residual;
        refine_iterations = rep.iterations;
      } else {
        const SolveReport rep = factor.solver_.solve_multi(block, k);
        degraded = rep.degraded;
        backward_error = rep.backward_error;
      }
    }
    const double solve_s = ts.elapsed();
    const ErrorCode code =
        degraded ? ErrorCode::NumericalDegraded : ErrorCode::None;
    counters_->note_batch(static_cast<std::uint64_t>(k));
    off = 0;
    for (const std::shared_ptr<SolveJob>& jp : runnable) {
      SolveJob& job = *jp;
      SolveResult r;
      r.status = RequestStatus::Done;
      r.code = code;
      const auto* col = block.data() + off;
      r.x.assign(col, col + job.rhs.size());
      off += job.rhs.size();
      job.stats.solve_s = solve_s;
      job.stats.batched_rhs = k;
      job.stats.code = code;
      job.stats.degraded = degraded;
      job.stats.backward_error = backward_error;
      job.stats.fp32 = fp32;
      job.stats.refine_iterations = refine_iterations;
      job.stats.precision = factor.policy_;
      counters_->note_solve();
      counters_->note_completed();
      counters_->count_code(code);
      counters_->note_tenant_done(job.tenant, JobKind::Solve, fp32, false);
      job.stats.completion_seq = 1 + counters_->completion_seq.fetch_add(1);
      r.stats = job.stats;
      job.promise.set_value(std::move(r));
      job.notify_complete();
    }
  } catch (const std::exception& e) {
    ErrorCode code = ErrorCode::Internal;
    if (dynamic_cast<const InjectedFault*>(&e) != nullptr) {
      code = ErrorCode::InjectedFault;
    } else if (dynamic_cast<const NumericalError*>(&e) != nullptr) {
      code = ErrorCode::NumericalFailed;
    }
    for (const std::shared_ptr<SolveJob>& job : runnable) {
      SolveResult r;
      r.status = RequestStatus::Failed;
      r.code = code;
      r.error = e.what();
      counters_->note_failed();
      counters_->count_code(code);
      job->stats.code = code;
      job->stats.completion_seq = 1 + counters_->completion_seq.fetch_add(1);
      r.stats = job->stats;
      job->promise.set_value(std::move(r));
      job->notify_complete();
    }
  }
}

FactorHandle SolveService::adopt_factor(Solver<real_t> solver) {
  SPX_CHECK_ARG(solver.factorized(),
                "adopt_factor needs a factorized solver");
  // Seed the pattern cache so a later factorize of this pattern skips
  // the symbolic phase even though this factor bypassed the request path.
  std::shared_ptr<const Analysis> analysis = solver.analysis_shared();
  const PatternKey key{analysis->perm.size(),
                       static_cast<size_type>(analysis->nnz_a),
                       solver.pattern_digest()};
  cache_.insert(key, std::move(analysis));
  auto factor = std::make_shared<Factor>();
  factor->solver_ = std::move(solver);
  return factor;
}

bool SolveService::drain(double timeout_s) {
  draining_.store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lock(drain_mutex_);
  const auto empty = [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  };
  if (timeout_s <= 0) {
    drain_cv_.wait(lock, empty);
    return true;
  }
  return drain_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s), empty);
}

ServiceStats SolveService::stats() const {
  ServiceStats s;
  s.submitted = counters_->submitted.load();
  s.completed = counters_->completed.load();
  s.failed = counters_->failed.load();
  s.rejected = counters_->rejected.load();
  s.cancelled = counters_->cancelled.load();
  s.expired = counters_->expired.load();
  s.factorizes = counters_->factorizes.load();
  s.refactorizes = counters_->refactorizes.load();
  s.solves = counters_->solves.load();
  s.batches = counters_->batches.load();
  s.batched_rhs = counters_->batched_rhs.load();
  s.retries = counters_->retries.load();
  for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
    s.errors[i] = counters_->by_code[i].load();
  }
  s.queue_depth = queue_.depth();
  s.cache = cache_.stats();
  s.tenants = counters_->tenant_snapshot();
  return s;
}

}  // namespace spx::service
