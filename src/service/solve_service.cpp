#include "service/solve_service.hpp"

#include "common/timer.hpp"

namespace spx::service {

namespace {

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

void SharedCounters::resolve_metrics(obs::MetricsRegistry& reg) {
  const auto c = [&](const char* name, const char* help) {
    return &reg.counter(name, help);
  };
  m_submitted = c("spx_service_submitted_total", "Requests submitted");
  m_completed =
      c("spx_service_completed_total", "Requests finished with status Done");
  m_failed = c("spx_service_failed_total", "Requests finished Failed");
  m_rejected = c("spx_service_rejected_total", "Requests Rejected");
  m_cancelled = c("spx_service_cancelled_total", "Requests Cancelled");
  m_expired = c("spx_service_expired_total", "Requests Expired");
  m_factorizes =
      c("spx_service_factorizes_total", "Factorize requests completed Done");
  m_solves = c("spx_service_solves_total", "Solve requests completed Done");
  m_batches =
      c("spx_service_batches_total", "Coalesced solve_multi calls issued");
  m_batched_rhs = c("spx_service_batched_rhs_total",
                    "Total RHS columns across solve batches");
  m_retries =
      c("spx_service_retries_total", "Factorize re-attempts issued");
  for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
    m_by_code[i] = &reg.counter(
        "spx_service_errors_total", "Terminal outcomes per error code",
        {{"code", to_string(static_cast<ErrorCode>(i))}});
  }
}

void FactorizeJob::complete_unrun(RequestStatus status, std::string error) {
  counters->count_unrun(status);
  stats.code = code_for_unrun(status);
  stats.completion_seq = 1 + counters->completion_seq.fetch_add(1);
  FactorizeResult r;
  r.status = status;
  r.code = stats.code;
  r.error = std::move(error);
  r.stats = stats;
  promise.set_value(std::move(r));
  notify_complete();
}

void SolveJob::complete_unrun(RequestStatus status, std::string error) {
  counters->count_unrun(status);
  stats.code = code_for_unrun(status);
  stats.completion_seq = 1 + counters->completion_seq.fetch_add(1);
  SolveResult r;
  r.status = status;
  r.code = stats.code;
  r.error = std::move(error);
  r.stats = stats;
  promise.set_value(std::move(r));
  notify_complete();
}

SolveService::SolveService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes, options_.solver.instr.metrics),
      queue_(options_.queue_capacity, options_.solver.instr.metrics),
      counters_(std::make_shared<SharedCounters>()),
      tracer_(options_.solver.instr.tracer) {
  SPX_CHECK_ARG(options_.num_workers >= 0, "num_workers must be >= 0");
  SPX_CHECK_ARG(options_.max_batch >= 1, "max_batch must be >= 1");
  counters_->resolve_metrics(
      obs::registry_or_global(options_.solver.instr.metrics));
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolveService::~SolveService() {
  queue_.shutdown();
  for (std::thread& w : workers_) w.join();
  // Complete whatever never got picked up, so no ticket blocks forever.
  while (std::shared_ptr<JobBase> job = queue_.try_pop()) {
    if (job->try_claim()) {
      job->complete_unrun(RequestStatus::Failed, "service shutdown");
    }
  }
}

template <typename Result, typename Job>
Ticket<Result> SolveService::admit(std::shared_ptr<Job> job,
                                   double deadline_s) {
  job->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job->enqueued = Clock::now();
  if (deadline_s > 0) {
    job->deadline =
        job->enqueued + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(deadline_s));
  }
  job->counters = counters_;
  job->stats.id = job->id;
  job->stats.tenant = job->tenant;
  // One trace per request: everything downstream (queue wait, factorize,
  // driver tasks, retries) parents under this root context.  A submitter
  // that carried a trace across the wire pre-set trace_ctx; keep it so
  // the remote spans join the client's trace.
  SPX_OBS(if (tracer_ != nullptr) {
    if (!job->trace_ctx.valid()) job->trace_ctx = tracer_->new_trace();
    job->trace_enqueued = tracer_->now();
  });
  counters_->note_submitted();
  // Chain the drain accounting through on_complete: every terminal path
  // fulfills the promise then notify_complete(), so inflight_ reaches 0
  // exactly when every admitted request has a result.
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  job->on_complete = [this, user_cb = std::move(job->on_complete)] {
    if (user_cb) user_cb();
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drain_cv_.notify_all();
    }
  };
  Ticket<Result> ticket(job->promise.get_future().share(), job);
  if (draining_.load(std::memory_order_acquire)) {
    if (job->try_claim()) {  // fresh job: always wins
      job->complete_unrun(RequestStatus::Rejected, "service draining");
    }
    return ticket;
  }
  if (!queue_.try_push(job)) {
    if (job->try_claim()) {
      job->complete_unrun(RequestStatus::Rejected,
                          "admission queue full for tenant '" + job->tenant +
                              "'");
    }
  }
  return ticket;
}

Ticket<FactorizeResult> SolveService::submit_factorize(
    std::string tenant, std::shared_ptr<const CscMatrix<real_t>> a,
    Factorization kind, double deadline_s, obs::SpanContext trace,
    std::function<void()> on_complete) {
  SPX_CHECK_ARG(a != nullptr, "submit_factorize(): null matrix");
  SPX_CHECK_ARG(a->nrows() == a->ncols(), "square matrix required");
  auto job = std::make_shared<FactorizeJob>();
  job->tenant = std::move(tenant);
  job->matrix = std::move(a);
  job->fkind = kind;
  job->trace_ctx = trace;
  job->on_complete = std::move(on_complete);
  return admit<FactorizeResult>(std::move(job), deadline_s);
}

Ticket<SolveResult> SolveService::submit_solve(std::string tenant,
                                               FactorHandle factor,
                                               std::vector<real_t> rhs,
                                               double deadline_s,
                                               obs::SpanContext trace,
                                               std::function<void()> on_complete) {
  SPX_CHECK_ARG(factor != nullptr, "submit_solve(): null factor handle");
  SPX_CHECK_ARG(static_cast<index_t>(rhs.size()) == factor->n(),
                "submit_solve(): rhs size differs from the factor's n");
  auto job = std::make_shared<SolveJob>();
  job->tenant = std::move(tenant);
  job->factor = std::move(factor);
  job->rhs = std::move(rhs);
  job->trace_ctx = trace;
  job->on_complete = std::move(on_complete);
  Ticket<SolveResult> ticket = admit<SolveResult>(job, deadline_s);
  // Register for batching only after surviving admission.  A worker may
  // pop and even finish the job before this append runs; the entry is
  // weak and claimed, so the next drain simply prunes it.
  if (!job->claimed.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(job->factor->pending_mutex_);
    job->factor->pending_.push_back(job);
  }
  return ticket;
}

void SolveService::worker_loop() {
  while (std::shared_ptr<JobBase> job = queue_.pop()) {
    if (!job->try_claim()) continue;  // already batched or cancelled
    const Clock::time_point now = Clock::now();
    if (job->cancel_requested.load(std::memory_order_acquire)) {
      job->complete_unrun(RequestStatus::Cancelled, "cancelled by caller");
      continue;
    }
    if (job->past_deadline(now)) {
      job->complete_unrun(RequestStatus::Expired,
                          "deadline passed while queued");
      continue;
    }
    SPX_OBS(if (tracer_ != nullptr && job->trace_ctx.valid()) {
      tracer_->record_span("service.queue.wait", "service-", job->trace_ctx,
                           job->trace_enqueued, tracer_->now(), 0,
                           static_cast<std::int64_t>(job->id));
    });
    switch (job->kind) {
      case JobKind::Factorize: {
        auto fj = std::static_pointer_cast<FactorizeJob>(job);
        fj->stats.queue_wait_s = seconds_between(fj->enqueued, now);
        run_factorize(fj);
        break;
      }
      case JobKind::Solve: {
        auto sj = std::static_pointer_cast<SolveJob>(job);
        sj->stats.queue_wait_s = seconds_between(sj->enqueued, now);
        run_solve_batch(sj);
        break;
      }
    }
  }
}

bool SolveService::spend_retry(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(retry_mutex_);
  std::uint64_t& spent = retry_spent_[tenant];
  if (spent >= options_.tenant_retry_budget) return false;
  ++spent;
  counters_->note_retry();
  return true;
}

void SolveService::factorize_attempt(FactorizeJob& job,
                                     const SolverOptions& sopts,
                                     FactorizeResult& res) {
  RequestStats& st = job.stats;
  const PatternKey key = PatternKey::of(*job.matrix);
  std::shared_ptr<const Analysis> analysis = cache_.get_or_compute(
      key,
      [&] {
        Timer ta;
        Analysis an = spx::analyze(*job.matrix, sopts.analysis);
        st.analyze_s = ta.elapsed();
        return an;
      },
      &st.cache);
  auto factor = std::make_shared<Factor>();
  factor->solver_ = Solver<real_t>(sopts);
  factor->solver_.adopt_analysis(std::move(analysis), key.digest);
  Timer tf;
  factor->solver_.factorize(*job.matrix, job.fkind);
  st.factorize_s = tf.elapsed();
  st.run = factor->solver_.last_factorization_stats();
  const FactorQuality& q = st.run.quality;
  if (q.degraded() && q.pivot_growth() > options_.max_pivot_growth) {
    // Perturbation technically succeeded but the factors are too wild for
    // refinement to repair; classify as numerical failure (retryable: a
    // larger epsilon shrinks the 1/eps growth).
    throw NumericalError("pivot growth " + std::to_string(q.pivot_growth()) +
                         " exceeds the serviceable limit");
  }
  st.degraded = q.degraded();
  res.code = q.degraded() ? ErrorCode::NumericalDegraded : ErrorCode::None;
  res.factor = std::move(factor);
}

void SolveService::run_factorize(const std::shared_ptr<FactorizeJob>& job) {
  FactorizeResult res;
  RequestStats& st = job->stats;
  SolverOptions sopts = options_.solver;
  // Parent this request's solver/driver spans under one request span of
  // its own trace.
  obs::ScopedSpan req_span;
  SPX_OBS({
    req_span = obs::ScopedSpan(tracer_, "service.factorize", "service-",
                               job->trace_ctx, 0,
                               static_cast<std::int64_t>(job->id));
    sopts.instr.parent = req_span.context();
  });
  const int max_attempts = std::max(1, options_.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    st.attempts = attempt;
    ErrorCode code;
    std::string error;
    try {
      factorize_attempt(*job, sopts, res);
      res.status = RequestStatus::Done;
      st.code = res.code;
      counters_->note_factorize();
      counters_->note_completed();
      counters_->count_code(res.code);
      break;
    } catch (const InjectedFault& e) {
      code = ErrorCode::InjectedFault;
      error = e.what();
    } catch (const NumericalError& e) {
      code = ErrorCode::NumericalFailed;
      error = e.what();
    } catch (const std::bad_alloc&) {
      code = ErrorCode::OutOfMemory;
      error = "factor allocation failed";
    } catch (const std::exception& e) {
      code = ErrorCode::Internal;
      error = e.what();
    }
    // Retry transient-or-absorbable failures with escalating epsilon and
    // exponential backoff, within the tenant's retry budget.
    const bool retryable = code == ErrorCode::NumericalFailed ||
                           code == ErrorCode::InjectedFault ||
                           code == ErrorCode::OutOfMemory;
    if (retryable && attempt < max_attempts && spend_retry(job->tenant)) {
      if (code == ErrorCode::NumericalFailed) {
        sopts.pivot_threshold =
            (sopts.pivot_threshold > 0 ? sopts.pivot_threshold : 1e-12) *
            options_.eps_escalation;
      }
      if (options_.retry_backoff_s > 0) {
        obs::ScopedSpan backoff;
        SPX_OBS(backoff = obs::ScopedSpan(
                    tracer_, "service.retry.backoff", "service-",
                    req_span.context(), 0,
                    static_cast<std::int64_t>(job->id), attempt));
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options_.retry_backoff_s * static_cast<double>(1 << (attempt - 1))));
      }
      continue;
    }
    res.status = RequestStatus::Failed;
    res.code = code;
    res.error = std::move(error);
    st.code = code;
    counters_->note_failed();
    counters_->count_code(code);
    break;
  }
  st.completion_seq = 1 + counters_->completion_seq.fetch_add(1);
  res.stats = st;
  job->promise.set_value(std::move(res));
  job->notify_complete();
}

void SolveService::run_solve_batch(const std::shared_ptr<SolveJob>& first) {
  // Linger so that same-factor solves submitted moments later coalesce
  // into this batch instead of paying their own traversal.
  if (options_.batch_window > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.batch_window));
  }
  Factor& factor = *first->factor;
  std::vector<std::shared_ptr<SolveJob>> batch;
  batch.push_back(first);
  {
    std::lock_guard<std::mutex> lock(factor.pending_mutex_);
    auto& pending = factor.pending_;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      std::shared_ptr<SolveJob> job = pending[i].lock();
      if (job == nullptr || job->claimed.load(std::memory_order_acquire)) {
        continue;  // prune: done elsewhere, cancelled, or expired weak ref
      }
      if (static_cast<index_t>(batch.size()) >= options_.max_batch ||
          !job->try_claim()) {
        pending[kept++] = pending[i];  // keep for a later batch
        continue;
      }
      job->stats.queue_wait_s = seconds_between(job->enqueued, Clock::now());
      batch.push_back(std::move(job));
    }
    pending.resize(kept);
  }

  // Honor per-member cancellation/deadline now that they are claimed.
  const Clock::time_point now = Clock::now();
  std::vector<std::shared_ptr<SolveJob>> runnable;
  runnable.reserve(batch.size());
  for (std::shared_ptr<SolveJob>& job : batch) {
    if (job->cancel_requested.load(std::memory_order_acquire)) {
      job->complete_unrun(RequestStatus::Cancelled, "cancelled by caller");
    } else if (job->past_deadline(now)) {
      job->complete_unrun(RequestStatus::Expired,
                          "deadline passed while queued");
    } else {
      runnable.push_back(std::move(job));
    }
  }
  if (runnable.empty()) return;

  const index_t n = factor.n();
  const auto k = static_cast<index_t>(runnable.size());
  obs::ScopedSpan batch_span;
  SPX_OBS(batch_span = obs::ScopedSpan(
              tracer_, "service.solve.batch", "service-", first->trace_ctx,
              0, static_cast<std::int64_t>(first->id), k));
  try {
    Timer ts;
    std::vector<real_t> block(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(k));
    for (index_t c = 0; c < k; ++c) {
      std::copy(runnable[c]->rhs.begin(), runnable[c]->rhs.end(),
                block.begin() + static_cast<std::size_t>(c) * n);
    }
    const SolveReport report = factor.solver_.solve_multi(block, k);
    const double solve_s = ts.elapsed();
    const ErrorCode code = report.degraded ? ErrorCode::NumericalDegraded
                                           : ErrorCode::None;
    counters_->note_batch(static_cast<std::uint64_t>(k));
    for (index_t c = 0; c < k; ++c) {
      SolveJob& job = *runnable[c];
      SolveResult r;
      r.status = RequestStatus::Done;
      r.code = code;
      const auto* col = block.data() + static_cast<std::size_t>(c) * n;
      r.x.assign(col, col + n);
      job.stats.solve_s = solve_s;
      job.stats.batched_rhs = k;
      job.stats.code = code;
      job.stats.degraded = report.degraded;
      job.stats.backward_error = report.backward_error;
      counters_->note_solve();
      counters_->note_completed();
      counters_->count_code(code);
      job.stats.completion_seq = 1 + counters_->completion_seq.fetch_add(1);
      r.stats = job.stats;
      job.promise.set_value(std::move(r));
      job.notify_complete();
    }
  } catch (const std::exception& e) {
    ErrorCode code = ErrorCode::Internal;
    if (dynamic_cast<const InjectedFault*>(&e) != nullptr) {
      code = ErrorCode::InjectedFault;
    } else if (dynamic_cast<const NumericalError*>(&e) != nullptr) {
      code = ErrorCode::NumericalFailed;
    }
    for (const std::shared_ptr<SolveJob>& job : runnable) {
      SolveResult r;
      r.status = RequestStatus::Failed;
      r.code = code;
      r.error = e.what();
      counters_->note_failed();
      counters_->count_code(code);
      job->stats.code = code;
      job->stats.completion_seq = 1 + counters_->completion_seq.fetch_add(1);
      r.stats = job->stats;
      job->promise.set_value(std::move(r));
      job->notify_complete();
    }
  }
}

FactorHandle SolveService::adopt_factor(Solver<real_t> solver) {
  SPX_CHECK_ARG(solver.factorized(),
                "adopt_factor needs a factorized solver");
  // Seed the pattern cache so a later factorize of this pattern skips
  // the symbolic phase even though this factor bypassed the request path.
  std::shared_ptr<const Analysis> analysis = solver.analysis_shared();
  const PatternKey key{analysis->perm.size(),
                       static_cast<size_type>(analysis->nnz_a),
                       solver.pattern_digest()};
  cache_.insert(key, std::move(analysis));
  auto factor = std::make_shared<Factor>();
  factor->solver_ = std::move(solver);
  return factor;
}

bool SolveService::drain(double timeout_s) {
  draining_.store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lock(drain_mutex_);
  const auto empty = [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  };
  if (timeout_s <= 0) {
    drain_cv_.wait(lock, empty);
    return true;
  }
  return drain_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s), empty);
}

ServiceStats SolveService::stats() const {
  ServiceStats s;
  s.submitted = counters_->submitted.load();
  s.completed = counters_->completed.load();
  s.failed = counters_->failed.load();
  s.rejected = counters_->rejected.load();
  s.cancelled = counters_->cancelled.load();
  s.expired = counters_->expired.load();
  s.factorizes = counters_->factorizes.load();
  s.solves = counters_->solves.load();
  s.batches = counters_->batches.load();
  s.batched_rhs = counters_->batched_rhs.load();
  s.retries = counters_->retries.load();
  for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
    s.errors[i] = counters_->by_code[i].load();
  }
  s.queue_depth = queue_.depth();
  s.cache = cache_.stats();
  return s;
}

}  // namespace spx::service
