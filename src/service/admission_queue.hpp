// Bounded multi-tenant admission queue with weighted fair scheduling.
//
// Each tenant gets its own bounded queue; a submit beyond the bound is
// rejected immediately (backpressure -- callers get a Rejected result
// instead of the queue growing without limit).  Workers pop under smooth
// weighted round-robin across tenants with pending work (the nginx
// algorithm: every candidate accumulates its weight, the largest
// accumulator wins and pays back the total), so a weight-4 tenant gets
// four slots for every slot of a weight-1 tenant and nobody starves --
// with the default weight of 1 for every tenant this degenerates to the
// plain round-robin the service always had.  Within one tenant's queue
// ordering is deadline-aware: jobs with a deadline run earliest-deadline-
// first ahead of deadline-free jobs, which keep FIFO order (EDF within
// the weight class).
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/request.hpp"

namespace spx::service {

class AdmissionQueue {
 public:
  /// `registry` receives the spx_admission_* and spx_service_tenant_*
  /// series (null = the process-global registry).  `tenants` carries the
  /// per-tenant weight / capacity overrides; tenants not listed get
  /// weight 1 and `per_tenant_capacity`.
  explicit AdmissionQueue(std::size_t per_tenant_capacity,
                          obs::MetricsRegistry* registry = nullptr,
                          std::map<std::string, TenantConfig> tenants = {});

  /// Admits `job` to its tenant's queue (EDF position when it carries a
  /// deadline).  Returns false (caller completes the job as Rejected)
  /// when that queue is full or the queue is shut down.
  bool try_push(std::shared_ptr<JobBase> job);

  /// Blocks for the next job under weighted fair rotation; returns null
  /// once the queue is shut down AND drained by pop() callers.
  std::shared_ptr<JobBase> pop();

  /// Non-blocking pop (shutdown drain); null when empty.
  std::shared_ptr<JobBase> try_pop();

  /// Wakes all poppers; subsequent try_push calls are refused.  Queued
  /// jobs remain for pop()/try_pop() to drain.
  void shutdown();

  std::size_t depth() const;

  /// The effective weight of `tenant` (configured, or the default 1).
  double tenant_weight(const std::string& tenant) const;

 private:
  struct Tenant {
    std::deque<std::shared_ptr<JobBase>> q;
    double weight = 1.0;
    double wrr_current = 0.0;  ///< smooth-WRR accumulator
    std::size_t capacity = 1;
    obs::Counter* m_admitted = nullptr;  ///< spx_service_tenant_admitted_total
    obs::Counter* m_rejected = nullptr;  ///< spx_service_tenant_rejected_total
    obs::Counter* m_served = nullptr;    ///< spx_service_tenant_served_total
    obs::Gauge* m_depth = nullptr;       ///< spx_service_tenant_queue_depth
  };

  std::shared_ptr<JobBase> pop_locked();
  Tenant& tenant_locked(const std::string& name);

  const std::size_t capacity_;
  obs::MetricsRegistry* registry_;
  const std::map<std::string, TenantConfig> config_;
  obs::Counter* m_admitted_;  ///< spx_admission_admitted_total
  obs::Counter* m_rejected_;  ///< spx_admission_rejected_total (full/shutdown)
  obs::Gauge* m_depth_;       ///< spx_admission_queue_depth
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Tenants in first-seen order; ties in the weighted rotation break
  /// toward the earliest-seen tenant, keeping pops deterministic.
  std::vector<std::string> tenant_order_;
  std::unordered_map<std::string, Tenant> tenants_;
  std::size_t depth_ = 0;
  bool shutdown_ = false;
};

}  // namespace spx::service
