// Bounded multi-tenant admission queue with round-robin fairness.
//
// Each tenant gets its own FIFO of at most `per_tenant_capacity` requests;
// a submit beyond that bound is rejected immediately (backpressure --
// callers get a Rejected result instead of the queue growing without
// limit).  Workers pop in round-robin order across tenants with pending
// work, so a tenant flooding its queue delays only itself: every other
// tenant still gets one slot per rotation (no starvation).
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/request.hpp"

namespace spx::service {

class AdmissionQueue {
 public:
  /// `registry` receives the spx_admission_* series (null = the
  /// process-global registry).
  explicit AdmissionQueue(std::size_t per_tenant_capacity,
                          obs::MetricsRegistry* registry = nullptr);

  /// Admits `job` to its tenant's queue.  Returns false (caller completes
  /// the job as Rejected) when that queue is full or the queue is shut
  /// down.
  bool try_push(std::shared_ptr<JobBase> job);

  /// Blocks for the next job, rotating fairly across tenants; returns
  /// null once the queue is shut down AND drained by pop() callers.
  std::shared_ptr<JobBase> pop();

  /// Non-blocking pop (shutdown drain); null when empty.
  std::shared_ptr<JobBase> try_pop();

  /// Wakes all poppers; subsequent try_push calls are refused.  Queued
  /// jobs remain for pop()/try_pop() to drain.
  void shutdown();

  std::size_t depth() const;

 private:
  std::shared_ptr<JobBase> pop_locked();

  const std::size_t capacity_;
  obs::Counter* m_admitted_;  ///< spx_admission_admitted_total
  obs::Counter* m_rejected_;  ///< spx_admission_rejected_total (full/shutdown)
  obs::Gauge* m_depth_;       ///< spx_admission_queue_depth
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Tenants in first-seen order; the round-robin cursor walks this.
  std::vector<std::string> tenant_order_;
  std::unordered_map<std::string, std::deque<std::shared_ptr<JobBase>>>
      queues_;
  std::size_t rr_ = 0;
  std::size_t depth_ = 0;
  bool shutdown_ = false;
};

}  // namespace spx::service
