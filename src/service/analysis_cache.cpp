#include "service/analysis_cache.hpp"

namespace spx::service {

AnalysisCache::AnalysisCache(std::size_t max_bytes,
                             obs::MetricsRegistry* registry)
    : max_bytes_(max_bytes) {
  obs::MetricsRegistry& reg = obs::registry_or_global(registry);
  m_hits_ = &reg.counter("spx_analysis_cache_hits_total",
                         "Analysis-cache hits (including coalesced waits)");
  m_misses_ = &reg.counter("spx_analysis_cache_misses_total",
                           "Analysis-cache misses (fresh computes)");
  m_evictions_ = &reg.counter("spx_analysis_cache_evictions_total",
                              "Entries evicted under the byte budget");
  m_coalesced_ = &reg.counter(
      "spx_analysis_cache_coalesced_total",
      "Hits that joined an in-flight compute instead of duplicating it");
  m_bytes_ = &reg.gauge("spx_analysis_cache_bytes",
                        "Resident byte estimate of cached analyses");
  m_entries_ =
      &reg.gauge("spx_analysis_cache_entries", "Resident cached analyses");
}

std::size_t AnalysisCache::analysis_bytes(const Analysis& an) {
  std::size_t b = sizeof(Analysis);
  b += an.perm.new_to_old.capacity() * sizeof(index_t);
  b += an.perm.old_to_new.capacity() * sizeof(index_t);
  const SymbolicStructure& st = an.structure;
  b += st.panel_of_col.capacity() * sizeof(index_t);
  b += st.in_degree.capacity() * sizeof(index_t);
  b += st.panels.capacity() * sizeof(Panel);
  for (const Panel& p : st.panels) b += p.blocks.capacity() * sizeof(Block);
  b += st.targets.capacity() * sizeof(std::vector<UpdateEdge>);
  for (const auto& t : st.targets) b += t.capacity() * sizeof(UpdateEdge);
  return b;
}

void AnalysisCache::evict_over_budget_locked() {
  // Evict from the cold end; the entry just inserted sits at the front
  // and is evicted last (an analysis larger than the whole budget passes
  // through without residency).
  while (stats_.bytes > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    ++stats_.evictions;
    SPX_OBS(m_evictions_->inc());
    map_.erase(victim.key);
    lru_.pop_back();
  }
  stats_.entries = lru_.size();
}

void AnalysisCache::update_gauges_locked() {
  SPX_OBS({
    m_bytes_->set(static_cast<double>(stats_.bytes));
    m_entries_->set(static_cast<double>(stats_.entries));
  });
}

std::shared_ptr<const Analysis> AnalysisCache::get_or_compute(
    const PatternKey& key, const std::function<Analysis()>& compute,
    CacheOutcome* outcome) {
  if (!enabled()) {
    if (outcome != nullptr) *outcome = CacheOutcome::Bypass;
    return std::make_shared<const Analysis>(compute());
  }

  std::shared_future<std::shared_ptr<const Analysis>> pending;
  std::promise<std::shared_ptr<const Analysis>> promise;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = map_.find(key); it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      ++stats_.hits;
      SPX_OBS(m_hits_->inc());
      if (outcome != nullptr) *outcome = CacheOutcome::Hit;
      return it->second->analysis;
    }
    if (auto it = inflight_.find(key); it != inflight_.end()) {
      // Someone is computing this key right now; wait for their result
      // instead of duplicating the symbolic work.
      pending = it->second;
      ++stats_.hits;
      SPX_OBS({
        m_hits_->inc();
        m_coalesced_->inc();
      });
      if (outcome != nullptr) *outcome = CacheOutcome::Hit;
    } else {
      inflight_.emplace(key, promise.get_future().share());
      ++stats_.misses;
      SPX_OBS(m_misses_->inc());
      if (outcome != nullptr) *outcome = CacheOutcome::Miss;
    }
  }
  if (pending.valid()) return pending.get();  // rethrows compute failures

  std::shared_ptr<const Analysis> analysis;
  try {
    analysis = std::make_shared<const Analysis>(compute());
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  const std::size_t bytes = analysis_bytes(*analysis);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.push_front(Entry{key, analysis, bytes});
    map_[key] = lru_.begin();
    stats_.bytes += bytes;
    evict_over_budget_locked();
    update_gauges_locked();
    inflight_.erase(key);
  }
  promise.set_value(analysis);
  return analysis;
}

void AnalysisCache::insert(const PatternKey& key,
                           std::shared_ptr<const Analysis> analysis) {
  if (!enabled() || analysis == nullptr) return;
  const std::size_t bytes = analysis_bytes(*analysis);
  std::lock_guard<std::mutex> lock(mutex_);
  if (map_.find(key) != map_.end()) return;
  lru_.push_front(Entry{key, std::move(analysis), bytes});
  map_[key] = lru_.begin();
  stats_.bytes += bytes;
  evict_over_budget_locked();
  update_gauges_locked();
}

AnalysisCacheStats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AnalysisCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  map_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
  update_gauges_locked();
}

}  // namespace spx::service
