#include "service/options_builder.hpp"

namespace spx {

SolverOptions OptionsBuilder::solver_options() const {
  SolverOptions s = solver_;
  s.instr = instr_;
  return s;
}

RealDriverOptions OptionsBuilder::driver_options() const {
  RealDriverOptions d;
  d.cpu_variant = solver_.cpu_variant;
  d.instr = instr_;
  return d;
}

service::ServiceOptions OptionsBuilder::service_options() const {
  service::ServiceOptions svc = service_;
  svc.solver = solver_;
  svc.solver.instr = instr_;
  if (!solver_set_runtime_) {
    // Keep the service default (Sequential: scale by concurrent requests,
    // not nested pools) unless the caller picked a runtime explicitly.
    svc.solver.runtime = RuntimeKind::Sequential;
  }
  return svc;
}

}  // namespace spx
