// Layered options builder (DESIGN.md §11): set tracing / metrics /
// fault-injection knobs ONCE and materialize consistent option structs
// for every layer of the stack.
//
//   obs::Tracer tracer;
//   obs::MetricsRegistry registry;
//   spx::OptionsBuilder b;
//   b.metrics(&registry).tracer(&tracer)          // instrumentation layer
//    .runtime(RuntimeKind::Parsec).threads(8)     // solver layer
//    .workers(4).cache_bytes(64 << 20);           // service layer
//   service::SolveService svc(b.service_options());
//   Solver<double> solo(b.solver_options());      // same instrumentation
//
// Before this builder the same knobs lived in three places --
// RealDriverOptions::{trace,fault}, SolverOptions::fault, and the service
// config -- and had to be re-plumbed at every layer boundary.  The
// [[deprecated]] aliases that bridged one release are gone; the builder
// (and the InstrumentationOptions struct it fills, reachable directly as
// `options.instr`) is the only path.
#pragma once

#include "core/solver.hpp"
#include "runtime/real_driver.hpp"
#include "service/solve_service.hpp"

namespace spx {

class OptionsBuilder {
 public:
  // --- Instrumentation layer (inherited by every produced struct) ---

  /// Metrics sink; null (the default) means the process-global registry.
  OptionsBuilder& metrics(obs::MetricsRegistry* registry) {
    instr_.metrics = registry;
    return *this;
  }
  /// Span sink; null disables span tracing.  Must outlive every run.
  OptionsBuilder& tracer(obs::Tracer* tracer) {
    instr_.tracer = tracer;
    return *this;
  }
  /// Parent context for all downstream spans (rarely set by hand; the
  /// service threads per-request contexts automatically).
  OptionsBuilder& parent(obs::SpanContext ctx) {
    instr_.parent = ctx;
    return *this;
  }
  /// Legacy chrome-trace recorder fed with per-task events.
  OptionsBuilder& chrome_trace(TraceRecorder* trace) {
    instr_.trace = trace;
    return *this;
  }
  /// Fault-injection harness (task faults + allocation failures).
  OptionsBuilder& fault(FaultInjector* fault) {
    instr_.fault = fault;
    return *this;
  }

  // --- Solver layer ---

  OptionsBuilder& runtime(RuntimeKind kind) {
    solver_.runtime = kind;
    solver_set_runtime_ = true;
    return *this;
  }
  OptionsBuilder& threads(int n) {
    solver_.num_threads = n;
    return *this;
  }
  OptionsBuilder& gpu_streams(int n) {
    solver_.num_gpu_streams = n;
    return *this;
  }
  OptionsBuilder& cpu_variant(UpdateVariant v) {
    solver_.cpu_variant = v;
    return *this;
  }
  OptionsBuilder& pivot_threshold(double eps) {
    solver_.pivot_threshold = eps;
    return *this;
  }
  OptionsBuilder& perf_model_file(std::string path) {
    solver_.perf_model_file = std::move(path);
    return *this;
  }

  // --- Service layer ---

  OptionsBuilder& workers(int n) {
    service_.num_workers = n;
    return *this;
  }
  OptionsBuilder& queue_capacity(std::size_t n) {
    service_.queue_capacity = n;
    return *this;
  }
  OptionsBuilder& cache_bytes(std::size_t n) {
    service_.cache_bytes = n;
    return *this;
  }
  OptionsBuilder& batch_window(double seconds) {
    service_.batch_window = seconds;
    return *this;
  }
  OptionsBuilder& max_batch(index_t n) {
    service_.max_batch = n;
    return *this;
  }
  OptionsBuilder& max_attempts(int n) {
    service_.max_attempts = n;
    return *this;
  }
  OptionsBuilder& retry_backoff(double seconds) {
    service_.retry_backoff_s = seconds;
    return *this;
  }
  /// Service-wide default precision policy (per-tenant and per-request
  /// settings override it; see docs/SERVICE.md "Precision policy").
  OptionsBuilder& precision(service::PrecisionPolicy policy) {
    service_.precision = policy;
    return *this;
  }
  /// Convergence target for fp32+refinement serving; tripping it falls
  /// back to a full fp64 factorization.
  OptionsBuilder& mixed_tolerance(double tol) {
    service_.mixed_tolerance = tol;
    return *this;
  }
  /// Declares (or replaces) a tenant's QoS configuration: scheduling
  /// weight, queue capacity, and optional precision override.
  OptionsBuilder& tenant(const std::string& name,
                         service::TenantConfig config) {
    service_.tenants[name] = config;
    return *this;
  }

  // --- Materialized views (each call re-derives from current state) ---

  /// The shared instrumentation layer as configured so far.
  const obs::InstrumentationOptions& instrumentation() const {
    return instr_;
  }
  /// Solver options with the instrumentation layer attached.
  SolverOptions solver_options() const;
  /// Driver options with the instrumentation layer attached (for callers
  /// driving execute_real directly).
  RealDriverOptions driver_options() const;
  /// Service options whose inner solver carries the instrumentation
  /// layer; SolveService wires its cache/queue/counters from it.
  service::ServiceOptions service_options() const;

 private:
  obs::InstrumentationOptions instr_;
  SolverOptions solver_;
  service::ServiceOptions service_;
  /// ServiceOptions defaults its inner runtime to Sequential while a bare
  /// SolverOptions defaults to Native; remember whether the caller chose.
  bool solver_set_runtime_ = false;
};

}  // namespace spx
