// Observability types of the solve service: per-request statistics and
// service-wide counters, both exportable as JSON (common/json).  Tenant
// names are arbitrary UTF-8 -- the JSON writer escapes them -- so the
// stats surface never emits invalid output.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "runtime/run_stats.hpp"

namespace spx::service {

/// Terminal state of a service request.
enum class RequestStatus {
  Done,       ///< executed successfully
  Failed,     ///< executed but threw (e.g. NumericalError)
  Rejected,   ///< bounced at admission (tenant queue full)
  Cancelled,  ///< cancelled before execution started
  Expired     ///< deadline passed while queued
};

const char* to_string(RequestStatus s);

/// What the analysis cache did for a factorize request.
enum class CacheOutcome {
  Hit,    ///< shared an existing (or in-flight) analysis
  Miss,   ///< computed and inserted a new analysis
  Bypass  ///< cache disabled; computed privately
};

const char* to_string(CacheOutcome c);

/// Per-request statistics, attached to every result the service returns.
struct RequestStats {
  std::uint64_t id = 0;
  std::string tenant;
  double queue_wait_s = 0;  ///< admission-queue wait until claimed
  double analyze_s = 0;     ///< symbolic analysis time (cache misses only)
  double factorize_s = 0;   ///< numeric factorization wall time
  double solve_s = 0;       ///< triangular solve wall time (whole batch)
  CacheOutcome cache = CacheOutcome::Bypass;
  index_t batched_rhs = 0;  ///< columns in the coalesced solve call
  /// Global completion order (1-based): request k was the k-th to reach a
  /// terminal status.  Lets callers audit fairness across tenants.
  std::uint64_t completion_seq = 0;
  RunStats run;  ///< scheduler stats of the factorization (factorize only)

  json::Value to_json() const;
};

/// Analysis-cache counters (a snapshot; see service/analysis_cache.hpp).
struct AnalysisCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t bytes = 0;    ///< current resident estimate
  std::size_t entries = 0;  ///< current resident count

  json::Value to_json() const;
};

/// Service-wide counters (a snapshot of SolveService::stats()).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< finished with status Done
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t factorizes = 0;   ///< factorize requests completed Done
  std::uint64_t solves = 0;       ///< solve requests completed Done
  std::uint64_t batches = 0;      ///< coalesced solve_multi calls issued
  std::uint64_t batched_rhs = 0;  ///< total RHS columns across batches
  std::size_t queue_depth = 0;    ///< requests currently admitted + waiting
  AnalysisCacheStats cache;

  json::Value to_json() const;
};

}  // namespace spx::service
