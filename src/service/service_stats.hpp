// Observability types of the solve service: per-request statistics and
// service-wide counters, all implementing obs::Exportable over the shared
// JsonWriter (the one export API; see docs/OBSERVABILITY.md).  Tenant
// names are arbitrary UTF-8 -- the JSON writer escapes them -- so the
// stats surface never emits invalid output.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/json.hpp"
#include "runtime/run_stats.hpp"

namespace spx::service {

/// Terminal state of a service request.
enum class RequestStatus {
  Done,       ///< executed successfully
  Failed,     ///< executed but threw (e.g. NumericalError)
  Rejected,   ///< bounced at admission (tenant queue full)
  Cancelled,  ///< cancelled before execution started
  Expired     ///< deadline passed while queued
};

const char* to_string(RequestStatus s);

/// Structured classification of how a request terminated -- the machine-
/// readable companion of RequestStatus (which only says *that* it failed)
/// and the key of the per-code counters in ServiceStats.
enum class ErrorCode {
  None,               ///< done at full accuracy
  NumericalDegraded,  ///< done, but pivots were perturbed + refinement ran
  NumericalFailed,    ///< numerical breakdown (indefinite / zero pivot)
  InjectedFault,      ///< the fault-injection harness killed the attempt
  OutOfMemory,        ///< factor allocation failed
  Overloaded,         ///< rejected at admission (tenant queue full)
  Cancelled,          ///< cancelled before execution
  Timeout,            ///< deadline passed while queued
  Internal            ///< shutdown drain or unexpected exception
};

inline constexpr std::size_t kErrorCodeCount = 9;

const char* to_string(ErrorCode c);

/// The code a never-executed terminal status maps to.
ErrorCode code_for_unrun(RequestStatus s);

/// What the analysis cache did for a factorize request.
enum class CacheOutcome {
  Hit,    ///< shared an existing (or in-flight) analysis
  Miss,   ///< computed and inserted a new analysis
  Bypass  ///< cache disabled; computed privately
};

const char* to_string(CacheOutcome c);

/// Numeric precision policy of the serving path, resolved per request
/// from the request override, the tenant's TenantConfig, then the
/// service-wide default (docs/SERVICE.md "Precision policy").
enum class PrecisionPolicy {
  Fp64,        ///< factor and solve in double -- the classic path
  Fp32Refine,  ///< factor in float, iteratively refine solves to fp64
  Auto         ///< Fp32Refine, but skip fp32 for patterns that already
               ///< tripped the fallback gate (adaptive)
};

const char* to_string(PrecisionPolicy p);

/// Per-tenant QoS + serving configuration (ServiceOptions::tenants).
/// Tenants absent from that map get the defaults below, which reproduce
/// the historical behavior exactly: equal round-robin shares, the
/// service-wide queue bound, and the service-wide precision policy.
struct TenantConfig {
  /// Weighted share of worker pops under contention: the admission queue
  /// runs smooth weighted round-robin across tenants with pending work,
  /// so a weight-4 tenant gets 4 slots for every slot of a weight-1
  /// tenant.  1.0 = plain round-robin.
  double weight = 1.0;
  /// Per-tenant admission bound; 0 = ServiceOptions::queue_capacity.
  std::size_t queue_capacity = 0;
  /// Default precision policy for this tenant's factorizations (a
  /// RequestOptions::precision override still wins).  Unset = the
  /// service-wide ServiceOptions::precision.
  PrecisionPolicy precision = PrecisionPolicy::Fp64;
  /// True when `precision` was set explicitly (distinguishes "tenant
  /// wants fp64" from "tenant has no opinion").
  bool precision_set = false;
};

/// Per-request statistics, attached to every result the service returns.
struct RequestStats : obs::Exportable {
  std::uint64_t id = 0;
  std::string tenant;
  double queue_wait_s = 0;  ///< admission-queue wait until claimed
  double analyze_s = 0;     ///< symbolic analysis time (cache misses only)
  double factorize_s = 0;   ///< numeric factorization wall time
  double solve_s = 0;       ///< triangular solve wall time (whole batch)
  CacheOutcome cache = CacheOutcome::Bypass;
  index_t batched_rhs = 0;  ///< columns in the coalesced solve call
  ErrorCode code = ErrorCode::None;  ///< structured outcome classification
  int attempts = 0;         ///< execution attempts (factorize retry loop)
  bool degraded = false;    ///< static pivoting perturbed this request
  /// Max-norm relative residual after refinement; populated when the
  /// request degraded (static pivoting) or the fp32 path probed quality.
  double backward_error = 0;
  PrecisionPolicy precision = PrecisionPolicy::Fp64;  ///< policy in effect
  bool fp32 = false;  ///< served by the float-factor + fp64-refine path
  /// The fp32 quality/backward-error gate tripped and the service
  /// re-factorized in fp64 automatically (Fp32Refine/Auto policies).
  bool precision_fallback = false;
  int refine_iterations = 0;  ///< mixed-precision refinement sweeps
  /// Global completion order (1-based): request k was the k-th to reach a
  /// terminal status.  Lets callers audit fairness across tenants.
  std::uint64_t completion_seq = 0;
  RunStats run;  ///< scheduler stats of the factorization (factorize only)

  void export_json(obs::JsonWriter& w) const override;
  json::Value to_json() const;  ///< shim over the Exportable path
};

/// Analysis-cache counters (a snapshot; see service/analysis_cache.hpp).
struct AnalysisCacheStats : obs::Exportable {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t bytes = 0;    ///< current resident estimate
  std::size_t entries = 0;  ///< current resident count

  void export_json(obs::JsonWriter& w) const override;
  json::Value to_json() const;  ///< shim over the Exportable path
};

/// Per-tenant slice of the service counters, keyed by tenant name in
/// ServiceStats::tenants and mirrored by the spx_service_tenant_*
/// metric family.
struct TenantStats : obs::Exportable {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< finished with status Done
  std::uint64_t rejected = 0;   ///< bounced at admission
  std::uint64_t factorizes = 0;
  std::uint64_t refactorizes = 0;
  std::uint64_t solves = 0;
  std::uint64_t fp32_served = 0;     ///< requests the fp32 path served
  std::uint64_t fp64_fallbacks = 0;  ///< fp32 gate trips -> fp64 refactor
  double weight = 1.0;               ///< configured QoS weight

  void export_json(obs::JsonWriter& w) const override;
};

/// Service-wide counters (a snapshot of SolveService::stats()).
struct ServiceStats : obs::Exportable {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< finished with status Done
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t factorizes = 0;   ///< factorize requests completed Done
  std::uint64_t refactorizes = 0;  ///< refactorize requests completed Done
  std::uint64_t solves = 0;       ///< solve requests completed Done
  std::uint64_t batches = 0;      ///< coalesced solve_multi calls issued
  std::uint64_t batched_rhs = 0;  ///< total RHS columns across batches
  std::uint64_t retries = 0;      ///< factorize re-attempts issued
  std::size_t queue_depth = 0;    ///< requests currently admitted + waiting
  /// Terminal outcomes per ErrorCode (indexed by the enum's value); the
  /// Done-at-full-accuracy slot [None] counts too, so the array sums to
  /// every terminal request.
  std::array<std::uint64_t, kErrorCodeCount> errors{};
  AnalysisCacheStats cache;
  /// Per-tenant slices (every tenant ever seen by this service).
  std::map<std::string, TenantStats> tenants;

  std::uint64_t error_count(ErrorCode c) const {
    return errors[static_cast<std::size_t>(c)];
  }
  /// Coarse health from the counters: "ok" (nothing failed), "degraded"
  /// (some failures/degradations but work still completes), "failing"
  /// (failures dominate completions).
  const char* health() const;

  void export_json(obs::JsonWriter& w) const override;
  json::Value to_json() const;  ///< shim over the Exportable path
};

}  // namespace spx::service
