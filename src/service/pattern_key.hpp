// Cache key for the analysis cache: identifies a sparsity pattern.
//
// Two matrices share an analysis iff they have the same shape, nonzero
// count, and structure digest.  The digest (mat/csc.hpp pattern_digest) is
// a 64-bit FNV-1a over (n, colptr, rowind); n and nnz are compared
// explicitly as well, so a collision would need two different patterns of
// identical size hashing to the same 64-bit value -- vanishing at service
// scale, and a miss there still only produces a correct-but-redundant
// analysis (the factorize itself rechecks the digest).
#pragma once

#include <cstdint>

#include "mat/csc.hpp"

namespace spx::service {

struct PatternKey {
  index_t n = 0;
  size_type nnz = 0;
  std::uint64_t digest = 0;

  friend bool operator==(const PatternKey&, const PatternKey&) = default;

  template <typename T>
  static PatternKey of(const CscMatrix<T>& a) {
    return PatternKey{a.ncols(), a.nnz(), pattern_digest(a)};
  }
};

struct PatternKeyHash {
  std::size_t operator()(const PatternKey& k) const {
    // The digest is already well-mixed; fold in n for cheap insurance.
    return static_cast<std::size_t>(
        k.digest ^ (static_cast<std::uint64_t>(k.n) * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace spx::service
