#include "obs/export.hpp"

#include <cstdio>
#include <iomanip>
#include <ios>
#include <ostream>
#include <sstream>

namespace spx::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::object(std::string key, const Exportable& e) {
  JsonWriter nested;
  e.export_json(nested);
  return field(std::move(key), std::move(nested).take());
}

json::Value to_json(const Exportable& e) {
  JsonWriter w;
  e.export_json(w);
  return std::move(w).take();
}

namespace {

// Shortest faithful decimal: integers print bare (the common counter
// case), everything else round-trips via %.17g -- the same policy as
// common/json.cpp, so Prometheus and JSON exports agree on values.
std::string format_number(double d) {
  char buf[40];
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      d < 1e15 && d > -1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  return buf;
}

// Prometheus label values escape backslash, double quote, and newline.
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

// `{k="v",...}` with an optional extra label (histograms' `le`); empty
// string when there are no labels at all.
std::string label_block(const Labels& labels, std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + prom_escape(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + prom_escape(extra_value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

void write_prometheus(const MetricsRegistry& registry, std::ostream& out) {
  for (const MetricsRegistry::FamilySnapshot& f : registry.snapshot()) {
    if (!f.help.empty()) {
      out << "# HELP " << f.name << " " << f.help << "\n";
    }
    out << "# TYPE " << f.name << " " << to_string(f.type) << "\n";
    for (const MetricsRegistry::SeriesSnapshot& s : f.series) {
      if (f.type != MetricType::Histogram) {
        out << f.name << label_block(s.labels) << " "
            << format_number(s.value) << "\n";
        continue;
      }
      for (std::size_t i = 0; i < s.hist.cumulative.size(); ++i) {
        const std::string le = i < f.bounds.size()
                                   ? format_number(f.bounds[i])
                                   : std::string("+Inf");
        out << f.name << "_bucket" << label_block(s.labels, "le", le) << " "
            << s.hist.cumulative[i] << "\n";
      }
      out << f.name << "_sum" << label_block(s.labels) << " "
          << format_number(s.hist.sum) << "\n";
      out << f.name << "_count" << label_block(s.labels) << " "
          << s.hist.count << "\n";
    }
  }
}

std::string prometheus_text(const MetricsRegistry& registry) {
  std::ostringstream out;
  write_prometheus(registry, out);
  return out.str();
}

json::Value metrics_to_json(const MetricsRegistry& registry) {
  json::Value root = json::Value::object();
  for (const MetricsRegistry::FamilySnapshot& f : registry.snapshot()) {
    json::Value fam = json::Value::object();
    fam.set("type", json::Value(std::string(to_string(f.type))));
    if (!f.help.empty()) fam.set("help", json::Value(f.help));
    json::Value series = json::Value::array();
    for (const MetricsRegistry::SeriesSnapshot& s : f.series) {
      json::Value one = json::Value::object();
      if (!s.labels.empty()) {
        json::Value labels = json::Value::object();
        for (const auto& [k, v] : s.labels) {
          labels.set(k, json::Value(v));
        }
        one.set("labels", std::move(labels));
      }
      if (f.type == MetricType::Histogram) {
        json::Value buckets = json::Value::array();
        for (const std::uint64_t c : s.hist.cumulative) {
          buckets.push_back(json::Value(static_cast<double>(c)));
        }
        one.set("buckets", std::move(buckets));
        one.set("count", json::Value(static_cast<double>(s.hist.count)));
        one.set("sum", json::Value(s.hist.sum));
      } else {
        one.set("value", json::Value(s.value));
      }
      series.push_back(std::move(one));
    }
    fam.set("series", std::move(series));
    root.set(f.name, std::move(fam));
  }
  return root;
}

void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        std::ostream& out) {
  // Fixed-point microseconds with three decimals (nanosecond resolution):
  // the default 6-significant-digit float formatting rounds ts to whole
  // milliseconds once a run passes the one-second mark.
  const std::ios_base::fmtflags flags = out.flags();
  const std::streamsize precision = out.precision();
  out << std::fixed << std::setprecision(3);
  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out << ",\n";
    first = false;
    std::string name = s.name;
    if (s.arg0 >= 0) name += " p" + std::to_string(s.arg0);
    if (s.arg1 >= 0) name += " e" + std::to_string(s.arg1);
    const std::string tid = s.track + std::to_string(s.resource);
    out << "  {\"name\": \"" << json_escape(name) << "\", \"cat\": \""
        << json_escape(s.name) << "\", \"ph\": \"X\", \"pid\": 0, "
        << "\"tid\": \"" << json_escape(tid) << "\", \"ts\": " << s.start * 1e6
        << ", \"dur\": " << (s.end - s.start) * 1e6 << "}";
  }
  out << "\n]}\n";
  out.flags(flags);
  out.precision(precision);
}

json::Value spans_to_json(const std::vector<SpanRecord>& spans) {
  json::Value arr = json::Value::array();
  for (const SpanRecord& s : spans) {
    json::Value one = json::Value::object();
    one.set("trace", json::Value(static_cast<double>(s.trace_id)));
    one.set("span", json::Value(static_cast<double>(s.span_id)));
    if (s.parent_id != 0) {
      one.set("parent", json::Value(static_cast<double>(s.parent_id)));
    }
    one.set("name", json::Value(std::string(s.name)));
    one.set("track", json::Value(s.track + std::to_string(s.resource)));
    if (s.arg0 >= 0) one.set("arg0", json::Value(double(s.arg0)));
    if (s.arg1 >= 0) one.set("arg1", json::Value(double(s.arg1)));
    one.set("start_s", json::Value(s.start));
    one.set("end_s", json::Value(s.end));
    arr.push_back(std::move(one));
  }
  return arr;
}

}  // namespace spx::obs
