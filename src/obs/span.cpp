#include "obs/span.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spx::obs {

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity), epoch_(Clock::now()) {
  SPX_CHECK_ARG(capacity_ > 0, "Tracer capacity must be positive");
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void Tracer::record(const SpanRecord& r) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(r);
  } else {
    ring_[write_count_ % capacity_] = r;
  }
  ++write_count_;
}

SpanContext Tracer::record_span(const char* name, const char* track,
                                SpanContext parent, double start, double end,
                                int resource, std::int64_t arg0,
                                std::int64_t arg1) {
  SpanRecord r;
  r.name = name;
  r.track = track;
  r.resource = resource;
  r.arg0 = arg0;
  r.arg1 = arg1;
  r.start = start;
  r.end = end;
  r.parent_id = parent.span_id;
  const SpanContext ctx = next_span(parent);
  r.trace_id = ctx.trace_id;
  r.span_id = ctx.span_id;
  record(r);
  return ctx;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (write_count_ <= capacity_) return ring_;
  // The ring wrapped: rotate so the oldest retained span comes first.
  std::vector<SpanRecord> out;
  out.reserve(capacity_);
  const std::size_t head = write_count_ % capacity_;
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_count_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_count_ > capacity_ ? write_count_ - capacity_ : 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  write_count_ = 0;
}

}  // namespace spx::obs
