// Umbrella header and the SPX_OBS macro seam of the observability layer.
//
// All instrumentation in hot paths goes through SPX_OBS(...):
//
//   SPX_OBS(counters.tasks->inc());
//
// Compiled with -DSPX_OBS_ENABLED=0 the statement vanishes entirely; in
// the default build it costs one relaxed atomic load of the process-wide
// enable flag before evaluating its argument, so `obs::set_enabled(false)`
// turns the whole layer off at runtime for near-zero cost (the <5%
// makespan acceptance gate in ISSUE/EXPERIMENTS is measured through this
// seam by `bench_service --metrics`).
#pragma once

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#ifndef SPX_OBS_ENABLED
#define SPX_OBS_ENABLED 1
#endif

namespace spx::obs {

namespace detail {
/// Process-wide runtime switch behind SPX_OBS (default: on).
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}
}  // namespace detail

inline bool enabled() {
#if SPX_OBS_ENABLED
  return detail::enabled_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

}  // namespace spx::obs

#if SPX_OBS_ENABLED
#define SPX_OBS(statement)            \
  do {                                \
    if (::spx::obs::enabled()) {      \
      statement;                      \
    }                                 \
  } while (0)
#else
#define SPX_OBS(statement) \
  do {                     \
  } while (0)
#endif

// Reading a [[deprecated]] compatibility alias inside the library (to
// honor it) must not warn; legacy *callers* setting the field still do.
#define SPX_SUPPRESS_DEPRECATED_BEGIN \
  _Pragma("GCC diagnostic push")      \
  _Pragma("GCC diagnostic ignored \"-Wdeprecated-declarations\"")
#define SPX_SUPPRESS_DEPRECATED_END _Pragma("GCC diagnostic pop")
