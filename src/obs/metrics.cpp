#include "obs/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spx::obs {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    SPX_CHECK_ARG(bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly ascending");
  }
  const std::size_t n = bounds_.size() + 1;  // + the +Inf bucket
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) s.counts[i].store(0);
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  const std::size_t n = bounds_.size() + 1;
  std::vector<std::uint64_t> per_bucket(n, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < n; ++i) {
      per_bucket[i] += s.counts[i].load(std::memory_order_relaxed);
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  out.cumulative.resize(n);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    running += per_bucket[i];
    out.cumulative[i] = running;
  }
  out.count = running;
  return out;
}

std::vector<double> Histogram::duration_bounds() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
          30.0, 100.0};
}

std::vector<double> Histogram::byte_bounds() {
  return {1024.0,       4096.0,       16384.0,     65536.0,
          262144.0,     1048576.0,    4194304.0,   16777216.0,
          67108864.0,   268435456.0};
}

const char* to_string(MetricType t) {
  switch (t) {
    case MetricType::Counter:
      return "counter";
    case MetricType::Gauge:
      return "gauge";
    case MetricType::Histogram:
      return "histogram";
  }
  return "?";
}

namespace {

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

// One (labels -> metric) instance inside a family.  Exactly one of the
// three pointers is set, matching the family's type.
struct MetricsRegistry::Series {
  Labels labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct MetricsRegistry::Family {
  std::string name;
  std::string help;
  MetricType type = MetricType::Counter;
  std::vector<double> bounds;  ///< histogram families only
  std::vector<std::unique_ptr<Series>> series;

  Series& find_or_add(Labels labels) {
    for (const auto& s : series) {
      if (s->labels == labels) return *s;
    }
    series.push_back(std::make_unique<Series>());
    series.back()->labels = std::move(labels);
    return *series.back();
  }
};

// Out of line so TUs that only see the header can construct and destroy
// a registry (Family is an incomplete type there).
MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Family& MetricsRegistry::family(std::string_view name,
                                                 MetricType type,
                                                 std::string_view help) {
  for (const auto& f : families_) {
    if (f->name == name) {
      SPX_CHECK_ARG(f->type == type,
                    "metric '" + std::string(name) +
                        "' already registered as a different type");
      return *f;
    }
  }
  families_.push_back(std::make_unique<Family>());
  Family& f = *families_.back();
  f.name = std::string(name);
  f.help = std::string(help);
  f.type = type;
  return f;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& s = family(name, MetricType::Counter, help)
                  .find_or_add(sorted(std::move(labels)));
  if (s.counter == nullptr) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& s = family(name, MetricType::Gauge, help)
                  .find_or_add(sorted(std::move(labels)));
  if (s.gauge == nullptr) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      std::string_view help, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& f = family(name, MetricType::Histogram, help);
  if (f.series.empty()) {
    f.bounds = bounds;
  } else {
    SPX_CHECK_ARG(f.bounds == bounds,
                  "histogram '" + std::string(name) +
                      "' re-registered with different bounds");
  }
  Series& s = f.find_or_add(sorted(std::move(labels)));
  if (s.histogram == nullptr) {
    s.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *s.histogram;
}

std::vector<MetricsRegistry::FamilySnapshot> MetricsRegistry::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& f : families_) {
    FamilySnapshot fs;
    fs.name = f->name;
    fs.help = f->help;
    fs.type = f->type;
    fs.bounds = f->bounds;
    for (const auto& s : f->series) {
      SeriesSnapshot ss;
      ss.labels = s->labels;
      switch (f->type) {
        case MetricType::Counter:
          ss.value = s->counter->value();
          break;
        case MetricType::Gauge:
          ss.value = s->gauge->value();
          break;
        case MetricType::Histogram:
          ss.hist = s->histogram->snapshot();
          ss.value = ss.hist.sum;
          break;
      }
      fs.series.push_back(std::move(ss));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

double MetricsRegistry::value(std::string_view name,
                              const Labels& labels) const {
  const Labels want = sorted(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& f : families_) {
    if (f->name != name) continue;
    for (const auto& s : f->series) {
      if (s->labels != want) continue;
      switch (f->type) {
        case MetricType::Counter:
          return s->counter->value();
        case MetricType::Gauge:
          return s->gauge->value();
        case MetricType::Histogram:
          return static_cast<double>(s->histogram->snapshot().count);
      }
    }
  }
  return 0.0;
}

}  // namespace spx::obs
