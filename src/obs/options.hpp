// The shared instrumentation layer of the layered options design
// (DESIGN.md §11): one struct carrying every tracing / metrics /
// fault-injection knob, embedded by RealDriverOptions, SolverOptions and
// (through SolverOptions) service::ServiceOptions, so the knobs are set
// once -- e.g. via spx::OptionsBuilder (service/options_builder.hpp) --
// and inherited down the stack instead of being re-plumbed per layer.
#pragma once

#include "obs/span.hpp"

namespace spx {
class TraceRecorder;
class FaultInjector;
}  // namespace spx

namespace spx::obs {

class MetricsRegistry;
class Tracer;

struct InstrumentationOptions {
  /// Metrics sink; null means the process-global registry (metrics are
  /// always on unless the SPX_OBS seam is disabled).
  MetricsRegistry* metrics = nullptr;
  /// Span sink; null disables span tracing.  Must outlive the run.
  Tracer* tracer = nullptr;
  /// Parent context for every span emitted downstream: the solver parents
  /// its analyze/factorize/solve spans here, the driver its task spans.
  SpanContext parent;
  /// Legacy chrome-trace recorder (runtime/trace.hpp), kept as a sink for
  /// per-task events; itself backed by a bounded span ring.
  spx::TraceRecorder* trace = nullptr;
  /// Fault-injection harness consulted at task start and factor
  /// allocation.  Must outlive the run.
  spx::FaultInjector* fault = nullptr;
};

}  // namespace spx::obs
