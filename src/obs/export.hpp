// The one export API of the observability layer (docs/OBSERVABILITY.md):
//
//   * Exportable + JsonWriter -- the single JSON-emission interface that
//     RunStats, FactorQuality, and the service stats implement (replacing
//     three divergent hand-rolled emitters; golden keys preserved).
//   * Prometheus text exposition over a MetricsRegistry scrape.
//   * Structured JSON over a MetricsRegistry scrape or a span stream.
//   * Chrome-tracing JSON over a span stream (the format the legacy
//     TraceRecorder used to hand-roll; byte-compatible for task spans).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace spx::obs {

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// and control characters).
std::string json_escape(std::string_view s);

class Exportable;

/// Structured-JSON emission helper shared by every Exportable: builds a
/// json::Value object field by field, so emitters state their schema
/// (golden keys) without hand-rolling json::Value plumbing.
class JsonWriter {
 public:
  JsonWriter() : value_(json::Value::object()) {}

  JsonWriter& field(std::string key, double v) {
    value_.set(std::move(key), json::Value(v));
    return *this;
  }
  JsonWriter& field(std::string key, bool v) {
    value_.set(std::move(key), json::Value(v));
    return *this;
  }
  JsonWriter& field(std::string key, std::string_view v) {
    value_.set(std::move(key), json::Value(std::string(v)));
    return *this;
  }
  JsonWriter& field(std::string key, const char* v) {
    return field(std::move(key), std::string_view(v));
  }
  /// Integer counters (index_t, uint64_t, int) serialize as numbers.
  template <typename T>
    requires std::is_integral_v<T>
  JsonWriter& field(std::string key, T v) {
    return field(std::move(key), static_cast<double>(v));
  }
  /// Escape hatch for pre-built values (arrays, parsed documents).
  JsonWriter& field(std::string key, json::Value v) {
    value_.set(std::move(key), std::move(v));
    return *this;
  }
  /// Numeric array field from any range of arithmetic values.
  template <typename Range>
  JsonWriter& number_array(std::string key, const Range& range) {
    json::Value arr = json::Value::array();
    for (const auto& x : range) {
      arr.push_back(json::Value(static_cast<double>(x)));
    }
    return field(std::move(key), std::move(arr));
  }
  /// Nested object written by `fill(JsonWriter&)`.
  template <typename F>
    requires std::is_invocable_v<F, JsonWriter&>
  JsonWriter& object(std::string key, F&& fill) {
    JsonWriter nested;
    fill(nested);
    return field(std::move(key), std::move(nested).take());
  }
  /// Nested object from another Exportable.
  JsonWriter& object(std::string key, const Exportable& e);

  json::Value take() && { return std::move(value_); }

 private:
  json::Value value_;
};

/// Anything that can serialize itself through the shared JsonWriter.
/// Implementations promise stable keys (the golden-key tests pin them).
class Exportable {
 public:
  virtual ~Exportable() = default;
  virtual void export_json(JsonWriter& w) const = 0;
};

/// Runs `e` through a JsonWriter and returns the finished value.
json::Value to_json(const Exportable& e);

// ---- metrics exporters --------------------------------------------------

/// Prometheus text exposition format, version 0.0.4: `# HELP` / `# TYPE`
/// headers, one `name{labels} value` line per series, histogram
/// `_bucket`/`_sum`/`_count` expansion.  Families appear in registration
/// order, so output is deterministic for a deterministic workload.
void write_prometheus(const MetricsRegistry& registry, std::ostream& out);
std::string prometheus_text(const MetricsRegistry& registry);

/// The same scrape as a structured JSON object keyed by family name.
json::Value metrics_to_json(const MetricsRegistry& registry);

// ---- span exporters -----------------------------------------------------

/// Chrome-tracing "traceEvents" JSON (complete events, microseconds) over
/// a span snapshot: one row per (track, resource), names of task spans
/// rendered as "<kind> p<panel> [e<edge>]" exactly like the legacy
/// TraceRecorder emitter this replaces.
void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        std::ostream& out);

/// Structured JSON span dump (ids, parent links, track, args, times).
json::Value spans_to_json(const std::vector<SpanRecord>& spans);

}  // namespace spx::obs
