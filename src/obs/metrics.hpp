// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with Prometheus-style names and labels.
//
// Hot-path writes are lock-free: every metric is sharded into
// cache-line-sized slots, each worker thread sticks to one shard
// (round-robin assignment on first touch), and increments are relaxed
// atomic adds.  A scrape (snapshot / Prometheus exposition / JSON, see
// obs/export.hpp) sums the shards; totals are exact because shards are
// only ever added to.  Registration (`registry.counter(...)`) takes a
// mutex and should be done once per site -- callers keep the returned
// reference, which stays valid for the registry's lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spx::obs {

/// Label set of one metric instance, e.g. {{"kind", "panel"}}.  Kept
/// sorted by key so {a=1,b=2} and {b=2,a=1} name the same time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Shards per metric; a power of two >= typical worker counts.
inline constexpr std::size_t kMetricShards = 16;

/// This thread's shard slot (stable per thread, round-robin assigned).
std::size_t shard_index();

/// Monotonically increasing value.  Doubles so second-counters work; an
/// integer-incremented counter is exact up to 2^53.
class Counter {
 public:
  void inc(double n = 1.0) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  double value() const {
    double total = 0.0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<double> v{0.0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time value (queue depth, resident bytes).  `set` is a plain
/// store: last writer wins, which is the right semantics for a snapshot
/// quantity.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double n) { v_.fetch_add(n, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (Prometheus semantics: `bounds` are inclusive
/// upper bounds, plus an implicit +Inf bucket; snapshot counts are
/// cumulative).
class Histogram {
 public:
  /// `bounds` must be strictly ascending; throws InvalidArgument else.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) {
    Shard& s = shards_[shard_index()];
    s.counts[bucket_of(x)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(x, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::vector<std::uint64_t> cumulative;  ///< per bound, then +Inf
    std::uint64_t count = 0;                ///< total observations
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Default duration buckets: 100us .. ~100s, quarter-decade spacing.
  static std::vector<double> duration_bounds();

  /// Default size buckets: 1 KiB .. 256 MiB, factor-of-4 spacing (staging
  /// transfer and allocation sizes).
  static std::vector<double> byte_bounds();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  std::size_t bucket_of(double x) const {
    std::size_t i = 0;
    while (i < bounds_.size() && x > bounds_[i]) ++i;
    return i;
  }

  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

enum class MetricType { Counter, Gauge, Histogram };

const char* to_string(MetricType t);

/// Named collection of metric families.  One process-global instance
/// (`global()`) backs default instrumentation; tests and benchmarks can
/// construct private registries for exact, isolated accounting.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every default-configured component
  /// records into.
  static MetricsRegistry& global();

  /// Returns (registering on first use) the metric with this name and
  /// label set.  `help` is kept from the first registration.  Throws
  /// InvalidArgument when `name` exists with a different type, or when a
  /// histogram is re-requested with different bounds.
  Counter& counter(std::string_view name, std::string_view help = "",
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = "",
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view help = "", Labels labels = {});

  /// One scraped time series: its labels plus either a scalar value or,
  /// for histograms, the cumulative bucket snapshot.
  struct SeriesSnapshot {
    Labels labels;
    double value = 0.0;          ///< counter/gauge
    Histogram::Snapshot hist;    ///< histogram only
  };
  /// One scraped family, in registration order.
  struct FamilySnapshot {
    std::string name;
    std::string help;
    MetricType type = MetricType::Counter;
    std::vector<double> bounds;  ///< histogram only
    std::vector<SeriesSnapshot> series;
  };
  std::vector<FamilySnapshot> snapshot() const;

  /// Value of one registered series (0 when absent) -- scrape-free
  /// convenience for reconciliation checks and tests.
  double value(std::string_view name, const Labels& labels = {}) const;

 private:
  struct Series;
  struct Family;

  Family& family(std::string_view name, MetricType type,
                 std::string_view help);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;  ///< registration order
};

/// Resolves the registry an InstrumentationOptions-style pointer means:
/// the given one, or the process-global registry when null.
inline MetricsRegistry& registry_or_global(MetricsRegistry* m) {
  return m != nullptr ? *m : MetricsRegistry::global();
}

}  // namespace spx::obs
