// Span tracing: the one execution-timeline stream of the observability
// layer (docs/OBSERVABILITY.md).
//
// A Span is a named, timed interval with a parent link; a Tracer hands
// out span ids, stamps times against one process epoch, and stores
// completed spans in a bounded, thread-safe ring buffer (old spans are
// overwritten under pressure and counted in dropped() -- a long service
// run keeps the most recent window instead of growing without bound).
// One trace context threads from SolveService request admission through
// Solver::analyze/factorize/solve down to individual scheduler tasks, so
// a single trace id stitches a request's queue wait, symbolic analysis,
// and every codelet execution into one tree.  Exporters (obs/export.hpp)
// turn the span stream into chrome://tracing JSON or structured JSON.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace spx::obs {

/// Identity of a span within a trace: enough to parent further spans.
/// trace_id 0 / span_id 0 means "no context" (spans recorded without a
/// parent are roots of their own trace).
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// One completed span.  `name` and `track` must be string literals (or
/// otherwise outlive the tracer): the ring stores raw pointers so that
/// recording never allocates.  `track` is the timeline row the span
/// belongs to ("worker-", "dma-", "service-"); `resource` the row index.
/// `arg0`/`arg1` carry small numeric payloads (panel id, update edge,
/// request id); -1 means unset.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  const char* name = "";
  const char* track = "span-";
  int resource = 0;
  std::int64_t arg0 = -1;
  std::int64_t arg1 = -1;
  double start = 0.0;  ///< seconds since the tracer's epoch
  double end = 0.0;
};

/// Thread-safe span sink with bounded ring-buffer storage.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Seconds since this tracer was constructed (every span's clock).
  double now() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  /// Fresh trace root context: new trace id, no parent span.
  SpanContext new_trace() {
    return {next_trace_.fetch_add(1, std::memory_order_relaxed), 0};
  }

  /// Allocates a span id under `parent` (same trace; a fresh trace when
  /// the parent is invalid).  Used by ScopedSpan so children created
  /// before the parent *completes* can still link to it.
  SpanContext next_span(SpanContext parent) {
    const std::uint64_t trace =
        parent.valid() ? parent.trace_id
                       : next_trace_.fetch_add(1, std::memory_order_relaxed);
    return {trace, next_id_.fetch_add(1, std::memory_order_relaxed)};
  }

  /// Records a fully-populated span (ids already assigned).
  void record(const SpanRecord& r);

  /// Convenience: allocates ids under `parent`, records a completed span,
  /// and returns its context (usable as a parent for retroactive
  /// children).
  SpanContext record_span(const char* name, const char* track,
                          SpanContext parent, double start, double end,
                          int resource = 0, std::int64_t arg0 = -1,
                          std::int64_t arg1 = -1);

  /// Retained spans, oldest first (at most `capacity` of them).
  std::vector<SpanRecord> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Spans currently retained in the ring.
  std::size_t size() const;
  /// Spans ever recorded (including overwritten ones).
  std::uint64_t total_recorded() const;
  /// Spans lost to ring overwrite since construction or clear().
  std::uint64_t dropped() const;

  void clear();

 private:
  using Clock = std::chrono::steady_clock;

  const std::size_t capacity_;
  const Clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_trace_{1};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;     ///< slot = write_count_ % capacity_
  std::uint64_t write_count_ = 0;  ///< monotonic; > capacity_ => drops
};

/// RAII span: allocates its id on construction (so children can parent
/// to it immediately) and records on destruction.  A default-constructed
/// or null-tracer ScopedSpan is inert -- the disabled path costs two
/// pointer stores.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, const char* name, const char* track,
             SpanContext parent, int resource = 0, std::int64_t arg0 = -1,
             std::int64_t arg1 = -1)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    r_.name = name;
    r_.track = track;
    r_.resource = resource;
    r_.arg0 = arg0;
    r_.arg1 = arg1;
    r_.parent_id = parent.span_id;
    const SpanContext ctx = tracer_->next_span(parent);
    r_.trace_id = ctx.trace_id;
    r_.span_id = ctx.span_id;
    r_.start = tracer_->now();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& o) noexcept : tracer_(o.tracer_), r_(o.r_) {
    o.tracer_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    if (this != &o) {
      finish();
      tracer_ = o.tracer_;
      r_ = o.r_;
      o.tracer_ = nullptr;
    }
    return *this;
  }
  ~ScopedSpan() { finish(); }

  /// Records the span now instead of at scope exit (idempotent).
  void finish() {
    if (tracer_ == nullptr) return;
    r_.end = tracer_->now();
    tracer_->record(r_);
    tracer_ = nullptr;
  }

  /// Context of this span, valid from construction: hand it to children.
  SpanContext context() const { return {r_.trace_id, r_.span_id}; }
  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord r_;
};

}  // namespace spx::obs
