#include "graph/permute_graph.hpp"

#include <algorithm>

namespace spx {

Graph permute_graph(const Graph& g, const Ordering& ord) {
  SPX_CHECK_ARG(ord.size() == g.num_vertices(), "ordering size mismatch");
  const index_t n = g.num_vertices();
  std::vector<size_type> ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t k = 0; k < n; ++k) {
    ptr[k + 1] = ptr[k] + g.degree(ord.new_to_old[k]);
  }
  std::vector<index_t> adj(static_cast<std::size_t>(ptr[n]));
  for (index_t k = 0; k < n; ++k) {
    size_type w = ptr[k];
    for (const index_t u : g.neighbors(ord.new_to_old[k])) {
      adj[w++] = ord.old_to_new[u];
    }
    std::sort(adj.begin() + ptr[k], adj.begin() + w);
  }
  return Graph(n, std::move(ptr), std::move(adj));
}

}  // namespace spx
