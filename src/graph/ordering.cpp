#include "graph/ordering.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace spx {

Ordering Ordering::identity(index_t n) {
  Ordering ord;
  ord.new_to_old.resize(static_cast<std::size_t>(n));
  std::iota(ord.new_to_old.begin(), ord.new_to_old.end(), index_t(0));
  ord.old_to_new = ord.new_to_old;
  return ord;
}

Ordering Ordering::from_new_to_old(std::vector<index_t> new_to_old) {
  const index_t n = static_cast<index_t>(new_to_old.size());
  Ordering ord;
  ord.new_to_old = std::move(new_to_old);
  ord.old_to_new.assign(static_cast<std::size_t>(n), index_t(-1));
  for (index_t k = 0; k < n; ++k) {
    const index_t old = ord.new_to_old[k];
    SPX_CHECK_ARG(old >= 0 && old < n && ord.old_to_new[old] == -1,
                  "not a permutation");
    ord.old_to_new[old] = k;
  }
  return ord;
}

bool Ordering::validate() const {
  const index_t n = size();
  if (static_cast<index_t>(old_to_new.size()) != n) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t k = 0; k < n; ++k) {
    const index_t old = new_to_old[k];
    if (old < 0 || old >= n || seen[old]) return false;
    seen[old] = true;
    if (old_to_new[old] != k) return false;
  }
  return true;
}

template <typename T>
CscMatrix<T> permute_symmetric(const CscMatrix<T>& a, const Ordering& ord) {
  SPX_CHECK_ARG(a.nrows() == a.ncols(), "square matrix required");
  SPX_CHECK_ARG(ord.size() == a.ncols(), "ordering size mismatch");
  const index_t n = a.ncols();
  std::vector<size_type> bptr(static_cast<std::size_t>(n) + 1, 0);
  const auto colptr = a.colptr();
  for (index_t jnew = 0; jnew < n; ++jnew) {
    const index_t jold = ord.new_to_old[jnew];
    bptr[jnew + 1] = bptr[jnew] + (colptr[jold + 1] - colptr[jold]);
  }
  std::vector<index_t> bind(static_cast<std::size_t>(bptr[n]));
  std::vector<T> bval(static_cast<std::size_t>(bptr[n]));
  for (index_t jnew = 0; jnew < n; ++jnew) {
    const index_t jold = ord.new_to_old[jnew];
    const auto rows = a.col_rows(jold);
    const auto vals = a.col_values(jold);
    // Gather the permuted (row, value) pairs and sort by new row index.
    const size_type base = bptr[jnew];
    std::vector<std::pair<index_t, T>> entries(rows.size());
    for (std::size_t k = 0; k < rows.size(); ++k) {
      entries[k] = {ord.old_to_new[rows[k]], vals[k]};
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (std::size_t k = 0; k < entries.size(); ++k) {
      bind[base + static_cast<size_type>(k)] = entries[k].first;
      bval[base + static_cast<size_type>(k)] = entries[k].second;
    }
  }
  return CscMatrix<T>(n, n, std::move(bptr), std::move(bind),
                      std::move(bval));
}

template <typename T>
void permute_vector(const Ordering& ord, std::span<const T> in,
                    std::span<T> out) {
  SPX_CHECK_ARG(in.size() == out.size() &&
                    static_cast<index_t>(in.size()) == ord.size(),
                "size mismatch");
  for (index_t i = 0; i < ord.size(); ++i) out[ord.old_to_new[i]] = in[i];
}

template <typename T>
void unpermute_vector(const Ordering& ord, std::span<const T> in,
                      std::span<T> out) {
  SPX_CHECK_ARG(in.size() == out.size() &&
                    static_cast<index_t>(in.size()) == ord.size(),
                "size mismatch");
  for (index_t i = 0; i < ord.size(); ++i) out[i] = in[ord.old_to_new[i]];
}

template CscMatrix<real_t> permute_symmetric(const CscMatrix<real_t>&,
                                             const Ordering&);
template CscMatrix<complex_t> permute_symmetric(const CscMatrix<complex_t>&,
                                                const Ordering&);
template void permute_vector<real_t>(const Ordering&, std::span<const real_t>,
                                     std::span<real_t>);
template void permute_vector<complex_t>(const Ordering&,
                                        std::span<const complex_t>,
                                        std::span<complex_t>);
template void unpermute_vector<real_t>(const Ordering&,
                                       std::span<const real_t>,
                                       std::span<real_t>);
template void unpermute_vector<complex_t>(const Ordering&,
                                          std::span<const complex_t>,
                                          std::span<complex_t>);
template CscMatrix<real32_t> permute_symmetric(const CscMatrix<real32_t>&,
                                               const Ordering&);
template void permute_vector<real32_t>(const Ordering&,
                                       std::span<const real32_t>,
                                       std::span<real32_t>);
template void unpermute_vector<real32_t>(const Ordering&,
                                         std::span<const real32_t>,
                                         std::span<real32_t>);

}  // namespace spx
