// Fill-reducing ordering algorithms.
//
// The paper uses SCOTCH's nested dissection; we provide our own nested
// dissection (recursive bisection with Fiduccia--Mattheyses refinement and
// minimum-degree leaf ordering) plus RCM and quotient-graph minimum degree
// as baselines.  Nested dissection is what produces the large top-of-tree
// supernodes the GPU experiments rely on.
#pragma once

#include "graph/graph.hpp"
#include "graph/ordering.hpp"

namespace spx {

/// Reverse Cuthill--McKee: bandwidth-reducing BFS ordering.  Not a great
/// fill reducer, kept as a baseline and for banded-solver style use.
Ordering reverse_cuthill_mckee(const Graph& g);

/// Quotient-graph minimum-degree ordering with element absorption and mass
/// elimination of indistinguishable vertices (AMD-style external degree
/// approximation).
Ordering minimum_degree(const Graph& g);

struct NestedDissectionOptions {
  /// Subgraphs at or below this size are ordered with minimum degree.
  index_t leaf_size = 96;
  /// Maximum allowed imbalance of a bisection: each part holds at least
  /// (0.5 - balance_slack) of the vertices.
  double balance_slack = 0.15;
  /// Number of Fiduccia--Mattheyses refinement passes per bisection.
  int fm_passes = 8;
  /// RNG seed for tie-breaking / start-vertex sampling.
  std::uint64_t seed = 42;
};

/// Nested dissection ordering: separators are ordered last (they become the
/// top supernodes of the elimination tree).
Ordering nested_dissection(const Graph& g,
                           const NestedDissectionOptions& opts = {});

/// Counts fill-in of a Cholesky factorization under the given ordering
/// (sum of column counts).  Exposed for ordering-quality tests.
size_type cholesky_fill(const Graph& g, const Ordering& ord);

}  // namespace spx
