// Relabels a graph's vertices by an ordering.
#pragma once

#include "graph/graph.hpp"
#include "graph/ordering.hpp"

namespace spx {

/// Returns the graph whose vertex k is ord.new_to_old[k] of `g`.
Graph permute_graph(const Graph& g, const Ordering& ord);

}  // namespace spx
