// Undirected adjacency graph of a sparse matrix pattern.
//
// Orderings operate on the symmetrized pattern of A (pattern of A + A^T
// without the diagonal), which is exactly what PASTIX does: it always
// works on a structurally symmetric problem (paper §III).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "mat/csc.hpp"

namespace spx {

class Graph {
 public:
  Graph() = default;

  /// Builds from CSR/CSC-style arrays; adjacency must be symmetric,
  /// diagonal-free, sorted per vertex.
  Graph(index_t n, std::vector<size_type> ptr, std::vector<index_t> adj);

  /// Symmetrized pattern of a square matrix, diagonal dropped.
  template <typename T>
  static Graph from_pattern(const CscMatrix<T>& a);

  index_t num_vertices() const { return n_; }
  size_type num_edges() const {
    return static_cast<size_type>(adj_.size()) / 2;
  }

  std::span<const index_t> neighbors(index_t v) const {
    return {adj_.data() + ptr_[v],
            static_cast<std::size_t>(ptr_[v + 1] - ptr_[v])};
  }
  index_t degree(index_t v) const {
    return static_cast<index_t>(ptr_[v + 1] - ptr_[v]);
  }

  /// Induced subgraph on `vertices` (must be unique).  `local_of` maps a
  /// global vertex id to its index in `vertices` (or -1); scratch sized n.
  Graph induced_subgraph(std::span<const index_t> vertices,
                         std::vector<index_t>& local_of_scratch) const;

  /// True when the adjacency structure is a valid undirected simple graph.
  bool validate() const;

 private:
  index_t n_ = 0;
  std::vector<size_type> ptr_;
  std::vector<index_t> adj_;
};

template <typename T>
Graph Graph::from_pattern(const CscMatrix<T>& a) {
  SPX_CHECK_ARG(a.nrows() == a.ncols(), "pattern graph needs square matrix");
  const index_t n = a.ncols();
  // Count union of pattern(A) and pattern(A^T) per vertex, minus diagonal.
  std::vector<size_type> count(static_cast<std::size_t>(n) + 1, 0);
  const auto colptr = a.colptr();
  const auto rowind = a.rowind();
  for (index_t j = 0; j < n; ++j) {
    for (size_type p = colptr[j]; p < colptr[j + 1]; ++p) {
      const index_t i = rowind[p];
      if (i == j) continue;
      count[static_cast<std::size_t>(i) + 1]++;
      count[static_cast<std::size_t>(j) + 1]++;
    }
  }
  std::vector<size_type> ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t v = 0; v < n; ++v) ptr[v + 1] = ptr[v] + count[v + 1];
  std::vector<index_t> adj(static_cast<std::size_t>(ptr[n]));
  std::vector<size_type> next(ptr.begin(), ptr.end() - 1);
  for (index_t j = 0; j < n; ++j) {
    for (size_type p = colptr[j]; p < colptr[j + 1]; ++p) {
      const index_t i = rowind[p];
      if (i == j) continue;
      adj[next[i]++] = j;
      adj[next[j]++] = i;
    }
  }
  // Sort and unique each adjacency list (duplicates from symmetric entries
  // present on both sides).
  std::vector<size_type> outptr(static_cast<std::size_t>(n) + 1, 0);
  size_type w = 0;
  for (index_t v = 0; v < n; ++v) {
    const size_type b = ptr[v], e = next[v];
    std::sort(adj.begin() + b, adj.begin() + e);
    for (size_type p = b; p < e; ++p) {
      if (w > outptr[v] && adj[w - 1] == adj[p]) continue;
      adj[w++] = adj[p];
    }
    outptr[v + 1] = w;
  }
  adj.resize(static_cast<std::size_t>(w));
  return Graph(n, std::move(outptr), std::move(adj));
}

}  // namespace spx
