#include <algorithm>
#include <queue>

#include "graph/orderings.hpp"

namespace spx {
namespace {

/// BFS from `start`, returns the vertices of the component in BFS order and
/// the index of a vertex in the last level with minimal degree (a
/// pseudo-peripheral candidate).
index_t bfs_component(const Graph& g, index_t start,
                      std::vector<index_t>& order,
                      std::vector<index_t>& level,
                      std::vector<char>& visited) {
  order.clear();
  std::queue<index_t> q;
  q.push(start);
  visited[start] = 1;
  level[start] = 0;
  index_t last = start;
  while (!q.empty()) {
    const index_t v = q.front();
    q.pop();
    order.push_back(v);
    last = v;
    for (const index_t u : g.neighbors(v)) {
      if (!visited[u]) {
        visited[u] = 1;
        level[u] = level[v] + 1;
        q.push(u);
      }
    }
  }
  // Among the deepest level, pick the minimum-degree vertex.
  const index_t depth = level[last];
  index_t best = last;
  for (auto it = order.rbegin(); it != order.rend() && level[*it] == depth;
       ++it) {
    if (g.degree(*it) < g.degree(best)) best = *it;
  }
  return best;
}

index_t pseudo_peripheral(const Graph& g, index_t start,
                          std::vector<index_t>& scratch_order,
                          std::vector<index_t>& level) {
  std::vector<char> visited(static_cast<std::size_t>(g.num_vertices()), 0);
  index_t v = start;
  index_t prev_depth = -1;
  for (int iter = 0; iter < 8; ++iter) {
    std::fill(visited.begin(), visited.end(), 0);
    const index_t far = bfs_component(g, v, scratch_order, level, visited);
    const index_t depth = level[scratch_order.back()];
    if (depth <= prev_depth) break;
    prev_depth = depth;
    v = far;
  }
  return v;
}

}  // namespace

Ordering reverse_cuthill_mckee(const Graph& g) {
  const index_t n = g.num_vertices();
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<index_t> level(static_cast<std::size_t>(n), 0);
  std::vector<index_t> comp;

  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Restrict pseudo-peripheral search to this component.
    const index_t start = pseudo_peripheral(g, seed, comp, level);

    // Cuthill--McKee BFS: visit neighbours in increasing-degree order.
    std::vector<index_t> frontier{start};
    visited[start] = 1;
    const std::size_t comp_begin = order.size();
    order.push_back(start);
    std::size_t head = comp_begin;
    while (head < order.size()) {
      const index_t v = order[head++];
      frontier.clear();
      for (const index_t u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = 1;
          frontier.push_back(u);
        }
      }
      std::sort(frontier.begin(), frontier.end(),
                [&](index_t a, index_t b) {
                  return g.degree(a) < g.degree(b) || (g.degree(a) == g.degree(b) && a < b);
                });
      order.insert(order.end(), frontier.begin(), frontier.end());
    }
    // Reverse this component's ordering.
    std::reverse(order.begin() + static_cast<std::ptrdiff_t>(comp_begin),
                 order.end());
  }
  return Ordering::from_new_to_old(std::move(order));
}

size_type cholesky_fill(const Graph& g, const Ordering& ord) {
  // Column counts via the standard symbolic elimination sweep with reach
  // sets; O(|L|) using the "parent pointer" shortcut would be better but
  // this exact version is only used by tests on moderate sizes.
  const index_t n = g.num_vertices();
  std::vector<std::vector<index_t>> struct_of(static_cast<std::size_t>(n));
  std::vector<index_t> first_parent(static_cast<std::size_t>(n), -1);
  size_type total = 0;
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  for (index_t k = 0; k < n; ++k) {
    // Column k of L (in the permuted matrix) contains the permuted
    // neighbours below k plus the structures of children columns.
    std::vector<index_t> rows;
    const index_t vk = ord.new_to_old[k];
    mark[k] = 1;
    std::vector<index_t> touched{k};
    for (const index_t u : g.neighbors(vk)) {
      const index_t j = ord.old_to_new[u];
      if (j > k && !mark[j]) {
        mark[j] = 1;
        touched.push_back(j);
        rows.push_back(j);
      }
    }
    // Merge children structures (children = columns whose first below-diag
    // entry is k).
    for (index_t c = 0; c < k; ++c) {
      if (first_parent[c] != k) continue;
      for (const index_t r : struct_of[c]) {
        if (r > k && !mark[r]) {
          mark[r] = 1;
          touched.push_back(r);
          rows.push_back(r);
        }
      }
    }
    std::sort(rows.begin(), rows.end());
    if (!rows.empty()) first_parent[k] = rows.front();
    total += static_cast<size_type>(rows.size()) + 1;  // +1 diagonal
    struct_of[k] = std::move(rows);
    for (const index_t v : touched) mark[v] = 0;
  }
  return total;
}

}  // namespace spx
