// Nested dissection ordering.
//
// Recursive strategy (SCOTCH-like in spirit, simplified):
//   1. Bisect the (sub)graph with a BFS level-set split from a
//      pseudo-peripheral vertex, balancing the two halves.
//   2. Refine the *edge* cut with Fiduccia--Mattheyses passes under a
//      balance constraint.
//   3. Turn the edge separator into a vertex separator by greedily picking
//      cut-edge endpoints (approximate minimum vertex cover).
//   4. Recurse on the two parts; order = [part0, part1, separator], so
//      separators land at the end and become the top supernodes of the
//      elimination tree -- the big panels the paper offloads to GPUs.
// Leaves are ordered with minimum degree.
#include <algorithm>
#include <numeric>
#include <queue>

#include "common/rng.hpp"
#include "graph/orderings.hpp"

namespace spx {
namespace {

struct Bisection {
  std::vector<index_t> part0;
  std::vector<index_t> part1;
  std::vector<index_t> separator;
};

/// BFS level-balanced initial split: grows part 0 from a pseudo-peripheral
/// vertex until it holds half of the component.
std::vector<char> initial_split(const Graph& g, Rng& rng) {
  const index_t n = g.num_vertices();
  std::vector<char> side(static_cast<std::size_t>(n), 1);
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  index_t assigned0 = 0;
  const index_t target0 = n / 2;

  // Multiple components: fill part 0 component by component.
  index_t seed = static_cast<index_t>(rng.next_below(
      static_cast<std::uint64_t>(n)));
  for (index_t tries = 0; tries < n && assigned0 < target0; ++tries) {
    while (visited[seed]) seed = (seed + 1) % n;
    // Pseudo-peripheral walk inside this component.
    index_t start = seed;
    {
      std::vector<index_t> dist(static_cast<std::size_t>(n), -1);
      for (int iter = 0; iter < 4; ++iter) {
        std::fill(dist.begin(), dist.end(), -1);
        std::queue<index_t> q;
        q.push(start);
        dist[start] = 0;
        index_t far = start;
        while (!q.empty()) {
          const index_t v = q.front();
          q.pop();
          far = v;
          for (const index_t u : g.neighbors(v)) {
            if (dist[u] < 0 && !visited[u]) {
              dist[u] = dist[v] + 1;
              q.push(u);
            }
          }
        }
        if (far == start) break;
        start = far;
      }
    }
    // BFS from `start`, assigning to part 0 until the target is reached.
    std::queue<index_t> q;
    q.push(start);
    visited[start] = 1;
    while (!q.empty() && assigned0 < target0) {
      const index_t v = q.front();
      q.pop();
      side[v] = 0;
      ++assigned0;
      for (const index_t u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = 1;
          q.push(u);
        }
      }
    }
    // Mark the rest of this component visited (stays in part 1).
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      for (const index_t u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = 1;
          q.push(u);
        }
      }
    }
  }
  return side;
}

/// One Fiduccia--Mattheyses pass over the edge cut: vertices move between
/// sides by decreasing gain, each vertex at most once per pass, respecting
/// the balance constraint; the best prefix of moves is kept.  Uses gain
/// buckets with lazy deletion, so a pass costs O(V + E).
bool fm_pass(const Graph& g, std::vector<char>& side, index_t min_part,
             std::vector<index_t>& gain, std::vector<char>& locked) {
  const index_t n = g.num_vertices();
  std::fill(locked.begin(), locked.end(), 0);
  index_t count0 = 0;
  index_t maxdeg = 0;
  for (index_t v = 0; v < n; ++v) {
    if (side[v] == 0) ++count0;
    maxdeg = std::max(maxdeg, g.degree(v));
  }
  // gain(v) = (cut edges incident to v) - (internal edges incident to v),
  // i.e. the cut reduction if v switched sides.  Range [-maxdeg, maxdeg].
  // Only *boundary* vertices (those with at least one cut edge) are worth
  // moving, which keeps the buckets small on good initial splits.
  const index_t offset = maxdeg;
  std::vector<std::vector<index_t>> buckets(
      static_cast<std::size_t>(2 * maxdeg + 1));
  index_t max_gain = -offset - 1;  // nothing inserted yet
  auto push = [&](index_t v) {
    buckets[gain[v] + offset].push_back(v);
    max_gain = std::max(max_gain, gain[v]);
  };
  for (index_t v = 0; v < n; ++v) {
    index_t gv = 0;
    bool boundary = false;
    for (const index_t u : g.neighbors(v)) {
      if (side[u] != side[v]) {
        ++gv;
        boundary = true;
      } else {
        --gv;
      }
    }
    gain[v] = gv;
    if (boundary) push(v);
  }

  struct Move {
    index_t vertex;
    index_t cut_delta;
  };
  std::vector<Move> moves;
  index_t cut_delta = 0, best_delta = 0;
  std::size_t best_prefix = 0;

  while (max_gain >= 0) {  // only improving or neutral moves
    auto& bucket = buckets[max_gain + offset];
    if (bucket.empty()) {
      --max_gain;
      continue;
    }
    const index_t v = bucket.back();
    bucket.pop_back();
    if (locked[v] || gain[v] != max_gain) continue;  // stale entry
    const index_t from_count = side[v] == 0 ? count0 : n - count0;
    if (from_count - 1 < min_part) continue;  // would break balance
    locked[v] = 1;
    cut_delta -= gain[v];
    count0 += side[v] == 0 ? -1 : 1;
    side[v] ^= 1;
    for (const index_t u : g.neighbors(v)) {
      // Flipping v changes the (u,v) edge status: newly cut edges raise
      // u's gain by 2, newly internal ones lower it by 2.
      gain[u] += (side[u] != side[v]) ? 2 : -2;
      if (!locked[u]) push(u);
    }
    moves.push_back({v, cut_delta});
    if (cut_delta < best_delta) {
      best_delta = cut_delta;
      best_prefix = moves.size();
    }
  }
  // Roll back past the best prefix.
  for (std::size_t k = moves.size(); k > best_prefix; --k) {
    side[moves[k - 1].vertex] ^= 1;
  }
  return best_delta < 0;
}

/// Extracts a vertex separator from the refined edge cut: greedy vertex
/// cover of cut edges, preferring endpoints covering more cut edges and,
/// on ties, the larger side.
Bisection to_vertex_separator(const Graph& g, const std::vector<char>& side) {
  const index_t n = g.num_vertices();
  std::vector<index_t> cutdeg(static_cast<std::size_t>(n), 0);
  index_t count0 = 0;
  for (index_t v = 0; v < n; ++v) {
    if (side[v] == 0) ++count0;
    for (const index_t u : g.neighbors(v)) {
      if (side[u] != side[v]) ++cutdeg[v];
    }
  }
  std::vector<char> in_sep(static_cast<std::size_t>(n), 0);
  // Order boundary vertices by decreasing cut degree and sweep.
  std::vector<index_t> boundary;
  for (index_t v = 0; v < n; ++v) {
    if (cutdeg[v] > 0) boundary.push_back(v);
  }
  std::sort(boundary.begin(), boundary.end(), [&](index_t a, index_t b) {
    return cutdeg[a] > cutdeg[b] || (cutdeg[a] == cutdeg[b] && a < b);
  });
  for (const index_t v : boundary) {
    if (in_sep[v]) continue;
    bool uncovered = false;
    for (const index_t u : g.neighbors(v)) {
      if (side[u] != side[v] && !in_sep[u]) {
        uncovered = true;
        break;
      }
    }
    if (uncovered) in_sep[v] = 1;
  }
  Bisection b;
  for (index_t v = 0; v < n; ++v) {
    if (in_sep[v]) {
      b.separator.push_back(v);
    } else if (side[v] == 0) {
      b.part0.push_back(v);
    } else {
      b.part1.push_back(v);
    }
  }
  return b;
}

void dissect(const Graph& g, std::span<const index_t> global_ids,
             const NestedDissectionOptions& opts, Rng& rng,
             std::vector<index_t>& scratch_local_of,
             std::vector<index_t>& order_out) {
  const index_t n = g.num_vertices();
  if (n <= opts.leaf_size) {
    const Ordering leaf = minimum_degree(g);
    for (index_t k = 0; k < n; ++k) {
      order_out.push_back(global_ids[leaf.new_to_old[k]]);
    }
    return;
  }

  std::vector<char> side = initial_split(g, rng);
  {
    std::vector<index_t> gain(static_cast<std::size_t>(n));
    std::vector<char> locked(static_cast<std::size_t>(n));
    const index_t min_part = static_cast<index_t>(
        (0.5 - opts.balance_slack) * static_cast<double>(n));
    for (int pass = 0; pass < opts.fm_passes; ++pass) {
      if (!fm_pass(g, side, std::max<index_t>(1, min_part), gain, locked)) {
        break;
      }
    }
  }
  Bisection b = to_vertex_separator(g, side);
  if (b.part0.empty() || b.part1.empty()) {
    // Degenerate split (e.g. complete graph): fall back to minimum degree.
    const Ordering leaf = minimum_degree(g);
    for (index_t k = 0; k < n; ++k) {
      order_out.push_back(global_ids[leaf.new_to_old[k]]);
    }
    return;
  }

  for (const auto* part : {&b.part0, &b.part1}) {
    std::vector<index_t> sub_globals(part->size());
    for (std::size_t k = 0; k < part->size(); ++k) {
      sub_globals[k] = global_ids[(*part)[k]];
    }
    const Graph sub = g.induced_subgraph(*part, scratch_local_of);
    dissect(sub, sub_globals, opts, rng, scratch_local_of, order_out);
  }
  // Separator last; ordered with minimum degree on its induced subgraph to
  // reduce fill inside the top supernode's coupling.
  {
    const Graph sep = g.induced_subgraph(b.separator, scratch_local_of);
    const Ordering so = minimum_degree(sep);
    for (index_t k = 0; k < static_cast<index_t>(b.separator.size()); ++k) {
      order_out.push_back(global_ids[b.separator[so.new_to_old[k]]]);
    }
  }
}

}  // namespace

Ordering nested_dissection(const Graph& g,
                           const NestedDissectionOptions& opts) {
  SPX_CHECK_ARG(opts.leaf_size > 0, "leaf_size must be positive");
  SPX_CHECK_ARG(opts.balance_slack > 0.0 && opts.balance_slack < 0.5,
                "balance_slack must be in (0, 0.5)");
  const index_t n = g.num_vertices();
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), index_t(0));
  std::vector<index_t> scratch;
  Rng rng(opts.seed);
  dissect(g, ids, opts, rng, scratch, order);
  return Ordering::from_new_to_old(std::move(order));
}

}  // namespace spx
