#include "graph/graph.hpp"

#include <algorithm>

namespace spx {

Graph::Graph(index_t n, std::vector<size_type> ptr, std::vector<index_t> adj)
    : n_(n), ptr_(std::move(ptr)), adj_(std::move(adj)) {
  SPX_CHECK_ARG(static_cast<index_t>(ptr_.size()) == n_ + 1,
                "graph ptr size must be n+1");
  SPX_CHECK_ARG(ptr_.back() == static_cast<size_type>(adj_.size()),
                "graph ptr/adj mismatch");
}

Graph Graph::induced_subgraph(std::span<const index_t> vertices,
                              std::vector<index_t>& local_of) const {
  const index_t m = static_cast<index_t>(vertices.size());
  local_of.assign(static_cast<std::size_t>(n_), index_t(-1));
  for (index_t k = 0; k < m; ++k) {
    SPX_DEBUG_ASSERT(vertices[k] >= 0 && vertices[k] < n_);
    local_of[vertices[k]] = k;
  }
  std::vector<size_type> ptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<index_t> adj;
  adj.reserve(vertices.size() * 4);
  for (index_t k = 0; k < m; ++k) {
    for (const index_t u : neighbors(vertices[k])) {
      if (local_of[u] >= 0) adj.push_back(local_of[u]);
    }
    ptr[k + 1] = static_cast<size_type>(adj.size());
  }
  for (index_t k = 0; k < m; ++k) {
    std::sort(adj.begin() + ptr[k], adj.begin() + ptr[k + 1]);
  }
  return Graph(m, std::move(ptr), std::move(adj));
}

bool Graph::validate() const {
  for (index_t v = 0; v < n_; ++v) {
    const auto nb = neighbors(v);
    for (std::size_t k = 0; k < nb.size(); ++k) {
      const index_t u = nb[k];
      if (u < 0 || u >= n_ || u == v) return false;
      if (k > 0 && nb[k - 1] >= u) return false;  // sorted + unique
      // Symmetry: v must appear in u's list.
      const auto nu = neighbors(u);
      if (!std::binary_search(nu.begin(), nu.end(), v)) return false;
    }
  }
  return true;
}

}  // namespace spx
