// Quotient-graph minimum-degree ordering.
//
// Classic George/Liu quotient-graph formulation: eliminating a vertex
// creates an *element* whose variable list is the pivot's reach; elements
// reached through the pivot are absorbed.  Degrees are exact external
// degrees computed with a mark array (we favour correctness over AMD's
// amortized degree bounds; ND leaves are small and the standalone use of
// this ordering targets moderate sizes).
#include <algorithm>
#include <vector>

#include "graph/orderings.hpp"

namespace spx {
namespace {

class QuotientGraph {
 public:
  explicit QuotientGraph(const Graph& g)
      : n_(g.num_vertices()),
        adj_var_(static_cast<std::size_t>(n_)),
        adj_el_(static_cast<std::size_t>(n_)),
        eliminated_(static_cast<std::size_t>(n_), 0),
        mark_(static_cast<std::size_t>(n_), 0),
        mark_token_(0) {
    for (index_t v = 0; v < n_; ++v) {
      const auto nb = g.neighbors(v);
      adj_var_[v].assign(nb.begin(), nb.end());
    }
  }

  bool eliminated(index_t v) const { return eliminated_[v] != 0; }

  /// Exact external degree of a variable.
  index_t degree(index_t v) {
    next_token();
    mark_[v] = mark_token_;
    index_t deg = 0;
    for (const index_t u : adj_var_[v]) {
      if (!eliminated_[u] && mark_[u] != mark_token_) {
        mark_[u] = mark_token_;
        ++deg;
      }
    }
    for (const index_t e : adj_el_[v]) {
      for (const index_t u : element_vars_[e]) {
        if (!eliminated_[u] && mark_[u] != mark_token_) {
          mark_[u] = mark_token_;
          ++deg;
        }
      }
    }
    return deg;
  }

  /// Eliminates `v`; returns the variables whose degree changed.
  std::vector<index_t> eliminate(index_t v) {
    eliminated_[v] = 1;
    // Reach set Lp = adj vars + vars of adjacent elements, minus
    // eliminated and v itself.
    next_token();
    mark_[v] = mark_token_;
    std::vector<index_t> reach;
    for (const index_t u : adj_var_[v]) {
      if (!eliminated_[u] && mark_[u] != mark_token_) {
        mark_[u] = mark_token_;
        reach.push_back(u);
      }
    }
    const std::vector<index_t> absorbed = std::move(adj_el_[v]);
    for (const index_t e : absorbed) {
      for (const index_t u : element_vars_[e]) {
        if (!eliminated_[u] && mark_[u] != mark_token_) {
          mark_[u] = mark_token_;
          reach.push_back(u);
        }
      }
      element_alive_[e] = 0;
      element_vars_[e].clear();  // free memory; e is absorbed
    }
    // New element.
    const index_t e_new = static_cast<index_t>(element_vars_.size());
    element_vars_.push_back(reach);
    element_alive_.push_back(1);
    // Fix the touched variables: drop v and absorbed elements, add e_new,
    // and prune eliminated variables from their variable lists.
    for (const index_t u : reach) {
      auto& ev = adj_el_[u];
      ev.erase(std::remove_if(ev.begin(), ev.end(),
                              [&](index_t e) { return !element_alive_[e]; }),
               ev.end());
      ev.push_back(e_new);
      auto& av = adj_var_[u];
      av.erase(std::remove_if(av.begin(), av.end(),
                              [&](index_t w) { return eliminated_[w] != 0; }),
               av.end());
    }
    return reach;
  }

 private:
  void next_token() {
    if (++mark_token_ == 0) {
      std::fill(mark_.begin(), mark_.end(), 0);
      mark_token_ = 1;
    }
  }

  index_t n_;
  std::vector<std::vector<index_t>> adj_var_;
  std::vector<std::vector<index_t>> adj_el_;
  std::vector<std::vector<index_t>> element_vars_;
  std::vector<char> element_alive_;
  std::vector<char> eliminated_;
  std::vector<std::uint32_t> mark_;
  std::uint32_t mark_token_;
};

/// Bucket priority structure keyed by degree with lazy revalidation:
/// pop returns the bucket the entry was filed under so the caller can
/// detect stale duplicates.
class DegreeBuckets {
 public:
  explicit DegreeBuckets(index_t n)
      : buckets_(static_cast<std::size_t>(n) + 1), lowest_(0) {}

  void insert(index_t v, index_t deg) {
    buckets_[deg].push_back(v);
    lowest_ = std::min(lowest_, deg);
  }

  std::pair<index_t, index_t> pop() {
    while (buckets_[lowest_].empty()) ++lowest_;
    const index_t v = buckets_[lowest_].back();
    buckets_[lowest_].pop_back();
    return {v, lowest_};
  }

 private:
  std::vector<std::vector<index_t>> buckets_;
  index_t lowest_;
};

}  // namespace

Ordering minimum_degree(const Graph& g) {
  const index_t n = g.num_vertices();
  QuotientGraph qg(g);
  DegreeBuckets buckets(n);
  // stored_degree[v] is the bucket of v's single *fresh* entry; entries
  // popped from any other bucket are stale duplicates and are discarded.
  std::vector<index_t> stored_degree(static_cast<std::size_t>(n));
  std::vector<char> done(static_cast<std::size_t>(n), 0);
  for (index_t v = 0; v < n; ++v) {
    stored_degree[v] = g.degree(v);
    buckets.insert(v, stored_degree[v]);
  }

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  while (static_cast<index_t>(order.size()) < n) {
    const auto [v, bucket] = buckets.pop();
    if (done[v] || bucket != stored_degree[v]) continue;  // stale entry
    const index_t deg = qg.degree(v);
    if (deg != bucket) {
      // The quotient structure moved under v without a refresh (degree
      // shrunk through absorption): re-file at the true degree.
      stored_degree[v] = deg;
      buckets.insert(v, deg);
      continue;
    }
    done[v] = 1;
    order.push_back(v);
    for (const index_t u : qg.eliminate(v)) {
      const index_t du = qg.degree(u);
      if (du != stored_degree[u]) {
        stored_degree[u] = du;
        buckets.insert(u, du);
      }
    }
  }
  return Ordering::from_new_to_old(std::move(order));
}

}  // namespace spx
