// Permutation container shared by all orderings.
//
// Conventions (explicit names to avoid the classic perm/invp confusion):
//   new_to_old[k] = original index of the row/column placed at position k,
//   old_to_new[i] = position of original index i in the permuted matrix.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "mat/csc.hpp"

namespace spx {

struct Ordering {
  std::vector<index_t> new_to_old;
  std::vector<index_t> old_to_new;

  static Ordering identity(index_t n);

  /// Builds from a new_to_old vector, deriving the inverse; throws if it is
  /// not a permutation.
  static Ordering from_new_to_old(std::vector<index_t> new_to_old);

  index_t size() const { return static_cast<index_t>(new_to_old.size()); }

  /// True iff this is a valid permutation pair.
  bool validate() const;
};

/// Symmetric permutation of a square matrix: B = P A P^T with
/// B(old_to_new[i], old_to_new[j]) = A(i, j).
template <typename T>
CscMatrix<T> permute_symmetric(const CscMatrix<T>& a, const Ordering& ord);

/// Permutes a vector into the new ordering: out[old_to_new[i]] = in[i].
template <typename T>
void permute_vector(const Ordering& ord, std::span<const T> in,
                    std::span<T> out);

/// Inverse of permute_vector: out[i] = in[old_to_new[i]].
template <typename T>
void unpermute_vector(const Ordering& ord, std::span<const T> in,
                      std::span<T> out);

}  // namespace spx
