// Public solver facade: the PASTIX-style analyze / factorize / solve /
// refine workflow with a selectable task runtime.
//
//   spx::Solver<double> solver;
//   solver.options().runtime = spx::RuntimeKind::Parsec;
//   solver.analyze(A);
//   solver.factorize(A, spx::Factorization::LLT);
//   std::vector<double> x = b;
//   solver.solve(x);              // x <- A^{-1} b
//
// The analyze step (ordering + symbolic factorization) is reusable across
// factorizations of matrices with the same pattern -- static pivoting
// makes the structure value-independent (paper §III).  When the values
// drift but the pattern holds (time stepping, Newton loops),
// refactorize() reruns only the numeric sweep against the live FactorData
// allocation.  The lifecycle is strict and misuse fails loudly:
// factorize() throws before analyze() or when the matrix pattern differs
// from the analyzed one, refactorize() throws before the first
// factorize(), solve() throws before factorize(), and re-analyzing
// invalidates the current factors.
// The analysis itself is held as shared immutable state
// (std::shared_ptr<const Analysis>) so many solvers -- e.g. concurrent
// requests in the solve service (src/service/) -- can factorize different
// matrices against one symbolic factorization without copying it.
#pragma once

#include <memory>

#include "core/analysis.hpp"
#include "core/codelets.hpp"
#include "core/factor_data.hpp"
#include "core/solve.hpp"
#include "obs/obs.hpp"
#include "obs/options.hpp"
#include "runtime/engine_model.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/parsec_scheduler.hpp"
#include "runtime/run_stats.hpp"
#include "runtime/starpu_scheduler.hpp"

namespace spx::perfmodel {
class PerfModel;
}  // namespace spx::perfmodel

namespace spx {

enum class RuntimeKind {
  Sequential,  ///< plain right-looking loop, no scheduler
  Native,      ///< PASTIX static schedule + work stealing (1D tasks)
  Starpu,      ///< StarPU-like: implicit deps + central model scheduler
  Parsec       ///< PaRSEC-like: compact DAG + locality work stealing
};

const char* to_string(RuntimeKind k);

struct SolverOptions {
  AnalysisOptions analysis;
  RuntimeKind runtime = RuntimeKind::Native;
  /// Worker threads for the task runtimes (0 = hardware concurrency).
  int num_threads = 0;
  /// Emulated GPU-stream workers appended to the CPU workers (exercises
  /// the device code path against unified memory, with no staging).  For
  /// full heterogeneous execution -- staged transfers, residency
  /// tracking, eviction -- use `hetero` instead.
  int num_gpu_streams = 0;
  /// Heterogeneous execution through the device-engine layer: one
  /// emulated accelerator per entry in `hetero.devices`, with throttled
  /// staging transfers and dmda placement against the live coherence
  /// directory (docs/DEVICE_ENGINES.md).  Starpu and Parsec runtimes
  /// only; mutually exclusive with `num_gpu_streams`.
  HeteroOptions hetero;
  StarpuOptions starpu;
  ParsecOptions parsec;
  UpdateVariant cpu_variant = UpdateVariant::TempBuffer;
  /// Calibrated performance-model file (models/*.json, produced by
  /// bench_calibration; see docs/PERF_MODELS.md).  Empty = flop oracle.
  /// A missing or corrupt file logs a warning and degrades to FlopCosts;
  /// it never fails the factorization.
  std::string perf_model_file;
  /// Feed measured task durations back into the loaded model's history
  /// layer (online refinement; affects the *next* factorize()).
  bool refine_perf_model = true;
  /// Static-pivot perturbation (paper §III): a pivot with |d| below
  /// pivot_threshold * ||A|| (||A|| = max |a_ij|) is replaced by the
  /// sign-preserving threshold instead of aborting the factorization;
  /// solve() then repairs the O(eps) backward error by iterative
  /// refinement automatically.  0 restores throw-on-bad-pivot.  LL^T
  /// still throws on genuinely indefinite pivots (below -threshold).
  double pivot_threshold = 1e-12;
  /// Residual target of the automatic post-solve refinement that runs
  /// when the factorization was perturbed.
  double refine_tolerance = 1e-12;
  /// Iteration cap of the automatic refinement.
  int refine_max_iter = 20;
  /// Instrumentation layer (metrics registry, span tracer + parent
  /// context, legacy chrome trace, fault harness), inherited by the real
  /// driver on every factorize().  The fault harness is also passed to
  /// FactorData as AllocationHook.  Set once -- e.g. via OptionsBuilder
  /// (service/options_builder.hpp) -- instead of per layer.
  obs::InstrumentationOptions instr;
};

/// What a solve did beyond plain substitution.  `degraded` mirrors the
/// factorization's perturbation flag; when set, iterative refinement ran
/// and `backward_error` is the final max-norm relative residual
/// ||b - Ax|| / ||b|| (the accuracy actually delivered).
struct SolveReport {
  bool degraded = false;
  int refine_iterations = 0;
  double backward_error = 0.0;
};

template <typename T>
class Solver {
 public:
  Solver() = default;
  explicit Solver(SolverOptions options) : options_(std::move(options)) {}

  SolverOptions& options() { return options_; }
  const SolverOptions& options() const { return options_; }

  /// Ordering + symbolic factorization of the pattern of `a`.  Resets any
  /// existing factors (they belong to the previous analysis).
  void analyze(const CscMatrix<T>& a);

  /// Adopts an already-computed analysis shared with other solvers (the
  /// solve service's pattern-keyed cache uses this).  `digest` must be the
  /// pattern_digest() of the matrix the analysis was computed from; it is
  /// what factorize() checks its input against.  Resets current factors.
  void adopt_analysis(std::shared_ptr<const Analysis> analysis,
                      std::uint64_t digest);

  /// Numerical factorization of `a`, whose pattern must be the analyzed
  /// one.  Throws InvalidArgument before analyze() or on a pattern
  /// mismatch, and NumericalError on breakdown (an indefinite LL^T pivot,
  /// or any bad pivot when pivot_threshold == 0).  On ANY failure the
  /// solver rolls back to "analyzed, not factorized": factorize() can be
  /// retried (e.g. with different options) without re-analyzing.
  void factorize(const CscMatrix<T>& a, Factorization kind);

  /// Numeric-only re-factorization: ingests the new values of `a` (whose
  /// pattern must be the factorized one) while reusing the cached analysis
  /// AND the already-allocated FactorData -- no re-analyze, no re-alloc.
  /// This is the time-stepping / Newton-loop fast path: the symbolic side
  /// is value-independent under static pivoting, so only the numeric sweep
  /// reruns.  Throws InvalidArgument before the first factorize() (the
  /// fast path has nothing to reuse) and on a pattern-digest mismatch.
  /// On numeric failure the PREVIOUS factors are rolled back intact --
  /// unlike factorize(), a failed refactorize leaves the solver still
  /// factorized and servable with the old values.
  void refactorize(const CscMatrix<T>& a);

  /// In-place solve of A x = b using the current factors.  When the
  /// factorization was perturbed, iterative refinement runs automatically
  /// against the retained input matrix; the report says what happened.
  SolveReport solve(std::span<T> b) const;

  /// In-place multi-RHS solve: `b` holds nrhs column-major right-hand
  /// sides of length n (leading dimension n).  Degraded factors refine
  /// every column; the report carries the worst column's figures.
  SolveReport solve_multi(std::span<T> b, index_t nrhs) const;

  /// Iterative refinement: improves x (starting from a direct solve) until
  /// the relative residual drops below `tol`; returns iterations used.
  int solve_refine(const CscMatrix<T>& a, std::span<const T> b,
                   std::span<T> x, double tol = 1e-12,
                   int max_iter = 10) const;

  bool analyzed() const { return analysis_ != nullptr; }
  bool factorized() const { return factors_ != nullptr; }
  const Analysis& analysis() const {
    SPX_CHECK_ARG(analyzed(), "analyze() has not run");
    return *analysis_;
  }
  /// The analysis as shared immutable state (null before analyze()); the
  /// service's cache hands this to other solvers via adopt_analysis().
  std::shared_ptr<const Analysis> analysis_shared() const {
    return analysis_;
  }
  /// Cheap structure hash of the analyzed pattern (pattern_digest() of the
  /// matrix passed to analyze(), or the digest given to adopt_analysis()).
  std::uint64_t pattern_digest() const {
    SPX_CHECK_ARG(analyzed(), "analyze() has not run");
    return pattern_digest_;
  }
  const RunStats& last_factorization_stats() const { return stats_; }
  Factorization factorization_kind() const { return kind_; }

  /// The numerical factors, read-only (snapshot serialization); throws
  /// before factorize().
  const FactorData<T>& factor_data() const {
    SPX_CHECK_ARG(factorized(), "factorize() has not run");
    return *factors_;
  }

  /// Reinstates factors persisted from an identical (pattern, values,
  /// kind) triple without running a driver: allocates FactorData against
  /// the adopted analysis, copies the value arrays, and marks the solver
  /// factorized.  Only non-degraded factors are restorable (a degraded
  /// solve needs the retained input matrix for refinement, which
  /// snapshots deliberately do not carry).  Throws InvalidArgument
  /// before analyze()/adopt_analysis() or on a size mismatch.
  void restore_factors(Factorization kind, std::span<const T> l,
                       std::span<const T> u, std::span<const T> d,
                       const FactorQuality& quality);

  /// The loaded (and online-refined) performance model, or nullptr when
  /// none is configured / the file failed to load.  Loaded lazily by the
  /// first factorize() after perf_model_file is set.
  perfmodel::PerfModel* perf_model() { return perf_model_.get(); }
  const perfmodel::PerfModel* perf_model() const { return perf_model_.get(); }

 private:
  void load_perf_model();
  /// Runs the scheduler/driver (or the sequential loop) on factors_,
  /// parenting driver spans under `parent` (the factorize span).
  void factorize_numeric(obs::SpanContext parent);
  /// Registry bumps shared by solve()/solve_multi().
  void note_solve_metrics(index_t nrhs, const SolveReport& report) const;
  /// Plain substitution (no refinement) on a permuted-consistent rhs.
  void direct_solve(std::span<T> b) const;
  /// Refinement loop of the degraded path: improves x against
  /// refine_matrix_, starting from b0 (the original rhs).
  SolveReport refine_degraded(std::span<T> x,
                              std::span<const T> b0) const;

  SolverOptions options_;
  std::shared_ptr<const Analysis> analysis_;
  std::uint64_t pattern_digest_ = 0;
  std::unique_ptr<FactorData<T>> factors_;
  Factorization kind_ = Factorization::LLT;
  RunStats stats_;
  std::shared_ptr<perfmodel::PerfModel> perf_model_;
  std::string perf_model_loaded_from_;  ///< file behind perf_model_
  /// Input matrix retained by a *degraded* factorize() so solve() can
  /// refine without asking the caller to keep A around (null otherwise).
  std::unique_ptr<CscMatrix<T>> refine_matrix_;
  /// Value snapshot (L then U then D) taken at the top of refactorize();
  /// sized on first use, reused after -- the rollback that keeps a failed
  /// refactorize servable costs no steady-state allocation.
  std::vector<T> refactor_backup_;
};

extern template class Solver<real_t>;
extern template class Solver<complex_t>;

}  // namespace spx
