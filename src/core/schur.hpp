// Schur complement / partial factorization.
//
// Factors only the "interior" unknowns of A and leaves the caller's
// "interface" set unfactored: on completion the trailing panels hold the
// dense Schur complement S = A22 - A21 * A11^{-1} * A12.  This is the
// building block of (PaStiX-style) domain-decomposition workflows: each
// subdomain condenses onto its interface, the small dense interface system
// is solved by any means, and the interiors are recovered by
// back-substitution.
//
// Workflow:
//   SchurComplement<double> sc;
//   sc.compute(A, interface_ids, Factorization::LLT);
//   auto S = sc.schur_matrix();            // dense k x k, column-major
//   auto bhat = sc.condense_rhs(b);        // b2 - A21 A11^{-1} b1
//   ... solve S * x2 = bhat externally ...
//   auto x = sc.expand_solution(b, x2);    // recover interior x1
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/analysis.hpp"
#include "core/factor_data.hpp"

namespace spx {

template <typename T>
class SchurComplement {
 public:
  SchurComplement() = default;
  explicit SchurComplement(AnalysisOptions options)
      : options_(std::move(options)) {}

  /// Orders interior unknowns with nested dissection, pins the interface
  /// set last, and runs the partial factorization.
  void compute(const CscMatrix<T>& a, std::span<const index_t> interface_ids,
               Factorization kind);

  index_t schur_size() const { return k_; }
  index_t interior_size() const { return n_ - k_; }

  /// Dense k x k Schur complement, column-major, in the order of the
  /// `interface_ids` passed to compute().  Symmetric kinds return the full
  /// (mirrored) matrix.
  std::vector<T> schur_matrix() const;

  /// Condensed right-hand side for the interface system:
  /// bhat = b2 - A21 * A11^{-1} * b1 (ordered like `interface_ids`).
  std::vector<T> condense_rhs(std::span<const T> b) const;

  /// Completes the solve given the interface solution x2 (ordered like
  /// `interface_ids`): returns the full-length x with the interior
  /// recovered by back-substitution.
  std::vector<T> expand_solution(std::span<const T> b,
                                 std::span<const T> x2) const;

 private:
  /// Partial forward pass on the permuted vector (interior panels only).
  void forward_interior(std::span<T> px) const;

  AnalysisOptions options_;
  std::optional<Analysis> analysis_;
  std::unique_ptr<FactorData<T>> factors_;
  Factorization kind_ = Factorization::LLT;
  index_t n_ = 0;
  index_t k_ = 0;
  index_t first_schur_panel_ = 0;
};

extern template class SchurComplement<real_t>;
extern template class SchurComplement<complex_t>;

}  // namespace spx
