#include "core/mixed.hpp"

#include <cmath>

#include "core/sequential.hpp"
#include "core/solve.hpp"

namespace spx {
namespace {

CscMatrix<real32_t> cast_to_float(const CscMatrix<real_t>& a) {
  std::vector<real32_t> values(a.values().begin(), a.values().end());
  return CscMatrix<real32_t>(
      a.nrows(), a.ncols(),
      std::vector<size_type>(a.colptr().begin(), a.colptr().end()),
      std::vector<index_t>(a.rowind().begin(), a.rowind().end()),
      std::move(values));
}

}  // namespace

void MixedPrecisionSolver::adopt_analysis(
    std::shared_ptr<const Analysis> analysis, std::uint64_t digest) {
  SPX_CHECK_ARG(analysis != nullptr, "adopt_analysis(): null analysis");
  adopted_ = std::move(analysis);
  adopted_digest_ = digest;
  factors_.reset();
}

void MixedPrecisionSolver::factorize(const CscMatrix<real_t>& a,
                                     Factorization kind) {
  SPX_CHECK_ARG(a.nrows() == a.ncols(), "square matrix required");
  const std::uint64_t digest = spx::pattern_digest(a);
  if (adopted_ != nullptr && adopted_digest_ == digest) {
    analysis_ = adopted_;
  } else {
    analysis_ = std::make_shared<const Analysis>(analyze(a, options_));
  }
  pattern_digest_ = digest;
  factors_.reset();
  a_ = std::make_unique<CscMatrix<real_t>>(a);
  const CscMatrix<real32_t> af =
      permute_symmetric(cast_to_float(a), analysis_->perm);
  factors_ =
      std::make_unique<FactorData<real32_t>>(analysis_->structure, kind);
  factors_->initialize(af);
  try {
    factorize_sequential(*factors_);
  } catch (...) {
    factors_.reset();  // like Solver: failure leaves "not factorized"
    throw;
  }
}

void MixedPrecisionSolver::refactorize(const CscMatrix<real_t>& a) {
  SPX_CHECK_ARG(factorized(),
                "refactorize() before factorize(): the fast path reuses "
                "the allocated float factors; run factorize() first");
  SPX_CHECK_ARG(a.nrows() == a.ncols(), "square matrix required");
  SPX_CHECK_ARG(spx::pattern_digest(a) == pattern_digest_,
                "refactorize(): matrix pattern differs from the "
                "factorized pattern");
  const std::span<const real32_t> l = factors_->lvalues();
  const std::span<const real32_t> u = factors_->uvalues();
  const std::span<const real32_t> d = factors_->dvalues();
  refactor_backup_.resize(l.size() + u.size() + d.size());
  std::copy(l.begin(), l.end(), refactor_backup_.begin());
  std::copy(u.begin(), u.end(), refactor_backup_.begin() + l.size());
  std::copy(d.begin(), d.end(),
            refactor_backup_.begin() + l.size() + u.size());
  auto prev_a = std::move(a_);
  a_ = std::make_unique<CscMatrix<real_t>>(a);
  const CscMatrix<real32_t> af =
      permute_symmetric(cast_to_float(a), analysis_->perm);
  factors_->reset();
  factors_->initialize(af);
  try {
    factorize_sequential(*factors_);
  } catch (...) {
    factors_->restore_values(
        std::span<const real32_t>(refactor_backup_.data(), l.size()),
        std::span<const real32_t>(refactor_backup_.data() + l.size(),
                                  u.size()),
        std::span<const real32_t>(
            refactor_backup_.data() + l.size() + u.size(), d.size()));
    a_ = std::move(prev_a);
    throw;
  }
}

MixedSolveReport MixedPrecisionSolver::solve(std::span<const real_t> b,
                                             std::span<real_t> x,
                                             double tol,
                                             int max_iter) const {
  SPX_CHECK_ARG(factorized(), "factorize() has not run");
  const index_t n = analysis_->perm.size();
  SPX_CHECK_ARG(static_cast<index_t>(b.size()) == n &&
                    static_cast<index_t>(x.size()) == n,
                "size mismatch");

  // One preconditioner application: y = P^{-1} r through the float
  // factors (cast down, permute, solve, cast back).
  std::vector<real32_t> rf(static_cast<std::size_t>(n));
  std::vector<real32_t> pf(static_cast<std::size_t>(n));
  const auto precondition = [&](const std::vector<real_t>& r,
                                std::vector<real_t>& y) {
    for (index_t i = 0; i < n; ++i) {
      rf[i] = static_cast<real32_t>(r[i]);
    }
    permute_vector<real32_t>(analysis_->perm, rf, pf);
    solve_permuted(*factors_, std::span<real32_t>(pf));
    unpermute_vector<real32_t>(analysis_->perm, pf, rf);
    for (index_t i = 0; i < n; ++i) {
      y[i] = static_cast<real_t>(rf[i]);
    }
  };

  double bnorm = 0.0;
  for (const real_t v : b) bnorm = std::max(bnorm, std::abs(v));
  if (bnorm == 0.0) bnorm = 1.0;

  std::fill(x.begin(), x.end(), real_t(0));
  std::vector<real_t> r(b.begin(), b.end());
  std::vector<real_t> dx(static_cast<std::size_t>(n));
  MixedSolveReport report;
  for (int iter = 1; iter <= max_iter; ++iter) {
    precondition(r, dx);
    for (index_t i = 0; i < n; ++i) x[i] += dx[i];
    a_->multiply(std::span<const real_t>(x.data(), x.size()), r);
    double rnorm = 0.0;
    for (index_t i = 0; i < n; ++i) {
      r[i] = b[i] - r[i];
      rnorm = std::max(rnorm, std::abs(r[i]));
    }
    report.iterations = iter;
    report.residual = rnorm / bnorm;
    if (report.residual <= tol) {
      report.converged = true;
      break;
    }
  }
  return report;
}

MixedSolveReport MixedPrecisionSolver::solve_multi(std::span<real_t> b,
                                                   index_t nrhs, double tol,
                                                   int max_iter) const {
  SPX_CHECK_ARG(factorized(), "factorize() has not run");
  const index_t n = analysis_->perm.size();
  SPX_CHECK_ARG(static_cast<index_t>(b.size()) == n * nrhs,
                "rhs block size mismatch");
  MixedSolveReport worst;
  worst.converged = true;
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t c = 0; c < nrhs; ++c) {
    const std::span<real_t> col(b.data() + std::size_t(c) * n,
                                static_cast<std::size_t>(n));
    const MixedSolveReport r =
        solve(std::span<const real_t>(col.data(), col.size()),
              std::span<real_t>(x), tol, max_iter);
    std::copy(x.begin(), x.end(), col.begin());
    worst.iterations = std::max(worst.iterations, r.iterations);
    worst.residual = std::max(worst.residual, r.residual);
    worst.converged = worst.converged && r.converged;
  }
  return worst;
}

}  // namespace spx
