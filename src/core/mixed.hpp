// Mixed-precision solver: single-precision factorization with
// double-precision iterative refinement.
//
// The factorization is done entirely in float -- half the memory, half the
// memory traffic, and on real accelerators a large rate advantage -- and
// its triangular solves serve as the preconditioner of a double-precision
// refinement loop.  For reasonably conditioned systems this recovers full
// double accuracy in a handful of sweeps, the classic
// Langou/Buttari-style mixed-precision scheme production solvers
// (including PaStiX) offer.
//
// The solve service's PrecisionPolicy::Fp32Refine path drives this class
// with a shared analysis (adopt_analysis) and the refactorize() fast path,
// mirroring Solver's lifecycle; solve() reports whether refinement reached
// the target so callers can gate an automatic fp64 fallback.
#pragma once

#include <memory>

#include "core/analysis.hpp"
#include "core/codelets.hpp"
#include "core/factor_data.hpp"

namespace spx {

struct MixedSolveReport {
  int iterations = 0;        ///< refinement sweeps used
  double residual = 0.0;     ///< final relative residual (inf norm)
  bool converged = false;
};

class MixedPrecisionSolver {
 public:
  MixedPrecisionSolver() = default;
  explicit MixedPrecisionSolver(AnalysisOptions options)
      : options_(std::move(options)) {}

  /// Adopts an analysis shared with other solvers (the service's
  /// pattern-keyed cache); factorize() then skips its private analyze.
  /// `digest` must be the pattern_digest() of the analyzed matrix.
  void adopt_analysis(std::shared_ptr<const Analysis> analysis,
                      std::uint64_t digest);

  /// Factorizes the float cast of `a` (analyzing its pattern first unless
  /// a matching analysis was adopted).  Keeps a reference copy of `a`
  /// internally for refinement residuals.
  void factorize(const CscMatrix<real_t>& a, Factorization kind);

  /// Numeric-only re-factorization mirroring Solver::refactorize(): casts
  /// the new values down and reruns the float sweep against the live
  /// FactorData allocation.  Throws InvalidArgument before the first
  /// factorize() or on a pattern mismatch; on numeric failure the
  /// previous float factors (and reference matrix) roll back intact.
  void refactorize(const CscMatrix<real_t>& a);

  /// Solves A x = b to (near) double accuracy via refinement; `x` is
  /// output-only.  Throws when factorize() has not run.
  MixedSolveReport solve(std::span<const real_t> b, std::span<real_t> x,
                         double tol = 1e-12, int max_iter = 30) const;

  /// In-place multi-RHS refinement solve: `b` holds nrhs column-major
  /// right-hand sides and is overwritten with the solutions.  The report
  /// carries the worst column's figures (converged only if every column
  /// converged).
  MixedSolveReport solve_multi(std::span<real_t> b, index_t nrhs,
                               double tol = 1e-12, int max_iter = 30) const;

  bool factorized() const { return factors_ != nullptr; }
  /// Digest of the factorized pattern (0 before factorize()).
  std::uint64_t pattern_digest() const { return pattern_digest_; }
  /// Bytes of the single-precision factors (half of a double run).
  std::size_t factor_bytes() const {
    return factors_ ? factors_->bytes() : 0;
  }

 private:
  AnalysisOptions options_;
  std::shared_ptr<const Analysis> analysis_;
  std::shared_ptr<const Analysis> adopted_;  ///< from adopt_analysis()
  std::uint64_t adopted_digest_ = 0;
  std::uint64_t pattern_digest_ = 0;
  std::unique_ptr<FactorData<real32_t>> factors_;
  std::unique_ptr<CscMatrix<real_t>> a_;
  /// Rollback snapshot (L then U then D) reused across refactorize().
  mutable std::vector<real32_t> refactor_backup_;
};

}  // namespace spx
