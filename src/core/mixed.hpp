// Mixed-precision solver: single-precision factorization with
// double-precision iterative refinement.
//
// The factorization is done entirely in float -- half the memory, half the
// memory traffic, and on real accelerators a large rate advantage -- and
// its triangular solves serve as the preconditioner of a double-precision
// refinement loop.  For reasonably conditioned systems this recovers full
// double accuracy in a handful of sweeps, the classic
// Langou/Buttari-style mixed-precision scheme production solvers
// (including PaStiX) offer.
#pragma once

#include <memory>
#include <optional>

#include "core/analysis.hpp"
#include "core/codelets.hpp"
#include "core/factor_data.hpp"

namespace spx {

struct MixedSolveReport {
  int iterations = 0;        ///< refinement sweeps used
  double residual = 0.0;     ///< final relative residual (inf norm)
  bool converged = false;
};

class MixedPrecisionSolver {
 public:
  MixedPrecisionSolver() = default;
  explicit MixedPrecisionSolver(AnalysisOptions options)
      : options_(std::move(options)) {}

  /// Analyzes the double-precision matrix and factorizes its float cast.
  /// Keeps a reference copy of `a` internally for refinement residuals.
  void factorize(const CscMatrix<real_t>& a, Factorization kind);

  /// Solves A x = b to (near) double accuracy via refinement; `x` is
  /// output-only.  Throws when factorize() has not run.
  MixedSolveReport solve(std::span<const real_t> b, std::span<real_t> x,
                         double tol = 1e-12, int max_iter = 30) const;

  bool factorized() const { return factors_ != nullptr; }
  /// Bytes of the single-precision factors (half of a double run).
  std::size_t factor_bytes() const {
    return factors_ ? factors_->bytes() : 0;
  }

 private:
  AnalysisOptions options_;
  std::optional<Analysis> analysis_;
  std::unique_ptr<FactorData<real32_t>> factors_;
  std::unique_ptr<CscMatrix<real_t>> a_;
};

}  // namespace spx
