// The analysis phase: ordering + symbolic factorization + amalgamation +
// panel splitting.  Runs once per matrix pattern; its output (an
// Analysis) is shared by every factorization kind, runtime, and platform
// -- exactly PASTIX's "analyze" step, which can be reused across numerical
// factorizations thanks to static pivoting (paper §III).
#pragma once

#include "graph/orderings.hpp"
#include "graph/permute_graph.hpp"
#include "symbolic/etree.hpp"
#include "symbolic/structure.hpp"

namespace spx {

enum class OrderingMethod { NestedDissection, MinimumDegree, RCM, Natural };

struct AnalysisOptions {
  OrderingMethod ordering = OrderingMethod::NestedDissection;
  NestedDissectionOptions nd;
  SymbolicOptions symbolic;
};

struct Analysis {
  /// Combined permutation: fill-reducing ordering, etree postorder, and
  /// amalgamation renumbering.
  Ordering perm;
  SymbolicStructure structure;
  /// nnz of the (symmetrized) input pattern including the diagonal.
  size_type nnz_a = 0;
  /// Extra explicit zeros accepted by amalgamation.
  size_type amalgamation_fill = 0;

  double total_flops(Factorization kind) const {
    return structure.total_flops(kind);
  }
};

/// Analyzes a symmetric pattern given as a Graph.
Analysis analyze_pattern(const Graph& g, const AnalysisOptions& opts = {});

/// Pipeline entry with a caller-supplied fill-reducing ordering; when
/// `schur_tail` > 0 the last `schur_tail` columns of `ord` are kept as a
/// contiguous, unmerged trailing block (Schur complement support; the
/// caller must have made them a clique in `g`).
Analysis analyze_ordered(const Graph& g, Ordering ord,
                         const AnalysisOptions& opts, index_t schur_tail);

/// Convenience: symmetrizes the matrix pattern and analyzes it.
template <typename T>
Analysis analyze(const CscMatrix<T>& a, const AnalysisOptions& opts = {}) {
  SPX_CHECK_ARG(a.nrows() == a.ncols(), "square matrix required");
  Analysis an = analyze_pattern(Graph::from_pattern(a), opts);
  an.nnz_a = a.nnz();
  return an;
}

}  // namespace spx
