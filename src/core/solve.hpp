// Triangular solve phase: forward/backward substitution over panels.
//
// Operates on the permuted right-hand side; the Solver facade wraps the
// permutations.  The solve traverses panels in order (forward) and reverse
// (backward); off-diagonal blocks gather/scatter against the dense global
// vector using the block row intervals, so no row-index indirection is
// needed.
#pragma once

#include <span>

#include "core/factor_data.hpp"

namespace spx {

/// x := L^{-1} x (LLT), or unit-L^{-1} x (LDLT/LU).  `panel_limit`
/// restricts the pass to panels [0, panel_limit) (-1 = all): the partial
/// pass a Schur condensation needs.
template <typename T>
void solve_forward(const FactorData<T>& f, std::span<T> x,
                   index_t panel_limit = -1);

/// LDLT only: x := D^{-1} x (restricted to panels [0, panel_limit)).
template <typename T>
void solve_diagonal(const FactorData<T>& f, std::span<T> x,
                    index_t panel_limit = -1);

/// x := L^{-T} x (LLT), unit-L^{-T} x (LDLT), or U^{-1} x (LU), again
/// restrictable to the first `panel_limit` panels.
template <typename T>
void solve_backward(const FactorData<T>& f, std::span<T> x,
                    index_t panel_limit = -1);

/// Full solve of the factorized system (forward, diagonal, backward as
/// appropriate for the factorization kind), on the permuted RHS in place.
template <typename T>
void solve_permuted(const FactorData<T>& f, std::span<T> x);

/// Multi-RHS variants: X is n x nrhs column-major with leading dimension
/// ldx; panel updates become GEMMs instead of GEMVs.
template <typename T>
void solve_forward_multi(const FactorData<T>& f, T* x, index_t nrhs,
                         index_t ldx);
template <typename T>
void solve_diagonal_multi(const FactorData<T>& f, T* x, index_t nrhs,
                          index_t ldx);
template <typename T>
void solve_backward_multi(const FactorData<T>& f, T* x, index_t nrhs,
                          index_t ldx);
template <typename T>
void solve_permuted_multi(const FactorData<T>& f, T* x, index_t nrhs,
                          index_t ldx);

}  // namespace spx
