#include "core/sequential.hpp"

#include <utility>
#include <vector>

namespace spx {

template <typename T>
void factorize_sequential(FactorData<T>& f, UpdateVariant variant,
                          bool fused_ldlt) {
  const SymbolicStructure& st = f.structure();
  Workspace<T> ws;
  Workspace<T> prescale_ws;
  for (index_t p = 0; p < st.num_panels(); ++p) {
    factor_panel(f, p);
    const T* prescaled = nullptr;
    if (f.kind() == Factorization::LDLT && !fused_ldlt &&
        !st.targets[p].empty()) {
      prescale_ldlt(f, p, prescale_ws);
      prescaled = prescale_ws.scaled.data();
    }
    for (const UpdateEdge& e : st.targets[p]) {
      apply_update(f, p, e, variant, ws, prescaled);
    }
  }
}

template <typename T>
void factorize_sequential_left(FactorData<T>& f, UpdateVariant variant) {
  const SymbolicStructure& st = f.structure();
  // Reverse adjacency: incoming update edges per panel, in ascending
  // source order (matching the right-looking application order exactly,
  // so both traversals produce bit-identical factors).
  std::vector<std::vector<std::pair<index_t, index_t>>> incoming(
      static_cast<std::size_t>(st.num_panels()));
  for (index_t q = 0; q < st.num_panels(); ++q) {
    for (index_t e = 0; e < static_cast<index_t>(st.targets[q].size());
         ++e) {
      incoming[st.targets[q][e].dst].emplace_back(q, e);
    }
  }
  Workspace<T> ws;
  for (index_t p = 0; p < st.num_panels(); ++p) {
    for (const auto& [q, e] : incoming[p]) {
      apply_update(f, q, st.targets[q][e], variant, ws);
    }
    factor_panel(f, p);
  }
}

template void factorize_sequential<real_t>(FactorData<real_t>&,
                                           UpdateVariant, bool);
template void factorize_sequential<complex_t>(FactorData<complex_t>&,
                                              UpdateVariant, bool);
template void factorize_sequential_left<real_t>(FactorData<real_t>&,
                                                UpdateVariant);
template void factorize_sequential_left<complex_t>(FactorData<complex_t>&,
                                                   UpdateVariant);
template void factorize_sequential<real32_t>(FactorData<real32_t>&,
                                             UpdateVariant, bool);
template void factorize_sequential_left<real32_t>(FactorData<real32_t>&,
                                                  UpdateVariant);

}  // namespace spx
