// Numerical storage of the factors, organized by panel.
//
// A panel is stored as a dense column-major (nrows x width) matrix: the
// diagonal block (full square; LU keeps U11 in its upper triangle) on top
// of the stacked off-diagonal blocks.  For LU a second array of identical
// shape holds U^T (so the U-side update has the exact same kernel shape as
// the L side).  LDL^T keeps D in a separate vector.
#pragma once

#include <algorithm>
#include <mutex>
#include <new>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/factor_quality.hpp"
#include "mat/csc.hpp"
#include "symbolic/structure.hpp"

namespace spx {

/// Hook consulted before large factor allocations; lets tests and the
/// fault-injection harness simulate memory exhaustion deterministically.
class AllocationHook {
 public:
  virtual ~AllocationHook() = default;
  /// Return true to make the allocation of `bytes` fail (std::bad_alloc).
  virtual bool fail_alloc(std::size_t bytes) = 0;
};

template <typename T>
class FactorData {
 public:
  FactorData() = default;
  FactorData(const SymbolicStructure& st, Factorization kind,
             AllocationHook* alloc_hook = nullptr)
      : st_(&st), kind_(kind) {
    std::size_t bytes =
        static_cast<std::size_t>(st.factor_entries) * sizeof(T);
    if (kind == Factorization::LU) bytes *= 2;
    if (alloc_hook != nullptr && alloc_hook->fail_alloc(bytes)) {
      throw std::bad_alloc();
    }
    lval_.assign(static_cast<std::size_t>(st.factor_entries), T(0));
    if (kind == Factorization::LU) {
      uval_.assign(static_cast<std::size_t>(st.factor_entries), T(0));
    }
    if (kind == Factorization::LDLT) {
      dval_.assign(static_cast<std::size_t>(st.num_cols()), T(0));
    }
  }

  // The quality mutex is not movable; moves are only performed while no
  // factorization is running, so a fresh mutex on the destination is fine.
  FactorData(FactorData&& o) noexcept
      : st_(o.st_),
        kind_(o.kind_),
        lval_(std::move(o.lval_)),
        uval_(std::move(o.uval_)),
        dval_(std::move(o.dval_)),
        pivot_threshold_(o.pivot_threshold_),
        quality_(std::move(o.quality_)) {}
  FactorData& operator=(FactorData&& o) noexcept {
    st_ = o.st_;
    kind_ = o.kind_;
    lval_ = std::move(o.lval_);
    uval_ = std::move(o.uval_);
    dval_ = std::move(o.dval_);
    pivot_threshold_ = o.pivot_threshold_;
    quality_ = std::move(o.quality_);
    return *this;
  }

  const SymbolicStructure& structure() const { return *st_; }
  Factorization kind() const { return kind_; }

  T* panel_l(index_t p) {
    return lval_.data() + st_->panels[p].storage_offset;
  }
  const T* panel_l(index_t p) const {
    return lval_.data() + st_->panels[p].storage_offset;
  }
  T* panel_u(index_t p) {
    SPX_DEBUG_ASSERT(kind_ == Factorization::LU);
    return uval_.data() + st_->panels[p].storage_offset;
  }
  const T* panel_u(index_t p) const {
    return uval_.data() + st_->panels[p].storage_offset;
  }
  /// LDL^T diagonal for the columns of panel p.
  T* panel_d(index_t p) { return dval_.data() + st_->panels[p].col_begin; }
  const T* panel_d(index_t p) const {
    return dval_.data() + st_->panels[p].col_begin;
  }

  std::size_t bytes() const {
    return (lval_.size() + uval_.size() + dval_.size()) * sizeof(T);
  }

  /// Raw value arrays, exposed read-only for the persistence layer's
  /// snapshot writer (persist/snapshot.cpp); empty when the kind does not
  /// use that array.
  std::span<const T> lvalues() const { return lval_; }
  std::span<const T> uvalues() const { return uval_; }
  std::span<const T> dvalues() const { return dval_; }

  /// Overwrites the value arrays with persisted bytes (the warm-restore
  /// path); sizes must match what the structure allocated.
  void restore_values(std::span<const T> l, std::span<const T> u,
                      std::span<const T> d) {
    SPX_CHECK_ARG(l.size() == lval_.size() && u.size() == uval_.size() &&
                      d.size() == dval_.size(),
                  "restored factor arrays do not match the structure");
    std::copy(l.begin(), l.end(), lval_.begin());
    std::copy(u.begin(), u.end(), uval_.begin());
    std::copy(d.begin(), d.end(), dval_.begin());
  }

  /// Reinstates a persisted quality record verbatim (warm-restore path;
  /// the live path accumulates via merge_quality instead).
  void set_quality(const FactorQuality& q) {
    std::lock_guard<std::mutex> lock(quality_mutex_);
    quality_ = q;
  }

  /// Arms static-pivot perturbation for the next factorization:
  /// `abs_threshold` is the already-scaled absolute floor (eps * ||A||),
  /// 0 keeps the legacy throw-on-bad-pivot behaviour.
  void set_pivot_policy(double abs_threshold, double anorm) {
    pivot_threshold_ = abs_threshold;
    std::lock_guard<std::mutex> lock(quality_mutex_);
    quality_ = FactorQuality{};
    quality_.threshold = abs_threshold;
    quality_.anorm = anorm;
  }
  double pivot_threshold() const { return pivot_threshold_; }

  /// Folds one panel's pivot accounting into the factor-wide record
  /// (called concurrently by factor_panel tasks).
  void merge_quality(const FactorQuality& panel) {
    std::lock_guard<std::mutex> lock(quality_mutex_);
    quality_.merge(panel);
  }
  FactorQuality quality() const {
    std::lock_guard<std::mutex> lock(quality_mutex_);
    return quality_;
  }

  /// Fills the panels from the *permuted* matrix: the lower triangle goes
  /// to L; for LU the upper triangle goes to U^T panels and the diagonal
  /// block keeps its upper part in L (it becomes U11 after getrf).
  void initialize(const CscMatrix<T>& a_perm);

  /// Zeroes all values (so a FactorData can be refilled and refactored).
  void reset() {
    std::fill(lval_.begin(), lval_.end(), T(0));
    std::fill(uval_.begin(), uval_.end(), T(0));
    std::fill(dval_.begin(), dval_.end(), T(0));
  }

  /// Storage row of global row `r` inside panel `p`; r must be in the
  /// panel's structure.  Binary search over blocks.
  index_t row_position(index_t p, index_t r) const {
    const auto& blocks = st_->panels[p].blocks;
    std::size_t lo = 0, hi = blocks.size();
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (blocks[mid].row_begin <= r) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    SPX_DEBUG_ASSERT(blocks[lo].row_begin <= r && r < blocks[lo].row_end);
    return blocks[lo].offset + (r - blocks[lo].row_begin);
  }

 private:
  const SymbolicStructure* st_ = nullptr;
  Factorization kind_ = Factorization::LLT;
  std::vector<T> lval_;
  std::vector<T> uval_;
  std::vector<T> dval_;
  double pivot_threshold_ = 0.0;
  mutable std::mutex quality_mutex_;
  FactorQuality quality_;
};

extern template class FactorData<real_t>;
extern template class FactorData<complex_t>;
extern template class FactorData<real32_t>;

}  // namespace spx
