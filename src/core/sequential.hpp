// Sequential reference factorization: the plain right-looking supernodal
// loop with no runtime at all.  Serves as the correctness oracle for the
// three task-based schedulers and as the single-resource baseline.
#pragma once

#include "core/codelets.hpp"

namespace spx {

/// Factorizes in place, panel by panel (right-looking, PASTIX's choice:
/// each factored panel immediately scatters its updates).  `variant`
/// selects the update kernel path; `fused_ldlt` mimics the generic
/// runtimes' per-update rescaling instead of the native shared prescale
/// buffer.
template <typename T>
void factorize_sequential(FactorData<T>& f,
                          UpdateVariant variant = UpdateVariant::TempBuffer,
                          bool fused_ldlt = false);

/// Left-looking variant (paper §III: "all tasks contributing to a single
/// panel are associated in a single task, they have a lot of input edges
/// and only one in-out data"): each panel first gathers every incoming
/// update, then factors.  Identical arithmetic and results to the
/// right-looking loop; only the traversal differs.
template <typename T>
void factorize_sequential_left(
    FactorData<T>& f, UpdateVariant variant = UpdateVariant::TempBuffer);

extern template void factorize_sequential<real_t>(FactorData<real_t>&,
                                                  UpdateVariant, bool);
extern template void factorize_sequential<complex_t>(FactorData<complex_t>&,
                                                     UpdateVariant, bool);
extern template void factorize_sequential_left<real_t>(FactorData<real_t>&,
                                                       UpdateVariant);
extern template void factorize_sequential_left<complex_t>(
    FactorData<complex_t>&, UpdateVariant);

}  // namespace spx
