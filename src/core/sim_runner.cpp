#include "core/sim_runner.hpp"

#include "runtime/native_scheduler.hpp"
#include "runtime/parsec_scheduler.hpp"
#include "runtime/starpu_scheduler.hpp"
#include "sim/cost_model.hpp"
#include "sim/sim_driver.hpp"

namespace spx {

RunStats simulate_run(const Analysis& an, Factorization kind,
                      const SimRunConfig& config) {
  const SymbolicStructure& st = an.structure;
  TaskTable table(st, kind);
  const double flops = st.total_flops(kind);

  sim::CostModel::Options mopts;
  mopts.complex_arith = config.complex_arith;
  mopts.measured = config.perf_model;

  if (config.scheduler == "native" || config.scheduler == "native-prop") {
    SPX_CHECK_ARG(config.gpus == 0, "native scheduler is CPU-only");
    mopts.ldlt = sim::LdltStrategy::Prescaled;
    mopts.task_overhead = config.overhead_native;
    sim::CostModel model(config.platform, st, kind, mopts);
    Machine machine(config.cores);
    NativeOptions nopts;
    if (config.scheduler == "native-prop") {
      nopts.mapping = NativeOptions::Mapping::Proportional;
    }
    NativeScheduler sched(table, machine, model, nopts);
    return sim::simulate(sched, machine, table, model, flops);
  }
  if (config.scheduler == "starpu" || config.scheduler == "starpu-eager") {
    mopts.ldlt = sim::LdltStrategy::Fused;
    mopts.task_overhead = config.overhead_starpu;
    sim::CostModel model(config.platform, st, kind, mopts);
    // One CPU worker is dedicated to (removed per) each GPU (paper §V-C);
    // StarPU drives each device with a single stream.
    Machine machine(std::max(1, config.cores - config.gpus), config.gpus,
                    1);
    StarpuOptions sopts;
    sopts.policy = config.scheduler == "starpu-eager"
                       ? StarpuOptions::Policy::Eager
                       : StarpuOptions::Policy::Dmda;
    sopts.gpu_min_flops = config.gpu_min_flops;
    DataDirectory directory(st, kind, config.complex_arith ? 16 : 8,
                            config.gpus);
    StarpuScheduler sched(table, machine, model, sopts, &directory);
    sim::SimOptions so;
    so.prefetch = true;
    so.directory = &directory;  // dmda estimates see true placement
    return sim::simulate(sched, machine, table, model, flops, so);
  }
  if (config.scheduler == "parsec") {
    mopts.ldlt = sim::LdltStrategy::Fused;
    mopts.task_overhead = config.overhead_parsec;
    sim::CostModel model(config.platform, st, kind, mopts);
    Machine machine(config.cores, config.gpus, config.streams_per_gpu);
    ParsecOptions popts;
    popts.gpu_min_flops = config.gpu_min_flops;
    popts.subtree_merge_seconds = config.subtree_merge_seconds;
    ParsecScheduler sched(table, machine, model, popts);
    sim::SimOptions so;
    so.prefetch = false;  // PaRSEC overlaps via streams instead
    return sim::simulate(sched, machine, table, model, flops, so);
  }
  throw InvalidArgument("unknown scheduler: " + config.scheduler);
}

}  // namespace spx
