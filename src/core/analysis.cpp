#include "core/analysis.hpp"

#include "common/log.hpp"
#include "common/timer.hpp"
#include "symbolic/amalgamation.hpp"

namespace spx {

Analysis analyze_ordered(const Graph& g, Ordering ord,
                         const AnalysisOptions& opts, index_t schur_tail) {
  Timer timer;
  const index_t n = g.num_vertices();

  // Postorder the elimination tree so subtrees (and hence supernodes) are
  // contiguous.  (With a Schur tail, the trailing clique is the top chain
  // of the tree and postorder keeps it a suffix: children are visited in
  // ascending order, so the chain child of each clique column comes last.)
  Graph g1 = permute_graph(g, ord);
  {
    const std::vector<index_t> parent = elimination_tree(g1);
    const Ordering post =
        Ordering::from_new_to_old(tree_postorder(parent));
    ord = compose(ord, post);
    g1 = permute_graph(g1, post);
  }

  const std::vector<index_t> parent = elimination_tree(g1);
  const std::vector<index_t> post = tree_postorder(parent);
  const std::vector<index_t> counts =
      cholesky_col_counts(g1, parent, post);

  SupernodePartition part = find_fundamental_supernodes(parent, counts);
  SupernodeForest forest = supernodal_symbolic(g1, parent, part);
  AmalgamationOptions aopts = opts.symbolic.amalgamation;
  if (schur_tail > 0) {
    // The Schur block must stay exactly the trailing columns: give it its
    // own supernode and refuse merges into it.
    force_partition_boundary(part, forest, n - schur_tail);
    aopts.protect_tail = schur_tail;
  }
  AmalgamationResult amal = amalgamate(part, forest, aopts);

  Analysis an;
  an.perm = compose(ord, amal.renumber);
  an.amalgamation_fill = amal.extra_fill;
  an.structure = build_structure(amal.part, amal.forest,
                                 opts.symbolic.max_panel_width);
  an.nnz_a = 2 * g.num_edges() + n;
  logf(LogLevel::Info,
       "analysis: n=%d panels=%d nnzL=%lld (+%.1f%% amalgamated) "
       "updates=%lld in %.2fs",
       n, an.structure.num_panels(),
       static_cast<long long>(an.structure.nnz_factor),
       100.0 * static_cast<double>(amal.extra_fill) /
           static_cast<double>(amal.nnz_before > 0 ? amal.nnz_before : 1),
       static_cast<long long>(an.structure.num_update_tasks()),
       timer.elapsed());
  return an;
}

Analysis analyze_pattern(const Graph& g, const AnalysisOptions& opts) {
  const index_t n = g.num_vertices();
  Ordering ord;
  switch (opts.ordering) {
    case OrderingMethod::NestedDissection:
      ord = nested_dissection(g, opts.nd);
      break;
    case OrderingMethod::MinimumDegree:
      ord = minimum_degree(g);
      break;
    case OrderingMethod::RCM:
      ord = reverse_cuthill_mckee(g);
      break;
    case OrderingMethod::Natural:
      ord = Ordering::identity(n);
      break;
  }
  return analyze_ordered(g, std::move(ord), opts, 0);
}

}  // namespace spx
