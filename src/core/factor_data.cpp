#include "core/factor_data.hpp"

namespace spx {

template <typename T>
void FactorData<T>::initialize(const CscMatrix<T>& a_perm) {
  SPX_CHECK_ARG(a_perm.nrows() == st_->num_cols() &&
                    a_perm.ncols() == st_->num_cols(),
                "matrix/structure size mismatch");
  const index_t n = st_->num_cols();
  for (index_t j = 0; j < n; ++j) {
    const index_t p = st_->panel_of_col[j];
    const Panel& panel = st_->panels[p];
    const index_t ld = panel.nrows;
    T* lcol = panel_l(p) +
              static_cast<std::size_t>(j - panel.col_begin) * ld;
    const auto rows = a_perm.col_rows(j);
    const auto vals = a_perm.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const index_t r = rows[k];
      if (r >= j) {
        // Lower triangle (and diagonal): row r of column j.
        lcol[row_position(p, r)] = vals[k];
      } else {
        // Upper entry A(r, j), r < j.
        const index_t pr = st_->panel_of_col[r];
        const Panel& prow = st_->panels[pr];
        if (pr == p) {
          // Inside the diagonal block: keep it in L storage (it becomes
          // U11 for LU; ignored by the symmetric kernels).
          lcol[r - panel.col_begin] = vals[k];
        } else if (kind_ == Factorization::LU) {
          // U^T panel of the row's supernode: U(r, j) stored at
          // (row_position(pr, j), r - col_begin).
          T* ucol = panel_u(pr) + static_cast<std::size_t>(r - prow.col_begin) *
                                      prow.nrows;
          ucol[row_position(pr, j)] = vals[k];
        }
        // Symmetric kinds ignore strict-upper entries outside the diagonal
        // block (the caller guarantees a symmetric matrix).
      }
    }
  }
}

template class FactorData<real_t>;
template class FactorData<complex_t>;
template class FactorData<real32_t>;

}  // namespace spx
