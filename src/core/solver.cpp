#include "core/solver.hpp"

#include <thread>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/sequential.hpp"
#include "kernels/dispatch.hpp"
#include "perfmodel/calibrated_costs.hpp"
#include "runtime/flop_costs.hpp"
#include "runtime/native_scheduler.hpp"
#include "runtime/real_driver.hpp"

namespace spx {

const char* to_string(RuntimeKind k) {
  switch (k) {
    case RuntimeKind::Sequential:
      return "sequential";
    case RuntimeKind::Native:
      return "native";
    case RuntimeKind::Starpu:
      return "starpu";
    case RuntimeKind::Parsec:
      return "parsec";
  }
  return "?";
}

// Loads options_.perf_model_file once per distinct path; a failed load
// warns and leaves perf_model_ null so factorize() degrades to FlopCosts.
// The loaded model is kept across factorizations: online refinement
// accumulates history that sharpens the *next* run's predictions.
template <typename T>
void Solver<T>::load_perf_model() {
  if (options_.perf_model_file == perf_model_loaded_from_) return;
  perf_model_.reset();
  perf_model_loaded_from_ = options_.perf_model_file;
  if (options_.perf_model_file.empty()) return;
  std::string error;
  std::optional<perfmodel::PerfModel> loaded =
      perfmodel::PerfModel::load(options_.perf_model_file, &error);
  if (!loaded) {
    logf(LogLevel::Warn,
         "perf model '%s' unusable (%s); falling back to flop costs",
         options_.perf_model_file.c_str(), error.c_str());
    return;
  }
  perf_model_ = std::make_shared<perfmodel::PerfModel>(std::move(*loaded));
  logf(LogLevel::Info, "loaded perf model '%s' (host '%s')",
       options_.perf_model_file.c_str(), perf_model_->host().c_str());
}

template <typename T>
void Solver<T>::analyze(const CscMatrix<T>& a) {
  obs::ScopedSpan span;
  SPX_OBS(span = obs::ScopedSpan(options_.instr.tracer, "solver.analyze",
                                 "service-", options_.instr.parent));
  Timer wall;
  analysis_ =
      std::make_shared<const Analysis>(spx::analyze(a, options_.analysis));
  pattern_digest_ = spx::pattern_digest(a);
  factors_.reset();  // stale factors belong to the previous analysis
  SPX_OBS({
    obs::MetricsRegistry& reg =
        obs::registry_or_global(options_.instr.metrics);
    reg.counter("spx_solver_analyzes_total",
                "Symbolic analyses (ordering + symbolic factorization)")
        .inc();
    reg.histogram("spx_solver_analyze_seconds",
                  obs::Histogram::duration_bounds(),
                  "Symbolic analysis wall time")
        .observe(wall.elapsed());
  });
}

template <typename T>
void Solver<T>::adopt_analysis(std::shared_ptr<const Analysis> analysis,
                               std::uint64_t digest) {
  SPX_CHECK_ARG(analysis != nullptr, "adopt_analysis(): null analysis");
  analysis_ = std::move(analysis);
  pattern_digest_ = digest;
  factors_.reset();
}

template <typename T>
void Solver<T>::restore_factors(Factorization kind, std::span<const T> l,
                                std::span<const T> u, std::span<const T> d,
                                const FactorQuality& quality) {
  SPX_CHECK_ARG(analyzed(),
                "restore_factors() needs the matching analysis adopted "
                "first");
  SPX_CHECK_ARG(!quality.degraded(),
                "degraded factors are not restorable (refinement needs "
                "the input matrix, which snapshots do not carry)");
  kind_ = kind;
  factors_.reset();
  refine_matrix_.reset();
  auto factors = std::make_unique<FactorData<T>>(analysis_->structure, kind,
                                                 options_.instr.fault);
  factors->restore_values(l, u, d);
  factors->set_pivot_policy(quality.threshold, quality.anorm);
  factors->set_quality(quality);
  factors_ = std::move(factors);
  stats_ = RunStats{};
  stats_.quality = quality;
  SPX_OBS(obs::registry_or_global(options_.instr.metrics)
              .counter("spx_solver_factors_restored_total",
                       "Factorizations reinstated from persisted snapshots")
              .inc());
}

template <typename T>
void Solver<T>::factorize(const CscMatrix<T>& a, Factorization kind) {
  SPX_CHECK_ARG(a.nrows() == a.ncols(), "square matrix required");
  SPX_CHECK_ARG(analyzed(),
                "factorize() before analyze(): run analyze(a) first (one "
                "analysis serves every same-pattern factorization)");
  SPX_CHECK_ARG(analysis_->perm.size() == a.ncols() &&
                    spx::pattern_digest(a) == pattern_digest_,
                "factorize(): matrix pattern differs from the analyzed "
                "pattern; call analyze(a) again");
  if constexpr (!is_complex_v<T>) {
    SPX_CHECK_ARG(kind == Factorization::LLT || kind == Factorization::LDLT ||
                      kind == Factorization::LU,
                  "unknown factorization");
  } else {
    SPX_CHECK_ARG(kind != Factorization::LLT,
                  "complex matrices use LDLT (symmetric) or LU");
  }
  kind_ = kind;
  obs::ScopedSpan span;
  SPX_OBS(span = obs::ScopedSpan(options_.instr.tracer, "solver.factorize",
                                 "service-", options_.instr.parent));
  Timer wall;
  // Any failure below must leave the solver "analyzed, not factorized":
  // drop stale factors first (they belong to the previous values), then
  // roll back in the catch so factorize() can simply be retried.
  factors_.reset();
  refine_matrix_.reset();
  const CscMatrix<T> ap = permute_symmetric(a, analysis_->perm);
  factors_ = std::make_unique<FactorData<T>>(analysis_->structure, kind,
                                             options_.instr.fault);
  factors_->initialize(ap);
  // Static-pivot floor, scaled by ||A|| = max |a_ij| of the input.
  double anorm = 0.0;
  for (const T& v : ap.values()) {
    anorm = std::max(anorm, static_cast<double>(magnitude<T>(v)));
  }
  factors_->set_pivot_policy(
      options_.pivot_threshold > 0 ? options_.pivot_threshold * anorm : 0.0,
      anorm);

  try {
    factorize_numeric(span.context());
  } catch (...) {
    stats_.quality = factors_->quality();  // keep the post-mortem record
    factors_.reset();
    SPX_OBS(obs::registry_or_global(options_.instr.metrics)
                .counter("spx_solver_factorize_failures_total",
                         "Factorizations that threw",
                         {{"runtime", to_string(options_.runtime)}})
                .inc());
    throw;
  }
  stats_.quality = factors_->quality();
  if (stats_.quality.degraded()) {
    // Perturbed factors are exact factors of A + E; retain A so solve()
    // can repair the O(threshold) error by refinement on its own.
    refine_matrix_ = std::make_unique<CscMatrix<T>>(a);
  }
  stats_.gflops = analysis_->structure.total_flops(kind) /
                  std::max(1e-12, stats_.makespan) / 1e9;
  stats_.kernel_isa =
      kernels::to_string(kernels::Dispatch::instance().active());
  stats_.kernel_blas = kernels::Dispatch::instance().blas_active();
  SPX_OBS({
    obs::MetricsRegistry& reg =
        obs::registry_or_global(options_.instr.metrics);
    reg.counter("spx_solver_factorizes_total",
                "Completed numeric factorizations",
                {{"runtime", to_string(options_.runtime)}})
        .inc();
    reg.histogram("spx_solver_factorize_seconds",
                  obs::Histogram::duration_bounds(),
                  "Numeric factorization wall time",
                  {{"runtime", to_string(options_.runtime)}})
        .observe(wall.elapsed());
    reg.gauge("spx_kernel_isa_info",
              "Dense-kernel dispatch decision of the last factorization",
              {{"isa", stats_.kernel_isa},
               {"blas", stats_.kernel_blas ? "on" : "off"}})
        .set(1);
    if (stats_.quality.degraded()) {
      reg.counter("spx_solver_degraded_factorizes_total",
                  "Factorizations completed with perturbed pivots")
          .inc();
    }
  });
}

template <typename T>
void Solver<T>::refactorize(const CscMatrix<T>& a) {
  SPX_CHECK_ARG(factorized(),
                "refactorize() before factorize(): the fast path reuses "
                "the allocated factors; run factorize(a, kind) first");
  SPX_CHECK_ARG(a.nrows() == a.ncols(), "square matrix required");
  SPX_CHECK_ARG(analysis_->perm.size() == a.ncols() &&
                    spx::pattern_digest(a) == pattern_digest_,
                "refactorize(): matrix pattern differs from the factorized "
                "pattern; refactorize ingests new values only -- call "
                "analyze(a) + factorize(a, kind) for a new pattern");
  obs::ScopedSpan span;
  SPX_OBS(span = obs::ScopedSpan(options_.instr.tracer, "solver.refactorize",
                                 "service-", options_.instr.parent));
  Timer wall;
  // Snapshot the live numeric state so a failed refactorize rolls back to
  // the previous factors -- still consistent, still servable -- instead of
  // factorize()'s "analyzed, not factorized".  The backup buffer is a
  // member sized once; steady-state refactorization performs no factor
  // (re)allocation.
  const std::span<const T> l = factors_->lvalues();
  const std::span<const T> u = factors_->uvalues();
  const std::span<const T> d = factors_->dvalues();
  refactor_backup_.resize(l.size() + u.size() + d.size());
  std::copy(l.begin(), l.end(), refactor_backup_.begin());
  std::copy(u.begin(), u.end(), refactor_backup_.begin() + l.size());
  std::copy(d.begin(), d.end(),
            refactor_backup_.begin() + l.size() + u.size());
  const FactorQuality prev_quality = factors_->quality();
  std::unique_ptr<CscMatrix<T>> prev_refine = std::move(refine_matrix_);

  const CscMatrix<T> ap = permute_symmetric(a, analysis_->perm);
  factors_->reset();
  factors_->initialize(ap);
  double anorm = 0.0;
  for (const T& v : ap.values()) {
    anorm = std::max(anorm, static_cast<double>(magnitude<T>(v)));
  }
  factors_->set_pivot_policy(
      options_.pivot_threshold > 0 ? options_.pivot_threshold * anorm : 0.0,
      anorm);
  try {
    factorize_numeric(span.context());
  } catch (...) {
    factors_->restore_values(
        std::span<const T>(refactor_backup_.data(), l.size()),
        std::span<const T>(refactor_backup_.data() + l.size(), u.size()),
        std::span<const T>(refactor_backup_.data() + l.size() + u.size(),
                           d.size()));
    factors_->set_pivot_policy(prev_quality.threshold, prev_quality.anorm);
    factors_->set_quality(prev_quality);
    refine_matrix_ = std::move(prev_refine);
    stats_.quality = prev_quality;
    SPX_OBS(obs::registry_or_global(options_.instr.metrics)
                .counter("spx_solver_refactorize_failures_total",
                         "Re-factorizations that threw and rolled back to "
                         "the previous factors",
                         {{"runtime", to_string(options_.runtime)}})
                .inc());
    throw;
  }
  stats_.quality = factors_->quality();
  if (stats_.quality.degraded()) {
    refine_matrix_ = std::make_unique<CscMatrix<T>>(a);
  }
  stats_.gflops = analysis_->structure.total_flops(kind_) /
                  std::max(1e-12, stats_.makespan) / 1e9;
  stats_.kernel_isa =
      kernels::to_string(kernels::Dispatch::instance().active());
  stats_.kernel_blas = kernels::Dispatch::instance().blas_active();
  SPX_OBS({
    obs::MetricsRegistry& reg =
        obs::registry_or_global(options_.instr.metrics);
    reg.counter("spx_solver_refactorizes_total",
                "Numeric-only re-factorizations (analysis + allocation "
                "reused)",
                {{"runtime", to_string(options_.runtime)}})
        .inc();
    reg.histogram("spx_solver_refactorize_seconds",
                  obs::Histogram::duration_bounds(),
                  "Numeric re-factorization wall time",
                  {{"runtime", to_string(options_.runtime)}})
        .observe(wall.elapsed());
    if (stats_.quality.degraded()) {
      reg.counter("spx_solver_degraded_factorizes_total",
                  "Factorizations completed with perturbed pivots")
          .inc();
    }
  });
}

template <typename T>
void Solver<T>::factorize_numeric(obs::SpanContext parent) {
  const Factorization kind = kind_;
  Timer wall;
  if (options_.runtime == RuntimeKind::Sequential) {
    factorize_sequential(*factors_, options_.cpu_variant, false);
    stats_ = RunStats{};
    stats_.makespan = wall.elapsed();
    stats_.tasks_cpu = analysis_->structure.num_panels();
  } else {
    int threads = options_.num_threads;
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads <= 0) threads = 1;
    }
    TaskTable table(analysis_->structure, kind);
    RealDriverOptions dopts;
    dopts.cpu_variant = options_.cpu_variant;
    // Inherit the instrumentation layer; driver spans (driver.run and the
    // per-task spans) parent under this factorize's span.
    dopts.instr = options_.instr;
    dopts.instr.parent = parent.valid() ? parent : options_.instr.parent;
    // Cost oracle: calibrated model when configured and loadable, flop
    // proportionality otherwise.  The calibrated path also attaches the
    // model-error probe and (optionally) the online-refinement observer.
    load_perf_model();
    std::unique_ptr<TaskCosts> costs;
    std::unique_ptr<perfmodel::ModelRefiner> refiner;
    if (perf_model_ != nullptr) {
      auto calibrated =
          std::make_unique<perfmodel::CalibratedCosts>(table, *perf_model_);
      logf(LogLevel::Debug, "perf model coverage: %.0f%% of task queries",
           100.0 * calibrated->coverage());
      dopts.error_model = calibrated.get();
      if (options_.refine_perf_model) {
        refiner =
            std::make_unique<perfmodel::ModelRefiner>(*perf_model_, table);
        dopts.observer = refiner.get();
      }
      costs = std::move(calibrated);
    } else {
      costs = std::make_unique<FlopCosts>(table);
    }
    const HeteroOptions& hetero = options_.hetero;
    if (hetero.enabled()) {
      SPX_CHECK_ARG(options_.runtime == RuntimeKind::Starpu ||
                        options_.runtime == RuntimeKind::Parsec,
                    "hetero devices require the starpu or parsec runtime");
      SPX_CHECK_ARG(options_.num_gpu_streams == 0,
                    "hetero devices and num_gpu_streams are exclusive");
    }
    switch (options_.runtime) {
      case RuntimeKind::Native: {
        Machine machine(threads);
        NativeScheduler sched(table, machine, *costs);
        dopts.fused_ldlt = false;  // native prescales per panel
        stats_ = execute_real(sched, machine, *factors_, dopts);
        break;
      }
      case RuntimeKind::Starpu: {
        dopts.fused_ldlt = true;
        if (hetero.enabled()) {
          // Device engines: one GPU per spec, StarPU's dedicated-core
          // convention (one CPU worker removed per stream), and a live
          // coherence directory shared between dmda placement and the
          // engines' staging, so transfer penalties track real residency.
          const int ndev = static_cast<int>(hetero.devices.size());
          const int spe = hetero.uniform_streams();
          Machine machine(std::max(1, threads - ndev * spe), ndev, spe);
          DataDirectory directory(analysis_->structure, kind, sizeof(T),
                                  ndev);
          StarpuScheduler sched(table, machine, *costs, options_.starpu,
                                &directory);
          dopts.hetero = hetero;
          dopts.hetero.directory = &directory;
          stats_ = execute_real(sched, machine, *factors_, dopts);
          break;
        }
        // StarPU dedicates a CPU worker per (emulated) GPU stream.
        const int cpus = std::max(1, threads - options_.num_gpu_streams);
        Machine machine(cpus, options_.num_gpu_streams > 0 ? 1 : 0,
                        std::max(1, options_.num_gpu_streams));
        StarpuScheduler sched(table, machine, *costs, options_.starpu);
        stats_ = execute_real(sched, machine, *factors_, dopts);
        break;
      }
      case RuntimeKind::Parsec: {
        dopts.fused_ldlt = true;
        if (hetero.enabled()) {
          const int ndev = static_cast<int>(hetero.devices.size());
          const int spe = hetero.uniform_streams();
          Machine machine(std::max(1, threads - ndev * spe), ndev, spe);
          ParsecScheduler sched(table, machine, *costs, options_.parsec);
          dopts.hetero = hetero;  // driver owns the directory
          stats_ = execute_real(sched, machine, *factors_, dopts);
          break;
        }
        Machine machine(threads, options_.num_gpu_streams > 0 ? 1 : 0,
                        std::max(1, options_.num_gpu_streams));
        ParsecScheduler sched(table, machine, *costs, options_.parsec);
        stats_ = execute_real(sched, machine, *factors_, dopts);
        break;
      }
      case RuntimeKind::Sequential:
        break;  // handled above
    }
  }
}

template <typename T>
void Solver<T>::direct_solve(std::span<T> b) const {
  std::vector<T> pb(b.size());
  permute_vector<T>(analysis_->perm, b, pb);
  solve_permuted(*factors_, std::span<T>(pb));
  unpermute_vector<T>(analysis_->perm, pb, b);
}

template <typename T>
SolveReport Solver<T>::refine_degraded(std::span<T> x,
                                       std::span<const T> b0) const {
  SolveReport report;
  report.degraded = true;
  const std::size_t n = b0.size();
  double bnorm = 0.0;
  for (const T& v : b0) bnorm = std::max(bnorm, (double)magnitude<T>(v));
  if (bnorm == 0.0) bnorm = 1.0;
  std::vector<T> residual(n);
  for (int iter = 0; iter <= options_.refine_max_iter; ++iter) {
    refine_matrix_->multiply(std::span<const T>(x.data(), n), residual);
    double rnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] = b0[i] - residual[i];
      rnorm = std::max(rnorm, (double)magnitude<T>(residual[i]));
    }
    report.backward_error = rnorm / bnorm;
    report.refine_iterations = iter;
    if (report.backward_error <= options_.refine_tolerance ||
        iter == options_.refine_max_iter) {
      break;
    }
    direct_solve(residual);
    for (std::size_t i = 0; i < n; ++i) x[i] += residual[i];
  }
  return report;
}

template <typename T>
void Solver<T>::note_solve_metrics(index_t nrhs,
                                   const SolveReport& report) const {
  obs::MetricsRegistry& reg = obs::registry_or_global(options_.instr.metrics);
  reg.counter("spx_solver_solves_total", "Triangular solves (RHS columns)")
      .inc(static_cast<double>(nrhs));
  if (report.refine_iterations > 0) {
    reg.counter("spx_solver_refine_iterations_total",
                "Post-solve iterative-refinement sweeps")
        .inc(report.refine_iterations);
  }
}

template <typename T>
SolveReport Solver<T>::solve(std::span<T> b) const {
  SPX_CHECK_ARG(factorized(),
                "solve() without factors: factorize() has not run since "
                "the last analyze()");
  SPX_CHECK_ARG(static_cast<index_t>(b.size()) == analysis_->perm.size(),
                "rhs size mismatch");
  obs::ScopedSpan span;
  SPX_OBS(span = obs::ScopedSpan(options_.instr.tracer, "solver.solve",
                                 "service-", options_.instr.parent, 0, 1));
  const bool degraded =
      stats_.quality.degraded() && refine_matrix_ != nullptr;
  std::vector<T> b0;
  if (degraded) b0.assign(b.begin(), b.end());
  direct_solve(b);
  SolveReport report;
  if (degraded) report = refine_degraded(b, b0);
  SPX_OBS(note_solve_metrics(1, report));
  return report;
}

template <typename T>
SolveReport Solver<T>::solve_multi(std::span<T> b, index_t nrhs) const {
  SPX_CHECK_ARG(factorized(),
                "solve_multi() without factors: factorize() has not run "
                "since the last analyze()");
  const index_t n = analysis_->perm.size();
  SPX_CHECK_ARG(static_cast<index_t>(b.size()) == n * nrhs,
                "rhs block size mismatch");
  obs::ScopedSpan span;
  SPX_OBS(span = obs::ScopedSpan(options_.instr.tracer, "solver.solve",
                                 "service-", options_.instr.parent, 0,
                                 nrhs));
  const bool degraded =
      stats_.quality.degraded() && refine_matrix_ != nullptr;
  std::vector<T> b0;
  if (degraded) b0.assign(b.begin(), b.end());
  std::vector<T> pb(b.size());
  for (index_t c = 0; c < nrhs; ++c) {
    permute_vector<T>(analysis_->perm,
                      std::span<const T>(b.data() + std::size_t(c) * n, n),
                      std::span<T>(pb.data() + std::size_t(c) * n, n));
  }
  solve_permuted_multi(*factors_, pb.data(), nrhs, n);
  for (index_t c = 0; c < nrhs; ++c) {
    unpermute_vector<T>(analysis_->perm,
                        std::span<const T>(pb.data() + std::size_t(c) * n, n),
                        std::span<T>(b.data() + std::size_t(c) * n, n));
  }
  if (!degraded) {
    SPX_OBS(note_solve_metrics(nrhs, {}));
    return {};
  }
  // Refine column by column; report the worst column's figures.
  SolveReport worst;
  worst.degraded = true;
  for (index_t c = 0; c < nrhs; ++c) {
    const SolveReport r = refine_degraded(
        std::span<T>(b.data() + std::size_t(c) * n, n),
        std::span<const T>(b0.data() + std::size_t(c) * n, n));
    worst.refine_iterations =
        std::max(worst.refine_iterations, r.refine_iterations);
    worst.backward_error = std::max(worst.backward_error, r.backward_error);
  }
  SPX_OBS(note_solve_metrics(nrhs, worst));
  return worst;
}

template <typename T>
int Solver<T>::solve_refine(const CscMatrix<T>& a, std::span<const T> b,
                            std::span<T> x, double tol,
                            int max_iter) const {
  SPX_CHECK_ARG(factorized(),
                "solve_refine() without factors: factorize() has not run "
                "since the last analyze()");
  const std::size_t n = b.size();
  std::copy(b.begin(), b.end(), x.begin());
  direct_solve(x);  // refinement below; don't stack the degraded path's
  std::vector<T> residual(n), correction(n);
  double bnorm = 0.0;
  for (const T& v : b) bnorm = std::max(bnorm, (double)magnitude<T>(v));
  if (bnorm == 0.0) bnorm = 1.0;
  for (int iter = 1; iter <= max_iter; ++iter) {
    a.multiply(std::span<const T>(x.data(), n), residual);
    double rnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] = b[i] - residual[i];
      rnorm = std::max(rnorm, (double)magnitude<T>(residual[i]));
    }
    if (rnorm / bnorm <= tol) return iter - 1;
    std::copy(residual.begin(), residual.end(), correction.begin());
    direct_solve(correction);
    for (std::size_t i = 0; i < n; ++i) x[i] += correction[i];
  }
  return max_iter;
}

template class Solver<real_t>;
template class Solver<complex_t>;

}  // namespace spx
