// One-call wrapper to run a factorization schedule on the simulated
// platform: builds the machine shape, cost model, and scheduler for a
// given configuration and returns the simulated statistics.  This is the
// engine behind the Figure 2 / Figure 4 reproductions.
#pragma once

#include <string>

#include "core/analysis.hpp"
#include "runtime/run_stats.hpp"
#include "sim/platform.hpp"

namespace spx::perfmodel {
class PerfModel;
}  // namespace spx::perfmodel

namespace spx {

struct SimRunConfig {
  /// "native" | "native-prop" | "starpu" | "starpu-eager" | "parsec"
  std::string scheduler = "parsec";
  int cores = 12;
  int gpus = 0;
  int streams_per_gpu = 1;
  bool complex_arith = false;
  /// Updates below this flop count stay on CPUs.
  double gpu_min_flops = 2e6;
  /// PaRSEC subtree merging threshold in seconds (0 = off); the paper's
  /// future-work granularity knob.
  double subtree_merge_seconds = 0.0;
  sim::PlatformSpec platform;
  /// Optional calibrated model grounding the simulated CPU side in rates
  /// measured on a real host (sim::CostModel::Options::measured); must
  /// outlive the simulate_run call.  Null = fully analytic platform.
  const perfmodel::PerfModel* perf_model = nullptr;

  /// Per-runtime task overheads (seconds): the native static scheduler has
  /// nearly none, PaRSEC's distributed release is light, StarPU's central
  /// hub heavier (paper §IV discussion).
  double overhead_native = 5e-7;
  double overhead_parsec = 2e-6;
  double overhead_starpu = 5e-6;
};

/// Simulates one factorization; `an` must outlive the call.
RunStats simulate_run(const Analysis& an, Factorization kind,
                      const SimRunConfig& config);

}  // namespace spx
