#include "core/codelets.hpp"

#include <algorithm>

#include "kernels/dense.hpp"

namespace spx {
namespace k = kernels;

template <typename T>
void factor_panel(FactorData<T>& f, index_t p) {
  const SymbolicStructure& st = f.structure();
  const Panel& panel = st.panels[p];
  const index_t w = panel.width();
  const index_t below = panel.nrows_below();
  const index_t ld = panel.nrows;
  T* diag = f.panel_l(p);
  T* l21 = diag + w;
  // Per-panel pivot accounting, merged into the factor-wide record below
  // (local so concurrent panels never contend inside the kernels).
  FactorQuality local;
  const k::PivotControl pc{f.pivot_threshold(), panel.col_begin, &local};
  // Even a failed panel merges its accounting (the indefinite flag must
  // survive the throw so callers can report *why* factorization died).
  struct MergeOnExit {
    FactorData<T>& f;
    FactorQuality& q;
    ~MergeOnExit() { f.merge_quality(q); }
  } merge_on_exit{f, local};

  switch (f.kind()) {
    case Factorization::LLT:
      k::potrf(w, diag, ld, pc);
      if (below > 0) {
        k::trsm_right_lower_trans(below, w, diag, ld, l21, ld, false);
      }
      break;
    case Factorization::LDLT: {
      k::ldlt(w, diag, ld, pc);
      T* d = f.panel_d(p);
      for (index_t j = 0; j < w; ++j) {
        d[j] = diag[j + static_cast<std::size_t>(j) * ld];
      }
      if (below > 0) {
        k::trsm_right_lower_trans(below, w, diag, ld, l21, ld, true);
        k::scale_cols_inv(below, w, l21, ld, d);
      }
      break;
    }
    case Factorization::LU: {
      k::getrf_nopiv(w, diag, ld, pc);
      if (below > 0) {
        // L21 := A21 * U11^{-1}
        k::trsm_right_upper(below, w, diag, ld, l21, ld);
        // U21' := A12^T * L11^{-T} (unit diagonal)
        T* u21 = f.panel_u(p) + w;
        k::trsm_right_lower_trans(below, w, diag, ld, u21, ld, true);
      }
      break;
    }
  }
}

template <typename T>
void prescale_ldlt(const FactorData<T>& f, index_t p, Workspace<T>& ws) {
  SPX_DEBUG_ASSERT(f.kind() == Factorization::LDLT);
  const Panel& panel = f.structure().panels[p];
  const index_t w = panel.width();
  const index_t below = panel.nrows_below();
  const index_t ld = panel.nrows;
  ws.scaled.resize(static_cast<std::size_t>(ld) * w);
  if (below > 0) {
    // scaled(w: , :) = L21 * diag(D); keep full-panel leading dimension so
    // block pointers line up with the L storage.
    k::scale_cols(below, w, f.panel_l(p) + w, ld, f.panel_d(p),
                  ws.scaled.data() + w, ld);
  }
}

namespace {

/// Runs one GEMM of an update (rows [first_offset, nrows) of the source
/// against block b) into the destination using the chosen path.
template <typename T>
void update_gemm(const Panel& sp, const Panel& dp, const Block& blk,
                 index_t first_offset, const T* a, const T* b, index_t ld,
                 index_t ldb, T* dst, UpdateVariant variant,
                 const std::vector<k::RowSegment>& segs, Workspace<T>& ws) {
  const index_t m = sp.nrows - first_offset;
  const index_t n = blk.height();
  const index_t kk = sp.width();
  const index_t dst_col = blk.row_begin - dp.col_begin;
  if (m <= 0 || n <= 0) return;
  if (variant == UpdateVariant::TempBuffer) {
    ws.w.resize(static_cast<std::size_t>(m) * n);
    k::gemm_nt(m, n, kk, T(1), a, ld, b, ldb, T(0), ws.w.data(), m);
    k::scatter_sub(segs, n, ws.w.data(), m, dst, dp.nrows, dst_col);
  } else {
    k::gemm_nt_gapped(segs, n, kk, T(-1), a, ld, b, ldb, dst, dp.nrows,
                      dst_col);
  }
}

}  // namespace

template <typename T>
void apply_update(FactorData<T>& f, index_t src, const UpdateEdge& e,
                  UpdateVariant variant, Workspace<T>& ws,
                  const T* prescaled) {
  const SymbolicStructure& st = f.structure();
  const Panel& sp = st.panels[src];
  const Panel& dp = st.panels[e.dst];
  const index_t w = sp.width();
  const index_t ld = sp.nrows;
  const index_t first_off = sp.blocks[e.first_block].offset;

  switch (f.kind()) {
    case Factorization::LLT: {
      const T* l = f.panel_l(src);
      T* dst = f.panel_l(e.dst);
      for (index_t bi = e.first_block; bi < e.last_block; ++bi) {
        const Block& blk = sp.blocks[bi];
        // Trapezoid: rows from this block down, columns = this block.
        const auto segs = k::build_row_segments(sp, blk.offset, dp);
        update_gemm(sp, dp, blk, blk.offset, l + blk.offset,
                    l + blk.offset, ld, ld, dst, variant, segs, ws);
      }
      break;
    }
    case Factorization::LDLT: {
      const T* l = f.panel_l(src);
      T* dst = f.panel_l(e.dst);
      for (index_t bi = e.first_block; bi < e.last_block; ++bi) {
        const Block& blk = sp.blocks[bi];
        const auto segs = k::build_row_segments(sp, blk.offset, dp);
        const T* b;
        index_t ldb;
        if (prescaled != nullptr) {
          // Native path: blocks of the shared prescaled panel buffer.
          b = prescaled + blk.offset;
          ldb = ld;
        } else {
          // Generic-runtime path: rescale this block now (the fused,
          // slower LDL^T update kernel).
          ws.scaled.resize(static_cast<std::size_t>(blk.height()) * w);
          k::scale_cols(blk.height(), w, l + blk.offset, ld, f.panel_d(src),
                        ws.scaled.data(), blk.height());
          b = ws.scaled.data();
          ldb = blk.height();
        }
        update_gemm(sp, dp, blk, blk.offset, l + blk.offset, b, ld, ldb,
                    dst, variant, segs, ws);
      }
      break;
    }
    case Factorization::LU: {
      const T* l = f.panel_l(src);
      const T* u = f.panel_u(src);
      // L side: rows from the first facing block down; the columns of the
      // target it touches include its own diagonal block (both triangles,
      // since U11 of the target lives there).
      const auto lsegs = k::build_row_segments(sp, first_off, dp);
      for (index_t bi = e.first_block; bi < e.last_block; ++bi) {
        const Block& blk = sp.blocks[bi];
        update_gemm(sp, dp, blk, first_off, l + first_off, u + blk.offset,
                    ld, ld, f.panel_l(e.dst), variant, lsegs, ws);
      }
      // U side: rows strictly past the facing blocks (those correspond to
      // columns beyond the target panel, i.e. its U^T part).
      const index_t last_off = e.last_block < static_cast<index_t>(sp.blocks.size())
                                   ? sp.blocks[e.last_block].offset
                                   : sp.nrows;
      if (last_off < sp.nrows) {
        const auto usegs = k::build_row_segments(sp, last_off, dp);
        for (index_t bi = e.first_block; bi < e.last_block; ++bi) {
          const Block& blk = sp.blocks[bi];
          update_gemm(sp, dp, blk, last_off, u + last_off, l + blk.offset,
                      ld, ld, f.panel_u(e.dst), variant, usegs, ws);
        }
      }
      break;
    }
  }
}

template void factor_panel<real_t>(FactorData<real_t>&, index_t);
template void factor_panel<complex_t>(FactorData<complex_t>&, index_t);
template void prescale_ldlt<real_t>(const FactorData<real_t>&, index_t,
                                    Workspace<real_t>&);
template void prescale_ldlt<complex_t>(const FactorData<complex_t>&,
                                       index_t, Workspace<complex_t>&);
template void apply_update<real_t>(FactorData<real_t>&, index_t,
                                   const UpdateEdge&, UpdateVariant,
                                   Workspace<real_t>&, const real_t*);
template void apply_update<complex_t>(FactorData<complex_t>&, index_t,
                                      const UpdateEdge&, UpdateVariant,
                                      Workspace<complex_t>&,
                                      const complex_t*);
template void factor_panel<real32_t>(FactorData<real32_t>&, index_t);
template void prescale_ldlt<real32_t>(const FactorData<real32_t>&, index_t,
                                      Workspace<real32_t>&);
template void apply_update<real32_t>(FactorData<real32_t>&, index_t,
                                     const UpdateEdge&, UpdateVariant,
                                     Workspace<real32_t>&, const real32_t*);

}  // namespace spx
