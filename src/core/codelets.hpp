// Task bodies ("codelets" in StarPU terminology) executed by the runtimes.
//
// Two task kinds, exactly the paper's decomposition (§V):
//   * factor_panel  -- diagonal block factorization + TRSM on the
//     off-diagonal blocks of one panel;
//   * apply_update  -- the GEMM update from one panel onto one facing
//     panel (one task per (source, target) panel couple).
//
// apply_update has two code paths mirroring the paper's CPU and GPU
// kernels: TempBuffer computes the outer product into a contiguous
// per-worker buffer and scatters it (the CPU path, which keeps the vendor
// GEMM shape), and Direct accumulates straight into the gapped target
// panel (the modified-ASTRA GPU path, no extra device memory).
//
// For LDL^T, the update needs D-scaled source blocks.  The native
// scheduler's fused 1D task prescales the whole panel once into a scratch
// reused by all its updates; the generic runtimes cannot share that buffer
// across tasks (its life span would be unbounded -- paper §V-A), so each
// update rescales its block: that is the "less efficient kernel that
// performs the full LDL^T operation at each update".
#pragma once

#include "core/factor_data.hpp"
#include "kernels/scatter.hpp"

namespace spx {

enum class UpdateVariant {
  TempBuffer,  ///< CPU path: contiguous GEMM + scatter
  Direct       ///< GPU path: segmented GEMM into the gapped panel
};

/// Per-worker scratch (grown lazily, never shrunk).
template <typename T>
struct Workspace {
  std::vector<T> w;        ///< outer-product buffer (TempBuffer path)
  std::vector<T> scaled;   ///< D-scaled source block (LDL^T)
};

/// Factorizes the diagonal block of panel p and solves its off-diagonal
/// blocks.  Throws NumericalError on breakdown.
template <typename T>
void factor_panel(FactorData<T>& f, index_t p);

/// Prescales panel p's below-diagonal rows by D into ws.scaled
/// (full-panel layout, leading dimension panel.nrows).  Native-scheduler
/// LDL^T path; the result is passed to apply_update as `prescaled`.
template <typename T>
void prescale_ldlt(const FactorData<T>& f, index_t p, Workspace<T>& ws);

/// Applies the update along edge e of panel src onto panel e.dst.
/// `prescaled` (optional) is the prescale_ldlt buffer; when null the
/// LDL^T path rescales per block (the generic-runtime behaviour).
/// NOT thread-safe on the target panel: callers serialize updates into
/// the same destination (the runtimes do this via commute access mode or
/// per-panel locks).
template <typename T>
void apply_update(FactorData<T>& f, index_t src, const UpdateEdge& e,
                  UpdateVariant variant, Workspace<T>& ws,
                  const T* prescaled = nullptr);

extern template void factor_panel<real_t>(FactorData<real_t>&, index_t);
extern template void factor_panel<complex_t>(FactorData<complex_t>&,
                                             index_t);
extern template void prescale_ldlt<real_t>(const FactorData<real_t>&,
                                           index_t, Workspace<real_t>&);
extern template void prescale_ldlt<complex_t>(const FactorData<complex_t>&,
                                              index_t,
                                              Workspace<complex_t>&);
extern template void apply_update<real_t>(FactorData<real_t>&, index_t,
                                          const UpdateEdge&, UpdateVariant,
                                          Workspace<real_t>&, const real_t*);
extern template void apply_update<complex_t>(FactorData<complex_t>&,
                                             index_t, const UpdateEdge&,
                                             UpdateVariant,
                                             Workspace<complex_t>&,
                                             const complex_t*);

}  // namespace spx
