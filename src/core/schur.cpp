#include "core/schur.hpp"

#include <algorithm>

#include "core/codelets.hpp"
#include "core/solve.hpp"
#include "mat/triplets.hpp"

namespace spx {

template <typename T>
void SchurComplement<T>::compute(const CscMatrix<T>& a,
                                 std::span<const index_t> interface_ids,
                                 Factorization kind) {
  SPX_CHECK_ARG(a.nrows() == a.ncols(), "square matrix required");
  n_ = a.ncols();
  k_ = static_cast<index_t>(interface_ids.size());
  kind_ = kind;
  SPX_CHECK_ARG(k_ > 0 && k_ < n_, "interface set must be a proper subset");
  SPX_CHECK_ARG(k_ <= 8192, "interface set too large (dense k x k Schur)");
  std::vector<char> is_iface(static_cast<std::size_t>(n_), 0);
  for (const index_t i : interface_ids) {
    SPX_CHECK_ARG(i >= 0 && i < n_ && !is_iface[i],
                  "interface ids must be unique and in range");
    is_iface[i] = 1;
  }

  // Augment the pattern with a clique on the interface so the elimination
  // tree's top chain is exactly the interface block.
  Triplets<T> aug(n_, n_);
  for (index_t j = 0; j < n_; ++j) {
    const auto rows = a.col_rows(j);
    for (const index_t r : rows) aug.add(r, j, T(1));
    aug.add(j, j, T(1));
  }
  for (index_t x = 0; x < k_; ++x) {
    for (index_t y = x + 1; y < k_; ++y) {
      aug.add_sym(interface_ids[x], interface_ids[y], T(1));
    }
  }
  const Graph g = Graph::from_pattern(aug.to_csc());

  // Order the interior with nested dissection; pin the interface last.
  std::vector<index_t> interior;
  interior.reserve(static_cast<std::size_t>(n_ - k_));
  for (index_t i = 0; i < n_; ++i) {
    if (!is_iface[i]) interior.push_back(i);
  }
  std::vector<index_t> scratch;
  const Graph gi = g.induced_subgraph(interior, scratch);
  const Ordering nd = nested_dissection(gi, options_.nd);
  std::vector<index_t> new_to_old;
  new_to_old.reserve(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_ - k_; ++i) {
    new_to_old.push_back(interior[nd.new_to_old[i]]);
  }
  new_to_old.insert(new_to_old.end(), interface_ids.begin(),
                    interface_ids.end());

  analysis_ = analyze_ordered(
      g, Ordering::from_new_to_old(std::move(new_to_old)), options_, k_);
  // The pipeline must have kept the interface as the trailing block, in
  // the caller's order.
  for (index_t j = 0; j < k_; ++j) {
    SPX_ASSERT(analysis_->perm.old_to_new[interface_ids[j]] ==
               n_ - k_ + j);
  }
  first_schur_panel_ = analysis_->structure.panel_of_col[n_ - k_];
  SPX_ASSERT(
      analysis_->structure.panels[first_schur_panel_].col_begin == n_ - k_);

  // Partial factorization: factor interior panels, apply every update
  // (including those landing in the Schur block), never factor the block.
  const CscMatrix<T> ap = permute_symmetric(a, analysis_->perm);
  factors_ = std::make_unique<FactorData<T>>(analysis_->structure, kind);
  factors_->initialize(ap);
  Workspace<T> ws, prescale_ws;
  const SymbolicStructure& st = analysis_->structure;
  for (index_t p = 0; p < first_schur_panel_; ++p) {
    factor_panel(*factors_, p);
    const T* prescaled = nullptr;
    if (kind == Factorization::LDLT && !st.targets[p].empty()) {
      prescale_ldlt(*factors_, p, prescale_ws);
      prescaled = prescale_ws.scaled.data();
    }
    for (const UpdateEdge& e : st.targets[p]) {
      apply_update(*factors_, p, e, UpdateVariant::TempBuffer, ws,
                   prescaled);
    }
  }
}

template <typename T>
std::vector<T> SchurComplement<T>::schur_matrix() const {
  SPX_CHECK_ARG(factors_ != nullptr, "compute() has not run");
  const SymbolicStructure& st = analysis_->structure;
  std::vector<T> s(static_cast<std::size_t>(k_) * k_, T(0));
  const index_t base = n_ - k_;
  const bool lu = kind_ == Factorization::LU;
  for (index_t p = first_schur_panel_; p < st.num_panels(); ++p) {
    const Panel& panel = st.panels[p];
    const index_t ld = panel.nrows;
    const T* l = factors_->panel_l(p);
    const T* u = lu ? factors_->panel_u(p) : nullptr;
    for (index_t j = 0; j < panel.width(); ++j) {
      const index_t col = panel.col_begin + j - base;
      for (const Block& blk : panel.blocks) {
        for (index_t r = 0; r < blk.height(); ++r) {
          const index_t row = blk.row_begin + r - base;
          const T lv = l[blk.offset + r + static_cast<std::size_t>(j) * ld];
          if (row >= col) {
            s[row + static_cast<std::size_t>(col) * k_] = lv;
            if (!lu && row != col) {
              // Symmetric kinds: mirror the lower triangle.
              s[col + static_cast<std::size_t>(row) * k_] = lv;
            }
          } else if (lu && blk.facing_panel == p) {
            // Upper triangle of the diagonal block (stored in L for LU).
            s[row + static_cast<std::size_t>(col) * k_] = lv;
          }
          if (lu && u != nullptr && row > col) {
            // U' panel holds S(col_of_this_panel, later row) = upper part.
            const T uv =
                u[blk.offset + r + static_cast<std::size_t>(j) * ld];
            if (blk.facing_panel != p) {
              s[col + static_cast<std::size_t>(row) * k_] = uv;
            }
          }
        }
      }
    }
  }
  return s;
}

template <typename T>
void SchurComplement<T>::forward_interior(std::span<T> px) const {
  solve_forward(*factors_, px, first_schur_panel_);
}

template <typename T>
std::vector<T> SchurComplement<T>::condense_rhs(std::span<const T> b) const {
  SPX_CHECK_ARG(factors_ != nullptr, "compute() has not run");
  SPX_CHECK_ARG(static_cast<index_t>(b.size()) == n_, "rhs size mismatch");
  std::vector<T> px(static_cast<std::size_t>(n_));
  permute_vector<T>(analysis_->perm, b, px);
  forward_interior(px);
  return std::vector<T>(px.begin() + (n_ - k_), px.end());
}

template <typename T>
std::vector<T> SchurComplement<T>::expand_solution(
    std::span<const T> b, std::span<const T> x2) const {
  SPX_CHECK_ARG(factors_ != nullptr, "compute() has not run");
  SPX_CHECK_ARG(static_cast<index_t>(b.size()) == n_ &&
                    static_cast<index_t>(x2.size()) == k_,
                "size mismatch");
  std::vector<T> px(static_cast<std::size_t>(n_));
  permute_vector<T>(analysis_->perm, b, px);
  forward_interior(px);
  std::copy(x2.begin(), x2.end(), px.begin() + (n_ - k_));
  if (kind_ == Factorization::LDLT) {
    solve_diagonal(*factors_, std::span<T>(px), first_schur_panel_);
  }
  solve_backward(*factors_, std::span<T>(px), first_schur_panel_);
  std::vector<T> x(static_cast<std::size_t>(n_));
  unpermute_vector<T>(analysis_->perm, px, x);
  return x;
}

template class SchurComplement<real_t>;
template class SchurComplement<complex_t>;

}  // namespace spx
