#include "core/solve.hpp"

#include <algorithm>

#include "kernels/dense.hpp"

namespace spx {
namespace k = kernels;

template <typename T>
void solve_forward(const FactorData<T>& f, std::span<T> x,
                   index_t panel_limit) {
  const SymbolicStructure& st = f.structure();
  const bool unit = f.kind() != Factorization::LLT;
  const index_t np =
      panel_limit < 0 ? st.num_panels() : std::min(panel_limit,
                                                   st.num_panels());
  for (index_t p = 0; p < np; ++p) {
    const Panel& panel = st.panels[p];
    const index_t w = panel.width();
    const index_t ld = panel.nrows;
    const T* l = f.panel_l(p);
    T* xp = x.data() + panel.col_begin;
    k::trsv_lower(w, l, ld, unit, xp);
    // Scatter the panel's contribution to later rows.
    for (std::size_t b = 1; b < panel.blocks.size(); ++b) {
      const Block& blk = panel.blocks[b];
      k::gemv_sub(blk.height(), w, l + blk.offset, ld, xp,
                  x.data() + blk.row_begin);
    }
  }
}

template <typename T>
void solve_diagonal(const FactorData<T>& f, std::span<T> x,
                    index_t panel_limit) {
  SPX_CHECK_ARG(f.kind() == Factorization::LDLT, "LDLT only");
  const SymbolicStructure& st = f.structure();
  const index_t np =
      panel_limit < 0 ? st.num_panels() : std::min(panel_limit,
                                                   st.num_panels());
  for (index_t p = 0; p < np; ++p) {
    const Panel& panel = st.panels[p];
    const T* d = f.panel_d(p);
    for (index_t j = 0; j < panel.width(); ++j) {
      x[panel.col_begin + j] /= d[j];
    }
  }
}

template <typename T>
void solve_backward(const FactorData<T>& f, std::span<T> x,
                    index_t panel_limit) {
  const SymbolicStructure& st = f.structure();
  const index_t np =
      panel_limit < 0 ? st.num_panels() : std::min(panel_limit,
                                                   st.num_panels());
  for (index_t p = np - 1; p >= 0; --p) {
    const Panel& panel = st.panels[p];
    const index_t w = panel.width();
    const index_t ld = panel.nrows;
    T* xp = x.data() + panel.col_begin;
    if (f.kind() == Factorization::LU) {
      // Gather U12 * x_later from the U^T panel, then solve U11.
      const T* u = f.panel_u(p);
      for (std::size_t b = 1; b < panel.blocks.size(); ++b) {
        const Block& blk = panel.blocks[b];
        k::gemv_trans_sub(blk.height(), w, u + blk.offset, ld,
                          x.data() + blk.row_begin, xp);
      }
      k::trsv_upper(w, f.panel_l(p), ld, xp);
    } else {
      const bool unit = f.kind() == Factorization::LDLT;
      const T* l = f.panel_l(p);
      for (std::size_t b = 1; b < panel.blocks.size(); ++b) {
        const Block& blk = panel.blocks[b];
        // x_cols -= L21_block^T * x_rows
        const T* lb = l + blk.offset;
        const T* xr = x.data() + blk.row_begin;
        for (index_t j = 0; j < w; ++j) {
          T acc = T(0);
          const T* col = lb + static_cast<std::size_t>(j) * ld;
          for (index_t r = 0; r < blk.height(); ++r) acc += col[r] * xr[r];
          xp[j] -= acc;
        }
      }
      k::trsv_lower_trans(w, l, ld, unit, xp);
    }
  }
}

template <typename T>
void solve_permuted(const FactorData<T>& f, std::span<T> x) {
  solve_forward(f, x);
  if (f.kind() == Factorization::LDLT) solve_diagonal(f, x);
  solve_backward(f, x);
}

template <typename T>
void solve_forward_multi(const FactorData<T>& f, T* x, index_t nrhs,
                         index_t ldx) {
  const SymbolicStructure& st = f.structure();
  const bool unit = f.kind() != Factorization::LLT;
  for (index_t p = 0; p < st.num_panels(); ++p) {
    const Panel& panel = st.panels[p];
    const index_t w = panel.width();
    const index_t ld = panel.nrows;
    const T* l = f.panel_l(p);
    T* xp = x + panel.col_begin;
    k::trsm_left_lower(w, nrhs, l, ld, unit, xp, ldx);
    for (std::size_t b = 1; b < panel.blocks.size(); ++b) {
      const Block& blk = panel.blocks[b];
      // X(rows of block, :) -= L_block * X(panel cols, :)
      k::gemm_nn(blk.height(), nrhs, w, T(-1), l + blk.offset, ld, xp, ldx,
                 T(1), x + blk.row_begin, ldx);
    }
  }
}

template <typename T>
void solve_diagonal_multi(const FactorData<T>& f, T* x, index_t nrhs,
                          index_t ldx) {
  SPX_CHECK_ARG(f.kind() == Factorization::LDLT, "LDLT only");
  const SymbolicStructure& st = f.structure();
  for (index_t p = 0; p < st.num_panels(); ++p) {
    const Panel& panel = st.panels[p];
    const T* d = f.panel_d(p);
    for (index_t c = 0; c < nrhs; ++c) {
      T* col = x + panel.col_begin + static_cast<std::size_t>(c) * ldx;
      for (index_t j = 0; j < panel.width(); ++j) col[j] /= d[j];
    }
  }
}

template <typename T>
void solve_backward_multi(const FactorData<T>& f, T* x, index_t nrhs,
                          index_t ldx) {
  const SymbolicStructure& st = f.structure();
  for (index_t p = st.num_panels() - 1; p >= 0; --p) {
    const Panel& panel = st.panels[p];
    const index_t w = panel.width();
    const index_t ld = panel.nrows;
    T* xp = x + panel.col_begin;
    if (f.kind() == Factorization::LU) {
      const T* u = f.panel_u(p);
      for (std::size_t b = 1; b < panel.blocks.size(); ++b) {
        const Block& blk = panel.blocks[b];
        // X(cols, :) -= U'_block^T * X(rows of block, :)
        k::gemm_tn(w, nrhs, blk.height(), T(-1), u + blk.offset, ld,
                   x + blk.row_begin, ldx, T(1), xp, ldx);
      }
      k::trsm_left_upper(w, nrhs, f.panel_l(p), ld, xp, ldx);
    } else {
      const bool unit = f.kind() == Factorization::LDLT;
      const T* l = f.panel_l(p);
      for (std::size_t b = 1; b < panel.blocks.size(); ++b) {
        const Block& blk = panel.blocks[b];
        k::gemm_tn(w, nrhs, blk.height(), T(-1), l + blk.offset, ld,
                   x + blk.row_begin, ldx, T(1), xp, ldx);
      }
      k::trsm_left_lower_trans(w, nrhs, l, ld, unit, xp, ldx);
    }
  }
}

template <typename T>
void solve_permuted_multi(const FactorData<T>& f, T* x, index_t nrhs,
                          index_t ldx) {
  solve_forward_multi(f, x, nrhs, ldx);
  if (f.kind() == Factorization::LDLT) solve_diagonal_multi(f, x, nrhs, ldx);
  solve_backward_multi(f, x, nrhs, ldx);
}

#define SPX_INSTANTIATE_SOLVE(T)                                   \
  template void solve_forward<T>(const FactorData<T>&, std::span<T>,       \
                                 index_t);                                 \
  template void solve_diagonal<T>(const FactorData<T>&, std::span<T>,      \
                                  index_t);                                \
  template void solve_backward<T>(const FactorData<T>&, std::span<T>,      \
                                  index_t);                                \
  template void solve_permuted<T>(const FactorData<T>&, std::span<T>);      \
  template void solve_forward_multi<T>(const FactorData<T>&, T*, index_t,  \
                                       index_t);                           \
  template void solve_diagonal_multi<T>(const FactorData<T>&, T*, index_t, \
                                        index_t);                          \
  template void solve_backward_multi<T>(const FactorData<T>&, T*, index_t, \
                                        index_t);                          \
  template void solve_permuted_multi<T>(const FactorData<T>&, T*, index_t, \
                                        index_t);

SPX_INSTANTIATE_SOLVE(real_t)
SPX_INSTANTIATE_SOLVE(complex_t)
SPX_INSTANTIATE_SOLVE(real32_t)

}  // namespace spx
