#include "dist/fanin_sim.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

#include "common/error.hpp"
#include "runtime/task.hpp"

namespace spx::dist {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Work unit inside a node: a factor, a local/remote update, or the
/// application of a received contribution block.
struct Unit {
  enum Kind { Factor, Update, Apply } kind;
  index_t panel = -1;   ///< source panel (Factor/Update), target (Apply)
  index_t edge = -1;    ///< Update only
  index_t from_node = -1;  ///< Apply only
  double priority = 0.0;
  double duration = 0.0;
};

struct UnitLess {
  bool operator()(const Unit& a, const Unit& b) const {
    return a.priority < b.priority;
  }
};

struct Message {
  index_t dest_node;
  Unit apply;       ///< the Apply unit to enqueue on arrival
  double bytes;
};

}  // namespace

DistStats simulate_distributed(const SymbolicStructure& st,
                               Factorization kind,
                               const sim::CostModel& model,
                               const ClusterSpec& cluster, CommMode mode) {
  const index_t np = st.num_panels();
  const index_t nn = cluster.num_nodes;
  const double scalar_bytes = model.options().complex_arith ? 16.0 : 8.0;
  const int arrays = kind == Factorization::LU ? 2 : 1;

  const Mapping map = proportional_mapping(st, model, nn);

  // Bottom levels as priorities.
  TaskTable table(st, kind);
  const std::vector<double> level = table.bottom_levels(model);

  // --- precompute the contribution bookkeeping -------------------------
  // in_need[p]: local updates + remote contributions (groups or edges).
  std::vector<index_t> in_need(static_cast<std::size_t>(np), 0);
  // Fan-in groups: (source node, target panel) -> {#updates remaining,
  // aggregated bytes}.
  std::map<std::pair<index_t, index_t>, std::pair<index_t, double>> groups;
  for (index_t q = 0; q < np; ++q) {
    for (index_t e = 0; e < static_cast<index_t>(st.targets[q].size());
         ++e) {
      const index_t t = st.targets[q][e].dst;
      if (map.owner[q] == map.owner[t]) {
        in_need[t]++;
        continue;
      }
      // Written area of the update (contribution block size).
      const UpdateEdge& edge = st.targets[q][e];
      double written = 0.0;
      const Panel& sp = st.panels[q];
      for (index_t b = edge.first_block; b < edge.last_block; ++b) {
        const double m = sp.nrows - sp.blocks[b].offset;
        written += m * sp.blocks[b].height();
      }
      written *= scalar_bytes * arrays;
      if (mode == CommMode::FanOut) {
        in_need[t]++;  // one Apply per remote update
      } else {
        auto& g = groups[{map.owner[q], t}];
        if (g.first == 0) in_need[t]++;  // first member creates the group
        g.first++;
        g.second += written;
      }
      if (mode == CommMode::FanOut) {
        // stash per-edge bytes in the groups map too, keyed uniquely.
        groups[{q * np + e, -1 - t}] = {1, written};
      }
    }
  }
  // Cap aggregated fan-in blocks at the full panel size (the buffer is at
  // most one panel image).
  if (mode == CommMode::FanIn) {
    for (auto& [key, g] : groups) {
      const double panel_bytes =
          static_cast<double>(st.panels[key.second].nrows) *
          st.panels[key.second].width() * scalar_bytes * arrays;
      g.second = std::min(g.second, panel_bytes);
    }
  }

  // --- DES state ---------------------------------------------------------
  std::vector<std::priority_queue<Unit, std::vector<Unit>, UnitLess>> ready(
      static_cast<std::size_t>(nn));
  std::vector<int> idle_cores(static_cast<std::size_t>(nn),
                              cluster.cores_per_node);
  struct Completion {
    double time;
    index_t node;
    Unit unit;
    bool operator>(const Completion& o) const { return time > o.time; }
  };
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      events;
  std::vector<double> nic_busy_until(static_cast<std::size_t>(nn), 0.0);
  std::vector<double> nic_busy_total(static_cast<std::size_t>(nn), 0.0);
  struct Arrival {
    double time;
    Message msg;
    bool operator>(const Arrival& o) const { return time > o.time; }
  };
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>>
      arrivals;

  DistStats stats;
  double now = 0.0;
  index_t factored = 0;

  auto push_ready = [&](index_t node, Unit u) { ready[node].push(u); };

  auto factor_unit = [&](index_t p) {
    Unit u;
    u.kind = Unit::Factor;
    u.panel = p;
    u.priority = level[table.id_of({TaskKind::Panel, p, -1})];
    u.duration = model.panel_seconds(p, ResourceKind::Cpu);
    return u;
  };

  // Seed: leaves.
  for (index_t p = 0; p < np; ++p) {
    if (in_need[p] == 0) push_ready(map.owner[p], factor_unit(p));
  }

  auto send = [&](index_t from, Message msg) {
    const double start = std::max(now, nic_busy_until[from]);
    const double xfer = msg.bytes / cluster.net_bandwidth;
    nic_busy_until[from] = start + xfer;
    nic_busy_total[from] += xfer;
    arrivals.push({start + xfer + cluster.net_latency, std::move(msg)});
    stats.messages++;
    stats.bytes_sent += msg.bytes;
  };

  auto on_contribution_done = [&](index_t t) {
    if (--in_need[t] == 0) push_ready(map.owner[t], factor_unit(t));
  };

  auto complete = [&](index_t node, const Unit& u) {
    switch (u.kind) {
      case Unit::Factor: {
        ++factored;
        for (index_t e = 0;
             e < static_cast<index_t>(st.targets[u.panel].size()); ++e) {
          Unit up;
          up.kind = Unit::Update;
          up.panel = u.panel;
          up.edge = e;
          up.priority = level[table.id_of({TaskKind::Update, u.panel, e})];
          up.duration =
              model.update_seconds(u.panel, e, ResourceKind::Cpu);
          push_ready(node, up);
        }
        break;
      }
      case Unit::Update: {
        const index_t t = st.targets[u.panel][u.edge].dst;
        if (map.owner[t] == node) {
          on_contribution_done(t);
          break;
        }
        if (mode == CommMode::FanOut) {
          const auto it = groups.find({u.panel * np + u.edge, -1 - t});
          SPX_ASSERT(it != groups.end());
          Message msg;
          msg.dest_node = map.owner[t];
          msg.bytes = it->second.second;
          msg.apply.kind = Unit::Apply;
          msg.apply.panel = t;
          msg.apply.from_node = node;
          msg.apply.priority = level[t] + 1.0;  // urgent: unblocks factor
          msg.apply.duration =
              msg.bytes / model.spec().cpu_mem_bw + 1e-6;
          send(node, std::move(msg));
        } else {
          auto& g = groups[{node, t}];
          if (--g.first == 0) {
            Message msg;
            msg.dest_node = map.owner[t];
            msg.bytes = g.second;
            msg.apply.kind = Unit::Apply;
            msg.apply.panel = t;
            msg.apply.from_node = node;
            msg.apply.priority = level[t] + 1.0;
            msg.apply.duration =
                msg.bytes / model.spec().cpu_mem_bw + 1e-6;
            send(node, std::move(msg));
          }
        }
        break;
      }
      case Unit::Apply:
        on_contribution_done(u.panel);
        break;
    }
  };

  auto dispatch = [&] {
    for (index_t n = 0; n < nn; ++n) {
      while (idle_cores[n] > 0 && !ready[n].empty()) {
        const Unit u = ready[n].top();
        ready[n].pop();
        --idle_cores[n];
        events.push({now + u.duration, n, u});
      }
    }
  };

  dispatch();
  while (factored < np) {
    const double t_event = events.empty() ? kInf : events.top().time;
    const double t_arrival = arrivals.empty() ? kInf : arrivals.top().time;
    if (t_event == kInf && t_arrival == kInf) {
      throw InternalError("distributed simulation deadlock");
    }
    now = std::min(t_event, t_arrival);
    while (!events.empty() && events.top().time <= now + 1e-15) {
      const Completion c = events.top();
      events.pop();
      ++idle_cores[c.node];
      complete(c.node, c.unit);
    }
    while (!arrivals.empty() && arrivals.top().time <= now + 1e-15) {
      const Arrival a = arrivals.top();
      arrivals.pop();
      push_ready(a.msg.dest_node, a.msg.apply);
    }
    dispatch();
  }

  stats.makespan = now;
  stats.gflops = st.total_flops(kind) / now / 1e9;
  stats.imbalance = map.imbalance();
  for (index_t n = 0; n < nn; ++n) {
    stats.comm_busy_max =
        std::max(stats.comm_busy_max, nic_busy_total[n] / now);
  }
  return stats;
}

}  // namespace spx::dist
