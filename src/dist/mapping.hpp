// Proportional mapping of the panel elimination forest onto cluster nodes.
//
// The classic PaStiX/scotch strategy: walk the supernode tree from the
// roots, assigning each subtree a *set* of candidate nodes sized
// proportionally to its work; once a subtree's candidate set shrinks to a
// single node, every panel in it is owned by that node (perfect locality
// for the bottom of the tree).  Panels near the top, whose subtrees span
// several nodes, are distributed round-robin among their candidates.
//
// Used by the distributed fan-in simulation (dist/fanin_sim.hpp) and as an
// alternative static-mapping strategy for the shared-memory native
// scheduler.
#pragma once

#include <vector>

#include "runtime/task.hpp"

namespace spx::dist {

struct Mapping {
  /// Owner node of each panel, in [0, num_nodes).
  std::vector<index_t> owner;
  index_t num_nodes = 0;
  /// Estimated per-node work (seconds of 1D CPU time).
  std::vector<double> node_work;

  double imbalance() const {
    double mx = 0.0, total = 0.0;
    for (const double w : node_work) {
      mx = std::max(mx, w);
      total += w;
    }
    const double avg = total / static_cast<double>(node_work.size());
    return avg > 0 ? mx / avg : 1.0;
  }
};

/// Maps panels onto `num_nodes` nodes proportionally to subtree work
/// (1D task time from `costs`).
Mapping proportional_mapping(const SymbolicStructure& st,
                             const TaskCosts& costs, index_t num_nodes);

}  // namespace spx::dist
