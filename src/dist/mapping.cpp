#include "dist/mapping.hpp"

#include <algorithm>
#include <cmath>

namespace spx::dist {
Mapping proportional_mapping(const SymbolicStructure& st,
                             const TaskCosts& costs, index_t num_nodes) {
  SPX_CHECK_ARG(num_nodes > 0, "need at least one node");
  const index_t np = st.num_panels();
  Mapping map;
  map.num_nodes = num_nodes;
  map.owner.assign(static_cast<std::size_t>(np), 0);
  map.node_work.assign(static_cast<std::size_t>(num_nodes), 0.0);
  if (np == 0) return map;

  // Panel tree (parent = lowest updated panel) + subtree work.
  std::vector<index_t> parent(static_cast<std::size_t>(np), -1);
  std::vector<double> work(static_cast<std::size_t>(np));
  for (index_t p = 0; p < np; ++p) {
    double d = costs.panel_seconds(p, ResourceKind::Cpu);
    for (index_t e = 0; e < static_cast<index_t>(st.targets[p].size());
         ++e) {
      d += costs.update_seconds(p, e, ResourceKind::Cpu);
    }
    work[p] = d;
    if (!st.targets[p].empty()) parent[p] = st.targets[p].front().dst;
  }
  std::vector<double> subtree = work;
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(np));
  for (index_t p = 0; p < np; ++p) {
    if (parent[p] != -1) {
      subtree[parent[p]] += subtree[p];
      children[parent[p]].push_back(p);
    }
  }

  // Chunking: maximal subtrees whose work stays below a fraction of the
  // fair per-node share become atomic chunks (whole subtree on one node --
  // all their updates stay local).  Chunks are packed onto nodes with the
  // classic LPT greedy (heaviest first onto the least-loaded node);
  // panels above the chunk cut are assigned least-loaded in topological
  // order (they are the shared top of the tree and talk to every node
  // regardless).
  double total = 0.0;
  for (index_t p = 0; p < np; ++p) {
    if (parent[p] == -1) total += subtree[p];
  }
  const double chunk_limit =
      total / (8.0 * static_cast<double>(num_nodes));

  std::vector<index_t> chunk_roots;
  std::vector<char> in_chunk(static_cast<std::size_t>(np), 0);
  for (index_t p = 0; p < np; ++p) {
    const bool fits = subtree[p] <= chunk_limit;
    const bool parent_fits =
        parent[p] != -1 && subtree[parent[p]] <= chunk_limit;
    if (fits && !parent_fits) chunk_roots.push_back(p);
  }
  std::sort(chunk_roots.begin(), chunk_roots.end(),
            [&](index_t a, index_t b) { return subtree[a] > subtree[b]; });

  auto least_loaded = [&] {
    index_t best = 0;
    for (index_t n = 1; n < num_nodes; ++n) {
      if (map.node_work[n] < map.node_work[best]) best = n;
    }
    return best;
  };

  std::vector<index_t> stack;
  for (const index_t root : chunk_roots) {
    const index_t node = least_loaded();
    stack.assign(1, root);
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      in_chunk[v] = 1;
      map.owner[v] = node;
      map.node_work[node] += work[v];
      for (const index_t c : children[v]) stack.push_back(c);
    }
  }
  // Top panels (above the cut), in topological = ascending order.
  for (index_t p = 0; p < np; ++p) {
    if (in_chunk[p]) continue;
    const index_t node = least_loaded();
    map.owner[p] = node;
    map.node_work[node] += work[p];
  }
  return map;
}

}  // namespace spx::dist
