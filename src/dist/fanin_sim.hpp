// Distributed-memory factorization simulator with fan-in accumulation.
//
// The paper's second future-work item: "we will pursue the extension of
// this work in distributed heterogeneous environments.  On such
// platforms, when a supernode updates another non-local supernode, the
// update blocks are stored in a local extra-memory space (this is called
// the 'fan-in' approach).  By locally accumulating the updates until the
// last updates to the supernode are available, we trade bandwidth for
// latency."
//
// This module simulates exactly that trade on a cluster of identical
// multicore nodes connected by a latency/bandwidth network:
//   * panels are distributed by proportional mapping (dist/mapping.hpp);
//   * every update executes on the node owning its SOURCE panel;
//   * updates to locally-owned targets scatter directly;
//   * updates to remote targets accumulate in a node-local fan-in buffer;
//     when the last local contribution lands, ONE aggregated message goes
//     to the owner (fan-in) -- or, in fan-out mode, every update is sent
//     individually as it completes (more, smaller messages);
//   * the owner applies received contributions (a scatter-add) before
//     factoring the panel.
#pragma once

#include "dist/mapping.hpp"
#include "sim/cost_model.hpp"

namespace spx::dist {

struct ClusterSpec {
  index_t num_nodes = 4;
  int cores_per_node = 12;
  /// Network bandwidth per link (bytes/s) and per-message latency (s);
  /// defaults roughly QDR InfiniBand of the paper's era.
  double net_bandwidth = 3.0e9;
  double net_latency = 2e-6;
};

enum class CommMode {
  FanIn,  ///< aggregate local contributions, one message per (node, panel)
  FanOut  ///< eager: one message per remote update
};

struct DistStats {
  double makespan = 0.0;
  double gflops = 0.0;
  std::int64_t messages = 0;
  double bytes_sent = 0.0;
  double imbalance = 0.0;        ///< mapping work imbalance (max/avg)
  double comm_busy_max = 0.0;    ///< busiest NIC share of the makespan
};

/// Simulates one distributed factorization.
DistStats simulate_distributed(const SymbolicStructure& st,
                               Factorization kind,
                               const sim::CostModel& model,
                               const ClusterSpec& cluster, CommMode mode);

}  // namespace spx::dist
